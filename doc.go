// Package lateral is the root of a full reproduction of "Lateral Thinking
// for Trustworthy Apps" (Härtig, Roitzsch, Weinhold, Lackorzyński, ICDCS
// 2017): a unified isolation interface over five simulated hardware
// substrates, a horizontal component programming model with manifests and
// capabilities, the paper's worked examples (decomposed mail client, smart
// meter ↔ utility server), and an experiment harness validating every
// claim the paper makes.
//
// Start with README.md, DESIGN.md (system inventory + per-experiment
// index), and EXPERIMENTS.md (paper-vs-measured). The library lives under
// internal/; runnable entry points are examples/quickstart,
// examples/mailclient, examples/smartmeter, cmd/lateralbench, and
// cmd/lateralctl. The benchmarks in bench_test.go regenerate every
// experiment table.
package lateral
