module lateral

go 1.22
