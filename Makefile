# Lateral — build, test, and reproduce.

GO ?= go

.PHONY: all verify build vet test race-hotpath race cover bench experiments fuzz cluster-soak stall-soak examples clean

all: build vet test race-hotpath

# Tier-1 verify chain (ROADMAP.md): what must stay green on every change.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The invocation hot path is lock-sensitive end to end — tracing, the
# deadline watchdog, the wire budget, and failover routing: run every
# package on that path under the race detector on each tier-1 pass.
race-hotpath:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/distributed ./internal/cluster

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every experiment table (EXPERIMENTS.md's source of truth).
experiments:
	$(GO) run ./cmd/lateralbench

# Full benchmark pass, one iteration per experiment plus the
# mechanism micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every parser that consumes attacker bytes.
fuzz:
	$(GO) test -fuzz=FuzzDecodeQuote   -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzServerRespond -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzSessionOpen   -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzVPFSRead      -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzLegacyFSNames -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzDistributedFrame -fuzztime=10s -run '^$$' .

# Short soak of the attested replica fleet under the race detector:
# concurrent callers, repeated crash/heal cycles, plus the full E19 chaos
# experiment (crash + tampered build) with -race.
cluster-soak:
	$(GO) test -race -count=5 -run TestSoakUnderChaos ./internal/cluster
	$(GO) test -race -run TestE19ClusterScalesAndSurvivesChaos ./internal/experiments

# Repeated stall-containment runs under the race detector: wedged replicas,
# abandoned handlers, and Delayer chaos (E20) must stay bounded and leak
# nothing across iterations.
stall-soak:
	$(GO) test -race -count=5 -run TestE20StallContainment ./internal/experiments
	$(GO) test -race -count=5 -run 'TestWatchdog|TestFanInBoundedAdmission' ./internal/core

examples:
	$(GO) run ./examples/quickstart -substrate all
	$(GO) run ./examples/mailclient
	$(GO) run ./examples/smartmeter
	$(GO) run ./examples/cloudstore
	$(GO) run ./examples/dualphone

clean:
	$(GO) clean ./...
	rm -rf testdata
