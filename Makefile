# Lateral — build, test, and reproduce.

GO ?= go

.PHONY: all verify build vet test race-hotpath race cover bench bench-smoke bench-baseline experiments fuzz cluster-soak stall-soak sim-soak audit-soak policy-soak epoch-soak shard-soak coalesce-soak examples clean

all: build vet test race-hotpath

# Tier-1 verify chain (ROADMAP.md): what must stay green on every change.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The invocation hot path is lock-sensitive end to end — tracing, the
# deadline watchdog, the wire budget, and failover routing: run every
# package on that path under the race detector on each tier-1 pass.
race-hotpath:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/distributed ./internal/cluster

race:
	$(GO) test -race ./...

# Coverage with checked-in floors for the invocation-path packages. Floors
# sit ~5 points under measured coverage (core 93.0, cluster 94.7,
# distributed 86.6, journal 97.9, cap 98.7, policy 91.9, shard 93.9 at
# the time they were set): they catch a test deletion or a big untested
# addition without flaking on small refactors.
COVER_FLOORS := core:88 cluster:89 distributed:81 journal:85 cap:93 policy:86 shard:85

cover:
	$(GO) test -cover ./...
	@for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./internal/$$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg at $$pct% is below the $$floor% floor"; exit 1; fi; \
		echo "cover: $$pkg $$pct% >= $$floor% floor"; \
	done

# Regenerate every experiment table (EXPERIMENTS.md's source of truth).
experiments:
	$(GO) run ./cmd/lateralbench

# Full benchmark pass, one iteration per experiment plus the
# mechanism micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bench rot (compile errors,
# panics, a broken fixture) in CI without paying full measurement time.
# The zero-alloc gates ride along: the batched-ingest hot path must stay
# at 0 allocs/op per reading and the coalesced sealed-record hot path at
# 0 allocs/op per sub-frame at depth 16 — asserted, not just measured.
bench-smoke:
	$(GO) test -bench . -benchtime=1x -benchmem -run '^$$' ./...
	$(GO) test -count=1 -run 'TestBatchIngestZeroAllocPerReading|TestCoalescedZeroAllocPerSubFrame' ./internal/distributed

# Regenerate the checked-in baselines: E22 pipelining (BENCH_e22.json),
# E23 sharded fleet (BENCH_e23.json), E26 rolling replace
# (BENCH_e26.json), and E27 frame coalescing (BENCH_e27.json). Wire
# rounds, frame/record counts, allocs/op, and epoch/healthy counts are
# machine-independent; ops/sec and p99 are not.
bench-baseline:
	$(GO) run ./cmd/lateralbench -e22-json BENCH_e22.json
	$(GO) run ./cmd/lateralbench -e23-json BENCH_e23.json
	$(GO) run ./cmd/lateralbench -e26-json BENCH_e26.json
	$(GO) run ./cmd/lateralbench -e27-json BENCH_e27.json

# Short fuzzing pass over every parser that consumes attacker bytes.
fuzz:
	$(GO) test -fuzz=FuzzDecodeQuote   -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzServerRespond -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzSessionOpen   -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzVPFSRead      -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzLegacyFSNames -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzDistributedFrame -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzBatchFrameDecode -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzCoalescedRecord -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzScheduleDecode -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzJournalDecode -fuzztime=10s -run '^$$' .
	$(GO) test -fuzz=FuzzPolicyDecode  -fuzztime=10s -run '^$$' .

# Short soak of the attested replica fleet under the race detector:
# concurrent callers, repeated crash/heal cycles, plus the full E19 chaos
# experiment (crash + tampered build) with -race.
cluster-soak:
	$(GO) test -race -count=5 -run TestSoakUnderChaos ./internal/cluster
	$(GO) test -race -run TestE19ClusterScalesAndSurvivesChaos ./internal/experiments

# Repeated stall-containment runs under the race detector: wedged replicas,
# abandoned handlers, and Delayer chaos (E20) must stay bounded and leak
# nothing across iterations.
stall-soak:
	$(GO) test -race -count=5 -run TestE20StallContainment ./internal/experiments
	$(GO) test -race -count=5 -run 'TestWatchdog|TestFanInBoundedAdmission' ./internal/core

# Deterministic simulation soak: many explorer seeds over the mixed-fault
# schedule, with all four invariants checked after every step, then the
# mutation smoke test under the race detector. Replay a failing seed with
#   go test ./internal/simtest -run TestExploreSeeds -simtest.seed=<seed>
sim-soak:
	$(GO) test -count=1 ./internal/simtest -run TestExploreSeeds -simtest.soak=500
	$(GO) test -race -count=1 -run 'TestMutationIsCaught|TestExploreReplayIsByteIdentical' ./internal/simtest
	$(GO) test -race -count=3 -run TestE21Simulation ./internal/experiments

# Fleet black-box soak: 500 seeds where a journal-tamper fault mutates a
# recorded entry mid-run — the auditor invariant must detect every one —
# plus the exactly-once quarantine journaling race test and the E24
# auditor-replay experiment under the race detector.
audit-soak:
	$(GO) test -count=1 ./internal/simtest -run TestAuditTamperSoak -simtest.soak=500
	$(GO) test -race -count=3 -run TestQuarantineJournaledExactlyOnce ./internal/cluster
	$(GO) test -race -count=1 -run TestE24 ./internal/experiments

# Dynamic-membership soak: 500 seeds where the fault schedule includes
# join/leave transitions — the eighth invariant (no call completes against
# an evicted or stale-keyed replica) must hold on every seed — plus the
# epoch-schedule unit and the E26 rolling-replace experiment under the
# race detector.
epoch-soak:
	$(GO) test -count=1 ./internal/simtest -run TestEpochSoak -simtest.soak=500
	$(GO) test -race -count=1 -run TestEpochScheduleTransitions ./internal/simtest
	$(GO) test -race -count=1 -run 'TestE26RollingReplace|TestE26BaselinePhases' ./internal/experiments

# Sharded-fabric soak: 500 seeds where the fault schedule splits and
# merges shard cells under crashes, duplication, and skew while single
# and batched readings stream through the router — the ninth invariant
# (every reading routes where the current epoch's shard map assigns it,
# none double-counted across a rebalance) must hold on every seed — plus
# the pinned transition/mutation/codec tests and the E23 million-client
# experiment under the race detector.
shard-soak:
	$(GO) test -count=1 ./internal/simtest -run TestShardSoak -simtest.soak=500
	$(GO) test -race -count=1 -run 'TestShardScheduleTransitions|TestShardCheckerCatchesMisrouting|TestShardFaultCodecRoundTrips' ./internal/simtest
	$(GO) test -race -count=1 -run TestE23ShardedFleet ./internal/experiments

# Coalesced-record soak: 500 seeds of concurrent callers racing their
# request frames into shared sealed records on every replica stub while
# one-shot coalesce faults drop or tamper individual sub-frames — the
# tenth invariant (every sub-frame of a coalesced record completes
# exactly once or its caller sees a typed error) must hold at every
# quiesce and every caller outcome must be typed — plus the fault-codec
# and checker-mutation pins under the race detector.
coalesce-soak:
	$(GO) test -count=1 ./internal/simtest -run TestCoalesceSoak -simtest.soak=500
	$(GO) test -race -count=1 -run 'TestCoalesceSoak|TestCoalesceFaultCodecRoundTrips|TestCoalesceCheckerCatchesMisaccounting' ./internal/simtest

# Chain-aware policy soak: 500 seeds where the explorer's operation mix
# includes mosaic exfiltration attempts under the full mixed-fault
# schedule — the no-tainted-egress invariant must hold on every seed —
# plus the E25 confused-deputy experiment under the race detector.
policy-soak:
	$(GO) test -count=1 ./internal/simtest -run TestPolicyExfilSoak -simtest.soak=500
	$(GO) test -race -count=1 -run TestE25 ./internal/experiments

examples:
	$(GO) run ./examples/quickstart -substrate all
	$(GO) run ./examples/mailclient
	$(GO) run ./examples/smartmeter
	$(GO) run ./examples/cloudstore
	$(GO) run ./examples/dualphone

clean:
	$(GO) clean ./...
	rm -rf testdata
