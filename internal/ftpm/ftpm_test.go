package ftpm

import (
	"errors"
	"testing"

	"lateral/internal/attest"
	"lateral/internal/cryptoutil"
	"lateral/internal/tpm"
	"lateral/internal/trustzone"
)

func newFTPM(t *testing.T) (*FTPM, *cryptoutil.Signer) {
	t.Helper()
	vendor := cryptoutil.NewSigner("soc-vendor")
	tz, err := trustzone.New(trustzone.Config{DeviceSeed: "surface-1", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(tz, vendor)
	if err != nil {
		t.Fatal(err)
	}
	return f, vendor
}

func TestExtendQuoteMatchesDiscreteSemantics(t *testing.T) {
	f, vendor := newFTPM(t)
	m1 := cryptoutil.Hash([]byte("bootloader"))
	m2 := cryptoutil.Hash([]byte("kernel"))
	if err := f.Extend(0, m1); err != nil {
		t.Fatal(err)
	}
	if err := f.Extend(0, m2); err != nil {
		t.Fatal(err)
	}
	// Same extend sequence on a discrete chip yields the same PCR value —
	// the semantics are identical, only the anchor differs.
	discrete := tpm.New("chip", cryptoutil.NewSigner("tpm-mfr"))
	_ = discrete.Extend(0, m1)
	_ = discrete.Extend(0, m2)
	fv, _ := f.PCRValue(0)
	dv, _ := discrete.PCRValue(0)
	if fv != dv {
		t.Error("fTPM and discrete TPM disagree on extend semantics")
	}
	// The discrete verifier code path accepts the fTPM quote unchanged.
	nonce := []byte("n")
	q, err := f.Quote([]int{0}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifyPCRQuote(q, nonce, vendor.Public(), map[int][32]byte{0: fv}); err != nil {
		t.Errorf("discrete verifier rejected fTPM quote: %v", err)
	}
}

func TestBadPCRIndices(t *testing.T) {
	f, _ := newFTPM(t)
	if err := f.Extend(tpm.NumPCRs, [32]byte{}); !errors.Is(err, tpm.ErrBadPCR) {
		t.Errorf("extend: %v", err)
	}
	if _, err := f.PCRValue(-1); !errors.Is(err, tpm.ErrBadPCR) {
		t.Errorf("read: %v", err)
	}
	if _, err := f.Quote([]int{99}, nil); !errors.Is(err, tpm.ErrBadPCR) {
		t.Errorf("quote: %v", err)
	}
	if _, err := f.Seal([]int{99}, nil); !errors.Is(err, tpm.ErrBadPCR) {
		t.Errorf("seal: %v", err)
	}
}

func TestSealUnsealBoundToPCRs(t *testing.T) {
	f, _ := newFTPM(t)
	_ = f.Extend(7, cryptoutil.Hash([]byte("good-os")))
	blob, err := f.Seal([]int{7}, []byte("disk-key"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Unseal(blob)
	if err != nil || string(got) != "disk-key" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
	_ = f.Extend(7, cryptoutil.Hash([]byte("evil-os")))
	if _, err := f.Unseal(blob); !errors.Is(err, tpm.ErrUnseal) {
		t.Errorf("unseal after extend: got %v", err)
	}
	if _, err := f.Unseal(nil); !errors.Is(err, tpm.ErrUnseal) {
		t.Errorf("empty blob: %v", err)
	}
	if _, err := f.Unseal([]byte{3, 1}); !errors.Is(err, tpm.ErrUnseal) {
		t.Errorf("truncated blob: %v", err)
	}
}

func TestResetClears(t *testing.T) {
	f, _ := newFTPM(t)
	_ = f.Extend(3, cryptoutil.Hash([]byte("x")))
	f.Reset()
	v, _ := f.PCRValue(3)
	if v != ([32]byte{}) {
		t.Error("reset did not clear")
	}
}

func TestAuthenticatedBootWorksAgainstService(t *testing.T) {
	// The attest package's boot-chain code runs against the Service
	// interface: firmware and discrete TPMs are drop-in replacements.
	f, vendor := newFTPM(t)
	chain := []attest.Stage{
		{Name: "bl", Code: []byte("bl-1")},
		{Name: "krn", Code: []byte("krn-1")},
	}
	var log attest.BootLog
	log.PCR = 0
	for _, st := range chain {
		m := st.Measurement()
		if err := f.Extend(0, m); err != nil {
			t.Fatal(err)
		}
		log.Entries = append(log.Entries, attest.BootLogEntry{Name: st.Name, Measurement: m})
	}
	nonce := []byte("boot")
	q, err := f.Quote([]int{0}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.VerifyBootLog(q, nonce, vendor.Public(), log); err != nil {
		t.Errorf("boot log over fTPM failed: %v", err)
	}
}

func TestEKRootedInFuseDeterministically(t *testing.T) {
	// The same SoC (same fused key) reproduces the same endorsement
	// identity across instantiations — it is hardware-rooted, not random.
	vendor := cryptoutil.NewSigner("soc-vendor")
	tz1, err := trustzone.New(trustzone.Config{DeviceSeed: "same-soc", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := New(tz1, vendor)
	if err != nil {
		t.Fatal(err)
	}
	tz2, err := trustzone.New(trustzone.Config{DeviceSeed: "same-soc", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(tz2, vendor)
	if err != nil {
		t.Fatal(err)
	}
	if string(f1.EKPublic()) != string(f2.EKPublic()) {
		t.Error("same SoC produced different EKs")
	}
	tz3, err := trustzone.New(trustzone.Config{DeviceSeed: "other-soc", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := New(tz3, vendor)
	if err != nil {
		t.Fatal(err)
	}
	if string(f1.EKPublic()) == string(f3.EKPublic()) {
		t.Error("different SoCs share an EK")
	}
}

func TestCrossImplementationSealIsolation(t *testing.T) {
	// A blob sealed by the discrete chip must not unseal on the fTPM and
	// vice versa: different roots, same interface.
	f, _ := newFTPM(t)
	d := tpm.New("chip", cryptoutil.NewSigner("tpm-mfr"))
	fb, err := f.Seal([]int{0}, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Seal([]int{0}, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Unseal(fb); err == nil {
		t.Error("discrete chip unsealed an fTPM blob")
	}
	if _, err := f.Unseal(db); err == nil {
		t.Error("fTPM unsealed a discrete-chip blob")
	}
}
