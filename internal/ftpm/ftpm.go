// Package ftpm implements a firmware TPM: the full TPM service (PCR bank,
// extend, quote, seal) realized as a trusted component inside the
// TrustZone secure world instead of a discrete security chip.
//
// It reproduces §II-C's interchangeability observation: "isolation
// technologies are partially interchangeable: Microsoft Surface tablets
// implement TPM functionality not using dedicated TPM security chips, but
// as software running within TrustZone." The endorsement identity is
// rooted in the SoC's fused device key (readable only at secure-world
// privilege), so fTPM quotes chain to the SoC vendor exactly as discrete
// TPM quotes chain to the TPM manufacturer — a verifier built for one
// accepts the other unchanged (experiment E15).
package ftpm

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
	"lateral/internal/tpm"
	"lateral/internal/trustzone"
)

// Service is the TPM interface surfaced by the firmware implementation.
// It deliberately mirrors *tpm.TPM's method set so callers (the attest
// package, boot chains) work against either.
type Service interface {
	Extend(pcr int, measurement [32]byte) error
	PCRValue(pcr int) ([32]byte, error)
	Quote(pcrs []int, nonce []byte) (tpm.PCRQuote, error)
	Seal(pcrs []int, plaintext []byte) ([]byte, error)
	Unseal(blob []byte) ([]byte, error)
	Reset()
	EKPublic() ed25519.PublicKey
}

// Both implementations satisfy the common interface.
var (
	_ Service = (*tpm.TPM)(nil)
	_ Service = (*FTPM)(nil)
)

// FTPM is the firmware TPM state, living in a secure-world domain. All
// persistent state (PCRs are volatile; the monotonic seal counter is not)
// is held in the domain's isolated memory.
type FTPM struct {
	mu       sync.Mutex
	pcrs     [tpm.NumPCRs][32]byte
	ek       *cryptoutil.Signer
	ekCert   []byte
	sealRoot []byte
	nonceCtr uint64
	dom      core.DomainHandle
}

// New instantiates the firmware TPM inside the given TrustZone substrate:
// it creates a secure-world domain for the service and derives the
// endorsement key and seal root from the fused device key.
func New(tz *trustzone.Substrate, vendor *cryptoutil.Signer) (*FTPM, error) {
	fuse, err := tz.DeviceKey(hw.PrivSecureWorld)
	if err != nil {
		return nil, fmt.Errorf("ftpm: fused key: %w", err)
	}
	dom, err := tz.CreateDomain(core.DomainSpec{
		Name:    "ftpm-service",
		Code:    []byte("ftpm@1.0"),
		Trusted: true,
	})
	if err != nil {
		return nil, fmt.Errorf("ftpm: secure-world domain: %w", err)
	}
	ekSeed := cryptoutil.HKDF(fuse, nil, []byte("ftpm-ek"), 32)
	ek := cryptoutil.NewSigner("ftpm-ek:" + string(ekSeed))
	f := &FTPM{
		ek:       ek,
		ekCert:   core.IssueVendorCert(vendor, ek.Public()),
		sealRoot: cryptoutil.HKDF(fuse, nil, []byte("ftpm-srk"), cryptoutil.KeySize),
		dom:      dom,
	}
	// Persist the (zeroed) PCR bank into the isolated domain memory so
	// that compromise-view experiments see fTPM state living in the
	// secure world, not in ordinary heap.
	if err := f.persist(); err != nil {
		return nil, err
	}
	return f, nil
}

// persist mirrors the PCR bank into secure-world memory. Caller holds mu
// (or runs before concurrent use).
func (f *FTPM) persist() error {
	buf := make([]byte, 0, tpm.NumPCRs*32)
	for i := range f.pcrs {
		buf = append(buf, f.pcrs[i][:]...)
	}
	return f.dom.Write(0, buf)
}

// EKPublic returns the endorsement public key (rooted in the fuse).
func (f *FTPM) EKPublic() ed25519.PublicKey { return f.ek.Public() }

// EKCert returns the SoC vendor's certificate over the endorsement key.
func (f *FTPM) EKCert() []byte { return append([]byte(nil), f.ekCert...) }

// Reset clears all PCRs (platform reboot).
func (f *FTPM) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.pcrs {
		f.pcrs[i] = [32]byte{}
	}
	_ = f.persist()
}

// Extend folds a measurement into a PCR, identical semantics to the
// discrete chip.
func (f *FTPM) Extend(pcr int, measurement [32]byte) error {
	if pcr < 0 || pcr >= tpm.NumPCRs {
		return fmt.Errorf("ftpm extend pcr %d: %w", pcr, tpm.ErrBadPCR)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pcrs[pcr] = cryptoutil.Hash(f.pcrs[pcr][:], measurement[:])
	return f.persist()
}

// PCRValue reads a register.
func (f *FTPM) PCRValue(pcr int) ([32]byte, error) {
	if pcr < 0 || pcr >= tpm.NumPCRs {
		return [32]byte{}, fmt.Errorf("ftpm read pcr %d: %w", pcr, tpm.ErrBadPCR)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pcrs[pcr], nil
}

// Quote signs selected PCR values with the fuse-rooted endorsement key,
// producing the SAME wire format as the discrete chip.
func (f *FTPM) Quote(pcrs []int, nonce []byte) (tpm.PCRQuote, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	values := make([][32]byte, 0, len(sel))
	for _, i := range sel {
		if i < 0 || i >= tpm.NumPCRs {
			return tpm.PCRQuote{}, fmt.Errorf("ftpm quote pcr %d: %w", i, tpm.ErrBadPCR)
		}
		values = append(values, f.pcrs[i])
	}
	return tpm.PCRQuote{
		PCRs:      sel,
		Values:    values,
		Nonce:     append([]byte(nil), nonce...),
		EKPub:     f.ek.Public(),
		Signature: f.ek.Sign(quoteBody(sel, values, nonce)),
		EKCert:    append([]byte(nil), f.ekCert...),
	}, nil
}

// quoteBody mirrors the discrete TPM's signed encoding so verification is
// shared.
func quoteBody(pcrs []int, values [][32]byte, nonce []byte) []byte {
	var out []byte
	for i, p := range pcrs {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(p))
		out = append(out, idx[:]...)
		out = append(out, values[i][:]...)
	}
	out = append(out, nonce...)
	return out
}

// Seal binds plaintext to current PCR state, blob-compatible with the
// discrete chip's layout (count | indices | ciphertext) though keyed from
// the fuse-derived root.
func (f *FTPM) Seal(pcrs []int, plaintext []byte) ([]byte, error) {
	f.mu.Lock()
	comp, err := f.composite(pcrs)
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	f.nonceCtr++
	ctr := f.nonceCtr
	f.mu.Unlock()
	key := cryptoutil.HKDF(f.sealRoot, comp[:], []byte("tpm-seal"), cryptoutil.KeySize)
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	hdr := make([]byte, 1+len(sel))
	hdr[0] = byte(len(sel))
	for i, p := range sel {
		hdr[1+i] = byte(p)
	}
	ct, err := cryptoutil.Seal(key, cryptoutil.DeriveNonce("ftpm-seal", ctr), plaintext, hdr)
	if err != nil {
		return nil, err
	}
	return append(hdr, ct...), nil
}

// Unseal recovers a blob if the PCR state matches.
func (f *FTPM) Unseal(blob []byte) ([]byte, error) {
	if len(blob) < 1 {
		return nil, fmt.Errorf("ftpm unseal: empty blob: %w", tpm.ErrUnseal)
	}
	n := int(blob[0])
	if len(blob) < 1+n {
		return nil, fmt.Errorf("ftpm unseal: truncated blob: %w", tpm.ErrUnseal)
	}
	pcrs := make([]int, n)
	for i := 0; i < n; i++ {
		pcrs[i] = int(blob[1+i])
	}
	f.mu.Lock()
	comp, err := f.composite(pcrs)
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	key := cryptoutil.HKDF(f.sealRoot, comp[:], []byte("tpm-seal"), cryptoutil.KeySize)
	pt, err := cryptoutil.Open(key, blob[1+n:], blob[:1+n])
	if err != nil {
		return nil, fmt.Errorf("ftpm unseal: %w", tpm.ErrUnseal)
	}
	return pt, nil
}

// composite hashes the selected PCRs like the discrete chip. Caller holds mu.
func (f *FTPM) composite(pcrs []int) ([32]byte, error) {
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	parts := make([]byte, 0, len(sel)*36)
	for _, i := range sel {
		if i < 0 || i >= tpm.NumPCRs {
			return [32]byte{}, fmt.Errorf("ftpm composite pcr %d: %w", i, tpm.ErrBadPCR)
		}
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		parts = append(parts, idx[:]...)
		parts = append(parts, f.pcrs[i][:]...)
	}
	return cryptoutil.Hash(parts), nil
}
