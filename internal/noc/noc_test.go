package noc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lateral/internal/core"
)

func TestTileAllocationAndExhaustion(t *testing.T) {
	s := New(Config{Tiles: 2})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "a"}); !errors.Is(err, core.ErrDomainExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "c"}); !errors.Is(err, ErrNoTile) {
		t.Errorf("exhausted mesh: %v", err)
	}
}

func TestOversizedDomainRefused(t *testing.T) {
	s := New(Config{SPMBytes: 4096})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "big", MemPages: 2}); err == nil {
		t.Error("domain larger than a tile SPM accepted")
	}
}

func TestScratchpadIsolation(t *testing.T) {
	s := New(Config{})
	a, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("a")})
	b, _ := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("b")})
	secret := []byte("TILE-A-SECRET")
	if err := a.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	for _, v := range b.CompromiseView() {
		if bytes.Contains(v, secret) {
			t.Error("tile b can read tile a's scratchpad")
		}
	}
	got, err := a.Read(0, len(secret))
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("self-read = %q, %v", got, err)
	}
	if err := a.Write(4090, []byte("12345678")); err == nil {
		t.Error("out-of-SPM write accepted")
	}
}

func TestDTUConnectivityIsKernelGranted(t *testing.T) {
	s := New(Config{})
	ta, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("a")})
	tb, _ := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("b")})
	tileA := ta.(*Tile)
	tileB := tb.(*Tile)
	// Without kernel configuration, a cannot reach b at all.
	if err := tileA.SendMessage("to-b", []byte("hi")); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("unconfigured send: %v", err)
	}
	if err := s.ConfigureEndpoint("a", "b", "to-b", 2); err != nil {
		t.Fatal(err)
	}
	if err := tileA.SendMessage("to-b", []byte("msg1")); err != nil {
		t.Fatal(err)
	}
	m, ok := tileB.RecvMessage()
	if !ok || string(m) != "msg1" {
		t.Errorf("recv = %q, %v", m, ok)
	}
	if _, ok := tileB.RecvMessage(); ok {
		t.Error("empty inbox returned message")
	}
}

func TestCreditFlowControl(t *testing.T) {
	s := New(Config{})
	s.CreateDomain(core.DomainSpec{Name: "a"}) //nolint:errcheck
	s.CreateDomain(core.DomainSpec{Name: "b"}) //nolint:errcheck
	if err := s.ConfigureEndpoint("a", "b", "ep", 1); err != nil {
		t.Fatal(err)
	}
	ta, _ := s.TileOf("a")
	if err := ta.SendMessage("ep", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := ta.SendMessage("ep", []byte("2")); !errors.Is(err, ErrNoCredits) {
		t.Errorf("over-credit send: %v", err)
	}
	if err := s.Refill("a", "ep", 1); err != nil {
		t.Fatal(err)
	}
	if err := ta.SendMessage("ep", []byte("3")); err != nil {
		t.Errorf("send after refill: %v", err)
	}
	if err := s.Refill("a", "ghost-ep", 1); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("refill unknown ep: %v", err)
	}
	if err := s.ConfigureEndpoint("ghost", "b", "x", 1); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("configure from unknown: %v", err)
	}
}

func TestDestroyZeroesAndRecycles(t *testing.T) {
	s := New(Config{Tiles: 1})
	d, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("a")})
	if err := d.Write(0, []byte("LEFTOVER-SECRET")); err != nil {
		t.Fatal(err)
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Destroy(); err != nil {
		t.Errorf("double destroy: %v", err)
	}
	// The next occupant of the tile must see zeroed memory.
	d2, err := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Read(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, []byte("LEFTOVER")) {
		t.Error("recycled tile leaked previous occupant's data")
	}
	if _, err := d.Read(0, 1); err == nil {
		t.Error("read on destroyed handle succeeded")
	}
	if d.CompromiseView() != nil {
		t.Error("destroyed tile has a compromise view")
	}
}

func TestHostsCoreSystemAndProperties(t *testing.T) {
	s := New(Config{})
	p := s.Properties()
	if !p.SpatialIsolation || !p.TemporalIsolation || !p.PhysicalMemoryProtection {
		t.Errorf("properties = %+v", p)
	}
	if p.Attestation || s.Anchor() != nil {
		t.Error("base NoC should have no trust anchor")
	}
	sys := core.NewSystem(s)
	if err := sys.Launch(&stub{}, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	if reply, err := sys.Deliver("stub", core.Message{Op: "ping"}); err != nil || reply.Op != "pong" {
		t.Errorf("reply = %+v, %v", reply, err)
	}
}

type stub struct{}

func (*stub) CompName() string     { return "stub" }
func (*stub) CompVersion() string  { return "1" }
func (*stub) Init(*core.Ctx) error { return nil }
func (*stub) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "pong"}, nil
}

// Property: messages delivered never exceed credits granted, and every
// delivered message is byte-identical to one sent.
func TestQuickCreditConservation(t *testing.T) {
	f := func(credits uint8, sends uint8) bool {
		s := New(Config{Tiles: 2})
		if _, err := s.CreateDomain(core.DomainSpec{Name: "a"}); err != nil {
			return false
		}
		if _, err := s.CreateDomain(core.DomainSpec{Name: "b"}); err != nil {
			return false
		}
		c := int(credits % 32)
		if err := s.ConfigureEndpoint("a", "b", "ep", c); err != nil {
			return false
		}
		ta, _ := s.TileOf("a")
		tb, _ := s.TileOf("b")
		sent := 0
		for i := 0; i < int(sends%64); i++ {
			if err := ta.SendMessage("ep", []byte{byte(i)}); err == nil {
				sent++
			}
		}
		if sent > c {
			return false // more deliveries than credits
		}
		got := 0
		for {
			m, ok := tb.RecvMessage()
			if !ok {
				break
			}
			if len(m) != 1 || int(m[0]) != got {
				return false // order/content violated
			}
			got++
		}
		return got == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
