// Package noc implements a network-on-chip isolation substrate in the
// style of M3 (§II-B: "network-on-chip-based message isolation, which is
// used in research systems for heterogeneous manycores").
//
// The model: a mesh of tiles, each with a core and a private on-chip
// scratchpad memory. Tiles share NOTHING — no memory, no caches, no MMU.
// The only way off a tile is the DTU (data transfer unit), whose send
// endpoints a kernel tile configures with explicit targets and credit
// budgets. Isolation is therefore message-based: a compromised tile can
// read exactly its own scratchpad and talk exactly to the endpoints it was
// given.
//
// Noteworthy properties relative to the other substrates:
//   - Temporal isolation comes for free: every domain owns a core, so
//     there is no scheduler to modulate (§II-C covert channels).
//   - Scratchpads are on-chip, so a DRAM bus probe sees nothing.
//   - There is no trust anchor in the base design: attestation needs a
//     TPM/fTPM pairing, like the microkernel.
package noc

import (
	"errors"
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
)

// Errors.
var (
	// ErrNoTile is returned when the mesh has no free tile.
	ErrNoTile = errors.New("noc: out of tiles")

	// ErrNoEndpoint is returned when sending via an unconfigured endpoint.
	ErrNoEndpoint = errors.New("noc: endpoint not configured")

	// ErrNoCredits is returned when an endpoint's credit budget is
	// exhausted (flow control doubles as a bandwidth policy).
	ErrNoCredits = errors.New("noc: out of credits")
)

// Config sizes the mesh.
type Config struct {
	// Tiles is the number of processing tiles (default 16).
	Tiles int

	// SPMBytes is each tile's scratchpad size (default 1 page).
	SPMBytes int
}

// Substrate is one manycore chip.
type Substrate struct {
	cfg Config

	mu      sync.Mutex
	free    []int
	domains map[string]*Tile
}

var _ core.Substrate = (*Substrate)(nil)

// New powers on the mesh.
func New(cfg Config) *Substrate {
	if cfg.Tiles <= 0 {
		cfg.Tiles = 16
	}
	if cfg.SPMBytes <= 0 {
		cfg.SPMBytes = 4096
	}
	s := &Substrate{cfg: cfg, domains: make(map[string]*Tile)}
	for i := 0; i < cfg.Tiles; i++ {
		s.free = append(s.free, i)
	}
	return s
}

// Name returns "noc".
func (s *Substrate) Name() string { return "noc" }

// Properties per the M3 design.
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:                "noc",
		SpatialIsolation:         true,
		TemporalIsolation:        true, // a core per domain: nothing to time-share
		PhysicalMemoryProtection: true, // on-chip scratchpads
		ConcurrentTrusted:        true,
		InvokeCostNs:             500, // hardware message passing
		TCBUnits:                 8,   // kernel tile + DTU
	}
}

// Anchor returns nil: pair with a TPM/fTPM for attestation.
func (s *Substrate) Anchor() core.TrustAnchor { return nil }

// CreateDomain assigns the next free tile. Trusted and untrusted domains
// are equally isolated — the mesh makes no distinction, which is the whole
// point of per-tile isolation.
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("noc: %s: %w", spec.Name, core.ErrDomainExists)
	}
	if len(s.free) == 0 {
		return nil, fmt.Errorf("noc: %s: %w", spec.Name, ErrNoTile)
	}
	// Domains larger than one scratchpad are refused: tiles are fixed
	// hardware. (MemPages beyond the SPM is a configuration error.)
	if want := spec.MemPages * 4096; want > s.cfg.SPMBytes {
		return nil, fmt.Errorf("noc: %s wants %d bytes, tile SPM is %d", spec.Name, want, s.cfg.SPMBytes)
	}
	id := s.free[0]
	s.free = s.free[1:]
	// A fresh Tile per occupancy: the previous occupant's handle stays
	// dead, and the scratchpad starts zeroed — the hardware reset a VPE
	// switch performs.
	tile := &Tile{
		id:      id,
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		spm:     make([]byte, s.cfg.SPMBytes),
		eps:     make(map[string]*Endpoint),
	}
	s.domains[spec.Name] = tile
	return tile, nil
}

// TileOf returns the tile hosting a domain, for DTU configuration.
func (s *Substrate) TileOf(name string) (*Tile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.domains[name]
	if !ok {
		return nil, fmt.Errorf("noc: %s: %w", name, core.ErrNoDomain)
	}
	return t, nil
}

// ConfigureEndpoint is the kernel-tile operation: it installs a send
// endpoint on tile `from` that delivers to tile `to`, with a credit
// budget. Only whoever holds the Substrate (the kernel) can call this —
// tiles cannot mint their own connectivity.
func (s *Substrate) ConfigureEndpoint(from, to, epName string, credits int) error {
	src, err := s.TileOf(from)
	if err != nil {
		return err
	}
	dst, err := s.TileOf(to)
	if err != nil {
		return err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	src.eps[epName] = &Endpoint{target: dst, credits: credits}
	return nil
}

// Tile is one processing element with its scratchpad and DTU.
type Tile struct {
	id      int
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte

	mu    sync.Mutex
	spm   []byte
	eps   map[string]*Endpoint
	inbox [][]byte
	freed bool
}

var _ core.DomainHandle = (*Tile)(nil)

// Endpoint is a configured DTU send endpoint.
type Endpoint struct {
	target  *Tile
	credits int
}

// ID returns the tile's mesh position.
func (t *Tile) ID() int { return t.id }

// DomainName returns the hosted domain's name.
func (t *Tile) DomainName() string { return t.name }

// Measurement returns the loaded code's hash.
func (t *Tile) Measurement() [32]byte { return t.meas }

// Trusted reports the requested placement (informational on this mesh).
func (t *Tile) Trusted() bool { return t.trusted }

// MemSize returns the scratchpad size.
func (t *Tile) MemSize() int { return len(t.spm) }

// Write stores into the tile-local scratchpad.
func (t *Tile) Write(off int, p []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.freed || off < 0 || off+len(p) > len(t.spm) {
		return fmt.Errorf("noc %s: write %d@%d out of range", t.name, len(p), off)
	}
	copy(t.spm[off:], p)
	return nil
}

// Read loads from the tile-local scratchpad.
func (t *Tile) Read(off, n int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.freed || off < 0 || off+n > len(t.spm) {
		return nil, fmt.Errorf("noc %s: read %d@%d out of range", t.name, n, off)
	}
	out := make([]byte, n)
	copy(out, t.spm[off:])
	return out, nil
}

// CompromiseView: the tile's own scratchpad, nothing else — there is
// nothing else to map.
func (t *Tile) CompromiseView() [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.freed {
		return nil
	}
	out := make([]byte, len(t.spm))
	copy(out, t.spm)
	return [][]byte{out}
}

// Destroy returns the tile to the free pool, zeroing the scratchpad (the
// next occupant must not inherit secrets).
func (t *Tile) Destroy() error {
	t.mu.Lock()
	if t.freed {
		t.mu.Unlock()
		return nil
	}
	t.freed = true
	for i := range t.spm {
		t.spm[i] = 0
	}
	t.eps = make(map[string]*Endpoint)
	t.inbox = nil
	name := t.name
	t.mu.Unlock()
	t.sub.mu.Lock()
	delete(t.sub.domains, name)
	t.sub.free = append(t.sub.free, t.id)
	t.sub.mu.Unlock()
	return nil
}

// SendMessage transmits via a configured endpoint, consuming one credit.
// No endpoint, no communication — connectivity is entirely
// kernel-granted, the hardware version of a manifest.
func (t *Tile) SendMessage(epName string, payload []byte) error {
	t.mu.Lock()
	ep, ok := t.eps[epName]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("noc %s ep %q: %w", t.name, epName, ErrNoEndpoint)
	}
	if ep.credits <= 0 {
		t.mu.Unlock()
		return fmt.Errorf("noc %s ep %q: %w", t.name, epName, ErrNoCredits)
	}
	ep.credits--
	target := ep.target
	t.mu.Unlock()

	msg := make([]byte, len(payload))
	copy(msg, payload)
	target.mu.Lock()
	target.inbox = append(target.inbox, msg)
	target.mu.Unlock()
	return nil
}

// RecvMessage pops the oldest delivered message and refunds one credit to
// the sender's endpoint? No — M3 refunds on explicit reply; we model the
// simple credit-consume scheme and let the kernel top up.
func (t *Tile) RecvMessage() ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.inbox) == 0 {
		return nil, false
	}
	m := t.inbox[0]
	t.inbox = t.inbox[1:]
	return m, true
}

// Refill tops up an endpoint's credits (kernel operation).
func (s *Substrate) Refill(from, epName string, credits int) error {
	src, err := s.TileOf(from)
	if err != nil {
		return err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	ep, ok := src.eps[epName]
	if !ok {
		return fmt.Errorf("noc %s ep %q: %w", from, epName, ErrNoEndpoint)
	}
	ep.credits += credits
	return nil
}
