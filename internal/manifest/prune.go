package manifest

import (
	"fmt"
	"sort"

	"lateral/internal/core"
)

// This file implements POLA pruning, part of the §IV tool suite: after
// observing a representative workload, every granted-but-never-used
// channel is a standing violation of the Principle of Least Authority —
// authority a compromised component could abuse but the application never
// needed. The tool proposes the tightened manifest.

// PruneSuggestion is one grant the workload never exercised.
type PruneSuggestion struct {
	Channel ChannelDecl
	Reason  string
}

func (p PruneSuggestion) String() string {
	return fmt.Sprintf("drop %s→%s (%q): %s", p.Channel.From, p.Channel.To, p.Channel.Name, p.Reason)
}

// SuggestPruning compares the manifest's grants with observed channel
// usage and returns the grants to drop, sorted by sender then name.
func (m *Manifest) SuggestPruning(usage []core.ChannelUse) []PruneSuggestion {
	used := make(map[string]bool, len(usage))
	for _, u := range usage {
		if u.Uses > 0 {
			used[u.From+"/"+u.Name] = true
		}
	}
	var out []PruneSuggestion
	for _, ch := range m.Channels {
		if !used[ch.From+"/"+ch.Name] {
			out = append(out, PruneSuggestion{
				Channel: ch,
				Reason:  "never invoked under the observed workload",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Channel.From != out[j].Channel.From {
			return out[i].Channel.From < out[j].Channel.From
		}
		return out[i].Channel.Name < out[j].Channel.Name
	})
	return out
}

// Pruned returns a copy of the manifest with the suggested grants removed.
func (m *Manifest) Pruned(suggestions []PruneSuggestion) *Manifest {
	drop := make(map[string]bool, len(suggestions))
	for _, s := range suggestions {
		drop[s.Channel.From+"/"+s.Channel.Name] = true
	}
	out := &Manifest{Components: append([]ComponentDecl(nil), m.Components...)}
	for _, ch := range m.Channels {
		if !drop[ch.From+"/"+ch.Name] {
			out.Channels = append(out.Channels, ch)
		}
	}
	return out
}
