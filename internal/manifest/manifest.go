// Package manifest implements the paper's §III-A programming-framework
// layer: "developers can describe the required communication channels to
// other components. Such a manifest enables the isolation substrate to
// establish just the needed channels and block all other communication,
// thereby promoting a POLA design mentality for the entire system.
// Furthermore, a map of communication relationships allows to reason about
// the required message protection if tampering is assumed."
//
// Besides declaring and applying a component graph, the package provides
// the §IV analysis tooling: reachability from exposed components,
// confused-deputy detection ("tools to uncover confused deputy problems
// are crucial"), and secret-leak detection.
package manifest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lateral/internal/core"
)

// Errors.
var (
	// ErrInvalid is returned for manifests that fail validation.
	ErrInvalid = errors.New("manifest: invalid")
)

// ComponentDecl declares one component placement.
type ComponentDecl struct {
	// Name of the component (must match the implementation's CompName).
	Name string

	// Domain places the component; components sharing a Domain are
	// colocated in one protection domain (the vertical design). Empty
	// means a private domain named after the component.
	Domain string

	// Trusted requests the substrate's protected environment.
	Trusted bool

	// MemPages sizes the domain (the largest request among colocated
	// components wins).
	MemPages int

	// Exposed marks components that receive input from the outside world
	// (network payloads, user input) — the attack surface.
	Exposed bool

	// Assets names the secrets this component holds.
	Assets []string
}

// EffectiveDomain returns the domain the component lands in.
func (c ComponentDecl) EffectiveDomain() string {
	if c.Domain != "" {
		return c.Domain
	}
	return c.Name
}

// ChannelDecl declares one granted channel (see core.ChannelSpec).
type ChannelDecl struct {
	Name       string
	From       string
	To         string
	Badge      uint64
	Declassify bool
}

// Manifest is a complete system description.
type Manifest struct {
	Components []ComponentDecl
	Channels   []ChannelDecl
}

// Validate checks structural consistency: unique component names, channel
// endpoints that exist, unique channel names per sender, and unambiguous
// badges per receiver.
func (m *Manifest) Validate() error {
	comps := make(map[string]ComponentDecl, len(m.Components))
	for _, c := range m.Components {
		if c.Name == "" {
			return fmt.Errorf("%w: component with empty name", ErrInvalid)
		}
		if _, dup := comps[c.Name]; dup {
			return fmt.Errorf("%w: duplicate component %q", ErrInvalid, c.Name)
		}
		comps[c.Name] = c
	}
	// Colocated components must agree on trust placement.
	domTrust := make(map[string]bool)
	for _, c := range m.Components {
		d := c.EffectiveDomain()
		if prev, ok := domTrust[d]; ok && prev != c.Trusted {
			return fmt.Errorf("%w: domain %q mixes trusted and untrusted components", ErrInvalid, d)
		}
		domTrust[d] = c.Trusted
	}
	chNames := make(map[string]bool)
	badges := make(map[string]map[uint64]string) // receiver -> badge -> sender
	for _, ch := range m.Channels {
		if _, ok := comps[ch.From]; !ok {
			return fmt.Errorf("%w: channel %q from unknown component %q", ErrInvalid, ch.Name, ch.From)
		}
		if _, ok := comps[ch.To]; !ok {
			return fmt.Errorf("%w: channel %q to unknown component %q", ErrInvalid, ch.Name, ch.To)
		}
		key := ch.From + "/" + ch.Name
		if chNames[key] {
			return fmt.Errorf("%w: duplicate channel name %q from %q", ErrInvalid, ch.Name, ch.From)
		}
		chNames[key] = true
		if ch.Badge != 0 {
			if badges[ch.To] == nil {
				badges[ch.To] = make(map[uint64]string)
			}
			if prev, ok := badges[ch.To][ch.Badge]; ok && prev != ch.From {
				return fmt.Errorf("%w: badge %d into %q used by both %q and %q",
					ErrInvalid, ch.Badge, ch.To, prev, ch.From)
			}
			badges[ch.To][ch.Badge] = ch.From
		}
	}
	return nil
}

// Registry maps component names to implementations when applying a
// manifest.
type Registry map[string]core.Component

// Apply validates the manifest, loads every component into the system per
// its placement, grants the declared channels, and initializes everything.
func (m *Manifest) Apply(sys *core.System, reg Registry) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// Group components by effective domain, preserving declaration order.
	type domGroup struct {
		trusted bool
		pages   int
		comps   []core.Component
	}
	groups := make(map[string]*domGroup)
	var order []string
	for _, decl := range m.Components {
		impl, ok := reg[decl.Name]
		if !ok {
			return fmt.Errorf("%w: no implementation registered for %q", ErrInvalid, decl.Name)
		}
		if impl.CompName() != decl.Name {
			return fmt.Errorf("%w: implementation %q registered under %q", ErrInvalid, impl.CompName(), decl.Name)
		}
		d := decl.EffectiveDomain()
		g, ok := groups[d]
		if !ok {
			g = &domGroup{trusted: decl.Trusted}
			groups[d] = g
			order = append(order, d)
		}
		if decl.MemPages > g.pages {
			g.pages = decl.MemPages
		}
		g.comps = append(g.comps, impl)
	}
	for _, d := range order {
		g := groups[d]
		if err := sys.Colocate(d, g.trusted, g.pages, g.comps...); err != nil {
			return err
		}
	}
	for _, ch := range m.Channels {
		if err := sys.Grant(core.ChannelSpec{
			Name:       ch.Name,
			From:       ch.From,
			To:         ch.To,
			Badge:      ch.Badge,
			Declassify: ch.Declassify,
		}); err != nil {
			return err
		}
	}
	return sys.InitAll()
}

// Reachable returns the set of components reachable from start by
// following channels forward (including start itself).
func (m *Manifest) Reachable(start string) map[string]bool {
	seen := map[string]bool{start: true}
	frontier := []string{start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, ch := range m.Channels {
			if ch.From == cur && !seen[ch.To] {
				seen[ch.To] = true
				frontier = append(frontier, ch.To)
			}
		}
	}
	return seen
}

// Finding is one analysis result.
type Finding struct {
	Kind      string // "confused-deputy", "leak", "exposure"
	Component string
	Detail    string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Kind, f.Component, f.Detail)
}

// Analyze runs the §IV tool suite and returns findings sorted by kind then
// component.
func (m *Manifest) Analyze() []Finding {
	var out []Finding
	out = append(out, m.findConfusedDeputies()...)
	out = append(out, m.findLeaks()...)
	out = append(out, m.findExposedAssets()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// findConfusedDeputies flags components invoked by two or more distinct
// clients where at least one inbound channel is ambient (badge 0): the
// deputy cannot reliably tell its clients apart.
func (m *Manifest) findConfusedDeputies() []Finding {
	inbound := make(map[string][]ChannelDecl)
	for _, ch := range m.Channels {
		inbound[ch.To] = append(inbound[ch.To], ch)
	}
	var out []Finding
	for to, chans := range inbound {
		senders := make(map[string]bool)
		ambient := 0
		for _, ch := range chans {
			senders[ch.From] = true
			if ch.Badge == 0 {
				ambient++
			}
		}
		if len(senders) >= 2 && ambient > 0 {
			names := make([]string, 0, len(senders))
			for s := range senders {
				names = append(names, s)
			}
			sort.Strings(names)
			out = append(out, Finding{
				Kind:      "confused-deputy",
				Component: to,
				Detail: fmt.Sprintf("serves %d clients (%s) with %d ambient channel(s); use badges",
					len(senders), strings.Join(names, ", "), ambient),
			})
		}
	}
	return out
}

// findLeaks flags asset-holding components with a non-declassified channel
// into an untrusted domain: secrets one hop from legacy code.
func (m *Manifest) findLeaks() []Finding {
	trusted := make(map[string]bool)
	hasAssets := make(map[string]bool)
	for _, c := range m.Components {
		trusted[c.Name] = c.Trusted
		hasAssets[c.Name] = len(c.Assets) > 0
	}
	var out []Finding
	for _, ch := range m.Channels {
		if hasAssets[ch.From] && !trusted[ch.To] && !ch.Declassify {
			out = append(out, Finding{
				Kind:      "leak",
				Component: ch.From,
				Detail: fmt.Sprintf("holds assets and has non-declassified channel %q to untrusted %q",
					ch.Name, ch.To),
			})
		}
	}
	return out
}

// findExposedAssets flags assets reachable (through any channel path) from
// an exposed component — the attack path the containment experiment walks.
func (m *Manifest) findExposedAssets() []Finding {
	var out []Finding
	for _, c := range m.Components {
		if !c.Exposed {
			continue
		}
		reach := m.Reachable(c.Name)
		for _, target := range m.Components {
			if len(target.Assets) == 0 || !reach[target.Name] || target.Name == c.Name {
				continue
			}
			out = append(out, Finding{
				Kind:      "exposure",
				Component: target.Name,
				Detail: fmt.Sprintf("assets %v reachable from exposed %q",
					target.Assets, c.Name),
			})
		}
	}
	return out
}

// AssetsInDomain returns the assets that share a protection domain with
// the given component — what a compromise of that component leaks under
// this manifest, statically.
func (m *Manifest) AssetsInDomain(component string) []string {
	var dom string
	for _, c := range m.Components {
		if c.Name == component {
			dom = c.EffectiveDomain()
			break
		}
	}
	if dom == "" {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, c := range m.Components {
		if c.EffectiveDomain() != dom {
			continue
		}
		for _, a := range c.Assets {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// DOT renders the component graph in Graphviz format: trusted components
// as boxes, untrusted as ellipses, badge channels as solid edges, ambient
// channels dashed.
func (m *Manifest) DOT() string {
	var b strings.Builder
	b.WriteString("digraph manifest {\n  rankdir=LR;\n")
	for _, c := range m.Components {
		shape := "ellipse"
		if c.Trusted {
			shape = "box"
		}
		label := c.Name
		if len(c.Assets) > 0 {
			label += "\\n[" + strings.Join(c.Assets, ",") + "]"
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=%q];\n", c.Name, shape, label)
	}
	for _, ch := range m.Channels {
		style := "dashed"
		if ch.Badge != 0 {
			style = "solid"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q,style=%s];\n", ch.From, ch.To, ch.Name, style)
	}
	b.WriteString("}\n")
	return b.String()
}
