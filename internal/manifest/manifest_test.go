package manifest

import (
	"errors"
	"strings"
	"testing"

	"lateral/internal/core"
)

func validManifest() *Manifest {
	return &Manifest{
		Components: []ComponentDecl{
			{Name: "net", Exposed: true},
			{Name: "tls", Trusted: true, Assets: []string{"tls-key"}},
			{Name: "render"},
			{Name: "store", Assets: []string{"mail-archive"}},
		},
		Channels: []ChannelDecl{
			{Name: "to-tls", From: "net", To: "tls", Badge: 1},
			{Name: "to-render", From: "net", To: "render"},
			{Name: "to-store", From: "render", To: "store", Badge: 2},
		},
	}
}

func TestValidateAcceptsGoodManifest(t *testing.T) {
	if err := validManifest().Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"empty component name", func(m *Manifest) { m.Components[0].Name = "" }},
		{"duplicate component", func(m *Manifest) { m.Components[1].Name = "net" }},
		{"unknown channel source", func(m *Manifest) { m.Channels[0].From = "ghost" }},
		{"unknown channel target", func(m *Manifest) { m.Channels[0].To = "ghost" }},
		{"duplicate channel name per sender", func(m *Manifest) {
			m.Channels = append(m.Channels, ChannelDecl{Name: "to-tls", From: "net", To: "render"})
		}},
		{"ambiguous badge", func(m *Manifest) {
			m.Channels = append(m.Channels, ChannelDecl{Name: "x", From: "render", To: "tls", Badge: 1})
		}},
		{"mixed trust in one domain", func(m *Manifest) {
			m.Components[0].Domain = "d"
			m.Components[1].Domain = "d"
		}},
	}
	for _, c := range cases {
		m := validManifest()
		c.mut(m)
		if err := m.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", c.name, err)
		}
	}
}

func TestEffectiveDomain(t *testing.T) {
	if (ComponentDecl{Name: "x"}).EffectiveDomain() != "x" {
		t.Error("default domain should be component name")
	}
	if (ComponentDecl{Name: "x", Domain: "app"}).EffectiveDomain() != "app" {
		t.Error("explicit domain ignored")
	}
}

func TestReachable(t *testing.T) {
	m := validManifest()
	r := m.Reachable("net")
	for _, want := range []string{"net", "tls", "render", "store"} {
		if !r[want] {
			t.Errorf("%s not reachable from net", want)
		}
	}
	r2 := m.Reachable("store")
	if len(r2) != 1 || !r2["store"] {
		t.Errorf("store should reach only itself, got %v", r2)
	}
}

func TestAnalyzeConfusedDeputy(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{{Name: "a"}, {Name: "b"}, {Name: "deputy"}},
		Channels: []ChannelDecl{
			{Name: "x", From: "a", To: "deputy"}, // ambient
			{Name: "y", From: "b", To: "deputy", Badge: 2},
		},
	}
	findings := m.Analyze()
	found := false
	for _, f := range findings {
		if f.Kind == "confused-deputy" && f.Component == "deputy" {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-client ambient deputy not flagged: %v", findings)
	}
	// All-badged deputy is clean.
	m.Channels[0].Badge = 1
	for _, f := range m.Analyze() {
		if f.Kind == "confused-deputy" {
			t.Errorf("fully badged deputy flagged: %v", f)
		}
	}
}

func TestAnalyzeLeak(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{
			{Name: "tls", Trusted: true, Assets: []string{"key"}},
			{Name: "legacy"},
		},
		Channels: []ChannelDecl{{Name: "reuse", From: "tls", To: "legacy"}},
	}
	var leak bool
	for _, f := range m.Analyze() {
		if f.Kind == "leak" && f.Component == "tls" {
			leak = true
		}
	}
	if !leak {
		t.Error("asset holder with channel to untrusted not flagged")
	}
	m.Channels[0].Declassify = true
	for _, f := range m.Analyze() {
		if f.Kind == "leak" {
			t.Errorf("declassified channel flagged: %v", f)
		}
	}
}

func TestAnalyzeExposure(t *testing.T) {
	m := validManifest()
	var exposedAssets []string
	for _, f := range m.Analyze() {
		if f.Kind == "exposure" {
			exposedAssets = append(exposedAssets, f.Component)
		}
	}
	// net reaches tls and store (both hold assets).
	if len(exposedAssets) != 2 {
		t.Errorf("exposure findings = %v, want tls and store", exposedAssets)
	}
}

func TestAssetsInDomain(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{
			{Name: "a", Domain: "app", Assets: []string{"a1"}},
			{Name: "b", Domain: "app", Assets: []string{"b1", "b2"}},
			{Name: "c", Assets: []string{"c1"}},
		},
	}
	got := m.AssetsInDomain("a")
	if len(got) != 3 {
		t.Errorf("colocated assets = %v, want a1,b1,b2", got)
	}
	got = m.AssetsInDomain("c")
	if len(got) != 1 || got[0] != "c1" {
		t.Errorf("isolated assets = %v", got)
	}
	if m.AssetsInDomain("ghost") != nil {
		t.Error("unknown component returned assets")
	}
}

func TestDOTOutput(t *testing.T) {
	dot := validManifest().DOT()
	for _, want := range []string{"digraph", `"net" -> "tls"`, "shape=box", "shape=ellipse", "style=dashed", "style=solid"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// stub is a minimal component for Apply tests.
type stub struct{ name string }

func (s *stub) CompName() string     { return s.name }
func (s *stub) CompVersion() string  { return "1" }
func (s *stub) Init(*core.Ctx) error { return nil }
func (s *stub) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "ok"}, nil
}

func TestApplyBuildsSystem(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{
			{Name: "a", Domain: "shared", MemPages: 2},
			{Name: "b", Domain: "shared", MemPages: 1},
			{Name: "c"},
		},
		Channels: []ChannelDecl{{Name: "x", From: "a", To: "c", Badge: 1}},
	}
	sys := core.NewSystem(core.NewMonolith(0))
	reg := Registry{"a": &stub{"a"}, "b": &stub{"b"}, "c": &stub{"c"}}
	if err := m.Apply(sys, reg); err != nil {
		t.Fatal(err)
	}
	da, _ := sys.DomainOf("a")
	db, _ := sys.DomainOf("b")
	dc, _ := sys.DomainOf("c")
	if da != "shared" || db != "shared" || dc != "c" {
		t.Errorf("domains = %s,%s,%s", da, db, dc)
	}
	ctx, err := sys.CtxOf("a")
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.HasChannel("x") {
		t.Error("channel not granted by Apply")
	}
	// Colocated domain must take the max page request.
	h, _ := sys.HandleOf("a")
	if h.MemSize() != 2*4096 {
		t.Errorf("shared domain size = %d", h.MemSize())
	}
}

func TestApplyErrors(t *testing.T) {
	m := validManifest()
	sys := core.NewSystem(core.NewMonolith(0))
	err := m.Apply(sys, Registry{})
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("missing registry entry: got %v", err)
	}
	// Wrong registration name.
	reg := Registry{"net": &stub{"other"}, "tls": &stub{"tls"}, "render": &stub{"render"}, "store": &stub{"store"}}
	if err := m.Apply(core.NewSystem(core.NewMonolith(0)), reg); !errors.Is(err, ErrInvalid) {
		t.Errorf("mismatched registration: got %v", err)
	}
	// Invalid manifest surfaces from Apply.
	bad := validManifest()
	bad.Components[0].Name = ""
	if err := bad.Apply(core.NewSystem(core.NewMonolith(0)), reg); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid manifest applied: got %v", err)
	}
}
