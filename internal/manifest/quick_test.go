package manifest

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// genManifest builds a structurally valid manifest from fuzz-ish inputs:
// nComps components (bounded), edges selected by the bit patterns.
func genManifest(nComps uint8, edges []uint16, colocate, expose, badge uint8) *Manifest {
	n := int(nComps%6) + 2
	m := &Manifest{}
	for i := 0; i < n; i++ {
		c := ComponentDecl{Name: fmt.Sprintf("c%d", i)}
		if colocate&(1<<uint(i%8)) != 0 {
			c.Domain = "shared"
		}
		if expose&(1<<uint(i%8)) != 0 {
			c.Exposed = true
		}
		if i%2 == 0 {
			c.Assets = []string{fmt.Sprintf("asset%d", i)}
		}
		m.Components = append(m.Components, c)
	}
	for k, e := range edges {
		if k > 12 {
			break
		}
		from := int(e) % n
		to := int(e>>4) % n
		if from == to {
			continue
		}
		var b uint64
		if badge&(1<<uint(k%8)) != 0 {
			b = uint64(k + 1)
		}
		m.Channels = append(m.Channels, ChannelDecl{
			Name:  fmt.Sprintf("ch%d", k),
			From:  fmt.Sprintf("c%d", from),
			To:    fmt.Sprintf("c%d", to),
			Badge: b,
		})
	}
	return m
}

// Property: generated manifests validate, and Analyze/DOT/Reachable never
// panic and obey basic laws (reachability is reflexive and monotone in the
// channel set; pruning with no suggestions is the identity).
func TestQuickManifestLaws(t *testing.T) {
	f := func(nComps uint8, edges []uint16, colocate, expose, badge uint8) bool {
		m := genManifest(nComps, edges, colocate, expose, badge)
		if err := m.Validate(); err != nil {
			// The generator can produce duplicate badge assignments into
			// one receiver from different senders; that rejection is
			// correct, not a law violation.
			return strings.Contains(err.Error(), "badge")
		}
		_ = m.Analyze()
		if !strings.Contains(m.DOT(), "digraph") {
			return false
		}
		for _, c := range m.Components {
			r := m.Reachable(c.Name)
			if !r[c.Name] {
				return false // reflexivity
			}
		}
		// Monotonicity: removing all channels can only shrink reach sets.
		bare := &Manifest{Components: m.Components}
		for _, c := range m.Components {
			full := m.Reachable(c.Name)
			for name := range bare.Reachable(c.Name) {
				if !full[name] {
					return false
				}
			}
		}
		// Identity pruning.
		if len(m.Pruned(nil).Channels) != len(m.Channels) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AssetsInDomain returns each asset at most once, and the union
// over all domains equals the set of declared assets.
func TestQuickAssetsInDomainPartition(t *testing.T) {
	f := func(nComps uint8, colocate uint8) bool {
		m := genManifest(nComps, nil, colocate, 0, 0)
		seen := map[string]int{}
		domains := map[string]bool{}
		for _, c := range m.Components {
			domains[c.EffectiveDomain()] = true
		}
		for _, c := range m.Components {
			if domains[c.EffectiveDomain()] {
				// count each domain once
			}
		}
		counted := map[string]bool{}
		for _, c := range m.Components {
			d := c.EffectiveDomain()
			if counted[d] {
				continue
			}
			counted[d] = true
			for _, a := range m.AssetsInDomain(c.Name) {
				seen[a]++
			}
		}
		for _, c := range m.Components {
			for _, a := range c.Assets {
				if seen[a] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
