package manifest_test

import (
	"fmt"

	"lateral/internal/manifest"
)

// Example shows declaring a small system and running the §IV analysis:
// the deputy serving two clients over an ambient channel is flagged, and
// the TLS component's non-declassified channel into legacy code is
// reported as a potential leak.
func Example() {
	m := &manifest.Manifest{
		Components: []manifest.ComponentDecl{
			{Name: "browser", Exposed: true},
			{Name: "editor"},
			{Name: "printer"}, // deputy with two clients
			{Name: "tls", Trusted: true, Assets: []string{"session-key"}},
			{Name: "legacy-os"},
		},
		Channels: []manifest.ChannelDecl{
			{Name: "print", From: "browser", To: "printer"}, // ambient!
			{Name: "print", From: "editor", To: "printer", Badge: 2},
			{Name: "reuse", From: "tls", To: "legacy-os"}, // not declassified
		},
	}
	if err := m.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	for _, f := range m.Analyze() {
		fmt.Println(f)
	}
	// Output:
	// [confused-deputy] printer: serves 2 clients (browser, editor) with 1 ambient channel(s); use badges
	// [leak] tls: holds assets and has non-declassified channel "reuse" to untrusted "legacy-os"
}
