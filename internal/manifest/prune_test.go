package manifest

import (
	"testing"

	"lateral/internal/core"
)

func TestSuggestPruningFlagsUnusedGrants(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Channels: []ChannelDecl{
			{Name: "used", From: "a", To: "b", Badge: 1},
			{Name: "dusty", From: "a", To: "c", Badge: 2},
			{Name: "dead", From: "b", To: "c", Badge: 3},
		},
	}
	usage := []core.ChannelUse{
		{Name: "used", From: "a", To: "b", Uses: 7},
		{Name: "dusty", From: "a", To: "c", Uses: 0},
		{Name: "dead", From: "b", To: "c", Uses: 0},
	}
	sugg := m.SuggestPruning(usage)
	if len(sugg) != 2 {
		t.Fatalf("suggestions = %v", sugg)
	}
	if sugg[0].Channel.Name != "dusty" || sugg[1].Channel.Name != "dead" {
		t.Errorf("order/content = %v", sugg)
	}
	if sugg[0].String() == "" {
		t.Error("empty suggestion string")
	}
	pruned := m.Pruned(sugg)
	if len(pruned.Channels) != 1 || pruned.Channels[0].Name != "used" {
		t.Errorf("pruned channels = %v", pruned.Channels)
	}
	if len(pruned.Components) != 3 {
		t.Errorf("pruned components = %v", pruned.Components)
	}
	// Pruning with no suggestions is the identity.
	same := m.Pruned(nil)
	if len(same.Channels) != 3 {
		t.Errorf("identity prune = %v", same.Channels)
	}
}

// liveStub counts indirect usage through a real system.
type liveStub struct {
	name string
	call string
	ctx  *core.Ctx
}

func (s *liveStub) CompName() string         { return s.name }
func (s *liveStub) CompVersion() string      { return "1" }
func (s *liveStub) Init(ctx *core.Ctx) error { s.ctx = ctx; return nil }
func (s *liveStub) Handle(env core.Envelope) (core.Message, error) {
	if s.call != "" {
		return s.ctx.Call(s.call, env.Msg)
	}
	return core.Message{Op: "ok"}, nil
}

func TestPruningAgainstLiveSystemUsage(t *testing.T) {
	m := &Manifest{
		Components: []ComponentDecl{{Name: "front"}, {Name: "back"}, {Name: "idle"}},
		Channels: []ChannelDecl{
			{Name: "back", From: "front", To: "back", Badge: 1},
			{Name: "idle", From: "front", To: "idle", Badge: 2},
		},
	}
	sys := core.NewSystem(core.NewMonolith(0))
	reg := Registry{
		"front": &liveStub{name: "front", call: "back"},
		"back":  &liveStub{name: "back"},
		"idle":  &liveStub{name: "idle"},
	}
	if err := m.Apply(sys, reg); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deliver("front", core.Message{Op: "go"}); err != nil {
		t.Fatal(err)
	}
	sugg := m.SuggestPruning(sys.ChannelUsage())
	if len(sugg) != 1 || sugg[0].Channel.Name != "idle" {
		t.Errorf("live-system suggestions = %v", sugg)
	}
	// The pruned manifest still validates and still serves the workload.
	pruned := m.Pruned(sugg)
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
	sys2 := core.NewSystem(core.NewMonolith(0))
	reg2 := Registry{
		"front": &liveStub{name: "front", call: "back"},
		"back":  &liveStub{name: "back"},
		"idle":  &liveStub{name: "idle"},
	}
	if err := pruned.Apply(sys2, reg2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Deliver("front", core.Message{Op: "go"}); err != nil {
		t.Errorf("workload broke after pruning: %v", err)
	}
}
