// Backoff and health timing on the simulated clock: the wall-clock seams
// (Config.Sleep, Config.Clock) driven by simtest.Clock instead of recorder
// stubs and hand-advanced fakes. These live in package cluster_test
// because simtest imports cluster; the external package breaks the cycle.
// Nothing here sleeps or races a scheduler — backoff delays and health
// intervals elapse only when the test advances virtual time.
package cluster_test

import (
	"testing"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/simtest"
)

// TestOutageBackoffElapsesOnVirtualClock: with the whole fleet crashed,
// the pool's exponential backoff sleeps advance the virtual clock — and
// the jittered schedule is a pure function of the seed, so two identical
// deployments burn byte-identical amounts of virtual time.
func TestOutageBackoffElapsesOnVirtualClock(t *testing.T) {
	run := func() (time.Duration, error) {
		h, err := simtest.NewHarness(simtest.HarnessConfig{Replicas: 1, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		h.Apply(simtest.Fault{Kind: simtest.FaultCrash, Target: simtest.ReplicaName(1)})
		before := h.Clock.Elapsed()
		err = h.CallWork("op-1", "key-a", 0)
		return h.Clock.Elapsed() - before, err
	}
	elapsed, err := run()
	if err == nil {
		t.Fatal("call against a fully crashed fleet succeeded")
	}
	// The lone replica burns attempt 0 without sleeping; attempt 1 sees an
	// empty pool and backs off base + jitter, jitter in [0, base); the
	// final attempt returns without sleeping. BackoffBase defaults to
	// 200µs.
	base := 200 * time.Microsecond
	if elapsed < base || elapsed >= 2*base {
		t.Errorf("outage backoff advanced %v, want within [%v, %v)", elapsed, base, 2*base)
	}
	elapsed2, _ := run()
	if elapsed != elapsed2 {
		t.Errorf("same seed, different backoff schedules: %v vs %v", elapsed, elapsed2)
	}
}

// TestHealthIntervalElapsesOnVirtualClock converts the piggybacked
// health-round test off the hand-rolled fake clock: a healed machine is
// re-admitted only once the health interval has elapsed in virtual time,
// no matter how much traffic flows before that.
func TestHealthIntervalElapsesOnVirtualClock(t *testing.T) {
	h, err := simtest.NewHarness(simtest.HarnessConfig{
		Replicas:       2,
		Seed:           12,
		HealthInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Apply(simtest.Fault{Kind: simtest.FaultCrash, Target: simtest.ReplicaName(2)})
	for i := 0; i < 4; i++ {
		if err := h.CallWork("op-crash", "key", 0); err != nil {
			t.Fatalf("call with one healthy replica: %v", err)
		}
	}
	if got := h.Pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d after crash, want 1", got)
	}
	// The machine recovers, but the pool must not notice until its health
	// interval elapses: traffic alone does not re-admit.
	h.HealWire(simtest.ReplicaName(2))
	if err := h.CallWork("op-early", "key", 0); err != nil {
		t.Fatal(err)
	}
	if got := h.Pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d before interval, want 1", got)
	}
	h.Clock.Advance(2 * time.Minute)
	if err := h.CallWork("op-late", "key", 0); err != nil {
		t.Fatal(err)
	}
	if got := h.Pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after interval, want 2", got)
	}
	if v := h.CheckAll(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

// TestCongestedProbesMarkDownThenRecover: a delayer detaining every
// datagram makes health probes miss, downing the fleet; removing it lets
// the next health round reconnect and re-admit. All on virtual time.
func TestCongestedProbesMarkDownThenRecover(t *testing.T) {
	h, err := simtest.NewHarness(simtest.HarnessConfig{Replicas: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	h.Pool.CheckNow()
	if got := h.Pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d on a clean wire, want 2", got)
	}
	// 100% detention: pings leave but never arrive inside the probe.
	h.Apply(simtest.Fault{Kind: simtest.FaultDelay, Seed: 9, Pct: 100, Dur: time.Second, N: 1})
	h.Pool.CheckNow()
	if got := h.Pool.Healthy(); got != 0 {
		t.Fatalf("healthy = %d under full congestion, want 0", got)
	}
	// Congestion clears; the next round reconnects and re-admits.
	h.Apply(simtest.Fault{Kind: simtest.FaultDelay, N: 0})
	h.Pool.CheckNow()
	if got := h.Pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after congestion cleared, want 2", got)
	}
	if got := h.Pool.Quarantined(); got != 0 {
		t.Fatalf("quarantined = %d, want 0 (congestion is not tampering)", got)
	}
}

// TestQuarantineSurvivesHealOnVirtualClock: tampering quarantines a
// replica; healing the wire and forcing health rounds must never re-admit
// it — quarantine is absorbing (checked here directly, and continuously by
// the explorer's AbsorbChecker).
func TestQuarantineSurvivesHealOnVirtualClock(t *testing.T) {
	h, err := simtest.NewHarness(simtest.HarnessConfig{Replicas: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	h.Apply(simtest.Fault{Kind: simtest.FaultTamper, Target: simtest.ReplicaName(1)})
	for i := 0; i < 4; i++ {
		h.CallWork("op-t", "key", 0) // outcome depends on which replica serves; quarantine is the point
		h.Pool.CheckNow()
	}
	if got := h.Pool.Quarantined(); got != 1 {
		t.Fatalf("quarantined = %d under tampering, want 1", got)
	}
	h.Apply(simtest.Fault{Kind: simtest.FaultTamper}) // stop tampering
	h.Apply(simtest.Fault{Kind: simtest.FaultHeal})   // heal + CheckNow
	h.Clock.Advance(time.Hour)
	h.Pool.CheckNow()
	if got := h.Pool.Quarantined(); got != 1 {
		t.Fatalf("quarantined = %d after heal, want 1 (absorbing)", got)
	}
	for _, r := range h.Pool.Replicas() {
		if r.Name == simtest.ReplicaName(1) && r.State != cluster.StateQuarantined {
			t.Errorf("replica %s state = %v, want quarantined", r.Name, r.State)
		}
	}
	if v := h.CheckAll(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}
