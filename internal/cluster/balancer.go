package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Balancer picks a replica for one call from the currently healthy
// candidates. Pick is always called with at least one candidate, under the
// pool's lock — implementations may keep unsynchronized state. Returning
// nil makes the call fail with ErrNoReplicas.
type Balancer interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string

	// Pick chooses a replica. key is the caller identity (or any affinity
	// key); policies that don't shard may ignore it.
	Pick(key string, candidates []*Replica) *Replica
}

// RoundRobin cycles through healthy replicas in admission order. The
// cursor advances globally, not per candidate set, so the rotation stays
// fair as replicas fail and recover.
type RoundRobin struct {
	next uint64
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Balancer.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Balancer.
func (b *RoundRobin) Pick(_ string, candidates []*Replica) *Replica {
	r := candidates[b.next%uint64(len(candidates))]
	b.next++
	return r
}

// LeastInflight picks the replica with the fewest outstanding calls,
// breaking ties with a rotating cursor so equal replicas share load
// instead of the first always winning.
type LeastInflight struct {
	tie uint64
}

// NewLeastInflight returns a fresh least-inflight policy.
func NewLeastInflight() *LeastInflight { return &LeastInflight{} }

// Name implements Balancer.
func (*LeastInflight) Name() string { return "least-inflight" }

// Pick implements Balancer. Inflight gauges move concurrently with Pick
// (callers mutate them outside the pool lock), so each candidate's count is
// read exactly once into a snapshot; computing min and collecting ties from
// live re-reads could otherwise leave the tie set empty.
func (b *LeastInflight) Pick(_ string, candidates []*Replica) *Replica {
	counts := make([]int64, len(candidates))
	counts[0] = candidates[0].InflightCount()
	min := counts[0]
	for i, r := range candidates[1:] {
		n := r.InflightCount()
		counts[i+1] = n
		if n < min {
			min = n
		}
	}
	var tied []*Replica
	for i, r := range candidates {
		if counts[i] == min {
			tied = append(tied, r)
		}
	}
	r := tied[b.tie%uint64(len(tied))]
	b.tie++
	return r
}

// ConsistentHash shards calls by key on a hash ring of virtual nodes, so
// one caller's traffic sticks to one replica (cache affinity, per-caller
// rate state) yet redistributes minimally when a replica fails: only the
// keys owned by the lost replica move.
type ConsistentHash struct {
	// Vnodes is the number of ring points per replica (default 64).
	Vnodes int
}

// NewConsistentHash returns a consistent-hash policy with the default
// virtual-node count.
func NewConsistentHash() *ConsistentHash { return &ConsistentHash{Vnodes: 64} }

// Name implements Balancer.
func (*ConsistentHash) Name() string { return "consistent-hash" }

// Pick implements Balancer. The ring is rebuilt from the candidate set on
// every call: candidate churn is exactly the failover case where ring
// membership must change, and fleet sizes here are small enough that the
// rebuild is cheap and keeps the policy stateless and deterministic.
func (b *ConsistentHash) Pick(key string, candidates []*Replica) *Replica {
	vnodes := b.Vnodes
	if vnodes <= 0 {
		vnodes = 64
	}
	type point struct {
		h uint64
		r *Replica
	}
	ring := make([]point, 0, len(candidates)*vnodes)
	for _, r := range candidates {
		for v := 0; v < vnodes; v++ {
			ring = append(ring, point{hash64(r.Name() + "#" + strconv.Itoa(v)), r})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].h < ring[j].h })
	kh := hash64(key)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].h >= kh })
	if i == len(ring) {
		i = 0
	}
	return ring[i].r
}

// hash64 is FNV-1a with a splitmix64 finalizer. The finalizer matters:
// raw FNV of near-identical short keys ("meter-001", "meter-002", …)
// clusters in the high bits, which would drop every key into the same ring
// gap and defeat the sharding entirely.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
