package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Balancer picks a replica for one call from the currently healthy
// candidates. Pick is always called with at least one candidate, under the
// pool's lock — implementations may keep unsynchronized state. Returning
// nil makes the call fail with ErrNoReplicas.
type Balancer interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string

	// Pick chooses a replica. key is the caller identity (or any affinity
	// key); policies that don't shard may ignore it.
	Pick(key string, candidates []*Replica) *Replica
}

// RoundRobin cycles through healthy replicas in admission order. The
// cursor advances globally, not per candidate set, so the rotation stays
// fair as replicas fail and recover.
type RoundRobin struct {
	next uint64
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Balancer.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Balancer.
func (b *RoundRobin) Pick(_ string, candidates []*Replica) *Replica {
	r := candidates[b.next%uint64(len(candidates))]
	b.next++
	return r
}

// LeastInflight picks the replica with the fewest outstanding calls,
// breaking ties with a rotating cursor so equal replicas share load
// instead of the first always winning.
type LeastInflight struct {
	tie uint64
}

// NewLeastInflight returns a fresh least-inflight policy.
func NewLeastInflight() *LeastInflight { return &LeastInflight{} }

// Name implements Balancer.
func (*LeastInflight) Name() string { return "least-inflight" }

// Pick implements Balancer. Inflight gauges move concurrently with Pick
// (callers mutate them outside the pool lock), so each candidate's count is
// read exactly once into a snapshot; computing min and collecting ties from
// live re-reads could otherwise leave the tie set empty.
func (b *LeastInflight) Pick(_ string, candidates []*Replica) *Replica {
	counts := make([]int64, len(candidates))
	counts[0] = candidates[0].InflightCount()
	min := counts[0]
	for i, r := range candidates[1:] {
		n := r.InflightCount()
		counts[i+1] = n
		if n < min {
			min = n
		}
	}
	var tied []*Replica
	for i, r := range candidates {
		if counts[i] == min {
			tied = append(tied, r)
		}
	}
	r := tied[b.tie%uint64(len(tied))]
	b.tie++
	return r
}

// ConsistentHash shards calls by key on a hash ring of virtual nodes, so
// one caller's traffic sticks to one replica (cache affinity, per-caller
// rate state) yet redistributes minimally when membership changes: only
// the keys owned by a departed replica (or claimed by a joiner's points)
// move — ~K/N of the keyspace per single-replica change.
type ConsistentHash struct {
	// Vnodes is the number of ring points per replica (default 64).
	Vnodes int

	// Cached ring state, maintained incrementally as the candidate set
	// churns (join, leave, failover, recovery). Pick runs under the pool
	// lock, so none of this needs its own synchronization. points caches
	// each ever-seen member's hashed vnode positions — hashing is the
	// expensive part of a rebuild, and a replica's points never change,
	// so churn costs hash work proportional only to never-seen joiners.
	ring    []ringPoint
	members map[string]*Replica
	points  map[string][]uint64
}

type ringPoint struct {
	h uint64
	r *Replica
}

// NewConsistentHash returns a consistent-hash policy with the default
// virtual-node count.
func NewConsistentHash() *ConsistentHash { return &ConsistentHash{Vnodes: 64} }

// Name implements Balancer.
func (*ConsistentHash) Name() string { return "consistent-hash" }

// Pick implements Balancer. The cached ring is reconciled against the
// candidate set incrementally: departed members' points are filtered out
// in one pass, joiners' (cached or freshly hashed) points are merged in
// sorted position. An unchanged candidate set — the overwhelmingly common
// case — costs one membership comparison and a binary search.
func (b *ConsistentHash) Pick(key string, candidates []*Replica) *Replica {
	b.reconcile(candidates)
	if len(b.ring) == 0 {
		return nil
	}
	kh := hash64(key)
	i := sort.Search(len(b.ring), func(i int) bool { return b.ring[i].h >= kh })
	if i == len(b.ring) {
		i = 0
	}
	return b.ring[i].r
}

// reconcile updates the cached ring to match the candidate set.
func (b *ConsistentHash) reconcile(candidates []*Replica) {
	if b.members == nil {
		b.members = make(map[string]*Replica)
		b.points = make(map[string][]uint64)
	}
	same := len(candidates) == len(b.members)
	if same {
		for _, r := range candidates {
			if b.members[r.Name()] != r {
				same = false
				break
			}
		}
	}
	if same {
		return
	}

	// Removals: one filtering pass drops every point owned by a member no
	// longer in the candidate set (order among survivors is preserved).
	next := make(map[string]*Replica, len(candidates))
	for _, r := range candidates {
		next[r.Name()] = r
	}
	kept := b.ring[:0]
	for _, pt := range b.ring {
		if cur, ok := next[pt.r.Name()]; ok {
			pt.r = cur // same name may be a reconnected *Replica
			kept = append(kept, pt)
		}
	}
	b.ring = kept

	// Additions: gather the joiners' points (cached across membership
	// flaps — a name's positions are a pure function of the name), sort
	// just those, and merge two sorted runs in place.
	var added []ringPoint
	for _, r := range candidates {
		if _, ok := b.members[r.Name()]; ok {
			continue
		}
		for _, h := range b.pointsFor(r.Name()) {
			added = append(added, ringPoint{h, r})
		}
	}
	if len(added) > 0 {
		sort.Slice(added, func(i, j int) bool { return added[i].h < added[j].h })
		b.ring = mergeRings(b.ring, added)
	}
	b.members = next
}

// pointsFor returns (computing and caching on first use) the sorted vnode
// hashes for a member name.
func (b *ConsistentHash) pointsFor(name string) []uint64 {
	if pts, ok := b.points[name]; ok {
		return pts
	}
	vnodes := b.Vnodes
	if vnodes <= 0 {
		vnodes = 64
	}
	pts := make([]uint64, vnodes)
	for v := 0; v < vnodes; v++ {
		pts[v] = hash64(name + "#" + strconv.Itoa(v))
	}
	b.points[name] = pts
	return pts
}

// mergeRings merges two hash-sorted point runs, extending ring in place.
// Ties (hash collisions across names) keep the existing ring's point
// first — deterministic regardless of join order history.
func mergeRings(ring, added []ringPoint) []ringPoint {
	n, m := len(ring), len(added)
	ring = append(ring, added...)
	// Backwards merge: fill from the end so the in-place extension never
	// overwrites an unconsumed element.
	i, j, k := n-1, m-1, n+m-1
	for j >= 0 {
		if i >= 0 && ring[i].h > added[j].h {
			ring[k] = ring[i]
			i--
		} else {
			ring[k] = added[j]
			j--
		}
		k--
	}
	return ring
}

// hash64 is FNV-1a with a splitmix64 finalizer. The finalizer matters:
// raw FNV of near-identical short keys ("meter-001", "meter-002", …)
// clusters in the high bits, which would drop every key into the same ring
// gap and defeat the sharding entirely.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
