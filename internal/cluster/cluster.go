// Package cluster turns a single exported trusted component into an
// attested replica fleet: health-checked, load-balanced, and
// failover-capable. It extends §III-D's "distributed confidence domains
// across machine boundaries" from one Exporter/Stub pair to N of them —
// the shape a Fig. 3 anonymizer must take to serve heavy traffic from
// millions of meters.
//
// Trust model: every replica is admitted only after an independent
// attested handshake against the SAME pinned code measurement and vendor
// key. A replica whose evidence mismatches — a tampered build, a software
// emulation without the fused key — is rejected at admission, recorded as
// quarantined, and never retried into the pool. Crashes and partitions,
// by contrast, are operational failures: the replica is marked down,
// in-flight calls transparently fail over to a sibling at once (bounded
// attempts; exponential backoff with deterministic jitter applies only
// while no healthy replica remains), and periodic health
// checks re-admit it once a fresh handshake — including re-attestation —
// succeeds. Recovery and re-admission share one gate: the measurement.
package cluster

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/netsim"
)

// Errors.
var (
	// ErrAttestation marks evidence that failed verification against the
	// pinned measurement or vendor key. It is permanent: the pool
	// quarantines the replica and never dials it again.
	ErrAttestation = errors.New("cluster: attestation refused")

	// ErrNoReplicas is returned when no healthy replica is available.
	ErrNoReplicas = errors.New("cluster: no healthy replicas")

	// ErrExhausted wraps the last failure after bounded failover gave up.
	ErrExhausted = errors.New("cluster: retry attempts exhausted")

	// ErrQuarantined is returned by Admit/Join/Leave for a name that has
	// been quarantined: expulsion is permanent, and the tombstone outlives
	// the replica's membership, so a tampered build cannot re-enter the
	// fleet by leaving and knocking again under the same name.
	ErrQuarantined = errors.New("cluster: replica quarantined")
)

// State is a replica's admission state.
type State int

// Replica states.
const (
	// StateHealthy: admitted, attested, passing health checks.
	StateHealthy State = iota
	// StateDown: operationally unreachable (crash, partition); health
	// checks keep trying to reconnect and re-attest it.
	StateDown
	// StateQuarantined: attestation failed; permanently expelled.
	StateQuarantined
	// StateDraining: excluded from dispatch while in-flight calls run to
	// completion — the transient phase of an epoch rekey or a Leave. Not
	// a trust transition: the journal never records it, and the replica
	// returns to its pre-drain trust state (or a journaled real
	// transition) before the epoch activates.
	StateDraining
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDown:
		return "down"
	case StateQuarantined:
		return "quarantined"
	case StateDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Monitor receives fleet telemetry. telemetry.Metrics implements it
// structurally (the same pattern as netsim.Monitor); a nil Monitor is
// silently replaced by a no-op.
type Monitor interface {
	ReplicaState(fleet, replica string, healthy, quarantined bool)
	ReplicaInflight(fleet, replica string, delta int)
	ReplicaCall(fleet, replica string, failed bool)
	ReplicaRetry(fleet, replica string)
	ReplicaFailover(fleet, replica string)
}

type nopMonitor struct{}

func (nopMonitor) ReplicaState(string, string, bool, bool) {}
func (nopMonitor) ReplicaInflight(string, string, int)     {}
func (nopMonitor) ReplicaCall(string, string, bool)        {}
func (nopMonitor) ReplicaRetry(string, string)             {}
func (nopMonitor) ReplicaFailover(string, string)          {}

// EventRecorder is the structural hook into the fleet's black box
// (internal/journal): admission, health transitions, quarantine, and
// failover become durable journal entries. Declared here rather than
// imported, same as Monitor. Implementations must be safe for concurrent
// use and must NOT call back into the Pool: state-transition events are
// emitted while the pool's mutex is held, so journal order always equals
// commit order.
type EventRecorder interface {
	RecordEvent(kind, actor, detail string, trace, span uint64)
}

// Replica is one fleet member.
type Replica struct {
	name     string
	stub     *distributed.Stub
	setEpoch func(uint64) // pushes a new config epoch to the replica's exporter

	// mu serializes connection management (Connect/Ping health probes) so
	// health rounds never race each other on one replica. Calls do NOT
	// take it: the stub pipelines, so any number of requests may be in
	// flight per replica at once.
	mu sync.Mutex

	// state is guarded by the owning pool's mutex.
	state State

	inflight  atomic.Int64
	calls     atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
}

// Name returns the replica's fleet-unique name.
func (r *Replica) Name() string { return r.name }

// InflightCount returns the outstanding-call gauge (balancer input).
func (r *Replica) InflightCount() int64 { return r.inflight.Load() }

// ReplicaInfo is a point-in-time snapshot of one replica.
type ReplicaInfo struct {
	Name      string
	State     State
	Inflight  int64
	Calls     int64
	Errors    int64
	Retries   int64
	Failovers int64

	// Version is the replica stub's component version string, which names
	// the wire frame version it speaks — `lateralctl cluster` surfaces it
	// so a mixed-version rollout is visible at a glance.
	Version string

	// Epoch is the fleet config epoch the replica's live session was
	// keyed at (0 when disconnected or pre-epoch). A healthy replica
	// whose Epoch lags the pool's active epoch is stale-keyed — the
	// condition the simulation's eighth invariant forbids.
	Epoch uint64

	// Stub is the stub's pipelining counter snapshot (correlation-ID
	// bookkeeping: issued/completed/failed/orphaned calls and pipeline
	// depth).
	Stub distributed.StubStats
}

// Config configures a Pool.
type Config struct {
	// Fleet names the fleet in telemetry.
	Fleet string

	// RemoteName is the exported component's name, identical on every
	// replica (it is the same audited binary).
	RemoteName string

	// VendorKey is the trust anchor vendor all replica substrates must
	// chain to.
	VendorKey ed25519.PublicKey

	// Measurement is the pinned audited build; every replica must quote
	// exactly this.
	Measurement [32]byte

	// Balancer picks among healthy replicas (default: round-robin).
	Balancer Balancer

	// MaxAttempts bounds tries per call, first attempt included
	// (default 3).
	MaxAttempts int

	// BackoffBase is the first outage backoff; it doubles per consecutive
	// empty-pool round up to BackoffMax, plus jitter in [0, BackoffBase)
	// (defaults 200µs / 20ms). Failover to a healthy sibling is immediate
	// and never backs off.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// JitterSeed makes backoff jitter reproducible (default "cluster").
	JitterSeed string

	// HealthInterval runs a health round when this much time has passed
	// since the last one, piggybacked on Do (0 = only explicit CheckNow).
	HealthInterval time.Duration

	// PingTimeout fails a health probe that took longer than this
	// (0 = only probe errors fail).
	PingTimeout time.Duration

	// HealthFanout bounds how many replicas one health round probes
	// concurrently (default 4). 1 restores a fully sequential round —
	// deterministic simulations pin it there so probe traffic stays
	// replayable.
	HealthFanout int

	// Sleep and Clock are test seams (defaults time.Sleep / time.Now).
	Sleep func(time.Duration)
	Clock func() time.Time

	// Monitor receives fleet telemetry (default: discard).
	Monitor Monitor

	// Journal, when set, receives trust-relevant fleet events (admission,
	// health transitions, quarantine, failover) and is handed to each
	// replica's stub for session lifecycle events. Nil leaves the fleet
	// unjournaled.
	Journal EventRecorder

	// CoalesceMax caps each replica stub's adaptive coalescing window
	// (0 = the stub default, 1 = coalescing off); passed through to
	// distributed.StubConfig.CoalesceMax.
	CoalesceMax int
}

// ReplicaSpec describes one replica to admit.
type ReplicaSpec struct {
	// Name is the replica's fleet-unique name (metrics label).
	Name string

	// RemoteEndpoint is the replica machine's netsim endpoint.
	RemoteEndpoint string

	// Endpoint is the pool's own attachment for dialing this replica —
	// one per replica, so reply flights never interleave.
	Endpoint *netsim.Endpoint

	// Rand seeds the handshake (required).
	Rand *cryptoutil.PRNG

	// Pump drives the remote exporter, as in distributed.StubConfig.
	Pump func() error

	// SetEpoch, when set, is the control-plane hook that moves the
	// replica's exporter to a new fleet config epoch (typically
	// Exporter.SetEpoch). The pool pushes every epoch transition through
	// it so the replica refuses hellos — and evicts sessions — from
	// older epochs. Nil leaves the replica ungated (pre-epoch behavior).
	SetEpoch func(uint64)
}

// Pool is the attested replica fleet.
type Pool struct {
	cfg Config

	// epoch is the active fleet config epoch (0 = static pre-epoch
	// fleet); hsEpoch is the epoch new handshakes bind, which runs ahead
	// of epoch for the duration of a transition so every rekey lands on
	// the incoming configuration. epochMu serializes transitions
	// (Join/Leave) end to end.
	epoch   atomic.Uint64
	hsEpoch atomic.Uint64
	epochMu sync.Mutex

	mu        sync.Mutex
	replicas  []*Replica
	byName    map[string]*Replica
	tombstone map[string]string // quarantined names -> detail; survives Leave
	rng       *cryptoutil.PRNG
	lastCheck time.Time
}

// New validates the config and builds an empty pool; Admit adds replicas.
func New(cfg Config) (*Pool, error) {
	if cfg.RemoteName == "" || len(cfg.VendorKey) == 0 {
		return nil, fmt.Errorf("cluster: config needs RemoteName and VendorKey")
	}
	if cfg.Fleet == "" {
		cfg.Fleet = cfg.RemoteName
	}
	if cfg.Balancer == nil {
		cfg.Balancer = NewRoundRobin()
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Microsecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 20 * time.Millisecond
	}
	if cfg.JitterSeed == "" {
		cfg.JitterSeed = "cluster"
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Monitor == nil {
		cfg.Monitor = nopMonitor{}
	}
	if cfg.HealthFanout <= 0 {
		cfg.HealthFanout = 4
	}
	p := &Pool{
		cfg:       cfg,
		byName:    make(map[string]*Replica),
		tombstone: make(map[string]string),
		rng:       cryptoutil.NewPRNG("cluster-jitter-" + cfg.JitterSeed),
	}
	p.lastCheck = cfg.Clock()
	return p, nil
}

// verifier pins the fleet measurement: the admission (and re-admission)
// gate every replica handshake must pass.
func (p *Pool) verifier() func(ed25519.PublicKey, [32]byte, []byte) error {
	return func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
		q, err := core.DecodeQuote(evidence)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrAttestation, err)
		}
		if err := core.VerifyQuote(q, tr[:], p.cfg.VendorKey, p.cfg.Measurement); err != nil {
			return fmt.Errorf("%w: %v", ErrAttestation, err)
		}
		return nil
	}
}

// Admit dials one replica with a full attested handshake. Evidence
// mismatch quarantines the replica permanently and returns ErrAttestation;
// operational failures admit it as down (health checks will keep trying);
// success admits it healthy. The replica is recorded — and visible in
// telemetry — in all three cases. A name that was ever quarantined is
// refused outright with ErrQuarantined: re-admission under a poisoned
// name is never silent.
func (p *Pool) Admit(spec ReplicaSpec) error {
	if spec.Name == "" || spec.Endpoint == nil || spec.Rand == nil {
		return fmt.Errorf("cluster: replica spec needs Name, Endpoint, Rand")
	}
	// The fleet monitor doubles as the stub pipelining monitor when it
	// implements that interface too (telemetry.Metrics does, structurally).
	stubMon, _ := p.cfg.Monitor.(distributed.Monitor)
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     p.cfg.RemoteName,
		RemoteEndpoint: spec.RemoteEndpoint,
		Endpoint:       spec.Endpoint,
		Rand:           spec.Rand,
		VerifyServer:   p.verifier(),
		Pump:           spec.Pump,
		Clock:          p.cfg.Clock,
		Monitor:        stubMon,
		Journal:        p.cfg.Journal,
		Actor:          p.cfg.Fleet + "/" + spec.Name,
		Epoch:          p.hsEpoch.Load,
		CoalesceMax:    p.cfg.CoalesceMax,
	})
	if err != nil {
		return err
	}
	// The replica enters the pool DOWN: a pre-handshake replica must never
	// be dispatchable, and the journaled admit event records exactly that
	// not-yet-trusted state. (Relying on the zero value here would admit
	// it healthy — State's zero value — for the window until Connect
	// resolves.)
	r := &Replica{name: spec.Name, stub: stub, setEpoch: spec.SetEpoch, state: StateDown}
	p.mu.Lock()
	if detail, dead := p.tombstone[spec.Name]; dead {
		p.mu.Unlock()
		return fmt.Errorf("admit %s: %s: %w", spec.Name, detail, ErrQuarantined)
	}
	if _, dup := p.byName[spec.Name]; dup {
		p.mu.Unlock()
		return fmt.Errorf("cluster: replica %q already admitted", spec.Name)
	}
	p.replicas = append(p.replicas, r)
	p.byName[spec.Name] = r
	p.record(KindAdmit, r.name, "")
	p.mu.Unlock()
	// Visible in fleet telemetry from admission, not first transition.
	p.cfg.Monitor.ReplicaState(p.cfg.Fleet, r.name, false, false)

	err = stub.Connect()
	switch {
	case err == nil:
		p.setState(r, StateHealthy, "")
		return nil
	case errors.Is(err, ErrAttestation):
		p.setState(r, StateQuarantined, err.Error())
		return fmt.Errorf("admit %s: %w", spec.Name, err)
	default:
		p.setState(r, StateDown, err.Error())
		return fmt.Errorf("admit %s: %w", spec.Name, err)
	}
}

// Journal event kinds the pool emits; the journal package's canonical
// vocabulary, restated here because the dependency points the other way.
const (
	KindAdmit       = "admit"
	KindReplicaUp   = "replica-up"
	KindReplicaDown = "replica-down"
	KindQuarantine  = "quarantine"
	KindFailover    = "failover"
	KindLeave       = "leave"
	KindEpochBegin  = "epoch-begin"
	KindEpochMember = "epoch-member"
)

// record journals one fleet event. Caller holds p.mu (that is the point:
// journal order equals commit order).
func (p *Pool) record(kind, replica, detail string) {
	if p.cfg.Journal != nil {
		p.cfg.Journal.RecordEvent(kind, p.cfg.Fleet+"/"+replica, detail, 0, 0)
	}
}

// setState transitions a replica, journals the transition, and reports it
// to telemetry. Quarantine is absorbing: no transition leaves it. The
// state commit, the journal entry, and the Monitor callback all happen
// under p.mu, so no observer can ever record a transition the pool then
// reorders or rolls back — concurrent failover and health rounds
// serialize here, which is what makes "quarantine is journaled exactly
// once" a theorem rather than a race. A no-op transition (old == new)
// emits nothing.
func (p *Pool) setState(r *Replica, s State, detail string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.state == StateQuarantined || r.state == s {
		return
	}
	r.state = s
	switch s {
	case StateHealthy:
		p.record(KindReplicaUp, r.name, detail)
	case StateDown:
		p.record(KindReplicaDown, r.name, detail)
	case StateQuarantined:
		p.record(KindQuarantine, r.name, detail)
		// The tombstone outlives membership: Leave cannot launder a
		// quarantined name back into admissibility.
		p.tombstone[r.name] = detail
	}
	p.cfg.Monitor.ReplicaState(p.cfg.Fleet, r.name, s == StateHealthy, s == StateQuarantined)
}

// healthy returns the currently dispatchable replicas.
func (p *Pool) healthySnapshot() []*Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Replica, 0, len(p.replicas))
	for _, r := range p.replicas {
		if r.state == StateHealthy {
			out = append(out, r)
		}
	}
	return out
}

// Do routes one call into the fleet. key is the caller identity (or any
// affinity key) the balancer may shard on. Transport failures fail over
// IMMEDIATELY to a healthy sibling — a single-replica crash must not tax
// the call with a backoff sleep when the rest of the fleet can serve it.
// Exponential backoff (with jitter) kicks in only once no healthy replica
// remains mid-call: the pool sleeps, runs a health round so a recovered
// replica can re-attest and re-admit, and tries again until the attempt
// budget runs out. Remote application errors (distributed.ErrRemote) are
// returned as-is — the call reached an attested replica and was refused,
// so retrying elsewhere would duplicate work, not fix anything.
func (p *Pool) Do(key string, msg core.Message) (core.Message, error) {
	return p.DoDeadline(key, msg, time.Time{})
}

// DoDeadline is Do under a caller budget: every attempt — transmit,
// remote execution, backoff sleep — is carved from the time remaining
// until deadline, so bounded failover can never stretch a call past the
// caller's deadline. The budget rides to each replica as the wire frame's
// remaining-budget field (enforced server-side too). Failure routing on
// top of Do's:
//
//   - core.ErrDeadline (locally expired or reported by the replica) ends
//     the call immediately. The budget is spent; retrying a sibling would
//     serve a reply the caller has already abandoned. The replica is NOT
//     marked down — it was slow for this call, not dead.
//   - core.ErrOverloaded from a replica fails over to a sibling at once,
//     also WITHOUT marking the replica down: a full admission queue is
//     transient load, and forcing a re-attestation round-trip on it would
//     amplify exactly the overload being shed.
//   - core.ErrPolicy (the replica's policy refused the invocation) is
//     returned as-is, like distributed.ErrRemote: the deny is a verdict
//     about the request's chain taint, not the replica's health, and
//     every sibling enforces the same policy — failing over would just
//     collect N identical denies.
//
// A zero deadline is Do's unbounded behavior.
func (p *Pool) DoDeadline(key string, msg core.Message, deadline time.Time) (core.Message, error) {
	var reply core.Message
	err := p.dispatch(key, deadline, func(r *Replica) error {
		var cerr error
		reply, cerr = p.callReplica(r, msg, deadline)
		return cerr
	})
	if err != nil && !errors.Is(err, distributed.ErrRemote) && !errors.Is(err, core.ErrPolicy) {
		return core.Message{}, err
	}
	return reply, err
}

// DoBatch routes one batched-ingestion frame into the fleet: the whole
// batch rides a single sealed datagram to the replica the balancer picks
// for key (a shard router batches readings per shard, so one affinity key
// covers them all), and the reply carries per-reading status — N readings
// through one AEAD pass each way. Frame-level failures follow
// DoDeadline's routing exactly: immediate failover on transport failure,
// typed deadline handling, overload retried against a sibling. Once the
// batch reached an attested replica, per-reading errors come back inside
// results and never trigger failover — re-sending the frame elsewhere
// would double-deliver the readings that succeeded. Results are appended
// to the caller's slice (pass results[:0] to reuse its backing array);
// on success it carries exactly one entry per reading, in order.
func (p *Pool) DoBatch(key string, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	base := len(results)
	err := p.dispatch(key, deadline, func(r *Replica) error {
		// A retried attempt replays the whole batch: drop any partial
		// results a failed frame left behind.
		results = results[:base]
		var cerr error
		results, cerr = p.callReplicaBatch(r, readings, results, deadline)
		return cerr
	})
	if err != nil {
		return results[:base], err
	}
	return results, nil
}

// dispatch is the shared attempt loop under Do, DoDeadline, and DoBatch:
// balancer pick, inflight charge, bounded failover, outage backoff, and
// the typed-error routing documented on DoDeadline. call runs one attempt
// against the picked replica and owns the inflight discharge (via
// callReplica/callReplicaBatch).
func (p *Pool) dispatch(key string, deadline time.Time, call func(*Replica) error) error {
	p.maybeCheck()
	var lastErr error
	backoffs := 0
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if !deadline.IsZero() && !p.cfg.Clock().Before(deadline) {
			// Budget spent between attempts: stop failing over.
			if lastErr == nil {
				return fmt.Errorf("cluster %s: budget spent before dispatch: %w", p.cfg.Fleet, core.ErrDeadline)
			}
			return fmt.Errorf("cluster %s: budget spent after %d attempts (last: %v): %w",
				p.cfg.Fleet, attempt, lastErr, core.ErrDeadline)
		}
		candidates := p.healthySnapshot()
		if len(candidates) == 0 {
			if lastErr == nil {
				return ErrNoReplicas
			}
			if attempt+1 >= p.cfg.MaxAttempts {
				break
			}
			// Total outage mid-call: back off — never past the caller's
			// deadline — then let a health round re-attest a down replica
			// before the next attempt.
			d := p.backoff(backoffs)
			if !deadline.IsZero() {
				if rem := deadline.Sub(p.cfg.Clock()); d > rem {
					d = rem
				}
			}
			if d > 0 {
				p.cfg.Sleep(d)
			}
			backoffs++
			p.CheckNow()
			continue
		}
		// Pick and charge the inflight gauge in ONE p.mu critical section,
		// re-checking the state after the pick: an epoch transition marks a
		// replica draining under the same lock, so either this call's charge
		// is visible before the drain starts counting, or this call observes
		// the drain and routes elsewhere. No call can slip onto a replica
		// after its drain began — that is what lets a rekey wait for
		// inflight==0 and know it is final.
		p.mu.Lock()
		r := p.cfg.Balancer.Pick(key, candidates)
		stale := r != nil && r.state != StateHealthy
		if r != nil && !stale {
			r.inflight.Add(1)
			p.cfg.Monitor.ReplicaInflight(p.cfg.Fleet, r.name, 1)
		}
		p.mu.Unlock()
		if r == nil {
			return ErrNoReplicas
		}
		if stale {
			// The snapshot raced a transition (drain, failover): the
			// replica is no longer dispatchable. Route the next attempt
			// from a fresh snapshot.
			lastErr = fmt.Errorf("cluster %s: replica %s left dispatch mid-pick", p.cfg.Fleet, r.name)
			continue
		}
		err := call(r)
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrDeadline) {
			return err
		}
		if errors.Is(err, core.ErrOverloaded) {
			// Shed by the replica's admission queue: try a sibling, leave
			// the replica admitted.
			lastErr = err
			if attempt+1 < p.cfg.MaxAttempts {
				r.retries.Add(1)
				p.cfg.Monitor.ReplicaRetry(p.cfg.Fleet, r.name)
			}
			continue
		}
		if errors.Is(err, distributed.ErrRemote) || errors.Is(err, core.ErrPolicy) {
			return err
		}
		// Operational failure: the replica is down until a health check
		// re-attests it. Fail the call over without delay. The down
		// transition commits (and journals) first; the failover event
		// refers to an already-recorded state.
		p.setState(r, StateDown, err.Error())
		r.stub.Close()
		r.failovers.Add(1)
		p.mu.Lock()
		p.record(KindFailover, r.name, err.Error())
		p.mu.Unlock()
		p.cfg.Monitor.ReplicaFailover(p.cfg.Fleet, r.name)
		lastErr = err
		if attempt+1 < p.cfg.MaxAttempts {
			r.retries.Add(1)
			p.cfg.Monitor.ReplicaRetry(p.cfg.Fleet, r.name)
		}
	}
	return fmt.Errorf("%w (%d): %v", ErrExhausted, p.cfg.MaxAttempts, lastErr)
}

// callReplica runs one request/reply against one replica, maintaining the
// call counters. The caller has already charged the inflight gauge under
// p.mu at pick time (the drain happens-before edge); this function owns
// the discharge. Calls pipeline: the stub multiplexes any number of
// concurrent requests over the replica's one attested session
// (correlation IDs match the replies), so nothing serializes here and the
// inflight gauge reports true concurrent depth — exactly the load
// LeastInflight balances on. The deadline rides on the envelope; the stub
// turns it into the wire budget (and refuses to transmit if it expired
// before dispatch).
func (p *Pool) callReplica(r *Replica, msg core.Message, deadline time.Time) (core.Message, error) {
	reply, err := r.stub.Handle(core.Envelope{Msg: msg, Deadline: deadline})
	r.inflight.Add(-1)
	p.cfg.Monitor.ReplicaInflight(p.cfg.Fleet, r.name, -1)
	r.calls.Add(1)
	if err != nil {
		r.errors.Add(1)
	}
	p.cfg.Monitor.ReplicaCall(p.cfg.Fleet, r.name, err != nil)
	return reply, err
}

// callReplicaBatch is callReplica for one batched-ingestion frame: one
// sealed request/reply round against one replica, counted as one call on
// the inflight gauge and call counters (the wire sees one record, and
// that is what the balancer and drains account in).
func (p *Pool) callReplicaBatch(r *Replica, readings []distributed.Reading, results []distributed.BatchResult, deadline time.Time) ([]distributed.BatchResult, error) {
	results, err := r.stub.HandleBatch(core.Envelope{Deadline: deadline}, readings, results)
	r.inflight.Add(-1)
	p.cfg.Monitor.ReplicaInflight(p.cfg.Fleet, r.name, -1)
	r.calls.Add(1)
	if err != nil {
		r.errors.Add(1)
	}
	p.cfg.Monitor.ReplicaCall(p.cfg.Fleet, r.name, err != nil)
	return results, err
}

// backoff computes the nth consecutive outage delay: BackoffBase doubling
// per round, capped at BackoffMax, plus jitter in [0, BackoffBase) from
// the seeded PRNG so concurrent retriers desynchronize reproducibly.
func (p *Pool) backoff(n int) time.Duration {
	d := p.cfg.BackoffBase << uint(n)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.mu.Lock()
	j := time.Duration(p.rng.Intn(int(p.cfg.BackoffBase)))
	p.mu.Unlock()
	return d + j
}

// maybeCheck piggybacks a health round on Do when HealthInterval elapsed.
func (p *Pool) maybeCheck() {
	if p.cfg.HealthInterval <= 0 {
		return
	}
	now := p.cfg.Clock()
	p.mu.Lock()
	due := now.Sub(p.lastCheck) >= p.cfg.HealthInterval
	if due {
		p.lastCheck = now
	}
	p.mu.Unlock()
	if due {
		p.CheckNow()
	}
}

// CheckNow runs one health round: healthy replicas are pinged (a probe
// error or a probe slower than PingTimeout marks them down); down replicas
// get a full reconnect — handshake AND re-attestation — and are re-admitted
// only if both succeed. A down replica that comes back with the wrong
// measurement (restarted as a tampered build) is quarantined for good.
// Quarantined replicas are never touched.
//
// Probes run concurrently (bounded by HealthFanout): a fleet where one
// replica's probe stalls for PingTimeout must not stretch the round by
// N×timeout. Each probe touches only its own replica's endpoint and
// session, so probes commute; the resulting state transitions are applied
// sequentially in admission order afterwards, keeping rounds deterministic
// for a given set of probe outcomes.
func (p *Pool) CheckNow() {
	p.mu.Lock()
	replicas := make([]*Replica, len(p.replicas))
	copy(replicas, p.replicas)
	states := make([]State, len(replicas))
	for i, r := range replicas {
		states[i] = r.state
	}
	p.mu.Unlock()

	type verdict struct {
		probed bool
		err    error
		slow   bool
	}
	verdicts := make([]verdict, len(replicas))
	probe := func(i int) {
		r := replicas[i]
		switch states[i] {
		case StateHealthy:
			r.mu.Lock()
			start := p.cfg.Clock()
			err := r.stub.Ping()
			elapsed := p.cfg.Clock().Sub(start)
			r.mu.Unlock()
			verdicts[i] = verdict{
				probed: true,
				err:    err,
				slow:   p.cfg.PingTimeout > 0 && elapsed > p.cfg.PingTimeout,
			}
		case StateDown:
			r.mu.Lock()
			err := r.stub.Connect()
			r.mu.Unlock()
			verdicts[i] = verdict{probed: true, err: err}
		}
	}
	if p.cfg.HealthFanout == 1 || len(replicas) == 1 {
		for i := range replicas {
			probe(i)
		}
	} else {
		sem := make(chan struct{}, p.cfg.HealthFanout)
		var wg sync.WaitGroup
		for i := range replicas {
			if states[i] == StateQuarantined {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				probe(i)
				<-sem
			}(i)
		}
		wg.Wait()
	}

	for i, r := range replicas {
		v := verdicts[i]
		if !v.probed {
			continue
		}
		switch states[i] {
		case StateHealthy:
			if v.err != nil || v.slow {
				detail := "probe slow"
				if v.err != nil {
					detail = v.err.Error()
				}
				p.setState(r, StateDown, detail)
				r.stub.Close()
			}
		case StateDown:
			switch {
			case v.err == nil:
				p.setState(r, StateHealthy, "")
			case errors.Is(v.err, ErrAttestation):
				p.setState(r, StateQuarantined, v.err.Error())
				// else: still down; next round tries again.
			}
		}
	}
}

// Replicas returns a snapshot of every admitted replica, in admission
// order.
func (p *Pool) Replicas() []ReplicaInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(p.replicas))
	for _, r := range p.replicas {
		out = append(out, ReplicaInfo{
			Name:      r.name,
			State:     r.state,
			Inflight:  r.inflight.Load(),
			Calls:     r.calls.Load(),
			Errors:    r.errors.Load(),
			Retries:   r.retries.Load(),
			Failovers: r.failovers.Load(),
			Version:   r.stub.CompVersion(),
			Epoch:     r.stub.SessionEpoch(),
			Stub:      r.stub.Stats(),
		})
	}
	return out
}

// States returns the live trust-state view keyed the way the journal
// names actors (fleet/replica) — the map `lateralctl audit` and the
// simulation's auditor invariant diff against a journal replay.
func (p *Pool) States() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.replicas))
	for _, r := range p.replicas {
		out[p.cfg.Fleet+"/"+r.name] = r.state.String()
	}
	return out
}

// Healthy counts replicas currently in StateHealthy.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.replicas {
		if r.state == StateHealthy {
			n++
		}
	}
	return n
}

// Quarantined counts permanently expelled replicas.
func (p *Pool) Quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.replicas {
		if r.state == StateQuarantined {
			n++
		}
	}
	return n
}
