package cluster

import (
	"crypto/ed25519"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/telemetry"
)

// The telemetry collector must satisfy the epoch-monitor extension the
// pool type-asserts off its regular Monitor.
var _ EpochMonitor = (*telemetry.Metrics)(nil)

// memRecorder is an in-memory EventRecorder for asserting on the journal
// stream the pool emits during epoch transitions.
type memRecorder struct {
	mu     sync.Mutex
	events []string
}

func (r *memRecorder) RecordEvent(kind, actor, detail string, _, _ uint64) {
	r.mu.Lock()
	r.events = append(r.events, kind+" "+actor+" "+detail)
	r.mu.Unlock()
}

func (r *memRecorder) count(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if strings.HasPrefix(e, prefix) {
			n++
		}
	}
	return n
}

// TestJoinRunsFullEpochTransition: admitting through Join advances the
// epoch, rekeys every member at it, journals the transition anchors, and
// leaves the grown fleet fully dispatchable.
func TestJoinRunsFullEpochTransition(t *testing.T) {
	rec := &memRecorder{}
	f := newFleet(t, 2, nil, func(c *Config) { c.Journal = rec })
	if got := f.pool.Epoch(); got != 0 {
		t.Fatalf("fresh fleet at epoch %d, want 0", got)
	}
	if err := f.pool.Join(f.buildReplica(replicaName(3), false)); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if got := f.pool.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after join, want 1", got)
	}
	for _, ri := range f.pool.Replicas() {
		if ri.State != StateHealthy || ri.Epoch != 1 {
			t.Errorf("%s %s at session epoch %d, want healthy at 1", ri.Name, ri.State, ri.Epoch)
		}
	}
	for i := 0; i < 6; i++ {
		f.mustBump("k")
	}
	if got := f.stores[replicaName(3)].Total(); got == 0 {
		t.Error("joiner served no calls after the transition")
	}
	if n := rec.count(KindEpochBegin); n != 1 {
		t.Errorf("epoch-begin anchors = %d, want 1", n)
	}
	if n := rec.count(KindEpochMember); n != 3 {
		t.Errorf("epoch-member records = %d, want 3", n)
	}
	// A second join of the same name is a duplicate, not a transition.
	if err := f.pool.Join(f.buildReplica(replicaName(3), false)); err == nil {
		t.Fatal("duplicate Join accepted")
	}
	if got := f.pool.Epoch(); got != 1 {
		t.Fatalf("refused join advanced the epoch to %d", got)
	}
}

// TestLeaveDrainsInflightCalls pins the drain contract: a call in flight
// on the departing replica runs to completion — it is never errored — and
// Leave only removes the member once it has.
func TestLeaveDrainsInflightCalls(t *testing.T) {
	f := newFleet(t, 2, nil, func(c *Config) {
		c.Balancer = &scriptedBalancer{names: []string{replicaName(1), replicaName(2)}}
	})
	callErr := make(chan error, 1)
	go func() {
		// The stall handler holds the replica for 100ms of real time —
		// plenty to make Leave overlap the in-flight call.
		_, err := f.pool.Do("k", core.Message{Op: "stall"})
		callErr <- err
	}()
	for f.info(replicaName(1)).Inflight == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := f.pool.Leave(replicaName(1)); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	select {
	case err := <-callErr:
		if err != nil {
			t.Fatalf("in-flight call errored during Leave: %v", err)
		}
	default:
		t.Fatal("Leave returned while the drained call was still in flight")
	}
	if got := f.pool.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after leave, want 1", got)
	}
	for _, ri := range f.pool.Replicas() {
		if ri.Name == replicaName(1) {
			t.Fatal("departed replica still a member")
		}
	}
	f.mustBump("k2")
}

// TestQuarantinedNameRefusedEverywhere is the satellite regression test:
// a name that was ever quarantined is refused with the typed
// ErrQuarantined by Admit and Join, cannot Leave (the quarantine record
// is fleet memory), and a refused Join must not burn an epoch.
func TestQuarantinedNameRefusedEverywhere(t *testing.T) {
	f := newFleet(t, 3, map[int]bool{2: true}, nil)
	poisoned := replicaName(2)
	if got := f.info(poisoned).State; got != StateQuarantined {
		t.Fatalf("tampered replica %s, want quarantined", got)
	}
	if err := f.pool.Admit(f.buildReplica(poisoned, false)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Admit(%s) = %v, want ErrQuarantined", poisoned, err)
	}
	if err := f.pool.Join(f.buildReplica(poisoned, false)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Join(%s) = %v, want ErrQuarantined", poisoned, err)
	}
	if err := f.pool.Leave(poisoned); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Leave(%s) = %v, want ErrQuarantined", poisoned, err)
	}
	if got := f.pool.Epoch(); got != 0 {
		t.Fatalf("refused transitions advanced the epoch to %d", got)
	}
	if err := f.pool.Leave("no-such-replica"); err == nil || errors.Is(err, ErrQuarantined) {
		t.Fatalf("Leave(unknown) = %v, want a non-quarantine error", err)
	}
}

// sideStub dials one replica's exporter directly, outside the pool, with
// the handshake stamping whatever epoch fn reports — the stale-key
// adversary's vantage point.
func (f *fixture) sideStub(replica, client string, epoch func() uint64) (*distributed.Stub, error) {
	f.t.Helper()
	exp := f.exporters[replica]
	vendor := f.vendor
	meas := cryptoutil.Hash(core.DomainImage(&fleetStore{}))
	return distributed.NewStub(distributed.StubConfig{
		RemoteName:     "anon",
		RemoteEndpoint: replica,
		Endpoint:       f.net.Attach(client),
		Rand:           cryptoutil.NewPRNG(client + "-side"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meas)
		},
		Pump:  exp.Serve,
		Epoch: epoch,
	})
}

// TestRekeyEvictsStaleSessionsAndHellos: after a transition, a session
// keyed at the old epoch cannot authenticate another record, a replayed
// old-epoch hello is refused, and a hello stamping the live epoch (with
// valid attestation) is accepted.
func TestRekeyEvictsStaleSessionsAndHellos(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	pre, err := f.sideStub(replicaName(1), "side-pre", f.pool.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Connect(); err != nil {
		t.Fatalf("side client refused at epoch 0: %v", err)
	}
	if _, err := pre.Handle(core.Envelope{Msg: core.Message{Op: "bump", Data: []byte("k")}}); err != nil {
		t.Fatalf("side call at epoch 0: %v", err)
	}

	if err := f.pool.Join(f.buildReplica(replicaName(3), false)); err != nil {
		t.Fatalf("Join: %v", err)
	}

	if _, err := pre.Handle(core.Envelope{Msg: core.Message{Op: "bump", Data: []byte("k")}}); err == nil {
		t.Fatal("epoch-0 session still authenticates after the fleet rekeyed")
	}
	replay, err := f.sideStub(replicaName(1), "side-replay", func() uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.Connect(); err == nil {
		t.Fatal("replayed epoch-0 hello accepted by epoch-1 exporter")
	}
	fresh, err := f.sideStub(replicaName(1), "side-fresh", f.pool.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Connect(); err != nil {
		t.Fatalf("live-epoch hello refused: %v", err)
	}
	if got := fresh.SessionEpoch(); got != 1 {
		t.Fatalf("fresh session keyed at epoch %d, want 1", got)
	}
}

// TestEpochTelemetry: a fleet monitored by the telemetry collector
// surfaces transitions and rekeys as lateral_epoch_* families.
func TestEpochTelemetry(t *testing.T) {
	m := telemetry.NewMetrics()
	f := newFleet(t, 2, nil, func(c *Config) { c.Monitor = m })
	if err := f.pool.Join(f.buildReplica(replicaName(3), false)); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := f.pool.Leave(replicaName(1)); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lateral_epoch_number{fleet="anon"} 2`,
		`lateral_epoch_transitions_total{fleet="anon"} 2`,
		`lateral_epoch_rekeys_total{fleet="anon",outcome="ok"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
