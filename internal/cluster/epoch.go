// Config epochs: the dynamic-membership half of the attested fleet.
//
// A pool starts at epoch 0 — the static pre-epoch fleet, byte-identical
// on the wire to what it always was. The first Join or Leave begins the
// epoch state machine, and every transition runs the same four phases:
//
//	propose  — the next epoch number is fixed, journaled as an
//	           epoch-begin anchor, and becomes the handshake epoch: every
//	           handshake from this instant binds the incoming
//	           configuration (HKDF salt + hello stamp + exporter gate).
//	rekey    — each member is drained (marked non-dispatchable under
//	           p.mu; in-flight calls run to completion — never errored),
//	           then re-handshaken: re-attestation against the pinned
//	           measurement AND fresh session keys bound to the new epoch.
//	           Evidence mismatch quarantines; operational failure marks
//	           down for the health loop to retry — already at the new
//	           epoch either way.
//	activate — the active epoch commits, the membership is journaled as
//	           epoch-member records (the auditor's replayable history),
//	           and telemetry observes the transition. New calls now route
//	           on the new ring; sessions keyed to older epochs can no
//	           longer authenticate anywhere in the fleet.
//	drain    — nothing is left to drain by activation (rekey drained
//	           per-member), so the phase is the proof obligation, not
//	           work: the simulation's eighth invariant checks that no
//	           call ever completes against an evicted or stale-keyed
//	           replica.
//
// Transitions serialize on epochMu; dispatch keeps flowing throughout —
// only the member currently rekeying is out of rotation.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
)

// EpochMonitor is the optional telemetry extension for fleets with
// dynamic membership; telemetry.Metrics implements it structurally, and
// the pool type-asserts it off the regular Monitor so existing monitors
// keep working unchanged.
type EpochMonitor interface {
	EpochTransition(fleet string, epoch uint64, reason string)
	ReplicaRekey(fleet, replica string, ok bool)
}

// Epoch returns the active fleet config epoch (0 = static fleet, no
// transition yet).
func (p *Pool) Epoch() uint64 { return p.epoch.Load() }

// Join admits a new replica as a full epoch transition: propose the next
// epoch, admit the joiner with a handshake already bound to it, rekey —
// and re-attest — every existing member at the new epoch, then activate.
// A quarantined name is refused with ErrQuarantined before any epoch
// work. If the joiner's handshake fails the transition still completes
// (the epoch was proposed and journaled; the fleet re-verifies and moves
// on without the joiner dispatchable) and the admission error is
// returned.
func (p *Pool) Join(spec ReplicaSpec) error {
	if spec.Name == "" || spec.Endpoint == nil || spec.Rand == nil {
		return fmt.Errorf("cluster: replica spec needs Name, Endpoint, Rand")
	}
	p.epochMu.Lock()
	defer p.epochMu.Unlock()
	p.mu.Lock()
	if detail, dead := p.tombstone[spec.Name]; dead {
		p.mu.Unlock()
		return fmt.Errorf("join %s: %s: %w", spec.Name, detail, ErrQuarantined)
	}
	if _, dup := p.byName[spec.Name]; dup {
		p.mu.Unlock()
		return fmt.Errorf("cluster: replica %q already admitted", spec.Name)
	}
	p.mu.Unlock()

	reason := "join " + spec.Name
	next := p.propose(reason)
	admitErr := p.Admit(spec) // handshake epoch is already next
	p.rekeyMembers(next, spec.Name)
	p.activate(next, reason)
	return admitErr
}

// Leave removes a member as a full epoch transition: propose, drain the
// departing replica (in-flight calls complete, new calls route around
// it), remove it and journal the leave, then rekey the survivors at the
// new epoch and activate. Quarantined members cannot leave — the
// quarantine record is the fleet's memory of the incident — and unknown
// names are an error.
func (p *Pool) Leave(name string) error {
	p.epochMu.Lock()
	defer p.epochMu.Unlock()
	p.mu.Lock()
	r := p.byName[name]
	if r == nil {
		p.mu.Unlock()
		return fmt.Errorf("cluster: replica %q not admitted", name)
	}
	if r.state == StateQuarantined {
		p.mu.Unlock()
		return fmt.Errorf("leave %s: %w", name, ErrQuarantined)
	}
	p.mu.Unlock()

	reason := "leave " + name
	next := p.propose(reason)

	// Drain, then evict: after this no call can reach the departed
	// replica through the pool, and the survivors' rekey re-derives every
	// session key without it.
	p.mu.Lock()
	wasHealthy := r.state == StateHealthy
	if wasHealthy {
		r.state = StateDraining
	}
	p.mu.Unlock()
	if wasHealthy {
		p.waitDrained(r)
	}
	p.mu.Lock()
	for i, m := range p.replicas {
		if m == r {
			p.replicas = append(p.replicas[:i], p.replicas[i+1:]...)
			break
		}
	}
	delete(p.byName, name)
	p.record(KindLeave, name, fmt.Sprintf("epoch=%d", next))
	p.mu.Unlock()
	p.cfg.Monitor.ReplicaState(p.cfg.Fleet, name, false, false)
	r.stub.Close()

	p.rekeyMembers(next, "")
	p.activate(next, reason)
	return nil
}

// propose fixes the next epoch number, journals the epoch-begin anchor,
// and moves the handshake epoch forward so every handshake from here on
// binds the incoming configuration.
func (p *Pool) propose(reason string) uint64 {
	next := p.epoch.Load() + 1
	p.hsEpoch.Store(next)
	p.mu.Lock()
	if p.cfg.Journal != nil {
		p.cfg.Journal.RecordEvent(KindEpochBegin, p.cfg.Fleet,
			fmt.Sprintf("epoch=%d %s", next, reason), 0, 0)
	}
	p.mu.Unlock()
	return next
}

// rekeyMembers pushes the new epoch to every member's exporter and
// re-handshakes each one — re-attestation plus epoch-bound session keys.
// fresh names a member whose session is already keyed at next (a joiner
// admitted mid-transition): its exporter still gets the epoch push so it
// refuses stale peers, but it is not drained or re-handshaken.
func (p *Pool) rekeyMembers(next uint64, fresh string) {
	p.mu.Lock()
	members := make([]*Replica, 0, len(p.replicas))
	for _, r := range p.replicas {
		if r.state != StateQuarantined {
			members = append(members, r)
		}
	}
	p.mu.Unlock()

	em, _ := p.cfg.Monitor.(EpochMonitor)
	for _, r := range members {
		// Control plane first: the exporter gates new hellos at the new
		// epoch and evicts older-epoch sessions, so even a member the
		// rekey below fails on is already unreachable with stale keys.
		if r.setEpoch != nil {
			r.setEpoch(next)
		}
		if r.name == fresh {
			continue
		}
		p.mu.Lock()
		pre := r.state
		if pre == StateHealthy {
			r.state = StateDraining
		}
		p.mu.Unlock()
		if pre == StateHealthy {
			p.waitDrained(r)
		}
		r.mu.Lock()
		err := r.stub.Connect()
		r.mu.Unlock()
		switch {
		case err == nil && pre == StateHealthy:
			// Healthy before, rekeyed fine: not a trust transition, so
			// no journal entry — just leave the drain.
			p.mu.Lock()
			if r.state == StateDraining {
				r.state = StateHealthy
			}
			p.mu.Unlock()
		case err == nil:
			p.setState(r, StateHealthy, fmt.Sprintf("rekeyed at epoch %d", next))
		case errors.Is(err, ErrAttestation):
			p.setState(r, StateQuarantined, err.Error())
		default:
			p.setState(r, StateDown, err.Error())
			r.stub.Close()
		}
		if em != nil {
			em.ReplicaRekey(p.cfg.Fleet, r.name, err == nil)
		}
	}
}

// activate commits the new epoch — new calls route on the new membership
// from here — and journals one epoch-member record per member: the
// anchor an auditor replays the fleet's membership history from.
func (p *Pool) activate(next uint64, reason string) {
	p.epoch.Store(next)
	p.mu.Lock()
	for _, r := range p.replicas {
		p.record(KindEpochMember, r.name,
			fmt.Sprintf("epoch=%d state=%s", next, r.state))
	}
	p.mu.Unlock()
	if em, ok := p.cfg.Monitor.(EpochMonitor); ok {
		em.EpochTransition(p.cfg.Fleet, next, reason)
	}
}

// waitDrained spins until a draining replica's in-flight calls have all
// completed. The caller has already made the replica non-dispatchable
// under p.mu; charges are only ever added under that same lock while the
// replica is healthy, so once the gauge reads zero it stays zero.
func (p *Pool) waitDrained(r *Replica) {
	for r.inflight.Load() != 0 {
		runtime.Gosched()
	}
}
