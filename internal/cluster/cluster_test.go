package cluster

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
	"lateral/internal/telemetry"
)

// The telemetry collector must satisfy the fleet monitor hook without
// either package importing the other.
var _ Monitor = (*telemetry.Metrics)(nil)

// fleetStore is the replicated trusted component under test: it counts
// bumps per key so tests can see exactly which replica served which call.
type fleetStore struct {
	mu     sync.Mutex
	perKey map[string]int
	total  int
}

func (s *fleetStore) CompName() string     { return "anon" }
func (s *fleetStore) CompVersion() string  { return "1.0" }
func (s *fleetStore) Init(*core.Ctx) error { return nil }

func (s *fleetStore) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "bump":
		s.mu.Lock()
		if s.perKey == nil {
			s.perKey = make(map[string]int)
		}
		s.perKey[string(env.Msg.Data)]++
		n := s.perKey[string(env.Msg.Data)]
		s.total++
		s.mu.Unlock()
		return core.Message{Op: "ok", Data: []byte(fmt.Sprint(n))}, nil
	case "stall":
		// A hung replica; the server-side watchdog contains it.
		time.Sleep(100 * time.Millisecond)
		return core.Message{Op: "ok"}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

func (s *fleetStore) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

func (s *fleetStore) Count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perKey[key]
}

// tamperedStore is the same component with one modified line — a different
// measurement, which admission must refuse.
type tamperedStore struct{ fleetStore }

func (t *tamperedStore) CompVersion() string { return "1.0-evil" }

type fixture struct {
	t         *testing.T
	net       *netsim.Network
	part      *netsim.Partitioner
	pool      *Pool
	vendor    *cryptoutil.Signer
	stores    map[string]*fleetStore
	systems   map[string]*core.System
	exporters map[string]*distributed.Exporter
}

func replicaName(i int) string { return fmt.Sprintf("anon-%d", i) }

// newFleet builds an n-replica attested fleet. Replica indices in tampered
// are deployed as the modified build, and their admission is asserted to
// fail with ErrAttestation.
func newFleet(t *testing.T, n int, tampered map[int]bool, mutate func(*Config)) *fixture {
	t.Helper()
	net := netsim.New()
	part := netsim.NewPartitioner()
	net.SetAdversary(part)
	vendor := cryptoutil.NewSigner("intel")
	cfg := Config{
		Fleet:       "anon",
		RemoteName:  "anon",
		VendorKey:   vendor.Public(),
		Measurement: cryptoutil.Hash(core.DomainImage(&fleetStore{})),
		Sleep:       func(time.Duration) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pool, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, net: net, part: part, pool: pool, vendor: vendor,
		stores: make(map[string]*fleetStore), systems: make(map[string]*core.System),
		exporters: make(map[string]*distributed.Exporter)}
	for i := 1; i <= n; i++ {
		name := replicaName(i)
		err := pool.Admit(f.buildReplica(name, tampered[i]))
		if tampered[i] {
			if !errors.Is(err, ErrAttestation) {
				t.Fatalf("tampered %s admitted: %v", name, err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// buildReplica stands up one replica machine — enclave, system, exporter —
// and returns its admission spec with the exporter's epoch gate wired, so
// tests can Admit (static) or Join (epoch transition) it. Tampered deploys
// run the modified build, whose measurement admission must refuse.
func (f *fixture) buildReplica(name string, tampered bool) ReplicaSpec {
	f.t.Helper()
	cpu, err := sgx.New(sgx.Config{DeviceSeed: "fleet-" + name, Vendor: f.vendor})
	if err != nil {
		f.t.Fatal(err)
	}
	sys := core.NewSystem(cpu)
	store := &fleetStore{}
	var comp core.Component = store
	if tampered {
		comp = &tamperedStore{}
	}
	if err := sys.Launch(comp, true, 1); err != nil {
		f.t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		f.t.Fatal(err)
	}
	exp, err := distributed.NewExporter(distributed.ExportConfig{
		System:    sys,
		Component: "anon",
		Endpoint:  f.net.Attach(name),
		Identity:  cryptoutil.NewSigner(name + "-tls"),
		Rand:      cryptoutil.NewPRNG(name + "-srv"),
	})
	if err != nil {
		f.t.Fatal(err)
	}
	if !tampered {
		f.stores[name] = store
		f.systems[name] = sys
	}
	f.exporters[name] = exp
	return ReplicaSpec{
		Name:           name,
		RemoteEndpoint: name,
		Endpoint:       f.net.Attach("lb-" + name),
		Rand:           cryptoutil.NewPRNG(name + "-cli"),
		Pump:           exp.Serve,
		SetEpoch:       exp.SetEpoch,
	}
}

// scriptedBalancer picks replicas by name in a fixed order (repeating the
// last name once the script runs out), making multi-replica failover
// sequences deterministic in tests.
type scriptedBalancer struct {
	names []string
	i     int
}

func (s *scriptedBalancer) Name() string { return "scripted" }

func (s *scriptedBalancer) Pick(_ string, candidates []*Replica) *Replica {
	name := s.names[s.i]
	if s.i < len(s.names)-1 {
		s.i++
	}
	for _, r := range candidates {
		if r.name == name {
			return r
		}
	}
	return candidates[0]
}

func (f *fixture) bump(key string) error {
	_, err := f.pool.Do(key, core.Message{Op: "bump", Data: []byte(key)})
	return err
}

func (f *fixture) mustBump(key string) {
	f.t.Helper()
	if err := f.bump(key); err != nil {
		f.t.Fatalf("bump %q: %v", key, err)
	}
}

func (f *fixture) info(name string) ReplicaInfo {
	f.t.Helper()
	for _, ri := range f.pool.Replicas() {
		if ri.Name == name {
			return ri
		}
	}
	f.t.Fatalf("replica %s not in pool", name)
	return ReplicaInfo{}
}

func (f *fixture) fleetTotal() int {
	n := 0
	for _, s := range f.stores {
		n += s.Total()
	}
	return n
}

func TestAdmissionAndRoundRobin(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	if got := f.pool.Healthy(); got != 3 {
		t.Fatalf("healthy = %d, want 3", got)
	}
	for i := 0; i < 9; i++ {
		f.mustBump(fmt.Sprintf("meter-%d", i))
	}
	// Round-robin spreads exactly evenly.
	for name, s := range f.stores {
		if s.Total() != 3 {
			t.Errorf("%s served %d calls, want 3", name, s.Total())
		}
	}
}

func TestTamperedReplicaQuarantinedAtAdmission(t *testing.T) {
	f := newFleet(t, 3, map[int]bool{2: true}, nil)
	if got := f.pool.Quarantined(); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if got := f.pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}
	for i := 0; i < 6; i++ {
		f.mustBump(fmt.Sprintf("meter-%d", i))
	}
	// Quarantine is permanent: health rounds never re-dial the replica.
	f.pool.CheckNow()
	f.pool.CheckNow()
	ri := f.info("anon-2")
	if ri.State != StateQuarantined {
		t.Errorf("anon-2 state = %v after health rounds, want quarantined", ri.State)
	}
	if ri.Calls != 0 {
		t.Errorf("quarantined replica served %d calls, want 0", ri.Calls)
	}
	if f.fleetTotal() != 6 {
		t.Errorf("fleet served %d, want 6", f.fleetTotal())
	}
}

func TestRemoteErrorsDoNotFailOver(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	_, err := f.pool.Do("m", core.Message{Op: "no-such-op"})
	if !errors.Is(err, distributed.ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	// The call reached an attested replica and was refused: retrying on a
	// sibling would duplicate work, so the fleet stays intact.
	if got := f.pool.Healthy(); got != 2 {
		t.Errorf("healthy = %d after remote refusal, want 2", got)
	}
	for _, ri := range f.pool.Replicas() {
		if ri.Failovers != 0 || ri.Retries != 0 {
			t.Errorf("%s failovers=%d retries=%d, want 0/0", ri.Name, ri.Failovers, ri.Retries)
		}
	}
}

func TestFailoverOnCrashAndRecovery(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	for i := 0; i < 3; i++ {
		f.mustBump(fmt.Sprintf("warm-%d", i))
	}
	// Crash anon-2: every datagram to or from it vanishes.
	f.part.Isolate("anon-2")
	for i := 0; i < 9; i++ {
		f.mustBump(fmt.Sprintf("meter-%d", i)) // caller sees zero failures
	}
	ri := f.info("anon-2")
	if ri.State != StateDown {
		t.Errorf("anon-2 state = %v, want down", ri.State)
	}
	if ri.Failovers == 0 {
		t.Error("crash produced no failovers")
	}
	served := f.stores["anon-1"].Total() + f.stores["anon-3"].Total()
	if served < 9 {
		t.Errorf("survivors served %d, want >= 9", served)
	}
	// The replica restarts: a health round re-attests and re-admits it.
	f.part.Heal("anon-2")
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 3 {
		t.Fatalf("healthy = %d after heal, want 3", got)
	}
	before := f.stores["anon-2"].Total()
	for i := 0; i < 6; i++ {
		f.mustBump(fmt.Sprintf("post-%d", i))
	}
	if f.stores["anon-2"].Total() <= before {
		t.Error("recovered replica received no traffic")
	}
}

func TestAllReplicasDownThenRecover(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	f.part.Isolate("anon-1")
	f.part.Isolate("anon-2")
	err := f.bump("m1")
	if !errors.Is(err, ErrNoReplicas) && !errors.Is(err, ErrExhausted) {
		t.Fatalf("total outage: err = %v", err)
	}
	if err := f.bump("m2"); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("empty pool: err = %v", err)
	}
	f.part.HealAll()
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after heal, want 2", got)
	}
	f.mustBump("m3")
}

func TestReplyLossWindowIsAtLeastOnce(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	// Cut only the reply direction: anon-1 receives and processes the
	// request, but the caller never hears back — the in-flight window.
	f.part.BlockLink("anon-1", "lb-anon-1")
	f.mustBump("meter-7")
	// The call failed over and succeeded elsewhere; the reading was never
	// lost, but the partitioned replica also processed it. Delivery inside
	// the window is at-least-once, and the duplicate is observable.
	if got := f.stores["anon-2"].Count("meter-7"); got != 1 {
		t.Errorf("anon-2 bumps = %d, want 1 (failover target)", got)
	}
	if got := f.stores["anon-1"].Count("meter-7"); got != 1 {
		t.Errorf("anon-1 bumps = %d, want 1 (processed, reply lost)", got)
	}
	if ri := f.info("anon-1"); ri.State != StateDown {
		t.Errorf("anon-1 state = %v, want down", ri.State)
	}
}

func TestConsistentHashAffinity(t *testing.T) {
	f := newFleet(t, 4, nil, func(c *Config) { c.Balancer = NewConsistentHash() })
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("meter-%03d", i)
	}
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			f.mustBump(k)
		}
	}
	// Every key sticks to exactly one replica across rounds.
	used := map[string]bool{}
	for _, k := range keys {
		owners := 0
		for name, s := range f.stores {
			switch s.Count(k) {
			case 0:
			case 3:
				owners++
				used[name] = true
			default:
				t.Fatalf("key %s split: %s has %d bumps", k, name, s.Count(k))
			}
		}
		if owners != 1 {
			t.Fatalf("key %s has %d owners, want 1", k, owners)
		}
	}
	if len(used) < 3 {
		t.Errorf("only %d replicas own keys, want a spread", len(used))
	}
}

func TestConsistentHashFailoverMovesOnlyLostKeys(t *testing.T) {
	f := newFleet(t, 4, nil, func(c *Config) { c.Balancer = NewConsistentHash() })
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("meter-%03d", i)
	}
	owner := map[string]string{}
	for _, k := range keys {
		f.mustBump(k)
		for name, s := range f.stores {
			if s.Count(k) == 1 {
				owner[k] = name
			}
		}
	}
	victim := owner[keys[0]]
	f.part.Isolate(victim)
	for _, k := range keys {
		f.mustBump(k)
	}
	for _, k := range keys {
		if owner[k] == victim {
			continue
		}
		// Keys owned by surviving replicas never moved.
		if got := f.stores[owner[k]].Count(k); got != 2 {
			t.Errorf("key %s left its live owner %s (count %d)", k, owner[k], got)
		}
	}
}

func TestLeastInflightPrefersIdleAndRotatesTies(t *testing.T) {
	a := &Replica{name: "a"}
	b := &Replica{name: "b"}
	c := &Replica{name: "c"}
	a.inflight.Add(2)
	lb := NewLeastInflight()
	if got := lb.Pick("", []*Replica{a, b, c}); got == a {
		t.Error("picked the busiest replica")
	}
	// b and c are tied at zero: successive picks alternate.
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		seen[lb.Pick("", []*Replica{a, b, c}).Name()]++
	}
	if seen["a"] != 0 || seen["b"] != 2 || seen["c"] != 2 {
		t.Errorf("tie rotation = %v, want b:2 c:2", seen)
	}
}

func TestFailoverIsImmediateAndOutageBackoffIsExponential(t *testing.T) {
	base := 200 * time.Microsecond
	run := func(record *[]time.Duration) {
		f := newFleet(t, 3, nil, func(c *Config) {
			c.MaxAttempts = 6
			c.Sleep = func(d time.Duration) { *record = append(*record, d) }
		})
		// One crashed replica among healthy siblings: the failover retries
		// immediately, without taxing the call with a backoff sleep.
		f.part.Isolate("anon-1")
		f.mustBump("m0")
		if len(*record) != 0 {
			t.Fatalf("failover with healthy siblings slept %v, want none", *record)
		}
		// Total outage: the remaining attempts back off exponentially.
		f.part.Isolate("anon-2")
		f.part.Isolate("anon-3")
		if err := f.bump("m"); !errors.Is(err, ErrExhausted) {
			t.Fatalf("total outage: err = %v", err)
		}
	}
	var sleeps []time.Duration
	run(&sleeps)
	// Two healthy replicas burn attempts 0-1 (no sleep); MaxAttempts=6
	// leaves three empty-pool rounds: base, 2*base, 4*base, each + jitter.
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v, want 3 entries", sleeps)
	}
	for i, lo := range []time.Duration{base, 2 * base, 4 * base} {
		if sleeps[i] < lo || sleeps[i] >= lo+base {
			t.Errorf("backoff %d = %v outside [%v, %v)", i, sleeps[i], lo, lo+base)
		}
	}
	// Same jitter seed → identical backoff schedule (deterministic runs).
	var sleeps2 []time.Duration
	run(&sleeps2)
	if fmt.Sprint(sleeps) != fmt.Sprint(sleeps2) {
		t.Errorf("same seed, different schedules: %v vs %v", sleeps, sleeps2)
	}
}

func TestHealthIntervalPiggybacksOnCalls(t *testing.T) {
	now := time.Unix(1000, 0)
	f := newFleet(t, 2, nil, func(c *Config) {
		c.HealthInterval = time.Minute
		c.Clock = func() time.Time { return now }
	})
	f.part.Isolate("anon-2")
	for i := 0; i < 4; i++ {
		f.mustBump(fmt.Sprintf("m-%d", i))
	}
	if got := f.pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d after crash, want 1", got)
	}
	f.part.Heal("anon-2")
	// Interval not elapsed: traffic alone does not re-admit.
	f.mustBump("m-x")
	if got := f.pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d before interval, want 1", got)
	}
	now = now.Add(2 * time.Minute)
	f.mustBump("m-y")
	if got := f.pool.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after interval, want 2", got)
	}
}

func TestPingTimeoutMarksSlowReplicaDown(t *testing.T) {
	now := time.Unix(1000, 0)
	step := time.Duration(0)
	f := newFleet(t, 1, nil, func(c *Config) {
		c.PingTimeout = time.Millisecond
		c.Clock = func() time.Time { now = now.Add(step); return now }
	})
	// Fast pings keep the replica healthy.
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d with fast pings, want 1", got)
	}
	// Every clock read now advances 5ms, so the probe misses its budget.
	step = 5 * time.Millisecond
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 0 {
		t.Fatalf("healthy = %d with slow pings, want 0", got)
	}
	// Latency recovers: the next round reconnects and re-admits.
	step = 0
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 1 {
		t.Fatalf("healthy = %d after recovery, want 1", got)
	}
}

func TestTelemetryMonitorSeesFleetEvents(t *testing.T) {
	m := telemetry.NewMetrics()
	f := newFleet(t, 3, map[int]bool{3: true}, func(c *Config) { c.Monitor = m })
	f.part.Isolate("anon-2")
	for i := 0; i < 6; i++ {
		f.mustBump(fmt.Sprintf("m-%d", i))
	}
	byName := map[string]telemetry.ReplicaSummary{}
	for _, r := range m.Fleets() {
		byName[r.Replica] = r
	}
	if r := byName["anon-1"]; !r.Healthy || r.Calls == 0 {
		t.Errorf("anon-1 summary = %+v", r)
	}
	if r := byName["anon-2"]; r.Healthy || r.Failovers == 0 {
		t.Errorf("anon-2 summary = %+v", r)
	}
	if r := byName["anon-3"]; !r.Quarantined || r.Calls != 0 {
		t.Errorf("anon-3 summary = %+v", r)
	}
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lateral_cluster_replica_healthy{fleet="anon",replica="anon-1"} 1`,
		`lateral_cluster_replica_healthy{fleet="anon",replica="anon-2"} 0`,
		`lateral_cluster_replica_quarantined{fleet="anon",replica="anon-3"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSoakUnderChaos hammers the pool from several goroutines while a
// chaos goroutine repeatedly crashes and heals one replica. Run with
// -race; the invariants are: callers only ever see success or a total
// outage error, no accepted call is lost (every success was processed at
// least once), and the fleet fully recovers afterwards.
func TestSoakUnderChaos(t *testing.T) {
	f := newFleet(t, 4, nil, nil)
	const workers, calls = 4, 30
	var wg sync.WaitGroup
	var successes, outages atomic64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				err := f.bump(fmt.Sprintf("w%d-m%d", w, i))
				switch {
				case err == nil:
					successes.add(1)
				case errors.Is(err, ErrNoReplicas) || errors.Is(err, ErrExhausted):
					outages.add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			f.part.Isolate("anon-3")
			f.pool.CheckNow()
			f.part.Heal("anon-3")
			f.pool.CheckNow()
		}
	}()
	wg.Wait()
	f.part.HealAll()
	f.pool.CheckNow()
	if got := f.pool.Healthy(); got != 4 {
		t.Errorf("healthy = %d after soak, want 4", got)
	}
	if f.fleetTotal() < int(successes.load()) {
		t.Errorf("fleet processed %d < %d successes: accepted calls lost",
			f.fleetTotal(), successes.load())
	}
	t.Logf("soak: %d ok, %d outages, %d processed", successes.load(), outages.load(), f.fleetTotal())
}

// atomic64 avoids importing sync/atomic under a second name in tests.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func TestConfigValidationAndDefaults(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	vendor := cryptoutil.NewSigner("v")
	p, err := New(Config{RemoteName: "anon", VendorKey: vendor.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Fleet != "anon" || p.cfg.MaxAttempts != 3 || p.cfg.Balancer == nil {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
	if err := p.Admit(ReplicaSpec{}); err == nil {
		t.Error("empty replica spec accepted")
	}
	if _, err := p.Do("k", core.Message{Op: "x"}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("empty pool Do: %v", err)
	}
	var _ ed25519.PublicKey = p.cfg.VendorKey
}

func TestDuplicateReplicaNameRejected(t *testing.T) {
	f := newFleet(t, 1, nil, nil)
	err := f.pool.Admit(ReplicaSpec{
		Name:           "anon-1",
		RemoteEndpoint: "anon-1",
		Endpoint:       f.net.Attach("lb-dup"),
		Rand:           cryptoutil.NewPRNG("dup"),
	})
	if err == nil || !strings.Contains(err.Error(), "already admitted") {
		t.Errorf("duplicate admit: %v", err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateHealthy:     "healthy",
		StateDown:        "down",
		StateQuarantined: "quarantined",
		State(9):         "state(9)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// TestDoDeadlineExpiredBeforeDispatch: a spent budget never reaches any
// replica, and no failover happens.
func TestDoDeadlineExpiredBeforeDispatch(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	_, err := f.pool.DoDeadline("k", core.Message{Op: "bump", Data: []byte("k")},
		time.Now().Add(-time.Millisecond))
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("expired DoDeadline: got %v, want core.ErrDeadline", err)
	}
	if f.fleetTotal() != 0 {
		t.Errorf("%d bumps served on a spent budget", f.fleetTotal())
	}
	for _, ri := range f.pool.Replicas() {
		if ri.Failovers != 0 || ri.Retries != 0 {
			t.Errorf("replica %s: failovers %d retries %d on a spent budget",
				ri.Name, ri.Failovers, ri.Retries)
		}
	}
}

// TestDoDeadlineTimeoutDoesNotFailOver: a replica that blows the budget
// ends the call with ErrDeadline — no sibling retry (the caller is gone)
// and no down-marking (slow is not dead).
func TestDoDeadlineTimeoutDoesNotFailOver(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	start := time.Now()
	_, err := f.pool.DoDeadline("k", core.Message{Op: "stall"},
		time.Now().Add(15*time.Millisecond))
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("stalled DoDeadline: got %v, want core.ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("caller blocked %v on a 15ms budget", elapsed)
	}
	if got := f.pool.Healthy(); got != 2 {
		t.Errorf("Healthy() = %d after a timeout, want 2 (slow is not dead)", got)
	}
	for _, ri := range f.pool.Replicas() {
		if ri.Failovers != 0 {
			t.Errorf("replica %s failed over on a deadline error", ri.Name)
		}
	}
	time.Sleep(120 * time.Millisecond) // drain the abandoned remote handler
}

// TestOverloadFailsOverWithoutMarkingDown: a replica shedding load with
// ErrOverloaded is retried on a sibling immediately, and stays admitted —
// transient overload must not force a re-attestation round trip.
func TestOverloadFailsOverWithoutMarkingDown(t *testing.T) {
	f := newFleet(t, 2, nil, func(c *Config) {
		// The priming stall consumes the first entry; the bump then hits
		// anon-1 (sheds) and fails over to anon-2.
		c.Balancer = &scriptedBalancer{names: []string{"anon-1", "anon-1", "anon-2"}}
	})
	// Fill anon-1's single admission slot with an abandoned stall.
	f.systems["anon-1"].SetAdmissionLimit(1)
	if _, err := f.pool.DoDeadline("k", core.Message{Op: "stall"},
		time.Now().Add(10*time.Millisecond)); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("priming stall: %v", err)
	}
	// Scripted balancer sends the next call to anon-1 (sheds) then anon-2.
	reply, err := f.pool.DoDeadline("k", core.Message{Op: "bump", Data: []byte("k")},
		time.Now().Add(500*time.Millisecond))
	if err != nil {
		t.Fatalf("overload failover: %v", err)
	}
	if reply.Op != "ok" {
		t.Errorf("reply = %+v", reply)
	}
	if got := f.pool.Healthy(); got != 2 {
		t.Errorf("Healthy() = %d, want 2 (overload must not mark down)", got)
	}
	if f.stores["anon-2"].Total() != 1 {
		t.Errorf("anon-2 served %d bumps, want 1", f.stores["anon-2"].Total())
	}
	if ri := f.info("anon-1"); ri.Retries != 1 || ri.Failovers != 0 {
		t.Errorf("anon-1 retries %d failovers %d, want 1/0", ri.Retries, ri.Failovers)
	}
	time.Sleep(120 * time.Millisecond) // drain the abandoned remote handler
}

// TestDoDeadlineOutageBackoffCappedByBudget: with every replica down
// mid-call, outage backoff sleeps never extend past the caller's deadline.
func TestDoDeadlineOutageBackoffCappedByBudget(t *testing.T) {
	var slept []time.Duration
	f := newFleet(t, 1, nil, func(c *Config) {
		c.MaxAttempts = 4
		c.BackoffBase = 40 * time.Millisecond
		c.BackoffMax = 400 * time.Millisecond
		c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	})
	// Kill the only replica's link so every attempt is an operational
	// failure and the pool hits the empty-pool backoff path.
	f.part.Isolate("anon-1")
	deadline := time.Now().Add(60 * time.Millisecond)
	_, err := f.pool.DoDeadline("k", core.Message{Op: "bump", Data: []byte("k")}, deadline)
	if err == nil {
		t.Fatal("call succeeded with the only replica isolated")
	}
	for _, d := range slept {
		if d > 70*time.Millisecond {
			t.Errorf("backoff slept %v, past the 60ms caller budget", d)
		}
	}
}

// journalCounter is a test EventRecorder counting events per kind/actor.
type journalCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func (j *journalCounter) RecordEvent(kind, actor, detail string, trace, span uint64) {
	j.mu.Lock()
	if j.counts == nil {
		j.counts = make(map[string]int)
	}
	j.counts[kind+"|"+actor]++
	j.mu.Unlock()
}

func (j *journalCounter) count(kind, actor string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.counts[kind+"|"+actor]
}

// targetTamperer flips a byte in every payload the target endpoint sends —
// the on-path integrity attack that makes re-attestation refuse a replica.
type targetTamperer struct{ target string }

func (a targetTamperer) Intercept(d netsim.Datagram) []netsim.Datagram {
	if d.From != a.target || len(d.Payload) == 0 {
		return []netsim.Datagram{d}
	}
	c := d.Payload // in-path attacker may mutate in place
	c[len(c)/2] ^= 0x40
	return []netsim.Datagram{d}
}

// TestQuarantineJournaledExactlyOnceUnderConcurrentFailover drives the
// exactly-once property the setState refactor guarantees: a replica that
// fails re-attestation while concurrent health rounds, failovers, and
// callers all race on it produces exactly ONE quarantine journal entry —
// the state commit, the journal append, and the Monitor callback are one
// critical section, and quarantine is absorbing. Run with -race.
func TestQuarantineJournaledExactlyOnceUnderConcurrentFailover(t *testing.T) {
	jc := &journalCounter{}
	f := newFleet(t, 3, nil, func(c *Config) { c.Journal = jc })

	// Take anon-2 down, then bring its network back tampered: every
	// reconnect now presents corrupt evidence and fails attestation.
	f.part.Isolate("anon-2")
	f.pool.CheckNow()
	if got := f.info("anon-2").State; got != StateDown {
		t.Fatalf("anon-2 = %v before tamper, want down", got)
	}
	f.part.Heal("anon-2")
	f.net.SetAdversary(netsim.NewChain(f.part, targetTamperer{target: "anon-2"}))

	// Race health rounds (each re-attests the down replica) against a
	// caller storm; every path that can touch anon-2's state runs at once.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				f.pool.CheckNow()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = f.bump(fmt.Sprintf("storm-%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()

	if got := f.info("anon-2").State; got != StateQuarantined {
		t.Fatalf("anon-2 = %v after tampered re-attestation, want quarantined", got)
	}
	if got := jc.count(KindQuarantine, "anon/anon-2"); got != 1 {
		t.Fatalf("quarantine journaled %d times, want exactly 1", got)
	}
	if got := jc.count(KindAdmit, "anon/anon-2"); got != 1 {
		t.Fatalf("admit journaled %d times, want exactly 1", got)
	}
	// Quarantine is absorbing: later health rounds must not resurrect or
	// re-journal the replica.
	f.net.SetAdversary(f.part)
	f.pool.CheckNow()
	if got := jc.count(KindQuarantine, "anon/anon-2"); got != 1 {
		t.Fatalf("quarantine re-journaled after heal: %d entries", got)
	}
	if got := jc.count(KindReplicaUp, "anon/anon-2"); got != 1 {
		t.Fatalf("anon-2 replica-up count = %d, want 1 (initial admission only)", got)
	}
}
