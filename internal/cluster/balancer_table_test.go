package cluster

import (
	"fmt"
	"testing"
)

// balancerReplicas builds n bare replicas (no wire, no stub) — Pick only
// reads names and inflight gauges, so policy behavior is testable as a
// pure function of the candidate set.
func balancerReplicas(n int) []*Replica {
	out := make([]*Replica, n)
	for i := range out {
		out[i] = &Replica{name: fmt.Sprintf("svc-%d", i+1)}
	}
	return out
}

// pickCounts drives picks calls with distinct affinity keys through b and
// tallies per-replica totals.
func pickCounts(b Balancer, reps []*Replica, picks int) map[string]int {
	counts := make(map[string]int)
	for i := 0; i < picks; i++ {
		r := b.Pick(fmt.Sprintf("key-%04d", i), reps)
		counts[r.Name()]++
	}
	return counts
}

// TestBalancerDistributionBounds puts every policy under the identical
// simulated load — the same candidate set, the same 3000 distinct-key
// picks, all inflight gauges at zero — and asserts each stays inside its
// distribution contract: the cursor policies split exactly evenly, the
// hash policy splits within a statistical band.
func TestBalancerDistributionBounds(t *testing.T) {
	const replicas, picks = 3, 3000
	cases := []struct {
		name     string
		balancer Balancer
		min, max int // inclusive per-replica bounds
	}{
		{"round-robin", NewRoundRobin(), picks / replicas, picks / replicas},
		{"least-inflight", NewLeastInflight(), picks / replicas, picks / replicas},
		// 64 vnodes per replica: even-ish, not exact. The band is generous
		// (half to double the fair share) but fails outright if hashing
		// collapses (one replica owning nearly everything).
		{"consistent-hash", NewConsistentHash(), picks / (2 * replicas), 2 * picks / replicas},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reps := balancerReplicas(replicas)
			counts := pickCounts(tc.balancer, reps, picks)
			total := 0
			for _, r := range reps {
				n := counts[r.Name()]
				total += n
				if n < tc.min || n > tc.max {
					t.Errorf("%s got %d of %d picks, want within [%d, %d]",
						r.Name(), n, picks, tc.min, tc.max)
				}
			}
			if total != picks {
				t.Errorf("accounted picks = %d, want %d", total, picks)
			}
		})
	}
}

// TestRoundRobinExactRotation pins the cycling order: admission order,
// with the global cursor keeping rotation fair across candidate-set
// changes (a recovered replica does not reset the cycle).
func TestRoundRobinExactRotation(t *testing.T) {
	b := NewRoundRobin()
	reps := balancerReplicas(3)
	want := []string{"svc-1", "svc-2", "svc-3", "svc-1", "svc-2", "svc-3"}
	for i, w := range want {
		if got := b.Pick("k", reps).Name(); got != w {
			t.Fatalf("pick %d = %s, want %s", i, got, w)
		}
	}
	// svc-2 drops out: the cursor keeps advancing over the shrunken set
	// rather than restarting at svc-1.
	down := []*Replica{reps[0], reps[2]}
	first := b.Pick("k", down).Name()
	second := b.Pick("k", down).Name()
	if first == second {
		t.Errorf("degraded set did not alternate: %s then %s", first, second)
	}
}

// TestLeastInflightAvoidsLoadedReplica: a replica with outstanding calls
// is not picked while idle replicas exist, and equally-idle replicas share
// via tie rotation instead of the first always winning.
func TestLeastInflightAvoidsLoadedReplica(t *testing.T) {
	b := NewLeastInflight()
	reps := balancerReplicas(3)
	reps[1].inflight.Add(5) // svc-2 is busy
	counts := pickCounts(b, reps, 100)
	if counts["svc-2"] != 0 {
		t.Errorf("busy replica picked %d times, want 0", counts["svc-2"])
	}
	if counts["svc-1"] != 50 || counts["svc-3"] != 50 {
		t.Errorf("idle replicas got %d/%d picks, want 50/50", counts["svc-1"], counts["svc-3"])
	}
	// The busy replica drains: it must immediately become the unique
	// minimum and win the next pick.
	reps[1].inflight.Add(-5)
	reps[0].inflight.Add(1)
	reps[2].inflight.Add(1)
	if got := b.Pick("k", reps).Name(); got != "svc-2" {
		t.Errorf("drained replica not picked: got %s", got)
	}
}

// TestConsistentHashRingStability pins the two sharding properties:
// repeated picks of one key always land on the same replica, and removing
// a replica remaps only the keys it owned — every other key stays put.
func TestConsistentHashRingStability(t *testing.T) {
	b := NewConsistentHash()
	reps := balancerReplicas(4)
	const keys = 2000
	owner := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%04d", i)
		owner[k] = b.Pick(k, reps).Name()
		// Stability: the same key re-picked lands on the same replica.
		if again := b.Pick(k, reps).Name(); again != owner[k] {
			t.Fatalf("key %s moved with no membership change: %s -> %s", k, owner[k], again)
		}
	}
	// svc-3 fails. Keys it owned must move; no other key may.
	lost := "svc-3"
	survivors := []*Replica{reps[0], reps[1], reps[3]}
	moved, kept := 0, 0
	for k, prev := range owner {
		now := b.Pick(k, survivors).Name()
		if prev == lost {
			moved++
			if now == lost {
				t.Fatalf("key %s still assigned to removed replica", k)
			}
			continue
		}
		if now != prev {
			t.Errorf("key %s owned by survivor %s remapped to %s", k, prev, now)
		} else {
			kept++
		}
	}
	if moved == 0 {
		t.Error("removed replica owned no keys; test proves nothing")
	}
	if kept == 0 {
		t.Error("no key stayed put after failover")
	}
}

// TestConsistentHashMembershipMovesBoundedKeys is the incremental-rebuild
// contract under dynamic membership, table-driven over join and leave: a
// join moves only keys that land on the joiner, a leave moves only keys
// the departed member owned, and either way the movement stays near the
// fair share K/N — the ring reconciles point by point, it is never
// rebuilt from scratch with fresh placements.
func TestConsistentHashMembershipMovesBoundedKeys(t *testing.T) {
	const keys = 2000
	base := balancerReplicas(4)
	cases := []struct {
		name  string
		after []*Replica
		// gained is the member that may receive moved keys on join
		// (empty for a leave, where survivors split the departed share).
		gained string
		// lost is the member whose keys must all move on leave.
		lost string
	}{
		{name: "join svc-5", after: append(append([]*Replica(nil), base...), &Replica{name: "svc-5"}), gained: "svc-5"},
		{name: "leave svc-2", after: []*Replica{base[0], base[2], base[3]}, lost: "svc-2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewConsistentHash()
			owner := make(map[string]string, keys)
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%04d", i)
				owner[k] = b.Pick(k, base).Name()
			}
			n := len(tc.after)
			moved := 0
			for k, prev := range owner {
				now := b.Pick(k, tc.after).Name()
				if now == prev {
					continue
				}
				moved++
				if tc.gained != "" && now != tc.gained {
					t.Errorf("key %s moved %s -> %s, not to the joiner", k, prev, now)
				}
				if tc.lost != "" && prev != tc.lost {
					t.Errorf("key %s moved off surviving member %s", k, prev)
				}
			}
			// The fair share is keys/n; allow double for vnode variance.
			// Zero movement would mean the membership change was ignored.
			if bound := 2 * keys / n; moved == 0 || moved > bound {
				t.Errorf("membership change moved %d of %d keys, want within (0, %d]", moved, keys, bound)
			}
			// Reconciling back to the original set restores the exact
			// original assignment: placements are a pure function of names.
			for k, prev := range owner {
				if again := b.Pick(k, base).Name(); again != prev {
					t.Errorf("key %s did not return to %s after membership restored (got %s)", k, prev, again)
				}
			}
		})
	}
}
