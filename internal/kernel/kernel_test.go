package kernel

import (
	"bytes"
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/hw"
)

func TestCreateDomainAndMemoryRoundTrip(t *testing.T) {
	s := New(Config{})
	d, err := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("code-a"), MemPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.MemSize() != 2*hw.PageSize {
		t.Errorf("MemSize = %d", d.MemSize())
	}
	if d.Measurement() == [32]byte{} {
		t.Error("zero measurement")
	}
	if err := d.Write(hw.PageSize-4, []byte("crosses-page")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(hw.PageSize-4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "crosses-page" {
		t.Errorf("round trip = %q", got)
	}
	if err := d.Write(2*hw.PageSize-2, []byte("abcd")); err == nil {
		t.Error("out-of-domain write succeeded")
	}
	if _, err := d.Read(-4, 2); err == nil {
		t.Error("negative read succeeded")
	}
}

func TestDuplicateDomainRejected(t *testing.T) {
	s := New(Config{})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "x"}); !errors.Is(err, core.ErrDomainExists) {
		t.Errorf("duplicate: got %v", err)
	}
}

func TestSpatialIsolationBetweenDomains(t *testing.T) {
	s := New(Config{})
	a, err := s.CreateDomain(core.DomainSpec{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateDomain(core.DomainSpec{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("A-ONLY-SECRET")
	if err := a.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	// b's compromise view must not contain a's secret.
	for _, view := range b.CompromiseView() {
		if bytes.Contains(view, secret) {
			t.Error("domain b can read domain a's memory")
		}
	}
	// a's own compromise view does contain it.
	found := false
	for _, view := range a.CompromiseView() {
		if bytes.Contains(view, secret) {
			found = true
		}
	}
	if !found {
		t.Error("domain a's compromise view missing its own memory")
	}
}

func TestDestroyFreesFramesAndBlocksAccess(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	s := New(Config{Machine: m})
	before := m.Frames.InUse()
	d, err := s.CreateDomain(core.DomainSpec{Name: "tmp", MemPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames.InUse() != before+3 {
		t.Errorf("frames in use = %d, want %d", m.Frames.InUse(), before+3)
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if m.Frames.InUse() != before {
		t.Errorf("frames not freed: %d, want %d", m.Frames.InUse(), before)
	}
	if err := d.Write(0, []byte("x")); err == nil {
		t.Error("write to destroyed domain succeeded")
	}
	if _, err := d.Read(0, 1); err == nil {
		t.Error("read from destroyed domain succeeded")
	}
	if v := d.CompromiseView(); v != nil {
		t.Error("destroyed domain still has a compromise view")
	}
	if err := d.Destroy(); err != nil {
		t.Errorf("double destroy: %v", err)
	}
	// The name is free again.
	if _, err := s.CreateDomain(core.DomainSpec{Name: "tmp"}); err != nil {
		t.Errorf("recreate after destroy: %v", err)
	}
}

func TestBusTapSeesKernelDomainPlaintext(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	s := New(Config{Machine: m})
	tap := &recordTap{}
	m.Mem.AttachTap(tap)
	d, err := s.CreateDomain(core.DomainSpec{Name: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("MMU-DOES-NOT-ENCRYPT")
	if err := d.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tap.seen, secret) {
		t.Error("bus tap should see plaintext of MMU-only domains (no PhysicalMemoryProtection)")
	}
	if s.Properties().PhysicalMemoryProtection {
		t.Error("microkernel must not claim physical memory protection")
	}
}

type recordTap struct{ seen []byte }

func (r *recordTap) OnRead(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}
func (r *recordTap) OnWrite(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func TestAssignDeviceRestrictsDMA(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{})
	s := New(Config{Machine: m})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "driver", MemPages: 1}); err != nil {
		t.Fatal(err)
	}
	victim, err := s.CreateDomain(core.DomainSpec{Name: "victim", MemPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(0, []byte("victim-data")); err != nil {
		t.Fatal(err)
	}
	nic := hw.NewNIC("nic0")
	if err := s.AssignDevice("driver", nic); err != nil {
		t.Fatal(err)
	}
	if nic.Owner() != "driver" {
		t.Errorf("nic owner = %q", nic.Owner())
	}
	// DMA within the driver's one page works.
	if err := m.IOMMU.DMAWrite("nic0", 0, []byte("rx-frame")); err != nil {
		t.Fatalf("in-bounds DMA: %v", err)
	}
	// DMA beyond it faults: the IOMMU protects the victim.
	if err := m.IOMMU.DMAWrite("nic0", hw.VirtAddr(hw.PageSize), []byte("evil")); !errors.Is(err, hw.ErrFault) {
		t.Errorf("out-of-bounds DMA: got %v, want fault", err)
	}
	if err := s.AssignDevice("ghost", nic); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("assign to missing domain: got %v", err)
	}
}

func TestSubstrateHostsCoreSystem(t *testing.T) {
	s := New(Config{})
	sys := core.NewSystem(s)
	if err := sys.Launch(&pingComp{}, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	reply, err := sys.Deliver("ping", core.Message{Op: "ping"})
	if err != nil || reply.Op != "pong" {
		t.Fatalf("reply = %+v, %v", reply, err)
	}
	if s.Anchor() != nil {
		t.Error("microkernel should have no built-in trust anchor")
	}
}

type pingComp struct{}

func (p *pingComp) CompName() string     { return "ping" }
func (p *pingComp) CompVersion() string  { return "1" }
func (p *pingComp) Init(*core.Ctx) error { return nil }
func (p *pingComp) Handle(core.Envelope) (core.Message, error) {
	return core.Message{Op: "pong"}, nil
}

func TestSchedulerValidation(t *testing.T) {
	s := NewScheduler(TimePartitioned, 10)
	if _, err := s.Run(1); err == nil {
		t.Error("empty scheduler ran")
	}
	s.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }, Slots: 0})
	if _, err := s.Run(1); err == nil {
		t.Error("zero-slot task under TDMA ran")
	}
	s2 := NewScheduler(TimePartitioned, 10)
	s2.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }, Slots: 6})
	s2.AddTask(&Task{Name: "b", Demand: func(int64) bool { return true }, Slots: 6})
	if _, err := s2.Run(1); err == nil {
		t.Error("over-committed TDMA ran")
	}
}

func TestBestEffortIsWorkConserving(t *testing.T) {
	s := NewScheduler(BestEffort, 10)
	s.AddTask(&Task{Name: "idle", Demand: func(int64) bool { return false }})
	s.AddTask(&Task{Name: "busy", Demand: func(int64) bool { return true }})
	usage, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		if usage[1].Grants[f] != 10 {
			t.Errorf("frame %d: busy task got %d/10 ticks despite idle peer", f, usage[1].Grants[f])
		}
		if usage[0].Grants[f] != 0 {
			t.Errorf("frame %d: idle task got %d ticks", f, usage[0].Grants[f])
		}
	}
}

func TestBestEffortSharesFairlyUnderContention(t *testing.T) {
	s := NewScheduler(BestEffort, 10)
	s.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }})
	s.AddTask(&Task{Name: "b", Demand: func(int64) bool { return true }})
	usage, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if usage[0].Grants[0] != 5 || usage[1].Grants[0] != 5 {
		t.Errorf("contended split = %d/%d, want 5/5", usage[0].Grants[0], usage[1].Grants[0])
	}
}

func TestTDMAGrantsAreDemandIndependent(t *testing.T) {
	// The receiver's grant must be identical whether the other task is
	// hungry or idle — that is the definition of temporal isolation.
	run := func(senderHungry bool) int {
		s := NewScheduler(TimePartitioned, 10)
		s.AddTask(&Task{Name: "sender", Demand: func(int64) bool { return senderHungry }, Slots: 5})
		s.AddTask(&Task{Name: "receiver", Demand: func(int64) bool { return true }, Slots: 5})
		usage, err := s.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return usage[1].Grants[0]
	}
	if hungry, idle := run(true), run(false); hungry != idle {
		t.Errorf("receiver grant depends on sender demand under TDMA: %d vs %d", hungry, idle)
	}
}

func TestCovertChannelOpenUnderBestEffort(t *testing.T) {
	bits := patternBits(64)
	res, err := MeasureCovertChannel(BestEffort, 100, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.95 {
		t.Errorf("best-effort covert channel accuracy = %.2f, want ≥0.95 (channel should be wide open)", res.Accuracy())
	}
	if res.BitsPerFrame <= 0.5 {
		t.Errorf("best-effort covert bandwidth = %.2f bits/frame, want >0.5", res.BitsPerFrame)
	}
}

func TestCovertChannelClosedUnderTDMA(t *testing.T) {
	bits := patternBits(64)
	res, err := MeasureCovertChannel(TimePartitioned, 100, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsPerFrame != 0 {
		t.Errorf("TDMA covert bandwidth = %.2f bits/frame, want 0", res.BitsPerFrame)
	}
	if res.Accuracy() > 0.6 {
		t.Errorf("TDMA decode accuracy = %.2f, should be at or below guessing", res.Accuracy())
	}
}

// patternBits makes a deterministic, non-periodic, roughly balanced bit
// pattern.
func patternBits(n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = (i*i+i/3)%2 == 0
	}
	return bits
}

func TestPolicyString(t *testing.T) {
	if BestEffort.String() != "best-effort" || TimePartitioned.String() != "time-partitioned" {
		t.Error("policy strings wrong")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy has empty string")
	}
}

func TestPropertiesReflectPartitioning(t *testing.T) {
	if New(Config{}).Properties().TemporalIsolation {
		t.Error("default kernel claims temporal isolation")
	}
	if !New(Config{TimePartitioned: true}).Properties().TemporalIsolation {
		t.Error("partitioned kernel lacks temporal isolation")
	}
}

func TestInterferenceAnalysisTDMA(t *testing.T) {
	s := NewScheduler(TimePartitioned, 100)
	s.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }, Slots: 30})
	s.AddTask(&Task{Name: "b", Demand: func(int64) bool { return true }, Slots: 70})
	bounds, err := s.AnalyzeInterference()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bounds {
		if b.DependsOnPeers {
			t.Errorf("%s: TDMA progress must not depend on peers", b.Task)
		}
	}
	if bounds[0].MaxWaitTicks != 70 || bounds[0].GuaranteedPerFrame != 30 {
		t.Errorf("task a bounds = %+v", bounds[0])
	}
	if bounds[1].MaxWaitTicks != 30 || bounds[1].GuaranteedPerFrame != 70 {
		t.Errorf("task b bounds = %+v", bounds[1])
	}
	// The analysis must agree with the measured schedule: a's grant per
	// frame equals its guarantee exactly.
	usage, err := s.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 5; f++ {
		if usage[0].Grants[f] != 30 {
			t.Errorf("frame %d: measured %d, analyzed 30", f, usage[0].Grants[f])
		}
	}
}

func TestInterferenceAnalysisBestEffort(t *testing.T) {
	s := NewScheduler(BestEffort, 100)
	s.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }})
	s.AddTask(&Task{Name: "b", Demand: func(int64) bool { return true }})
	bounds, err := s.AnalyzeInterference()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bounds {
		if !b.DependsOnPeers {
			t.Errorf("%s: best-effort progress depends on peers", b.Task)
		}
		if b.GuaranteedPerFrame != 50 {
			t.Errorf("%s: fair-share floor = %d, want 50", b.Task, b.GuaranteedPerFrame)
		}
	}
	// Single task: no peers, no dependence.
	s1 := NewScheduler(BestEffort, 100)
	s1.AddTask(&Task{Name: "solo", Demand: func(int64) bool { return true }})
	b1, err := s1.AnalyzeInterference()
	if err != nil {
		t.Fatal(err)
	}
	if b1[0].DependsOnPeers {
		t.Error("solo task depends on peers")
	}
}

func TestInterferenceAnalysisValidation(t *testing.T) {
	s := NewScheduler(TimePartitioned, 10)
	if _, err := s.AnalyzeInterference(); err == nil {
		t.Error("empty analysis succeeded")
	}
	s.AddTask(&Task{Name: "a", Demand: func(int64) bool { return true }, Slots: 20})
	if _, err := s.AnalyzeInterference(); err == nil {
		t.Error("over-committed analysis succeeded")
	}
}
