// Package kernel implements the microkernel isolation substrate: MMU-based
// address spaces over simulated physical memory, capability-style IPC
// enforced by the core runtime, an IOMMU for device assignment, and a
// deterministic scheduler with optional fixed time partitioning.
//
// It models the paper's seL4/L4Re-style systems: "microkernels ... use the
// MMU to isolate processes from one another. ... The MMU and IOMMU hardware
// together with the microkernel controlling them comprise the isolation
// substrate." Temporal isolation follows §II-C: "Using time partitioning
// and scheduler interference analysis, microkernels provide strong temporal
// isolation by mitigating covert channels."
package kernel

import (
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

// Config tunes the substrate.
type Config struct {
	// Machine is the hardware to run on; a default 4 MiB machine is
	// created when nil.
	Machine *hw.Machine

	// TimePartitioned selects the fixed-partition scheduler, giving the
	// substrate temporal isolation (see Scheduler).
	TimePartitioned bool
}

// Substrate is the microkernel. It creates one address space per domain.
type Substrate struct {
	cfg     Config
	machine *hw.Machine

	mu      sync.Mutex
	domains map[string]*addressSpace
}

var _ core.Substrate = (*Substrate)(nil)

// New boots a microkernel on the given machine.
func New(cfg Config) *Substrate {
	if cfg.Machine == nil {
		cfg.Machine = hw.NewMachine(hw.MachineConfig{Name: "microkernel-host"})
	}
	return &Substrate{
		cfg:     cfg,
		machine: cfg.Machine,
		domains: make(map[string]*addressSpace),
	}
}

// Name returns "microkernel".
func (s *Substrate) Name() string { return "microkernel" }

// Machine exposes the underlying hardware (experiments attach bus taps).
func (s *Substrate) Machine() *hw.Machine { return s.machine }

// Properties: strong spatial isolation, optional temporal isolation, no
// DRAM protection (a bus tap reads plaintext), no built-in attestation —
// the paper pairs microkernels with a TPM for that (internal/attest).
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:         "microkernel",
		SpatialIsolation:  true,
		TemporalIsolation: s.cfg.TimePartitioned,
		ConcurrentTrusted: true,
		InvokeCostNs:      1000, // one synchronous IPC round trip
		TCBUnits:          10,   // ~10 kLoC verified kernel (seL4 scale)
	}
}

// Anchor returns nil: attestation requires a TPM or similar (see
// internal/attest for the combination).
func (s *Substrate) Anchor() core.TrustAnchor { return nil }

// CreateDomain builds an address space and maps fresh frames for it.
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("kernel: %s: %w", spec.Name, core.ErrDomainExists)
	}
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	pt := hw.NewPageTable()
	frames := make([]hw.PhysAddr, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := s.machine.Frames.Alloc()
		if err != nil {
			return nil, fmt.Errorf("kernel: %s: %w", spec.Name, err)
		}
		frames = append(frames, f)
		pt.Map(hw.VirtAddr(i*hw.PageSize), f, hw.PermRead|hw.PermWrite)
	}
	as := &addressSpace{
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		pt:      pt,
		frames:  frames,
		size:    pages * hw.PageSize,
	}
	s.domains[spec.Name] = as
	return as, nil
}

// AssignDevice attaches a device to the IOMMU with access restricted to
// the given domain's frames, and claims it for that domain. This is the
// paper's exclusive device assignment ("if only the TLS component can
// access the device driver of the network card ...").
func (s *Substrate) AssignDevice(domainName string, dev hw.Device) error {
	s.mu.Lock()
	as, ok := s.domains[domainName]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("kernel: assign %s: %w", domainName, core.ErrNoDomain)
	}
	// The device sees the domain's memory at the domain's own layout.
	s.machine.IOMMU.Attach(dev.DeviceName(), as.pt)
	type claimer interface{ Claim(owner string) error }
	if c, ok := dev.(claimer); ok {
		if err := c.Claim(domainName); err != nil {
			return fmt.Errorf("kernel: assign %s: %w", domainName, err)
		}
	}
	return nil
}

// addressSpace is one MMU-isolated domain.
type addressSpace struct {
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte
	pt      *hw.PageTable
	frames  []hw.PhysAddr
	size    int

	mu    sync.Mutex
	freed bool
}

var _ core.DomainHandle = (*addressSpace)(nil)

func (a *addressSpace) DomainName() string    { return a.name }
func (a *addressSpace) Measurement() [32]byte { return a.meas }
func (a *addressSpace) Trusted() bool         { return a.trusted }
func (a *addressSpace) MemSize() int          { return a.size }

func (a *addressSpace) Write(off int, p []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return fmt.Errorf("kernel %s: domain destroyed", a.name)
	}
	if off < 0 || off+len(p) > a.size {
		return fmt.Errorf("kernel %s: write %d@%d: %w", a.name, len(p), off, hw.ErrFault)
	}
	return a.sub.machine.MMU.Write(a.pt, hw.VirtAddr(off), p)
}

func (a *addressSpace) Read(off, n int) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return nil, fmt.Errorf("kernel %s: domain destroyed", a.name)
	}
	if off < 0 || off+n > a.size {
		return nil, fmt.Errorf("kernel %s: read %d@%d: %w", a.name, n, off, hw.ErrFault)
	}
	return a.sub.machine.MMU.Read(a.pt, hw.VirtAddr(off), n)
}

// CompromiseView: exactly the pages this address space maps — "address
// space walls are just as impenetrable" (§II-C), so nothing else leaks.
func (a *addressSpace) CompromiseView() [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return nil
	}
	data, err := a.sub.machine.MMU.Read(a.pt, 0, a.size)
	if err != nil {
		return nil
	}
	return [][]byte{data}
}

func (a *addressSpace) Destroy() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freed {
		return nil
	}
	a.freed = true
	for _, f := range a.frames {
		a.sub.machine.Frames.Free(f)
	}
	a.sub.mu.Lock()
	delete(a.sub.domains, a.name)
	a.sub.mu.Unlock()
	return nil
}
