package kernel

import (
	"fmt"
	"sort"
)

// Policy selects how the scheduler arbitrates CPU time between tasks.
type Policy int

// Scheduling policies.
const (
	// BestEffort is a work-conserving round robin: an idle task's unused
	// time immediately benefits the others. Efficient, but each task's
	// progress observably depends on the others' demand — a timing covert
	// channel (§II-C).
	BestEffort Policy = iota + 1

	// TimePartitioned is a fixed TDMA schedule: each task owns a fixed
	// slice of every frame whether it uses it or not. Unused time is
	// wasted, but no task's progress depends on any other task — the
	// covert channel is closed ("interference-free scheduling").
	TimePartitioned
)

func (p Policy) String() string {
	switch p {
	case BestEffort:
		return "best-effort"
	case TimePartitioned:
		return "time-partitioned"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DemandFunc reports whether the task wants the CPU at the given virtual
// tick. Tasks modulate demand to do work — or, adversarially, to signal.
type DemandFunc func(tick int64) bool

// Task is one schedulable entity.
type Task struct {
	Name   string
	Demand DemandFunc
	// Slots is the number of ticks per frame this task owns under
	// TimePartitioned (ignored under BestEffort).
	Slots int
}

// Scheduler runs tasks on a deterministic virtual clock. One tick is the
// scheduling quantum; FrameLen ticks form one major frame.
type Scheduler struct {
	policy   Policy
	frameLen int
	tasks    []*Task
}

// NewScheduler creates a scheduler with the given policy and frame length.
func NewScheduler(policy Policy, frameLen int) *Scheduler {
	if frameLen <= 0 {
		frameLen = 100
	}
	return &Scheduler{policy: policy, frameLen: frameLen}
}

// Policy returns the configured policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// AddTask registers a task. Under TimePartitioned the per-frame slot
// counts of all tasks must not exceed the frame length; Run validates.
func (s *Scheduler) AddTask(t *Task) {
	s.tasks = append(s.tasks, t)
}

// FrameUsage is one task's granted ticks in each frame.
type FrameUsage struct {
	Task   string
	Grants []int // grants[f] = ticks granted in frame f
}

// Run executes the schedule for the given number of frames and returns the
// per-frame tick grants for every task. The result is fully deterministic.
func (s *Scheduler) Run(frames int) ([]FrameUsage, error) {
	if len(s.tasks) == 0 {
		return nil, fmt.Errorf("scheduler: no tasks")
	}
	if s.policy == TimePartitioned {
		total := 0
		for _, t := range s.tasks {
			if t.Slots <= 0 {
				return nil, fmt.Errorf("scheduler: task %s has no slots under time partitioning", t.Name)
			}
			total += t.Slots
		}
		if total > s.frameLen {
			return nil, fmt.Errorf("scheduler: %d slots exceed frame length %d", total, s.frameLen)
		}
	}
	usage := make([]FrameUsage, len(s.tasks))
	for i, t := range s.tasks {
		usage[i] = FrameUsage{Task: t.Name, Grants: make([]int, frames)}
	}
	switch s.policy {
	case TimePartitioned:
		s.runTDMA(frames, usage)
	default:
		s.runBestEffort(frames, usage)
	}
	return usage, nil
}

// runTDMA grants each task exactly its slots each frame, independent of
// demand elsewhere. A task only *uses* a granted tick if it demands CPU,
// but whether it gets the opportunity never depends on other tasks.
func (s *Scheduler) runTDMA(frames int, usage []FrameUsage) {
	for f := 0; f < frames; f++ {
		tick := int64(f * s.frameLen)
		for i, t := range s.tasks {
			for k := 0; k < t.Slots; k++ {
				if t.Demand(tick) {
					usage[i].Grants[f]++
				}
				tick++
			}
		}
	}
}

// runBestEffort is work-conserving round robin: each tick goes to the next
// demanding task in rotation; if nobody demands, the tick idles.
func (s *Scheduler) runBestEffort(frames int, usage []FrameUsage) {
	rr := 0
	n := len(s.tasks)
	for f := 0; f < frames; f++ {
		for k := 0; k < s.frameLen; k++ {
			tick := int64(f*s.frameLen + k)
			for probe := 0; probe < n; probe++ {
				i := (rr + probe) % n
				if s.tasks[i].Demand(tick) {
					usage[i].Grants[f]++
					rr = (i + 1) % n
					break
				}
			}
		}
	}
}

// CovertChannelResult summarizes a covert-channel measurement (E6): a
// sender modulates CPU demand to encode bits; a receiver with constant
// demand infers them from its own per-frame progress.
type CovertChannelResult struct {
	Policy        Policy
	Bits          []bool // bits the sender transmitted
	Decoded       []bool // bits the receiver recovered
	CorrectBits   int
	Frames        int
	BitsPerFrame  float64 // useful covert bandwidth (correct beyond guessing)
	ReceiverGrant []int   // receiver throughput per frame (for inspection)
}

// Accuracy is the fraction of correctly decoded bits.
func (r CovertChannelResult) Accuracy() float64 {
	if len(r.Bits) == 0 {
		return 0
	}
	return float64(r.CorrectBits) / float64(len(r.Bits))
}

// MeasureCovertChannel runs the paper's §II-C scenario: under the given
// policy, a sender transmits the bit string by being CPU-hungry (1) or
// idle (0) for a whole frame; the receiver demands CPU always and decodes
// by thresholding its per-frame progress against the median.
func MeasureCovertChannel(policy Policy, frameLen int, bits []bool) (CovertChannelResult, error) {
	s := NewScheduler(policy, frameLen)
	half := frameLen / 2
	sender := &Task{
		Name: "sender",
		Demand: func(tick int64) bool {
			frame := int(tick) / frameLen
			return frame < len(bits) && bits[frame]
		},
		Slots: half,
	}
	receiver := &Task{
		Name:   "receiver",
		Demand: func(int64) bool { return true },
		Slots:  frameLen - half,
	}
	s.AddTask(sender)
	s.AddTask(receiver)
	usage, err := s.Run(len(bits))
	if err != nil {
		return CovertChannelResult{}, err
	}
	recv := usage[1].Grants
	threshold := medianThreshold(recv)
	res := CovertChannelResult{
		Policy:        policy,
		Bits:          bits,
		Frames:        len(bits),
		ReceiverGrant: recv,
	}
	for f, b := range bits {
		decoded := recv[f] < threshold // sender hungry → receiver starved → bit 1
		res.Decoded = append(res.Decoded, decoded)
		if decoded == b {
			res.CorrectBits++
		}
	}
	// Useful bandwidth: accuracy beyond the best CONSTANT guesser (which
	// achieves the majority-class frequency without any channel at all),
	// scaled to [0,1] bits per frame.
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	baseline := float64(ones) / float64(len(bits))
	if baseline < 0.5 {
		baseline = 1 - baseline
	}
	if acc := res.Accuracy(); acc > baseline && baseline < 1 {
		res.BitsPerFrame = (acc - baseline) / (1 - baseline)
	}
	return res, nil
}

func medianThreshold(v []int) int {
	if len(v) == 0 {
		return 0
	}
	c := make([]int, len(v))
	copy(c, v)
	sort.Ints(c)
	lo, hi := c[0], c[len(c)-1]
	if lo == hi {
		// Constant throughput: pick a threshold nothing falls below, so
		// every frame decodes as 0 (no signal).
		return lo
	}
	return (lo + hi + 1) / 2
}
