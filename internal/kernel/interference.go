package kernel

import "fmt"

// This file implements scheduler interference analysis, the other half of
// §II-C's claim: "Using time partitioning and scheduler interference
// analysis, microkernels provide strong temporal isolation." The analysis
// bounds how long a task can be kept off the CPU by its peers — the number
// a real-time (or covert-channel) argument needs in writing, not just in
// measurement.

// InterferenceBound is the analysis result for one task.
type InterferenceBound struct {
	Task string

	// MaxWaitTicks is the worst-case number of consecutive ticks the task
	// can be denied the CPU while demanding it. -1 means unbounded.
	MaxWaitTicks int

	// GuaranteedPerFrame is the minimum CPU ticks the task receives per
	// frame when continuously demanding. 0 under best effort means no
	// guarantee at all.
	GuaranteedPerFrame int

	// DependsOnPeers reports whether the task's progress is observable a
	// function of other tasks' behaviour — the covert-channel condition.
	DependsOnPeers bool
}

// AnalyzeInterference computes per-task bounds for the scheduler's
// configuration. Under TimePartitioned the bounds are hard: a task waits
// at most one frame minus its own slots, receives exactly its slots, and
// observes nothing about its peers. Under BestEffort with n tasks, a
// demanding task waits at most n-1 ticks between grants IF all peers are
// finite — but a peer may demand forever, so the per-frame guarantee is
// only the fair share, and progress is peer-dependent (the E6 channel).
func (s *Scheduler) AnalyzeInterference() ([]InterferenceBound, error) {
	if len(s.tasks) == 0 {
		return nil, fmt.Errorf("scheduler: no tasks to analyze")
	}
	out := make([]InterferenceBound, 0, len(s.tasks))
	switch s.policy {
	case TimePartitioned:
		total := 0
		for _, t := range s.tasks {
			if t.Slots <= 0 {
				return nil, fmt.Errorf("scheduler: task %s has no slots", t.Name)
			}
			total += t.Slots
		}
		if total > s.frameLen {
			return nil, fmt.Errorf("scheduler: %d slots exceed frame length %d", total, s.frameLen)
		}
		for _, t := range s.tasks {
			out = append(out, InterferenceBound{
				Task: t.Name,
				// Worst case: the task's slots just ended; it waits the
				// rest of the frame plus the others' slots next frame —
				// bounded by frameLen - Slots.
				MaxWaitTicks:       s.frameLen - t.Slots,
				GuaranteedPerFrame: t.Slots,
				DependsOnPeers:     false,
			})
		}
	default: // BestEffort
		n := len(s.tasks)
		for _, t := range s.tasks {
			out = append(out, InterferenceBound{
				Task: t.Name,
				// Round robin: at most every other demanding task runs
				// once before this task's turn comes around again.
				MaxWaitTicks: n - 1,
				// But there is no per-frame guarantee independent of
				// peers: if all demand forever the share is frameLen/n;
				// the ANALYSIS can only promise the floor of that, and
				// the task's actual progress varies with peer demand.
				GuaranteedPerFrame: s.frameLen / n,
				DependsOnPeers:     n > 1,
			})
		}
	}
	return out, nil
}
