// Package core is the paper's primary contribution: a unified interface to
// isolation technologies ("this interface should do for isolation
// mechanisms what POSIX did for the UNIX system call interface") together
// with the horizontal component programming model built on top of it.
//
// The package defines three layers:
//
//   - Substrate / DomainHandle / TrustAnchor — the unified view of
//     hardware isolation (Section II's structural template, Figure 2).
//     Each isolation technology (microkernel, TrustZone, SGX, TPM late
//     launch, SEP) implements these interfaces in its own package.
//
//   - Component / Envelope / Ctx — the horizontal application model
//     (Section III). Components are written once against this interface
//     and run unmodified on any substrate.
//
//   - System — the runtime that loads components into domains, wires the
//     communication channels a manifest granted, and enforces the paper's
//     compromise semantics: a subverted component keeps exactly the
//     authority its domain and channels give it, nothing more.
//
// Components never import a substrate package. That property is what
// experiment E2 verifies mechanically.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Common errors.
var (
	// ErrNoChannel is returned when a component invokes a channel it was
	// never granted. The substrate blocks all communication that the
	// manifest did not establish.
	ErrNoChannel = errors.New("core: no such channel granted")

	// ErrDomainExists is returned when creating a domain whose name is taken.
	ErrDomainExists = errors.New("core: domain already exists")

	// ErrNoDomain is returned when referencing an unknown domain.
	ErrNoDomain = errors.New("core: no such domain")

	// ErrTooManyTrusted is returned when a substrate cannot host another
	// trusted domain (e.g. TrustZone has a single secure world).
	ErrTooManyTrusted = errors.New("core: substrate cannot host more trusted domains")

	// ErrQuote is returned when quote verification fails.
	ErrQuote = errors.New("core: quote verification failed")

	// ErrRefused is a component-level refusal (e.g. policy check failed).
	ErrRefused = errors.New("core: request refused")

	// ErrDeadline is returned when a call's budget is spent: either the
	// deadline passed before the target could be invoked, or the watchdog
	// abandoned a handler that ran past it. The abandoned handler keeps
	// running to completion (Handle stays serialized per component); only
	// the caller is released. See DESIGN.md "Deadlines and backpressure".
	ErrDeadline = errors.New("core: call deadline exceeded")

	// ErrOverloaded is returned when a component's bounded admission queue
	// is full: the call is shed immediately instead of queueing forever
	// behind a slow or hung handler. Load shedding is per target node, so
	// one convoyed component cannot absorb every caller in the system.
	ErrOverloaded = errors.New("core: component admission queue full")

	// ErrCanceled is returned when the caller's context was canceled while
	// the call was queued or executing.
	ErrCanceled = errors.New("core: call canceled")
)

// Message is the unit of communication between components. Op selects the
// service operation; Data is an opaque payload the components agree on.
type Message struct {
	Op   string
	Data []byte
}

// Clone returns a deep copy so that senders and receivers never alias.
func (m Message) Clone() Message {
	return Message{Op: m.Op, Data: m.CloneData()}
}

// CloneData returns a deep copy of just the payload bytes.
func (m Message) CloneData() []byte {
	d := make([]byte, len(m.Data))
	copy(d, m.Data)
	return d
}

// Envelope is a delivered message together with the sender identity the
// *channel* (not the sender) established. With a capability-style channel,
// From and Badge are trustworthy; on an ambient channel both are zero and
// the receiver only has whatever identity claims ride inside Msg.Data —
// the raw material of confused-deputy attacks.
type Envelope struct {
	Msg   Message
	From  string // channel-established sender identity; "" on ambient channels
	Badge uint64 // capability badge; 0 on ambient channels

	// Span is the telemetry span of the invocation carrying this envelope
	// (zero when no Tracer is installed). It propagates the causal trace
	// across domains — and, via the distributed stub/exporter pair, across
	// machines. Components may read it but never need to.
	Span Span

	// Deadline is the call budget: the instant after which the caller no
	// longer waits for the reply (zero means unbounded). It propagates
	// through the whole invocation chain — outbound calls a handler makes
	// inherit the remaining budget, and the distributed layer carries it
	// across machines as a remaining-budget wire field. Components may
	// consult it to shed doomed work early but never need to; the system's
	// watchdog enforces it either way.
	Deadline time.Time

	// Taint is the invocation chain's accumulated label set: every label
	// the chain acquired from channels and assets it touched before
	// reaching this handler, on this machine or upstream of the wire
	// (policy.go). Sorted, read-only, nil on an untainted chain.
	// Components may consult it but enforcement is the system's job.
	Taint []string
}

// Component is the unit of horizontal application design. Implementations
// hold their own state; the framework guarantees Handle is never invoked
// concurrently for the same component.
type Component interface {
	// CompName returns the component's stable name.
	CompName() string

	// CompVersion returns the code version; name and version together
	// form the measured code identity.
	CompVersion() string

	// Init is called once after the component is loaded into a domain.
	Init(ctx *Ctx) error

	// Handle serves one invocation and returns the reply.
	Handle(env Envelope) (Message, error)
}

// Subvertible is implemented by components that model an exploitable
// vulnerability. After attack.Compromise flips its domain, Handle is no
// longer called; HandleCompromised is, and it typically tries to exfiltrate
// everything reachable and to abuse every granted channel. The isolation
// substrate — not the component's good manners — is what limits the damage.
type Subvertible interface {
	Component
	HandleCompromised(env Envelope) (Message, error)
}

// CodeOf returns the simulated binary image of a component: the bytes that
// a launch measurement hashes. Changing either name or version changes the
// measurement, exactly like shipping a different binary.
func CodeOf(c Component) []byte {
	return []byte(c.CompName() + "@" + c.CompVersion())
}

// DomainImage returns the code image of a domain hosting the given
// components — the concatenation of their binaries, as System.Colocate
// loads it. Verifiers compute golden measurements from this.
func DomainImage(comps ...Component) []byte {
	var code []byte
	for _, c := range comps {
		code = append(code, CodeOf(c)...)
		code = append(code, '\n')
	}
	return code
}

// Observer receives everything an adversary can see. The attack package
// provides the implementation; core only reports. Observer is the
// adversary-facing twin of the operator-facing Tracer (trace.go): an
// Observer sees payload bytes from compromised domains, a Tracer sees
// timing and topology of every crossing but never payloads.
type Observer interface {
	// Observe records that the adversary saw data in the given context.
	Observe(context string, data []byte)
}

// Ctx is the capability environment handed to a component at Init. All of
// a component's interaction with the rest of the system flows through it:
// invoking granted channels, storing assets in domain memory, and asking
// for attestation primitives if the substrate provides them.
type Ctx struct {
	sys  *System
	node *node
}

// Self returns the component's own name.
func (c *Ctx) Self() string { return c.node.comp.CompName() }

// DomainName returns the name of the domain hosting the component. With
// colocation several components share a domain.
func (c *Ctx) DomainName() string { return c.node.domainName }

// Substrate returns the properties of the substrate hosting the component,
// so a component can adapt to (or refuse) a weaker attacker model.
func (c *Ctx) Substrate() Properties { return c.sys.props }

// Call invokes a granted outbound channel and returns the reply. It fails
// with ErrNoChannel if the manifest never granted the channel. When the
// calling handler is itself executing under a deadline, the call inherits
// the remaining budget automatically.
func (c *Ctx) Call(channel string, msg Message) (Message, error) {
	return c.sys.call(nil, c.node, channel, msg)
}

// CallCtx is Call with an explicit context: the call fails with
// ErrCanceled once ctx is canceled, and a ctx deadline tightens (never
// loosens) any budget inherited from the calling handler. The component
// API stays Envelope-based — Handle never sees a context; the budget
// reaches the callee as Envelope.Deadline.
func (c *Ctx) CallCtx(ctx context.Context, channel string, msg Message) (Message, error) {
	return c.sys.call(ctx, c.node, channel, msg)
}

// HasChannel reports whether an outbound channel with this name was granted.
func (c *Ctx) HasChannel(channel string) bool {
	c.sys.mu.Lock()
	defer c.sys.mu.Unlock()
	_, ok := c.node.out[channel]
	return ok
}

// Channels returns the names of all granted outbound channels, sorted so
// callers iterating over them behave deterministically.
func (c *Ctx) Channels() []string {
	c.sys.mu.Lock()
	out := make([]string, 0, len(c.node.out))
	for name := range c.node.out {
		out = append(out, name)
	}
	c.sys.mu.Unlock()
	sort.Strings(out)
	return out
}

// StoreAsset places a named secret into the component's domain memory.
// Assets are what the containment experiments score: when a domain is
// compromised, every asset physically inside it leaks.
func (c *Ctx) StoreAsset(name string, secret []byte) error {
	return c.sys.storeAsset(c.node, name, secret)
}

// LoadAsset reads a previously stored asset back from domain memory.
func (c *Ctx) LoadAsset(name string) ([]byte, error) {
	return c.sys.loadAsset(c.node, name)
}

// Quote asks the substrate's trust anchor to attest this component's
// domain. It fails if the substrate has no anchor.
func (c *Ctx) Quote(nonce []byte) (Quote, error) {
	a := c.sys.sub.Anchor()
	if a == nil {
		return Quote{}, fmt.Errorf("substrate %s: no trust anchor", c.sys.sub.Name())
	}
	return a.Quote(c.node.dom.handle, nonce)
}

// Seal binds data to this domain's code identity via the trust anchor.
func (c *Ctx) Seal(plaintext []byte) ([]byte, error) {
	a := c.sys.sub.Anchor()
	if a == nil {
		return nil, fmt.Errorf("substrate %s: no trust anchor", c.sys.sub.Name())
	}
	return a.Seal(c.node.dom.handle, plaintext)
}

// Unseal recovers data previously sealed to this domain's code identity.
func (c *Ctx) Unseal(sealed []byte) ([]byte, error) {
	a := c.sys.sub.Anchor()
	if a == nil {
		return nil, fmt.Errorf("substrate %s: no trust anchor", c.sys.sub.Name())
	}
	return a.Unseal(c.node.dom.handle, sealed)
}
