package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lateral/internal/cryptoutil"
)

// echoComp replies with its own name and the received payload.
type echoComp struct {
	name string
	ctx  *Ctx
}

func (e *echoComp) CompName() string    { return e.name }
func (e *echoComp) CompVersion() string { return "1.0" }
func (e *echoComp) Init(ctx *Ctx) error { e.ctx = ctx; return nil }
func (e *echoComp) Handle(env Envelope) (Message, error) {
	return Message{Op: "echo", Data: append([]byte(e.name+":"), env.Msg.Data...)}, nil
}

// keeperComp stores a secret asset at Init and serves it only on channel-
// identified requests from "alice".
type keeperComp struct {
	secret []byte
}

func (k *keeperComp) CompName() string    { return "keeper" }
func (k *keeperComp) CompVersion() string { return "1.0" }
func (k *keeperComp) Init(ctx *Ctx) error {
	return ctx.StoreAsset("secret", k.secret)
}
func (k *keeperComp) Handle(env Envelope) (Message, error) {
	if env.From != "alice" {
		return Message{}, ErrRefused
	}
	return Message{Op: "ok", Data: k.secret}, nil
}

// evilComp is Subvertible: when compromised it tries every channel it has.
type evilComp struct {
	name string
	ctx  *Ctx
}

func (e *evilComp) CompName() string    { return e.name }
func (e *evilComp) CompVersion() string { return "1.0" }
func (e *evilComp) Init(ctx *Ctx) error { e.ctx = ctx; return nil }
func (e *evilComp) Handle(env Envelope) (Message, error) {
	return Message{Op: "benign"}, nil
}
func (e *evilComp) HandleCompromised(env Envelope) (Message, error) {
	for _, ch := range e.ctx.Channels() {
		_, _ = e.ctx.Call(ch, Message{Op: "steal"})
	}
	return Message{Op: "pwned"}, nil
}

// callerComp forwards any request on a configured channel.
type callerComp struct {
	name    string
	channel string
	ctx     *Ctx
}

func (c *callerComp) CompName() string    { return c.name }
func (c *callerComp) CompVersion() string { return "1.0" }
func (c *callerComp) Init(ctx *Ctx) error { c.ctx = ctx; return nil }
func (c *callerComp) Handle(env Envelope) (Message, error) {
	return c.ctx.Call(c.channel, env.Msg)
}

// transcript is a minimal Observer.
type transcript struct {
	data []byte
}

func (t *transcript) Observe(_ string, data []byte) {
	t.data = append(t.data, data...)
	t.data = append(t.data, 0)
}

func (t *transcript) saw(b []byte) bool { return bytes.Contains(t.data, b) }

func newTestSystem(t *testing.T) *System {
	t.Helper()
	return NewSystem(NewMonolith(0))
}

func TestLaunchGrantCall(t *testing.T) {
	sys := newTestSystem(t)
	a := &callerComp{name: "a", channel: "to-b"}
	b := &echoComp{name: "b"}
	if err := sys.Launch(a, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(b, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "to-b", From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	reply, err := sys.Deliver("a", Message{Op: "go", Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "b:hi" {
		t.Errorf("reply = %q", reply.Data)
	}
	st := sys.Stats()
	if st.Invocations != 2 {
		t.Errorf("invocations = %d, want 2 (deliver + call)", st.Invocations)
	}
	if st.VirtualNs != 2*sys.Properties().InvokeCostNs {
		t.Errorf("virtual ns = %d", st.VirtualNs)
	}
}

func TestUngrantedChannelBlocked(t *testing.T) {
	sys := newTestSystem(t)
	a := &callerComp{name: "a", channel: "nope"}
	b := &echoComp{name: "b"}
	for _, c := range []Component{a, b} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Deliver("a", Message{Op: "go"})
	if !errors.Is(err, ErrNoChannel) {
		t.Errorf("ungranted call: got %v, want ErrNoChannel", err)
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&echoComp{name: "x"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(&echoComp{name: "x"}, false, 1); !errors.Is(err, ErrDomainExists) {
		t.Errorf("duplicate launch: got %v", err)
	}
	if err := sys.Grant(ChannelSpec{Name: "c", From: "x", To: "ghost"}); !errors.Is(err, ErrNoDomain) {
		t.Errorf("grant to missing: got %v", err)
	}
	if err := sys.Grant(ChannelSpec{Name: "c", From: "ghost", To: "x"}); !errors.Is(err, ErrNoDomain) {
		t.Errorf("grant from missing: got %v", err)
	}
}

func TestBadgeEstablishesSenderIdentity(t *testing.T) {
	sys := newTestSystem(t)
	alice := &callerComp{name: "alice", channel: "k"}
	mallory := &callerComp{name: "mallory", channel: "k"}
	keeper := &keeperComp{secret: []byte("s3cr3t")}
	for _, c := range []Component{alice, mallory, keeper} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "k", From: "alice", To: "keeper", Badge: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "k", From: "mallory", To: "keeper", Badge: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	reply, err := sys.Deliver("alice", Message{Op: "get"})
	if err != nil {
		t.Fatalf("alice via badge channel: %v", err)
	}
	if string(reply.Data) != "s3cr3t" {
		t.Errorf("alice got %q", reply.Data)
	}
	// Mallory's channel identifies mallory; claiming to be alice in the
	// payload does not help.
	if _, err := sys.Deliver("mallory", Message{Op: "get", Data: []byte("i-am-alice")}); !errors.Is(err, ErrRefused) {
		t.Errorf("mallory: got %v, want ErrRefused", err)
	}
}

func TestAmbientChannelHasNoIdentity(t *testing.T) {
	sys := newTestSystem(t)
	alice := &callerComp{name: "alice", channel: "k"}
	keeper := &keeperComp{secret: []byte("x")}
	for _, c := range []Component{alice, keeper} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "k", From: "alice", To: "keeper"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	// Even the legitimate caller is anonymous on an ambient channel.
	if _, err := sys.Deliver("alice", Message{Op: "get"}); !errors.Is(err, ErrRefused) {
		t.Errorf("ambient call: got %v, want ErrRefused", err)
	}
}

func TestMonolithCompromiseLeaksEverything(t *testing.T) {
	sys := newTestSystem(t)
	obs := &transcript{}
	sys.SetObserver(obs)
	victim := &keeperComp{secret: []byte("THE-CROWN-JEWELS")}
	patsy := &evilComp{name: "patsy"}
	if err := sys.Launch(victim, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(patsy, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	if obs.saw([]byte("THE-CROWN-JEWELS")) {
		t.Fatal("secret visible before compromise")
	}
	// Compromising an unrelated component on the monolith exposes the
	// keeper's asset: no walls inside one process.
	if err := sys.Compromise("patsy"); err != nil {
		t.Fatal(err)
	}
	if !obs.saw([]byte("THE-CROWN-JEWELS")) {
		t.Error("monolith compromise did not leak colocated asset")
	}
	if !sys.IsCompromised("patsy") {
		t.Error("IsCompromised false after compromise")
	}
	if sys.IsCompromised("keeper") {
		t.Error("separate monolith domain marked compromised (only memory leaks, not control)")
	}
}

func TestColocationSharesFate(t *testing.T) {
	sys := newTestSystem(t)
	obs := &transcript{}
	sys.SetObserver(obs)
	k := &keeperComp{secret: []byte("COLOC-SECRET")}
	e := &evilComp{name: "renderer"}
	if err := sys.Colocate("app", false, 1, k, e); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Compromise("renderer"); err != nil {
		t.Fatal(err)
	}
	if !sys.IsCompromised("keeper") {
		t.Error("colocated component did not share compromise fate")
	}
	if !obs.saw([]byte("COLOC-SECRET")) {
		t.Error("colocated asset not leaked")
	}
	d1, _ := sys.DomainOf("keeper")
	d2, _ := sys.DomainOf("renderer")
	if d1 != "app" || d2 != "app" {
		t.Errorf("domains = %q, %q, want app", d1, d2)
	}
}

func TestCompromisedBehaviorAndTrafficObserved(t *testing.T) {
	sys := newTestSystem(t)
	obs := &transcript{}
	sys.SetObserver(obs)
	e := &evilComp{name: "bot"}
	b := &echoComp{name: "sink"}
	if err := sys.Launch(e, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(b, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "out", From: "bot", To: "sink"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	reply, err := sys.Deliver("bot", Message{Op: "ping"})
	if err != nil || reply.Op != "benign" {
		t.Fatalf("pre-compromise: %v %v", reply, err)
	}
	if err := sys.Compromise("bot"); err != nil {
		t.Fatal(err)
	}
	reply, err = sys.Deliver("bot", Message{Op: "ping", Data: []byte("visible-to-adversary")})
	if err != nil || reply.Op != "pwned" {
		t.Fatalf("post-compromise: %v %v", reply, err)
	}
	if !obs.saw([]byte("visible-to-adversary")) {
		t.Error("adversary did not observe message into compromised domain")
	}
	// The evil payload used its granted channel; sink's reply was observed.
	if !obs.saw([]byte("sink:")) {
		t.Error("adversary did not observe replies to its own calls")
	}
}

func TestAssetsRoundTripAndExhaustion(t *testing.T) {
	sys := newTestSystem(t)
	e := &echoComp{name: "c"}
	if err := sys.Launch(e, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, err := sys.CtxOf("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.StoreAsset("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.LoadAsset("k")
	if err != nil || string(got) != "v1" {
		t.Fatalf("load = %q, %v", got, err)
	}
	// Overwrite in place (same or smaller size reuses the slot).
	if err := ctx.StoreAsset("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = ctx.LoadAsset("k")
	if string(got) != "v2" {
		t.Errorf("after overwrite = %q", got)
	}
	if _, err := ctx.LoadAsset("missing"); err == nil {
		t.Error("load of missing asset succeeded")
	}
	// Exhaust the single page.
	if err := ctx.StoreAsset("big", make([]byte, 5000)); err == nil {
		t.Error("oversized asset stored in one-page domain")
	}
	names := sys.AssetNames("c")
	if len(names) != 1 || names[0] != "k" {
		t.Errorf("asset names = %v", names)
	}
}

func TestCtxIntrospection(t *testing.T) {
	sys := newTestSystem(t)
	a := &callerComp{name: "a", channel: "x"}
	b := &echoComp{name: "b"}
	if err := sys.Launch(a, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(b, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "x", From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx := a.ctx
	if ctx.Self() != "a" || ctx.DomainName() != "a" {
		t.Errorf("self/domain = %s/%s", ctx.Self(), ctx.DomainName())
	}
	if !ctx.HasChannel("x") || ctx.HasChannel("y") {
		t.Error("HasChannel wrong")
	}
	if chs := ctx.Channels(); len(chs) != 1 || chs[0] != "x" {
		t.Errorf("channels = %v", chs)
	}
	if ctx.Substrate().Substrate != "monolith" {
		t.Errorf("substrate = %q", ctx.Substrate().Substrate)
	}
	if _, err := ctx.Quote(nil); err == nil {
		t.Error("Quote on anchorless substrate succeeded")
	}
	if _, err := ctx.Seal(nil); err == nil {
		t.Error("Seal on anchorless substrate succeeded")
	}
	if _, err := ctx.Unseal(nil); err == nil {
		t.Error("Unseal on anchorless substrate succeeded")
	}
}

func TestQuoteSignVerify(t *testing.T) {
	vendor := cryptoutil.NewSigner("vendor")
	device := cryptoutil.NewSigner("device-1")
	cert := IssueVendorCert(vendor, device.Public())
	meas := cryptoutil.Hash([]byte("good-code"))
	nonce := []byte("fresh-nonce")
	q := SignQuote("tpm", meas, nonce, device, cert)

	if err := VerifyQuote(q, nonce, vendor.Public(), meas); err != nil {
		t.Errorf("valid quote rejected: %v", err)
	}
	var zero [32]byte
	if err := VerifyQuote(q, nonce, vendor.Public(), zero); err != nil {
		t.Errorf("measurement-agnostic verify failed: %v", err)
	}
	if err := VerifyQuote(q, []byte("stale"), vendor.Public(), meas); !errors.Is(err, ErrQuote) {
		t.Error("replayed nonce accepted")
	}
	if err := VerifyQuote(q, nonce, vendor.Public(), cryptoutil.Hash([]byte("other"))); !errors.Is(err, ErrQuote) {
		t.Error("wrong measurement accepted")
	}
	if err := VerifyQuote(q, nonce, cryptoutil.NewSigner("fake-vendor").Public(), meas); !errors.Is(err, ErrQuote) {
		t.Error("wrong vendor accepted")
	}
	// An imposter without the device key cannot forge.
	imposter := cryptoutil.NewSigner("imposter")
	forged := SignQuote("tpm", meas, nonce, imposter, IssueVendorCert(imposter, imposter.Public()))
	if err := VerifyQuote(forged, nonce, vendor.Public(), meas); !errors.Is(err, ErrQuote) {
		t.Error("forged quote accepted")
	}
	tampered := q
	tampered.Measurement = cryptoutil.Hash([]byte("evil-code"))
	if err := VerifyQuote(tampered, nonce, vendor.Public(), zero); !errors.Is(err, ErrQuote) {
		t.Error("tampered measurement accepted")
	}
}

func TestQuoteEncodeDecodeRoundTrip(t *testing.T) {
	vendor := cryptoutil.NewSigner("v")
	device := cryptoutil.NewSigner("d")
	q := SignQuote("sgx-qe", cryptoutil.Hash([]byte("c")), []byte("n"), device,
		IssueVendorCert(vendor, device.Public()))
	got, err := DecodeQuote(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(got, []byte("n"), vendor.Public(), q.Measurement); err != nil {
		t.Errorf("decoded quote invalid: %v", err)
	}
	if got.AnchorKind != "sgx-qe" {
		t.Errorf("kind = %q", got.AnchorKind)
	}
	if _, err := DecodeQuote([]byte{0}); err == nil {
		t.Error("truncated quote decoded")
	}
	if _, err := DecodeQuote([]byte{0, 5, 'a'}); err == nil {
		t.Error("short field decoded")
	}
}

func TestCodeOfDistinguishesVersions(t *testing.T) {
	a := CodeOf(&echoComp{name: "x"})
	b := CodeOf(&echoComp{name: "y"})
	if bytes.Equal(a, b) {
		t.Error("different components share code identity")
	}
}

func TestMonolithDomainBounds(t *testing.T) {
	m := NewMonolith(2 * 4096)
	d, err := m.CreateDomain(DomainSpec{Name: "d", Code: []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(4090, []byte("12345678")); err == nil {
		t.Error("out-of-domain write succeeded")
	}
	if _, err := d.Read(-1, 4); err == nil {
		t.Error("negative read succeeded")
	}
	if _, err := m.CreateDomain(DomainSpec{Name: "e", Code: nil, MemPages: 2}); err == nil {
		t.Error("arena over-allocation succeeded")
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []byte("x")); err == nil {
		t.Error("write to destroyed domain succeeded")
	}
}

func TestMessageCloneIndependence(t *testing.T) {
	m := Message{Op: "op", Data: []byte("abc")}
	c := m.Clone()
	c.Data[0] = 'X'
	if m.Data[0] == 'X' {
		t.Error("clone aliases original")
	}
}

// Property: quote encode/decode is the identity for arbitrary nonces.
func TestQuickQuoteRoundTrip(t *testing.T) {
	vendor := cryptoutil.NewSigner("qv")
	device := cryptoutil.NewSigner("qd")
	cert := IssueVendorCert(vendor, device.Public())
	f := func(nonce []byte, code []byte) bool {
		q := SignQuote("k", cryptoutil.Hash(code), nonce, device, cert)
		got, err := DecodeQuote(q.Encode())
		if err != nil {
			return false
		}
		return VerifyQuote(got, nonce, vendor.Public(), q.Measurement) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSystemIntrospectionHelpers(t *testing.T) {
	sub := NewMonolith(0)
	sys := NewSystem(sub)
	if sys.Substrate() != sub {
		t.Error("Substrate accessor wrong")
	}
	a := &echoComp{name: "a"}
	b := &echoComp{name: "b"}
	if err := sys.Launch(a, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(b, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "x", From: "a", To: "b", Badge: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	comps := sys.Components()
	if len(comps) != 2 || comps[0] != "a" || comps[1] != "b" {
		t.Errorf("components = %v", comps)
	}
	h, err := sys.HandleOf("a")
	if err != nil || h.DomainName() != "a" {
		t.Errorf("handle = %v, %v", h, err)
	}
	if h.Measurement() == ([32]byte{}) {
		t.Error("zero measurement from monolith handle")
	}
	if _, err := sys.HandleOf("ghost"); !errors.Is(err, ErrNoDomain) {
		t.Errorf("handle of missing: %v", err)
	}
	if _, err := sys.CtxOf("ghost"); !errors.Is(err, ErrNoDomain) {
		t.Errorf("ctx of missing: %v", err)
	}
	if _, err := sys.DomainOf("ghost"); !errors.Is(err, ErrNoDomain) {
		t.Errorf("domain of missing: %v", err)
	}
	if sys.AssetNames("ghost") != nil {
		t.Error("asset names of missing component")
	}
	// Channel usage before and after invocations; ResetStats.
	usage := sys.ChannelUsage()
	if len(usage) != 1 || usage[0].Uses != 0 || usage[0].Badge != 5 {
		t.Errorf("usage = %+v", usage)
	}
	ctx, _ := sys.CtxOf("a")
	if _, err := ctx.Call("x", Message{Op: "hi"}); err != nil {
		t.Fatal(err)
	}
	usage = sys.ChannelUsage()
	if usage[0].Uses != 1 {
		t.Errorf("uses = %d", usage[0].Uses)
	}
	if sys.Stats().Invocations == 0 {
		t.Error("stats not counted")
	}
	sys.ResetStats()
	if sys.Stats().Invocations != 0 {
		t.Error("ResetStats did not clear")
	}
	// Duplicate grant name from the same sender is refused.
	if err := sys.Grant(ChannelSpec{Name: "x", From: "a", To: "b"}); err == nil {
		t.Error("duplicate grant accepted")
	}
	// Colocate with zero components fails.
	if err := sys.Colocate("empty", false, 1); err == nil {
		t.Error("empty colocate accepted")
	}
}

func TestInitErrorPropagates(t *testing.T) {
	sys := NewSystem(NewMonolith(0))
	bad := &badInit{}
	if err := sys.Launch(bad, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err == nil {
		t.Error("init error swallowed")
	}
}

type badInit struct{}

func (*badInit) CompName() string    { return "bad" }
func (*badInit) CompVersion() string { return "1" }
func (*badInit) Init(*Ctx) error     { return ErrRefused }
func (*badInit) Handle(Envelope) (Message, error) {
	return Message{}, nil
}
