package core

import (
	"crypto/ed25519"
	"fmt"

	"lateral/internal/cryptoutil"
)

// Properties describes what one isolation substrate defends against and
// what it costs. It is the machine-readable form of the paper's Section II
// comparison: "different solutions address different attacker models".
type Properties struct {
	// Substrate is the substrate's name.
	Substrate string

	// SpatialIsolation: domains cannot read or write each other's memory.
	SpatialIsolation bool

	// TemporalIsolation: the substrate can schedule domains with fixed
	// time partitions, mitigating scheduling covert channels (§II-C).
	TemporalIsolation bool

	// PhysicalMemoryProtection: domain memory survives a DRAM bus tap
	// (memory encryption or physically separate/on-chip memory, §II-D).
	PhysicalMemoryProtection bool

	// SecureLaunch: an unchangeable trust anchor oversees what code is
	// started (§II-D "Secure Launch").
	SecureLaunch bool

	// Attestation: the substrate holds a restricted-access secret and can
	// prove code identity to remote parties (§II-D "Software Attestation").
	Attestation bool

	// MaxTrustedDomains caps protected domains (TrustZone: the secure
	// world is a single environment; SEP: one coprocessor). 0 = unlimited.
	MaxTrustedDomains int

	// ConcurrentTrusted: trusted domains can execute concurrently (SGX
	// enclaves yes; TPM late launch no — Flicker sessions serialize).
	ConcurrentTrusted bool

	// SecondaryIsolation: trusted domains share one protected environment
	// and rely on a substrate-provided OS for sub-isolation (TrustZone
	// secure world, §II-B).
	SecondaryIsolation bool

	// SideChannelLeaky marks substrates the paper calls out for cache
	// side channels and starvation issues (SGX, §II-C).
	SideChannelLeaky bool

	// InvokeCostNs is the modeled cost of one cross-domain invocation in
	// nanoseconds, at the order of magnitude published for the mechanism
	// (function call ≈ 2, microkernel IPC ≈ 1e3, SMC ≈ 4e3, enclave
	// transition ≈ 8e3, SEP mailbox ≈ 1e5, TPM late launch ≈ 1e8).
	InvokeCostNs int64

	// TCBUnits is the complexity the substrate adds to every hosted
	// component's trusted computing base, in abstract code-size units
	// (see internal/metrics for the scale).
	TCBUnits int
}

// DomainSpec describes a domain to be created on a substrate.
type DomainSpec struct {
	// Name is unique per system.
	Name string

	// Code is the binary image measured at launch; use CodeOf for
	// component-backed domains.
	Code []byte

	// Trusted requests placement in the substrate's protected environment
	// (secure world, enclave, PAL, SEP). Untrusted domains model legacy
	// codebases and live in ordinary memory.
	Trusted bool

	// MemPages is the domain memory size; 0 means one page.
	MemPages int
}

// DomainHandle is the unified handle every substrate returns for a loaded
// domain. It exposes exactly the operations core needs: memory access
// within the domain, the launch measurement, and the compromise view.
type DomainHandle interface {
	// DomainName returns the spec name.
	DomainName() string

	// Measurement returns the hash of the code image taken at launch.
	// Runtime subversion does not change it; relaunching different code does.
	Measurement() [32]byte

	// Trusted reports whether the domain lives in the protected environment.
	Trusted() bool

	// MemSize returns the domain memory size in bytes.
	MemSize() int

	// Write stores bytes at an offset inside the domain's memory.
	Write(off int, p []byte) error

	// Read loads bytes from an offset inside the domain's memory.
	Read(off, n int) ([]byte, error)

	// CompromiseView returns every byte range an attacker in full control
	// of this domain could read: its own memory plus anything the
	// substrate fails to isolate from it. This is where substrates differ
	// most — a no-isolation substrate returns the whole arena.
	CompromiseView() [][]byte

	// Destroy releases the domain's resources.
	Destroy() error
}

// Substrate is the unified isolation interface (Fig. 2's "isolation
// substrate"). Five hardware-technology simulators and one deliberate
// non-substrate (Monolith) implement it.
type Substrate interface {
	// Name returns the substrate name.
	Name() string

	// Properties returns the substrate's attacker-model coverage and costs.
	Properties() Properties

	// CreateDomain loads a domain. It enforces the substrate's structural
	// limits (e.g. returns ErrTooManyTrusted past MaxTrustedDomains).
	CreateDomain(spec DomainSpec) (DomainHandle, error)

	// Anchor returns the substrate's trust anchor, or nil if it has none
	// (then Attestation in Properties is false).
	Anchor() TrustAnchor
}

// Quote is attestation evidence: a signed statement by a trust anchor that
// a domain with the given measurement runs under it. The anchor's device
// key signs; the vendor's certificate over the device key lets remote
// verifiers build the trust chain without knowing individual devices.
type Quote struct {
	AnchorKind  string   // e.g. "tpm", "sgx-qe", "tz-rom", "sep"
	Measurement [32]byte // launch measurement of the quoted domain
	Nonce       []byte   // verifier freshness
	DevicePub   ed25519.PublicKey
	DeviceSig   []byte // device key signature over (kind, measurement, nonce)
	VendorCert  []byte // vendor signature over DevicePub
}

// quoteBody serializes the signed portion of a quote.
func quoteBody(kind string, meas [32]byte, nonce []byte) []byte {
	out := make([]byte, 0, len(kind)+len(meas)+len(nonce)+2)
	out = append(out, []byte(kind)...)
	out = append(out, 0)
	out = append(out, meas[:]...)
	out = append(out, 0)
	out = append(out, nonce...)
	return out
}

// SignQuote builds a quote signed by the device key, including the vendor
// certificate. Substrate trust anchors call this.
func SignQuote(kind string, meas [32]byte, nonce []byte, device *cryptoutil.Signer, vendorCert []byte) Quote {
	return Quote{
		AnchorKind:  kind,
		Measurement: meas,
		Nonce:       append([]byte(nil), nonce...),
		DevicePub:   device.Public(),
		DeviceSig:   device.Sign(quoteBody(kind, meas, nonce)),
		VendorCert:  append([]byte(nil), vendorCert...),
	}
}

// VerifyQuote checks a quote against the verifier's expectations: the
// vendor key certifies the device key, the device key signed the quote,
// the nonce is the verifier's, and the measurement matches wantMeasurement
// (skip the measurement check by passing the zero hash).
func VerifyQuote(q Quote, nonce []byte, vendorPub ed25519.PublicKey, wantMeasurement [32]byte) error {
	if !cryptoutil.Verify(vendorPub, q.DevicePub, q.VendorCert) {
		return fmt.Errorf("vendor certificate invalid: %w", ErrQuote)
	}
	if !cryptoutil.Verify(q.DevicePub, quoteBody(q.AnchorKind, q.Measurement, q.Nonce), q.DeviceSig) {
		return fmt.Errorf("device signature invalid: %w", ErrQuote)
	}
	if string(q.Nonce) != string(nonce) {
		return fmt.Errorf("nonce mismatch (replay?): %w", ErrQuote)
	}
	var zero [32]byte
	if wantMeasurement != zero && q.Measurement != wantMeasurement {
		return fmt.Errorf("measurement mismatch: got %x want %x: %w",
			q.Measurement[:4], wantMeasurement[:4], ErrQuote)
	}
	return nil
}

// Encode serializes the quote for transport over untrusted networks.
func (q Quote) Encode() []byte {
	var out []byte
	put := func(b []byte) {
		out = append(out, byte(len(b)>>8), byte(len(b)))
		out = append(out, b...)
	}
	put([]byte(q.AnchorKind))
	put(q.Measurement[:])
	put(q.Nonce)
	put(q.DevicePub)
	put(q.DeviceSig)
	put(q.VendorCert)
	return out
}

// DecodeQuote parses a quote serialized by Encode.
func DecodeQuote(b []byte) (Quote, error) {
	var q Quote
	next := func() ([]byte, error) {
		if len(b) < 2 {
			return nil, fmt.Errorf("decode quote: truncated length")
		}
		n := int(b[0])<<8 | int(b[1])
		b = b[2:]
		if len(b) < n {
			return nil, fmt.Errorf("decode quote: truncated field")
		}
		f := b[:n]
		b = b[n:]
		return f, nil
	}
	kind, err := next()
	if err != nil {
		return q, err
	}
	q.AnchorKind = string(kind)
	meas, err := next()
	if err != nil {
		return q, err
	}
	if len(meas) != 32 {
		return q, fmt.Errorf("decode quote: measurement must be 32 bytes, got %d", len(meas))
	}
	copy(q.Measurement[:], meas)
	if q.Nonce, err = next(); err != nil {
		return q, err
	}
	var pub []byte
	if pub, err = next(); err != nil {
		return q, err
	}
	q.DevicePub = ed25519.PublicKey(pub)
	if q.DeviceSig, err = next(); err != nil {
		return q, err
	}
	if q.VendorCert, err = next(); err != nil {
		return q, err
	}
	return q, nil
}

// TrustAnchor is the unified attestation interface (§II-D): quote a
// domain's code identity and seal data to it.
type TrustAnchor interface {
	// AnchorKind identifies the anchor type in quotes.
	AnchorKind() string

	// Quote attests the domain's launch measurement with verifier
	// freshness.
	Quote(d DomainHandle, nonce []byte) (Quote, error)

	// Seal encrypts data so only a domain with the same measurement can
	// recover it.
	Seal(d DomainHandle, plaintext []byte) ([]byte, error)

	// Unseal recovers sealed data if the domain's measurement matches.
	Unseal(d DomainHandle, sealed []byte) ([]byte, error)
}

// IssueVendorCert signs a device public key with the vendor key, modeling
// the manufacturer provisioning step (Intel signing quoting keys, the TPM
// manufacturer signing endorsement keys, the SoC vendor fusing device keys).
func IssueVendorCert(vendor *cryptoutil.Signer, devicePub ed25519.PublicKey) []byte {
	return vendor.Sign(devicePub)
}
