package core_test

import (
	"fmt"

	"lateral/internal/core"
)

// greeter is a minimal trusted component.
type greeter struct{ ctx *core.Ctx }

func (g *greeter) CompName() string         { return "greeter" }
func (g *greeter) CompVersion() string      { return "1.0" }
func (g *greeter) Init(ctx *core.Ctx) error { g.ctx = ctx; return nil }

func (g *greeter) Handle(env core.Envelope) (core.Message, error) {
	if env.Badge == 0 {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "greeting", Data: append([]byte("hello, "), env.Msg.Data...)}, nil
}

// caller invokes the greeter over its granted channel.
type caller struct{ ctx *core.Ctx }

func (c *caller) CompName() string         { return "caller" }
func (c *caller) CompVersion() string      { return "1.0" }
func (c *caller) Init(ctx *core.Ctx) error { c.ctx = ctx; return nil }

func (c *caller) Handle(env core.Envelope) (core.Message, error) {
	return c.ctx.Call("greet", env.Msg)
}

// Example shows the minimal lifecycle: create a system on a substrate,
// load two components, grant one channel, invoke.
func Example() {
	sys := core.NewSystem(core.NewMonolith(0))
	if err := sys.Launch(&greeter{}, true, 1); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Launch(&caller{}, false, 1); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Grant(core.ChannelSpec{Name: "greet", From: "caller", To: "greeter", Badge: 1}); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.InitAll(); err != nil {
		fmt.Println(err)
		return
	}
	reply, err := sys.Deliver("caller", core.Message{Op: "hi", Data: []byte("world")})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(reply.Data))
	// Output: hello, world
}
