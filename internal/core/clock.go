package core

import "time"

// Clock is the time source the invocation path consumes: budget checks read
// Now, and the watchdog arms its expiry through After. The default is the
// wall clock; simtest installs a seeded virtual clock so deadline behavior
// becomes deterministic and replayable. The interface is deliberately tiny —
// exactly the two operations the system performs — so any scheduler-free
// fake can satisfy it.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time

	// After returns a channel that receives once d has elapsed, plus a
	// stop function releasing the underlying timer early (time.Timer.Stop
	// semantics: it reports whether the timer was still pending).
	After(d time.Duration) (<-chan time.Time, func() bool)
}

// realClock is the production Clock: time.Now and time.NewTimer.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) After(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// SetClock installs an alternative time source (nil restores the wall
// clock). The clock is read lock-free on the invocation hot path, so it
// must be installed before the system serves traffic — in practice right
// after NewSystem, the way simtest harnesses do.
func (s *System) SetClock(c Clock) {
	if c == nil {
		c = realClock{}
	}
	s.clock = c
}

// now is the system's single point of time observation.
func (s *System) now() time.Time { return s.clock.Now() }
