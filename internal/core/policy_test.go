package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// rulebook is a minimal Policy for tests: confer maps a channel (or the
// @asset / @deliver pseudo-channels) to the labels touching it confers;
// deny maps a channel to the label whose presence forbids it ("" forbids
// unconditionally).
type rulebook struct {
	confer map[string][]string
	deny   map[string]string
}

func (r *rulebook) CheckInvoke(req PolicyRequest) ([]string, error) {
	if lbl, ok := r.deny[req.Channel]; ok && (lbl == "" || HasTaint(req.Taint, lbl)) {
		return nil, fmt.Errorf("rulebook: %s forbidden (taint %v): %w", req.Channel, req.Taint, ErrPolicy)
	}
	return r.confer[req.Channel], nil
}

// sinkRecorder collects journaled events.
type sinkRecorder struct {
	mu     sync.Mutex
	events []string
}

func (s *sinkRecorder) RecordEvent(kind, actor, detail string, trace, span uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, kind+":"+actor)
}

func (s *sinkRecorder) has(e string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, got := range s.events {
		if got == e {
			return true
		}
	}
	return false
}

// deputyComp models the confused deputy: on "exfil" it first reads the
// id store (acquiring taint) and then tries the network; on "send" it
// goes straight to the network; on "load-then-send" the taint comes from
// a domain-memory asset instead of a channel.
type deputyComp struct{ ctx *Ctx }

func (d *deputyComp) CompName() string    { return "deputy" }
func (d *deputyComp) CompVersion() string { return "1.0" }
func (d *deputyComp) Init(ctx *Ctx) error {
	d.ctx = ctx
	return ctx.StoreAsset("ids", []byte("meter-007"))
}
func (d *deputyComp) Handle(env Envelope) (Message, error) {
	switch env.Msg.Op {
	case "exfil":
		if _, err := d.ctx.Call("to-store", Message{Op: "ids"}); err != nil {
			return Message{}, err
		}
		return d.ctx.Call("to-net", Message{Op: "put"})
	case "send":
		return d.ctx.Call("to-net", Message{Op: "put"})
	case "load-then-send":
		if _, err := d.ctx.LoadAsset("ids"); err != nil {
			return Message{}, err
		}
		return d.ctx.Call("to-net", Message{Op: "put"})
	case "taint":
		return Message{Data: []byte(strings.Join(d.ctx.Taint(), ","))}, nil
	}
	return Message{}, nil
}

// taintEcho replies with the taint set its invocation arrived with.
type taintEcho struct{ name string }

func (e *taintEcho) CompName() string    { return e.name }
func (e *taintEcho) CompVersion() string { return "1.0" }
func (e *taintEcho) Init(*Ctx) error     { return nil }
func (e *taintEcho) Handle(env Envelope) (Message, error) {
	return Message{Data: []byte(strings.Join(env.Taint, ","))}, nil
}

func buildPolicySystem(t *testing.T) (*System, *deputyComp) {
	t.Helper()
	sys := newTestSystem(t)
	d := &deputyComp{}
	for _, c := range []Component{d, &taintEcho{name: "store"}, &taintEcho{name: "net"}} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, spec := range []ChannelSpec{
		{Name: "to-store", From: "deputy", To: "store"},
		{Name: "to-net", From: "deputy", To: "net"},
	} {
		if err := sys.Grant(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestPolicyDeniesTaintedEgress(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	rec := &sinkRecorder{}
	sys.SetEventRecorder(rec)
	sys.SetPolicy(&rulebook{
		confer: map[string][]string{"to-store": {"meter-identities"}},
		deny:   map[string]string{"to-net": "meter-identities"},
	})

	// Untainted egress is unaffected.
	if _, err := sys.Deliver("deputy", Message{Op: "send"}); err != nil {
		t.Fatalf("untainted send: %v", err)
	}
	// Post-taint egress is refused before the net handler runs.
	if _, err := sys.Deliver("deputy", Message{Op: "exfil"}); !errors.Is(err, ErrPolicy) {
		t.Fatalf("exfil err = %v, want ErrPolicy", err)
	}
	if got := sys.Stats().PolicyDenies; got != 1 {
		t.Errorf("PolicyDenies = %d, want 1", got)
	}
	if !rec.has("policy-deny:deputy") {
		t.Errorf("deny not journaled: %v", rec.events)
	}
	// The taint died with its chain: a fresh delivery is untainted again.
	if _, err := sys.Deliver("deputy", Message{Op: "send"}); err != nil {
		t.Fatalf("post-deny untainted send: %v", err)
	}
}

func TestPolicyAssetLoadTaints(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	sys.SetPolicy(&rulebook{
		confer: map[string][]string{PolicyAsset: {"meter-identities"}},
		deny:   map[string]string{"to-net": "meter-identities"},
	})
	if _, err := sys.Deliver("deputy", Message{Op: "load-then-send"}); !errors.Is(err, ErrPolicy) {
		t.Fatalf("load-then-send err = %v, want ErrPolicy", err)
	}
	if _, err := sys.Deliver("deputy", Message{Op: "send"}); err != nil {
		t.Fatalf("untainted send: %v", err)
	}
}

func TestPolicyAssetLoadDenied(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	sys.SetPolicy(&rulebook{deny: map[string]string{PolicyAsset: ""}})
	if _, err := sys.Deliver("deputy", Message{Op: "load-then-send"}); !errors.Is(err, ErrPolicy) {
		t.Fatalf("asset load err = %v, want ErrPolicy", err)
	}
}

func TestPolicyDeliverBoundary(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	sys.SetPolicy(&rulebook{deny: map[string]string{PolicyDeliver: "meter-identities"}})

	// A wire-imported tainted chain is refused at the boundary.
	_, err := sys.DeliverEnvelope("deputy", Envelope{
		Msg: Message{Op: "send"}, Taint: []string{"meter-identities"},
	})
	if !errors.Is(err, ErrPolicy) {
		t.Fatalf("tainted deliver err = %v, want ErrPolicy", err)
	}
	// An untainted delivery passes the same rule.
	if _, err := sys.DeliverEnvelope("deputy", Envelope{Msg: Message{Op: "send"}}); err != nil {
		t.Fatalf("untainted deliver: %v", err)
	}
}

func TestPolicyDeliverBoundaryConfersLabels(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	sys.SetPolicy(&rulebook{confer: map[string][]string{PolicyDeliver: {"ingress"}}})
	reply, err := sys.Deliver("deputy", Message{Op: "taint"})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "ingress" {
		t.Errorf("handler taint = %q, want %q", reply.Data, "ingress")
	}
}

// Taint propagates through envelopes even with no policy installed: the
// nil fast path forwards labels (a relay machine without an engine must
// not launder a chain), it just never checks or grows them.
func TestTaintPropagatesWithoutPolicy(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	reply, err := sys.DeliverEnvelope("deputy", Envelope{
		Msg: Message{Op: "taint"}, Taint: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "a,b" {
		t.Errorf("handler taint = %q, want %q", reply.Data, "a,b")
	}
}

// Outbound calls inherit the chain taint and the callee's handler sees it.
func TestTaintInheritedByOutboundCalls(t *testing.T) {
	sys, _ := buildPolicySystem(t)
	reply, err := sys.DeliverEnvelope("deputy", Envelope{
		Msg: Message{Op: "send"}, Taint: []string{"upstream"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "upstream" {
		t.Errorf("net saw taint %q, want %q", reply.Data, "upstream")
	}
}

func TestMergeTaint(t *testing.T) {
	base := []string{"a", "c"}
	got := MergeTaint(base, []string{"b", "a", "b"})
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("MergeTaint = %v", got)
	}
	if strings.Join(base, ",") != "a,c" {
		t.Errorf("base mutated: %v", base)
	}
	if out := MergeTaint(base, nil); &out[0] != &base[0] {
		t.Error("no-op merge should return base unchanged")
	}
	if HasTaint(got, "q") || !HasTaint(got, "b") {
		t.Error("HasTaint wrong")
	}
}
