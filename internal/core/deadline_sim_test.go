// Deadline and watchdog behavior on the simulated clock: these are the
// former wall-clock sleep tests converted onto simtest.Clock. They live in
// package core_test because simtest imports core; the external package
// breaks the cycle. No test here sleeps — virtual time moves only when the
// test advances it, so the suite is immune to scheduler jitter and runs in
// microseconds.
package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/simtest"
)

// simGate blocks in Handle until released and records the peak number of
// concurrent Handle calls — the serialization witness.
type simGate struct {
	name      string
	gate      chan struct{}
	entered   chan struct{}
	inside    atomic.Int32
	maxInside atomic.Int32
	handled   atomic.Int32
}

func (g *simGate) CompName() string     { return g.name }
func (g *simGate) CompVersion() string  { return "1.0" }
func (g *simGate) Init(*core.Ctx) error { return nil }
func (g *simGate) Handle(core.Envelope) (core.Message, error) {
	in := g.inside.Add(1)
	defer g.inside.Add(-1)
	for {
		max := g.maxInside.Load()
		if in <= max || g.maxInside.CompareAndSwap(max, in) {
			break
		}
	}
	if g.entered != nil {
		g.entered <- struct{}{}
	}
	<-g.gate
	g.handled.Add(1)
	return core.Message{Op: "ok"}, nil
}

// simLag gates in Handle, and once released makes a downstream call and
// reports the error it got — the residual-call witness, with the original
// time.Sleep replaced by an explicit gate the test releases after
// advancing virtual time past the budget.
type simLag struct {
	name       string
	downstream string
	gate       chan struct{}
	entered    chan struct{}
	ctx        *core.Ctx
	gotErr     chan error
}

func (l *simLag) CompName() string         { return l.name }
func (l *simLag) CompVersion() string      { return "1.0" }
func (l *simLag) Init(ctx *core.Ctx) error { l.ctx = ctx; return nil }
func (l *simLag) Handle(core.Envelope) (core.Message, error) {
	if l.entered != nil {
		l.entered <- struct{}{}
	}
	if l.gate != nil {
		<-l.gate
	}
	_, err := l.ctx.Call(l.downstream, core.Message{Op: "late"})
	l.gotErr <- err
	return core.Message{Op: "done"}, nil
}

func newSimSystem(t *testing.T) (*core.System, *simtest.Clock) {
	t.Helper()
	sys := core.NewSystem(core.NewMonolith(0))
	clk := simtest.NewClock(0)
	sys.SetClock(clk)
	return sys, clk
}

// TestWatchdogAbandonsHungHandlerSim: the watchdog abandons a wedged
// handler exactly when virtual time crosses the budget, the abandoned
// handler keeps its execution slot (later delivers queue behind it, never
// beside it), and the timeout is accounted.
func TestWatchdogAbandonsHungHandlerSim(t *testing.T) {
	sys, clk := newSimSystem(t)
	g := &simGate{name: "g", gate: make(chan struct{}), entered: make(chan struct{}, 8)}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	deadline := clk.Now().Add(20 * time.Millisecond)
	go func() {
		_, err := sys.DeliverDeadline("g", core.Message{Op: "hang"}, core.Span{}, deadline)
		first <- err
	}()
	<-g.entered       // handler is wedged inside its slot
	clk.WaitTimers(1) // watchdog armed its expiry
	clk.Advance(19 * time.Millisecond)
	select {
	case err := <-first:
		t.Fatalf("deliver returned %v before the budget expired", err)
	default:
	}
	clk.Advance(2 * time.Millisecond) // crosses the 20ms budget
	if err := <-first; !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("hung deliver: got %v, want ErrDeadline", err)
	}
	// The abandoned handler still occupies the slot: a fresh unbounded
	// Deliver must queue behind it, never run concurrently with it.
	second := make(chan error, 1)
	go func() {
		_, err := sys.Deliver("g", core.Message{Op: "next"})
		second <- err
	}()
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	select {
	case err := <-second:
		t.Fatalf("second deliver finished while abandoned handler held the slot: %v", err)
	default:
	}
	close(g.gate) // release the abandoned handler (and every later one)
	<-g.entered   // second handler runs only now
	if err := <-second; err != nil {
		t.Fatalf("deliver after release: %v", err)
	}
	if max := g.maxInside.Load(); max != 1 {
		t.Errorf("max concurrent Handle = %d, want 1", max)
	}
	if st := sys.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestAbandonedHandlerResidualCallsFailFastSim: outbound calls an
// abandoned handler makes after its budget expired are refused with
// ErrDeadline — the budget bounds the whole transitive call tree.
func TestAbandonedHandlerResidualCallsFailFastSim(t *testing.T) {
	sys, clk := newSimSystem(t)
	l := &simLag{
		name: "lag", downstream: "down",
		gate: make(chan struct{}), entered: make(chan struct{}, 1),
		gotErr: make(chan error, 1),
	}
	d := &simGate{name: "down", gate: make(chan struct{})}
	close(d.gate)
	for _, c := range []core.Component{l, d} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(core.ChannelSpec{Name: "down", From: "lag", To: "down"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	deadline := clk.Now().Add(10 * time.Millisecond)
	go func() {
		_, err := sys.DeliverDeadline("lag", core.Message{Op: "x"}, core.Span{}, deadline)
		res <- err
	}()
	<-l.entered
	clk.WaitTimers(1)
	clk.Advance(15 * time.Millisecond) // expire the budget while lag is gated
	if err := <-res; !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("deliver: got %v, want ErrDeadline", err)
	}
	close(l.gate) // the abandoned handler now tries its downstream call
	if residual := <-l.gotErr; !errors.Is(residual, core.ErrDeadline) {
		t.Errorf("residual downstream call: got %v, want ErrDeadline", residual)
	}
	if n := d.handled.Load(); n != 0 {
		t.Errorf("downstream handler ran %d times on an expired budget", n)
	}
}

// TestDeadlineClearedAfterCompletionSim: a deadline-bearing call that
// finishes in budget must not leave a stale deadline poisoning later
// unbounded work, even after virtual time passes the old deadline.
func TestDeadlineClearedAfterCompletionSim(t *testing.T) {
	sys, clk := newSimSystem(t)
	l := &simLag{name: "lag", downstream: "down", gotErr: make(chan error, 1)}
	d := &simGate{name: "down", gate: make(chan struct{})}
	close(d.gate)
	for _, c := range []core.Component{l, d} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(core.ChannelSpec{Name: "down", From: "lag", To: "down"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeliverDeadline("lag", core.Message{Op: "x"}, core.Span{}, clk.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	<-l.gotErr
	// Advance far past the old budget, then drive the component with no
	// deadline: its outbound call must not inherit the dead one.
	clk.Advance(2 * time.Second)
	ctx, err := sys.CtxOf("lag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call("down", core.Message{Op: "later"}); err != nil {
		t.Errorf("unbounded call after completed deadline call: %v", err)
	}
}

// TestCallCtxCancelSim: canceling the caller's context releases it with
// ErrCanceled while the handler is still executing; a pre-canceled context
// is refused before dispatch. (Converted off a real 10ms sleep: the
// handler signals entry instead.)
func TestCallCtxCancelSim(t *testing.T) {
	sys, _ := newSimSystem(t)
	g := &simGate{name: "g", gate: make(chan struct{}), entered: make(chan struct{}, 2)}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sys.DeliverCtx(ctx, "g", core.Message{Op: "hang"})
		done <- err
	}()
	<-g.entered // handler is definitely executing
	cancel()
	if err := <-done; !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled deliver: got %v, want ErrCanceled", err)
	}
	close(g.gate)
	if st := sys.Stats(); st.Cancels != 1 {
		t.Errorf("Cancels = %d, want 1", st.Cancels)
	}
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sys.DeliverCtx(pre, "g", core.Message{Op: "x"}); !errors.Is(err, core.ErrCanceled) {
		t.Errorf("pre-canceled deliver: got %v, want ErrCanceled", err)
	}
}

// TestWatchdogExpiryAtExactBoundary pins the boundary semantics: a budget
// is exhausted at its deadline instant, not one tick later.
func TestWatchdogExpiryAtExactBoundary(t *testing.T) {
	sys, clk := newSimSystem(t)
	g := &simGate{name: "g", gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(5 * time.Millisecond)
	res := make(chan error, 1)
	go func() {
		_, err := sys.DeliverDeadline("g", core.Message{Op: "hang"}, core.Span{}, deadline)
		res <- err
	}()
	<-g.entered
	clk.WaitTimers(1)
	clk.AdvanceTo(deadline) // exactly the deadline, not past it
	if err := <-res; !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("deliver at exact deadline: got %v, want ErrDeadline", err)
	}
	close(g.gate)
}
