package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateComp blocks in Handle until its gate is released (closed or sent to),
// and tracks how many goroutines are inside Handle at once — the witness
// that the watchdog and the admission queue never break per-component
// serialization.
type gateComp struct {
	name      string
	gate      chan struct{}
	inside    atomic.Int32
	maxInside atomic.Int32
	handled   atomic.Int32
}

func (g *gateComp) CompName() string    { return g.name }
func (g *gateComp) CompVersion() string { return "1.0" }
func (g *gateComp) Init(*Ctx) error     { return nil }
func (g *gateComp) Handle(env Envelope) (Message, error) {
	in := g.inside.Add(1)
	defer g.inside.Add(-1)
	for {
		max := g.maxInside.Load()
		if in <= max || g.maxInside.CompareAndSwap(max, in) {
			break
		}
	}
	<-g.gate
	g.handled.Add(1)
	return Message{Op: "ok"}, nil
}

// lagComp sleeps past its budget, then makes a downstream call and records
// the error it got — the witness that an abandoned handler's residual
// outbound calls inherit the expired deadline and fail fast.
type lagComp struct {
	name       string
	lag        time.Duration
	downstream string
	ctx        *Ctx
	gotErr     chan error
}

func (l *lagComp) CompName() string    { return l.name }
func (l *lagComp) CompVersion() string { return "1.0" }
func (l *lagComp) Init(ctx *Ctx) error { l.ctx = ctx; return nil }
func (l *lagComp) Handle(env Envelope) (Message, error) {
	time.Sleep(l.lag)
	_, err := l.ctx.Call(l.downstream, Message{Op: "late"})
	l.gotErr <- err
	return Message{Op: "done"}, nil
}

// TestChannelsSorted is the regression test for the map-ordered Channels
// bug: grants made in scrambled order must come back sorted.
func TestChannelsSorted(t *testing.T) {
	sys := newTestSystem(t)
	a := &echoComp{name: "a"}
	if err := sys.Launch(a, false, 1); err != nil {
		t.Fatal(err)
	}
	names := []string{"zeta", "alpha", "mid", "beta", "omega", "gamma"}
	for _, name := range names {
		b := &echoComp{name: "to-" + name}
		if err := sys.Launch(b, false, 1); err != nil {
			t.Fatal(err)
		}
		if err := sys.Grant(ChannelSpec{Name: name, From: "a", To: "to-" + name}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "gamma", "mid", "omega", "zeta"}
	for i := 0; i < 20; i++ {
		got := a.ctx.Channels()
		if len(got) != len(want) {
			t.Fatalf("channels = %v", got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d: channels = %v, want %v", i, got, want)
			}
		}
	}
}

// TestExpiredCallRefusedBeforeDispatch: a call whose budget is already
// spent never reaches the handler.
func TestExpiredCallRefusedBeforeDispatch(t *testing.T) {
	sys := newTestSystem(t)
	g := &gateComp{name: "g", gate: make(chan struct{})}
	close(g.gate) // never block; it must not even get here
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	_, err := sys.DeliverDeadline("g", Message{Op: "x"}, Span{}, time.Now().Add(-time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired deliver: got %v, want ErrDeadline", err)
	}
	if n := g.handled.Load(); n != 0 {
		t.Errorf("handler ran %d times on an expired call", n)
	}
	if st := sys.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestWatchdogAbandonsHungHandler: a handler that outlives its budget is
// abandoned — the caller gets ErrDeadline promptly, the handler keeps the
// execution slot until it really finishes, and serialization holds.
func TestWatchdogAbandonsHungHandler(t *testing.T) {
	sys := newTestSystem(t)
	g := &gateComp{name: "g", gate: make(chan struct{})}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := sys.DeliverDeadline("g", Message{Op: "hang"}, Span{}, time.Now().Add(20*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("hung deliver: got %v, want ErrDeadline", err)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Errorf("caller blocked %v past a 20ms budget", wait)
	}
	// The abandoned handler still occupies the slot: a fresh unbounded
	// Deliver must wait for it, never run concurrently with it.
	done := make(chan error, 1)
	go func() {
		_, err := sys.Deliver("g", Message{Op: "next"})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second deliver finished while abandoned handler held the slot: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(g.gate) // release the abandoned handler (and every later one)
	if err := <-done; err != nil {
		t.Fatalf("deliver after release: %v", err)
	}
	if max := g.maxInside.Load(); max != 1 {
		t.Errorf("max concurrent Handle = %d, want 1", max)
	}
	if st := sys.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestAbandonedHandlerResidualCallsFailFast: outbound calls an abandoned
// handler makes after its budget expired are refused with ErrDeadline —
// the budget bounds the whole transitive call tree, not just the first hop.
func TestAbandonedHandlerResidualCallsFailFast(t *testing.T) {
	sys := newTestSystem(t)
	l := &lagComp{name: "lag", lag: 60 * time.Millisecond, downstream: "down", gotErr: make(chan error, 1)}
	d := &gateComp{name: "down", gate: make(chan struct{})}
	close(d.gate)
	for _, c := range []Component{l, d} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "down", From: "lag", To: "down"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	_, err := sys.DeliverDeadline("lag", Message{Op: "x"}, Span{}, time.Now().Add(10*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deliver: got %v, want ErrDeadline", err)
	}
	select {
	case residual := <-l.gotErr:
		if !errors.Is(residual, ErrDeadline) {
			t.Errorf("residual downstream call: got %v, want ErrDeadline", residual)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned handler never finished")
	}
	if n := d.handled.Load(); n != 0 {
		t.Errorf("downstream handler ran %d times on an expired budget", n)
	}
}

// TestDeadlineClearedAfterCompletion: a deadline-bearing call that finishes
// in budget must not leave a stale deadline poisoning later unbounded work
// on the same component.
func TestDeadlineClearedAfterCompletion(t *testing.T) {
	sys := newTestSystem(t)
	l := &lagComp{name: "lag", lag: 0, downstream: "down", gotErr: make(chan error, 1)}
	d := &gateComp{name: "down", gate: make(chan struct{})}
	close(d.gate)
	for _, c := range []Component{l, d} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "down", From: "lag", To: "down"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeliverDeadline("lag", Message{Op: "x"}, Span{}, time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	<-l.gotErr
	// Wait out the old budget, then drive the component directly with no
	// deadline: its outbound call must not inherit the dead one.
	time.Sleep(5 * time.Millisecond)
	ctx, err := sys.CtxOf("lag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call("down", Message{Op: "later"}); err != nil {
		t.Errorf("unbounded call after completed deadline call: %v", err)
	}
}

// TestCallCtxCancel: canceling the caller's context releases it with
// ErrCanceled while the handler is still executing.
func TestCallCtxCancel(t *testing.T) {
	sys := newTestSystem(t)
	g := &gateComp{name: "g", gate: make(chan struct{})}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sys.DeliverCtx(ctx, "g", Message{Op: "hang"})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("canceled deliver: got %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not release the caller")
	}
	close(g.gate)
	if st := sys.Stats(); st.Cancels != 1 {
		t.Errorf("Cancels = %d, want 1", st.Cancels)
	}
	// A pre-canceled context is refused before dispatch.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sys.DeliverCtx(pre, "g", Message{Op: "x"}); !errors.Is(err, ErrCanceled) {
		t.Errorf("pre-canceled deliver: got %v, want ErrCanceled", err)
	}
}

// TestCallCtxDeadlineTightensInherited: a ctx deadline on CallCtx bounds
// the callee even when the calling handler has no budget of its own.
func TestCallCtxDeadlineTightensInherited(t *testing.T) {
	sys := newTestSystem(t)
	a := &echoComp{name: "a"}
	g := &gateComp{name: "g", gate: make(chan struct{})}
	for _, c := range []Component{a, g} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "to-g", From: "a", To: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := a.ctx.CallCtx(ctx, "to-g", Message{Op: "hang"})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("CallCtx past deadline: got %v, want ErrDeadline", err)
	}
	close(g.gate)
}

// TestFanInBoundedAdmission is the -race fan-in test: N goroutines Call
// into one gated component through a small admission queue. Excess callers
// must be shed with ErrOverloaded (and accounted), admitted ones must be
// strictly serialized, and the test must not deadlock.
func TestFanInBoundedAdmission(t *testing.T) {
	const (
		callers = 32
		limit   = 4
	)
	sys := newTestSystem(t)
	sys.SetAdmissionLimit(limit)
	a := &echoComp{name: "a"}
	g := &gateComp{name: "g", gate: make(chan struct{})}
	for _, c := range []Component{a, g} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "to-g", From: "a", To: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}

	var ok, shed, other atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.ctx.Call("to-g", Message{Op: "fan"})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// Wait until every caller beyond the admission bound has been shed,
	// then open the gate so the admitted ones drain.
	deadline := time.Now().Add(10 * time.Second)
	for shed.Load() < callers-limit {
		if time.Now().After(deadline) {
			t.Fatalf("sheds stalled at %d (want >= %d)", shed.Load(), callers-limit)
		}
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()

	if n := other.Load(); n != 0 {
		t.Fatalf("%d callers got unexpected errors", n)
	}
	if ok.Load()+shed.Load() != callers {
		t.Fatalf("ok %d + shed %d != %d", ok.Load(), shed.Load(), callers)
	}
	if ok.Load() < 1 || ok.Load() > limit {
		t.Errorf("admitted %d callers, want 1..%d", ok.Load(), limit)
	}
	if max := g.maxInside.Load(); max != 1 {
		t.Errorf("max concurrent Handle = %d, want 1 (serialization broken)", max)
	}
	if st := sys.Stats(); st.Overloads != int64(shed.Load()) {
		t.Errorf("Stats.Overloads = %d, shed = %d", st.Overloads, shed.Load())
	}
	// The queue drains: with the gate open, fresh calls are admitted again.
	if _, err := a.ctx.Call("to-g", Message{Op: "after"}); err != nil {
		t.Errorf("call after drain: %v", err)
	}
}

// TestAdmissionLimitZeroUnbounded: SetAdmissionLimit(0) restores the
// queue-forever behavior (no shedding).
func TestAdmissionLimitZeroUnbounded(t *testing.T) {
	sys := newTestSystem(t)
	sys.SetAdmissionLimit(0)
	g := &gateComp{name: "g", gate: make(chan struct{})}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	var fails atomic.Int32
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Deliver("g", Message{Op: "x"}); err != nil {
				fails.Add(1)
			}
		}()
	}
	for g.inside.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Errorf("%d callers shed with the bound disabled", n)
	}
	if st := sys.Stats(); st.Overloads != 0 {
		t.Errorf("Overloads = %d with the bound disabled", st.Overloads)
	}
}
