package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateComp blocks in Handle until its gate is released (closed or sent to),
// and tracks how many goroutines are inside Handle at once — the witness
// that the watchdog and the admission queue never break per-component
// serialization.
type gateComp struct {
	name      string
	gate      chan struct{}
	inside    atomic.Int32
	maxInside atomic.Int32
	handled   atomic.Int32
}

func (g *gateComp) CompName() string    { return g.name }
func (g *gateComp) CompVersion() string { return "1.0" }
func (g *gateComp) Init(*Ctx) error     { return nil }
func (g *gateComp) Handle(env Envelope) (Message, error) {
	in := g.inside.Add(1)
	defer g.inside.Add(-1)
	for {
		max := g.maxInside.Load()
		if in <= max || g.maxInside.CompareAndSwap(max, in) {
			break
		}
	}
	<-g.gate
	g.handled.Add(1)
	return Message{Op: "ok"}, nil
}

// TestCallCtxDeadlineTightensInherited: a ctx deadline on CallCtx bounds
// the callee even when the calling handler has no budget of its own.
func TestCallCtxDeadlineTightensInherited(t *testing.T) {
	sys := newTestSystem(t)
	a := &echoComp{name: "a"}
	g := &gateComp{name: "g", gate: make(chan struct{})}
	for _, c := range []Component{a, g} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "to-g", From: "a", To: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := a.ctx.CallCtx(ctx, "to-g", Message{Op: "hang"})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("CallCtx past deadline: got %v, want ErrDeadline", err)
	}
	close(g.gate)
}

// TestFanInBoundedAdmission is the -race fan-in test: N goroutines Call
// into one gated component through a small admission queue. Excess callers
// must be shed with ErrOverloaded (and accounted), admitted ones must be
// strictly serialized, and the test must not deadlock.
func TestFanInBoundedAdmission(t *testing.T) {
	const (
		callers = 32
		limit   = 4
	)
	sys := newTestSystem(t)
	sys.SetAdmissionLimit(limit)
	a := &echoComp{name: "a"}
	g := &gateComp{name: "g", gate: make(chan struct{})}
	for _, c := range []Component{a, g} {
		if err := sys.Launch(c, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Grant(ChannelSpec{Name: "to-g", From: "a", To: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}

	var ok, shed, other atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.ctx.Call("to-g", Message{Op: "fan"})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// Wait until every caller beyond the admission bound has been shed,
	// then open the gate so the admitted ones drain.
	deadline := time.Now().Add(10 * time.Second)
	for shed.Load() < callers-limit {
		if time.Now().After(deadline) {
			t.Fatalf("sheds stalled at %d (want >= %d)", shed.Load(), callers-limit)
		}
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()

	if n := other.Load(); n != 0 {
		t.Fatalf("%d callers got unexpected errors", n)
	}
	if ok.Load()+shed.Load() != callers {
		t.Fatalf("ok %d + shed %d != %d", ok.Load(), shed.Load(), callers)
	}
	if ok.Load() < 1 || ok.Load() > limit {
		t.Errorf("admitted %d callers, want 1..%d", ok.Load(), limit)
	}
	if max := g.maxInside.Load(); max != 1 {
		t.Errorf("max concurrent Handle = %d, want 1 (serialization broken)", max)
	}
	if st := sys.Stats(); st.Overloads != int64(shed.Load()) {
		t.Errorf("Stats.Overloads = %d, shed = %d", st.Overloads, shed.Load())
	}
	// The queue drains: with the gate open, fresh calls are admitted again.
	if _, err := a.ctx.Call("to-g", Message{Op: "after"}); err != nil {
		t.Errorf("call after drain: %v", err)
	}
}

// TestAdmissionLimitZeroUnbounded: SetAdmissionLimit(0) restores the
// queue-forever behavior (no shedding).
func TestAdmissionLimitZeroUnbounded(t *testing.T) {
	sys := newTestSystem(t)
	sys.SetAdmissionLimit(0)
	g := &gateComp{name: "g", gate: make(chan struct{})}
	if err := sys.Launch(g, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	var fails atomic.Int32
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Deliver("g", Message{Op: "x"}); err != nil {
				fails.Add(1)
			}
		}()
	}
	for g.inside.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(g.gate)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Errorf("%d callers shed with the bound disabled", n)
	}
	if st := sys.Stats(); st.Overloads != 0 {
		t.Errorf("Overloads = %d with the bound disabled", st.Overloads)
	}
}
