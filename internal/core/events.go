package core

// EventRecorder is the structural hook into the fleet's black box
// (internal/journal): the system reports trust- and ops-relevant events
// — here, budget sheds on the invocation path — as structured entries
// carrying the causing request's trace/span IDs. Declared here rather
// than imported so core stays dependency-free and *journal.Journal (or
// any test double) satisfies it structurally, the same discipline as
// Tracer and the cluster/netsim Monitor interfaces.
//
// Implementations must be safe for concurrent use and must not call back
// into the System. A nil recorder is the fast path: events are only
// emitted from error branches, so the steady invocation path never
// touches it.
type EventRecorder interface {
	// RecordEvent appends one event. kind is a stable lowercase verb
	// ("deadline", "cancel", "overload"); actor names the component or
	// replica the event is about; detail carries free-form context such
	// as the error text; trace/span tie the event to the causing request
	// (0 when it happened outside a traced request).
	RecordEvent(kind, actor, detail string, trace, span uint64)
}

// SetEventRecorder installs (or, with nil, removes) the journal hook.
// Like SetTracer, the uninstrumented path is the fast path: with a nil
// recorder no event is built and no extra lock is taken.
func (s *System) SetEventRecorder(r EventRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = r
}
