package core

import (
	"errors"
	"sort"
)

// This file is the chain-aware policy layer of the invocation path: every
// invocation chain carries a taint set — labels acquired from the channels
// and assets it has touched — and an installed Policy decides, before any
// handler runs, whether the chain may take its next step. The contract
// (see DESIGN.md "Chain-aware policy enforcement"):
//
//   - Taint rides the chain, not the component: Envelope.Taint propagates
//     into the handler (node.taint, guarded by the execution slot exactly
//     like the inherited deadline and span), every outbound call inherits
//     it, and the distributed layer carries it across machines as a wire
//     field. Labels only accumulate; nothing the chain does sheds them.
//   - Enforcement is the system's job, never the component's: the check
//     runs on the invocation path (call, deliver, asset access) before the
//     target executes, and a denied invocation is journaled through the
//     EventRecorder with the causing request's trace/span IDs.
//   - A nil Policy is the fast path: no labels are computed, no interface
//     call is made, and the steady invocation path is byte-for-byte the
//     pre-policy one (BenchmarkPolicyOverhead pins this), the same
//     discipline as Tracer, the deadline watchdog, and the journal hook.

// ErrPolicy is returned when an installed Policy refuses an invocation:
// the chain's accumulated taint, combined with the channel or asset it
// tried to touch next, matched a deny rule (or an approval was required
// and not granted). The refusal happens before the target handler runs,
// and the distributed layer rehydrates it across the wire so errors.Is
// works for remote denies too. A policy deny is a verdict about the
// request, not about the target's health — the cluster layer returns it
// as-is instead of failing over.
var ErrPolicy = errors.New("core: policy refused invocation")

// Pseudo-channel names policy checks use for crossings that have no
// granted channel: external delivery (the distributed deliver boundary)
// and domain-memory asset access. Rules may target them like any channel.
const (
	// PolicyDeliver is the channel name of an external Deliver into the
	// system — the boundary where wire-imported taint is judged.
	PolicyDeliver = "@deliver"

	// PolicyAsset is the channel name of a domain-memory asset access;
	// the asset name travels as the request's Op.
	PolicyAsset = "@asset"
)

// PolicyRequest describes one invocation about to happen: who is calling,
// what they are invoking, and every label the chain has accumulated so
// far. Taint is sorted and must be treated as read-only.
type PolicyRequest struct {
	// Taint is the chain's accumulated label set at the moment of the
	// check — labels conferred by channels and assets touched earlier in
	// the chain, on this machine or upstream of the wire.
	Taint []string

	// From is the invoking component ("" at an external deliver boundary
	// or on an ambient channel).
	From string

	// Channel is the granted channel name being invoked, or PolicyDeliver
	// / PolicyAsset for crossings without one.
	Channel string

	// To is the target component.
	To string

	// Op is the message operation (the asset name for PolicyAsset).
	Op string
}

// Policy is the enforcement hook on the invocation path, declared here
// (not imported) so internal/policy's engine — or any test double —
// satisfies it structurally, the same pattern as Tracer, EventRecorder,
// and the cluster/netsim Monitor interfaces.
//
// Implementations must be safe for concurrent use, deterministic for a
// given request (simulation replays depend on it), and must not call back
// into the System.
type Policy interface {
	// CheckInvoke evaluates one invocation. A nil error allows it;
	// acquire lists the labels the chain gains by touching this channel
	// or asset (merged into the chain's taint by the system). A non-nil
	// error — which must wrap ErrPolicy — refuses the invocation before
	// the target runs.
	CheckInvoke(req PolicyRequest) (acquire []string, err error)
}

// SetPolicy installs (or, with nil, removes) the policy hook. Like
// SetTracer and SetEventRecorder, the uninstalled state is the fast path:
// no taint is computed and no check is made. Install it before traffic.
func (s *System) SetPolicy(p Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
}

// Taint returns a copy of the calling handler's accumulated chain taint.
// Like the inherited deadline, it is only meaningful while the component
// is executing an invocation (Handle or a call made from it).
func (c *Ctx) Taint() []string {
	n := c.node
	if len(n.taint) == 0 {
		return nil
	}
	out := make([]string, len(n.taint))
	copy(out, n.taint)
	return out
}

// MergeTaint returns the sorted, deduplicated union of a chain's taint
// and newly acquired labels. The inputs are never mutated: envelopes on
// other goroutines may alias base.
func MergeTaint(base, add []string) []string {
	if len(add) == 0 {
		return base
	}
	out := make([]string, 0, len(base)+len(add))
	out = append(out, base...)
	for _, l := range add {
		if !HasTaint(out, l) {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// HasTaint reports whether the label set contains label. Sets are small
// (a handful of labels), so a linear scan beats anything clever.
func HasTaint(taint []string, label string) bool {
	for _, l := range taint {
		if l == label {
			return true
		}
	}
	return false
}

// notePolicyDeny accounts a policy refusal and journals it with the
// causing request's trace/span IDs. Same lock discipline as
// noteBudgetErr: stats under s.mu, the recorder invoked after release so
// it never runs under the system lock.
func (s *System) notePolicyDeny(err error, actor string, sp Span) {
	s.mu.Lock()
	s.stats.PolicyDenies++
	rec := s.events
	s.mu.Unlock()
	if rec != nil {
		rec.RecordEvent("policy-deny", actor, err.Error(), sp.Trace, sp.ID)
	}
}
