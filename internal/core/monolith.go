package core

import (
	"fmt"
	"sync"

	"lateral/internal/cryptoutil"
)

// Monolith is the deliberate NON-substrate: every "domain" lives in one
// shared address space with no isolation whatsoever. It models the paper's
// vertical application design — "monolithic blobs of vertically stacked
// frameworks ... in one running process" — and serves as the baseline the
// horizontal design is compared against in experiment E1.
//
// Monolith implements Substrate so the same components and the same
// experiment code run on it unmodified; only the isolation outcome differs.
type Monolith struct {
	mu      sync.Mutex
	arena   []byte
	nextOff int
	domains []*monoDomain
}

var _ Substrate = (*Monolith)(nil)

// NewMonolith creates a shared arena of the given size (default 1 MiB).
func NewMonolith(arenaSize int) *Monolith {
	if arenaSize <= 0 {
		arenaSize = 1 << 20
	}
	return &Monolith{arena: make([]byte, arenaSize)}
}

// Name returns "monolith".
func (m *Monolith) Name() string { return "monolith" }

// Properties reports no protection at all: one process, direct calls.
func (m *Monolith) Properties() Properties {
	return Properties{
		Substrate:         "monolith",
		ConcurrentTrusted: true,
		InvokeCostNs:      2, // a plain function call
		// A monolithic process trusts the entire commodity OS beneath it
		// (§III-D: "code bases comprise in the order of tens of thousands
		// of lines of code" for single services; a full OS is ~20 MLoC).
		// Units are kLoC-scale, so 20000 ≈ a commodity OS kernel+stack.
		TCBUnits: 20000,
	}
}

// Anchor returns nil: a monolithic process has no trust anchor.
func (m *Monolith) Anchor() TrustAnchor { return nil }

// CreateDomain carves a slice out of the shared arena. "Trusted" placement
// is accepted and silently meaningless — there is nowhere safer to be.
func (m *Monolith) CreateDomain(spec DomainSpec) (DomainHandle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	size := pages * 4096
	if m.nextOff+size > len(m.arena) {
		return nil, fmt.Errorf("monolith: arena exhausted loading %s", spec.Name)
	}
	d := &monoDomain{
		m:    m,
		name: spec.Name,
		meas: cryptoutil.Hash(spec.Code),
		off:  m.nextOff,
		size: size,
	}
	m.nextOff += size
	m.domains = append(m.domains, d)
	return d, nil
}

type monoDomain struct {
	m     *Monolith
	name  string
	meas  [32]byte
	off   int
	size  int
	freed bool
}

var _ DomainHandle = (*monoDomain)(nil)

func (d *monoDomain) DomainName() string    { return d.name }
func (d *monoDomain) Measurement() [32]byte { return d.meas }
func (d *monoDomain) Trusted() bool         { return false }
func (d *monoDomain) MemSize() int          { return d.size }

func (d *monoDomain) Write(off int, p []byte) error {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	if d.freed || off < 0 || off+len(p) > d.size {
		return fmt.Errorf("monolith %s: write %d@%d out of range", d.name, len(p), off)
	}
	copy(d.m.arena[d.off+off:], p)
	return nil
}

func (d *monoDomain) Read(off, n int) ([]byte, error) {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	if d.freed || off < 0 || off+n > d.size {
		return nil, fmt.Errorf("monolith %s: read %d@%d out of range", d.name, n, off)
	}
	out := make([]byte, n)
	copy(out, d.m.arena[d.off+off:])
	return out, nil
}

// CompromiseView is the whole point of Monolith: a compromise anywhere in
// the process reads the ENTIRE arena — every other "domain" included.
func (d *monoDomain) CompromiseView() [][]byte {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	all := make([]byte, len(d.m.arena))
	copy(all, d.m.arena)
	return [][]byte{all}
}

func (d *monoDomain) Destroy() error {
	d.m.mu.Lock()
	defer d.m.mu.Unlock()
	d.freed = true
	return nil
}
