package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file implements the deadline / cancellation / backpressure layer of
// the invocation path. The contract (see DESIGN.md "Deadlines and
// backpressure"):
//
//   - A budget set at the edge (Ctx.CallCtx, DeliverDeadline, or the
//     distributed wire frame) bounds the WHOLE transitive call tree: every
//     outbound call a handler makes inherits the remaining budget via
//     Envelope.Deadline and node.deadline.
//   - Enforcement is the system's job, never the component's: expired
//     calls are refused before dispatch, and a handler that runs past its
//     budget is abandoned by a watchdog (the caller gets ErrDeadline; the
//     handler finishes on its own goroutine, still holding the
//     component's execution slot, so serialization is never violated).
//   - Backpressure is per component: the admission queue in invoke sheds
//     callers beyond System.admitLimit with ErrOverloaded instead of
//     queueing them forever behind a hung handler.

// effectiveDeadline merges the budget a handler inherited from its own
// invocation with the caller-supplied context: the ctx deadline may only
// tighten the inherited one. Caller holds s.mu (inherited is node.deadline).
func effectiveDeadline(inherited time.Time, ctx context.Context) time.Time {
	d := inherited
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

// budgetErr reports whether the call must be refused before dispatch:
// ErrCanceled when ctx is done, ErrDeadline when the budget is already
// spent, nil otherwise. ctx may be nil (the internal spelling of "no
// cancellation source" — see System.deliver). The deadline is judged
// against the system clock, so a simulated clock controls expiry.
func (s *System) budgetErr(ctx context.Context, deadline time.Time) error {
	if ctx != nil && ctx.Done() != nil {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return ErrDeadline
			}
			return ErrCanceled
		default:
		}
	}
	if !deadline.IsZero() && !s.now().Before(deadline) {
		return ErrDeadline
	}
	return nil
}

// noteBudgetErr accounts a budget failure in the system's cost counters
// and journals it against the component it hit and the span it happened
// under. Off the fast path: only refused, abandoned, canceled, or shed
// calls pay for the lock, and the journal emission happens after it is
// released so recorders never run under s.mu.
func (s *System) noteBudgetErr(err error, actor string, sp Span) {
	var kind string
	s.mu.Lock()
	switch {
	case errors.Is(err, ErrDeadline):
		s.stats.Timeouts++
		kind = "deadline"
	case errors.Is(err, ErrCanceled):
		s.stats.Cancels++
		kind = "cancel"
	case errors.Is(err, ErrOverloaded):
		s.stats.Overloads++
		kind = "overload"
	}
	rec := s.events
	s.mu.Unlock()
	if rec != nil && kind != "" {
		rec.RecordEvent(kind, actor, err.Error(), sp.Trace, sp.ID)
	}
}

// invokeGuarded runs the handler under the watchdog: the handler executes
// on its own goroutine (still serialized by the component's execution
// slot), while this goroutine waits for whichever comes first — the reply,
// the deadline, or the caller's cancellation. On expiry the caller is
// released with ErrDeadline and the handler is ABANDONED: it runs to
// completion, keeps the slot until then (admission accounting included),
// and its node.deadline stays expired so residual outbound calls it makes
// fail fast instead of fanning out further.
func (s *System) invokeGuarded(ctx context.Context, n *node, env Envelope, compromised bool, obs Observer) (Message, error) {
	type result struct {
		reply Message
		err   error
	}
	done := make(chan result, 1)
	go func() {
		defer n.admitted.Add(-1)
		n.handleMu.Lock()
		defer n.handleMu.Unlock()
		reply, err := s.run(n, &env, compromised, obs)
		if !env.Deadline.IsZero() {
			// The handler finished: clear its budget so later work on this
			// node (harness-driven calls between requests) does not run
			// against a stale deadline. Still under the slot, so no later
			// invocation can have installed its own budget yet.
			n.deadline = time.Time{}
		}
		done <- result{reply, err}
	}()
	var expire <-chan time.Time
	if !env.Deadline.IsZero() {
		c, stop := s.clock.After(env.Deadline.Sub(s.now()))
		defer stop()
		expire = c
	}
	var canceled <-chan struct{}
	if ctx != nil {
		canceled = ctx.Done()
	}
	select {
	case r := <-done:
		return r.reply, r.err
	case <-expire:
		err := fmt.Errorf("%s: handler abandoned past deadline: %w", n.comp.CompName(), ErrDeadline)
		s.noteBudgetErr(err, n.comp.CompName(), env.Span)
		return Message{}, err
	case <-canceled:
		base := ErrCanceled
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			base = ErrDeadline
		}
		err := fmt.Errorf("%s: caller gone while call in flight: %w", n.comp.CompName(), base)
		s.noteBudgetErr(err, n.comp.CompName(), env.Span)
		return Message{}, err
	}
}
