package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ChannelSpec declares one communication channel between components, as a
// manifest grants it. Channels are unidirectional request/reply paths: the
// From component may invoke the To component; replies flow back on the
// same invocation. Anything not granted is blocked by the substrate.
type ChannelSpec struct {
	// Name is how the sender addresses the channel (unique per sender).
	Name string

	// From and To are component names.
	From string
	To   string

	// Badge, when nonzero, makes this a capability-style channel: the
	// receiver sees the substrate-established sender identity and badge.
	// A zero badge models ambient authority: the receiver learns nothing
	// about who invoked it beyond what the payload claims.
	Badge uint64

	// Declassify marks data flowing here as deliberately released to a
	// less-trusted receiver; the manifest analyzer will not flag it.
	Declassify bool
}

type channel struct {
	spec ChannelSpec
	to   *node
	uses int64
}

// ChannelUse reports how often one granted channel was actually invoked —
// the raw material for POLA pruning (§IV: tooling to tighten manifests).
type ChannelUse struct {
	Name  string
	From  string
	To    string
	Badge uint64
	Uses  int64
}

type assetRef struct {
	off int
	n   int
}

// domainState tracks one substrate domain and the components living in it.
type domainState struct {
	handle      DomainHandle
	comps       []*node
	compromised bool
	allocOff    int
}

// node is one loaded component.
type node struct {
	comp       Component
	domainName string
	dom        *domainState
	out        map[string]*channel
	assets     map[string]assetRef

	// handleMu is the component's single execution slot, upholding the
	// Component contract ("Handle is never invoked concurrently for the
	// same component"). Like synchronous IPC on a real microkernel, a
	// CYCLE of calls (A→B→A) therefore deadlocks; manifests must keep the
	// call graph acyclic. Entry to the slot is bounded by the admission
	// queue below: callers beyond the limit are shed with ErrOverloaded
	// instead of convoying here forever.
	handleMu sync.Mutex

	// admitted counts callers currently waiting for or holding the
	// execution slot — the admission queue depth. Bounded by
	// System.admitLimit; see invoke.
	admitted atomic.Int32

	// deadline is the budget of the invocation the component is currently
	// executing, guarded by handleMu: run installs it while holding the
	// slot, and the only readers are the handler's own outbound calls,
	// made while it still holds the slot. Outbound calls inherit it, so a
	// budget set at the edge bounds the whole transitive call tree. A
	// handler abandoned by the watchdog keeps its (expired) deadline, so
	// its residual outbound calls fail fast instead of doing unbounded
	// downstream work.
	deadline time.Time

	// span is the handler span the component is currently executing,
	// guarded by handleMu like deadline. Outbound calls parent to it.
	span Span

	// taint is the accumulated chain taint of the invocation the component
	// is currently executing, guarded by handleMu like deadline and span.
	// run installs the envelope's taint; outbound calls inherit it and
	// grow it with labels the policy hook says the touched channel or
	// asset confers. Sorted; treated as immutable once installed (merges
	// allocate a new slice), so envelopes on other goroutines may alias it.
	taint []string
}

// Stats are the system's virtual cost counters, used by the experiment
// harness to compare substrates.
type Stats struct {
	// Invocations counts cross-domain calls (including external Deliver).
	Invocations int64

	// TrustedInvocations counts calls whose target domain is trusted.
	TrustedInvocations int64

	// VirtualNs is the accumulated modeled time: one InvokeCostNs per
	// invocation.
	VirtualNs int64

	// Timeouts counts calls whose budget was spent: refused pre-dispatch
	// because the deadline had already passed, or abandoned mid-handler by
	// the watchdog.
	Timeouts int64

	// Cancels counts calls released because the caller's context was
	// canceled.
	Cancels int64

	// Overloads counts calls shed by a full per-component admission queue.
	Overloads int64

	// PolicyDenies counts invocations refused by the installed Policy.
	PolicyDenies int64
}

// System loads components onto one substrate and runs the horizontal
// component model over it.
type System struct {
	mu       sync.Mutex
	sub      Substrate
	props    Properties
	nodes    map[string]*node
	domains  map[string]*domainState
	order    []*node // init order
	observer Observer
	stats    Stats

	// tracer is the telemetry hook (see trace.go); nil means the
	// uninstrumented fast path. spanSeq and traceSeq allocate IDs under
	// mu, starting from a per-system base so several systems can share
	// one tracer.
	tracer   Tracer
	spanSeq  uint64
	traceSeq uint64

	// events is the journal hook (see events.go); nil means budget sheds
	// go unjournaled. Only error branches read it, never the steady path.
	events EventRecorder

	// policy is the chain-aware enforcement hook (see policy.go); nil is
	// the fast path — no taint computed, no check made. Snapshotted under
	// mu in call/deliver alongside observer and tracer.
	policy Policy

	// sampleEvery enables head sampling: only one in every sampleEvery
	// externally delivered requests is traced (0 or 1 = trace all).
	// sampleCtr counts root delivers under mu.
	sampleEvery uint64
	sampleCtr   uint64

	// admitLimit bounds each component's admission queue (waiters plus the
	// executing handler); 0 disables the bound. Read lock-free on the
	// invocation hot path.
	admitLimit atomic.Int32

	// clock is the time source for budget checks, the watchdog, and span
	// timing. Defaults to the wall clock; SetClock swaps in a virtual one.
	// Read lock-free on the hot path, so it must be set before traffic.
	clock Clock
}

// DefaultAdmissionLimit is the per-component admission-queue bound a new
// System starts with. It is deliberately generous — normal workloads never
// come near it — while still guaranteeing that a hung handler convoys a
// bounded number of callers instead of every goroutine in the process.
const DefaultAdmissionLimit = 256

// NewSystem creates an empty system on the given substrate.
func NewSystem(sub Substrate) *System {
	base := spanBase()
	s := &System{
		sub:      sub,
		props:    sub.Properties(),
		nodes:    make(map[string]*node),
		domains:  make(map[string]*domainState),
		spanSeq:  base,
		traceSeq: base,
		clock:    realClock{},
	}
	s.admitLimit.Store(DefaultAdmissionLimit)
	return s
}

// SetAdmissionLimit bounds every component's admission queue to n callers
// (waiters plus the executing handler); callers beyond it are shed with
// ErrOverloaded. n <= 0 removes the bound entirely — the pre-backpressure
// queue-forever behavior, useful only in tests.
func (s *System) SetAdmissionLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.admitLimit.Store(int32(n))
}

// Substrate returns the substrate the system runs on.
func (s *System) Substrate() Substrate { return s.sub }

// Properties returns the substrate properties.
func (s *System) Properties() Properties { return s.props }

// SetObserver installs the adversary's observation sink. Passing nil
// removes it.
func (s *System) SetObserver(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = o
}

// Stats returns a snapshot of the cost counters.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the cost counters (used between benchmark phases).
func (s *System) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Launch loads a component into its own fresh domain (the horizontal
// design: one component, one protection domain).
func (s *System) Launch(c Component, trusted bool, memPages int) error {
	return s.Colocate(c.CompName(), trusted, memPages, c)
}

// Colocate loads several components into ONE shared domain — the vertical
// design of Fig. 1. The domain's code image is the concatenation of all
// component images (a single monolithic binary). A compromise of any
// colocated component compromises them all; that consequence is enforced
// by System, not assumed.
func (s *System) Colocate(domainName string, trusted bool, memPages int, comps ...Component) error {
	if len(comps) == 0 {
		return fmt.Errorf("colocate %s: no components", domainName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[domainName]; ok {
		return fmt.Errorf("colocate %s: %w", domainName, ErrDomainExists)
	}
	for _, c := range comps {
		if _, ok := s.nodes[c.CompName()]; ok {
			return fmt.Errorf("component %s: %w", c.CompName(), ErrDomainExists)
		}
	}
	code := DomainImage(comps...)
	if memPages <= 0 {
		memPages = 1
	}
	h, err := s.sub.CreateDomain(DomainSpec{
		Name:     domainName,
		Code:     code,
		Trusted:  trusted,
		MemPages: memPages,
	})
	if err != nil {
		return fmt.Errorf("create domain %s: %w", domainName, err)
	}
	dom := &domainState{handle: h}
	s.domains[domainName] = dom
	for _, c := range comps {
		n := &node{
			comp:       c,
			domainName: domainName,
			dom:        dom,
			out:        make(map[string]*channel),
			assets:     make(map[string]assetRef),
		}
		dom.comps = append(dom.comps, n)
		s.nodes[c.CompName()] = n
		s.order = append(s.order, n)
	}
	return nil
}

// Grant wires one channel. Both endpoints must already be loaded.
func (s *System) Grant(spec ChannelSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	from, ok := s.nodes[spec.From]
	if !ok {
		return fmt.Errorf("grant %s: from %s: %w", spec.Name, spec.From, ErrNoDomain)
	}
	to, ok := s.nodes[spec.To]
	if !ok {
		return fmt.Errorf("grant %s: to %s: %w", spec.Name, spec.To, ErrNoDomain)
	}
	if _, dup := from.out[spec.Name]; dup {
		return fmt.Errorf("grant %s from %s: channel name already granted", spec.Name, spec.From)
	}
	from.out[spec.Name] = &channel{spec: spec, to: to}
	return nil
}

// InitAll initializes every component in load order.
func (s *System) InitAll() error {
	s.mu.Lock()
	order := make([]*node, len(s.order))
	copy(order, s.order)
	s.mu.Unlock()
	for _, n := range order {
		if err := n.comp.Init(&Ctx{sys: s, node: n}); err != nil {
			return fmt.Errorf("init %s: %w", n.comp.CompName(), err)
		}
	}
	return nil
}

// Deliver injects an external stimulus (network input, user action) into a
// component, as if from the outside world. External input has no channel
// identity.
func (s *System) Deliver(target string, msg Message) (Message, error) {
	return s.deliver(nil, target, msg, Span{}, time.Time{})
}

// DeliverSpan injects an external stimulus while continuing a causal trace
// started elsewhere — the distributed exporter uses it to stitch the
// importing machine's trace onto the machine hosting the exported
// component. A zero parent starts a fresh trace (Deliver's behavior).
func (s *System) DeliverSpan(target string, msg Message, parent Span) (Message, error) {
	return s.deliver(nil, target, msg, parent, time.Time{})
}

// DeliverDeadline injects an external stimulus under a call budget: the
// call returns ErrDeadline once the deadline passes, whether it was still
// queued or mid-handler (the watchdog abandons the handler). The budget
// propagates to every transitive call the handler makes. A zero deadline
// means unbounded (DeliverSpan's behavior). The distributed exporter uses
// it to enforce the wire frame's remaining-budget field server-side.
func (s *System) DeliverDeadline(target string, msg Message, parent Span, deadline time.Time) (Message, error) {
	return s.deliver(nil, target, msg, parent, deadline)
}

// DeliverCtx injects an external stimulus bound to ctx: cancellation
// releases the caller with ErrCanceled, and a ctx deadline is enforced
// like DeliverDeadline's.
func (s *System) DeliverCtx(ctx context.Context, target string, msg Message) (Message, error) {
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	return s.deliver(ctx, target, msg, Span{}, deadline)
}

// DeliverShared is DeliverDeadline without the defensive message clone: the
// envelope borrows msg.Data for the duration of the call. The caller must
// keep the backing buffer untouched until the call returns, and the target
// component must not retain Data beyond its Handle invocation (replies that
// alias the request data are fine — the caller consumes the reply before
// reusing the buffer). The distributed exporter uses it so a decrypted
// request can be dispatched straight from a pooled record buffer.
func (s *System) DeliverShared(target string, msg Message, parent Span, deadline time.Time) (Message, error) {
	return s.deliverEnv(nil, target, msg, parent, deadline, nil)
}

// DeliverEnvelope injects an external stimulus described by a prebuilt
// envelope: span, deadline, and imported chain taint all travel together.
// Like DeliverShared it does not clone the payload — the borrow contract
// documented there applies. The distributed exporter uses it to deliver a
// decoded wire frame whose taint field continues a chain started on
// another machine; the installed Policy judges that taint at this deliver
// boundary before the target runs.
func (s *System) DeliverEnvelope(target string, env Envelope) (Message, error) {
	return s.deliverEnv(nil, target, env.Msg, env.Span, env.Deadline, env.Taint)
}

// deliver is the single entry point behind every Deliver variant. A nil
// ctx is the internal spelling of "no cancellation source": entry points
// without a context pass nil so the steady path never pays the
// context.Context interface calls (Done, Deadline) that even a Background
// context would cost on every hop.
func (s *System) deliver(ctx context.Context, target string, msg Message, parent Span, deadline time.Time) (Message, error) {
	return s.deliverEnv(ctx, target, Message{Op: msg.Op, Data: msg.CloneData()}, parent, deadline, nil)
}

// deliverEnv is deliver after the ownership decision: msg is placed in the
// envelope as-is. deliver clones; DeliverShared passes the caller's buffer
// through under the borrow contract documented there.
func (s *System) deliverEnv(ctx context.Context, target string, msg Message, parent Span, deadline time.Time, taint []string) (Message, error) {
	s.mu.Lock()
	n, ok := s.nodes[target]
	if !ok {
		s.mu.Unlock()
		return Message{}, fmt.Errorf("deliver to %s: %w", target, ErrNoDomain)
	}
	s.account(n)
	compromised := n.dom.compromised
	obs := s.observer
	tr := s.tracer
	pol := s.policy
	if tr != nil && parent == (Span{}) && s.sampleEvery > 1 {
		// Head sampling: decide once at the trace root. An unsampled
		// request runs the untraced fast path end to end; continuations
		// of a remote trace (non-zero parent) always honor the upstream
		// decision instead of rolling their own.
		s.sampleCtr++
		if s.sampleCtr%s.sampleEvery != 0 {
			tr = nil
		}
	}
	var sp Span
	var info SpanInfo
	if tr != nil {
		sp = s.newSpan(parent)
		info = SpanInfo{
			Kind:    SpanDeliver,
			To:      target,
			Domain:  n.domainName,
			Trusted: n.dom.handle.Trusted(),
			Op:      msg.Op,
			Bytes:   len(msg.Data),
		}
	}
	s.mu.Unlock()
	env := Envelope{Msg: msg, Span: sp, Deadline: deadline, Taint: taint}
	if pol != nil {
		// The deliver boundary is where wire-imported taint is judged:
		// the chain continuing here already touched whatever the taint
		// names, possibly on another machine.
		acquire, perr := pol.CheckInvoke(PolicyRequest{
			Taint: taint, Channel: PolicyDeliver, To: target, Op: msg.Op,
		})
		if perr != nil {
			perr = fmt.Errorf("deliver to %s: %w", target, perr)
			s.notePolicyDeny(perr, target, sp)
			return Message{}, perr
		}
		if len(acquire) > 0 {
			env.Taint = MergeTaint(taint, acquire)
		}
	}
	if tr == nil {
		return s.dispatch(ctx, n, &env, compromised, obs, nil)
	}
	start := s.now()
	tr.SpanStart(sp, info, start)
	reply, err := s.dispatch(ctx, n, &env, compromised, obs, tr)
	tr.SpanEnd(sp, info, start, s.now().Sub(start), err)
	return reply, err
}

// call implements Ctx.Call and Ctx.CallCtx. ctx may be nil (Ctx.Call); see
// System.deliver for the convention.
func (s *System) call(ctx context.Context, from *node, channelName string, msg Message) (Message, error) {
	s.mu.Lock()
	ch, ok := from.out[channelName]
	if !ok {
		s.mu.Unlock()
		return Message{}, fmt.Errorf("%s calling %q: %w", from.comp.CompName(), channelName, ErrNoChannel)
	}
	deadline := from.deadline
	if ctx != nil {
		deadline = effectiveDeadline(from.deadline, ctx)
	}
	taint := from.taint
	ch.uses++
	s.account(ch.to)
	fromCompromised := from.dom.compromised
	toCompromised := ch.to.dom.compromised
	obs := s.observer
	tr := s.tracer
	pol := s.policy
	if tr != nil && from.span == (Span{}) {
		// Caller is executing outside a traced request (sampled out, or
		// running at Init time): keep the whole subtree untraced.
		tr = nil
	}
	var sp Span
	var info SpanInfo
	if tr != nil {
		sp = s.newSpan(from.span)
		info = SpanInfo{
			Kind:    SpanCall,
			Channel: channelName,
			From:    from.comp.CompName(),
			To:      ch.to.comp.CompName(),
			Domain:  ch.to.domainName,
			Trusted: ch.to.dom.handle.Trusted(),
			Op:      msg.Op,
			Bytes:   len(msg.Data),
		}
	}
	s.mu.Unlock()

	env := Envelope{Msg: msg.Clone(), Span: sp, Deadline: deadline, Taint: taint}
	if ch.spec.Badge != 0 {
		env.From = from.comp.CompName()
		env.Badge = ch.spec.Badge
	}
	if pol != nil {
		acquire, perr := pol.CheckInvoke(PolicyRequest{
			Taint: taint, From: from.comp.CompName(), Channel: channelName,
			To: ch.to.comp.CompName(), Op: msg.Op,
		})
		if perr != nil {
			perr = fmt.Errorf("%s calling %q: %w", from.comp.CompName(), channelName, perr)
			s.notePolicyDeny(perr, from.comp.CompName(), sp)
			return Message{}, perr
		}
		if len(acquire) > 0 {
			// Touching this channel taints the whole chain, not just the
			// callee: the caller's residual work carries the labels too.
			// from.taint is guarded by the caller's execution slot, the
			// same discipline as the inherited deadline and span.
			taint = MergeTaint(taint, acquire)
			from.taint = taint
			env.Taint = taint
		}
	}
	if fromCompromised && obs != nil {
		// The adversary inside the sender knows what it sent.
		obs.Observe("send:"+from.comp.CompName()+"->"+ch.to.comp.CompName(), msg.Data)
	}
	var start time.Time
	if tr != nil {
		start = s.now()
		tr.SpanStart(sp, info, start)
	}
	reply, err := s.dispatch(ctx, ch.to, &env, toCompromised, obs, tr)
	if tr != nil {
		tr.SpanEnd(sp, info, start, s.now().Sub(start), err)
	}
	if fromCompromised && obs != nil && err == nil {
		// ... and reads the reply.
		obs.Observe("reply:"+ch.to.comp.CompName()+"->"+from.comp.CompName(), reply.Data)
	}
	return reply, err
}

// account updates cost counters for an invocation into node n.
// Caller holds s.mu.
func (s *System) account(n *node) {
	s.stats.Invocations++
	s.stats.VirtualNs += s.props.InvokeCostNs
	if n.dom.handle.Trusted() {
		s.stats.TrustedInvocations++
	}
}

// dispatch routes an envelope to the node's benign or compromised behavior,
// wrapping the execution in a handler span when tracing is on. A call whose
// budget is already spent (or whose context is done) is refused here,
// before any handler runs, so expired work never occupies the target.
// compromised, obs, and tr are the caller's snapshots, read under s.mu in
// call/deliver — dispatch itself takes no lock on the untraced path; the
// node's budget/span bookkeeping happens under its execution slot in run.
func (s *System) dispatch(ctx context.Context, n *node, env *Envelope, compromised bool, obs Observer, tr Tracer) (Message, error) {
	// guarded: the call carries a budget or a cancelable context, so it
	// must run under the watchdog. Computed once here; the unguarded path
	// skips every budget check downstream.
	guarded := !env.Deadline.IsZero() || (ctx != nil && ctx.Done() != nil)
	if guarded {
		if err := s.budgetErr(ctx, env.Deadline); err != nil {
			s.noteBudgetErr(err, n.comp.CompName(), env.Span)
			return Message{}, fmt.Errorf("dispatch to %s: %w", n.comp.CompName(), err)
		}
	}
	var sp Span
	var info SpanInfo
	if tr != nil && env.Span == (Span{}) {
		// The enclosing request was sampled out (or predates the tracer):
		// keep the whole subtree untraced.
		tr = nil
	}
	if tr != nil {
		s.mu.Lock()
		sp = s.newSpan(env.Span)
		s.mu.Unlock()
		env.Span = sp // run installs it; proxies forwarding the envelope propagate it
		info = SpanInfo{
			Kind:    SpanHandle,
			From:    env.From,
			To:      n.comp.CompName(),
			Domain:  n.domainName,
			Trusted: n.dom.handle.Trusted(),
			Op:      env.Msg.Op,
			Bytes:   len(env.Msg.Data),
		}
	}
	if tr == nil {
		return s.invoke(ctx, n, env, guarded, compromised, obs)
	}
	start := s.now()
	tr.SpanStart(sp, info, start)
	reply, err := s.invoke(ctx, n, env, guarded, compromised, obs)
	tr.SpanEnd(sp, info, start, s.now().Sub(start), err)
	return reply, err
}

// invoke admits the call into the component's bounded queue and runs the
// handler. Invocations of one component are serialized (node.handleMu);
// entry is bounded (node.admitted vs System.admitLimit) so a hung handler
// sheds excess callers with ErrOverloaded instead of convoying them
// forever. Unguarded calls (no budget, no cancelable context) whose slot
// is free bypass the admission counter entirely — an uncontended TryLock
// proves the queue is empty, so there is nothing to bound; that keeps the
// steady path at the cost of one mutex, same as before backpressure
// existed. Everyone else is counted while queued or running:
//   - unguarded but contended: count self as a waiter, shed when waiters
//     would exceed limit-1 (the uncounted slot holder is the limit-th);
//   - guarded: count self for the handler's whole lifetime (the watchdog
//     decrements after the handler really finishes, even abandoned), shed
//     when the count would exceed limit.
//
// Both sheds refuse the call at the same total occupancy: limit callers
// inside or waiting on the component.
func (s *System) invoke(ctx context.Context, n *node, env *Envelope, guarded, compromised bool, obs Observer) (Message, error) {
	if !guarded {
		if n.handleMu.TryLock() {
			defer n.handleMu.Unlock()
			return s.run(n, env, compromised, obs)
		}
		return s.invokeQueued(n, env, compromised, obs)
	}
	limit := s.admitLimit.Load()
	if w := n.admitted.Add(1); limit > 0 && w > limit {
		n.admitted.Add(-1)
		err := fmt.Errorf("%s: %d callers queued: %w", n.comp.CompName(), w-1, ErrOverloaded)
		s.noteBudgetErr(err, n.comp.CompName(), env.Span)
		return Message{}, err
	}
	return s.invokeGuarded(ctx, n, *env, compromised, obs)
}

// invokeQueued is invoke's contended unguarded path: the slot holder is
// running, so count self into the admission queue and wait. Split out of
// invoke so the uncontended path above keeps a single open-coded defer —
// three defer sites across branches push invoke past the compiler's
// open-coding budget and put heap defer records on every call.
func (s *System) invokeQueued(n *node, env *Envelope, compromised bool, obs Observer) (Message, error) {
	limit := s.admitLimit.Load()
	if w := n.admitted.Add(1); limit > 0 && w >= limit {
		n.admitted.Add(-1)
		err := fmt.Errorf("%s: %d callers queued: %w", n.comp.CompName(), w, ErrOverloaded)
		s.noteBudgetErr(err, n.comp.CompName(), env.Span)
		return Message{}, err
	}
	defer n.admitted.Add(-1)
	n.handleMu.Lock()
	defer n.handleMu.Unlock()
	return s.run(n, env, compromised, obs)
}

// run executes the component's benign or compromised behavior. The caller
// holds the component's execution slot (handleMu), which also guards the
// node's inherited budget and handler span installed here: the handler's
// outbound calls read them back from its own slot, so no system-wide lock
// is needed on this path.
func (s *System) run(n *node, env *Envelope, compromised bool, obs Observer) (Message, error) {
	if !env.Deadline.IsZero() || !n.deadline.IsZero() {
		// Record the handler's budget so its outbound calls inherit the
		// remainder (and clear a stale one left by an earlier budgeted
		// invocation). Conditional store to keep the steady path read-only.
		n.deadline = env.Deadline
	}
	if env.Span != n.span {
		// Same for the handler span: outbound calls parent to it; a zero
		// span (untraced or sampled-out request) clears any stale one so
		// this handler's calls don't attach to an old trace.
		n.span = env.Span
	}
	if len(env.Taint) != 0 || len(n.taint) != 0 {
		// And for the chain taint: the handler's outbound calls inherit the
		// labels this invocation arrived with (an untainted invocation
		// clears a stale set). Conditional store keeps the steady path
		// read-only, like the budget above.
		n.taint = env.Taint
	}
	if compromised {
		// The adversary controls the whole domain: it reads the incoming
		// message no matter which colocated component it addressed.
		if obs != nil {
			obs.Observe("recv:"+n.comp.CompName(), env.Msg.Data)
		}
		if sub, ok := n.comp.(Subvertible); ok {
			reply, err := sub.HandleCompromised(*env)
			if obs != nil && err == nil {
				obs.Observe("emit:"+n.comp.CompName(), reply.Data)
			}
			return reply, err
		}
		// Component has no modeled exploit payload; it limps on, but the
		// adversary already observed the traffic above.
	}
	return n.comp.Handle(*env)
}

// Compromise marks the domain hosting the named component as attacker
// controlled. Everything the domain can read — per the SUBSTRATE's
// compromise view, not the component's — is immediately exposed to the
// observer. All colocated components fall together.
func (s *System) Compromise(component string) error {
	s.mu.Lock()
	n, ok := s.nodes[component]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("compromise %s: %w", component, ErrNoDomain)
	}
	dom := n.dom
	dom.compromised = true
	obs := s.observer
	s.mu.Unlock()
	if obs != nil {
		for i, view := range dom.handle.CompromiseView() {
			obs.Observe(fmt.Sprintf("memdump:%s:%d", n.domainName, i), view)
		}
	}
	return nil
}

// IsCompromised reports whether the named component's domain is attacker
// controlled.
func (s *System) IsCompromised(component string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[component]
	return ok && n.dom.compromised
}

// Components returns all loaded component names in load order.
func (s *System) Components() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, n.comp.CompName())
	}
	return out
}

// DomainOf returns the name of the domain hosting a component.
func (s *System) DomainOf(component string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[component]
	if !ok {
		return "", fmt.Errorf("domain of %s: %w", component, ErrNoDomain)
	}
	return n.domainName, nil
}

// HandleOf returns the substrate handle of a component's domain, for
// packages (attestation, metrics) that need direct substrate access.
func (s *System) HandleOf(component string) (DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[component]
	if !ok {
		return nil, fmt.Errorf("handle of %s: %w", component, ErrNoDomain)
	}
	return n.dom.handle, nil
}

// AssetNames returns the names of assets a component has stored.
func (s *System) AssetNames(component string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[component]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(n.assets))
	for name := range n.assets {
		out = append(out, name)
	}
	return out
}

// storeAsset implements Ctx.StoreAsset: the secret is physically written
// into the domain's memory, where compromise views and bus taps can (or
// cannot) reach it.
func (s *System) storeAsset(n *node, name string, secret []byte) error {
	tr, sp, info, start := s.beginAssetSpan(n, SpanAssetStore, name, len(secret))
	err := s.doStoreAsset(n, name, secret)
	if tr != nil {
		tr.SpanEnd(sp, info, start, s.now().Sub(start), err)
	}
	return err
}

func (s *System) doStoreAsset(n *node, name string, secret []byte) error {
	s.mu.Lock()
	dom := n.dom
	if ref, ok := n.assets[name]; ok && ref.n >= len(secret) {
		s.mu.Unlock()
		if err := dom.handle.Write(ref.off, secret); err != nil {
			return fmt.Errorf("asset %s/%s: %w", n.comp.CompName(), name, err)
		}
		s.mu.Lock()
		n.assets[name] = assetRef{off: ref.off, n: len(secret)}
		s.mu.Unlock()
		return nil
	}
	off := dom.allocOff
	if off+len(secret) > dom.handle.MemSize() {
		s.mu.Unlock()
		return fmt.Errorf("asset %s/%s: domain memory exhausted (%d + %d > %d)",
			n.comp.CompName(), name, off, len(secret), dom.handle.MemSize())
	}
	dom.allocOff += len(secret)
	n.assets[name] = assetRef{off: off, n: len(secret)}
	s.mu.Unlock()
	if err := dom.handle.Write(off, secret); err != nil {
		return fmt.Errorf("asset %s/%s: %w", n.comp.CompName(), name, err)
	}
	return nil
}

// loadAsset implements Ctx.LoadAsset. Reading an asset is a chain event:
// the installed policy may refuse it outright, and the labels it confers
// (e.g. reading stored meter identities) taint the executing handler's
// chain from here on. Stores are not policy-gated — writing a secret
// reveals nothing to the writer.
func (s *System) loadAsset(n *node, name string) ([]byte, error) {
	s.mu.Lock()
	pol := s.policy
	s.mu.Unlock()
	if pol != nil {
		comp := n.comp.CompName()
		acquire, perr := pol.CheckInvoke(PolicyRequest{
			Taint: n.taint, From: comp, Channel: PolicyAsset, To: comp, Op: name,
		})
		if perr != nil {
			perr = fmt.Errorf("asset %s/%s: %w", comp, name, perr)
			s.notePolicyDeny(perr, comp, n.span)
			return nil, perr
		}
		if len(acquire) > 0 {
			n.taint = MergeTaint(n.taint, acquire)
		}
	}
	tr, sp, info, start := s.beginAssetSpan(n, SpanAssetLoad, name, 0)
	data, err := s.doLoadAsset(n, name)
	if tr != nil {
		info.Bytes = len(data)
		tr.SpanEnd(sp, info, start, s.now().Sub(start), err)
	}
	return data, err
}

func (s *System) doLoadAsset(n *node, name string) ([]byte, error) {
	s.mu.Lock()
	ref, ok := n.assets[name]
	dom := n.dom
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("asset %s/%s: not stored", n.comp.CompName(), name)
	}
	return dom.handle.Read(ref.off, ref.n)
}

// ChannelUsage returns per-channel invocation counts for every grant in
// the system, including channels that were never used. The result is
// deterministically ordered by (From, Name) so tooling built on it
// (pruning reports, metrics exposition) emits stable output.
func (s *System) ChannelUsage() []ChannelUse {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ChannelUse
	for _, n := range s.order {
		for name, ch := range n.out {
			out = append(out, ChannelUse{
				Name:  name,
				From:  ch.spec.From,
				To:    ch.spec.To,
				Badge: ch.spec.Badge,
				Uses:  ch.uses,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CtxOf builds a Ctx for a loaded component, for packages that drive
// components directly (the experiment harness).
func (s *System) CtxOf(component string) (*Ctx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[component]
	if !ok {
		return nil, fmt.Errorf("ctx of %s: %w", component, ErrNoDomain)
	}
	return &Ctx{sys: s, node: n}, nil
}
