package core

import (
	"sync"
	"testing"
	"time"
)

// collectTracer keeps every completed span for assertions.
type collectTracer struct {
	mu    sync.Mutex
	ends  []Span
	infos []SpanInfo
}

func (c *collectTracer) SpanStart(Span, SpanInfo, time.Time) {}

func (c *collectTracer) SpanEnd(sp Span, info SpanInfo, _ time.Time, _ time.Duration, _ error) {
	c.mu.Lock()
	c.ends = append(c.ends, sp)
	c.infos = append(c.infos, info)
	c.mu.Unlock()
}

func (c *collectTracer) find(kind SpanKind, to string) (Span, SpanInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, info := range c.infos {
		if info.Kind == kind && info.To == to {
			return c.ends[i], info, true
		}
	}
	return Span{}, SpanInfo{}, false
}

// vaultComp stores an asset at Init and loads it on demand, so asset spans
// appear inside its handler span.
type vaultComp struct{ ctx *Ctx }

func (v *vaultComp) CompName() string    { return "vault" }
func (v *vaultComp) CompVersion() string { return "1.0" }
func (v *vaultComp) Init(ctx *Ctx) error {
	v.ctx = ctx
	return ctx.StoreAsset("doc", []byte("sealed"))
}
func (v *vaultComp) Handle(Envelope) (Message, error) {
	data, err := v.ctx.LoadAsset("doc")
	return Message{Op: "doc", Data: data}, err
}

func TestTracerSpanTreeLinksParents(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&callerComp{name: "a", channel: "to-vault"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(&vaultComp{}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "to-vault", From: "a", To: "vault"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	tr := &collectTracer{}
	sys.SetTracer(tr)
	if _, err := sys.Deliver("a", Message{Op: "get"}); err != nil {
		t.Fatal(err)
	}

	deliver, _, ok := tr.find(SpanDeliver, "a")
	if !ok {
		t.Fatal("no deliver span recorded")
	}
	if deliver.Parent != 0 {
		t.Errorf("deliver span has parent %#x, want root", deliver.Parent)
	}
	handleA, _, ok := tr.find(SpanHandle, "a")
	if !ok {
		t.Fatal("no handle span for a")
	}
	if handleA.Parent != deliver.ID {
		t.Errorf("handle a parent = %#x, want deliver %#x", handleA.Parent, deliver.ID)
	}
	call, info, ok := tr.find(SpanCall, "vault")
	if !ok {
		t.Fatal("no call span recorded")
	}
	if call.Parent != handleA.ID {
		t.Errorf("call parent = %#x, want handle a %#x", call.Parent, handleA.ID)
	}
	if info.Channel != "to-vault" || info.From != "a" || info.Op != "get" {
		t.Errorf("call info = %+v", info)
	}
	handleV, _, ok := tr.find(SpanHandle, "vault")
	if !ok {
		t.Fatal("no handle span for vault")
	}
	if handleV.Parent != call.ID {
		t.Errorf("handle vault parent = %#x, want call %#x", handleV.Parent, call.ID)
	}
	load, loadInfo, ok := tr.find(SpanAssetLoad, "vault")
	if !ok {
		t.Fatal("no asset-load span recorded")
	}
	if load.Parent != handleV.ID {
		t.Errorf("asset-load parent = %#x, want handle vault %#x", load.Parent, handleV.ID)
	}
	if loadInfo.Op != "doc" || loadInfo.Bytes != len("sealed") {
		t.Errorf("asset-load info = %+v", loadInfo)
	}
	// All spans of the request share one trace ID.
	for _, sp := range []Span{deliver, handleA, call, handleV, load} {
		if sp.Trace != deliver.Trace {
			t.Errorf("span %#x in trace %#x, want %#x", sp.ID, sp.Trace, deliver.Trace)
		}
	}
}

func TestTracerSeparateDeliversSeparateTraces(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&echoComp{name: "e"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	tr := &collectTracer{}
	sys.SetTracer(tr)
	if _, err := sys.Deliver("e", Message{Op: "one"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deliver("e", Message{Op: "two"}); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	traces := map[uint64]bool{}
	for _, sp := range tr.ends {
		traces[sp.Trace] = true
	}
	if len(traces) != 2 {
		t.Errorf("got %d distinct traces, want 2", len(traces))
	}
}

func TestDeliverSpanAdoptsRemoteParent(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&echoComp{name: "e"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	tr := &collectTracer{}
	sys.SetTracer(tr)
	parent := Span{Trace: 0xabc, ID: 0x123}
	if _, err := sys.DeliverSpan("e", Message{Op: "x"}, parent); err != nil {
		t.Fatal(err)
	}
	deliver, _, ok := tr.find(SpanDeliver, "e")
	if !ok {
		t.Fatal("no deliver span")
	}
	if deliver.Trace != parent.Trace || deliver.Parent != parent.ID {
		t.Errorf("deliver = %+v, want trace %#x parent %#x", deliver, parent.Trace, parent.ID)
	}
}

// TestTraceSamplingOneInN checks head sampling: exactly one in every n
// root delivers is traced, a sampled request is traced through its whole
// subtree (call, handler, asset spans), and an unsampled one produces no
// spans at all.
func TestTraceSamplingOneInN(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&callerComp{name: "a", channel: "to-vault"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(&vaultComp{}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Grant(ChannelSpec{Name: "to-vault", From: "a", To: "vault"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	tr := &collectTracer{}
	sys.SetTracer(tr)
	sys.SetTraceSampling(4)
	for i := 0; i < 8; i++ {
		if _, err := sys.Deliver("a", Message{Op: "get"}); err != nil {
			t.Fatal(err)
		}
	}

	tr.mu.Lock()
	traces := map[uint64]int{}
	for _, sp := range tr.ends {
		traces[sp.Trace]++
	}
	total := len(tr.ends)
	tr.mu.Unlock()
	if len(traces) != 2 {
		t.Fatalf("got %d sampled traces over 8 delivers at 1-in-4, want 2 (%v)", len(traces), traces)
	}
	// Each sampled request is traced end to end: deliver, handle a, call,
	// handle vault, asset-load — five spans. Unsampled requests add none.
	for id, n := range traces {
		if n != 5 {
			t.Errorf("trace %#x has %d spans, want 5", id, n)
		}
	}
	if total != 10 {
		t.Errorf("recorded %d spans, want 10", total)
	}

	// Remote continuations bypass the local sampling decision.
	sys.SetTraceSampling(1 << 20)
	if _, err := sys.DeliverSpan("a", Message{Op: "get"}, Span{Trace: 0xfeed, ID: 9}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tr.find(SpanDeliver, "a"); !ok {
		t.Error("remote-parented deliver was not traced under aggressive sampling")
	}
	tr.mu.Lock()
	foundRemote := false
	for _, sp := range tr.ends {
		if sp.Trace == 0xfeed {
			foundRemote = true
		}
	}
	tr.mu.Unlock()
	if !foundRemote {
		t.Error("remote continuation did not join trace 0xfeed")
	}

	// n <= 1 restores tracing every request.
	sys.SetTraceSampling(0)
	tr.mu.Lock()
	n0 := len(tr.ends)
	tr.mu.Unlock()
	if _, err := sys.Deliver("a", Message{Op: "get"}); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	n1 := len(tr.ends)
	tr.mu.Unlock()
	if n1 != n0+5 {
		t.Errorf("after SetTraceSampling(0): %d new spans, want 5", n1-n0)
	}
}

// TestChannelUsageDeterministicOrder is the regression test for the sorted
// ChannelUsage contract: grants made in scrambled order come back ordered
// by (From, Name), stably across calls.
func TestChannelUsageDeterministicOrder(t *testing.T) {
	sys := newTestSystem(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := sys.Launch(&echoComp{name: name}, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	grants := []ChannelSpec{
		{Name: "z2", From: "zeta", To: "alpha"},
		{Name: "b", From: "mid", To: "zeta"},
		{Name: "z1", From: "zeta", To: "mid"},
		{Name: "a", From: "alpha", To: "mid"},
	}
	for _, g := range grants {
		if err := sys.Grant(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha/a", "mid/b", "zeta/z1", "zeta/z2"}
	for round := 0; round < 5; round++ {
		usage := sys.ChannelUsage()
		if len(usage) != len(want) {
			t.Fatalf("round %d: %d entries, want %d", round, len(usage), len(want))
		}
		for i, u := range usage {
			if got := u.From + "/" + u.Name; got != want[i] {
				t.Fatalf("round %d entry %d = %s, want %s (full: %+v)", round, i, got, want[i], usage)
			}
		}
	}
}

// nullComp handles without allocating, so the allocation test measures the
// system hot path alone.
type nullComp struct{ name string }

func (n *nullComp) CompName() string                 { return n.name }
func (n *nullComp) CompVersion() string              { return "1.0" }
func (n *nullComp) Init(*Ctx) error                  { return nil }
func (n *nullComp) Handle(Envelope) (Message, error) { return Message{Op: "ok"}, nil }

func TestNilTracerAndObserverFastPath(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.Launch(&nullComp{name: "n"}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	// Explicitly clearing both hooks must neither panic nor change behavior
	// — including clearing hooks that were never set.
	sys.SetTracer(nil)
	sys.SetObserver(nil)
	if _, err := sys.Deliver("n", Message{Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	// Install then remove: the fast path must come back.
	sys.SetTracer(&collectTracer{})
	sys.SetObserver(&transcript{})
	if _, err := sys.Deliver("n", Message{Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(nil)
	sys.SetObserver(nil)

	msg := Message{Op: "ping"}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sys.Deliver("n", msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("untraced Deliver allocates %.1f objects per run, want 0", allocs)
	}
}
