package core

import (
	"sync/atomic"
	"time"
)

// SpanKind classifies what a span measures on the substrate-crossing path.
type SpanKind uint8

const (
	// SpanDeliver is an external stimulus entering the system (network
	// input, user action) — the root of a causal trace.
	SpanDeliver SpanKind = iota

	// SpanCall is one cross-domain invocation over a granted channel,
	// measured from the sender's side: message clone, substrate crossing,
	// target execution, and reply.
	SpanCall

	// SpanHandle is the target component executing its handler, including
	// the wait for the component's serialization lock. The gap between a
	// SpanCall and its child SpanHandle is pure crossing overhead.
	SpanHandle

	// SpanAssetStore and SpanAssetLoad are domain-memory asset accesses —
	// the "reuse" edge of the paper's Fig. 2 cost model.
	SpanAssetStore
	SpanAssetLoad
)

// String returns the kind's stable lowercase name.
func (k SpanKind) String() string {
	switch k {
	case SpanDeliver:
		return "deliver"
	case SpanCall:
		return "call"
	case SpanHandle:
		return "handle"
	case SpanAssetStore:
		return "asset-store"
	case SpanAssetLoad:
		return "asset-load"
	default:
		return "unknown"
	}
}

// Span identifies one timed operation within a causal trace. IDs are
// allocated from a per-System sequence salted with a process-wide system
// index, so spans from different systems (e.g. the two machines of a
// distributed deployment) never collide in a shared tracer.
type Span struct {
	Trace  uint64 // the request this span belongs to
	ID     uint64 // this span
	Parent uint64 // enclosing span; 0 for trace roots
}

// SpanInfo carries the static attributes of a span. All fields are values
// the system already holds, so building one costs no allocation.
type SpanInfo struct {
	Kind    SpanKind
	Channel string // granted channel name (SpanCall only)
	From    string // invoking component; "" for external stimuli
	To      string // target (or owning, for assets) component
	Domain  string // target component's domain
	Trusted bool   // whether that domain is trusted
	Op      string // message op, or asset name for asset spans
	Bytes   int    // payload size
}

// Tracer observes the substrate-crossing hot path: invocations, handler
// executions, and asset accesses, each as a start/end span pair carrying
// causal parent links.
//
// Tracer is deliberately distinct from Observer: an Observer models what an
// ADVERSARY inside a compromised domain can see (payload bytes included),
// while a Tracer models what the infrastructure operator measures — timing,
// topology, and sizes, never payload contents. The telemetry package
// provides metrics and trace-recording implementations.
//
// Implementations must be safe for concurrent use and should be cheap:
// both methods run on the invocation hot path.
type Tracer interface {
	// SpanStart fires when the operation begins, before any work is done.
	SpanStart(sp Span, info SpanInfo, start time.Time)

	// SpanEnd fires when the operation completes. elapsed is measured by
	// the system; err is the operation's outcome.
	SpanEnd(sp Span, info SpanInfo, start time.Time, elapsed time.Duration, err error)
}

// systemSeq hands each System a distinct span-ID namespace (top bits), so
// traces recorded from several systems into one tracer stay unambiguous.
var systemSeq atomic.Uint64

// spanBase returns the ID-sequence base for the next system.
func spanBase() uint64 {
	return systemSeq.Add(1) << 40
}

// SetTracer installs (or, with nil, removes) the telemetry hook. The
// uninstrumented path is the fast path: with a nil tracer no span IDs are
// allocated, no clocks are read, and no extra allocations happen.
func (s *System) SetTracer(t Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// SetTraceSampling makes the system trace only one in every n externally
// delivered requests (head sampling). The decision is made once, at the
// trace root: a sampled request is traced end to end — every call, handler,
// and asset span it causes — while an unsampled request runs the untraced
// fast path throughout. Continuations of a remote trace (DeliverSpan with a
// non-zero parent) always honor the upstream machine's decision, so
// distributed traces never arrive half-stitched. n <= 1 restores the
// default of tracing every request.
func (s *System) SetTraceSampling(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.sampleEvery = uint64(n)
	s.sampleCtr = 0
}

// newSpan allocates the next span beneath parent; a zero parent starts a
// fresh trace. Caller holds s.mu.
func (s *System) newSpan(parent Span) Span {
	s.spanSeq++
	if parent.Trace == 0 {
		s.traceSeq++
		return Span{Trace: s.traceSeq, ID: s.spanSeq}
	}
	return Span{Trace: parent.Trace, ID: s.spanSeq, Parent: parent.ID}
}

// beginAssetSpan starts an asset-access span for n, parented to whatever
// invocation n is currently executing. It returns a nil Tracer when
// tracing is off.
func (s *System) beginAssetSpan(n *node, kind SpanKind, asset string, size int) (Tracer, Span, SpanInfo, time.Time) {
	s.mu.Lock()
	tr := s.tracer
	if tr == nil || n.span == (Span{}) {
		// No tracer, or the access happens outside a traced request
		// (sampled out, or at Init time): fast path.
		s.mu.Unlock()
		return nil, Span{}, SpanInfo{}, time.Time{}
	}
	sp := s.newSpan(n.span)
	info := SpanInfo{
		Kind:    kind,
		To:      n.comp.CompName(),
		Domain:  n.domainName,
		Trusted: n.dom.handle.Trusted(),
		Op:      asset,
		Bytes:   size,
	}
	s.mu.Unlock()
	start := s.now()
	tr.SpanStart(sp, info, start)
	return tr, sp, info, start
}
