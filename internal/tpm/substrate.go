package tpm

import (
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
)

// Substrate is the Flicker-style late-launch substrate: trusted domains are
// PALs (pieces of application logic) executed one at a time via TPM late
// launch out of a running legacy system; untrusted domains together form
// that legacy system and share one protection (non-)domain.
type Substrate struct {
	tpm *TPM

	mu         sync.Mutex
	domains    map[string]*palDomain
	legacy     []*palDomain // untrusted domains: mutually unprotected
	active     string       // currently launched PAL ("" if none)
	sessions   int64        // total late-launch sessions
	serialized int64        // sessions that had to wait for another PAL
}

var _ core.Substrate = (*Substrate)(nil)

// NewSubstrate builds a late-launch substrate over the given TPM.
func NewSubstrate(t *TPM) *Substrate {
	return &Substrate{tpm: t, domains: make(map[string]*palDomain)}
}

// Name returns "tpm-latelaunch".
func (s *Substrate) Name() string { return "tpm-latelaunch" }

// TPM exposes the underlying module (the attest package drives boot chains
// against it).
func (s *Substrate) TPM() *TPM { return s.tpm }

// Properties: strong launch and attestation (that is what TPMs are for),
// spatial isolation only while a PAL runs, NO concurrency between trusted
// components, and a very expensive invocation — a late launch stops the
// whole machine.
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:         "tpm-latelaunch",
		SpatialIsolation:  true,
		SecureLaunch:      true,
		Attestation:       true,
		ConcurrentTrusted: false,
		InvokeCostNs:      100_000_000, // ~100 ms per Flicker session (McCune et al.)
		TCBUnits:          15,          // CPU+chipset launch microcode, TPM firmware, PAL shim
	}
}

// Anchor returns the TPM-backed trust anchor.
func (s *Substrate) Anchor() core.TrustAnchor { return &anchor{sub: s} }

// CreateDomain loads a PAL (trusted) or a slice of the legacy system
// (untrusted).
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("tpm-latelaunch: %s: %w", spec.Name, core.ErrDomainExists)
	}
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	d := &palDomain{
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		mem:     make([]byte, pages*4096),
	}
	s.domains[spec.Name] = d
	if !spec.Trusted {
		s.legacy = append(s.legacy, d)
	}
	return d, nil
}

// Sessions reports (total late-launch sessions, sessions serialized behind
// another PAL). The concurrency experiment E14 reads these.
func (s *Substrate) Sessions() (total, serialized int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions, s.serialized
}

// beginSession marks a PAL active; if another PAL is active the session is
// recorded as serialized (Flicker cannot run PALs concurrently).
func (s *Substrate) beginSession(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions++
	if s.active != "" && s.active != name {
		s.serialized++
	}
	s.active = name
}

func (s *Substrate) endSession(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == name {
		s.active = ""
	}
}

// palDomain is one PAL or one slice of the legacy system.
type palDomain struct {
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte

	mu    sync.Mutex
	mem   []byte
	freed bool
}

var _ core.DomainHandle = (*palDomain)(nil)

func (d *palDomain) DomainName() string    { return d.name }
func (d *palDomain) Measurement() [32]byte { return d.meas }
func (d *palDomain) Trusted() bool         { return d.trusted }
func (d *palDomain) MemSize() int          { return len(d.mem) }

func (d *palDomain) Write(off int, p []byte) error {
	if d.trusted {
		d.sub.beginSession(d.name)
		defer d.sub.endSession(d.name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.freed || off < 0 || off+len(p) > len(d.mem) {
		return fmt.Errorf("tpm-latelaunch %s: write %d@%d out of range", d.name, len(p), off)
	}
	copy(d.mem[off:], p)
	return nil
}

func (d *palDomain) Read(off, n int) ([]byte, error) {
	if d.trusted {
		d.sub.beginSession(d.name)
		defer d.sub.endSession(d.name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.freed || off < 0 || off+n > len(d.mem) {
		return nil, fmt.Errorf("tpm-latelaunch %s: read %d@%d out of range", d.name, n, off)
	}
	out := make([]byte, n)
	copy(out, d.mem[off:])
	return out, nil
}

// CompromiseView: a compromised PAL sees its own memory. A compromised
// legacy domain sees the ENTIRE legacy system — all untrusted domains are
// one codebase ("any security vulnerability within any subsystem can lead
// to a complete takeover of the entire legacy application") — but no PAL
// memory: Flicker's whole point is that PAL state survives a hostile OS.
func (d *palDomain) CompromiseView() [][]byte {
	if d.trusted {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.freed {
			return nil
		}
		out := make([]byte, len(d.mem))
		copy(out, d.mem)
		return [][]byte{out}
	}
	d.sub.mu.Lock()
	legacy := append([]*palDomain(nil), d.sub.legacy...)
	d.sub.mu.Unlock()
	var views [][]byte
	for _, l := range legacy {
		l.mu.Lock()
		if !l.freed {
			c := make([]byte, len(l.mem))
			copy(c, l.mem)
			views = append(views, c)
		}
		l.mu.Unlock()
	}
	return views
}

func (d *palDomain) Destroy() error {
	d.mu.Lock()
	d.freed = true
	d.mu.Unlock()
	d.sub.mu.Lock()
	delete(d.sub.domains, d.name)
	d.sub.mu.Unlock()
	return nil
}

// anchor adapts the TPM to the unified core.TrustAnchor interface. A PAL's
// identity is its late-launch PCR value; quoting runs a late launch of the
// PAL and quotes PCR 17.
type anchor struct {
	sub *Substrate
}

var _ core.TrustAnchor = (*anchor)(nil)

func (a *anchor) AnchorKind() string { return "tpm" }

// Quote late-launches the domain's code identity and signs it with the EK.
// The unified Quote carries the domain measurement; the TPM binding is the
// EK signature chain.
func (a *anchor) Quote(d core.DomainHandle, nonce []byte) (core.Quote, error) {
	if !d.Trusted() {
		return core.Quote{}, fmt.Errorf("tpm anchor: %s is not a PAL: %w", d.DomainName(), core.ErrRefused)
	}
	a.sub.beginSession(d.DomainName())
	defer a.sub.endSession(d.DomainName())
	meas := d.Measurement()
	if _, err := a.sub.tpm.LateLaunch(meas[:]); err != nil {
		return core.Quote{}, err
	}
	return core.SignQuote("tpm", meas, nonce, a.sub.tpm.ek, a.sub.tpm.ekCert), nil
}

// Seal binds data to the PAL's code identity via the TPM seal root.
func (a *anchor) Seal(d core.DomainHandle, plaintext []byte) ([]byte, error) {
	meas := d.Measurement()
	key := cryptoutil.HKDF(a.sub.tpm.sealRoot, meas[:], []byte("pal-seal"), cryptoutil.KeySize)
	a.sub.mu.Lock()
	a.sub.tpm.nonceCtr++
	ctr := a.sub.tpm.nonceCtr
	a.sub.mu.Unlock()
	return cryptoutil.Seal(key, cryptoutil.DeriveNonce("pal-seal", ctr), plaintext, meas[:])
}

// Unseal recovers data sealed to this PAL's identity; a different PAL (or
// modified code) derives a different key and fails.
func (a *anchor) Unseal(d core.DomainHandle, sealed []byte) ([]byte, error) {
	meas := d.Measurement()
	key := cryptoutil.HKDF(a.sub.tpm.sealRoot, meas[:], []byte("pal-seal"), cryptoutil.KeySize)
	pt, err := cryptoutil.Open(key, sealed, meas[:])
	if err != nil {
		return nil, fmt.Errorf("tpm anchor unseal %s: %w", d.DomainName(), ErrUnseal)
	}
	return pt, nil
}
