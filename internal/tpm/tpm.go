// Package tpm simulates a Trusted Platform Module and the Flicker-style
// late-launch isolation substrate built on it (§II-B).
//
// The TPM device provides the paper's three purposes: it "stores
// cryptographic keys ... in hardware, where they cannot be leaked or stolen
// by software running on the main processor", it "provides means to
// restrict access to these keys to specific software stacks" (sealing to
// PCR state), and it "can digitally sign this checksum in order to attest
// to a remote party, which software stack has been booted" (quoting).
//
// The Substrate models Flicker: "late launch can be used as an isolation
// mechanism to execute trusted components from within legacy code. Flicker
// even allows multiple trusted components that are mutually isolated by way
// of the TPM assigning them different cryptographic identities, but they
// cannot run concurrently."
package tpm

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
)

// NumPCRs is the number of platform configuration registers.
const NumPCRs = 24

// LateLaunchPCR is the register a late launch resets and measures into
// (PCR 17 on real hardware).
const LateLaunchPCR = 17

// Errors.
var (
	// ErrBadPCR is returned for PCR indices outside the bank.
	ErrBadPCR = errors.New("tpm: invalid PCR index")

	// ErrUnseal is returned when unsealing under a non-matching platform
	// configuration.
	ErrUnseal = errors.New("tpm: unseal denied (PCR mismatch)")
)

// TPM is one simulated module. The endorsement key never leaves the
// struct; software only ever sees signatures.
type TPM struct {
	mu         sync.Mutex
	pcrs       [NumPCRs][32]byte
	ek         *cryptoutil.Signer
	ekCert     []byte
	sealRoot   []byte
	nonceCtr   uint64
	nvCounters map[string]*NVCounter
}

// New manufactures a TPM keyed from deviceSeed, with its endorsement key
// certified by the manufacturer.
func New(deviceSeed string, manufacturer *cryptoutil.Signer) *TPM {
	ek := cryptoutil.NewSigner("tpm-ek:" + deviceSeed)
	return &TPM{
		ek:       ek,
		ekCert:   core.IssueVendorCert(manufacturer, ek.Public()),
		sealRoot: cryptoutil.KeyFromSeed("tpm-srk:" + deviceSeed),
	}
}

// EKPublic returns the endorsement public key.
func (t *TPM) EKPublic() ed25519.PublicKey { return t.ek.Public() }

// EKCert returns the manufacturer's certificate over the endorsement key.
func (t *TPM) EKCert() []byte { return append([]byte(nil), t.ekCert...) }

// Reset models a platform reboot: all PCRs return to zero.
func (t *TPM) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.pcrs {
		t.pcrs[i] = [32]byte{}
	}
}

// Extend folds a measurement into a PCR: pcr = H(pcr || measurement).
// This is the only way PCR values move forward; they can never be set.
func (t *TPM) Extend(pcr int, measurement [32]byte) error {
	if pcr < 0 || pcr >= NumPCRs {
		return fmt.Errorf("extend pcr %d: %w", pcr, ErrBadPCR)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pcrs[pcr] = cryptoutil.Hash(t.pcrs[pcr][:], measurement[:])
	return nil
}

// PCRValue reads a register.
func (t *TPM) PCRValue(pcr int) ([32]byte, error) {
	if pcr < 0 || pcr >= NumPCRs {
		return [32]byte{}, fmt.Errorf("read pcr %d: %w", pcr, ErrBadPCR)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[pcr], nil
}

// composite hashes the selected PCR values in ascending index order.
// Caller holds t.mu.
func (t *TPM) composite(pcrs []int) ([32]byte, error) {
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	parts := make([]byte, 0, len(sel)*36)
	for _, i := range sel {
		if i < 0 || i >= NumPCRs {
			return [32]byte{}, fmt.Errorf("composite pcr %d: %w", i, ErrBadPCR)
		}
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		parts = append(parts, idx[:]...)
		parts = append(parts, t.pcrs[i][:]...)
	}
	return cryptoutil.Hash(parts), nil
}

// PCRQuote is a signed statement of selected PCR contents.
type PCRQuote struct {
	PCRs      []int
	Values    [][32]byte
	Nonce     []byte
	EKPub     ed25519.PublicKey
	Signature []byte
	EKCert    []byte
}

func pcrQuoteBody(pcrs []int, values [][32]byte, nonce []byte) []byte {
	var out []byte
	for i, p := range pcrs {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(p))
		out = append(out, idx[:]...)
		out = append(out, values[i][:]...)
	}
	out = append(out, nonce...)
	return out
}

// Quote signs the current values of the selected PCRs together with the
// verifier's nonce.
func (t *TPM) Quote(pcrs []int, nonce []byte) (PCRQuote, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	values := make([][32]byte, 0, len(sel))
	for _, i := range sel {
		if i < 0 || i >= NumPCRs {
			return PCRQuote{}, fmt.Errorf("quote pcr %d: %w", i, ErrBadPCR)
		}
		values = append(values, t.pcrs[i])
	}
	return PCRQuote{
		PCRs:      sel,
		Values:    values,
		Nonce:     append([]byte(nil), nonce...),
		EKPub:     t.ek.Public(),
		Signature: t.ek.Sign(pcrQuoteBody(sel, values, nonce)),
		EKCert:    append([]byte(nil), t.ekCert...),
	}, nil
}

// VerifyPCRQuote checks a quote's trust chain (manufacturer → EK →
// signature), its freshness, and — when expected is non-nil — that each
// quoted PCR has the expected value.
func VerifyPCRQuote(q PCRQuote, nonce []byte, manufacturerPub ed25519.PublicKey, expected map[int][32]byte) error {
	if !cryptoutil.Verify(manufacturerPub, q.EKPub, q.EKCert) {
		return fmt.Errorf("ek certificate invalid: %w", core.ErrQuote)
	}
	if !cryptoutil.Verify(q.EKPub, pcrQuoteBody(q.PCRs, q.Values, q.Nonce), q.Signature) {
		return fmt.Errorf("quote signature invalid: %w", core.ErrQuote)
	}
	if string(q.Nonce) != string(nonce) {
		return fmt.Errorf("quote nonce mismatch: %w", core.ErrQuote)
	}
	if len(q.PCRs) != len(q.Values) {
		return fmt.Errorf("quote malformed: %w", core.ErrQuote)
	}
	for i, p := range q.PCRs {
		want, ok := expected[p]
		if !ok {
			continue
		}
		if q.Values[i] != want {
			return fmt.Errorf("pcr %d mismatch: %w", p, core.ErrQuote)
		}
	}
	return nil
}

// Seal encrypts plaintext bound to the CURRENT values of the selected
// PCRs. Only a platform in the same configuration can unseal — this is
// how BitLocker "releases the full-disk-encryption key ... only to a
// correct version of Windows that has not been tampered with".
func (t *TPM) Seal(pcrs []int, plaintext []byte) ([]byte, error) {
	t.mu.Lock()
	comp, err := t.composite(pcrs)
	if err != nil {
		t.mu.Unlock()
		return nil, err
	}
	t.nonceCtr++
	ctr := t.nonceCtr
	t.mu.Unlock()

	key := cryptoutil.HKDF(t.sealRoot, comp[:], []byte("tpm-seal"), cryptoutil.KeySize)
	// Blob layout: count | pcr indices | ciphertext.
	hdr := make([]byte, 1+len(pcrs))
	sel := append([]int(nil), pcrs...)
	sort.Ints(sel)
	hdr[0] = byte(len(sel))
	for i, p := range sel {
		hdr[1+i] = byte(p)
	}
	ct, err := cryptoutil.Seal(key, cryptoutil.DeriveNonce("tpm-seal", ctr), plaintext, hdr)
	if err != nil {
		return nil, err
	}
	return append(hdr, ct...), nil
}

// Unseal decrypts a sealed blob if the platform's current PCR values match
// those at sealing time.
func (t *TPM) Unseal(blob []byte) ([]byte, error) {
	if len(blob) < 1 {
		return nil, fmt.Errorf("unseal: empty blob: %w", ErrUnseal)
	}
	n := int(blob[0])
	if len(blob) < 1+n {
		return nil, fmt.Errorf("unseal: truncated blob: %w", ErrUnseal)
	}
	pcrs := make([]int, n)
	for i := 0; i < n; i++ {
		pcrs[i] = int(blob[1+i])
	}
	t.mu.Lock()
	comp, err := t.composite(pcrs)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	key := cryptoutil.HKDF(t.sealRoot, comp[:], []byte("tpm-seal"), cryptoutil.KeySize)
	pt, err := cryptoutil.Open(key, blob[1+n:], blob[:1+n])
	if err != nil {
		return nil, fmt.Errorf("unseal: %w", ErrUnseal)
	}
	return pt, nil
}

// LateLaunch executes the special CPU instruction of §II-B: "all currently
// running software including the kernel [is] stopped, before a small piece
// of code is given full control ... the CPU and chipset report the
// cryptographic hash of this piece of code to the TPM". It resets the
// late-launch PCR to a well-known value and extends it with the code hash,
// giving the launched code a fresh cryptographic identity independent of
// the boot chain.
func (t *TPM) LateLaunch(code []byte) ([32]byte, error) {
	meas := cryptoutil.Hash(code)
	t.mu.Lock()
	defer t.mu.Unlock()
	// Dynamic-launch reset: the PCR returns to a distinguished value only
	// the late-launch instruction can produce, then measures the payload.
	t.pcrs[LateLaunchPCR] = cryptoutil.Hash([]byte("dynamic-launch-event"))
	t.pcrs[LateLaunchPCR] = cryptoutil.Hash(t.pcrs[LateLaunchPCR][:], meas[:])
	return t.pcrs[LateLaunchPCR], nil
}

// ExpectedLateLaunchPCR computes the PCR17 value a verifier expects for a
// given payload, without access to a TPM.
func ExpectedLateLaunchPCR(code []byte) [32]byte {
	meas := cryptoutil.Hash(code)
	v := cryptoutil.Hash([]byte("dynamic-launch-event"))
	return cryptoutil.Hash(v[:], meas[:])
}
