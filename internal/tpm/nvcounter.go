package tpm

import (
	"fmt"
	"sync"
)

// NVCounter is a monotonic counter in the TPM's non-volatile storage. Real
// TPMs expose these as NV indices with the COUNTER attribute; trusted
// wrappers use them to anchor freshness of state kept on untrusted storage
// (see internal/vpfs's journal, which takes exactly this interface).
//
// The counter can only ever move forward; there is no reset short of
// physically replacing the TPM — which changes the seal root and destroys
// the protected state anyway.
type NVCounter struct {
	mu    sync.Mutex
	tpm   *TPM
	index string
	value uint64
}

// NVCounter returns the named monotonic counter, creating it at zero on
// first use. Counters are per-TPM persistent state.
func (t *TPM) NVCounter(index string) *NVCounter {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nvCounters == nil {
		t.nvCounters = make(map[string]*NVCounter)
	}
	if c, ok := t.nvCounters[index]; ok {
		return c
	}
	c := &NVCounter{tpm: t, index: index}
	t.nvCounters[index] = c
	return c
}

// Increment advances the counter and returns the new value.
func (c *NVCounter) Increment() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.value == ^uint64(0) {
		return 0, fmt.Errorf("tpm: nv counter %q exhausted", c.index)
	}
	c.value++
	return c.value, nil
}

// Value returns the current count.
func (c *NVCounter) Value() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value, nil
}
