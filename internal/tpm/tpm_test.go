package tpm

import (
	"bytes"
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
)

func newTestTPM() (*TPM, *cryptoutil.Signer) {
	mfr := cryptoutil.NewSigner("tpm-manufacturer")
	return New("unit-device", mfr), mfr
}

func TestExtendIsOrderedAndIrreversible(t *testing.T) {
	tp, _ := newTestTPM()
	m1 := cryptoutil.Hash([]byte("bootloader"))
	m2 := cryptoutil.Hash([]byte("kernel"))
	if err := tp.Extend(0, m1); err != nil {
		t.Fatal(err)
	}
	if err := tp.Extend(0, m2); err != nil {
		t.Fatal(err)
	}
	v12, _ := tp.PCRValue(0)

	tp2, _ := newTestTPM()
	_ = tp2.Extend(0, m2)
	_ = tp2.Extend(0, m1)
	v21, _ := tp2.PCRValue(0)
	if v12 == v21 {
		t.Error("PCR extend is order-insensitive; must not be")
	}
	// Same sequence reproduces the same value.
	tp3, _ := newTestTPM()
	_ = tp3.Extend(0, m1)
	_ = tp3.Extend(0, m2)
	v3, _ := tp3.PCRValue(0)
	if v12 != v3 {
		t.Error("identical extend sequence gave different PCR")
	}
	if err := tp.Extend(NumPCRs, m1); !errors.Is(err, ErrBadPCR) {
		t.Errorf("bad pcr: got %v", err)
	}
	if _, err := tp.PCRValue(-1); !errors.Is(err, ErrBadPCR) {
		t.Errorf("bad pcr read: got %v", err)
	}
}

func TestResetClearsPCRs(t *testing.T) {
	tp, _ := newTestTPM()
	_ = tp.Extend(5, cryptoutil.Hash([]byte("x")))
	tp.Reset()
	v, _ := tp.PCRValue(5)
	if v != ([32]byte{}) {
		t.Error("reset did not clear PCR")
	}
}

func TestQuoteVerify(t *testing.T) {
	tp, mfr := newTestTPM()
	_ = tp.Extend(0, cryptoutil.Hash([]byte("stage1")))
	_ = tp.Extend(1, cryptoutil.Hash([]byte("stage2")))
	nonce := []byte("fresh")
	q, err := tp.Quote([]int{1, 0}, nonce) // unsorted selection is fine
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := tp.PCRValue(0)
	v1, _ := tp.PCRValue(1)
	expected := map[int][32]byte{0: v0, 1: v1}
	if err := VerifyPCRQuote(q, nonce, mfr.Public(), expected); err != nil {
		t.Errorf("valid quote rejected: %v", err)
	}
	if err := VerifyPCRQuote(q, []byte("stale"), mfr.Public(), expected); !errors.Is(err, core.ErrQuote) {
		t.Error("stale nonce accepted")
	}
	bad := map[int][32]byte{0: cryptoutil.Hash([]byte("evil"))}
	if err := VerifyPCRQuote(q, nonce, mfr.Public(), bad); !errors.Is(err, core.ErrQuote) {
		t.Error("wrong PCR value accepted")
	}
	other := cryptoutil.NewSigner("other-mfr")
	if err := VerifyPCRQuote(q, nonce, other.Public(), expected); !errors.Is(err, core.ErrQuote) {
		t.Error("wrong manufacturer accepted")
	}
	if _, err := tp.Quote([]int{99}, nonce); !errors.Is(err, ErrBadPCR) {
		t.Errorf("quote of bad pcr: got %v", err)
	}
	// Tampered value list.
	q.Values[0] = cryptoutil.Hash([]byte("forged"))
	if err := VerifyPCRQuote(q, nonce, mfr.Public(), nil); !errors.Is(err, core.ErrQuote) {
		t.Error("tampered quote accepted")
	}
}

func TestSealUnsealBoundToPCRState(t *testing.T) {
	tp, _ := newTestTPM()
	_ = tp.Extend(7, cryptoutil.Hash([]byte("good-os")))
	blob, err := tp.Seal([]int{7}, []byte("disk-encryption-key"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.Unseal(blob)
	if err != nil {
		t.Fatalf("unseal in same config: %v", err)
	}
	if string(got) != "disk-encryption-key" {
		t.Errorf("unseal = %q", got)
	}
	// Boot a different OS: PCR changes, unseal must fail (BitLocker).
	_ = tp.Extend(7, cryptoutil.Hash([]byte("evil-os")))
	if _, err := tp.Unseal(blob); !errors.Is(err, ErrUnseal) {
		t.Errorf("unseal after PCR change: got %v, want ErrUnseal", err)
	}
	if _, err := tp.Unseal(nil); !errors.Is(err, ErrUnseal) {
		t.Errorf("empty blob: got %v", err)
	}
	if _, err := tp.Unseal([]byte{5, 1}); !errors.Is(err, ErrUnseal) {
		t.Errorf("truncated blob: got %v", err)
	}
}

func TestSealDifferentTPMsDoNotShareSecrets(t *testing.T) {
	tp1, _ := newTestTPM()
	mfr := cryptoutil.NewSigner("tpm-manufacturer")
	tp2 := New("other-device", mfr)
	blob, err := tp1.Seal([]int{0}, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp2.Unseal(blob); err == nil {
		t.Error("blob sealed on one TPM unsealed on another")
	}
}

func TestLateLaunchIdentity(t *testing.T) {
	tp, _ := newTestTPM()
	code := []byte("pal-code")
	got, err := tp.LateLaunch(code)
	if err != nil {
		t.Fatal(err)
	}
	if got != ExpectedLateLaunchPCR(code) {
		t.Error("late-launch PCR differs from verifier expectation")
	}
	v, _ := tp.PCRValue(LateLaunchPCR)
	if v != got {
		t.Error("PCR17 not updated")
	}
	// A legacy OS cannot reproduce the value by plain extends from zero.
	tp2, _ := newTestTPM()
	_ = tp2.Extend(LateLaunchPCR, cryptoutil.Hash(code))
	v2, _ := tp2.PCRValue(LateLaunchPCR)
	if v2 == got {
		t.Error("plain extend reproduced the dynamic-launch value")
	}
}

// --- substrate tests ---

func newTestSubstrate() (*Substrate, *cryptoutil.Signer) {
	tp, mfr := newTestTPM()
	return NewSubstrate(tp), mfr
}

func TestSubstrateProperties(t *testing.T) {
	s, _ := newTestSubstrate()
	p := s.Properties()
	if p.ConcurrentTrusted {
		t.Error("late launch must not claim concurrent trusted domains")
	}
	if !p.SecureLaunch || !p.Attestation {
		t.Error("TPM substrate must claim launch + attestation")
	}
	if s.Name() != "tpm-latelaunch" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestPALIsolationFromLegacy(t *testing.T) {
	s, _ := newTestSubstrate()
	pal, err := s.CreateDomain(core.DomainSpec{Name: "pal", Code: []byte("p"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	os1, err := s.CreateDomain(core.DomainSpec{Name: "os1", Code: []byte("o1")})
	if err != nil {
		t.Fatal(err)
	}
	os2, err := s.CreateDomain(core.DomainSpec{Name: "os2", Code: []byte("o2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "pal"}); !errors.Is(err, core.ErrDomainExists) {
		t.Errorf("duplicate: %v", err)
	}
	palSecret := []byte("PAL-KEY-MATERIAL")
	osSecret := []byte("OS1-BROWSER-COOKIES")
	if err := pal.Write(0, palSecret); err != nil {
		t.Fatal(err)
	}
	if err := os1.Write(0, osSecret); err != nil {
		t.Fatal(err)
	}
	// Legacy compromise sees all legacy memory but never PAL memory.
	var all []byte
	for _, v := range os2.CompromiseView() {
		all = append(all, v...)
	}
	if !bytes.Contains(all, osSecret) {
		t.Error("legacy compromise view missing sibling legacy memory")
	}
	if bytes.Contains(all, palSecret) {
		t.Error("legacy compromise view contains PAL memory")
	}
	// PAL compromise sees only itself.
	var palView []byte
	for _, v := range pal.CompromiseView() {
		palView = append(palView, v...)
	}
	if !bytes.Contains(palView, palSecret) || bytes.Contains(palView, osSecret) {
		t.Error("PAL compromise view wrong")
	}
}

func TestSessionSerializationAccounting(t *testing.T) {
	s, _ := newTestSubstrate()
	a, _ := s.CreateDomain(core.DomainSpec{Name: "a", Code: []byte("a"), Trusted: true})
	b, _ := s.CreateDomain(core.DomainSpec{Name: "b", Code: []byte("b"), Trusted: true})
	_ = a.Write(0, []byte("x"))
	_ = b.Write(0, []byte("y")) // would preempt a's session if still open
	total, _ := s.Sessions()
	if total != 2 {
		t.Errorf("sessions = %d, want 2", total)
	}
}

func TestAnchorQuoteAndSeal(t *testing.T) {
	s, mfr := newTestSubstrate()
	pal, _ := s.CreateDomain(core.DomainSpec{Name: "pal", Code: []byte("good"), Trusted: true})
	osd, _ := s.CreateDomain(core.DomainSpec{Name: "os", Code: []byte("legacy")})
	anchor := s.Anchor()
	if anchor.AnchorKind() != "tpm" {
		t.Errorf("kind = %q", anchor.AnchorKind())
	}
	nonce := []byte("n1")
	q, err := anchor.Quote(pal, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQuote(q, nonce, mfr.Public(), pal.Measurement()); err != nil {
		t.Errorf("PAL quote invalid: %v", err)
	}
	if _, err := anchor.Quote(osd, nonce); !errors.Is(err, core.ErrRefused) {
		t.Errorf("quoting legacy domain: got %v", err)
	}
	// Seal to PAL identity; a different PAL cannot unseal.
	blob, err := anchor.Seal(pal, []byte("pal-secret"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := anchor.Unseal(pal, blob)
	if err != nil || string(got) != "pal-secret" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
	other, _ := s.CreateDomain(core.DomainSpec{Name: "pal2", Code: []byte("evil"), Trusted: true})
	if _, err := anchor.Unseal(other, blob); !errors.Is(err, ErrUnseal) {
		t.Errorf("cross-PAL unseal: got %v", err)
	}
}

func TestSubstrateDomainLifecycle(t *testing.T) {
	s, _ := newTestSubstrate()
	d, _ := s.CreateDomain(core.DomainSpec{Name: "d", Code: []byte("c"), MemPages: 2})
	if d.MemSize() != 8192 {
		t.Errorf("MemSize = %d", d.MemSize())
	}
	if err := d.Write(8190, []byte("abc")); err == nil {
		t.Error("out-of-range write succeeded")
	}
	if err := d.Write(10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(10, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, 1); err == nil {
		t.Error("read after destroy succeeded")
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "d"}); err != nil {
		t.Errorf("recreate after destroy: %v", err)
	}
}

func TestNVCounterMonotonicAndNamed(t *testing.T) {
	tp, _ := newTestTPM()
	a := tp.NVCounter("vpfs-root")
	b := tp.NVCounter("other")
	if again := tp.NVCounter("vpfs-root"); again != a {
		t.Error("same index returned a different counter")
	}
	v, err := a.Increment()
	if err != nil || v != 1 {
		t.Fatalf("increment = %d, %v", v, err)
	}
	if v, _ := a.Increment(); v != 2 {
		t.Errorf("second increment = %d", v)
	}
	if v, _ := b.Value(); v != 0 {
		t.Errorf("independent counter moved: %d", v)
	}
	if v, _ := a.Value(); v != 2 {
		t.Errorf("value = %d", v)
	}
}
