package attest

import (
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/tpm"
)

func chainOf(vendor *cryptoutil.Signer) []Stage {
	return []Stage{
		SignStage(vendor, "bootloader", []byte("bl-1.0")),
		SignStage(vendor, "kernel", []byte("krn-5.4")),
		SignStage(vendor, "system", []byte("sys-2.1")),
	}
}

func TestSecureBootAcceptsSignedChain(t *testing.T) {
	vendor := cryptoutil.NewSigner("platform-vendor")
	booted, err := SecureBoot(vendor.Public(), chainOf(vendor))
	if err != nil {
		t.Fatalf("signed chain refused: %v", err)
	}
	if len(booted) != 3 || booted[2] != "system" {
		t.Errorf("booted = %v", booted)
	}
}

func TestSecureBootRefusesTamperedStage(t *testing.T) {
	vendor := cryptoutil.NewSigner("platform-vendor")
	chain := chainOf(vendor)
	chain[1].Code = []byte("krn-5.4-ROOTKIT")
	booted, err := SecureBoot(vendor.Public(), chain)
	if !errors.Is(err, ErrRefusedBoot) {
		t.Fatalf("tampered stage: got %v, want ErrRefusedBoot", err)
	}
	// The machine stops exactly at the bad stage.
	if len(booted) != 1 || booted[0] != "bootloader" {
		t.Errorf("booted before refusal = %v", booted)
	}
}

func TestSecureBootRefusesUnsigned(t *testing.T) {
	vendor := cryptoutil.NewSigner("platform-vendor")
	chain := []Stage{{Name: "custom-os", Code: []byte("my-hobby-kernel")}}
	if _, err := SecureBoot(vendor.Public(), chain); !errors.Is(err, ErrRefusedBoot) {
		t.Errorf("unsigned stage: got %v", err)
	}
}

func TestAuthenticatedBootRunsEverythingAndLogs(t *testing.T) {
	vendor := cryptoutil.NewSigner("platform-vendor")
	mfr := cryptoutil.NewSigner("tpm-mfr")
	tp := tpm.New("dev", mfr)
	chain := chainOf(vendor)
	chain[1].Code = []byte("my-custom-kernel") // unsigned/modified: still boots
	chain[1].Signature = nil
	log, err := AuthenticatedBoot(tp, 0, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Entries) != 3 {
		t.Fatalf("log entries = %d", len(log.Entries))
	}
	// The log replay matches the PCR, so the quote verifies truthfully.
	nonce := []byte("n")
	q, err := tp.Quote([]int{0}, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBootLog(q, nonce, mfr.Public(), log); err != nil {
		t.Errorf("truthful log rejected: %v", err)
	}
	// A doctored log (hide the custom kernel) fails verification.
	forged := log
	forged.Entries = append([]BootLogEntry(nil), log.Entries...)
	forged.Entries[1].Measurement = Stage{Code: []byte("krn-5.4")}.Measurement()
	if err := VerifyBootLog(q, nonce, mfr.Public(), forged); !errors.Is(err, core.ErrQuote) {
		t.Error("doctored boot log accepted")
	}
}

func TestAuthenticatedBootBadPCR(t *testing.T) {
	mfr := cryptoutil.NewSigner("tpm-mfr")
	tp := tpm.New("dev", mfr)
	if _, err := AuthenticatedBoot(tp, 99, chainOf(cryptoutil.NewSigner("v"))); !errors.Is(err, tpm.ErrBadPCR) {
		t.Errorf("bad pcr: got %v", err)
	}
}

func TestReplayLogMatchesExtendSemantics(t *testing.T) {
	mfr := cryptoutil.NewSigner("tpm-mfr")
	tp := tpm.New("dev", mfr)
	chain := chainOf(cryptoutil.NewSigner("v"))
	log, err := AuthenticatedBoot(tp, 3, chain)
	if err != nil {
		t.Fatal(err)
	}
	pcr, _ := tp.PCRValue(3)
	if ReplayLog(log) != pcr {
		t.Error("log replay does not reproduce the PCR")
	}
}

// quoteFixture builds a verifier plus a genuine quote for "good-code".
func quoteFixture(t *testing.T) (*Verifier, core.Quote, *cryptoutil.Signer, []byte) {
	t.Helper()
	vendor := cryptoutil.NewSigner("intel")
	device := cryptoutil.NewSigner("cpu-7")
	cert := core.IssueVendorCert(vendor, device.Public())
	v := NewVerifier("test")
	v.TrustVendor("sgx-qe", vendor.Public())
	v.AllowCode([]byte("good-code"), "anonymizer-v1")
	nonce := v.Challenge()
	q := core.SignQuote("sgx-qe", cryptoutil.Hash([]byte("good-code")), nonce, device, cert)
	return v, q, device, nonce
}

func TestVerifierAcceptsGenuineQuote(t *testing.T) {
	v, q, _, _ := quoteFixture(t)
	name, err := v.Check(q)
	if err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	if name != "anonymizer-v1" {
		t.Errorf("name = %q", name)
	}
}

func TestVerifierRejectsReplay(t *testing.T) {
	v, q, _, _ := quoteFixture(t)
	if _, err := v.Check(q); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Check(q); !errors.Is(err, core.ErrQuote) {
		t.Errorf("replayed quote: got %v", err)
	}
}

func TestVerifierRejectsUnknownVendorAndMeasurement(t *testing.T) {
	v, q, device, _ := quoteFixture(t)
	// Unknown anchor kind.
	q2 := q
	q2.AnchorKind = "mystery"
	if _, err := v.Check(q2); !errors.Is(err, core.ErrQuote) {
		t.Errorf("unknown anchor kind: got %v", err)
	}
	// Unknown measurement: valid chain, but not on the allow list.
	vendor := cryptoutil.NewSigner("intel")
	cert := core.IssueVendorCert(vendor, device.Public())
	nonce := v.Challenge()
	qEvil := core.SignQuote("sgx-qe", cryptoutil.Hash([]byte("TAMPERED")), nonce, device, cert)
	if _, err := v.Check(qEvil); !errors.Is(err, ErrUnknownMeasurement) {
		t.Errorf("unknown measurement: got %v", err)
	}
}

func TestVerifierRejectsEmulation(t *testing.T) {
	// The paper: "Without a secret, everything about the platform is
	// known, so a complete software emulation is possible. ... But if the
	// secret is only available to trusted components ... proof of access
	// to the secret could not be provided by an imposter."
	v, _, _, _ := quoteFixture(t)
	imposter := cryptoutil.NewSigner("emulator")
	nonce := v.Challenge()
	forged := core.SignQuote("sgx-qe", cryptoutil.Hash([]byte("good-code")), nonce, imposter,
		core.IssueVendorCert(imposter, imposter.Public()))
	if _, err := v.Check(forged); !errors.Is(err, core.ErrQuote) {
		t.Errorf("software emulation accepted: got %v", err)
	}
}

func TestVerifierStaleNonce(t *testing.T) {
	v, q, device, _ := quoteFixture(t)
	_ = q
	vendor := cryptoutil.NewSigner("intel")
	cert := core.IssueVendorCert(vendor, device.Public())
	// Nonce the verifier never issued.
	forged := core.SignQuote("sgx-qe", cryptoutil.Hash([]byte("good-code")), []byte("made-up"), device, cert)
	if _, err := v.Check(forged); !errors.Is(err, core.ErrQuote) {
		t.Errorf("unissued nonce: got %v", err)
	}
}

func TestEndToEndWithSubstrateAnchors(t *testing.T) {
	// The same Verifier handles quotes from ALL substrate anchor kinds —
	// the unified-interface property applied to attestation.
	mfr := cryptoutil.NewSigner("tpm-mfr")
	tp := tpm.New("dev", mfr)
	sub := tpm.NewSubstrate(tp)
	pal, err := sub.CreateDomain(core.DomainSpec{Name: "pal", Code: []byte("pal-code"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier("e2e")
	v.TrustVendor("tpm", mfr.Public())
	v.AllowMeasurement(pal.Measurement(), "pal-v1")
	nonce := v.Challenge()
	q, err := sub.Anchor().Quote(pal, nonce)
	if err != nil {
		t.Fatal(err)
	}
	name, err := v.Check(q)
	if err != nil || name != "pal-v1" {
		t.Errorf("end-to-end = %q, %v", name, err)
	}
}
