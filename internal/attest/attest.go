// Package attest implements launch policies and remote attestation
// (§II-D): secure booting ("the machine will refuse to run improperly
// signed software"), authenticated booting ("no signature checks are
// performed and no code is rejected. The TPM registers merely form a
// cryptographic boot log that can later be verified"), and the
// challenge-response protocol remote verifiers run against a trust
// anchor's quotes.
package attest

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/tpm"
)

// Errors.
var (
	// ErrRefusedBoot is returned by secure boot when a stage's signature
	// fails: the machine refuses to run it.
	ErrRefusedBoot = errors.New("attest: secure boot refused unsigned or tampered stage")

	// ErrUnknownMeasurement is returned when a verifier sees a quote for
	// code it has no golden measurement for.
	ErrUnknownMeasurement = errors.New("attest: measurement not in verifier policy")
)

// Stage is one element of a boot chain: boot loader, kernel, system
// services, and so on.
type Stage struct {
	Name string
	Code []byte
	// Signature is the platform vendor's signature over Code; secure boot
	// demands it, authenticated boot ignores it.
	Signature []byte
}

// Measurement returns the stage's code hash.
func (s Stage) Measurement() [32]byte {
	return cryptoutil.Hash(s.Code)
}

// SignStage produces a vendor-signed stage.
func SignStage(vendor *cryptoutil.Signer, name string, code []byte) Stage {
	return Stage{Name: name, Code: append([]byte(nil), code...), Signature: vendor.Sign(code)}
}

// SecureBoot runs the secure-boot launch policy: starting from the
// unchangeable ROM, each stage's signature is verified against the vendor
// key before it executes. The returned slice lists the stages that ran;
// on failure it stops at (and excludes) the first bad stage.
func SecureBoot(vendorPub ed25519.PublicKey, chain []Stage) ([]string, error) {
	booted := make([]string, 0, len(chain))
	for _, st := range chain {
		if !cryptoutil.Verify(vendorPub, st.Code, st.Signature) {
			return booted, fmt.Errorf("stage %q: %w", st.Name, ErrRefusedBoot)
		}
		booted = append(booted, st.Name)
	}
	return booted, nil
}

// BootLogEntry is one measured stage in an authenticated boot.
type BootLogEntry struct {
	Name        string
	Measurement [32]byte
}

// BootLog is the measurement log an authenticated boot leaves behind. It
// is untrusted data; the TPM quote over the PCR is what authenticates it.
type BootLog struct {
	PCR     int
	Entries []BootLogEntry
}

// AuthenticatedBoot runs the authenticated-boot launch policy: the CRTM
// measures every stage into the given PCR and the machine runs everything
// — "users have the freedom to run arbitrary code on their hardware".
func AuthenticatedBoot(t *tpm.TPM, pcr int, chain []Stage) (BootLog, error) {
	log := BootLog{PCR: pcr}
	for _, st := range chain {
		m := st.Measurement()
		if err := t.Extend(pcr, m); err != nil {
			return log, fmt.Errorf("measure stage %q: %w", st.Name, err)
		}
		log.Entries = append(log.Entries, BootLogEntry{Name: st.Name, Measurement: m})
	}
	return log, nil
}

// ReplayLog recomputes the PCR value the log's entries should have
// produced, starting from a reset register. A verifier compares this to a
// quoted PCR value to authenticate the log.
func ReplayLog(log BootLog) [32]byte {
	var pcr [32]byte
	for _, e := range log.Entries {
		pcr = cryptoutil.Hash(pcr[:], e.Measurement[:])
	}
	return pcr
}

// VerifyBootLog checks a quote over the boot-log PCR against the log: the
// quote must be fresh and signed by a genuine TPM, and the log replay must
// reproduce the quoted value. On success the verifier knows exactly which
// software stack booted.
func VerifyBootLog(q tpm.PCRQuote, nonce []byte, manufacturerPub ed25519.PublicKey, log BootLog) error {
	want := ReplayLog(log)
	return tpm.VerifyPCRQuote(q, nonce, manufacturerPub, map[int][32]byte{log.PCR: want})
}

// Verifier is the remote end of the attestation protocol: it holds vendor
// keys it trusts and golden measurements it accepts. It issues single-use
// nonces and checks quotes against both.
type Verifier struct {
	mu      sync.Mutex
	vendors map[string]ed25519.PublicKey // anchor kind -> vendor key
	golden  map[[32]byte]string          // measurement -> friendly name
	nonces  map[string]bool              // outstanding nonces
	prng    *cryptoutil.PRNG
}

// NewVerifier creates a verifier with a deterministic nonce source (seeded
// for reproducible experiments; a production verifier would use real
// randomness).
func NewVerifier(seed string) *Verifier {
	return &Verifier{
		vendors: make(map[string]ed25519.PublicKey),
		golden:  make(map[[32]byte]string),
		nonces:  make(map[string]bool),
		prng:    cryptoutil.NewPRNG("verifier:" + seed),
	}
}

// TrustVendor registers a vendor key for an anchor kind (e.g. "sgx-qe" →
// Intel's key).
func (v *Verifier) TrustVendor(anchorKind string, pub ed25519.PublicKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vendors[anchorKind] = append(ed25519.PublicKey(nil), pub...)
}

// AllowMeasurement registers a golden measurement (e.g. the audited
// anonymizer build the utility published, §III-C).
func (v *Verifier) AllowMeasurement(meas [32]byte, name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.golden[meas] = name
}

// AllowCode is AllowMeasurement for a raw code image.
func (v *Verifier) AllowCode(code []byte, name string) {
	v.AllowMeasurement(cryptoutil.Hash(code), name)
}

// Challenge issues a fresh single-use nonce.
func (v *Verifier) Challenge() []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := v.prng.Bytes(16)
	v.nonces[string(n)] = true
	return n
}

// Check verifies a quote end to end: known vendor for its anchor kind,
// valid signature chain, our outstanding nonce (consumed — replays fail),
// and a measurement on the allow list. It returns the friendly name of
// the attested code.
func (v *Verifier) Check(q core.Quote) (string, error) {
	v.mu.Lock()
	vendor, okV := v.vendors[q.AnchorKind]
	name, okM := v.golden[q.Measurement]
	okN := v.nonces[string(q.Nonce)]
	if okN {
		delete(v.nonces, string(q.Nonce)) // single use
	}
	v.mu.Unlock()
	if !okV {
		return "", fmt.Errorf("anchor kind %q: no trusted vendor: %w", q.AnchorKind, core.ErrQuote)
	}
	if !okN {
		return "", fmt.Errorf("nonce not outstanding (replay?): %w", core.ErrQuote)
	}
	if err := core.VerifyQuote(q, q.Nonce, vendor, q.Measurement); err != nil {
		return "", err
	}
	if !okM {
		return "", fmt.Errorf("measurement %x: %w", q.Measurement[:4], ErrUnknownMeasurement)
	}
	return name, nil
}
