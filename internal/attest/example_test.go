package attest_test

import (
	"errors"
	"fmt"

	"lateral/internal/attest"
	"lateral/internal/cryptoutil"
	"lateral/internal/tpm"
)

// Example contrasts the two launch policies of §II-D on the same tampered
// boot chain: secure boot refuses to run it; authenticated boot runs it
// and produces a truthful, verifiable log.
func Example() {
	vendor := cryptoutil.NewSigner("platform-vendor")
	mfr := cryptoutil.NewSigner("tpm-manufacturer")
	chain := []attest.Stage{
		attest.SignStage(vendor, "bootloader", []byte("bl-1.0")),
		{Name: "kernel", Code: []byte("my-custom-kernel")}, // unsigned
	}

	// Secure boot: the machine refuses unsigned software.
	_, err := attest.SecureBoot(vendor.Public(), chain)
	fmt.Println("secure boot refused:", errors.Is(err, attest.ErrRefusedBoot))

	// Authenticated boot: everything runs; the TPM records what did.
	t := tpm.New("example-device", mfr)
	log, err := attest.AuthenticatedBoot(t, 0, chain)
	if err != nil {
		fmt.Println(err)
		return
	}
	nonce := []byte("verifier-nonce")
	quote, err := t.Quote([]int{0}, nonce)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("truthful log verifies:", attest.VerifyBootLog(quote, nonce, mfr.Public(), log) == nil)

	// Lying about the custom kernel fails verification.
	log.Entries[1].Measurement = attest.Stage{Code: []byte("stock-kernel")}.Measurement()
	fmt.Println("doctored log verifies:", attest.VerifyBootLog(quote, nonce, mfr.Public(), log) == nil)
	// Output:
	// secure boot refused: true
	// truthful log verifies: true
	// doctored log verifies: false
}
