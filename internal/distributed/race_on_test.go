//go:build race

package distributed

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in a plain build.
const raceEnabled = true
