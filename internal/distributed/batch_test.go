package distributed

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lateral/internal/core"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	readings := []Reading{
		{Op: "put", Data: []byte("a=1")},
		{Op: "put", Data: []byte("b=2")},
		{Op: "get", Data: []byte("a")},
		{Op: "noop"},
	}
	payload, err := EncodeBatch(readings)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(readings) {
		t.Fatalf("decoded %d readings, want %d", len(got), len(readings))
	}
	for i := range readings {
		if got[i].Op != readings[i].Op || !bytes.Equal(got[i].Data, readings[i].Data) {
			t.Fatalf("reading %d: got %+v want %+v", i, got[i], readings[i])
		}
	}
	// The codec admits exactly one encoding: reencode is the identity.
	again, err := ReencodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, payload) {
		t.Fatal("reencoded batch differs from canonical encoding")
	}
}

func TestBatchCodecRejects(t *testing.T) {
	valid, err := EncodeBatch([]Reading{{Op: "put", Data: []byte("a=1")}, {Op: "get", Data: []byte("a")}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short count", []byte{0}},
		{"zero count", []byte{0, 0}},
		{"count beyond max", []byte{0xff, 0xff}},
		{"count not backed", []byte{0, 2, 0, 1, 'x', 0, 0}},
		{"truncated at op length", valid[:3]},
		{"truncated mid op", valid[:5]},
		{"truncated at data length", valid[:7]},
		{"truncated mid data", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte{}, valid...), 0)},
		{"reserved op", []byte{0, 1, 0, 5, 0, 'p', 'i', 'n', 'g', 0, 0}},
	}
	for _, tc := range cases {
		if _, err := DecodeBatch(tc.b); !errors.Is(err, ErrTransport) {
			t.Errorf("%s: DecodeBatch = %v, want ErrTransport", tc.name, err)
		}
		if _, err := ReencodeBatch(tc.b); err == nil {
			t.Errorf("%s: ReencodeBatch accepted invalid input", tc.name)
		}
	}
	// Encode-side validation mirrors the decoder.
	if _, err := EncodeBatch(nil); !errors.Is(err, ErrTransport) {
		t.Errorf("EncodeBatch(nil) = %v, want ErrTransport", err)
	}
	if _, err := EncodeBatch([]Reading{{Op: PingOp}}); !errors.Is(err, ErrTransport) {
		t.Errorf("EncodeBatch(reserved op) = %v, want ErrTransport", err)
	}
	if _, err := EncodeBatch(make([]Reading, MaxBatchReadings+1)); !errors.Is(err, ErrTransport) {
		t.Errorf("EncodeBatch(oversized) = %v, want ErrTransport", err)
	}
}

func TestBatchEndToEnd(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	readings := []Reading{
		{Op: "put", Data: []byte("alpha=1")},
		{Op: "put", Data: []byte("beta=2")},
		{Op: "get", Data: []byte("alpha")},
		{Op: "get", Data: []byte("missing")}, // per-reading failure
		{Op: "get", Data: []byte("beta")},
	}
	results, err := f.stub.HandleBatch(core.Envelope{}, readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(readings) {
		t.Fatalf("got %d results for %d readings", len(results), len(readings))
	}
	for i := 0; i < 2; i++ {
		if results[i].Err != nil || results[i].Msg.Op != "ok" {
			t.Fatalf("put %d: %+v", i, results[i])
		}
	}
	if results[2].Err != nil || string(results[2].Msg.Data) != "1" {
		t.Fatalf("get alpha: %+v", results[2])
	}
	if !errors.Is(results[3].Err, ErrRemote) || !strings.Contains(results[3].Err.Error(), "no such doc") {
		t.Fatalf("get missing: want wrapped remote error, got %v", results[3].Err)
	}
	if results[4].Err != nil || string(results[4].Msg.Data) != "2" {
		t.Fatalf("get beta: %+v", results[4])
	}
	// One sealed request carried all five readings.
	if st := f.stub.Stats(); st.Issued != 1 {
		t.Fatalf("batch issued %d sealed requests, want 1", st.Issued)
	}
}

// TestBatchAmortizesAEADPasses is the headline claim: at batch=16, batched
// ingestion seals 16x fewer request records than per-reading sends —
// comfortably above the 8x floor the E23 acceptance demands.
func TestBatchAmortizesAEADPasses(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	const batch = 16
	for i := 0; i < batch; i++ {
		if _, err := f.stub.Handle(core.Envelope{Msg: core.Message{
			Op: "put", Data: []byte(fmt.Sprintf("solo-%d=1", i)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	solo := f.stub.Stats().Issued
	readings := make([]Reading, batch)
	for i := range readings {
		readings[i] = Reading{Op: "put", Data: []byte(fmt.Sprintf("batch-%d=1", i))}
	}
	if _, err := f.stub.HandleBatch(core.Envelope{}, readings, nil); err != nil {
		t.Fatal(err)
	}
	batched := f.stub.Stats().Issued - solo
	if solo != batch || batched != 1 {
		t.Fatalf("AEAD passes: %d per-reading vs %d batched, want %d vs 1", solo, batched, batch)
	}
	if ratio := float64(solo) / float64(batched); ratio < 8 {
		t.Fatalf("batch=16 amortization %.1fx below the 8x floor", ratio)
	}
}

func TestBatchCarriesBudget(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	// A batch with a live budget executes guarded; the stall reading burns
	// the shared deadline server-side and fails typed, while the fast
	// readings before it succeed.
	readings := []Reading{
		{Op: "put", Data: []byte("x=1")},
		{Op: "stall"},
	}
	results, err := f.stub.HandleBatch(core.Envelope{
		Deadline: time.Now().Add(30 * time.Millisecond),
	}, readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("fast reading failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, core.ErrDeadline) {
		t.Fatalf("stalled reading: want typed ErrDeadline, got %v", results[1].Err)
	}
}

func TestBatchSpentBudgetRefusedBeforeTransmit(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	_, err := f.stub.HandleBatch(core.Envelope{
		Deadline: time.Now().Add(-time.Millisecond),
	}, []Reading{{Op: "put", Data: []byte("x=1")}}, nil)
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("spent budget: want ErrDeadline before transmit, got %v", err)
	}
	if st := f.stub.Stats(); st.Issued != 0 {
		t.Fatalf("spent-budget batch still issued %d records", st.Issued)
	}
}

func TestBatchMalformedPayloadFailsWholeFrame(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	// Hand-built garbage batch payload through the raw call path: the
	// exporter must fail the frame with a transport-shaped remote error,
	// not crash or half-execute.
	_, err := f.stub.Handle(core.Envelope{Msg: core.Message{
		Op: BatchOp, Data: []byte{0, 3, 0, 1},
	}})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("malformed batch: want remote error, got %v", err)
	}
	// The session survives: a well-formed batch right after succeeds.
	results, err := f.stub.HandleBatch(core.Envelope{}, []Reading{{Op: "put", Data: []byte("y=2")}}, nil)
	if err != nil || results[0].Err != nil {
		t.Fatalf("session did not survive malformed batch: %v %v", err, results)
	}
}

// TestBatchIngestZeroAllocPerReading is the bench-smoke gate: the batched
// hot path — encode, seal, open, fan out, per-reading reply, decode —
// must stay at 0 allocs/op per reading (a small constant per batch,
// amortized below one across its readings).
func TestBatchIngestZeroAllocPerReading(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	const batch = 16
	// Gets of pre-loaded keys: the component handler itself is
	// allocation-free, so the measurement isolates the wire path.
	puts := make([]Reading, batch)
	readings := make([]Reading, batch)
	for i := range readings {
		puts[i] = Reading{Op: "put", Data: []byte(fmt.Sprintf("k%02d=1", i))}
		readings[i] = Reading{Op: "get", Data: []byte(fmt.Sprintf("k%02d", i))}
	}
	if _, err := f.stub.HandleBatch(core.Envelope{}, puts, nil); err != nil {
		t.Fatal(err)
	}
	var results []BatchResult
	var err error
	// Warm the pools and the interner outside the measured window.
	for i := 0; i < 8; i++ {
		if results, err = f.stub.HandleBatch(core.Envelope{}, readings, results[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		results, err = f.stub.HandleBatch(core.Envelope{}, readings, results[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if perReading := allocs / batch; perReading >= 1 {
		t.Fatalf("batch ingest allocates %.1f/op per reading (%.1f per batch of %d); the hot path must stay at 0",
			perReading, allocs, batch)
	}
}

// BenchmarkBatchIngest measures the batched hot path per reading;
// bench-smoke runs it once to catch rot.
func BenchmarkBatchIngest(b *testing.B) {
	f := newFixture(b, nil, false)
	if err := f.stub.Connect(); err != nil {
		b.Fatal(err)
	}
	const batch = 16
	puts := make([]Reading, batch)
	readings := make([]Reading, batch)
	for i := range readings {
		puts[i] = Reading{Op: "put", Data: []byte(fmt.Sprintf("k%02d=1", i))}
		readings[i] = Reading{Op: "get", Data: []byte(fmt.Sprintf("k%02d", i))}
	}
	var results []BatchResult
	var err error
	if results, err = f.stub.HandleBatch(core.Envelope{}, puts, results[:0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if results, err = f.stub.HandleBatch(core.Envelope{}, readings, results[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
