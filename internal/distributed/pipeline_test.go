package distributed

// Tests for the wire-v3 pipelining path: correlation-ID demux, mixed
// wire-version interop, orphaned and duplicated replies, and the demux
// loop under concurrent callers and network chaos (run under -race by the
// race-hotpath make target).

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// v2Handshake runs the client side of the attested handshake by hand,
// standing in for a peer built before wire v3.
func v2Handshake(t *testing.T, f *fixture, ep *netsim.Endpoint, seed string) *securechan.Session {
	t.Helper()
	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand:         cryptoutil.NewPRNG(seed),
		VerifyServer: func(ed25519.PublicKey, [32]byte, []byte) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send("cloud", client.Hello()); err != nil {
		t.Fatal(err)
	}
	if err := f.exporter.Serve(); err != nil {
		t.Fatal(err)
	}
	dg, ok := ep.Recv()
	if !ok {
		t.Fatal("no handshake response")
	}
	sess, finish, err := client.Finish(dg.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send("cloud", finish); err != nil {
		t.Fatal(err)
	}
	if err := f.exporter.Serve(); err != nil {
		t.Fatal(err)
	}
	return sess
}

// v2Call drives one wire-v2 request (no correlation flag) and returns the
// raw decrypted reply frame.
func v2Call(t *testing.T, f *fixture, ep *netsim.Endpoint, sess *securechan.Session, op string, data []byte) []byte {
	t.Helper()
	rec, err := sess.Seal(EncodeRequest(core.Span{}, 0, op, data))
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send("cloud", rec); err != nil {
		t.Fatal(err)
	}
	if err := f.exporter.Serve(); err != nil {
		t.Fatal(err)
	}
	dg, ok := ep.Recv()
	if !ok {
		t.Fatal("no reply")
	}
	plain, err := sess.Open(dg.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return plain
}

// TestMixedVersionPeers proves wire-version interop both ways on one
// exporter: a hand-rolled wire-v2 client (no correlation flag on its
// requests) gets unprefixed replies, while the v3 stub's correlation-
// tagged calls keep working against the same process — the exporter
// echoes a correlation ID if and only if the request carried one.
func TestMixedVersionPeers(t *testing.T) {
	f := newFixture(t, nil, false)
	ep := f.net.Attach("legacy")
	sess := v2Handshake(t, f, ep, "legacy-hs")

	// v2 put: the reply frame must start directly with the status byte —
	// no 8-byte correlation prefix for a request that carried none.
	reply := v2Call(t, f, ep, sess, "put", []byte("season=winter"))
	if len(reply) == 0 || reply[0] != statusOK {
		t.Fatalf("v2 put reply = % x, want leading statusOK", reply)
	}
	op, data, err := decodeCall(reply[1:])
	if err != nil || op != "ok" {
		t.Fatalf("v2 put reply body = %q %q %v", op, data, err)
	}

	// v2 get round-trips the stored value.
	reply = v2Call(t, f, ep, sess, "get", []byte("season"))
	if reply[0] != statusOK {
		t.Fatalf("v2 get status = %d", reply[0])
	}
	if _, data, err = decodeCall(reply[1:]); err != nil || string(data) != "winter" {
		t.Fatalf("v2 get = %q, %v", data, err)
	}

	// A v2 error reply is typed, still unprefixed.
	reply = v2Call(t, f, ep, sess, "get", []byte("missing"))
	if reply[0] != statusErr {
		t.Fatalf("v2 missing-doc status = %d, want statusErr", reply[0])
	}

	// The v3 stub speaks to the same exporter with correlation IDs.
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	got, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("season")})
	if err != nil || string(got.Data) != "winter" {
		t.Fatalf("v3 get after v2 put = %q, %v", got.Data, err)
	}
	if st := f.stub.Stats(); st.Issued != st.Completed || st.Inflight != 0 {
		t.Errorf("stub books unbalanced: %+v", st)
	}
}

// pipeFixture builds a stub against the fixture's exporter whose pump
// counts wire rounds and sleeps briefly first, so concurrent callers'
// requests accumulate and one serve round drains the batch.
func pipeFixture(t *testing.T, f *fixture, rtt time.Duration) (*Stub, *atomic.Int64) {
	t.Helper()
	var rounds atomic.Int64
	stub, err := NewStub(StubConfig{
		RemoteName:     "store",
		RemoteEndpoint: "cloud",
		Endpoint:       f.net.Attach("pipeline"),
		Rand:           cryptoutil.NewPRNG("pipeline-hs"),
		VerifyServer:   func(ed25519.PublicKey, [32]byte, []byte) error { return nil },
		Pump: func() error {
			if rtt > 0 {
				time.Sleep(rtt)
			}
			rounds.Add(1)
			return f.exporter.Serve()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stub, &rounds
}

// TestPipelinedCallsShareWireRounds drives concurrent callers through one
// stub and verifies the demux loop batches them: several calls ride each
// wire round, every call completes exactly once, and the in-flight
// high-water mark proves real overlap.
func TestPipelinedCallsShareWireRounds(t *testing.T) {
	f := newFixture(t, nil, false)
	stub, rounds := pipeFixture(t, f, 200*time.Microsecond)
	if err := stub.Connect(); err != nil {
		t.Fatal(err)
	}
	handshake := rounds.Load()

	const workers, per = 8, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := stub.Handle(core.Envelope{Msg: core.Message{Op: "put", Data: []byte(key + "=x")}}); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := stub.Stats()
	if st.Issued != workers*per || st.Completed != workers*per || st.Failed != 0 {
		t.Errorf("books: %+v, want %d issued = completed", st, workers*per)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiesce", st.Inflight)
	}
	if st.MaxInflight < 2 {
		t.Errorf("max inflight = %d, calls never overlapped", st.MaxInflight)
	}
	if used := rounds.Load() - handshake; used >= workers*per {
		t.Errorf("%d wire rounds for %d calls: no batching", used, workers*per)
	}
}

// holdOne swallows the first cloud→laptop datagram after Arm, keeping a
// copy the test re-injects later — a reply the network delivered too late.
type holdOne struct {
	mu    sync.Mutex
	armed bool
	held  *netsim.Datagram
}

func (h *holdOne) Arm() {
	h.mu.Lock()
	h.armed = true
	h.mu.Unlock()
}

func (h *holdOne) Held() *netsim.Datagram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.held
}

func (h *holdOne) Intercept(d netsim.Datagram) []netsim.Datagram {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.armed || d.From != "cloud" {
		return []netsim.Datagram{d}
	}
	h.armed = false
	// Deep-copy: the network releases the original's buffer after the
	// adversary returns.
	p := make([]byte, len(d.Payload))
	copy(p, d.Payload)
	h.held = &netsim.Datagram{From: d.From, To: d.To, Payload: p}
	return nil
}

// TestLateReplyDroppedAsOrphan loses a reply in flight (the caller unwinds
// with a transport error), then lets it surface during a later call: the
// demux loop must drop it as an orphan — counted, never misdelivered — and
// the later call must still complete with its own reply.
func TestLateReplyDroppedAsOrphan(t *testing.T) {
	hold := &holdOne{}
	f := newFixture(t, hold, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("k=v")}); err != nil {
		t.Fatal(err)
	}

	hold.Arm()
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("swallowed reply: err = %v, want ErrTransport", err)
	}
	held := hold.Held()
	if held == nil {
		t.Fatal("adversary held nothing")
	}
	if err := f.net.Inject(*held); err != nil {
		t.Fatal(err)
	}

	// The next call drains the stale reply first. Its correlation ID names
	// no parked caller, so it is dropped and counted; the call's own reply
	// arrives on the round after.
	got, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if err != nil || string(got.Data) != "v" {
		t.Fatalf("call after late reply = %q, %v", got.Data, err)
	}
	st := f.stub.Stats()
	if st.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", st.Orphans)
	}
	if st.Issued != st.Completed+st.Failed || st.Inflight != 0 {
		t.Errorf("books unbalanced: %+v", st)
	}
}

// dupOnce duplicates the first cloud→laptop datagram after Arm — an
// at-least-once network delivering a sealed reply twice.
type dupOnce struct {
	mu    sync.Mutex
	armed bool
}

func (u *dupOnce) Arm() {
	u.mu.Lock()
	u.armed = true
	u.mu.Unlock()
}

func (u *dupOnce) Intercept(d netsim.Datagram) []netsim.Datagram {
	u.mu.Lock()
	defer u.mu.Unlock()
	if !u.armed || d.From != "cloud" {
		return []netsim.Datagram{d}
	}
	u.armed = false
	p := make([]byte, len(d.Payload))
	copy(p, d.Payload)
	return []netsim.Datagram{d, {From: d.From, To: d.To, Payload: p}}
}

// TestDuplicateReplyFailsSession pins the replay semantics: a duplicated
// record trips the channel's strictly-increasing sequence check, which is
// indistinguishable from tampering, so the session fails closed — the call
// that drained it gets a typed error, the stub disconnects, and a
// reconnect restores service. (The duplicate is NOT an orphan: it never
// decrypts.)
func TestDuplicateReplyFailsSession(t *testing.T) {
	dup := &dupOnce{}
	f := newFixture(t, dup, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("k=v")}); err != nil {
		t.Fatal(err)
	}

	dup.Arm()
	// This call's reply is duplicated; the first copy completes it.
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")}); err != nil {
		t.Fatalf("call with duplicated reply: %v", err)
	}
	// The next call drains the stale duplicate, which cannot decrypt
	// (sequence replay) — the session fails closed.
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if !errors.Is(err, securechan.ErrReplay) {
		t.Fatalf("duplicate record: err = %v, want ErrReplay", err)
	}
	if f.stub.Connected() {
		t.Fatal("session survived a replayed record")
	}

	// Reconnect restores service. The first attempt may collide with the
	// exporter's reply to the request that died with the session (the
	// cluster layer retries exactly like this).
	for i := 0; i < 3; i++ {
		if err = f.stub.Connect(); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	got, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if err != nil || string(got.Data) != "v" {
		t.Fatalf("call after reconnect = %q, %v", got.Data, err)
	}
	if st := f.stub.Stats(); st.Issued != st.Completed+st.Failed || st.Inflight != 0 {
		t.Errorf("books unbalanced: %+v", st)
	}
}

// TestDemuxUnderChaosDelayer runs concurrent pipelined callers against a
// reordering network (the race-hotpath target runs this under -race).
// Held-back records trip the replay guard and fail sessions mid-flight;
// callers reconnect and press on. The only promises under this chaos are
// memory safety and exactly-once accounting: every issued call resolves
// exactly once and nothing stays in flight.
func TestDemuxUnderChaosDelayer(t *testing.T) {
	f := newFixture(t, netsim.NewDelayer(7, 0.2, 3), false)
	var connMu sync.Mutex
	reconnect := func() {
		connMu.Lock()
		defer connMu.Unlock()
		if !f.stub.Connected() {
			_ = f.stub.Connect() // may fail under chaos; callers retry
		}
	}
	for i := 0; i < 10; i++ {
		if err := f.stub.Connect(); err == nil {
			break
		}
	}

	const workers, per = 8, 25
	var wg sync.WaitGroup
	var ok atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := core.Message{Op: "put", Data: []byte(fmt.Sprintf("w%d-%d=x", w, i))}
				if _, err := f.stub.Handle(core.Envelope{Msg: msg}); err != nil {
					reconnect()
					continue
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()

	st := f.stub.Stats()
	if st.Issued != st.Completed+st.Failed {
		t.Errorf("exactly-once violated under chaos: %+v", st)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiesce", st.Inflight)
	}
	if ok.Load() == 0 {
		t.Error("no call ever succeeded under chaos")
	}
}
