// Package distributed extends the component model across machine
// boundaries, realizing §III-D: "Applications are no longer monolithic
// blobs of co-located functionality, but aggregates of individually
// reusable components that can even form distributed confidence domains
// across machine boundaries."
//
// The mechanism: an Exporter publishes a local component's service on the
// untrusted network behind an attested secure channel; a Stub is a local
// core.Component that proxies invocations to the remote side. To the
// caller, Ctx.Call("store", …) looks identical whether the store is a
// neighbouring domain or an SGX enclave in someone else's data center —
// the manifest changes, the component code does not.
//
// Trust is established exactly as the paper prescribes: the importer pins
// the expected code measurement of the remote component and the vendor key
// of its substrate's trust anchor; connection setup fails closed when the
// remote evidence does not match.
//
// Calls are pipelined: a Stub supports many concurrent in-flight
// invocations over one attested session. Each request carries an 8-byte
// correlation ID (wire frame v3) that the exporter echoes on the reply, so
// replies may return in any order and a single receive loop matches each
// one to the caller parked on it. See DESIGN.md "Wire format v3 and
// pipelining" for the demux state machine.
package distributed

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// Errors.
var (
	// ErrNotConnected is returned when invoking a stub before Connect.
	ErrNotConnected = errors.New("distributed: not connected")

	// ErrRemote wraps failures reported by the remote component.
	ErrRemote = errors.New("distributed: remote error")

	// ErrTransport is returned when the network loses or mangles a flight.
	ErrTransport = errors.New("distributed: transport failure")
)

// WireVersion is the request-frame version this package emits. Version 3
// added the frameCorr correlation field; v2 frames (no correlation) still
// decode, so a pre-pipelining peer interoperates per request.
const WireVersion = 3

// bufPool recycles the working buffers of the record hot path — request
// frames, sealed records, and opened plaintexts — so a steady-state call
// allocates nothing on either side of the wire. Buffers that grew beyond
// maxPooledBuf are dropped rather than pinned in the pool.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledBuf = 1 << 16

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a buffer to the pool. b, when non-nil, is the (possibly
// reallocated) slice that grew out of *p; its backing array is the one
// worth keeping.
func putBuf(p *[]byte, b []byte) {
	if b != nil {
		*p = b[:0]
	} else {
		*p = (*p)[:0]
	}
	if cap(*p) > maxPooledBuf {
		return
	}
	bufPool.Put(p)
}

// interner canonicalizes op strings decoded off the wire so the hot path
// does not allocate a fresh string per request. The map is capped: an
// adversary minting unbounded distinct ops degrades to per-call allocation,
// never unbounded memory.
type interner struct {
	mu sync.Mutex
	m  map[string]string
}

const maxInternedOps = 256

func (i *interner) intern(b []byte) string {
	i.mu.Lock()
	s, ok := i.m[string(b)] // compiler-recognized no-alloc lookup
	if !ok {
		s = string(b)
		if i.m == nil {
			i.m = make(map[string]string)
		}
		if len(i.m) < maxInternedOps {
			i.m[s] = s
		}
	}
	i.mu.Unlock()
	return s
}

// appendCall serializes (op, data) onto dst; decodeCall parses it.
func appendCall(dst []byte, op string, data []byte) []byte {
	dst = append(dst, byte(len(op)>>8), byte(len(op)))
	dst = append(dst, op...)
	return append(dst, data...)
}

func encodeCall(op string, data []byte) []byte {
	return appendCall(make([]byte, 0, 2+len(op)+len(data)), op, data)
}

func decodeCall(b []byte) (string, []byte, error) {
	return decodeCallInto(b, nil)
}

// decodeCallInto is decodeCall with an optional interner for the op
// string. The returned data slice aliases b.
func decodeCallInto(b []byte, ops *interner) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("short call frame: %w", ErrTransport)
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("truncated op: %w", ErrTransport)
	}
	var op string
	if ops != nil {
		op = ops.intern(b[2 : 2+n])
	} else {
		op = string(b[2 : 2+n])
	}
	return op, b[2+n:], nil
}

// PingOp is the reserved liveness-probe operation. The Exporter answers
// it from the channel layer without ever invoking the exported component,
// so a health check costs one sealed round trip and cannot perturb
// component state. The leading NUL keeps it out of any legitimate
// component op namespace.
const PingOp = "\x00ping"

// PongOp is the reply operation to a PingOp probe.
const PongOp = "\x00pong"

// Request frames wrap the call payload with a flags byte. The flags byte is
// the frame version: each bit gates one optional field, fields appear in
// bit order, and unknown bits are rejected (a frame from a future version
// is an error, never a misparse). Current fields:
//
//   - frameTraced: 16 bytes of telemetry span context (trace ID, span ID,
//     both big-endian) so a trace crossing the wire reassembles into one
//     causal tree on a shared recorder. Metadata only — it rides inside
//     the sealed channel and carries no payload information.
//   - frameBudget: 8 bytes of remaining call budget (big-endian
//     nanoseconds), gRPC-style: the sender transmits how much of its
//     deadline is left, the receiver re-anchors it against its own clock.
//     A relative duration crosses machines safely; absolute deadlines
//     would need synchronized clocks.
//   - frameCorr (v3): 8 bytes of caller-chosen correlation ID. The
//     exporter echoes it as the reply frame's prefix, which is what lets
//     replies complete out of order under pipelining. A request without
//     the field gets an unprefixed reply, so a v2 peer talking to a v3
//     exporter round-trips unchanged.
//   - frameTaint (v3): the invocation chain's accumulated policy taint —
//     a count byte followed by length-prefixed labels, strictly
//     increasing (sorted, deduplicated: the canonical form core's
//     MergeTaint maintains; anything else is rejected, so a frame has
//     exactly one encoding). The receiving system judges the imported
//     taint at its deliver boundary, which is what keeps a chain's
//     history enforceable across machines — a hop through the wire must
//     not launder it.
//
// A pre-budget or pre-correlation peer emits frames without those bits and
// they decode fine — the format is backward compatible by construction.
const (
	frameTraced = 1 << 0
	frameBudget = 1 << 1
	frameCorr   = 1 << 2
	frameTaint  = 1 << 3

	frameKnown = frameTraced | frameBudget | frameCorr | frameTaint
)

// Taint field bounds, matching internal/policy's rule-set bounds: a label
// a rule can confer is a label the frame can carry.
const (
	maxTaintLabels   = 16
	maxTaintLabelLen = 64
)

// Request is one decoded invocation frame.
type Request struct {
	// Span is the caller's span context; zero when the call is untraced.
	Span core.Span

	// Budget is the remaining call budget the caller granted; 0 means
	// unbounded. The receiving side anchors it to its own clock
	// (time.Now().Add(Budget)) and enforces it server-side.
	Budget time.Duration

	// Corr is the caller-chosen correlation ID echoed on the reply;
	// HasCorr distinguishes a real ID (which may be any value, zero
	// included) from a v2 frame without the field.
	Corr    uint64
	HasCorr bool

	// Taint is the chain's accumulated policy label set, sorted and
	// deduplicated; nil on an untainted chain (the field is then elided
	// from the frame entirely).
	Taint []string

	// Op and Data are the invocation payload.
	Op   string
	Data []byte
}

// EncodeRequest builds one v2 request frame (no correlation ID). Exported
// for the repo-root fuzz harness and for tooling that needs to speak the
// wire format; production callers go through Stub/Exporter, which use
// AppendRequest. A zero span and a non-positive budget each elide their
// field entirely, so pre-budget decoders keep working until a budget
// actually crosses the wire.
func EncodeRequest(sp core.Span, budget time.Duration, op string, data []byte) []byte {
	return AppendRequest(nil, Request{Span: sp, Budget: budget, Op: op, Data: data})
}

// AppendRequest appends one request frame to dst (allocation-free when dst
// has spare capacity) and returns the extended slice. Fields are emitted
// in flag-bit order; see the frame documentation above.
func AppendRequest(dst []byte, req Request) []byte {
	var flags byte
	if req.Span != (core.Span{}) {
		flags |= frameTraced
	}
	if req.Budget > 0 {
		flags |= frameBudget
	}
	if req.HasCorr {
		flags |= frameCorr
	}
	if len(req.Taint) > 0 {
		flags |= frameTaint
	}
	dst = append(dst, flags)
	if flags&frameTraced != 0 {
		dst = binary.BigEndian.AppendUint64(dst, req.Span.Trace)
		dst = binary.BigEndian.AppendUint64(dst, req.Span.ID)
	}
	if flags&frameBudget != 0 {
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Budget))
	}
	if flags&frameCorr != 0 {
		dst = binary.BigEndian.AppendUint64(dst, req.Corr)
	}
	if flags&frameTaint != 0 {
		dst = append(dst, byte(len(req.Taint)))
		for _, l := range req.Taint {
			dst = append(dst, byte(len(l)))
			dst = append(dst, l...)
		}
	}
	return appendCall(dst, req.Op, req.Data)
}

// DecodeRequest parses one request frame (see AppendRequest). Frames with
// unknown flag bits, truncated span contexts, budgets, or correlation IDs
// are rejected with ErrTransport.
func DecodeRequest(b []byte) (Request, error) {
	var req Request
	err := decodeRequestInto(b, &req, nil)
	return req, err
}

// decodeRequestInto is DecodeRequest into caller storage with an optional
// op interner. req.Data aliases b.
func decodeRequestInto(b []byte, req *Request, ops *interner) error {
	if len(b) < 1 {
		return fmt.Errorf("empty request frame: %w", ErrTransport)
	}
	flags, b := b[0], b[1:]
	if flags&^byte(frameKnown) != 0 {
		return fmt.Errorf("unknown frame version %#x: %w", flags, ErrTransport)
	}
	if flags&frameTraced != 0 {
		if len(b) < 16 {
			return fmt.Errorf("truncated span context: %w", ErrTransport)
		}
		req.Span.Trace = binary.BigEndian.Uint64(b)
		req.Span.ID = binary.BigEndian.Uint64(b[8:])
		b = b[16:]
	}
	if flags&frameBudget != 0 {
		if len(b) < 8 {
			return fmt.Errorf("truncated budget: %w", ErrTransport)
		}
		ns := binary.BigEndian.Uint64(b)
		if ns > uint64(1<<62) {
			return fmt.Errorf("budget overflow %d: %w", ns, ErrTransport)
		}
		req.Budget = time.Duration(ns)
		b = b[8:]
	}
	if flags&frameCorr != 0 {
		if len(b) < 8 {
			return fmt.Errorf("truncated correlation id: %w", ErrTransport)
		}
		req.Corr = binary.BigEndian.Uint64(b)
		req.HasCorr = true
		b = b[8:]
	}
	if flags&frameTaint != 0 {
		var err error
		req.Taint, b, err = decodeTaint(b)
		if err != nil {
			return err
		}
	}
	var err error
	req.Op, req.Data, err = decodeCallInto(b, ops)
	return err
}

// decodeTaint parses the frame's taint field. The field is canonical or
// rejected: one to maxTaintLabels labels, each one to maxTaintLabelLen
// bytes, in strictly increasing order — exactly what core.MergeTaint
// maintains, so a frame has a single valid encoding and a forged
// duplicate-or-shuffled taint set never parses.
func decodeTaint(b []byte) ([]string, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("truncated taint count: %w", ErrTransport)
	}
	n := int(b[0])
	b = b[1:]
	if n == 0 || n > maxTaintLabels {
		return nil, nil, fmt.Errorf("taint count %d out of range: %w", n, ErrTransport)
	}
	taint := make([]string, 0, n)
	prev := ""
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("truncated taint label length: %w", ErrTransport)
		}
		ln := int(b[0])
		b = b[1:]
		if ln == 0 || ln > maxTaintLabelLen {
			return nil, nil, fmt.Errorf("taint label length %d out of range: %w", ln, ErrTransport)
		}
		if len(b) < ln {
			return nil, nil, fmt.Errorf("truncated taint label: %w", ErrTransport)
		}
		l := string(b[:ln])
		b = b[ln:]
		if i > 0 && l <= prev {
			return nil, nil, fmt.Errorf("taint labels not strictly sorted: %w", ErrTransport)
		}
		prev = l
		taint = append(taint, l)
	}
	return taint, b, nil
}

// reply frames: when the request carried a correlation ID the reply is
// prefixed with the same 8 bytes; then a status byte + payload (op or
// error text). Deadline and overload failures get their own status codes
// so errors.Is(err, core.ErrDeadline) / core.ErrOverloaded keep working
// across the wire — the cluster layer routes on exactly that distinction.
// Policy refusals likewise: a remote deny rehydrates as core.ErrPolicy, a
// verdict about the request that the cluster layer must not fail over.
const (
	statusOK       = 0
	statusErr      = 1
	statusDeadline = 2
	statusOverload = 3
	statusPolicy   = 4
)

// Monitor receives stub pipelining telemetry. telemetry.Metrics implements
// it structurally (the same pattern as cluster.Monitor); a nil Monitor is
// silently replaced by a no-op.
type Monitor interface {
	// StubCall records one call at issue time together with the pipeline
	// depth observed then (in-flight calls, this one included).
	StubCall(stub string, depth int)
	// StubInflight tracks the in-flight gauge (+1 at issue, -1 at
	// completion).
	StubInflight(stub string, delta int)
	// StubOrphan records a reply whose correlation ID matched no parked
	// caller — a duplicate, an unknown ID, or a reply that arrived after
	// its caller unwound on a deadline.
	StubOrphan(stub string)
}

type nopStubMonitor struct{}

func (nopStubMonitor) StubCall(string, int)     {}
func (nopStubMonitor) StubInflight(string, int) {}
func (nopStubMonitor) StubOrphan(string)        {}

// StubStats is a snapshot of one stub's pipelining counters. Every issued
// call resolves exactly once: Issued == Completed + Failed once the stub is
// quiescent, and Inflight is the difference while it is not. The
// simulation harness checks exactly that invariant after every step.
type StubStats struct {
	// Issued counts calls that registered for a reply (refusals before
	// transmit — spent budget, not connected — are not issued).
	Issued uint64
	// Completed counts calls resolved by their matched reply.
	Completed uint64
	// Failed counts calls resolved with an error: transport loss, session
	// failure, deadline while awaiting, or a remote error status.
	Failed uint64
	// Orphans counts replies dropped because no caller was parked on their
	// correlation ID (duplicates, unknown IDs, late replies).
	Orphans uint64
	// Inflight is the current number of calls awaiting replies.
	Inflight int64
	// MaxInflight is the high-water mark of Inflight — the deepest
	// pipeline this stub has actually sustained.
	MaxInflight int64

	// Records counts sealed request records actually transmitted — the
	// AEAD passes paid on the send path. Without coalescing this equals
	// Issued; with it, concurrent calls share records and the gap is the
	// savings.
	Records uint64
	// CoalescedRecords and CoalescedSubs count coalesced records (≥ 2
	// sub-frames each) and the sub-frames they carried; the AEAD passes
	// coalescing saved is CoalescedSubs - CoalescedRecords.
	CoalescedRecords uint64
	CoalescedSubs    uint64
	// CoalesceWindow is the adaptive controller's current window;
	// CoalesceGrows/CoalesceShrinks its AIMD adaptation counts, and
	// CoalesceState its last move ("idle", "grow", "shrink", "steady").
	CoalesceWindow  int
	CoalesceGrows   uint64
	CoalesceShrinks uint64
	CoalesceState   string
}

// Exporter publishes one component of a local system on the network.
type Exporter struct {
	sys      *core.System
	target   string
	ep       *netsim.Endpoint
	identity *cryptoutil.Signer
	rand     *cryptoutil.PRNG
	clock    func() time.Time
	workers  int

	// epoch is the fleet config epoch the exporter currently serves.
	// Zero (the default) leaves admission ungated — any hello is
	// accepted, as before dynamic membership. Non-zero demands hellos
	// stamped with exactly this epoch and evicts sessions keyed at
	// older ones.
	epoch atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*sessState // peer endpoint -> session
	pendings map[string]*pendState

	ops interner

	// fault is the simulation harness's coalesce fault injector (see
	// coalesce.go); disarmed in production.
	fault coalFault
}

// pendState is a handshake in flight plus the config epoch it was gated
// at, so the session it completes into remembers its epoch.
type pendState struct {
	p     *securechan.Pending
	epoch uint64
}

// sessState is one peer's established session plus the locks that keep the
// secure channel's sequence discipline under concurrent dispatch: openMu
// serializes decryption (arrival order fixes the receive sequence), sendMu
// serializes seal+transmit so reply records hit the wire in seal (= send
// sequence) order — the peer's channel rejects reordered sequences.
type sessState struct {
	openMu sync.Mutex
	sendMu sync.Mutex
	sess   *securechan.Session
	epoch  uint64 // config epoch the session was keyed at
}

// job is one decrypted invocation awaiting execution. buf is the pooled
// buffer holding the decrypted frame; req.Data aliases raw, so the buffer
// is released only after the reply has been sealed. A sub-frame of a
// coalesced record instead points at its assembly (asm/idx): the assembly
// owns the shared decrypted buffer, and the job's reply goes into slot idx
// rather than its own sealed record.
type job struct {
	ss   *sessState
	from string
	req  Request
	buf  *[]byte
	raw  []byte
	asm  *coalAssembly
	idx  int
}

// jobPool recycles job structs across serveBatch passes. A pipelining
// client lands one job per in-flight call per wire round; without the
// pool each of those was a fresh heap allocation, which is exactly the
// allocs/op regression BENCH_e22.json showed growing with pipeline depth.
var jobPool = sync.Pool{New: func() any { return new(job) }}

// batchPool recycles the per-batch job slice (capacity included), so a
// steady pipelining load reuses one backing array per concurrent batch
// instead of regrowing it every wire round.
var batchPool = sync.Pool{New: func() any { s := make([]*job, 0, 16); return &s }}

// ExportConfig configures an Exporter.
type ExportConfig struct {
	// System hosts the exported component.
	System *core.System

	// Component is the exported component's name.
	Component string

	// Endpoint is this machine's network attachment.
	Endpoint *netsim.Endpoint

	// Identity signs handshakes (the service's TLS identity).
	Identity *cryptoutil.Signer

	// Rand seeds handshake randomness.
	Rand *cryptoutil.PRNG

	// Clock is the time source the wire budget is re-anchored against
	// (default time.Now). Simulation harnesses inject a virtual clock so
	// remote deadlines stay on the same timeline as the hosting system's.
	Clock func() time.Time

	// Workers bounds concurrent component dispatch when one Serve pass
	// finds several requests queued (default DefaultWorkers). A batch of
	// one is always executed inline on the serving goroutine. The exported
	// component itself stays serialized by core's per-component handler
	// lock; workers buy concurrency across decrypt/seal and across
	// colocated targets, and keep one slow request from convoying the
	// replies behind it.
	Workers int
}

// DefaultWorkers is the dispatch fan-out used when ExportConfig.Workers is
// unset.
const DefaultWorkers = 4

// smallBatch is the backlog size at or below which serveBatch dispatches
// inline rather than fanning out worker goroutines.
const smallBatch = 4

// NewExporter validates the config and builds the exporter. Evidence for
// remote verifiers is produced from the hosting substrate's trust anchor,
// quoting the exported component's domain bound to each handshake.
func NewExporter(cfg ExportConfig) (*Exporter, error) {
	if cfg.System == nil || cfg.Endpoint == nil || cfg.Identity == nil || cfg.Rand == nil {
		return nil, fmt.Errorf("distributed: exporter config incomplete")
	}
	if _, err := cfg.System.HandleOf(cfg.Component); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	return &Exporter{
		sys:      cfg.System,
		target:   cfg.Component,
		ep:       cfg.Endpoint,
		identity: cfg.Identity,
		rand:     cfg.Rand,
		clock:    cfg.Clock,
		workers:  cfg.Workers,
		sessions: make(map[string]*sessState),
		pendings: make(map[string]*pendState),
	}, nil
}

// SetEpoch moves the exporter to a new fleet config epoch: hellos must
// now stamp exactly this epoch, and every session or pending handshake
// keyed at an older epoch is evicted — a client holding pre-rekey keys
// cannot authenticate another record, it must re-handshake (and an
// epoch-gating pool will only hand it the new epoch after re-attesting
// it). SetEpoch(0) removes the gate without evicting anyone.
func (e *Exporter) SetEpoch(n uint64) {
	e.epoch.Store(n)
	if n == 0 {
		return
	}
	e.mu.Lock()
	for from, ss := range e.sessions {
		if ss.epoch < n {
			delete(e.sessions, from)
		}
	}
	for from, p := range e.pendings {
		if p.epoch < n {
			delete(e.pendings, from)
		}
	}
	e.mu.Unlock()
}

// Epoch returns the config epoch the exporter currently serves.
func (e *Exporter) Epoch() uint64 { return e.epoch.Load() }

// evidence quotes the exported component's domain, bound to the handshake
// transcript.
func (e *Exporter) evidence(transcript [32]byte) ([]byte, error) {
	anchor := e.sys.Substrate().Anchor()
	if anchor == nil {
		return nil, nil // substrate cannot attest; importers may still pin the identity key
	}
	h, err := e.sys.HandleOf(e.target)
	if err != nil {
		return nil, err
	}
	q, err := anchor.Quote(h, transcript[:])
	if err != nil {
		return nil, err
	}
	return q.Encode(), nil
}

// Serve processes every pending datagram on the endpoint once: handshake
// flights establish sessions, record flights carry invocations. A single
// queued datagram — the lockstep test and simulation shape — is handled
// inline and allocation-free; a deeper backlog (a pipelining client) is
// decrypted in arrival order and dispatched across at most Workers
// goroutines, with all replies on the wire before Serve returns. Tests and
// the examples call it after each client step; a real deployment would
// loop it.
func (e *Exporter) Serve() error {
	for {
		dg, ok := e.ep.Recv()
		if !ok {
			return nil
		}
		if e.ep.Pending() == 0 {
			// A hostile or garbled frame must not kill the service; drop
			// it and keep serving (fail closed per connection).
			_ = e.handle(dg)
			continue
		}
		e.serveBatch(dg)
	}
}

// serveBatch drains the backlog behind first and dispatches it. The
// channel layer — handshakes, decrypt, ping — runs sequentially in arrival
// order (the secure channel's receive sequence demands it); decrypted
// component invocations, including the sub-frames of coalesced records,
// then fan out to the worker pool.
func (e *Exporter) serveBatch(first netsim.Datagram) {
	// The batch slice travels by pointer so the accumulating collect calls
	// do not box a fresh slice header per wire round.
	jobsp := batchPool.Get().(*[]*job)
	_ = e.collect(first, jobsp)
	for {
		dg, ok := e.ep.Recv()
		if !ok {
			break
		}
		_ = e.collect(dg, jobsp)
	}
	e.dispatch(jobsp)
	batchPool.Put(jobsp)
}

// collect runs one datagram through the channel layer: handshake flights
// complete inline, record flights decrypt and append their invocation —
// or, for a coalesced record, one invocation per sub-frame — to jobs.
func (e *Exporter) collect(dg netsim.Datagram, jobs *[]*job) error {
	e.mu.Lock()
	ss := e.sessions[dg.From]
	pending := e.pendings[dg.From]
	e.mu.Unlock()
	switch {
	case ss != nil && IsCoalesced(dg.Payload):
		return e.openCoalesced(ss, dg, jobs)
	case ss != nil:
		j := jobPool.Get().(*job)
		ok, err := e.openRequest(ss, dg, j)
		if err == nil && ok {
			*jobs = append(*jobs, j)
		} else {
			jobPool.Put(j)
		}
		return err
	case pending != nil:
		return e.complete(dg, pending)
	default:
		// New connection: client hello.
		return e.hello(dg)
	}
}

// dispatch executes the collected jobs and recycles them, leaving the
// slice empty. Every reply is on the wire before it returns — Serve's
// contract with lockstep pumps.
func (e *Exporter) dispatch(jobsp *[]*job) {
	jobs := *jobsp
	switch {
	case len(jobs) == 0:
	case len(jobs) <= smallBatch || e.workers == 1:
		// A shallow batch executes inline: spawning one goroutine per job
		// costs more than it overlaps (the component handler is serialized
		// by core regardless), and it was the allocs/op bump pipelined
		// benchmarks showed at modest depths.
		for _, j := range jobs {
			_ = e.execute(j)
			*j = job{}
			jobPool.Put(j)
		}
	default:
		n := e.workers
		if n > len(jobs) {
			n = len(jobs)
		}
		// Strided partition instead of a feed channel: each worker owns
		// jobs[w], jobs[w+n], … so the fan-out allocates nothing beyond
		// the goroutines themselves.
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(jobs); i += n {
					j := jobs[i]
					_ = e.execute(j)
					*j = job{}
					jobPool.Put(j)
				}
			}(w)
		}
		wg.Wait()
	}
	*jobsp = jobs[:0]
}

// handle processes one datagram inline, start to finish.
func (e *Exporter) handle(dg netsim.Datagram) error {
	jobsp := batchPool.Get().(*[]*job)
	err := e.collect(dg, jobsp)
	e.dispatch(jobsp)
	batchPool.Put(jobsp)
	return err
}

// openRequest decrypts and decodes one record on an established session.
// It returns (false, nil) when the datagram was fully consumed at the
// channel layer (a ping, or a hello that reset the session) and
// (true, nil) with j filled when a component invocation awaits execution.
func (e *Exporter) openRequest(ss *sessState, dg netsim.Datagram, j *job) (bool, error) {
	ob := getBuf()
	ss.openMu.Lock()
	plain, err := ss.sess.OpenTo((*ob)[:0], dg.Payload)
	ss.openMu.Unlock()
	if err != nil {
		putBuf(ob, nil)
		// Not a record for this session. A peer that crashed and
		// restarted (or was failed over away and healed) reconnects
		// from the same endpoint with a fresh hello; accept that — and
		// only that — as a session reset. Garbage or corrupted records
		// are dropped with the decrypt failure preserved, so they cost
		// no handshake attempt and cannot reset a live session; a
		// replayed captured hello can at worst force a reset — a denial
		// of service the attacker already has by dropping traffic —
		// never decrypt or forge records.
		if !securechan.HelloShaped(dg.Payload) {
			return false, fmt.Errorf("distributed: undecryptable record from %s: %w", dg.From, err)
		}
		if herr := e.hello(dg); herr != nil {
			return false, fmt.Errorf("distributed: session reset from %s failed: %v (record open: %w)", dg.From, herr, err)
		}
		return false, nil
	}
	dg.Release()
	var req Request
	if derr := decodeRequestInto(plain, &req, &e.ops); derr != nil {
		putBuf(ob, plain)
		return false, derr
	}
	if req.Op == PingOp {
		// Liveness probe: answered by the channel layer itself, the
		// component never runs.
		err := e.reply(ss, dg.From, req, core.Message{Op: PongOp}, nil)
		putBuf(ob, plain)
		return false, err
	}
	j.ss, j.from, j.req, j.buf, j.raw = ss, dg.From, req, ob, plain
	return true, nil
}

// execute runs one decrypted invocation against the exported component and
// sends the sealed reply. The request's pooled buffer is released only
// after the reply is sealed, because the reply may alias the request data
// (an echo) or the decrypted frame.
func (e *Exporter) execute(j *job) error {
	if j.asm != nil {
		// A coalesced sub-frame replies into its assembly slot; the last
		// one to finish seals the single coalesced reply (see coalesce.go).
		return e.executeSub(j)
	}
	if j.req.Op == BatchOp {
		// Batched ingestion: unpack the readings and fan them into the
		// component, one sealed reply for the lot (see batch.go).
		err := e.executeBatch(j)
		putBuf(j.buf, j.raw)
		return err
	}
	env := core.Envelope{
		Msg:   core.Message{Op: j.req.Op, Data: j.req.Data},
		Span:  j.req.Span,
		Taint: j.req.Taint,
	}
	if j.req.Budget > 0 {
		// Enforce the caller's remaining budget server-side: re-anchor
		// the relative budget against the local clock and let the core
		// watchdog bound the handler. A malicious or broken client
		// cannot buy unbounded server work by omitting the field — the
		// server's own admission queue still bounds convoys. Guarded
		// delivery clones the payload: the watchdog may abandon the
		// handler, which would otherwise keep reading a pooled buffer
		// about to be reused.
		env.Deadline = e.clock().Add(j.req.Budget)
		env.Msg.Data = env.Msg.CloneData()
	}
	// An unguarded delivery borrows the decrypted buffer for the
	// synchronous duration of the handler (the DeliverEnvelope /
	// DeliverShared borrow contract) — the zero-allocation path. Either
	// way the frame's taint rides in, so the hosting system's policy
	// judges the imported chain at its deliver boundary.
	reply, herr := e.sys.DeliverEnvelope(e.target, env)
	err := e.reply(j.ss, j.from, j.req, reply, herr)
	putBuf(j.buf, j.raw)
	return err
}

// reply seals and transmits one reply frame, echoing the request's
// correlation ID when it carried one.
func (e *Exporter) reply(ss *sessState, to string, req Request, msg core.Message, herr error) error {
	fp := getBuf()
	frame := appendReplyFrame((*fp)[:0], req, msg, herr)
	rp := getBuf()
	ss.sendMu.Lock()
	rec, err := ss.sess.SealTo((*rp)[:0], frame)
	if err == nil {
		err = e.ep.Send(to, rec)
	}
	ss.sendMu.Unlock()
	putBuf(fp, frame)
	putBuf(rp, rec)
	return err
}

// complete finishes a pending handshake with the client's finish flight.
func (e *Exporter) complete(dg netsim.Datagram, pending *pendState) error {
	s, err := pending.p.Complete(dg.Payload)
	if err != nil {
		// The peer may have abandoned the old handshake and started
		// over: a well-formed hello replaces the pending handshake.
		// Anything else is dropped — with the original failure kept —
		// without burning the handshake in progress.
		if !securechan.HelloShaped(dg.Payload) {
			return fmt.Errorf("distributed: handshake finish from %s: %w", dg.From, err)
		}
		e.mu.Lock()
		delete(e.pendings, dg.From)
		e.mu.Unlock()
		if herr := e.hello(dg); herr != nil {
			return fmt.Errorf("distributed: handshake restart from %s failed: %v (finish: %w)", dg.From, herr, err)
		}
		return nil
	}
	e.mu.Lock()
	e.sessions[dg.From] = &sessState{sess: s, epoch: pending.epoch}
	delete(e.pendings, dg.From)
	e.mu.Unlock()
	return nil
}

// hello treats the datagram as a client hello: on success the peer's old
// session and pending handshake (if any) are discarded and a new pending
// handshake replaces them.
func (e *Exporter) hello(dg netsim.Datagram) error {
	cur := e.epoch.Load()
	server, err := securechan.NewServer(securechan.ServerConfig{
		Rand:        e.rand,
		Identity:    e.identity,
		Evidence:    e.evidence,
		ConfigEpoch: cur,
	})
	if err != nil {
		return err
	}
	resp, p, err := server.Respond(dg.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.sessions, dg.From)
	// The pending remembers the epoch the keys were derived at — the
	// hello's stamp, not the gate: an ungated (epoch-0) exporter accepts a
	// hello keyed ahead of it, and that session must survive the gate
	// catching up to the same epoch.
	e.pendings[dg.From] = &pendState{p: p, epoch: p.Epoch()}
	e.mu.Unlock()
	return e.ep.Send(dg.From, resp)
}

// result is one resolved call.
type result struct {
	msg core.Message
	err error
}

// waiter parks one caller until its reply (or a failure verdict) arrives.
// The channel has capacity 1 and receives exactly one send per
// registration — whoever deletes the registry entry owns the completion —
// so waiters recycle through a pool without drains or resets.
type waiter struct {
	ch chan result
}

var waiterPool = sync.Pool{New: func() any {
	return &waiter{ch: make(chan result, 1)}
}}

// Stub is the local proxy component. Load it into the importing system
// under the remote component's name; calls flow across the attested
// channel.
//
// A stub is safe for concurrent use and pipelines: any number of callers
// may be in flight over the one session at once. Senders seal and transmit
// under a short send lock; exactly one caller at a time holds the receive
// token and pumps the wire, completing whichever parked caller each reply's
// correlation ID names, until its own reply arrives and it hands the token
// on. See DESIGN.md "Wire format v3 and pipelining".
type Stub struct {
	name string
	cfg  StubConfig
	pump func() error
	mon  Monitor

	// mu guards the session identity and the waiter registry. gen
	// increments whenever the session changes (Close, Connect, failure),
	// invalidating completions aimed at a previous session's calls.
	mu        sync.Mutex
	sess      *securechan.Session
	sessEpoch uint64 // config epoch the live session was keyed at
	gen       uint64
	nextCorr  uint64
	waiters   map[uint64]*waiter

	// sendMu serializes seal+transmit so records hit the wire in send
	// sequence order (the exporter's channel rejects reordered sequences).
	sendMu sync.Mutex

	// recvTok is the receive token: capacity 1, full when no caller is
	// pumping. The holder is the demux loop.
	recvTok chan struct{}

	// coal is the flush queue concurrent senders coalesce through, and win
	// the adaptive controller sizing its drains (see coalesce.go).
	coal coalescer
	win  *WindowController
	cmon CoalesceMonitor

	// pumping is set while the token holder is inside a wire round
	// (s.step in the demux loop). A caller that submits during that
	// window self-flushes instead of waiting out the round: its record
	// still reaches the remote before the round's serve, so late
	// arrivals ride the in-flight round instead of doubling the round
	// count — coalescing must never cost wire rounds.
	pumping atomic.Bool

	ops interner

	issued      atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	orphans     atomic.Uint64
	inflight    atomic.Int64
	maxDepth    atomic.Int64
	records     atomic.Uint64
	coalRecords atomic.Uint64
	coalSubs    atomic.Uint64
}

// StubConfig configures a Stub.
type StubConfig struct {
	// RemoteName is the exported component's name (also the stub's local
	// component name so manifests read naturally).
	RemoteName string

	// RemoteEndpoint is the server machine's endpoint name.
	RemoteEndpoint string

	// Endpoint is this machine's network attachment.
	Endpoint *netsim.Endpoint

	// Rand seeds handshake randomness.
	Rand *cryptoutil.PRNG

	// VerifyServer authenticates the remote side: identity key,
	// transcript, attestation evidence. Required — distributed trust is
	// explicit, never assumed.
	VerifyServer func(idPub ed25519.PublicKey, transcript [32]byte, evidence []byte) error

	// Pump, when set, is called whenever the stub expects the remote side
	// to make progress (deliver + serve). The in-process tests wire it to
	// the exporter's Serve; a real deployment has independent processes.
	// It must tolerate concurrent invocation once callers pipeline.
	Pump func() error

	// Clock is the time source remaining budgets are measured against
	// (default time.Now). Simulation harnesses inject a virtual clock.
	Clock func() time.Time

	// Monitor receives pipelining telemetry (default: discard).
	Monitor Monitor

	// Journal, when set, receives secure-channel session lifecycle events
	// ("session-up" on an attested handshake, "session-fail" on handshake
	// or channel failure). Actor labels the events; it defaults to
	// RemoteEndpoint, and a pool admitting the stub sets it to the
	// replica's fleet/name.
	Journal EventRecorder
	Actor   string

	// Epoch, when set, supplies the fleet config epoch each handshake is
	// keyed at: Connect reads it once, stamps it into the hello, and folds
	// it into the session key schedule. A pool wires this to its handshake
	// epoch so reconnects always bind the epoch in force at that moment.
	// Nil (or a 0 return) keeps the pre-epoch wire format.
	Epoch func() uint64

	// CoalesceMax caps the adaptive coalescing window — the most
	// concurrent requests one sealed record may carry. 0 means
	// DefaultCoalesceMax; 1 disables coalescing (every request seals its
	// own plain record, the pre-coalescing wire behavior); values above
	// MaxCoalesce are clamped.
	CoalesceMax int
}

// EventRecorder is the structural journal hook (see internal/journal),
// declared here rather than imported — the same pattern as Monitor.
// Implementations must be safe for concurrent use.
type EventRecorder interface {
	RecordEvent(kind, actor, detail string, trace, span uint64)
}

// NewStub validates the config.
func NewStub(cfg StubConfig) (*Stub, error) {
	if cfg.RemoteName == "" || cfg.Endpoint == nil || cfg.Rand == nil || cfg.VerifyServer == nil {
		return nil, fmt.Errorf("distributed: stub config incomplete")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Monitor == nil {
		cfg.Monitor = nopStubMonitor{}
	}
	if cfg.Actor == "" {
		cfg.Actor = cfg.RemoteEndpoint
	}
	s := &Stub{
		name:    cfg.RemoteName,
		cfg:     cfg,
		pump:    cfg.Pump,
		mon:     cfg.Monitor,
		waiters: make(map[uint64]*waiter),
		recvTok: make(chan struct{}, 1),
		win:     NewWindowController(cfg.CoalesceMax, cfg.Clock),
		cmon:    nopCoalesceMonitor{},
	}
	if cm, ok := cfg.Monitor.(CoalesceMonitor); ok {
		s.cmon = cm
	}
	s.recvTok <- struct{}{}
	return s, nil
}

var _ core.Component = (*Stub)(nil)

// CompName returns the remote component's name.
func (s *Stub) CompName() string { return s.name }

// CompVersion marks the stub as a proxy and names the wire frame version
// it speaks, so a fleet operator can spot a mixed-version rollout from
// `lateralctl cluster` output (the version is part of the stub's measured
// code identity, exactly like shipping a different proxy binary).
func (s *Stub) CompVersion() string { return "stub-1.2+wire" + strconv.Itoa(WireVersion) }

// Init is a no-op; Connect establishes the channel.
func (s *Stub) Init(*core.Ctx) error { return nil }

// Stats returns a snapshot of the pipelining counters.
func (s *Stub) Stats() StubStats {
	ws := s.win.Stats()
	return StubStats{
		Issued:           s.issued.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Orphans:          s.orphans.Load(),
		Inflight:         s.inflight.Load(),
		MaxInflight:      s.maxDepth.Load(),
		Records:          s.records.Load(),
		CoalescedRecords: s.coalRecords.Load(),
		CoalescedSubs:    s.coalSubs.Load(),
		CoalesceWindow:   ws.Window,
		CoalesceGrows:    ws.Grows,
		CoalesceShrinks:  ws.Shrinks,
		CoalesceState:    ws.State,
	}
}

// step lets the remote side run, if a pump is wired.
func (s *Stub) step() error {
	if s.pump == nil {
		return nil
	}
	return s.pump()
}

// recvOne fetches the next datagram from the configured remote, pumping as
// needed (handshake flights only; record flights go through the demux
// loop).
func (s *Stub) recvOne() (netsim.Datagram, error) {
	if err := s.step(); err != nil {
		return netsim.Datagram{}, err
	}
	dg, ok := s.cfg.Endpoint.Recv()
	if !ok {
		return netsim.Datagram{}, fmt.Errorf("no response from %s: %w", s.cfg.RemoteEndpoint, ErrTransport)
	}
	return dg, nil
}

// Connect runs the attested handshake with the remote exporter. It may be
// called again after Close (or after the transport failed) to establish a
// fresh session; stale datagrams from the previous session are discarded
// before the handshake (so they cannot be mistaken for handshake flights)
// and again before the session is installed (so they cannot be mistaken
// for replies on it). The outcome is journaled as a session lifecycle
// event when a Journal is wired.
func (s *Stub) Connect() error {
	err := s.connect()
	s.recordSession(err)
	return err
}

// recordSession journals a session lifecycle outcome.
func (s *Stub) recordSession(err error) {
	if s.cfg.Journal == nil {
		return
	}
	if err != nil {
		s.cfg.Journal.RecordEvent("session-fail", s.cfg.Actor, err.Error(), 0, 0)
		return
	}
	s.cfg.Journal.RecordEvent("session-up", s.cfg.Actor, "", 0, 0)
}

func (s *Stub) connect() error {
	s.cfg.Endpoint.Drain()
	var epoch uint64
	if s.cfg.Epoch != nil {
		epoch = s.cfg.Epoch()
	}
	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand:         s.cfg.Rand,
		VerifyServer: s.cfg.VerifyServer,
		ConfigEpoch:  epoch,
	})
	if err != nil {
		return err
	}
	if err := s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, client.Hello()); err != nil {
		return err
	}
	dg, err := s.recvOne()
	if err != nil {
		return err
	}
	sess, finish, err := client.Finish(dg.Payload)
	if err != nil {
		return err
	}
	if err := s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, finish); err != nil {
		return err
	}
	if err := s.step(); err != nil {
		return err
	}
	// No request has been issued on the new session yet, so anything queued
	// now is leftover traffic from before it existed — e.g. a reply to a
	// request that died with the previous session, flushed by the remote
	// while the handshake was in flight. Discard it here; drained after
	// install it would be undecryptable and fail the fresh session.
	s.cfg.Endpoint.Drain()
	s.install(sess, epoch)
	return nil
}

// SessionEpoch returns the fleet config epoch the live session was keyed
// at, or 0 when disconnected (or keyed pre-epoch).
func (s *Stub) SessionEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil {
		return 0
	}
	return s.sessEpoch
}

// install swaps in a fresh session, bumping the generation and failing any
// caller still parked on the previous one.
func (s *Stub) install(sess *securechan.Session, epoch uint64) {
	s.mu.Lock()
	s.sess = sess
	s.sessEpoch = epoch
	s.gen++
	// Detach the waiter map before iterating outside the lock; when it is
	// empty, leave it in place and iterate nothing — an aliased empty map
	// would race with Handle's registration.
	var old map[uint64]*waiter
	if len(s.waiters) > 0 {
		old = s.waiters
		s.waiters = make(map[uint64]*waiter)
	}
	s.mu.Unlock()
	for _, w := range old {
		w.ch <- result{err: fmt.Errorf("stub %s: session replaced: %w", s.name, ErrNotConnected)}
	}
}

// Close drops the session; subsequent calls fail with ErrNotConnected
// until Connect succeeds again, and callers already parked for replies are
// released with the same error. The remote exporter notices on the next
// hello (session reset); no goodbye flight crosses the wire, mirroring a
// crash.
func (s *Stub) Close() {
	s.mu.Lock()
	s.sess = nil
	s.gen++
	var old map[uint64]*waiter
	if len(s.waiters) > 0 {
		old = s.waiters
		s.waiters = make(map[uint64]*waiter)
	}
	s.mu.Unlock()
	for _, w := range old {
		w.ch <- result{err: fmt.Errorf("stub %s: session closed: %w", s.name, ErrNotConnected)}
	}
}

// failSession reacts to an unrecoverable receive failure on sess — an
// undecryptable or garbled record means the channel's sequence state is
// lost for good. The session is dropped and every parked caller fails with
// the failure; the receiver's own call (ownCorr) is excluded and reported
// back so the receiver returns it directly. Returns whether the receiver's
// call was still registered (this session failure resolves it).
func (s *Stub) failSession(sess *securechan.Session, gen, ownCorr uint64, err error) bool {
	s.mu.Lock()
	if s.gen != gen {
		s.mu.Unlock()
		return false
	}
	if s.sess == sess {
		s.sess = nil
	}
	s.gen++
	var old map[uint64]*waiter
	if len(s.waiters) > 0 {
		old = s.waiters
		s.waiters = make(map[uint64]*waiter)
	}
	s.mu.Unlock()
	own := false
	for corr, w := range old {
		if corr == ownCorr {
			own = true
			continue
		}
		w.ch <- result{err: fmt.Errorf("stub %s: session failed: %w", s.name, err)}
	}
	s.recordSession(fmt.Errorf("session failed: %w", err))
	return own
}

// unregister removes a waiter registration, claiming ownership of its
// completion. False means another path (a demuxed reply, a broadcast)
// already owns it and its verdict is in — or headed to — the channel.
func (s *Stub) unregister(gen, corr uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		return false
	}
	if _, ok := s.waiters[corr]; !ok {
		return false
	}
	delete(s.waiters, corr)
	return true
}

// Connected reports whether a session is established. A true result does
// not promise the remote side is still alive — only Ping can.
func (s *Stub) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess != nil
}

// Ping runs one liveness probe over the established session. The exporter
// answers from its channel layer, so a healthy reply proves the remote
// process and the session keys, not just the network.
func (s *Stub) Ping() error {
	reply, err := s.Handle(core.Envelope{Msg: core.Message{Op: PingOp}})
	if err != nil {
		return err
	}
	if reply.Op != PongOp {
		return fmt.Errorf("ping answered with %q: %w", reply.Op, ErrTransport)
	}
	return nil
}

// Handle proxies one invocation across the channel. A deadline riding on
// the envelope becomes the frame's remaining-budget field; a call whose
// budget is already spent is refused here, before any bytes are sealed or
// transmitted — the wire is never burned on doomed work.
//
// Handle is safe for concurrent use: each call registers a correlation ID,
// transmits under the send lock, and parks until the demux loop completes
// it. The returned message's Data (when non-empty) is an owned copy the
// caller may retain.
func (s *Stub) Handle(env core.Envelope) (core.Message, error) {
	var budget time.Duration
	if !env.Deadline.IsZero() {
		budget = env.Deadline.Sub(s.cfg.Clock())
		if budget <= 0 {
			return core.Message{}, fmt.Errorf("stub %s: budget spent before transmit: %w", s.name, core.ErrDeadline)
		}
	}

	s.mu.Lock()
	sess := s.sess
	if sess == nil {
		s.mu.Unlock()
		return core.Message{}, fmt.Errorf("stub %s: %w", s.name, ErrNotConnected)
	}
	gen := s.gen
	s.nextCorr++
	corr := s.nextCorr
	w := waiterPool.Get().(*waiter)
	s.waiters[corr] = w
	s.mu.Unlock()

	depth := s.inflight.Add(1)
	for {
		max := s.maxDepth.Load()
		if depth <= max || s.maxDepth.CompareAndSwap(max, depth) {
			break
		}
	}
	s.issued.Add(1)
	s.mon.StubInflight(s.name, 1)
	s.mon.StubCall(s.name, int(depth))

	// Build the request frame into a pooled buffer and hand it to the
	// coalescer: concurrent callers behind the flush leader share one
	// sealed record (one AEAD pass for the lot), a lone caller seals a
	// plain record. Seal and send errors — including this call's own —
	// resolve through the waiters, so every outcome arrives on w.ch or is
	// demuxed like any reply.
	fp := getBuf()
	frame := AppendRequest((*fp)[:0], Request{
		Span:    env.Span,
		Budget:  budget,
		Corr:    corr,
		HasCorr: true,
		Taint:   env.Taint,
		Op:      env.Msg.Op,
		Data:    env.Msg.Data,
	})
	sub := s.submit(gen, corr, w, fp, frame)
	msg, err := s.awaitReply(sess, gen, corr, w, env.Deadline, sub)
	s.subDone(sub)
	return msg, err
}

// finish books one resolved call and recycles its waiter.
func (s *Stub) finish(w *waiter, res result) (core.Message, error) {
	if res.err == nil {
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
		if errors.Is(res.err, core.ErrDeadline) || errors.Is(res.err, core.ErrOverloaded) {
			// A shed verdict is the adaptive controller's shrink signal:
			// the pipeline was deeper than the remote side (or the budget)
			// could absorb.
			if win, changed := s.win.ObserveShed(); changed {
				s.cmon.StubCoalesceWindow(s.name, win)
			}
		}
	}
	s.inflight.Add(-1)
	s.mon.StubInflight(s.name, -1)
	waiterPool.Put(w)
	return res.msg, res.err
}

// awaitReply parks until the call resolves: either another caller's demux
// loop completes it through the waiter channel, or this caller wins the
// receive token and runs the demux loop itself.
func (s *Stub) awaitReply(sess *securechan.Session, gen, corr uint64, w *waiter, deadline time.Time, sub *pendingSub) (core.Message, error) {
	for {
		select {
		case res := <-w.ch:
			return s.finish(w, res)
		case <-s.recvTok:
			res, done := s.receive(sess, gen, corr, deadline, sub)
			s.recvTok <- struct{}{}
			if done {
				return s.finish(w, res)
			}
			// Someone else owns this call's completion; loop back to
			// collect it from the channel.
		}
	}
}

// receive is the demux loop. The caller holds the receive token. Each
// round first drains replies already queued at the endpoint — a previous
// round's pump batches replies for every request that had been sent, and
// the receiver that ran it returns as soon as its own lands, leaving the
// rest for the next token holder to collect for free. Only when the inbox
// is dry does the receiver pay for a pump round. It returns the owning
// call's verdict (done=true) or defers to a completion another path owns
// (done=false):
//
//   - this call's reply arrives → its result;
//   - a dry round (pump ran, nothing arrived) → transport loss, because a
//     lockstep pump owes each request its reply within a round;
//   - the call's deadline passes while other traffic keeps arriving → the
//     caller unwinds with ErrDeadline and its late reply, if it ever
//     lands, is dropped as an orphan;
//   - an undecryptable record → the session's sequence state is lost:
//     fail the session and broadcast to every parked caller;
//   - replies naming no parked caller (duplicates, unknown or stale IDs)
//     are counted and dropped, never misdelivered.
func (s *Stub) receive(sess *securechan.Session, gen, ownCorr uint64, deadline time.Time, sub *pendingSub) (result, bool) {
	for {
		s.mu.Lock()
		stale := s.gen != gen
		_, registered := s.waiters[ownCorr]
		s.mu.Unlock()
		if stale || !registered {
			return result{}, false
		}
		if !deadline.IsZero() && !s.cfg.Clock().Before(deadline) {
			if s.unregister(gen, ownCorr) {
				return result{err: fmt.Errorf("stub %s: budget spent awaiting reply: %w", s.name, core.ErrDeadline)}, true
			}
			return result{}, false
		}
		if sub != nil && !sub.flushed.Load() {
			// This call's frame is still queued behind the flush leader.
			// The token holder is the leader: flushing here — immediately
			// before paying for a wire round — is what coalesces every
			// frame that arrived during the previous round into one sealed
			// record. If another flusher beat us to the flag, yield until
			// it disposes of our frame: a dry round before then would be a
			// false transport verdict (the remote side owes nothing yet).
			s.flushQueue()
			if !sub.flushed.Load() {
				runtime.Gosched()
				continue
			}
		}
		// Collect already-delivered traffic before paying for a round.
		res, done, deferred, drained := s.drain(sess, gen, ownCorr)
		if done {
			return res, true
		}
		if deferred {
			return result{}, false
		}
		if drained > 0 {
			continue
		}
		// About to pay for a wire round: gather the in-flight wave, then
		// put every frame queued at the coalescer on the wire first, so
		// the round carries their replies too instead of leaving them for
		// the next token holder. pumping stays set across the round so
		// frames submitted mid-round self-flush onto the in-flight round
		// (see submit).
		s.gatherWave()
		s.flushQueue()
		s.pumping.Store(true)
		err := s.step()
		s.pumping.Store(false)
		if err != nil {
			if s.unregister(gen, ownCorr) {
				return result{err: err}, true
			}
			return result{}, false
		}
		res, done, deferred, drained = s.drain(sess, gen, ownCorr)
		if done {
			return res, true
		}
		if deferred {
			return result{}, false
		}
		if drained == 0 {
			if s.unregister(gen, ownCorr) {
				return result{err: fmt.Errorf("no response from %s: %w", s.cfg.RemoteEndpoint, ErrTransport)}, true
			}
			return result{}, false
		}
	}
}

// drain demuxes every datagram queued at the endpoint. done reports that
// the receiver's own call resolved (res is its verdict); deferred reports
// a session failure whose broadcast already resolved it elsewhere. The
// count of drained datagrams lets the caller distinguish a dry round from
// a round that made progress for other callers.
func (s *Stub) drain(sess *securechan.Session, gen, ownCorr uint64) (res result, done, deferred bool, drained int) {
	for {
		dg, ok := s.cfg.Endpoint.Recv()
		if !ok {
			return result{}, false, false, drained
		}
		drained++
		r, mine, err := s.demux(sess, gen, ownCorr, dg)
		if err != nil {
			if s.failSession(sess, gen, ownCorr, err) {
				return result{err: err}, true, false, drained
			}
			return result{}, false, true, drained
		}
		if mine {
			return r, true, false, drained
		}
	}
}

// demux opens one record and routes the reply it carries. mine reports
// that the reply resolved the receiver's own call (res is its verdict); a
// non-nil error is a session-level failure the caller must escalate.
func (s *Stub) demux(sess *securechan.Session, gen, ownCorr uint64, dg netsim.Datagram) (res result, mine bool, err error) {
	if IsCoalesced(dg.Payload) {
		return s.demuxCoalesced(sess, gen, ownCorr, dg)
	}
	ob := getBuf()
	plain, oerr := sess.OpenTo((*ob)[:0], dg.Payload)
	dg.Release()
	if oerr != nil {
		putBuf(ob, nil)
		return result{}, false, oerr
	}
	if len(plain) < 9 {
		putBuf(ob, plain)
		return result{}, false, fmt.Errorf("short reply frame: %w", ErrTransport)
	}
	corr := binary.BigEndian.Uint64(plain)
	res = s.decodeReply(plain[8:])
	putBuf(ob, plain)

	s.mu.Lock()
	var w *waiter
	if s.gen == gen {
		if ww, ok := s.waiters[corr]; ok {
			delete(s.waiters, corr)
			w = ww
		}
	}
	s.mu.Unlock()
	if w == nil {
		// Duplicate, unknown, or late (the caller already unwound on
		// its deadline): drop and count, never misdeliver.
		s.orphans.Add(1)
		s.mon.StubOrphan(s.name)
		return result{}, false, nil
	}
	if corr == ownCorr {
		return res, true, nil
	}
	w.ch <- res
	return result{}, false, nil
}

// decodeReply parses a reply frame body (after the correlation prefix).
// Everything it keeps is owned: error texts are copied by formatting and a
// non-empty payload is copied out of the pooled buffer.
func (s *Stub) decodeReply(b []byte) result {
	switch b[0] {
	case statusDeadline:
		// Rehydrate the typed error so errors.Is works across the wire.
		return result{err: fmt.Errorf("remote: %s: %w", b[1:], core.ErrDeadline)}
	case statusOverload:
		return result{err: fmt.Errorf("remote: %s: %w", b[1:], core.ErrOverloaded)}
	case statusPolicy:
		return result{err: fmt.Errorf("remote: %s: %w", b[1:], core.ErrPolicy)}
	case statusErr:
		return result{err: fmt.Errorf("%w: %s", ErrRemote, b[1:])}
	}
	op, data, err := decodeCallInto(b[1:], &s.ops)
	if err != nil {
		return result{err: err}
	}
	msg := core.Message{Op: op}
	if len(data) > 0 {
		msg.Data = append([]byte(nil), data...)
	}
	return result{msg: msg}
}
