// Package distributed extends the component model across machine
// boundaries, realizing §III-D: "Applications are no longer monolithic
// blobs of co-located functionality, but aggregates of individually
// reusable components that can even form distributed confidence domains
// across machine boundaries."
//
// The mechanism: an Exporter publishes a local component's service on the
// untrusted network behind an attested secure channel; a Stub is a local
// core.Component that proxies invocations to the remote side. To the
// caller, Ctx.Call("store", …) looks identical whether the store is a
// neighbouring domain or an SGX enclave in someone else's data center —
// the manifest changes, the component code does not.
//
// Trust is established exactly as the paper prescribes: the importer pins
// the expected code measurement of the remote component and the vendor key
// of its substrate's trust anchor; connection setup fails closed when the
// remote evidence does not match.
package distributed

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// Errors.
var (
	// ErrNotConnected is returned when invoking a stub before Connect.
	ErrNotConnected = errors.New("distributed: not connected")

	// ErrRemote wraps failures reported by the remote component.
	ErrRemote = errors.New("distributed: remote error")

	// ErrTransport is returned when the network loses or mangles a flight.
	ErrTransport = errors.New("distributed: transport failure")
)

// encodeCall serializes (op, data); decodeCall parses it.
func encodeCall(op string, data []byte) []byte {
	out := make([]byte, 0, 2+len(op)+len(data))
	out = append(out, byte(len(op)>>8), byte(len(op)))
	out = append(out, op...)
	out = append(out, data...)
	return out
}

func decodeCall(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("short call frame: %w", ErrTransport)
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("truncated op: %w", ErrTransport)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// PingOp is the reserved liveness-probe operation. The Exporter answers
// it from the channel layer without ever invoking the exported component,
// so a health check costs one sealed round trip and cannot perturb
// component state. The leading NUL keeps it out of any legitimate
// component op namespace.
const PingOp = "\x00ping"

// PongOp is the reply operation to a PingOp probe.
const PongOp = "\x00pong"

// Request frames wrap encodeCall with a flags byte. The flags byte is the
// frame version: each bit gates one optional field, fields appear in bit
// order, and unknown bits are rejected (a frame from a future version is
// an error, never a misparse). Current fields:
//
//   - frameTraced: 16 bytes of telemetry span context (trace ID, span ID,
//     both big-endian) so a trace crossing the wire reassembles into one
//     causal tree on a shared recorder. Metadata only — it rides inside
//     the sealed channel and carries no payload information.
//   - frameBudget: 8 bytes of remaining call budget (big-endian
//     nanoseconds), gRPC-style: the sender transmits how much of its
//     deadline is left, the receiver re-anchors it against its own clock.
//     A relative duration crosses machines safely; absolute deadlines
//     would need synchronized clocks.
//
// A pre-budget peer emits frames without frameBudget and they decode fine
// (budget 0 = unbounded) — the format is backward compatible by
// construction.
const (
	frameTraced = 1 << 0
	frameBudget = 1 << 1

	frameKnown = frameTraced | frameBudget
)

// Request is one decoded invocation frame.
type Request struct {
	// Span is the caller's span context; zero when the call is untraced.
	Span core.Span

	// Budget is the remaining call budget the caller granted; 0 means
	// unbounded. The receiving side anchors it to its own clock
	// (time.Now().Add(Budget)) and enforces it server-side.
	Budget time.Duration

	// Op and Data are the invocation payload.
	Op   string
	Data []byte
}

// EncodeRequest builds one request frame. Exported for the repo-root fuzz
// harness and for tooling that needs to speak the wire format; production
// callers go through Stub/Exporter. A zero span and a non-positive budget
// each elide their field entirely, so pre-budget decoders keep working
// until a budget actually crosses the wire.
func EncodeRequest(sp core.Span, budget time.Duration, op string, data []byte) []byte {
	call := encodeCall(op, data)
	var flags byte
	n := 1
	if sp != (core.Span{}) {
		flags |= frameTraced
		n += 16
	}
	if budget > 0 {
		flags |= frameBudget
		n += 8
	}
	out := make([]byte, 0, n+len(call))
	out = append(out, flags)
	if flags&frameTraced != 0 {
		out = binary.BigEndian.AppendUint64(out, sp.Trace)
		out = binary.BigEndian.AppendUint64(out, sp.ID)
	}
	if flags&frameBudget != 0 {
		out = binary.BigEndian.AppendUint64(out, uint64(budget))
	}
	return append(out, call...)
}

// DecodeRequest parses one request frame (see EncodeRequest). Frames with
// unknown flag bits, truncated span contexts, or truncated budgets are
// rejected with ErrTransport.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 1 {
		return Request{}, fmt.Errorf("empty request frame: %w", ErrTransport)
	}
	flags, b := b[0], b[1:]
	if flags&^byte(frameKnown) != 0 {
		return Request{}, fmt.Errorf("unknown frame version %#x: %w", flags, ErrTransport)
	}
	var req Request
	if flags&frameTraced != 0 {
		if len(b) < 16 {
			return Request{}, fmt.Errorf("truncated span context: %w", ErrTransport)
		}
		req.Span.Trace = binary.BigEndian.Uint64(b)
		req.Span.ID = binary.BigEndian.Uint64(b[8:])
		b = b[16:]
	}
	if flags&frameBudget != 0 {
		if len(b) < 8 {
			return Request{}, fmt.Errorf("truncated budget: %w", ErrTransport)
		}
		ns := binary.BigEndian.Uint64(b)
		if ns > uint64(1<<62) {
			return Request{}, fmt.Errorf("budget overflow %d: %w", ns, ErrTransport)
		}
		req.Budget = time.Duration(ns)
		b = b[8:]
	}
	var err error
	req.Op, req.Data, err = decodeCall(b)
	if err != nil {
		return Request{}, err
	}
	return req, nil
}

// reply frames: status byte + payload (op or error text). Deadline and
// overload failures get their own status codes so errors.Is(err,
// core.ErrDeadline) / core.ErrOverloaded keep working across the wire —
// the cluster layer routes on exactly that distinction.
const (
	statusOK       = 0
	statusErr      = 1
	statusDeadline = 2
	statusOverload = 3
)

// Exporter publishes one component of a local system on the network.
type Exporter struct {
	sys      *core.System
	target   string
	ep       *netsim.Endpoint
	identity *cryptoutil.Signer
	rand     *cryptoutil.PRNG
	clock    func() time.Time

	mu       sync.Mutex
	sessions map[string]*securechan.Session // peer endpoint -> session
	pendings map[string]*securechan.Pending
}

// ExportConfig configures an Exporter.
type ExportConfig struct {
	// System hosts the exported component.
	System *core.System

	// Component is the exported component's name.
	Component string

	// Endpoint is this machine's network attachment.
	Endpoint *netsim.Endpoint

	// Identity signs handshakes (the service's TLS identity).
	Identity *cryptoutil.Signer

	// Rand seeds handshake randomness.
	Rand *cryptoutil.PRNG

	// Clock is the time source the wire budget is re-anchored against
	// (default time.Now). Simulation harnesses inject a virtual clock so
	// remote deadlines stay on the same timeline as the hosting system's.
	Clock func() time.Time
}

// NewExporter validates the config and builds the exporter. Evidence for
// remote verifiers is produced from the hosting substrate's trust anchor,
// quoting the exported component's domain bound to each handshake.
func NewExporter(cfg ExportConfig) (*Exporter, error) {
	if cfg.System == nil || cfg.Endpoint == nil || cfg.Identity == nil || cfg.Rand == nil {
		return nil, fmt.Errorf("distributed: exporter config incomplete")
	}
	if _, err := cfg.System.HandleOf(cfg.Component); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Exporter{
		sys:      cfg.System,
		target:   cfg.Component,
		ep:       cfg.Endpoint,
		identity: cfg.Identity,
		rand:     cfg.Rand,
		clock:    cfg.Clock,
		sessions: make(map[string]*securechan.Session),
		pendings: make(map[string]*securechan.Pending),
	}, nil
}

// evidence quotes the exported component's domain, bound to the handshake
// transcript.
func (e *Exporter) evidence(transcript [32]byte) ([]byte, error) {
	anchor := e.sys.Substrate().Anchor()
	if anchor == nil {
		return nil, nil // substrate cannot attest; importers may still pin the identity key
	}
	h, err := e.sys.HandleOf(e.target)
	if err != nil {
		return nil, err
	}
	q, err := anchor.Quote(h, transcript[:])
	if err != nil {
		return nil, err
	}
	return q.Encode(), nil
}

// Serve processes every pending datagram on the endpoint once: handshake
// flights establish sessions, record flights carry invocations. Tests and
// the examples call it after each client step; a real deployment would
// loop it.
func (e *Exporter) Serve() error {
	for {
		dg, ok := e.ep.Recv()
		if !ok {
			return nil
		}
		if err := e.handle(dg); err != nil {
			// A hostile or garbled frame must not kill the service; drop
			// it and keep serving (fail closed per connection).
			continue
		}
	}
}

func (e *Exporter) handle(dg netsim.Datagram) error {
	e.mu.Lock()
	sess := e.sessions[dg.From]
	pending := e.pendings[dg.From]
	e.mu.Unlock()

	switch {
	case sess != nil:
		// Established: decrypt, invoke, reply.
		plain, err := sess.Open(dg.Payload)
		if err != nil {
			// Not a record for this session. A peer that crashed and
			// restarted (or was failed over away and healed) reconnects
			// from the same endpoint with a fresh hello; accept that — and
			// only that — as a session reset. Garbage or corrupted records
			// are dropped with the decrypt failure preserved, so they cost
			// no handshake attempt and cannot reset a live session; a
			// replayed captured hello can at worst force a reset — a denial
			// of service the attacker already has by dropping traffic —
			// never decrypt or forge records.
			if !securechan.HelloShaped(dg.Payload) {
				return fmt.Errorf("distributed: undecryptable record from %s: %w", dg.From, err)
			}
			if herr := e.hello(dg); herr != nil {
				return fmt.Errorf("distributed: session reset from %s failed: %v (record open: %w)", dg.From, herr, err)
			}
			return nil
		}
		req, err := DecodeRequest(plain)
		if err != nil {
			return err
		}
		var reply core.Message
		var herr error
		if req.Op == PingOp {
			// Liveness probe: answered by the channel layer itself, the
			// component never runs.
			reply = core.Message{Op: PongOp}
		} else {
			// Enforce the caller's remaining budget server-side: re-anchor
			// the relative budget against the local clock and let the core
			// watchdog bound the handler. A malicious or broken client
			// cannot buy unbounded server work by omitting the field — the
			// server's own admission queue still bounds convoys.
			var deadline time.Time
			if req.Budget > 0 {
				deadline = e.clock().Add(req.Budget)
			}
			reply, herr = e.sys.DeliverDeadline(e.target, core.Message{Op: req.Op, Data: req.Data}, req.Span, deadline)
		}
		var frame []byte
		switch {
		case errors.Is(herr, core.ErrDeadline):
			frame = append([]byte{statusDeadline}, []byte(herr.Error())...)
		case errors.Is(herr, core.ErrOverloaded):
			frame = append([]byte{statusOverload}, []byte(herr.Error())...)
		case herr != nil:
			frame = append([]byte{statusErr}, []byte(herr.Error())...)
		default:
			frame = append([]byte{statusOK}, encodeCall(reply.Op, reply.Data)...)
		}
		rec, err := sess.Seal(frame)
		if err != nil {
			return err
		}
		return e.ep.Send(dg.From, rec)
	case pending != nil:
		// Client finish flight.
		s, err := pending.Complete(dg.Payload)
		if err != nil {
			// The peer may have abandoned the old handshake and started
			// over: a well-formed hello replaces the pending handshake.
			// Anything else is dropped — with the original failure kept —
			// without burning the handshake in progress.
			if !securechan.HelloShaped(dg.Payload) {
				return fmt.Errorf("distributed: handshake finish from %s: %w", dg.From, err)
			}
			e.mu.Lock()
			delete(e.pendings, dg.From)
			e.mu.Unlock()
			if herr := e.hello(dg); herr != nil {
				return fmt.Errorf("distributed: handshake restart from %s failed: %v (finish: %w)", dg.From, herr, err)
			}
			return nil
		}
		e.mu.Lock()
		e.sessions[dg.From] = s
		delete(e.pendings, dg.From)
		e.mu.Unlock()
		return nil
	default:
		// New connection: client hello.
		return e.hello(dg)
	}
}

// hello treats the datagram as a client hello: on success the peer's old
// session and pending handshake (if any) are discarded and a new pending
// handshake replaces them.
func (e *Exporter) hello(dg netsim.Datagram) error {
	server, err := securechan.NewServer(securechan.ServerConfig{
		Rand:     e.rand,
		Identity: e.identity,
		Evidence: e.evidence,
	})
	if err != nil {
		return err
	}
	resp, p, err := server.Respond(dg.Payload)
	if err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.sessions, dg.From)
	e.pendings[dg.From] = p
	e.mu.Unlock()
	return e.ep.Send(dg.From, resp)
}

// Stub is the local proxy component. Load it into the importing system
// under the remote component's name; calls flow across the attested
// channel.
type Stub struct {
	name string
	cfg  StubConfig
	mu   sync.Mutex
	sess *securechan.Session
	pump func() error // drives the remote exporter (test/network loop)
}

// StubConfig configures a Stub.
type StubConfig struct {
	// RemoteName is the exported component's name (also the stub's local
	// component name so manifests read naturally).
	RemoteName string

	// RemoteEndpoint is the server machine's endpoint name.
	RemoteEndpoint string

	// Endpoint is this machine's network attachment.
	Endpoint *netsim.Endpoint

	// Rand seeds handshake randomness.
	Rand *cryptoutil.PRNG

	// VerifyServer authenticates the remote side: identity key,
	// transcript, attestation evidence. Required — distributed trust is
	// explicit, never assumed.
	VerifyServer func(idPub ed25519.PublicKey, transcript [32]byte, evidence []byte) error

	// Pump, when set, is called whenever the stub expects the remote side
	// to make progress (deliver + serve). The in-process tests wire it to
	// the exporter's Serve; a real deployment has independent processes.
	Pump func() error

	// Clock is the time source remaining budgets are measured against
	// (default time.Now). Simulation harnesses inject a virtual clock.
	Clock func() time.Time
}

// NewStub validates the config.
func NewStub(cfg StubConfig) (*Stub, error) {
	if cfg.RemoteName == "" || cfg.Endpoint == nil || cfg.Rand == nil || cfg.VerifyServer == nil {
		return nil, fmt.Errorf("distributed: stub config incomplete")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Stub{name: cfg.RemoteName, cfg: cfg, pump: cfg.Pump}, nil
}

var _ core.Component = (*Stub)(nil)

// CompName returns the remote component's name.
func (s *Stub) CompName() string { return s.name }

// CompVersion marks the stub as a proxy.
func (s *Stub) CompVersion() string { return "stub-1.0" }

// Init is a no-op; Connect establishes the channel.
func (s *Stub) Init(*core.Ctx) error { return nil }

// step lets the remote side run, if a pump is wired.
func (s *Stub) step() error {
	if s.pump == nil {
		return nil
	}
	return s.pump()
}

// recvOne fetches the next datagram from the configured remote, pumping as
// needed.
func (s *Stub) recvOne() (netsim.Datagram, error) {
	if err := s.step(); err != nil {
		return netsim.Datagram{}, err
	}
	dg, ok := s.cfg.Endpoint.Recv()
	if !ok {
		return netsim.Datagram{}, fmt.Errorf("no response from %s: %w", s.cfg.RemoteEndpoint, ErrTransport)
	}
	return dg, nil
}

// Connect runs the attested handshake with the remote exporter. It may be
// called again after Close (or after the transport failed) to establish a
// fresh session; stale datagrams from the previous session are discarded
// first so they cannot be mistaken for handshake flights.
func (s *Stub) Connect() error {
	s.cfg.Endpoint.Drain()
	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand:         s.cfg.Rand,
		VerifyServer: s.cfg.VerifyServer,
	})
	if err != nil {
		return err
	}
	if err := s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, client.Hello()); err != nil {
		return err
	}
	dg, err := s.recvOne()
	if err != nil {
		return err
	}
	sess, finish, err := client.Finish(dg.Payload)
	if err != nil {
		return err
	}
	if err := s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, finish); err != nil {
		return err
	}
	if err := s.step(); err != nil {
		return err
	}
	s.mu.Lock()
	s.sess = sess
	s.mu.Unlock()
	return nil
}

// Close drops the session; subsequent calls fail with ErrNotConnected
// until Connect succeeds again. The remote exporter notices on the next
// hello (session reset); no goodbye flight crosses the wire, mirroring a
// crash.
func (s *Stub) Close() {
	s.mu.Lock()
	s.sess = nil
	s.mu.Unlock()
}

// Connected reports whether a session is established. A true result does
// not promise the remote side is still alive — only Ping can.
func (s *Stub) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess != nil
}

// Ping runs one liveness probe over the established session. The exporter
// answers from its channel layer, so a healthy reply proves the remote
// process and the session keys, not just the network.
func (s *Stub) Ping() error {
	reply, err := s.Handle(core.Envelope{Msg: core.Message{Op: PingOp}})
	if err != nil {
		return err
	}
	if reply.Op != PongOp {
		return fmt.Errorf("ping answered with %q: %w", reply.Op, ErrTransport)
	}
	return nil
}

// Handle proxies one invocation across the channel. A deadline riding on
// the envelope becomes the frame's remaining-budget field; a call whose
// budget is already spent is refused here, before any bytes are sealed or
// transmitted — the wire is never burned on doomed work.
func (s *Stub) Handle(env core.Envelope) (core.Message, error) {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	if sess == nil {
		return core.Message{}, fmt.Errorf("stub %s: %w", s.name, ErrNotConnected)
	}
	var budget time.Duration
	if !env.Deadline.IsZero() {
		budget = env.Deadline.Sub(s.cfg.Clock())
		if budget <= 0 {
			return core.Message{}, fmt.Errorf("stub %s: budget spent before transmit: %w", s.name, core.ErrDeadline)
		}
	}
	rec, err := sess.Seal(EncodeRequest(env.Span, budget, env.Msg.Op, env.Msg.Data))
	if err != nil {
		return core.Message{}, err
	}
	if err := s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, rec); err != nil {
		return core.Message{}, err
	}
	dg, err := s.recvOne()
	if err != nil {
		return core.Message{}, err
	}
	plain, err := sess.Open(dg.Payload)
	if err != nil {
		return core.Message{}, err
	}
	if len(plain) < 1 {
		return core.Message{}, fmt.Errorf("empty reply frame: %w", ErrTransport)
	}
	switch plain[0] {
	case statusDeadline:
		// Rehydrate the typed error so errors.Is works across the wire.
		return core.Message{}, fmt.Errorf("remote: %s: %w", plain[1:], core.ErrDeadline)
	case statusOverload:
		return core.Message{}, fmt.Errorf("remote: %s: %w", plain[1:], core.ErrOverloaded)
	case statusErr:
		return core.Message{}, fmt.Errorf("%w: %s", ErrRemote, plain[1:])
	}
	op, data, err := decodeCall(plain[1:])
	if err != nil {
		return core.Message{}, err
	}
	return core.Message{Op: op, Data: data}, nil
}
