// Batched ingestion: one sealed datagram carries many meter readings
// through a single AEAD pass. A batch request is an ordinary v3 request
// frame whose op is the reserved BatchOp and whose data is the batch
// payload — so it rides every existing mechanism unchanged: correlation
// IDs (a batch pipelines like any other call), the budget field (one
// deadline governs the whole batch), and the taint field (the chain's
// labels apply to every reading it carries). The exporter unpacks the
// batch server-side, fans the readings into the component one by one, and
// seals a single reply carrying per-reading status — N invocations, two
// AEAD passes total instead of 2N.
//
// Wire format of the batch payload (all integers big-endian):
//
//	count   uint16                 1..MaxBatchReadings
//	repeat count times:
//	  opLen  uint16; op   [opLen]byte    must not start with NUL
//	  dataLen uint16; data [dataLen]byte
//
// No trailing bytes are allowed and the count must match exactly, so a
// batch payload has exactly one encoding — ReencodeBatch is the identity
// on every valid input, which is what the fuzz oracle checks.
//
// The reply payload (inside a statusOK reply whose op is BatchOp):
//
//	count   uint16                 echoes the request count
//	repeat count times:
//	  status  byte                 the per-reading status code
//	  bodyLen uint16; body [bodyLen]byte
//
// where an OK body is a call frame (op + data) and an error body is the
// error text. Per-reading statuses reuse the reply status codes, so
// errors.Is(err, core.ErrDeadline/ErrOverloaded/ErrPolicy) keeps working
// per reading across the wire.
package distributed

import (
	"errors"
	"fmt"
	"time"

	"lateral/internal/core"
)

// BatchOp is the reserved batched-ingestion operation. Like PingOp, the
// leading NUL keeps it out of any legitimate component op namespace: the
// exporter unpacks it at the channel layer's dispatch point, the exported
// component only ever sees the individual readings.
const BatchOp = "\x00batch"

// MaxBatchReadings bounds the readings one batch frame may carry. The
// bound keeps a hostile count from forcing large allocations before the
// payload bytes back it up.
const MaxBatchReadings = 4096

// maxBatchBody bounds one per-reading reply body (a uint16 length field).
const maxBatchBody = 1 << 16

// Reading is one (op, data) invocation inside a batch.
type Reading struct {
	Op   string
	Data []byte
}

// BatchResult is one reading's outcome from a HandleBatch call. Msg.Data,
// when non-empty, aliases the batch reply buffer — owned by the caller of
// HandleBatch, valid until the results slice is reused.
type BatchResult struct {
	Msg core.Message
	Err error
}

// AppendBatch appends the batch payload for readings onto dst
// (allocation-free when dst has spare capacity) and returns the extended
// slice. The caller must respect the codec bounds (reading count, op and
// data lengths); EncodeBatch validates them.
func AppendBatch(dst []byte, readings []Reading) []byte {
	dst = append(dst, byte(len(readings)>>8), byte(len(readings)))
	for _, r := range readings {
		dst = append(dst, byte(len(r.Op)>>8), byte(len(r.Op)))
		dst = append(dst, r.Op...)
		dst = append(dst, byte(len(r.Data)>>8), byte(len(r.Data)))
		dst = append(dst, r.Data...)
	}
	return dst
}

// EncodeBatch validates the readings against the codec bounds and builds
// the batch payload.
func EncodeBatch(readings []Reading) ([]byte, error) {
	if err := validateReadings(readings); err != nil {
		return nil, err
	}
	size := 2
	for _, r := range readings {
		size += 4 + len(r.Op) + len(r.Data)
	}
	return AppendBatch(make([]byte, 0, size), readings), nil
}

func validateReadings(readings []Reading) error {
	if len(readings) == 0 {
		return fmt.Errorf("empty batch: %w", ErrTransport)
	}
	if len(readings) > MaxBatchReadings {
		return fmt.Errorf("batch of %d exceeds %d readings: %w", len(readings), MaxBatchReadings, ErrTransport)
	}
	for _, r := range readings {
		if len(r.Op) > 0xffff || len(r.Data) > 0xffff {
			return fmt.Errorf("reading op/data exceeds field bounds: %w", ErrTransport)
		}
		if len(r.Op) > 0 && r.Op[0] == 0 {
			return fmt.Errorf("reading op %q is reserved: %w", r.Op, ErrTransport)
		}
	}
	return nil
}

// cutBatchCount parses and bounds the leading reading count. Beyond the
// static MaxBatchReadings bound, the count must be backed by at least the
// minimum bytes per reading, so a forged count cannot force an allocation
// the payload doesn't pay for.
func cutBatchCount(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("truncated batch count: %w", ErrTransport)
	}
	n := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if n == 0 || n > MaxBatchReadings {
		return 0, nil, fmt.Errorf("batch count %d out of range: %w", n, ErrTransport)
	}
	if len(b) < 4*n {
		return 0, nil, fmt.Errorf("batch count %d not backed by payload: %w", n, ErrTransport)
	}
	return n, b, nil
}

// cutReading parses one reading off the front of b. The returned op bytes
// and data alias b; ops, when non-nil, interns the op string.
func cutReading(b []byte, ops *interner) (op string, data, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, nil, fmt.Errorf("truncated reading op length: %w", ErrTransport)
	}
	on := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < on {
		return "", nil, nil, fmt.Errorf("truncated reading op: %w", ErrTransport)
	}
	if on > 0 && b[0] == 0 {
		return "", nil, nil, fmt.Errorf("reserved op in batch: %w", ErrTransport)
	}
	if ops != nil {
		op = ops.intern(b[:on])
	} else {
		op = string(b[:on])
	}
	b = b[on:]
	if len(b) < 2 {
		return "", nil, nil, fmt.Errorf("truncated reading data length: %w", ErrTransport)
	}
	dn := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < dn {
		return "", nil, nil, fmt.Errorf("truncated reading data: %w", ErrTransport)
	}
	return op, b[:dn], b[dn:], nil
}

// DecodeBatch parses one batch payload (see AppendBatch). The readings'
// ops and data alias b. Truncated payloads, out-of-range counts, reserved
// ops, and trailing bytes are all rejected with ErrTransport.
func DecodeBatch(b []byte) ([]Reading, error) {
	n, rest, err := cutBatchCount(b)
	if err != nil {
		return nil, err
	}
	readings := make([]Reading, 0, n)
	for i := 0; i < n; i++ {
		var op string
		var data []byte
		op, data, rest, err = cutReading(rest, nil)
		if err != nil {
			return nil, err
		}
		readings = append(readings, Reading{Op: op, Data: data})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after batch: %w", len(rest), ErrTransport)
	}
	return readings, nil
}

// ReencodeBatch decodes a batch payload and re-emits it in canonical form.
// Because the codec admits exactly one encoding per batch, the output is
// byte-identical to every valid input — the fuzz harness asserts exactly
// that.
func ReencodeBatch(b []byte) ([]byte, error) {
	readings, err := DecodeBatch(b)
	if err != nil {
		return nil, err
	}
	return AppendBatch(make([]byte, 0, len(b)), readings), nil
}

// executeBatch unpacks one decrypted batch invocation, fans its readings
// into the exported component one at a time (the per-component handler
// lock serializes them regardless), and seals a single reply carrying
// per-reading status. A malformed batch payload fails the whole frame
// with statusErr; once the payload parses, each reading succeeds or fails
// on its own. The caller releases j's pooled buffer.
func (e *Exporter) executeBatch(j *job) error {
	msg, fp, herr := e.runBatch(j.req)
	err := e.reply(j.ss, j.from, j.req, msg, herr)
	if fp != nil {
		putBuf(fp, msg.Data)
	}
	return err
}

// runBatch runs one batch request's readings and builds the reply payload
// into a pooled buffer (returned for the caller to release after the reply
// is sealed); a malformed payload returns the whole-frame error instead.
// The single-record path (executeBatch) and coalesced sub-frames
// (executeSub) share it.
func (e *Exporter) runBatch(req Request) (core.Message, *[]byte, error) {
	n, rest, err := cutBatchCount(req.Data)
	if err != nil {
		return core.Message{}, nil, err
	}
	var deadline time.Time
	if req.Budget > 0 {
		// One budget governs the whole batch: every reading is delivered
		// against the same re-anchored deadline, so a batch cannot buy
		// more server time than the single call it replaces.
		deadline = e.clock().Add(req.Budget)
	}
	fp := getBuf()
	out := append((*fp)[:0], byte(n>>8), byte(n))
	for i := 0; i < n; i++ {
		var op string
		var data []byte
		op, data, rest, err = cutReading(rest, &e.ops)
		if err != nil {
			putBuf(fp, out)
			return core.Message{}, nil, err
		}
		env := core.Envelope{
			Msg:   core.Message{Op: op, Data: data},
			Span:  req.Span,
			Taint: req.Taint,
		}
		if !deadline.IsZero() {
			// Guarded delivery clones the payload, same as execute: the
			// watchdog may abandon the handler mid-read of a pooled buffer.
			env.Deadline = deadline
			env.Msg.Data = env.Msg.CloneData()
		}
		reply, herr := e.sys.DeliverEnvelope(e.target, env)
		out = appendBatchEntry(out, reply, herr)
	}
	if len(rest) != 0 {
		putBuf(fp, out)
		return core.Message{}, nil, fmt.Errorf("%d trailing bytes after batch: %w", len(rest), ErrTransport)
	}
	return core.Message{Op: BatchOp, Data: out}, fp, nil
}

// appendBatchEntry appends one per-reading reply entry, mapping the
// handler error to the same status codes the single-call reply uses.
func appendBatchEntry(dst []byte, msg core.Message, herr error) []byte {
	if herr == nil && 2+len(msg.Op)+len(msg.Data) >= maxBatchBody {
		herr = fmt.Errorf("reading reply exceeds batch entry bounds: %w", ErrTransport)
	}
	var status byte
	switch {
	case herr == nil:
		status = statusOK
	case errors.Is(herr, core.ErrDeadline):
		status = statusDeadline
	case errors.Is(herr, core.ErrOverloaded):
		status = statusOverload
	case errors.Is(herr, core.ErrPolicy):
		status = statusPolicy
	default:
		status = statusErr
	}
	dst = append(dst, status)
	mark := len(dst)
	dst = append(dst, 0, 0) // body length, patched below
	if herr != nil {
		text := herr.Error()
		if len(text) >= maxBatchBody {
			text = text[:maxBatchBody-1]
		}
		dst = append(dst, text...)
	} else {
		dst = appendCall(dst, msg.Op, msg.Data)
	}
	bn := len(dst) - mark - 2
	dst[mark], dst[mark+1] = byte(bn>>8), byte(bn)
	return dst
}

// HandleBatch proxies many readings across the channel in one sealed
// round trip: the whole batch costs one AEAD pass in each direction
// instead of one per reading. The envelope's span, taint, and deadline
// apply batch-wide (env.Msg is ignored); results are appended to the
// caller's slice — pass results[:0] to reuse its backing array across
// batches, the zero-allocation shape. A frame-level failure (transport,
// session, whole-batch deadline) returns an error with no results;
// otherwise results carries exactly one entry per reading, in order, with
// per-reading errors rehydrated to their typed forms.
func (s *Stub) HandleBatch(env core.Envelope, readings []Reading, results []BatchResult) ([]BatchResult, error) {
	if err := validateReadings(readings); err != nil {
		return results, err
	}
	bp := getBuf()
	payload := AppendBatch((*bp)[:0], readings)
	env.Msg = core.Message{Op: BatchOp, Data: payload}
	msg, err := s.Handle(env)
	putBuf(bp, payload)
	if err != nil {
		return results, err
	}
	if msg.Op != BatchOp {
		return results, fmt.Errorf("batch answered with %q: %w", msg.Op, ErrTransport)
	}
	return s.decodeBatchReply(msg.Data, len(readings), results)
}

// decodeBatchReply parses the batch reply payload into per-reading
// results. OK payload data aliases b (the owned reply copy Handle made).
func (s *Stub) decodeBatchReply(b []byte, want int, results []BatchResult) ([]BatchResult, error) {
	if len(b) < 2 {
		return results, fmt.Errorf("truncated batch reply count: %w", ErrTransport)
	}
	n := int(b[0])<<8 | int(b[1])
	if n != want {
		return results, fmt.Errorf("batch reply carries %d entries for %d readings: %w", n, want, ErrTransport)
	}
	rest := b[2:]
	for i := 0; i < n; i++ {
		if len(rest) < 3 {
			return results, fmt.Errorf("truncated batch reply entry: %w", ErrTransport)
		}
		status := rest[0]
		bn := int(rest[1])<<8 | int(rest[2])
		rest = rest[3:]
		if len(rest) < bn {
			return results, fmt.Errorf("truncated batch reply body: %w", ErrTransport)
		}
		body := rest[:bn]
		rest = rest[bn:]
		switch status {
		case statusOK:
			op, data, err := decodeCallInto(body, &s.ops)
			if err != nil {
				results = append(results, BatchResult{Err: err})
				continue
			}
			m := core.Message{Op: op}
			if len(data) > 0 {
				m.Data = data
			}
			results = append(results, BatchResult{Msg: m})
		case statusDeadline:
			results = append(results, BatchResult{Err: fmt.Errorf("remote: %s: %w", body, core.ErrDeadline)})
		case statusOverload:
			results = append(results, BatchResult{Err: fmt.Errorf("remote: %s: %w", body, core.ErrOverloaded)})
		case statusPolicy:
			results = append(results, BatchResult{Err: fmt.Errorf("remote: %s: %w", body, core.ErrPolicy)})
		default:
			results = append(results, BatchResult{Err: fmt.Errorf("%w: %s", ErrRemote, body)})
		}
	}
	if len(rest) != 0 {
		return results, fmt.Errorf("%d trailing bytes after batch reply: %w", len(rest), ErrTransport)
	}
	return results, nil
}
