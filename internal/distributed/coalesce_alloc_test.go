package distributed

// The coalesced-path allocation gate: with the adaptive window open and a
// deep pipeline racing, the per-sub-frame marginal cost on the sealed
// hot path — enqueue, flush into a shared record, demux the coalesced
// reply — must be allocation-free. Per-RECORD costs (the pooled assembly
// buffer's first growth, a netsim datagram) amortize over the sub-frames
// they carry; anything per-CALL shows up as >= 1 in the whole-process
// malloc count and fails the gate. `make bench-smoke` asserts this on
// every CI pass next to the batched-ingest gate.

import (
	"crypto/ed25519"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// allocEcho mirrors its request so nil-data calls make nil-data replies:
// any reply payload would cost the caller-side defensive copy, which is a
// real per-byte cost but not the coalescing machinery under test here.
type allocEcho struct{}

func (allocEcho) CompName() string     { return "echo" }
func (allocEcho) CompVersion() string  { return "1.0" }
func (allocEcho) Init(*core.Ctx) error { return nil }
func (allocEcho) Handle(env core.Envelope) (core.Message, error) {
	return core.Message{Op: "ok", Data: env.Msg.Data}, nil
}

func TestCoalescedZeroAllocPerSubFrame(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the measured path; bench-smoke runs this gate without -race")
	}
	vendor := cryptoutil.NewSigner("intel")
	net := netsim.New()
	sub, err := sgx.New(sgx.Config{DeviceSeed: "alloc-cpu", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(sub)
	if err := sys.Launch(allocEcho{}, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	meas := cryptoutil.Hash(core.DomainImage(allocEcho{}))

	exp, err := NewExporter(ExportConfig{
		System:    sys,
		Component: "echo",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("alloc-srv"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A real (wall-time) RTT in the pump: while the receive-token holder
	// waits it out, the other callers' frames pile onto the queue and
	// coalesce — with zero RTT the calls serialize and nothing shares a
	// record.
	stub, err := NewStub(StubConfig{
		RemoteName:     "echo",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("laptop"),
		Rand:           cryptoutil.NewPRNG("alloc-cli"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meas)
		},
		Pump: func() error {
			time.Sleep(200 * time.Microsecond)
			return exp.Serve()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stub.Connect(); err != nil {
		t.Fatal(err)
	}

	const depth = 16
	var failures atomic.Int64
	run := func(calls int) {
		var wg sync.WaitGroup
		per := calls / depth
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := stub.Handle(core.Envelope{Msg: core.Message{Op: "echo"}}); err != nil {
						failures.Add(1)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Warm up: grow the adaptive window, populate the waiter/frame pools,
	// and size the demux maps before the measured phase.
	run(depth * 16)

	const calls = depth * 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(calls)
	runtime.ReadMemStats(&after)

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d calls failed", n)
	}
	perSub := float64(after.Mallocs-before.Mallocs) / float64(calls)
	if perSub >= 1 {
		t.Fatalf("coalesced hot path allocates %.3f per sub-frame (%d mallocs / %d calls), want 0",
			perSub, after.Mallocs-before.Mallocs, calls)
	}
	st := stub.Stats()
	if st.CoalescedRecords == 0 {
		t.Fatal("no records coalesced — the gate measured the plain path, not the coalesced one")
	}
	if st.Records >= st.Issued {
		t.Fatalf("sealed %d records for %d issued calls — coalescing never amortized an AEAD pass",
			st.Records, st.Issued)
	}
}
