package distributed

// Tests for wire-level frame coalescing: the coalesced record codec and
// its canonical-form guarantees, the AD binding of the cleartext header,
// the adaptive window controller's AIMD behavior on a virtual clock,
// exporter-side sub-frame fault isolation, and the stub's send-side
// coalescing under concurrent callers.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// TestCoalHeaderCodec pins the header codec: round-trip identity on valid
// input, rejection of everything else, and the Reencode canonical-form
// oracle (exactly one encoding per correlation table).
func TestCoalHeaderCodec(t *testing.T) {
	corrs := []uint64{3, 7, 1 << 40}
	record := make([]byte, 32) // stand-in for the sealed record
	b := AppendCoalHeader(nil, corrs)
	b = append(b, record...)

	got, rest, err := DecodeCoalHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(corrs) || got[0] != 3 || got[1] != 7 || got[2] != 1<<40 {
		t.Fatalf("decoded corrs = %v, want %v", got, corrs)
	}
	if len(rest) != len(record) {
		t.Fatalf("rest = %d bytes, want %d", len(rest), len(record))
	}
	hdr, _, err := ReencodeCoalHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(hdr) != string(b[:3+8*len(corrs)]) {
		t.Fatal("reencoded header is not byte-identical: codec is not canonical")
	}

	bad := map[string][]byte{
		"wrong magic":     append([]byte{0xC4}, b[1:]...),
		"empty":           {},
		"count zero":      append(AppendCoalHeader(nil, nil), record...),
		"truncated table": b[:3+8*len(corrs)-5],
		"unbacked record": b[:3+8*len(corrs)+3],
		"duplicate corrs": append(AppendCoalHeader(nil, []uint64{5, 5}), record...),
		"unsorted corrs":  append(AppendCoalHeader(nil, []uint64{9, 2}), record...),
	}
	overCount := MaxCoalesce + 1
	over := append([]byte{CoalMagic, byte(overCount >> 8), byte(overCount)}, make([]byte, 8*overCount+8)...)
	bad["count over max"] = over
	for name, in := range bad {
		if _, _, err := DecodeCoalHeader(in); !errors.Is(err, ErrTransport) {
			t.Errorf("%s: err = %v, want ErrTransport", name, err)
		}
	}
}

// TestCoalBodyCodec pins the body codec the same way.
func TestCoalBodyCodec(t *testing.T) {
	subs := [][]byte{[]byte("alpha"), []byte("b"), make([]byte, 300)}
	b := AppendCoalBody(nil, subs)

	got, err := DecodeCoalBody(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "alpha" || string(got[1]) != "b" || len(got[2]) != 300 {
		t.Fatalf("decoded subs = %d entries", len(got))
	}
	re, err := ReencodeCoalBody(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(b) {
		t.Fatal("reencoded body is not byte-identical: codec is not canonical")
	}

	bad := map[string][]byte{
		"empty":          {},
		"count zero":     {0, 0},
		"unbacked count": {0, 9, 0, 0, 0, 1, 'x'},
		"truncated sub":  b[:len(b)-100],
		"trailing bytes": append(AppendCoalBody(nil, [][]byte{[]byte("x")}), 0xFF),
	}
	zero := AppendCoalBody(nil, [][]byte{[]byte("ok"), {}})
	bad["zero-length sub"] = zero
	for name, in := range bad {
		if _, err := DecodeCoalBody(in); !errors.Is(err, ErrTransport) {
			t.Errorf("%s: err = %v, want ErrTransport", name, err)
		}
	}
}

// TestWindowControllerAIMD drives the adaptive controller on a virtual
// clock: slow-start doubling while a backlog proves arrivals outpace the
// window, additive growth when merely saturated, no decay on quiet
// periods, multiplicative decrease on shed, and a deterministic observed
// arrival rate.
func TestWindowControllerAIMD(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewWindowController(8, clock)
	if c.Window() != 1 {
		t.Fatalf("initial window = %d, want 1", c.Window())
	}

	// Saturated with backlog: slow-start doubling up to the ceiling.
	for _, want := range []int{2, 4, 8} {
		now = now.Add(100 * time.Millisecond)
		win, changed := c.ObserveFlush(c.Window(), 3)
		if win != want || !changed {
			t.Fatalf("slow start: window = %d (changed=%v), want %d", win, changed, want)
		}
	}
	// At the ceiling: saturation no longer grows.
	now = now.Add(100 * time.Millisecond)
	if win, changed := c.ObserveFlush(8, 5); win != 8 || changed {
		t.Fatalf("ceiling: window = %d (changed=%v), want 8 unchanged", win, changed)
	}
	// Unsaturated flushes never shrink the window.
	now = now.Add(100 * time.Millisecond)
	if win, changed := c.ObserveFlush(1, 0); win != 8 || changed {
		t.Fatalf("quiet flush: window = %d (changed=%v), want 8 unchanged", win, changed)
	}

	// Shed: multiplicative decrease, floor one.
	if win, changed := c.ObserveShed(); win != 4 || !changed {
		t.Fatalf("shed: window = %d (changed=%v), want 4", win, changed)
	}
	c.ObserveShed()
	c.ObserveShed()
	if win, changed := c.ObserveShed(); win != 1 || changed {
		t.Fatalf("shed at floor: window = %d (changed=%v), want 1 unchanged", win, changed)
	}

	// Saturated without backlog: additive increase.
	now = now.Add(100 * time.Millisecond)
	if win, _ := c.ObserveFlush(1, 0); win != 2 {
		t.Fatalf("additive growth: window = %d, want 2", win)
	}

	st := c.Stats()
	if st.Window != 2 || st.Grows != 4 || st.Shrinks != 3 {
		t.Errorf("stats = %+v, want window 2, 4 grows, 3 shrinks", st)
	}
	// Drained counts: 1, 2, 4 (slow start), 8 (ceiling), 1 (quiet), 1.
	if st.Flushes != 6 || st.SubFrames != 1+2+4+8+1+1 {
		t.Errorf("stats = %+v, want 6 flushes, 17 sub-frames", st)
	}
	// 17 sub-frames over the 500ms between first and last flush.
	if want := 17.0 / 0.5; st.RateHz < want-0.01 || st.RateHz > want+0.01 {
		t.Errorf("rate = %.2f Hz, want %.2f", st.RateHz, want)
	}
	if st.State != "grow" {
		t.Errorf("state = %q, want grow", st.State)
	}
}

// coalClient is a hand-rolled wire peer that seals coalesced request
// records directly, making the exporter-side tests deterministic: the
// stub's coalescer only forms multi-frame records when submits race, but a
// hand-built record carries exactly the sub-frames the test chose.
type coalClient struct {
	f    *fixture
	ep   *netsim.Endpoint
	sess *securechan.Session
	// tamperHeader flips a bit in the sealed record's cleartext header
	// before transmit.
	tamperHeader bool
}

func newCoalClient(t *testing.T, f *fixture, name string) *coalClient {
	t.Helper()
	ep := f.net.Attach(name)
	sess := v2Handshake(t, f, ep, name+"-hs")
	return &coalClient{f: f, ep: ep, sess: sess}
}

// call seals one coalesced record carrying the given (corr, op, data)
// sub-frames, serves it, and returns the decrypted reply sub-frames keyed
// by correlation ID. serveErr is the exporter's Serve error, replied is
// false when no reply record came back at all.
func (c *coalClient) call(t *testing.T, subs []coalSub) (replies map[uint64][]byte, replied bool, serveErr error) {
	t.Helper()
	corrs := make([]uint64, len(subs))
	frames := make([][]byte, len(subs))
	for i, s := range subs {
		corrs[i] = s.corr
		fcorr := s.corr
		if s.frameCorr != 0 {
			fcorr = s.frameCorr
		}
		frames[i] = AppendRequest(nil, Request{HasCorr: true, Corr: fcorr, Op: s.op, Data: s.data})
	}
	hdr := AppendCoalHeader(nil, corrs)
	body := AppendCoalBody(nil, frames)
	rec, err := c.sess.SealToAD(hdr, body, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if c.tamperHeader {
		rec[3] ^= 0x01 // flip a bit in the first correlation ID
	}
	if err := c.ep.Send("cloud", rec); err != nil {
		t.Fatal(err)
	}
	serveErr = c.f.exporter.Serve()
	dg, ok := c.ep.Recv()
	if !ok {
		return nil, false, serveErr
	}
	rcorrs, sealed, err := DecodeCoalHeader(dg.Payload)
	if err != nil {
		t.Fatalf("reply is not a coalesced record: %v", err)
	}
	rhdr := dg.Payload[:3+8*len(rcorrs)]
	plain, err := c.sess.OpenToAD(nil, sealed, rhdr)
	if err != nil {
		t.Fatalf("open coalesced reply: %v", err)
	}
	rsubs, err := DecodeCoalBody(plain)
	if err != nil {
		t.Fatalf("decode coalesced reply body: %v", err)
	}
	replies = make(map[uint64][]byte, len(rsubs))
	for i, sub := range rsubs {
		if len(sub) < 9 {
			t.Fatalf("reply sub %d too short", i)
		}
		corr := binary.BigEndian.Uint64(sub)
		if corr != rcorrs[i] {
			t.Fatalf("reply sub %d corr %d disagrees with header %d", i, corr, rcorrs[i])
		}
		replies[corr] = append([]byte(nil), sub[8:]...)
	}
	return replies, true, serveErr
}

type coalSub struct {
	corr uint64
	// frameCorr, when non-zero, is embedded in the sub-frame instead of
	// corr — the header/frame-mismatch tests use it.
	frameCorr uint64
	op        string
	data      []byte
}

// TestCoalescedRequestRoundTrip hand-seals a two-frame coalesced record
// and checks both sub-frames execute and both replies come back in one
// coalesced record, AD-bound to the reply header.
func TestCoalescedRequestRoundTrip(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "coal")

	replies, ok, err := c.call(t, []coalSub{
		{corr: 1, op: "put", data: []byte("k=v")},
		{corr: 2, op: "get", data: []byte("k")},
	})
	if err != nil || !ok {
		t.Fatalf("serve = %v, replied = %v", err, ok)
	}
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2", len(replies))
	}
	if r := replies[1]; len(r) == 0 || r[0] != statusOK {
		t.Fatalf("put reply = % x, want statusOK", r)
	}
	r := replies[2]
	if len(r) == 0 || r[0] != statusOK {
		t.Fatalf("get reply = % x, want statusOK", r)
	}
	if _, data, err := decodeCall(r[1:]); err != nil || string(data) != "v" {
		t.Fatalf("get reply body = %q, %v", data, err)
	}
}

// TestCoalescedHeaderTamperFailsOpen flips one bit of a correlation ID in
// the cleartext header after sealing: the header is the record's extra AD,
// so the open must fail and no reply may be produced — the binding the
// whole design leans on (DESIGN decision 14).
func TestCoalescedHeaderTamperFailsOpen(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "tamper")
	c.tamperHeader = true

	// Serve drops hostile frames without failing the service, so the only
	// observable is silence: no reply record may be produced.
	_, replied, _ := c.call(t, []coalSub{
		{corr: 1, op: "put", data: []byte("k=v")},
		{corr: 2, op: "get", data: []byte("k")},
	})
	if replied {
		t.Fatal("exporter replied to a record with a tampered header")
	}
	// The session survives (nothing was committed): a clean record works.
	c.tamperHeader = false
	replies, ok, err := c.call(t, []coalSub{{corr: 3, op: "put", data: []byte("a=b")}, {corr: 4, op: "get", data: []byte("a")}})
	if err != nil || !ok || len(replies) != 2 {
		t.Fatalf("session did not survive a rejected record: %v, %v, %d replies", err, ok, len(replies))
	}
}

// TestCoalescedSubCorrMismatch embeds a correlation ID in one sub-frame
// that disagrees with the AD-bound header entry: that sub-frame gets a
// typed error reply addressed by the header entry, and its sibling is
// unaffected.
func TestCoalescedSubCorrMismatch(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "mismatch")

	replies, ok, err := c.call(t, []coalSub{
		{corr: 1, frameCorr: 99, op: "put", data: []byte("k=v")},
		{corr: 2, op: "put", data: []byte("k2=v2")},
	})
	if err != nil || !ok {
		t.Fatalf("serve = %v, replied = %v", err, ok)
	}
	if r := replies[1]; len(r) == 0 || r[0] != statusErr {
		t.Fatalf("mismatched sub reply = % x, want statusErr", r)
	}
	if r := replies[2]; len(r) == 0 || r[0] != statusOK {
		t.Fatalf("sibling reply = % x, want statusOK", r)
	}
}

// TestCoalesceFaultDrop arms the exporter's drop fault: the dropped
// sub-frame is excluded from the reply entirely (its caller would resolve
// with a typed transport error on its next dry round) while its sibling
// completes normally.
func TestCoalesceFaultDrop(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "drop")

	f.exporter.FaultNextCoalesced("drop", 0)
	replies, ok, err := c.call(t, []coalSub{
		{corr: 1, op: "put", data: []byte("k=v")},
		{corr: 2, op: "put", data: []byte("k2=v2")},
	})
	if err != nil || !ok {
		t.Fatalf("serve = %v, replied = %v", err, ok)
	}
	if _, present := replies[1]; present {
		t.Fatal("dropped sub-frame still got a reply")
	}
	if r := replies[2]; len(r) == 0 || r[0] != statusOK {
		t.Fatalf("sibling reply = % x, want statusOK", r)
	}

	// The fault is one-shot: the next record is untouched.
	replies, ok, err = c.call(t, []coalSub{{corr: 3, op: "get", data: []byte("k2")}, {corr: 4, op: "get", data: []byte("k2")}})
	if err != nil || !ok || len(replies) != 2 {
		t.Fatalf("fault not one-shot: %v, %v, %d replies", err, ok, len(replies))
	}
}

// TestCoalesceFaultTamper arms the tamper fault: the corrupted sub-frame
// fails decode and gets a typed error reply, siblings unaffected.
func TestCoalesceFaultTamper(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "subtamper")

	f.exporter.FaultNextCoalesced("tamper", 1)
	replies, ok, err := c.call(t, []coalSub{
		{corr: 1, op: "put", data: []byte("k=v")},
		{corr: 2, op: "put", data: []byte("k2=v2")},
	})
	if err != nil || !ok {
		t.Fatalf("serve = %v, replied = %v", err, ok)
	}
	if r := replies[2]; len(r) == 0 || r[0] != statusErr {
		t.Fatalf("tampered sub reply = % x, want statusErr", r)
	}
	if r := replies[1]; len(r) == 0 || r[0] != statusOK {
		t.Fatalf("sibling reply = % x, want statusOK", r)
	}
}

// TestCoalescedPingSubFrame checks a ping sub-frame is answered inline in
// its slot (no component dispatch) alongside an executing sibling.
func TestCoalescedPingSubFrame(t *testing.T) {
	f := newFixture(t, nil, false)
	c := newCoalClient(t, f, "ping")

	replies, ok, err := c.call(t, []coalSub{
		{corr: 1, op: PingOp},
		{corr: 2, op: "put", data: []byte("k=v")},
	})
	if err != nil || !ok {
		t.Fatalf("serve = %v, replied = %v", err, ok)
	}
	r := replies[1]
	if len(r) == 0 || r[0] != statusOK {
		t.Fatalf("ping reply = % x, want statusOK", r)
	}
	if op, _, err := decodeCall(r[1:]); err != nil || op != PongOp {
		t.Fatalf("ping reply op = %q, %v, want pong", op, err)
	}
	if r := replies[2]; len(r) == 0 || r[0] != statusOK {
		t.Fatalf("sibling reply = % x, want statusOK", r)
	}
}

// TestConcurrentCallsCoalesce drives concurrent callers through one stub
// and checks the send path actually coalesces: fewer sealed records than
// issued calls, at least one multi-frame record, exactly-once completion,
// and the record/sub-frame books consistent.
func TestConcurrentCallsCoalesce(t *testing.T) {
	f := newFixture(t, nil, false)
	stub, _ := pipeFixture(t, f, 200*time.Microsecond)
	if err := stub.Connect(); err != nil {
		t.Fatal(err)
	}

	const workers, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := stub.Handle(core.Envelope{Msg: core.Message{Op: "put", Data: []byte(key + "=x")}}); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := stub.Stats()
	if st.Issued != workers*per || st.Completed != workers*per || st.Inflight != 0 {
		t.Fatalf("books: %+v, want %d issued = completed", st, workers*per)
	}
	if st.CoalescedRecords == 0 {
		t.Fatal("no coalesced record formed under 8 concurrent callers")
	}
	if st.Records >= st.Issued {
		t.Errorf("records = %d for %d calls: coalescing saved nothing", st.Records, st.Issued)
	}
	// Every record is either plain (one sub-frame) or coalesced: the books
	// must balance exactly.
	if plain := st.Records - st.CoalescedRecords; plain+st.CoalescedSubs != st.Issued {
		t.Errorf("record books unbalanced: %d plain + %d coalesced subs != %d issued",
			plain, st.CoalescedSubs, st.Issued)
	}
	if st.CoalescedSubs < 2*st.CoalescedRecords {
		t.Errorf("coalesced records carry < 2 subs on average: %+v", st)
	}
	if st.CoalesceWindow < 1 || st.CoalesceState == "idle" {
		t.Errorf("controller never engaged: window %d state %q", st.CoalesceWindow, st.CoalesceState)
	}
}

// TestSequentialCallsStayPlain pins wire interop: a purely sequential
// caller never coalesces, so every record is a plain v3 record —
// byte-compatible with pre-coalescing peers — and the explorer's
// deterministic traces stay byte-identical.
func TestSequentialCallsStayPlain(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte(fmt.Sprintf("k%d=v", i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.stub.Stats()
	if st.CoalescedRecords != 0 {
		t.Errorf("sequential calls coalesced: %+v", st)
	}
	if st.Records != st.Issued {
		t.Errorf("records = %d, want %d (one plain record per call)", st.Records, st.Issued)
	}
}

// TestCoalesceDisabledByConfig pins CoalesceMax = 1 as the off switch: the
// window controller's ceiling is one, so every record stays plain even
// under concurrency.
func TestCoalesceDisabledByConfig(t *testing.T) {
	c := NewWindowController(1, nil)
	for i := 0; i < 10; i++ {
		if win, changed := c.ObserveFlush(1, 5); win != 1 || changed {
			t.Fatalf("window grew past a ceiling of 1: %d", win)
		}
	}
}
