package distributed

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// cloudStore is the remote service: a keyed document store in an enclave.
type cloudStore struct {
	docs map[string][]byte
}

func (c *cloudStore) CompName() string    { return "store" }
func (c *cloudStore) CompVersion() string { return "2.0" }
func (c *cloudStore) Init(*core.Ctx) error {
	c.docs = make(map[string][]byte)
	return nil
}

func (c *cloudStore) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "put":
		parts := strings.SplitN(string(env.Msg.Data), "=", 2)
		if len(parts) != 2 {
			return core.Message{}, core.ErrRefused
		}
		c.docs[parts[0]] = []byte(parts[1])
		return core.Message{Op: "ok"}, nil
	case "get":
		doc, ok := c.docs[string(env.Msg.Data)]
		if !ok {
			return core.Message{}, fmt.Errorf("no such doc: %w", core.ErrRefused)
		}
		return core.Message{Op: "doc", Data: doc}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// localClient calls the (possibly remote) store via its granted channel.
type localClient struct {
	ctx *core.Ctx
}

func (l *localClient) CompName() string         { return "client" }
func (l *localClient) CompVersion() string      { return "1.0" }
func (l *localClient) Init(ctx *core.Ctx) error { l.ctx = ctx; return nil }

func (l *localClient) Handle(env core.Envelope) (core.Message, error) {
	return l.ctx.Call("store", env.Msg)
}

// fixture wires a client machine (microkernel) to a cloud machine (SGX)
// over the simulated network.
type fixture struct {
	net       *netsim.Network
	cloudSys  *core.System
	clientSys *core.System
	exporter  *Exporter
	stub      *Stub
	vendor    *cryptoutil.Signer
	storeMeas [32]byte
}

func newFixture(t *testing.T, adversary netsim.Adversary, tamperRemote bool) *fixture {
	t.Helper()
	f := &fixture{net: netsim.New(), vendor: cryptoutil.NewSigner("intel")}
	if adversary != nil {
		f.net.SetAdversary(adversary)
	}
	// Cloud machine: SGX hosting the store enclave.
	sub, err := sgx.New(sgx.Config{DeviceSeed: "cloud-cpu", Vendor: f.vendor})
	if err != nil {
		t.Fatal(err)
	}
	f.cloudSys = core.NewSystem(sub)
	store := &cloudStore{}
	if tamperRemote {
		store.docs = nil // same type; tampering is a different VERSION below
	}
	comp := core.Component(store)
	if tamperRemote {
		comp = &tamperedStore{}
	}
	if err := f.cloudSys.Launch(comp, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.cloudSys.InitAll(); err != nil {
		t.Fatal(err)
	}
	f.storeMeas = cryptoutil.Hash(core.DomainImage(&cloudStore{}))

	cloudEP := f.net.Attach("cloud")
	f.exporter, err = NewExporter(ExportConfig{
		System:    f.cloudSys,
		Component: "store",
		Endpoint:  cloudEP,
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("cloud-hs"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Client machine: microkernel hosting the client + the stub.
	f.clientSys = core.NewSystem(kernel.New(kernel.Config{}))
	clientEP := f.net.Attach("laptop")
	f.stub, err = NewStub(StubConfig{
		RemoteName:     "store",
		RemoteEndpoint: "cloud",
		Endpoint:       clientEP,
		Rand:           cryptoutil.NewPRNG("laptop-hs"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], f.vendor.Public(), f.storeMeas)
		},
		Pump: func() error { return f.exporter.Serve() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Launch(&localClient{}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Launch(f.stub, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Grant(core.ChannelSpec{Name: "store", From: "client", To: "store", Badge: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.InitAll(); err != nil {
		t.Fatal(err)
	}
	return f
}

// tamperedStore is a different binary (different version → measurement).
type tamperedStore struct{ cloudStore }

func (t *tamperedStore) CompVersion() string { return "2.0-evil" }

func TestRemoteCallEndToEnd(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("report=q3 numbers")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	reply, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("report")})
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(reply.Data) != "q3 numbers" {
		t.Errorf("got %q", reply.Data)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("missing")})
	if !errors.Is(err, ErrRemote) {
		t.Errorf("remote refusal: got %v, want ErrRemote", err)
	}
	// The channel survives an application-level error.
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("a=b")}); err != nil {
		t.Errorf("call after error: %v", err)
	}
}

func TestUnconnectedStubFailsClosed(t *testing.T) {
	f := newFixture(t, nil, false)
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("x")})
	if !errors.Is(err, ErrNotConnected) {
		t.Errorf("unconnected call: got %v", err)
	}
}

func TestEavesdropperSeesNoDocuments(t *testing.T) {
	rec := &netsim.Recorder{}
	f := newFixture(t, rec, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("WIRE-INVISIBLE-DOCUMENT")
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: append([]byte("d="), secret...)}); err != nil {
		t.Fatal(err)
	}
	if rec.Saw(secret) {
		t.Error("document visible on the wire")
	}
}

func TestTamperedRemoteRefused(t *testing.T) {
	f := newFixture(t, nil, true)
	if err := f.stub.Connect(); err == nil {
		t.Error("stub connected to a remote with the wrong measurement")
	}
}

func TestWireTamperingDetected(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		// Tampering during handshake is also an acceptable failure point,
		// but there is no adversary yet — connect must succeed.
		t.Fatal(err)
	}
	f.net.SetAdversary(netsim.Tamperer{})
	_, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("a=b")})
	if err == nil {
		t.Error("tampered record accepted end to end")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewExporter(ExportConfig{}); err == nil {
		t.Error("empty exporter config accepted")
	}
	if _, err := NewStub(StubConfig{}); err == nil {
		t.Error("empty stub config accepted")
	}
	// Exporting a component that does not exist fails at construction.
	sys := core.NewSystem(core.NewMonolith(0))
	net := netsim.New()
	_, err := NewExporter(ExportConfig{
		System:    sys,
		Component: "ghost",
		Endpoint:  net.Attach("x"),
		Identity:  cryptoutil.NewSigner("id"),
		Rand:      cryptoutil.NewPRNG("r"),
	})
	if !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("ghost export: got %v", err)
	}
}

func TestCallFrameCodec(t *testing.T) {
	b := encodeCall("op-name", []byte("payload"))
	op, data, err := decodeCall(b)
	if err != nil || op != "op-name" || string(data) != "payload" {
		t.Errorf("codec = %q %q %v", op, data, err)
	}
	if _, _, err := decodeCall([]byte{0}); !errors.Is(err, ErrTransport) {
		t.Errorf("short frame: %v", err)
	}
	if _, _, err := decodeCall([]byte{0, 9, 'x'}); !errors.Is(err, ErrTransport) {
		t.Errorf("truncated op: %v", err)
	}
}

func TestGarbledHelloDoesNotKillExporter(t *testing.T) {
	f := newFixture(t, nil, false)
	// A hostile peer sends garbage; Serve must survive and the real
	// client must still connect afterwards.
	if err := f.net.Inject(netsim.Datagram{From: "hostile", To: "cloud", Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := f.exporter.Serve(); err != nil {
		t.Fatalf("serve after garbage: %v", err)
	}
	if err := f.stub.Connect(); err != nil {
		t.Fatalf("connect after garbage: %v", err)
	}
}
