package distributed

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// cloudStore is the remote service: a keyed document store in an enclave.
type cloudStore struct {
	docs map[string][]byte
}

func (c *cloudStore) CompName() string    { return "store" }
func (c *cloudStore) CompVersion() string { return "2.0" }
func (c *cloudStore) Init(*core.Ctx) error {
	c.docs = make(map[string][]byte)
	return nil
}

func (c *cloudStore) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "put":
		parts := strings.SplitN(string(env.Msg.Data), "=", 2)
		if len(parts) != 2 {
			return core.Message{}, core.ErrRefused
		}
		c.docs[parts[0]] = []byte(parts[1])
		return core.Message{Op: "ok"}, nil
	case "get":
		doc, ok := c.docs[string(env.Msg.Data)]
		if !ok {
			return core.Message{}, fmt.Errorf("no such doc: %w", core.ErrRefused)
		}
		return core.Message{Op: "doc", Data: doc}, nil
	case "stall":
		// Models a hung backend; the server-side watchdog must contain it.
		time.Sleep(100 * time.Millisecond)
		return core.Message{Op: "ok"}, nil
	case "taint":
		// Reports the chain taint the invocation arrived with.
		return core.Message{Op: "taint", Data: []byte(strings.Join(env.Taint, ","))}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// localClient calls the (possibly remote) store via its granted channel.
type localClient struct {
	ctx *core.Ctx
}

func (l *localClient) CompName() string         { return "client" }
func (l *localClient) CompVersion() string      { return "1.0" }
func (l *localClient) Init(ctx *core.Ctx) error { l.ctx = ctx; return nil }

func (l *localClient) Handle(env core.Envelope) (core.Message, error) {
	return l.ctx.Call("store", env.Msg)
}

// fixture wires a client machine (microkernel) to a cloud machine (SGX)
// over the simulated network.
type fixture struct {
	net       *netsim.Network
	cloudSys  *core.System
	clientSys *core.System
	exporter  *Exporter
	stub      *Stub
	vendor    *cryptoutil.Signer
	storeMeas [32]byte
}

func newFixture(t testing.TB, adversary netsim.Adversary, tamperRemote bool) *fixture {
	t.Helper()
	f := &fixture{net: netsim.New(), vendor: cryptoutil.NewSigner("intel")}
	if adversary != nil {
		f.net.SetAdversary(adversary)
	}
	// Cloud machine: SGX hosting the store enclave.
	sub, err := sgx.New(sgx.Config{DeviceSeed: "cloud-cpu", Vendor: f.vendor})
	if err != nil {
		t.Fatal(err)
	}
	f.cloudSys = core.NewSystem(sub)
	store := &cloudStore{}
	if tamperRemote {
		store.docs = nil // same type; tampering is a different VERSION below
	}
	comp := core.Component(store)
	if tamperRemote {
		comp = &tamperedStore{}
	}
	if err := f.cloudSys.Launch(comp, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.cloudSys.InitAll(); err != nil {
		t.Fatal(err)
	}
	f.storeMeas = cryptoutil.Hash(core.DomainImage(&cloudStore{}))

	cloudEP := f.net.Attach("cloud")
	f.exporter, err = NewExporter(ExportConfig{
		System:    f.cloudSys,
		Component: "store",
		Endpoint:  cloudEP,
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("cloud-hs"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Client machine: microkernel hosting the client + the stub.
	f.clientSys = core.NewSystem(kernel.New(kernel.Config{}))
	clientEP := f.net.Attach("laptop")
	f.stub, err = NewStub(StubConfig{
		RemoteName:     "store",
		RemoteEndpoint: "cloud",
		Endpoint:       clientEP,
		Rand:           cryptoutil.NewPRNG("laptop-hs"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], f.vendor.Public(), f.storeMeas)
		},
		Pump: func() error { return f.exporter.Serve() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Launch(&localClient{}, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Launch(f.stub, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.Grant(core.ChannelSpec{Name: "store", From: "client", To: "store", Badge: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.clientSys.InitAll(); err != nil {
		t.Fatal(err)
	}
	return f
}

// tamperedStore is a different binary (different version → measurement).
type tamperedStore struct{ cloudStore }

func (t *tamperedStore) CompVersion() string { return "2.0-evil" }

func TestRemoteCallEndToEnd(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("report=q3 numbers")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	reply, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("report")})
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(reply.Data) != "q3 numbers" {
		t.Errorf("got %q", reply.Data)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("missing")})
	if !errors.Is(err, ErrRemote) {
		t.Errorf("remote refusal: got %v, want ErrRemote", err)
	}
	// The channel survives an application-level error.
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("a=b")}); err != nil {
		t.Errorf("call after error: %v", err)
	}
}

// TestBudgetEnforcedServerSide: the envelope deadline becomes a wire
// budget, the exporter re-anchors and enforces it, and the typed failure
// survives the round trip — errors.Is(err, core.ErrDeadline) on the client
// for a handler that hung on the server.
func TestBudgetEnforcedServerSide(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := f.stub.Handle(core.Envelope{
		Msg:      core.Message{Op: "stall"},
		Deadline: time.Now().Add(20 * time.Millisecond),
	})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("stalled remote call: got %v, want core.ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("caller blocked %v on a 20ms budget", elapsed)
	}
	if st := f.cloudSys.Stats(); st.Timeouts == 0 {
		t.Error("server never accounted the timeout")
	}
	// The session survives; an unbounded call still works once the
	// abandoned handler drains.
	time.Sleep(120 * time.Millisecond)
	if _, err := f.stub.Handle(core.Envelope{Msg: core.Message{Op: "put", Data: []byte("a=b")}}); err != nil {
		t.Errorf("call after remote timeout: %v", err)
	}
}

// TestRemoteOverloadTyped: a shed call on the server arrives at the client
// as core.ErrOverloaded, so the cluster layer can fail over on it.
func TestRemoteOverloadTyped(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	f.cloudSys.SetAdmissionLimit(1)
	// First call abandons a 100ms stall after 10ms; its handler still holds
	// the single admission slot, so the immediate second call is shed.
	if _, err := f.stub.Handle(core.Envelope{
		Msg:      core.Message{Op: "stall"},
		Deadline: time.Now().Add(10 * time.Millisecond),
	}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("first call: got %v, want core.ErrDeadline", err)
	}
	_, err := f.stub.Handle(core.Envelope{
		Msg:      core.Message{Op: "get", Data: []byte("x")},
		Deadline: time.Now().Add(10 * time.Millisecond),
	})
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("call into full queue: got %v, want core.ErrOverloaded", err)
	}
	time.Sleep(120 * time.Millisecond) // let the abandoned handler drain
}

// TestStubRefusesExpiredCall: a call whose budget is already spent never
// touches the wire.
func TestStubRefusesExpiredCall(t *testing.T) {
	rec := &netsim.Recorder{}
	f := newFixture(t, rec, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	before := len(rec.Messages())
	_, err := f.stub.Handle(core.Envelope{
		Msg:      core.Message{Op: "get", Data: []byte("x")},
		Deadline: time.Now().Add(-time.Millisecond),
	})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("expired call: got %v, want core.ErrDeadline", err)
	}
	if after := len(rec.Messages()); after != before {
		t.Errorf("expired call burned %d wire flights", after-before)
	}
}

func TestUnconnectedStubFailsClosed(t *testing.T) {
	f := newFixture(t, nil, false)
	_, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("x")})
	if !errors.Is(err, ErrNotConnected) {
		t.Errorf("unconnected call: got %v", err)
	}
}

func TestEavesdropperSeesNoDocuments(t *testing.T) {
	rec := &netsim.Recorder{}
	f := newFixture(t, rec, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	secret := []byte("WIRE-INVISIBLE-DOCUMENT")
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: append([]byte("d="), secret...)}); err != nil {
		t.Fatal(err)
	}
	if rec.Saw(secret) {
		t.Error("document visible on the wire")
	}
}

func TestTamperedRemoteRefused(t *testing.T) {
	f := newFixture(t, nil, true)
	if err := f.stub.Connect(); err == nil {
		t.Error("stub connected to a remote with the wrong measurement")
	}
}

func TestWireTamperingDetected(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		// Tampering during handshake is also an acceptable failure point,
		// but there is no adversary yet — connect must succeed.
		t.Fatal(err)
	}
	f.net.SetAdversary(netsim.Tamperer{})
	_, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("a=b")})
	if err == nil {
		t.Error("tampered record accepted end to end")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewExporter(ExportConfig{}); err == nil {
		t.Error("empty exporter config accepted")
	}
	if _, err := NewStub(StubConfig{}); err == nil {
		t.Error("empty stub config accepted")
	}
	// Exporting a component that does not exist fails at construction.
	sys := core.NewSystem(core.NewMonolith(0))
	net := netsim.New()
	_, err := NewExporter(ExportConfig{
		System:    sys,
		Component: "ghost",
		Endpoint:  net.Attach("x"),
		Identity:  cryptoutil.NewSigner("id"),
		Rand:      cryptoutil.NewPRNG("r"),
	})
	if !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("ghost export: got %v", err)
	}
}

func TestCallFrameCodec(t *testing.T) {
	b := encodeCall("op-name", []byte("payload"))
	op, data, err := decodeCall(b)
	if err != nil || op != "op-name" || string(data) != "payload" {
		t.Errorf("codec = %q %q %v", op, data, err)
	}
	if _, _, err := decodeCall([]byte{0}); !errors.Is(err, ErrTransport) {
		t.Errorf("short frame: %v", err)
	}
	if _, _, err := decodeCall([]byte{0, 9, 'x'}); !errors.Is(err, ErrTransport) {
		t.Errorf("truncated op: %v", err)
	}
}

func TestGarbledHelloDoesNotKillExporter(t *testing.T) {
	f := newFixture(t, nil, false)
	// A hostile peer sends garbage; Serve must survive and the real
	// client must still connect afterwards.
	if err := f.net.Inject(netsim.Datagram{From: "hostile", To: "cloud", Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := f.exporter.Serve(); err != nil {
		t.Fatalf("serve after garbage: %v", err)
	}
	if err := f.stub.Connect(); err != nil {
		t.Fatalf("connect after garbage: %v", err)
	}
}

func TestGarbageOnEstablishedSessionPreservesIt(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("k=v1")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Garbage from the client's own address is neither a decryptable record
	// nor hello-shaped: it must be dropped with the decrypt failure kept —
	// not treated as a session reset, which would burn a handshake attempt
	// and kill the live session.
	err := f.exporter.handle(netsim.Datagram{From: "laptop", To: "cloud", Payload: []byte("neither record nor hello")})
	if err == nil {
		t.Fatal("garbage on established session accepted")
	}
	if !strings.Contains(err.Error(), "undecryptable record") {
		t.Errorf("decrypt failure not preserved: %v", err)
	}
	// The session survived: the next record decrypts under the same keys.
	reply, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if err != nil || string(reply.Data) != "v1" {
		t.Fatalf("session lost after garbage: %q, %v", reply.Data, err)
	}
}

// spanSink collects completed spans from both machines; it lives here
// rather than importing internal/telemetry to keep this package's test
// dependencies minimal.
type spanSink struct {
	mu    sync.Mutex
	spans []core.Span
	kinds []core.SpanKind
}

func (s *spanSink) SpanStart(core.Span, core.SpanInfo, time.Time) {}

func (s *spanSink) SpanEnd(sp core.Span, info core.SpanInfo, _ time.Time, _ time.Duration, _ error) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.kinds = append(s.kinds, info.Kind)
	s.mu.Unlock()
}

// TestTraceStitchesAcrossMachines proves the wire frames propagate span
// context: with one tracer shared by both systems, the cloud-side deliver
// span is a descendant of the laptop-side call span, in the same trace.
func TestTraceStitchesAcrossMachines(t *testing.T) {
	f := newFixture(t, nil, false)
	sink := &spanSink{}
	f.clientSys.SetTracer(sink)
	f.cloudSys.SetTracer(sink)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("k=v")}); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	byID := make(map[uint64]core.Span, len(sink.spans))
	var rootTrace uint64
	var remoteDeliver core.Span
	for i, sp := range sink.spans {
		byID[sp.ID] = sp
		if sink.kinds[i] == core.SpanDeliver && sp.Parent != 0 {
			remoteDeliver = sp // the cloud-side deliver adopted a wire parent
		}
		if sink.kinds[i] == core.SpanDeliver && sp.Parent == 0 {
			rootTrace = sp.Trace
		}
	}
	if remoteDeliver.ID == 0 {
		t.Fatal("no cloud-side deliver span with a wire-propagated parent")
	}
	if rootTrace == 0 {
		t.Fatal("no root deliver span")
	}
	if remoteDeliver.Trace != rootTrace {
		t.Errorf("remote deliver in trace %#x, root trace %#x", remoteDeliver.Trace, rootTrace)
	}
	// Walking parents from the remote deliver must reach the root (depth
	// bounds the walk against cycles).
	cur := remoteDeliver
	reachedRoot := false
	for depth := 0; depth < 20; depth++ {
		if cur.Parent == 0 {
			reachedRoot = true
			break
		}
		next, ok := byID[cur.Parent]
		if !ok {
			t.Fatalf("span %#x has unrecorded parent %#x", cur.ID, cur.Parent)
		}
		cur = next
	}
	if !reachedRoot {
		t.Error("parent walk from remote deliver never reached the root")
	}
}

// TestRequestFrameRoundTrip covers the framing across all field
// combinations: span context and remaining budget, each present or absent.
func TestRequestFrameRoundTrip(t *testing.T) {
	sp := core.Span{Trace: 0xdead, ID: 0xbeef}
	for _, tc := range []struct {
		name   string
		span   core.Span
		budget time.Duration
	}{
		{name: "bare", span: core.Span{}, budget: 0},
		{name: "traced", span: sp, budget: 0},
		{name: "budgeted", span: core.Span{}, budget: 750 * time.Millisecond},
		{name: "traced+budgeted", span: sp, budget: 2 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest(EncodeRequest(tc.span, tc.budget, "put", []byte("k=v")))
			if err != nil {
				t.Fatal(err)
			}
			if req.Span != tc.span || req.Budget != tc.budget || req.Op != "put" || string(req.Data) != "k=v" {
				t.Errorf("round trip = %+v", req)
			}
		})
	}
	// A pre-budget frame (old wire version) still decodes: budget reads as
	// unbounded.
	old := append([]byte{frameTraced}, make([]byte, 16)...)
	old = append(old, encodeCall("get", nil)...)
	req, err := DecodeRequest(old)
	if err != nil {
		t.Fatal(err)
	}
	if req.Budget != 0 || req.Op != "get" {
		t.Errorf("old-version frame = %+v", req)
	}
	// Taint rides the frame and round-trips with every other field.
	t.Run("tainted", func(t *testing.T) {
		in := Request{
			Span: sp, Budget: time.Second, Corr: 7, HasCorr: true,
			Taint: []string{"ingress", "meter-identities"},
			Op:    "put", Data: []byte("k=v"),
		}
		req, err := DecodeRequest(AppendRequest(nil, in))
		if err != nil {
			t.Fatal(err)
		}
		if req.Span != in.Span || req.Budget != in.Budget || req.Corr != in.Corr ||
			strings.Join(req.Taint, ",") != "ingress,meter-identities" ||
			req.Op != in.Op || string(req.Data) != "k=v" {
			t.Errorf("round trip = %+v", req)
		}
	})
}

// TestDecodeFrameErrorPaths is the table-driven sweep over every way a
// frame can be malformed, at both layers of the framing (call frame and
// request wrapper). Every failure must wrap ErrTransport so callers can
// distinguish wire damage from remote refusals.
func TestDecodeFrameErrorPaths(t *testing.T) {
	callCases := []struct {
		name string
		in   []byte
		ok   bool
		op   string
		data string
	}{
		{name: "nil frame", in: nil},
		{name: "short frame", in: []byte{0}},
		{name: "truncated op", in: []byte{0, 9, 'x'}},
		{name: "op length over frame", in: []byte{0xff, 0xff, 'a', 'b'}},
		{name: "empty op empty data", in: []byte{0, 0}, ok: true},
		{name: "happy path", in: encodeCall("op", []byte("d")), ok: true, op: "op", data: "d"},
	}
	for _, tc := range callCases {
		t.Run("call/"+tc.name, func(t *testing.T) {
			op, data, err := decodeCall(tc.in)
			if !tc.ok {
				if !errors.Is(err, ErrTransport) {
					t.Fatalf("err = %v, want ErrTransport", err)
				}
				return
			}
			if err != nil || op != tc.op || string(data) != tc.data {
				t.Fatalf("decode = %q %q %v", op, data, err)
			}
		})
	}
	reqCases := []struct {
		name string
		in   []byte
		ok   bool
	}{
		{name: "empty frame", in: nil},
		{name: "flags only, traced", in: []byte{frameTraced}},
		{name: "truncated span context", in: []byte{frameTraced, 1, 2, 3}},
		{name: "span context then short call", in: append(append([]byte{frameTraced}, make([]byte, 16)...), 0)},
		{name: "untraced short call", in: []byte{0, 0}},
		{name: "flags only, budgeted", in: []byte{frameBudget}},
		{name: "truncated budget", in: []byte{frameBudget, 1, 2, 3}},
		{name: "budget overflow", in: append(append([]byte{frameBudget}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), encodeCall("op", nil)...)},
		{name: "unknown future flag", in: append([]byte{1 << 5}, encodeCall("op", nil)...)},
		{name: "flags only, tainted", in: []byte{frameTaint}},
		{name: "taint count zero", in: append([]byte{frameTaint, 0}, encodeCall("op", nil)...)},
		{name: "taint count over max", in: append([]byte{frameTaint, maxTaintLabels + 1}, encodeCall("op", nil)...)},
		{name: "taint label empty", in: append([]byte{frameTaint, 1, 0}, encodeCall("op", nil)...)},
		{name: "taint label truncated", in: []byte{frameTaint, 1, 3, 'a'}},
		{name: "taint labels unsorted", in: append([]byte{frameTaint, 2, 1, 'b', 1, 'a'}, encodeCall("op", nil)...)},
		{name: "taint label duplicated", in: append([]byte{frameTaint, 2, 1, 'a', 1, 'a'}, encodeCall("op", nil)...)},
		{name: "tainted valid", in: AppendRequest(nil, Request{Taint: []string{"a", "b"}, Op: "op"}), ok: true},
		{name: "untraced valid", in: EncodeRequest(core.Span{}, 0, "op", nil), ok: true},
		{name: "traced valid", in: EncodeRequest(core.Span{Trace: 1, ID: 2}, 0, "op", nil), ok: true},
		{name: "budgeted valid", in: EncodeRequest(core.Span{}, time.Second, "op", nil), ok: true},
		{name: "traced budgeted valid", in: EncodeRequest(core.Span{Trace: 1, ID: 2}, time.Second, "op", nil), ok: true},
	}
	for _, tc := range reqCases {
		t.Run("request/"+tc.name, func(t *testing.T) {
			_, err := DecodeRequest(tc.in)
			if tc.ok && err != nil {
				t.Fatalf("unexpected err %v", err)
			}
			if !tc.ok && !errors.Is(err, ErrTransport) {
				t.Fatalf("err = %v, want ErrTransport", err)
			}
		})
	}
}

// TestRemoteErrorWrapping pins the ErrRemote contract: a refusal executed
// on the remote side arrives wrapped in ErrRemote carrying the remote
// error text, and is NOT an ErrTransport.
func TestRemoteErrorWrapping(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	_, err := f.clientSys.Deliver("client", core.Message{Op: "no-such-op"})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Error("remote refusal also claims to be a transport failure")
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Errorf("remote error text lost: %v", err)
	}
}

func TestPingDoesNotInvokeComponent(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := f.stub.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// The store never saw the probe: its document map is untouched and a
	// get for the ping op name fails like any other missing key.
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte(PingOp)}); !errors.Is(err, ErrRemote) {
		t.Errorf("ping leaked into component state: %v", err)
	}
}

func TestCloseThenReconnect(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "put", Data: []byte("k=v1")}); err != nil {
		t.Fatal(err)
	}
	f.stub.Close()
	if f.stub.Connected() {
		t.Error("closed stub reports connected")
	}
	if _, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")}); !errors.Is(err, ErrNotConnected) {
		t.Errorf("call after close: %v", err)
	}
	// Reconnect from the same endpoint: the exporter must accept the
	// fresh hello as a session reset.
	if err := f.stub.Connect(); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if err := f.stub.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
	// Server-side state survived the reset (the component never died).
	reply, err := f.clientSys.Deliver("client", core.Message{Op: "get", Data: []byte("k")})
	if err != nil || string(reply.Data) != "v1" {
		t.Errorf("state after reconnect = %q, %v", reply.Data, err)
	}
}

// denyTainted is a minimal policy for the wire tests: refuse any external
// delivery whose imported chain taint contains the label.
type denyTainted struct{ label string }

func (d *denyTainted) CheckInvoke(req core.PolicyRequest) ([]string, error) {
	if req.Channel == core.PolicyDeliver && core.HasTaint(req.Taint, d.label) {
		return nil, fmt.Errorf("tainted by %s: %w", d.label, core.ErrPolicy)
	}
	return nil, nil
}

// TestTaintCrossesWire: the chain's taint set rides the request frame,
// the receiving system's policy judges it at the deliver boundary before
// the component runs, and a remote deny rehydrates as core.ErrPolicy on
// the client. A machine without a policy engine still forwards the labels
// into the handler — the wire never launders a chain.
func TestTaintCrossesWire(t *testing.T) {
	f := newFixture(t, nil, false)
	if err := f.stub.Connect(); err != nil {
		t.Fatal(err)
	}
	// No policy on the cloud machine: taint propagates into the handler.
	reply, err := f.stub.Handle(core.Envelope{
		Msg:   core.Message{Op: "taint"},
		Taint: []string{"ingress", "meter-identities"},
	})
	if err != nil {
		t.Fatalf("tainted call without policy: %v", err)
	}
	if string(reply.Data) != "ingress,meter-identities" {
		t.Errorf("remote handler saw taint %q", reply.Data)
	}

	// With a policy installed, the imported taint is judged at the cloud
	// machine's deliver boundary and the typed deny crosses back.
	f.cloudSys.SetPolicy(&denyTainted{label: "meter-identities"})
	_, err = f.stub.Handle(core.Envelope{
		Msg:   core.Message{Op: "get", Data: []byte("report")},
		Taint: []string{"meter-identities"},
	})
	if !errors.Is(err, core.ErrPolicy) {
		t.Fatalf("tainted remote call: got %v, want core.ErrPolicy", err)
	}
	if denies := f.cloudSys.Stats().PolicyDenies; denies != 1 {
		t.Errorf("cloud PolicyDenies = %d, want 1", denies)
	}
	// An untainted call on the same session is unaffected, and the deny
	// did not poison the channel.
	if _, err := f.stub.Handle(core.Envelope{Msg: core.Message{Op: "put", Data: []byte("a=b")}}); err != nil {
		t.Errorf("untainted call after deny: %v", err)
	}
}

// TestExporterEpochGateAndEviction pins the exporter half of config-epoch
// rekeying. An ungated exporter accepts both legacy (epoch-less) clients
// and clients keyed ahead of it; once the gate moves, sessions keyed at
// older epochs are evicted and stale hellos are refused — but a session
// already keyed AT the new epoch survives the gate catching up to it
// (regression: the pending used to record the gate's epoch instead of the
// hello's, so a joiner admitted mid-transition lost its fresh session).
func TestExporterEpochGateAndEviction(t *testing.T) {
	f := newFixture(t, nil, false)
	dial := func(client string, epoch uint64) *Stub {
		t.Helper()
		s, err := NewStub(StubConfig{
			RemoteName:     "store",
			RemoteEndpoint: "cloud",
			Endpoint:       f.net.Attach(client),
			Rand:           cryptoutil.NewPRNG(client + "-hs"),
			VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
				q, err := core.DecodeQuote(evidence)
				if err != nil {
					return err
				}
				return core.VerifyQuote(q, tr[:], f.vendor.Public(), f.storeMeas)
			},
			Pump:  func() error { return f.exporter.Serve() },
			Epoch: func() uint64 { return epoch },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	put := func(s *Stub, kv string) error {
		_, err := s.Handle(core.Envelope{Msg: core.Message{Op: "put", Data: []byte(kv)}})
		return err
	}

	if err := f.stub.Connect(); err != nil {
		t.Fatalf("legacy client: %v", err)
	}
	if err := put(f.stub, "a=1"); err != nil {
		t.Fatalf("legacy put: %v", err)
	}
	ahead := dial("laptop-ahead", 1)
	if err := ahead.Connect(); err != nil {
		t.Fatalf("epoch-1 client against ungated exporter: %v", err)
	}
	if got := ahead.SessionEpoch(); got != 1 {
		t.Fatalf("ahead session epoch = %d, want 1", got)
	}

	f.exporter.SetEpoch(1)
	if got := f.exporter.Epoch(); got != 1 {
		t.Fatalf("exporter epoch = %d, want 1", got)
	}
	if err := put(ahead, "b=2"); err != nil {
		t.Fatalf("epoch-1 session evicted by SetEpoch(1): %v", err)
	}
	if err := put(f.stub, "c=3"); err == nil {
		t.Fatal("epoch-0 session survived SetEpoch(1)")
	}
	if err := dial("laptop-replay", 0).Connect(); err == nil {
		t.Fatal("epoch-0 hello accepted by epoch-1 exporter")
	}
	if err := dial("laptop-cur", 1).Connect(); err != nil {
		t.Fatalf("epoch-1 hello refused by epoch-1 exporter: %v", err)
	}
	// SetEpoch(0) removes the gate without evicting the live session.
	f.exporter.SetEpoch(0)
	if err := put(ahead, "d=4"); err != nil {
		t.Fatalf("gate removal evicted a live session: %v", err)
	}
}
