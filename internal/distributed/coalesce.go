// Wire-level frame coalescing: concurrent requests sealed as one record.
//
// Pipelining (wire v3) lets concurrent callers share wire *rounds*, but
// each call still pays its own AEAD pass. Coalescing amortizes the crypto
// too: senders parked behind the flush leader enqueue plaintext sub-frames,
// and the leader drains the queue and seals up to a window of them as a
// single coalesced record — one AEAD pass, one auth tag, N requests. The
// exporter unseals once, fans the sub-frames through its existing worker
// pool, and coalesces the replies the same way on the return path.
//
// Wire format of a coalesced record (all integers big-endian):
//
//	magic   byte    0xC3
//	count   uint16  1..MaxCoalesce
//	corr    uint64 × count    strictly increasing
//	record  []byte  a securechan record whose extra AD is the bytes above
//
// The cleartext header exists so the receiver can account for every
// sub-frame even when one fails to decode — but it is not trusted bare:
// the sealed record's associated data covers the magic, the count, and
// every correlation ID (securechan.SealToAD), so a tampered header cannot
// survive the AEAD open. The record's plaintext is the coalesced body:
//
//	count   uint16  must equal the header count
//	repeat count times:
//	  subLen uint32; sub [subLen]byte
//
// where each request sub is a complete v3 request frame (frameCorr set,
// matching the header entry) and each reply sub is a complete reply frame
// (8-byte correlation prefix, status byte, payload). Sub-frames are the
// existing wire format verbatim, which is what makes v3-plain and
// coalesced traffic interoperable: a window of one seals a plain record,
// byte-identical to the pre-coalescing wire.
//
// The magic byte cannot collide with other datagram kinds: a plain record
// starts with its 8-byte big-endian send sequence (first byte zero until
// 2^56 records), and a handshake hello starts with the 2-byte length
// prefix of a 32-byte key field (first byte zero).
package distributed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/core"
	"lateral/internal/netsim"
	"lateral/internal/securechan"
)

// CoalMagic is the first byte of every coalesced record.
const CoalMagic = 0xC3

// MaxCoalesce bounds the sub-frames one coalesced record may carry — the
// decode-side cap, above any window a controller will pick.
const MaxCoalesce = 256

// DefaultCoalesceMax is the adaptive window controller's default ceiling
// when StubConfig.CoalesceMax is unset.
const DefaultCoalesceMax = 64

// IsCoalesced reports whether a datagram payload is a coalesced record.
func IsCoalesced(b []byte) bool { return len(b) > 0 && b[0] == CoalMagic }

// AppendCoalHeader appends the cleartext coalesced-record header (magic,
// count, correlation table) to dst and returns the extended slice. The
// caller must supply 1..MaxCoalesce strictly increasing correlation IDs;
// cutCoalHeader rejects anything else, so a header has exactly one valid
// encoding.
func AppendCoalHeader(dst []byte, corrs []uint64) []byte {
	dst = append(dst, CoalMagic, byte(len(corrs)>>8), byte(len(corrs)))
	for _, c := range corrs {
		dst = binary.BigEndian.AppendUint64(dst, c)
	}
	return dst
}

// cutCoalHeader parses and validates the cleartext header, returning the
// header bytes (the sealed record's extra AD), the rest (the record), and
// the sub-frame count. Correlation IDs must be strictly increasing — the
// canonical order the flush leader emits — so a duplicated or shuffled
// table never parses and no sub-frame can be accounted twice.
func cutCoalHeader(b []byte) (hdr, rest []byte, n int, err error) {
	if len(b) < 3 || b[0] != CoalMagic {
		return nil, nil, 0, fmt.Errorf("not a coalesced record: %w", ErrTransport)
	}
	n = int(b[1])<<8 | int(b[2])
	if n == 0 || n > MaxCoalesce {
		return nil, nil, 0, fmt.Errorf("coalesced count %d out of range: %w", n, ErrTransport)
	}
	hlen := 3 + 8*n
	// The header must be backed by at least a minimal sealed record (8-byte
	// sequence header), so a forged count cannot claim bytes it doesn't have.
	if len(b) < hlen+8 {
		return nil, nil, 0, fmt.Errorf("coalesced header of %d not backed by record: %w", n, ErrTransport)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		c := binary.BigEndian.Uint64(b[3+8*i:])
		if i > 0 && c <= prev {
			return nil, nil, 0, fmt.Errorf("coalesced correlation ids not strictly increasing: %w", ErrTransport)
		}
		prev = c
	}
	return b[:hlen], b[hlen:], n, nil
}

// coalCorr returns the i-th correlation ID of a validated header.
func coalCorr(hdr []byte, i int) uint64 {
	return binary.BigEndian.Uint64(hdr[3+8*i:])
}

// DecodeCoalHeader parses a coalesced-record header, returning the
// correlation IDs and the sealed record bytes (aliasing b). Exported for
// the fuzz harness and tooling; the hot path uses cutCoalHeader.
func DecodeCoalHeader(b []byte) (corrs []uint64, rest []byte, err error) {
	hdr, rest, n, err := cutCoalHeader(b)
	if err != nil {
		return nil, nil, err
	}
	corrs = make([]uint64, n)
	for i := range corrs {
		corrs[i] = coalCorr(hdr, i)
	}
	return corrs, rest, nil
}

// ReencodeCoalHeader decodes a coalesced-record header and re-emits it in
// canonical form, returning the re-encoded header and the untouched sealed
// record. Because the header admits exactly one encoding, the output is
// byte-identical to every valid input — the fuzz oracle asserts that.
func ReencodeCoalHeader(b []byte) (hdr, rest []byte, err error) {
	corrs, rest, err := DecodeCoalHeader(b)
	if err != nil {
		return nil, nil, err
	}
	return AppendCoalHeader(make([]byte, 0, 3+8*len(corrs)), corrs), rest, nil
}

// AppendCoalBody appends the coalesced body (the record plaintext) for the
// given sub-frames to dst and returns the extended slice.
func AppendCoalBody(dst []byte, subs [][]byte) []byte {
	dst = append(dst, byte(len(subs)>>8), byte(len(subs)))
	for _, sub := range subs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(sub)))
		dst = append(dst, sub...)
	}
	return dst
}

// cutCoalBodyCount parses and bounds the body's leading count. Each
// sub-frame costs at least its 4-byte length prefix plus one byte, so the
// count must be backed by the payload.
func cutCoalBodyCount(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("truncated coalesced body count: %w", ErrTransport)
	}
	n := int(b[0])<<8 | int(b[1])
	if n == 0 || n > MaxCoalesce {
		return 0, nil, fmt.Errorf("coalesced body count %d out of range: %w", n, ErrTransport)
	}
	if len(b)-2 < 5*n {
		return 0, nil, fmt.Errorf("coalesced body count %d not backed by payload: %w", n, ErrTransport)
	}
	return n, b[2:], nil
}

// cutCoalSub parses one length-prefixed sub-frame off the front of b. The
// returned sub aliases b.
func cutCoalSub(b []byte) (sub, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("truncated sub-frame length: %w", ErrTransport)
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n == 0 {
		return nil, nil, fmt.Errorf("empty sub-frame: %w", ErrTransport)
	}
	if len(b) < n {
		return nil, nil, fmt.Errorf("truncated sub-frame: %w", ErrTransport)
	}
	return b[:n], b[n:], nil
}

// DecodeCoalBody parses a coalesced body into its sub-frames (aliasing b).
// Truncated tables, zero-length subs, and trailing bytes are rejected.
func DecodeCoalBody(b []byte) ([][]byte, error) {
	n, rest, err := cutCoalBodyCount(b)
	if err != nil {
		return nil, err
	}
	subs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		var sub []byte
		sub, rest, err = cutCoalSub(rest)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after coalesced body: %w", len(rest), ErrTransport)
	}
	return subs, nil
}

// ReencodeCoalBody decodes a coalesced body and re-emits it in canonical
// form — the identity on every valid input, which the fuzz oracle checks.
func ReencodeCoalBody(b []byte) ([]byte, error) {
	subs, err := DecodeCoalBody(b)
	if err != nil {
		return nil, err
	}
	return AppendCoalBody(make([]byte, 0, len(b)), subs), nil
}

// CoalesceMonitor receives coalescing telemetry; telemetry.Metrics
// implements it structurally (the same pattern as Monitor), and a Monitor
// that doesn't is simply not called.
type CoalesceMonitor interface {
	// StubCoalesce records one coalesced record sealed carrying subframes
	// sub-frames (always ≥ 2; single flushes seal plain records).
	StubCoalesce(stub string, subframes int)
	// StubCoalesceWindow reports the adaptive controller's window after it
	// changed.
	StubCoalesceWindow(stub string, window int)
}

type nopCoalesceMonitor struct{}

func (nopCoalesceMonitor) StubCoalesce(string, int)       {}
func (nopCoalesceMonitor) StubCoalesceWindow(string, int) {}

// WindowStats is a snapshot of one adaptive window controller.
type WindowStats struct {
	// Window is the current coalescing window.
	Window int
	// Grows and Shrinks count AIMD adaptations: additive/slow-start
	// increases and multiplicative (halving) decreases.
	Grows   uint64
	Shrinks uint64
	// Flushes and SubFrames count observed drains and the items they
	// carried; SubFrames/Flushes is the achieved average window.
	Flushes   uint64
	SubFrames uint64
	// RateHz is the observed arrival rate (items per second) over the
	// controller's lifetime, measured on its injected clock.
	RateHz float64
	// State names the last adaptation: "idle" (nothing observed yet),
	// "grow", "shrink", or "steady".
	State string
}

// WindowController is the adaptive depth controller shared by the stub's
// frame coalescer and the shard layer's ingestion batcher. It replaces a
// fixed depth knob with AIMD: saturated flushes grow the window (doubling
// while a backlog proves arrivals outpace it — slow start — then by one),
// and a shed — a deadline or ErrOverloaded verdict — halves it. The
// controller never initiates work; it only sizes the batches the callers
// were going to seal anyway, so a window larger than the offered load
// costs nothing.
type WindowController struct {
	mu        sync.Mutex
	win       int
	max       int
	grows     uint64
	shrinks   uint64
	flushes   uint64
	subFrames uint64
	state     string

	clock func() time.Time
	start time.Time
	last  time.Time
}

// NewWindowController builds a controller with window ceiling max (0 means
// DefaultCoalesceMax; values above MaxCoalesce are clamped) starting at a
// window of one. clock defaults to time.Now; simulation and unit tests
// inject a virtual clock, which is what makes the observed arrival rate
// deterministic.
func NewWindowController(max int, clock func() time.Time) *WindowController {
	if max <= 0 {
		max = DefaultCoalesceMax
	}
	if max > MaxCoalesce {
		max = MaxCoalesce
	}
	if clock == nil {
		clock = time.Now
	}
	return &WindowController{win: 1, max: max, state: "idle", clock: clock}
}

// Window returns the current coalescing window.
func (c *WindowController) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.win
}

// ObserveFlush records one drain of drained items that left backlog items
// still queued, and adapts the window: a saturated flush with a backlog
// doubles it (arrivals demonstrably outpace the window), a merely
// saturated flush adds one, an unsaturated flush changes nothing (the
// window only shrinks on shed, never on a quiet period — idle callers
// must not have to re-earn their depth). Returns the window and whether
// it changed.
func (c *WindowController) ObserveFlush(drained, backlog int) (win int, changed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	if c.flushes == 0 {
		c.start = now
	}
	c.last = now
	c.flushes++
	c.subFrames += uint64(drained)
	old := c.win
	switch {
	case drained >= c.win && backlog > 0 && c.win < c.max:
		c.win *= 2
		if c.win > c.max {
			c.win = c.max
		}
	case drained >= c.win && c.win < c.max:
		c.win++
	}
	if c.win != old {
		c.grows++
		c.state = "grow"
	} else if c.state != "shrink" || drained < old {
		c.state = "steady"
	}
	return c.win, c.win != old
}

// ObserveShed reacts to a shed verdict — a call resolved with ErrDeadline
// or ErrOverloaded — by halving the window (multiplicative decrease, floor
// one). Returns the window and whether it changed.
func (c *WindowController) ObserveShed() (win int, changed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.win
	c.win /= 2
	if c.win < 1 {
		c.win = 1
	}
	if c.win != old {
		c.shrinks++
	}
	c.state = "shrink"
	return c.win, c.win != old
}

// Stats snapshots the controller.
func (c *WindowController) Stats() WindowStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := WindowStats{
		Window:    c.win,
		Grows:     c.grows,
		Shrinks:   c.shrinks,
		Flushes:   c.flushes,
		SubFrames: c.subFrames,
		State:     c.state,
	}
	if elapsed := c.last.Sub(c.start); elapsed > 0 {
		s.RateHz = float64(c.subFrames) / elapsed.Seconds()
	}
	return s
}

// pendingSub is one request frame queued behind the flush leader: the
// caller's correlation ID and waiter (so a failed flush can resolve it),
// the session generation it was issued under (so a flush never seals a
// frame onto a session its caller was already broadcast off of), and the
// pooled frame buffer holding the encoded request.
//
// A sub has two stakeholders — the flush leader (until the frame is sealed
// or resolved) and the caller (whose demux loop must not mistake a
// not-yet-sent frame for a lost one). flushed flips once the flush has
// disposed of the frame; refs counts the stakeholders, and the last one to
// disengage (subDone) recycles the struct.
type pendingSub struct {
	gen     uint64
	corr    uint64
	w       *waiter
	buf     *[]byte
	frame   []byte
	flushed atomic.Bool
	refs    atomic.Int32
}

var subPool = sync.Pool{New: func() any { return new(pendingSub) }}

// coalescer is the stub-side flush queue. Exactly one goroutine at a time
// holds flushing; everyone else appends and parks on their waiter. The
// leader loops until it observes an empty queue under the lock, so an
// enqueuer either sees flushing set (the leader's next iteration collects
// its frame) or becomes the leader itself — no frame is ever stranded.
type coalescer struct {
	mu       sync.Mutex
	flushing bool
	queue    []*pendingSub
	// scratch is the leader's drain batch, reused across flushes (only the
	// flush leader touches it).
	scratch []*pendingSub
}

// submit enqueues one sealed-frame-to-be behind the flush leader and
// returns the caller's queue entry, so the demux loop can tell "frame not
// yet on the wire" from "reply lost". Normally nothing is transmitted
// here: the receive-token holder flushes the queue immediately before it
// pays for a wire round (flushQueue), which is what coalesces every frame
// that arrived during the previous round into one sealed record. The one
// exception is a submit landing while a round is already in flight
// (s.pumping): waiting would park this frame a full round behind the
// wire, so the submitter flushes immediately — the record reaches the
// remote in time for the in-flight round's serve, exactly as the
// uncoalesced wire behaved.
func (s *Stub) submit(gen, corr uint64, w *waiter, fp *[]byte, frame []byte) *pendingSub {
	sub := subPool.Get().(*pendingSub)
	sub.gen, sub.corr, sub.w, sub.buf, sub.frame = gen, corr, w, fp, frame
	sub.refs.Store(2) // the flush leader and the caller
	c := &s.coal
	c.mu.Lock()
	c.queue = append(c.queue, sub)
	c.mu.Unlock()
	if s.pumping.Load() {
		s.gatherWave()
		s.flushQueue()
	}
	return sub
}

// gatherWave yields until the flush queue stops growing (bounded), so a
// wave of concurrent submitters — typically the callers a drained round
// just woke, all racing their next request in — lands in one drain and
// shares records instead of each sealing its own. It returns early when a
// flush leader is already active (the leader's drain loop collects late
// arrivals anyway) and gives up after a fixed yield budget, so a lone
// caller pays one scheduler yield, never a stall: at any real RTT the
// gather is noise, and correctness never depends on it.
func (s *Stub) gatherWave() {
	c := &s.coal
	last := -1
	for i := 0; i < 64; i++ {
		c.mu.Lock()
		n, flushing := len(c.queue), c.flushing
		c.mu.Unlock()
		if flushing || n == last {
			return
		}
		last = n
		runtime.Gosched()
	}
}

// flushQueue drains the coalescer until it observes an empty queue,
// sealing at most a window of sub-frames per record. Exactly one flusher
// runs at a time; a caller that loses the flushing flag returns
// immediately (its frame is the current flusher's to dispose of). Errors —
// the flusher's own call included — are resolved through the waiters.
func (s *Stub) flushQueue() {
	c := &s.coal
	c.mu.Lock()
	if c.flushing {
		c.mu.Unlock()
		return
	}
	c.flushing = true
	for len(c.queue) > 0 {
		n := len(c.queue)
		if win := s.win.Window(); n > win {
			n = win
		}
		batch := append(c.scratch[:0], c.queue[:n]...)
		m := copy(c.queue, c.queue[n:])
		for i := m; i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = c.queue[:m]
		backlog := m
		c.mu.Unlock()
		s.flushBatch(batch, backlog)
		c.scratch = batch[:0]
		c.mu.Lock()
	}
	c.flushing = false
	c.mu.Unlock()
}

// flushBatch seals one record carrying the drained batch and transmits it.
// A batch of one seals a plain v3 record — byte-identical to the
// pre-coalescing wire — so sequential callers and mixed-version peers
// interoperate unchanged; two or more seal a coalesced record. Stale
// sub-frames (session replaced since enqueue) are dropped: their callers
// were already resolved by the replacing path's broadcast. A seal or send
// failure resolves every drained caller whose registration this flush
// still owns.
func (s *Stub) flushBatch(batch []*pendingSub, backlog int) {
	s.mu.Lock()
	sess, gen := s.sess, s.gen
	s.mu.Unlock()

	// Partition in place: live sub-frames (current generation) to the
	// front. Stale ones are simply marked disposed — their waiters already
	// hold (or are about to receive) the replacing path's broadcast.
	live := batch[:0]
	for _, sub := range batch {
		if sub.gen == gen && sess != nil {
			live = append(live, sub)
		} else {
			sub.flushed.Store(true)
			s.subDone(sub)
		}
	}
	if len(live) == 0 {
		return
	}

	// Canonical order: the coalesced header demands strictly increasing
	// correlation IDs. Enqueue order is close to sorted already (IDs are
	// minted monotonically under mu), so an insertion sort is cheap and
	// allocation-free.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].corr < live[j-1].corr; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}

	var rec []byte
	var err error
	rp := getBuf()
	if len(live) == 1 {
		s.sendMu.Lock()
		rec, err = sess.SealTo((*rp)[:0], live[0].frame)
		if err == nil {
			err = s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, rec)
		}
		s.sendMu.Unlock()
	} else {
		// Header and body in pooled scratch; the sealed record is appended
		// directly after the header so the datagram goes out as one slice.
		hdr := (*rp)[:0]
		hdr = append(hdr, CoalMagic, byte(len(live)>>8), byte(len(live)))
		for _, sub := range live {
			hdr = binary.BigEndian.AppendUint64(hdr, sub.corr)
		}
		bp := getBuf()
		body := append((*bp)[:0], byte(len(live)>>8), byte(len(live)))
		for _, sub := range live {
			body = binary.BigEndian.AppendUint32(body, uint32(len(sub.frame)))
			body = append(body, sub.frame...)
		}
		s.sendMu.Lock()
		rec, err = sess.SealToAD(hdr, body, hdr)
		if err == nil {
			err = s.cfg.Endpoint.Send(s.cfg.RemoteEndpoint, rec)
		}
		s.sendMu.Unlock()
		putBuf(bp, body)
		if rec == nil {
			rec = hdr
		}
	}
	putBuf(rp, rec)

	if err != nil {
		for _, sub := range live {
			if s.unregister(gen, sub.corr) {
				sub.w.ch <- result{err: err}
			}
			sub.flushed.Store(true)
			s.subDone(sub)
		}
		return
	}
	s.records.Add(1)
	if n := len(live); n > 1 {
		s.coalRecords.Add(1)
		s.coalSubs.Add(uint64(n))
		s.cmon.StubCoalesce(s.name, n)
	}
	if win, changed := s.win.ObserveFlush(len(live), backlog); changed {
		s.cmon.StubCoalesceWindow(s.name, win)
	}
	for _, sub := range live {
		sub.flushed.Store(true)
		s.subDone(sub)
	}
}

// subDone disengages one of a sub's two stakeholders; the last one out
// recycles the struct and its frame buffer. The waiter is never touched
// here — its completion is owned by whichever path unregistered it.
func (s *Stub) subDone(sub *pendingSub) {
	if sub.refs.Add(-1) != 0 {
		return
	}
	putBuf(sub.buf, sub.frame)
	sub.gen, sub.corr, sub.w, sub.buf, sub.frame = 0, 0, nil, nil, nil
	sub.flushed.Store(false)
	subPool.Put(sub)
}

// demuxCoalesced opens one coalesced reply record and routes every
// sub-reply it carries, mirroring demux: each sub-frame is a complete
// reply frame whose correlation prefix must match the AD-bound header
// entry at its position. A header/body mismatch or a malformed body is a
// session-level failure (the record authenticated, so the peer's sealer is
// broken); orphaned sub-replies are counted and dropped individually.
func (s *Stub) demuxCoalesced(sess *securechan.Session, gen, ownCorr uint64, dg netsim.Datagram) (res result, mine bool, err error) {
	hdr, sealed, n, herr := cutCoalHeader(dg.Payload)
	if herr != nil {
		dg.Release()
		return result{}, false, herr
	}
	ob := getBuf()
	plain, oerr := sess.OpenToAD((*ob)[:0], sealed, hdr)
	if oerr != nil {
		dg.Release()
		putBuf(ob, nil)
		return result{}, false, oerr
	}
	bn, rest, berr := cutCoalBodyCount(plain)
	if berr == nil && bn != n {
		berr = fmt.Errorf("coalesced body count %d for header of %d: %w", bn, n, ErrTransport)
	}
	for i := 0; berr == nil && i < n; i++ {
		var sub []byte
		sub, rest, berr = cutCoalSub(rest)
		if berr != nil {
			break
		}
		if len(sub) < 9 {
			berr = fmt.Errorf("short coalesced reply frame: %w", ErrTransport)
			break
		}
		corr := binary.BigEndian.Uint64(sub)
		if corr != coalCorr(hdr, i) {
			berr = fmt.Errorf("coalesced reply correlation mismatch: %w", ErrTransport)
			break
		}
		r := s.decodeReply(sub[8:])

		s.mu.Lock()
		var w *waiter
		if s.gen == gen {
			if ww, ok := s.waiters[corr]; ok {
				delete(s.waiters, corr)
				w = ww
			}
		}
		s.mu.Unlock()
		switch {
		case w == nil:
			s.orphans.Add(1)
			s.mon.StubOrphan(s.name)
		case corr == ownCorr:
			res, mine = r, true
		default:
			w.ch <- r
		}
	}
	if berr == nil && len(rest) != 0 {
		berr = fmt.Errorf("%d trailing bytes after coalesced reply: %w", len(rest), ErrTransport)
	}
	dg.Release()
	putBuf(ob, plain)
	return res, mine, berr
}

// coalAssembly collects one coalesced request record's sub-replies on the
// exporter. Sub-frames execute concurrently across the worker pool; each
// writes its encoded reply frame into its own slot, and the last one to
// finish seals the single coalesced reply. The decrypted plaintext buffer
// is held until then because every sub-frame's Data aliases it.
type coalAssembly struct {
	ss    *sessState
	from  string
	corrs []uint64
	slots [][]byte
	bufs  []*[]byte
	ob    *[]byte
	raw   []byte
	// pending counts sub-frames still executing; the executor that
	// decrements it to zero flushes the assembly.
	pending atomic.Int32
}

var asmPool = sync.Pool{New: func() any { return new(coalAssembly) }}

// addSlot reserves the next reply slot for corr and returns its index.
func (a *coalAssembly) addSlot(corr uint64) int {
	a.corrs = append(a.corrs, corr)
	bp := getBuf()
	a.bufs = append(a.bufs, bp)
	a.slots = append(a.slots, (*bp)[:0])
	return len(a.slots) - 1
}

// coalFault, when armed, perturbs the next coalesced record the exporter
// opens: "drop" removes one sub-frame entirely (its caller never gets a
// sub-reply and resolves with a typed transport error on its next dry
// round), "tamper" corrupts one sub-frame's flags byte before decode (its
// caller sees a typed remote error). The simulation harness arms this to
// prove sibling sub-frames are unaffected — the AEAD makes sub-frame
// surgery at the network layer impossible, so the fault lives behind it.
type coalFault struct {
	mu   sync.Mutex
	mode string
	idx  int
}

// FaultNextCoalesced arms the exporter's coalesce fault for the next
// coalesced record: mode is "drop" or "tamper", idx selects the sub-frame
// (wrapped into range). Test/simulation hook only.
func (e *Exporter) FaultNextCoalesced(mode string, idx int) {
	e.fault.mu.Lock()
	e.fault.mode, e.fault.idx = mode, idx
	e.fault.mu.Unlock()
}

// takeFault disarms and returns the pending coalesce fault, if any.
func (e *Exporter) takeFault() (mode string, idx int) {
	e.fault.mu.Lock()
	mode, idx = e.fault.mode, e.fault.idx
	e.fault.mode = ""
	e.fault.mu.Unlock()
	return mode, idx
}

// openCoalesced opens one coalesced request record and appends one job per
// executable sub-frame to jobs. The header is the record's extra AD, so a
// tampered count or correlation table fails the open. Ping sub-frames are
// answered in their slots immediately; a sub-frame that fails to decode, or
// whose embedded correlation ID disagrees with the AD-bound header, gets a
// statusErr sub-reply addressed by the header entry — its siblings are
// unaffected. When nothing is left to execute the reply seals here.
func (e *Exporter) openCoalesced(ss *sessState, dg netsim.Datagram, jobs *[]*job) error {
	hdr, sealed, n, err := cutCoalHeader(dg.Payload)
	if err != nil {
		dg.Release()
		return err
	}
	ob := getBuf()
	ss.openMu.Lock()
	plain, oerr := ss.sess.OpenToAD((*ob)[:0], sealed, hdr)
	ss.openMu.Unlock()
	if oerr != nil {
		// A coalesced record can never be hello-shaped (the magic byte sees
		// to it), so unlike openRequest there is no session-reset path here:
		// drop, preserving the failure.
		dg.Release()
		putBuf(ob, nil)
		return fmt.Errorf("distributed: undecryptable coalesced record from %s: %w", dg.From, oerr)
	}
	bn, rest, berr := cutCoalBodyCount(plain)
	if berr == nil && bn != n {
		berr = fmt.Errorf("coalesced body count %d for header of %d: %w", bn, n, ErrTransport)
	}
	if berr != nil {
		dg.Release()
		putBuf(ob, plain)
		return berr
	}

	asm := asmPool.Get().(*coalAssembly)
	asm.ss, asm.from, asm.ob, asm.raw = ss, dg.From, ob, plain
	asm.corrs, asm.slots, asm.bufs = asm.corrs[:0], asm.slots[:0], asm.bufs[:0]
	fmode, fidx := e.takeFault()
	if fmode != "" && n > 0 {
		fidx = ((fidx % n) + n) % n
	}

	for i := 0; i < n; i++ {
		var sub []byte
		sub, rest, berr = cutCoalSub(rest)
		if berr != nil {
			break
		}
		corr := coalCorr(hdr, i)
		if fmode == "drop" && i == fidx {
			continue
		}
		if fmode == "tamper" && i == fidx {
			sub[0] |= 0x80 // an unknown frame-version bit: decode must reject
		}
		j := jobPool.Get().(*job)
		j.req = Request{}
		derr := decodeRequestInto(sub, &j.req, &e.ops)
		if derr == nil && (!j.req.HasCorr || j.req.Corr != corr) {
			derr = fmt.Errorf("sub-frame correlation disagrees with header: %w", ErrTransport)
		}
		switch {
		case derr != nil:
			slot := asm.addSlot(corr)
			frame := binary.BigEndian.AppendUint64(asm.slots[slot], corr)
			frame = append(frame, statusErr)
			frame = append(frame, derr.Error()...)
			asm.slots[slot] = frame
			jobPool.Put(j)
		case j.req.Op == PingOp:
			slot := asm.addSlot(corr)
			asm.slots[slot] = appendReplyFrame(asm.slots[slot], j.req, core.Message{Op: PongOp}, nil)
			jobPool.Put(j)
		default:
			j.ss, j.from, j.asm, j.idx = ss, dg.From, asm, asm.addSlot(corr)
			*jobs = append(*jobs, j)
		}
	}
	if berr == nil && len(rest) != 0 {
		berr = fmt.Errorf("%d trailing bytes after coalesced body: %w", len(rest), ErrTransport)
	}
	dg.Release()
	if berr != nil {
		// Malformed body: unwind the jobs we queued (none have run — the
		// caller dispatches only after collect returns) and drop the record.
		if nq := len(*jobs); nq > 0 {
			kept := (*jobs)[:0]
			for _, j := range *jobs {
				if j.asm == asm {
					jobPool.Put(j)
					continue
				}
				kept = append(kept, j)
			}
			*jobs = kept
		}
		e.releaseAssembly(asm)
		return berr
	}
	pending := 0
	for _, j := range *jobs {
		if j.asm == asm {
			pending++
		}
	}
	if pending == 0 {
		return e.flushAssembly(asm)
	}
	asm.pending.Store(int32(pending))
	return nil
}

// executeSub runs one coalesced sub-frame and writes its reply frame into
// its assembly slot; the last sub-frame to finish seals the coalesced
// reply. Mirrors execute, including batched-ingestion sub-frames.
func (e *Exporter) executeSub(j *job) error {
	asm, idx := j.asm, j.idx
	var msg core.Message
	var herr error
	var bb *[]byte
	if j.req.Op == BatchOp {
		msg, bb, herr = e.runBatch(j.req)
	} else {
		env := core.Envelope{
			Msg:   core.Message{Op: j.req.Op, Data: j.req.Data},
			Span:  j.req.Span,
			Taint: j.req.Taint,
		}
		if j.req.Budget > 0 {
			// Same contract as execute: guarded delivery clones the payload
			// because the watchdog may abandon the handler while it still
			// reads the shared decrypted buffer.
			env.Deadline = e.clock().Add(j.req.Budget)
			env.Msg.Data = env.Msg.CloneData()
		}
		msg, herr = e.sys.DeliverEnvelope(e.target, env)
	}
	asm.slots[idx] = appendReplyFrame(asm.slots[idx], j.req, msg, herr)
	if bb != nil {
		putBuf(bb, msg.Data)
	}
	if asm.pending.Add(-1) == 0 {
		return e.flushAssembly(asm)
	}
	return nil
}

// flushAssembly seals and transmits the coalesced reply: header (magic,
// count, the slot correlation IDs) as extra AD, body of length-prefixed
// reply frames, one AEAD pass for the lot. Assemblies that lost every
// sub-frame (all dropped by fault) send nothing.
func (e *Exporter) flushAssembly(asm *coalAssembly) error {
	var err error
	if len(asm.slots) > 0 {
		rp := getBuf()
		hdr := (*rp)[:0]
		hdr = append(hdr, CoalMagic, byte(len(asm.corrs)>>8), byte(len(asm.corrs)))
		for _, c := range asm.corrs {
			hdr = binary.BigEndian.AppendUint64(hdr, c)
		}
		bp := getBuf()
		body := append((*bp)[:0], byte(len(asm.slots)>>8), byte(len(asm.slots)))
		for _, slot := range asm.slots {
			body = binary.BigEndian.AppendUint32(body, uint32(len(slot)))
			body = append(body, slot...)
		}
		var rec []byte
		asm.ss.sendMu.Lock()
		rec, err = asm.ss.sess.SealToAD(hdr, body, hdr)
		if err == nil {
			err = e.ep.Send(asm.from, rec)
		}
		asm.ss.sendMu.Unlock()
		putBuf(bp, body)
		if rec == nil {
			rec = hdr
		}
		putBuf(rp, rec)
	}
	e.releaseAssembly(asm)
	return err
}

// releaseAssembly returns an assembly's buffers to their pools.
func (e *Exporter) releaseAssembly(asm *coalAssembly) {
	for i, bp := range asm.bufs {
		putBuf(bp, asm.slots[i])
	}
	putBuf(asm.ob, asm.raw)
	corrs, slots, bufs := asm.corrs[:0], asm.slots[:0], asm.bufs[:0]
	*asm = coalAssembly{corrs: corrs, slots: slots, bufs: bufs}
	asmPool.Put(asm)
}

// appendReplyFrame appends one complete reply frame — correlation prefix
// (when the request carried one), status byte, payload — to dst. The
// single-record reply path and the coalesced slots share this encoding.
func appendReplyFrame(dst []byte, req Request, msg core.Message, herr error) []byte {
	if req.HasCorr {
		dst = binary.BigEndian.AppendUint64(dst, req.Corr)
	}
	switch {
	case errors.Is(herr, core.ErrDeadline):
		dst = append(dst, statusDeadline)
		dst = append(dst, herr.Error()...)
	case errors.Is(herr, core.ErrOverloaded):
		dst = append(dst, statusOverload)
		dst = append(dst, herr.Error()...)
	case errors.Is(herr, core.ErrPolicy):
		dst = append(dst, statusPolicy)
		dst = append(dst, herr.Error()...)
	case herr != nil:
		dst = append(dst, statusErr)
		dst = append(dst, herr.Error()...)
	default:
		dst = append(dst, statusOK)
		dst = appendCall(dst, msg.Op, msg.Data)
	}
	return dst
}
