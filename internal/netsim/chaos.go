package netsim

import (
	"sync"
	"time"
)

// Clock is the minimal time source the time-based chaos adversaries read.
// It is consumer-defined (netsim never arms timers, it only stamps
// datagrams), so both the wall clock and simtest's virtual clock satisfy
// it structurally.
type Clock interface {
	Now() time.Time
}

// This file holds the fault-injection adversaries: unlike the classic
// Dolev-Yao attackers in netsim.go (which target confidentiality and
// integrity), Delayer and Partitioner model the network itself misbehaving
// — congestion reordering flights and partitions cutting machines off.
// Secure channels already survive them cryptographically; the cluster
// layer must additionally survive them operationally (failover, retry,
// reconnection).

// Delayer holds back a seeded, deterministic fraction of datagrams and
// releases each one only after Hold further datagrams have passed — the
// network reordering traffic under congestion. Identical seeds replay
// identical delay patterns, so failover tests are reproducible.
type Delayer struct {
	mu      sync.Mutex
	prob    float64
	hold    int
	state   uint64
	seen    int
	held    []heldDatagram
	delayed int64

	// clock and holdFor select the time-based mode: a detained datagram is
	// released once holdFor has elapsed on clock (instead of after hold
	// further datagrams). With a virtual clock the detention pattern is a
	// pure function of the seed and the advance schedule.
	clock   Clock
	holdFor time.Duration
}

type heldDatagram struct {
	d         Datagram
	release   int       // seen-count at which the datagram re-enters the wire
	releaseAt time.Time // clock instant, in time-based mode
}

// NewDelayer builds a delayer that detains each datagram with probability
// prob (0..1), releasing it after hold subsequent datagrams have passed.
// The seed fixes the detention pattern.
func NewDelayer(seed uint64, prob float64, hold int) *Delayer {
	if hold < 1 {
		hold = 1
	}
	return &Delayer{prob: prob, hold: hold, state: seed}
}

// NewTimedDelayer builds a delayer whose detentions are time-based: each
// detained datagram re-enters the wire on the first traffic after holdFor
// has elapsed on clock. Driven by a simulated clock this makes congestion
// a scheduled, replayable event rather than a traffic-count artifact.
func NewTimedDelayer(seed uint64, prob float64, holdFor time.Duration, clock Clock) *Delayer {
	if holdFor <= 0 {
		holdFor = time.Millisecond
	}
	return &Delayer{prob: prob, hold: 1, state: seed, clock: clock, holdFor: holdFor}
}

var _ Adversary = (*Delayer)(nil)

// rand steps a splitmix64 generator; netsim stays stdlib-only.
func (dl *Delayer) rand() float64 {
	dl.state += 0x9e3779b97f4a7c15
	z := dl.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Intercept detains or forwards the datagram and releases any detained
// datagrams whose hold has expired (after the current one, preserving the
// reordering).
func (dl *Delayer) Intercept(d Datagram) []Datagram {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	dl.seen++
	var now time.Time
	if dl.clock != nil {
		now = dl.clock.Now()
	}
	var out []Datagram
	if dl.rand() < dl.prob {
		h := heldDatagram{d: d, release: dl.seen + dl.hold}
		if dl.clock != nil {
			h.releaseAt = now.Add(dl.holdFor)
		}
		dl.held = append(dl.held, h)
		dl.delayed++
	} else {
		out = append(out, d)
	}
	rest := dl.held[:0]
	for _, h := range dl.held {
		due := h.release <= dl.seen
		if dl.clock != nil {
			due = !h.releaseAt.After(now)
		}
		if due {
			out = append(out, h.d)
		} else {
			rest = append(rest, h)
		}
	}
	dl.held = rest
	return out
}

// Flush surrenders every still-detained datagram, oldest first. The caller
// decides whether to re-inject them (Network.Inject) or drop them on the
// floor (a delay that outlived the conversation).
func (dl *Delayer) Flush() []Datagram {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	out := make([]Datagram, len(dl.held))
	for i, h := range dl.held {
		out[i] = h.d
	}
	dl.held = nil
	return out
}

// Delayed reports how many datagrams were detained so far (flushed or not).
func (dl *Delayer) Delayed() int64 {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.delayed
}

// Chain composes adversaries in order: every datagram a link emits is fed
// to the next link, so a partition, a delayer, and a tamperer can act on
// the same wire simultaneously — the composition fault schedules need.
// Links may be added while traffic flows (SetLinks replaces the list).
type Chain struct {
	mu    sync.Mutex
	links []Adversary
}

// NewChain builds a chain over the given adversaries (nil links skipped).
func NewChain(links ...Adversary) *Chain {
	c := &Chain{}
	c.SetLinks(links...)
	return c
}

var _ Adversary = (*Chain)(nil)

// SetLinks replaces the chain's adversaries.
func (c *Chain) SetLinks(links ...Adversary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links = c.links[:0]
	for _, l := range links {
		if l != nil {
			c.links = append(c.links, l)
		}
	}
}

// Intercept runs the datagram through every link in order.
func (c *Chain) Intercept(d Datagram) []Datagram {
	c.mu.Lock()
	links := make([]Adversary, len(c.links))
	copy(links, c.links)
	c.mu.Unlock()
	cur := []Datagram{d}
	for _, l := range links {
		var next []Datagram
		for _, dg := range cur {
			next = append(next, l.Intercept(dg)...)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Partitioner silently drops traffic crossing configured cuts: whole
// endpoints (Isolate) or single directed links (BlockLink). Everything
// else passes untouched. It is fully deterministic.
type Partitioner struct {
	mu       sync.Mutex
	isolated map[string]bool
	links    map[[2]string]bool
	dropped  int64
}

// NewPartitioner builds a partitioner with no cuts.
func NewPartitioner() *Partitioner {
	return &Partitioner{
		isolated: make(map[string]bool),
		links:    make(map[[2]string]bool),
	}
}

var _ Adversary = (*Partitioner)(nil)

// Isolate cuts an endpoint off entirely: nothing in, nothing out — the
// crashed-machine (or unplugged-cable) model.
func (p *Partitioner) Isolate(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[name] = true
}

// BlockLink cuts one directed link only; the reverse direction still
// works. Blocking just the reply direction models a machine that receives
// and processes a request whose answer then never arrives — the in-flight
// window failover tests need.
func (p *Partitioner) BlockLink(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links[[2]string{from, to}] = true
}

// Heal removes every cut involving the endpoint.
func (p *Partitioner) Heal(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.isolated, name)
	for l := range p.links {
		if l[0] == name || l[1] == name {
			delete(p.links, l)
		}
	}
}

// HealAll removes every cut.
func (p *Partitioner) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated = make(map[string]bool)
	p.links = make(map[[2]string]bool)
}

// Dropped reports how many datagrams the partition swallowed.
func (p *Partitioner) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Intercept drops datagrams crossing a cut and forwards the rest.
func (p *Partitioner) Intercept(d Datagram) []Datagram {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isolated[d.From] || p.isolated[d.To] || p.links[[2]string{d.From, d.To}] {
		p.dropped++
		return nil
	}
	return []Datagram{d}
}
