package netsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSendRecvRoundTrip(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	d, ok := b.Recv()
	if !ok || string(d.Payload) != "hello" || d.From != "a" {
		t.Errorf("recv = %+v, %v", d, ok)
	}
	if _, ok := b.Recv(); ok {
		t.Error("empty inbox returned datagram")
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	n := New()
	a := n.Attach("a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("unknown target: got %v", err)
	}
}

func TestAttachIsIdempotent(t *testing.T) {
	n := New()
	if n.Attach("x") != n.Attach("x") {
		t.Error("re-attach returned a different endpoint")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	d, _ := b.Recv()
	if string(d.Payload) != "original" {
		t.Error("payload aliased sender's buffer")
	}
}

func TestStatsAndPending(t *testing.T) {
	n := New()
	a := n.Attach("a")
	n.Attach("b")
	for i := 0; i < 3; i++ {
		if err := a.Send("b", []byte("xx")); err != nil {
			t.Fatal(err)
		}
	}
	sa := n.StatsFor("a")
	sb := n.StatsFor("b")
	if sa.Sent != 3 || sa.SentBytes != 6 {
		t.Errorf("sender stats = %+v", sa)
	}
	if sb.Received != 3 || sb.RecvBytes != 6 {
		t.Errorf("receiver stats = %+v", sb)
	}
	if n.Attach("b").Pending() != 3 {
		t.Errorf("pending = %d", n.Attach("b").Pending())
	}
	if got := n.Attach("b").Drain(); len(got) != 3 {
		t.Errorf("drain = %d", len(got))
	}
	if n.Attach("b").Pending() != 0 {
		t.Error("pending after drain != 0")
	}
	if s := n.StatsFor("ghost"); s.Sent != 0 {
		t.Error("unknown endpoint has stats")
	}
}

func TestRecorderSeesEverything(t *testing.T) {
	n := New()
	rec := &Recorder{}
	n.SetAdversary(rec)
	a := n.Attach("a")
	b := n.Attach("b")
	secret := []byte("PLAINTEXT-PASSWORD")
	if err := a.Send("b", secret); err != nil {
		t.Fatal(err)
	}
	if !rec.Saw(secret) {
		t.Error("passive adversary missed plaintext")
	}
	if d, ok := b.Recv(); !ok || !bytes.Equal(d.Payload, secret) {
		t.Error("recorder must not disturb delivery")
	}
	if msgs := rec.Messages(); len(msgs) != 1 || msgs[0].From != "a" {
		t.Errorf("messages = %+v", msgs)
	}
	if rec.Saw([]byte("never-sent")) {
		t.Error("Saw false positive")
	}
	if rec.Saw(nil) {
		t.Error("Saw(nil) = true")
	}
}

func TestTampererCorrupts(t *testing.T) {
	n := New()
	n.SetAdversary(Tamperer{})
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("ledger=100")); err != nil {
		t.Fatal(err)
	}
	d, _ := b.Recv()
	if string(d.Payload) == "ledger=100" {
		t.Error("tamperer did not modify payload")
	}
}

func TestDropperDrops(t *testing.T) {
	n := New()
	n.SetAdversary(Dropper{})
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("drop should be silent: %v", err)
	}
	if _, ok := b.Recv(); ok {
		t.Error("dropped datagram delivered")
	}
}

func TestReplayerDuplicates(t *testing.T) {
	n := New()
	n.SetAdversary(Replayer{})
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("pay $5")); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (original + replay)", b.Pending())
	}
}

func TestRedirectorMITM(t *testing.T) {
	n := New()
	n.SetAdversary(&Redirector{Victim: "server", Attacker: "mallory"})
	a := n.Attach("client")
	n.Attach("server")
	m := n.Attach("mallory")
	if err := a.Send("server", []byte("login")); err != nil {
		t.Fatal(err)
	}
	if n.Attach("server").Pending() != 0 {
		t.Error("victim still received the datagram")
	}
	d, ok := m.Recv()
	if !ok || string(d.Payload) != "login" {
		t.Error("attacker did not receive redirected traffic")
	}
}

func TestInjectBypassesAdversary(t *testing.T) {
	n := New()
	n.SetAdversary(Dropper{})
	b := n.Attach("b")
	if err := n.Inject(Datagram{From: "forged", To: "b", Payload: []byte("spoof")}); err != nil {
		t.Fatal(err)
	}
	d, ok := b.Recv()
	if !ok || d.From != "forged" {
		t.Error("injected datagram not delivered")
	}
	if err := n.Inject(Datagram{To: "ghost"}); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("inject to unknown: got %v", err)
	}
}

// Property: without an adversary, every sent datagram is delivered exactly
// once, in order, and byte-identical — netsim conserves traffic.
func TestQuickDeliveryConservation(t *testing.T) {
	f := func(payloads [][]byte) bool {
		n := New()
		a := n.Attach("a")
		b := n.Attach("b")
		for _, p := range payloads {
			if err := a.Send("b", p); err != nil {
				return false
			}
		}
		for _, p := range payloads {
			d, ok := b.Recv()
			if !ok || !bytes.Equal(d.Payload, p) || d.From != "a" {
				return false
			}
		}
		_, extra := b.Recv()
		return !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
