// Package netsim simulates the untrusted network between machines — and,
// per §II-D, between processors: "communication busses within a system
// must be considered untrusted networks as well, the difference merely is
// the length of the wires."
//
// The network delivers datagrams between named endpoints through an
// optional active adversary in the Dolev-Yao style: it sees every message
// and may record, drop, modify, redirect, or inject traffic. Secure
// channels (internal/securechan) must survive all of that.
package netsim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoEndpoint is returned when sending to or from an unknown endpoint.
var ErrNoEndpoint = errors.New("netsim: no such endpoint")

// Datagram is one message on the wire.
type Datagram struct {
	From    string
	To      string
	Payload []byte

	// buf, when non-nil, is the pooled buffer backing Payload; Release
	// returns it. Clones and injected datagrams carry none.
	buf *[]byte
}

// payloadPool recycles wire payload buffers so the record hot path (seal →
// Send → Recv → open) allocates nothing at steady state. Buffers start at
// pooledBufCap and grow in place for larger payloads.
var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, pooledBufCap)
	return &b
}}

const pooledBufCap = 4096

// Release returns the datagram's payload buffer to the transport pool.
// Only a consumer that owns the datagram outright (popped it with Recv and
// finished reading Payload) may call it; Payload must not be touched
// afterwards. On a datagram without a pooled buffer — adversary clones,
// injected frames — it is a no-op, so calling it unconditionally is safe.
func (d *Datagram) Release() {
	if d.buf == nil {
		return
	}
	*d.buf = (*d.buf)[:0]
	payloadPool.Put(d.buf)
	d.buf, d.Payload = nil, nil
}

// clone deep-copies a datagram into unpooled memory.
func (d Datagram) clone() Datagram {
	p := make([]byte, len(d.Payload))
	copy(p, d.Payload)
	return Datagram{From: d.From, To: d.To, Payload: p}
}

// Adversary intercepts every datagram in flight. It returns the datagrams
// to actually deliver: return the input unchanged for a passive attacker,
// nothing to drop, something else to tamper or redirect, or extras to
// inject.
type Adversary interface {
	Intercept(d Datagram) []Datagram
}

// Stats counts traffic per endpoint.
type Stats struct {
	Sent      int64
	SentBytes int64
	Received  int64
	RecvBytes int64
}

// Monitor observes every datagram offered to the network (before the
// adversary touches it) — the telemetry tap. Unlike an Adversary it sees
// only metadata: endpoints and size, never payload bytes.
type Monitor interface {
	Datagram(from, to string, bytes int)
}

// Network connects endpoints.
type Network struct {
	mu        sync.Mutex
	endpoints map[string]*Endpoint
	adversary Adversary
	monitor   Monitor
	stats     map[string]*Stats
}

// New creates an empty network.
func New() *Network {
	return &Network{
		endpoints: make(map[string]*Endpoint),
		stats:     make(map[string]*Stats),
	}
}

// SetAdversary installs (or removes, with nil) the in-path attacker.
func (n *Network) SetAdversary(a Adversary) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.adversary = a
}

// SetMonitor installs (or removes, with nil) the traffic telemetry tap.
func (n *Network) SetMonitor(m Monitor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.monitor = m
}

// Attach creates a named endpoint. Attaching an existing name returns the
// same endpoint.
func (n *Network) Attach(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[name]; ok {
		return ep
	}
	ep := &Endpoint{net: n, name: name}
	n.endpoints[name] = ep
	n.stats[name] = &Stats{}
	return ep
}

// StatsFor returns a snapshot of an endpoint's traffic counters.
func (n *Network) StatsFor(name string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.stats[name]; ok {
		return *s
	}
	return Stats{}
}

// Inject places a forged datagram on the wire as if the adversary sent it.
// It bypasses the Intercept hook (the adversary does not attack itself).
func (n *Network) Inject(d Datagram) error {
	return n.deliver(d.clone())
}

// send routes one datagram from an endpoint through the adversary.
func (n *Network) send(d Datagram) error {
	n.mu.Lock()
	if s, ok := n.stats[d.From]; ok {
		s.Sent++
		s.SentBytes += int64(len(d.Payload))
	}
	adv := n.adversary
	mon := n.monitor
	n.mu.Unlock()

	if mon != nil {
		mon.Datagram(d.From, d.To, len(d.Payload))
	}
	if adv == nil {
		return n.deliver(d)
	}
	// The adversary works on an unpooled clone (it may hold the datagram
	// hostage indefinitely — the Delayer does); the original's buffer goes
	// straight back to the pool.
	outs := adv.Intercept(d.clone())
	d.Release()
	var firstErr error
	for _, out := range outs {
		if err := n.deliver(out); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *Network) deliver(d Datagram) error {
	n.mu.Lock()
	ep, ok := n.endpoints[d.To]
	if ok {
		if s, k := n.stats[d.To]; k {
			s.Received++
			s.RecvBytes += int64(len(d.Payload))
		}
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("deliver to %q: %w", d.To, ErrNoEndpoint)
	}
	ep.mu.Lock()
	ep.inbox = append(ep.inbox, d)
	ep.mu.Unlock()
	return nil
}

// Endpoint is one attachment point (a machine's NIC, logically).
type Endpoint struct {
	net  *Network
	name string

	mu    sync.Mutex
	inbox []Datagram
	head  int // index of the oldest pending datagram in inbox
}

// Name returns the endpoint name.
func (e *Endpoint) Name() string { return e.name }

// Send transmits payload to a peer endpoint. The payload is copied into a
// pooled buffer, so the caller keeps ownership of its slice and the wire
// costs no allocation at steady state.
func (e *Endpoint) Send(to string, payload []byte) error {
	bp := payloadPool.Get().(*[]byte)
	*bp = append((*bp)[:0], payload...)
	return e.net.send(Datagram{From: e.name, To: to, Payload: *bp, buf: bp})
}

// Recv pops the oldest pending datagram, reporting false when the inbox is
// empty. The inbox keeps its backing array across pop/append cycles (a head
// index instead of re-slicing), so a ping-pong workload never reallocates
// it.
func (e *Endpoint) Recv() (Datagram, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.head >= len(e.inbox) {
		return Datagram{}, false
	}
	d := e.inbox[e.head]
	e.inbox[e.head] = Datagram{} // no stale payload reference
	e.head++
	if e.head == len(e.inbox) {
		e.inbox = e.inbox[:0]
		e.head = 0
	}
	return d, true
}

// Pending reports the inbox depth — the DDoS experiment's victim-load
// metric.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox) - e.head
}

// Drain discards and returns all pending datagrams.
func (e *Endpoint) Drain() []Datagram {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.inbox[e.head:]
	e.inbox = nil
	e.head = 0
	return out
}

// --- stock adversaries ---

// Recorder is a passive eavesdropper: it lets everything through and keeps
// a transcript of all payload bytes.
type Recorder struct {
	mu   sync.Mutex
	data []byte
	msgs []Datagram
}

var _ Adversary = (*Recorder)(nil)

// Intercept records and forwards.
func (r *Recorder) Intercept(d Datagram) []Datagram {
	r.mu.Lock()
	r.data = append(r.data, d.Payload...)
	r.data = append(r.data, 0)
	r.msgs = append(r.msgs, d.clone())
	r.mu.Unlock()
	return []Datagram{d}
}

// Saw reports whether the needle appeared anywhere in recorded traffic.
func (r *Recorder) Saw(needle []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return contains(r.data, needle)
}

// Messages returns copies of all recorded datagrams.
func (r *Recorder) Messages() []Datagram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Datagram, len(r.msgs))
	for i, m := range r.msgs {
		out[i] = m.clone()
	}
	return out
}

// Tamperer flips a byte in every datagram's payload.
type Tamperer struct{}

var _ Adversary = Tamperer{}

// Intercept corrupts and forwards.
func (Tamperer) Intercept(d Datagram) []Datagram {
	if len(d.Payload) > 0 {
		d.Payload[len(d.Payload)/2] ^= 0xff
	}
	return []Datagram{d}
}

// Dropper silently discards everything (denial of service on the path).
type Dropper struct{}

var _ Adversary = Dropper{}

// Intercept drops.
func (Dropper) Intercept(Datagram) []Datagram { return nil }

// Replayer forwards everything and additionally re-sends every datagram a
// second time — the classic replay attack.
type Replayer struct{}

var _ Adversary = Replayer{}

// Intercept duplicates.
func (Replayer) Intercept(d Datagram) []Datagram {
	return []Datagram{d, d.clone()}
}

// Redirector diverts traffic addressed to Victim toward Attacker instead —
// the routing half of a man-in-the-middle.
type Redirector struct {
	Victim   string
	Attacker string
}

var _ Adversary = (*Redirector)(nil)

// Intercept reroutes.
func (r *Redirector) Intercept(d Datagram) []Datagram {
	if d.To == r.Victim {
		d.To = r.Attacker
	}
	return []Datagram{d}
}

func contains(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
