package netsim

import (
	"fmt"
	"testing"
)

// drainPayloads pops every pending datagram at the endpoint.
func drainPayloads(e *Endpoint) []string {
	var out []string
	for {
		d, ok := e.Recv()
		if !ok {
			return out
		}
		out = append(out, string(d.Payload))
	}
}

func TestDelayerIsDeterministic(t *testing.T) {
	run := func() []string {
		n := New()
		a := n.Attach("a")
		b := n.Attach("b")
		n.SetAdversary(NewDelayer(42, 0.5, 2))
		for i := 0; i < 20; i++ {
			if err := a.Send("b", []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return drainPayloads(b)
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no datagrams delivered")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("same seed, different delivery order:\n%v\n%v", first, second)
	}
}

func TestDelayerReordersAndFlushes(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	dl := NewDelayer(7, 1.0, 3) // detain everything for 3 datagrams
	n.SetAdversary(dl)
	for i := 0; i < 4; i++ {
		if err := a.Send("b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// m0 was released when m3 passed; m1..m3 are still held.
	got := drainPayloads(b)
	if len(got) != 1 || got[0] != "m0" {
		t.Fatalf("after 4 sends, delivered %v, want [m0]", got)
	}
	if dl.Delayed() != 4 {
		t.Errorf("delayed = %d, want 4", dl.Delayed())
	}
	held := dl.Flush()
	if len(held) != 3 {
		t.Fatalf("flush returned %d datagrams, want 3", len(held))
	}
	for _, d := range held {
		if err := n.Inject(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainPayloads(b); len(got) != 3 {
		t.Errorf("after flush+inject, delivered %v", got)
	}
	if extra := dl.Flush(); len(extra) != 0 {
		t.Errorf("second flush returned %d datagrams", len(extra))
	}
}

func TestDelayerZeroProbabilityIsTransparent(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	n.SetAdversary(NewDelayer(1, 0, 5))
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainPayloads(b)
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("order disturbed at %d: %v", i, []byte(p))
		}
	}
}

func TestPartitionerIsolateAndHeal(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	c := n.Attach("c")
	pt := NewPartitioner()
	n.SetAdversary(pt)
	pt.Isolate("b")
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", []byte("also lost")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("c", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if got := drainPayloads(b); len(got) != 0 {
		t.Errorf("isolated endpoint received %v", got)
	}
	if got := drainPayloads(a); len(got) != 0 {
		t.Errorf("traffic escaped the isolated endpoint: %v", got)
	}
	if got := drainPayloads(c); len(got) != 1 || got[0] != "fine" {
		t.Errorf("bystander traffic disturbed: %v", got)
	}
	if pt.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", pt.Dropped())
	}
	pt.Heal("b")
	if err := a.Send("b", []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := drainPayloads(b); len(got) != 1 || got[0] != "back" {
		t.Errorf("healed endpoint got %v", got)
	}
}

func TestPartitionerDirectionalLink(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	pt := NewPartitioner()
	n.SetAdversary(pt)
	// Cut only the reply direction: requests arrive, answers vanish.
	pt.BlockLink("b", "a")
	if err := a.Send("b", []byte("request")); err != nil {
		t.Fatal(err)
	}
	if got := drainPayloads(b); len(got) != 1 {
		t.Fatalf("request lost: %v", got)
	}
	if err := b.Send("a", []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got := drainPayloads(a); len(got) != 0 {
		t.Errorf("blocked reply delivered: %v", got)
	}
	pt.HealAll()
	if err := b.Send("a", []byte("reply2")); err != nil {
		t.Fatal(err)
	}
	if got := drainPayloads(a); len(got) != 1 || got[0] != "reply2" {
		t.Errorf("healed link got %v", got)
	}
}
