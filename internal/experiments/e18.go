package experiments

import (
	"fmt"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/kernel"
	"lateral/internal/partition"
)

// e18Program is the annotated mail monolith the partitioner consumes —
// what a Privtrans-style source analysis would emit.
func e18Program() *partition.Program {
	return &partition.Program{Functions: []partition.Function{
		{Name: "ui", Calls: []string{"fetch", "suggest", "lookup"}},
		{Name: "fetch", Exposed: true, Calls: []string{"tls_recv", "parse"}},
		{Name: "parse", Exposed: true, Calls: []string{"render_html"}},
		{Name: "render_html", Exposed: true, Calls: []string{"archive_save"}},
		{Name: "tls_recv", Assets: []string{"tls-key"}},
		{Name: "tls_send", Assets: []string{"tls-key", "password"}},
		{Name: "login", Assets: []string{"password"}, Calls: []string{"tls_send"}},
		{Name: "suggest", Assets: []string{"dictionary"}},
		{Name: "lookup", Assets: []string{"contacts"}},
		{Name: "archive_save", Assets: []string{"archive"}},
		{Name: "archive_load", Assets: []string{"archive"}},
	}}
}

// E18AutoPartition closes §IV's loop: "developers need support for
// application decomposition ... existing approaches [Privtrans, Swift]
// should be extended." The annotated monolith is partitioned
// automatically (asset-affinity clustering + attack-surface eviction),
// instantiated on a microkernel, and attacked function by function; the
// table compares mean asset leakage against the same program run
// monolithically.
func E18AutoPartition() (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "automatic partitioning: containment before/after",
		Anchor: "§IV decomposition tooling (Privtrans/Swift refs 47, 48)",
		Header: []string{"layout", "domains", "channels", "mean-leak", "render-exploit-leak"},
	}
	prog := e18Program()
	res, err := partition.Partition(prog)
	if err != nil {
		return t, err
	}
	mono, err := partition.MonolithicManifest(prog)
	if err != nil {
		return t, err
	}
	stats := res.Summarize()
	targets := prog.FunctionNames()

	measure := func(m func() (*core.System, map[string][]byte, error)) (mean, render float64, err error) {
		rs, err := attack.ContainmentSweep(m, targets)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range rs {
			if r.Compromised == "render_html" {
				render = r.LeakFraction()
			}
		}
		return attack.MeanLeakFraction(rs), render, nil
	}
	monoMean, monoRender, err := measure(func() (*core.System, map[string][]byte, error) {
		return partition.Instantiate(prog, core.NewMonolith(0), mono)
	})
	if err != nil {
		return t, fmt.Errorf("E18 monolith: %w", err)
	}
	partMean, partRender, err := measure(func() (*core.System, map[string][]byte, error) {
		return partition.Instantiate(prog, kernel.New(kernel.Config{}), res.Manifest)
	})
	if err != nil {
		return t, fmt.Errorf("E18 partitioned: %w", err)
	}
	t.AddRow("monolithic", 1, len(mono.Channels),
		fmt.Sprintf("%.2f", monoMean), fmt.Sprintf("%.2f", monoRender))
	t.AddRow("auto-partitioned", stats.Domains, stats.Channels,
		fmt.Sprintf("%.2f", partMean), fmt.Sprintf("%.2f", partRender))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d functions, %d exposed; partitioner used asset-affinity clustering + attack-surface eviction",
			stats.Functions, stats.Exposed))
	return t, nil
}
