package experiments

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/journal"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
	"lateral/internal/policy"
	"lateral/internal/sgx"
)

// E25 components: a deliberately unscrupulous app that reads identifying
// data and then tries to push it out, the vault holding that data, and a
// sink modeling the network boundary. Every step the app takes is
// individually permitted — the mosaic (read ids, THEN egress) is what the
// chain-aware policy must refuse, because no single component is in a
// position to.

type e25App struct{ ctx *core.Ctx }

func (a *e25App) CompName() string         { return "app" }
func (a *e25App) CompVersion() string      { return "1.0" }
func (a *e25App) Init(ctx *core.Ctx) error { a.ctx = ctx; return nil }

func (a *e25App) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "send": // untainted egress: allowed
		return a.ctx.Call("to-net", core.Message{Op: "send", Data: env.Msg.Data})
	case "exfil": // mosaic: taint, then egress — must be denied
		if _, err := a.ctx.Call("vault", core.Message{Op: "ids"}); err != nil {
			return core.Message{}, err
		}
		return a.ctx.Call("to-net", core.Message{Op: "send", Data: env.Msg.Data})
	case "export": // sanctioned tainted egress: requires approval
		if _, err := a.ctx.Call("vault", core.Message{Op: "ids"}); err != nil {
			return core.Message{}, err
		}
		return a.ctx.Call("to-export", core.Message{Op: "send", Data: env.Msg.Data})
	default:
		return core.Message{}, core.ErrRefused
	}
}

type e25Vault struct{}

func (e25Vault) CompName() string             { return "vault" }
func (e25Vault) CompVersion() string          { return "1.0" }
func (e25Vault) Init(*core.Ctx) error         { return nil }
func (e25Vault) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "ids" {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "ok", Data: []byte("meter-identities")}, nil
}

type e25Sink struct{ sent int }

func (s *e25Sink) CompName() string     { return "net" }
func (s *e25Sink) CompVersion() string  { return "1.0" }
func (s *e25Sink) Init(*core.Ctx) error { return nil }
func (s *e25Sink) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "send" {
		return core.Message{}, core.ErrRefused
	}
	s.sent++
	return core.Message{Op: "sent"}, nil
}

const e25PolicyText = `# mosaic rule: ids taint the chain, tainted chains may not egress
taint vault ids meter-identities
deny no-exfil to-net * when meter-identities
approve ops-export to-export * when meter-identities
allow rest * *
`

// E25Policy validates chain-aware runtime policy enforcement: the
// confused-deputy/mosaic gap the paper's decomposition argument leaves
// open. Capabilities decide whether a component may EVER invoke a channel;
// they cannot express "not after what this chain already touched". The
// policy engine closes that: taint accumulated along the invocation chain
// (and carried across the wire) feeds declarative deny/approve rules
// enforced by the system before any handler runs. The rows prove the four
// claims: an untainted workload is unaffected, the local mosaic is denied
// and journaled (replayable by an auditor), the same taint is enforced at
// a remote machine's deliver boundary, and approval grants decay on TTL so
// a sanctioned export must be re-approved once its grant expires.
func E25Policy() (Table, error) {
	t := Table{
		ID:     "E25",
		Title:  "chain-aware policy: mosaic exfiltration denied",
		Anchor: "§II least privilege beyond capabilities; §V trustworthy operation over time",
		Header: []string{"scenario", "outcome", "denies", "verdict"},
	}

	// --- local machine: app/vault/sink under one policy engine ---------
	signer := cryptoutil.NewSigner("e25-auditor")
	counter := &journal.MemCounter{}
	jnl, err := journal.New(journal.Config{Name: "meter", Signer: signer, Counter: counter, CheckpointEvery: 8})
	if err != nil {
		return t, err
	}
	rules, err := policy.Decode([]byte(e25PolicyText))
	if err != nil {
		return t, err
	}
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	approvals := 0
	eng, err := policy.New(policy.Config{
		Name:     "meter",
		Rules:    rules,
		Approver: policy.ApproverFunc(func(string, core.PolicyRequest) bool { approvals++; return true }),
		GrantTTL: time.Minute,
		Clock:    clock,
		Recorder: jnl,
	})
	if err != nil {
		return t, err
	}
	sub, err := sgx.New(sgx.Config{DeviceSeed: "e25-meter", Vendor: cryptoutil.NewSigner("cpu-vendor")})
	if err != nil {
		return t, err
	}
	sys := core.NewSystem(sub)
	sys.SetEventRecorder(jnl)
	sys.SetPolicy(eng)
	sink := &e25Sink{}
	for _, c := range []core.Component{&e25App{}, e25Vault{}, sink} {
		if err := sys.Launch(c, true, 1); err != nil {
			return t, err
		}
	}
	for _, ch := range []core.ChannelSpec{
		{Name: "vault", From: "app", To: "vault", Badge: 1},
		{Name: "to-net", From: "app", To: "net", Badge: 2},
		{Name: "to-export", From: "app", To: "net", Badge: 3},
	} {
		if err := sys.Grant(ch); err != nil {
			return t, err
		}
	}
	if err := sys.InitAll(); err != nil {
		return t, err
	}

	// Row 1: the untainted workload is unaffected by the installed policy.
	var okSends int
	for i := 0; i < 10; i++ {
		if _, err := sys.Deliver("app", core.Message{Op: "send", Data: []byte("telemetry")}); err == nil {
			okSends++
		}
	}
	t.AddRow("untainted egress ×10", fmt.Sprintf("%d ok", okSends), sys.Stats().PolicyDenies,
		passFail(okSends == 10 && sys.Stats().PolicyDenies == 0))

	// Row 2: the mosaic — read ids, then egress — is denied before the sink
	// runs, and the deny lands in the journal.
	sentBefore := sink.sent
	_, exfilErr := sys.Deliver("app", core.Message{Op: "exfil", Data: []byte("ids")})
	denies := sys.Stats().PolicyDenies
	deniedEntries := 0
	for _, e := range jnl.Entries() {
		if e.Kind == journal.KindPolicyDeny {
			deniedEntries++
		}
	}
	mosaicOK := errors.Is(exfilErr, core.ErrPolicy) && sink.sent == sentBefore &&
		denies == 1 && deniedEntries == 1
	t.AddRow("mosaic exfil (ids→net)", outcomeCell(exfilErr), denies, passFail(mosaicOK))

	// Row 3: sanctioned export needs approval; the grant covers repeats
	// until its TTL decays, then the next export must re-approve.
	if _, err := sys.Deliver("app", core.Message{Op: "export", Data: []byte("report")}); err != nil {
		return t, fmt.Errorf("e25: first export: %w", err)
	}
	if _, err := sys.Deliver("app", core.Message{Op: "export", Data: []byte("report")}); err != nil {
		return t, fmt.Errorf("e25: export under live grant: %w", err)
	}
	reused := approvals == 1
	now = now.Add(2 * time.Minute) // grant decays
	if _, err := sys.Deliver("app", core.Message{Op: "export", Data: []byte("report")}); err != nil {
		return t, fmt.Errorf("e25: export after decay: %w", err)
	}
	t.AddRow("approved export, TTL decay", fmt.Sprintf("%d approvals/3 exports", approvals),
		sys.Stats().PolicyDenies, passFail(reused && approvals == 2))

	// Row 4: the taint crosses the wire — a remote machine's own policy
	// denies the tainted ingress at its deliver boundary.
	wireOK, err := e25Wire()
	if err != nil {
		return t, err
	}
	t.AddRow("tainted ingress at remote boundary", "denied on wire", 1, passFail(wireOK))

	// Row 5: an auditor holding only the export replays the denies.
	if err := jnl.Checkpoint(); err != nil {
		return t, err
	}
	trusted, _ := counter.Value()
	_, replayErr := journal.Replay(jnl.Export(), signer.Public(), trusted)
	t.AddRow("auditor replay of deny journal", fmt.Sprintf("%d policy entries", deniedEntries+2),
		denies, passFail(replayErr == nil))

	t.Notes = append(t.Notes,
		"policy (decoded from its canonical text form): taint vault/ids; deny to-net when tainted; approve to-export when tainted",
		"denies happen BEFORE the egress handler runs: the sink's counter never moves on a denied chain",
		fmt.Sprintf("approval grants are capabilities minted with a %s TTL on the engine's clock; decay fails closed", time.Minute),
		"wire row: client machine taints its chain locally, the SGX machine's own engine refuses the ingress (statusPolicy on the wire)",
	)
	return t, nil
}

// e25Wire proves cross-machine enforcement: a client whose chain is
// tainted locally calls a remote store; the taint rides the request frame
// and the REMOTE machine's policy denies it at the deliver boundary. The
// untainted path on the same session keeps working.
func e25Wire() (bool, error) {
	net := netsim.New()
	vendor := cryptoutil.NewSigner("intel")

	// Cloud machine: SGX store enclave, policy denies tainted ingress.
	cloudRules, err := policy.Decode([]byte(
		"deny no-ingress @deliver * when meter-identities\nallow rest * *\n"))
	if err != nil {
		return false, err
	}
	cloudEng, err := policy.New(policy.Config{Name: "cloud", Rules: cloudRules})
	if err != nil {
		return false, err
	}
	sub, err := sgx.New(sgx.Config{DeviceSeed: "e25-cloud", Vendor: vendor})
	if err != nil {
		return false, err
	}
	cloudSys := core.NewSystem(sub)
	cloudSys.SetPolicy(cloudEng)
	store := &e25Sink{}
	if err := cloudSys.Launch(store, true, 1); err != nil {
		return false, err
	}
	if err := cloudSys.InitAll(); err != nil {
		return false, err
	}
	meas := cryptoutil.Hash(core.DomainImage(&e25Sink{}))
	exporter, err := distributed.NewExporter(distributed.ExportConfig{
		System:    cloudSys,
		Component: "net",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("e25-cloud-hs"),
	})
	if err != nil {
		return false, err
	}

	// Client machine: microkernel, its own policy taints the chain when the
	// app reads the local vault; the stub exports the remote sink as "net".
	clientRules, err := policy.Decode([]byte(
		"taint vault ids meter-identities\nallow rest * *\n"))
	if err != nil {
		return false, err
	}
	clientEng, err := policy.New(policy.Config{Name: "client", Rules: clientRules})
	if err != nil {
		return false, err
	}
	clientSys := core.NewSystem(kernel.New(kernel.Config{}))
	clientSys.SetPolicy(clientEng)
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     "net",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("meter"),
		Rand:           cryptoutil.NewPRNG("e25-client-hs"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meas)
		},
		Pump: exporter.Serve,
	})
	if err != nil {
		return false, err
	}
	if err := clientSys.Launch(&e25App{}, false, 1); err != nil {
		return false, err
	}
	if err := clientSys.Launch(e25Vault{}, false, 1); err != nil {
		return false, err
	}
	if err := clientSys.Launch(stub, false, 1); err != nil {
		return false, err
	}
	for _, ch := range []core.ChannelSpec{
		{Name: "vault", From: "app", To: "vault", Badge: 1},
		{Name: "to-net", From: "app", To: "net", Badge: 2},
	} {
		if err := clientSys.Grant(ch); err != nil {
			return false, err
		}
	}
	if err := clientSys.InitAll(); err != nil {
		return false, err
	}
	if err := stub.Connect(); err != nil {
		return false, err
	}

	// Untainted send crosses the wire and lands.
	if _, err := clientSys.Deliver("app", core.Message{Op: "send", Data: []byte("ok")}); err != nil {
		return false, fmt.Errorf("e25: untainted remote send: %w", err)
	}
	// Tainted send: denied by the CLOUD's policy, rehydrated as ErrPolicy.
	_, err = clientSys.Deliver("app", core.Message{Op: "exfil", Data: []byte("ids")})
	if !errors.Is(err, core.ErrPolicy) {
		return false, fmt.Errorf("e25: tainted remote send returned %v, want ErrPolicy", err)
	}
	return store.sent == 1 && cloudSys.Stats().PolicyDenies == 1, nil
}

// outcomeCell renders an error as a stable table cell.
func outcomeCell(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrPolicy):
		return "denied"
	default:
		return "failed"
	}
}
