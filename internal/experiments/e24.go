package experiments

import (
	"fmt"

	"lateral/internal/cryptoutil"
	"lateral/internal/journal"
)

// E24Audit validates the fleet black box: a journaled anonymizer fleet
// runs the E19 chaos scenario (mid-run crash with re-attested recovery,
// plus a tampered build refused at admission), and an auditor who holds
// only the exported journal, the checkpoint public key, and the trusted
// monotonic counter re-derives the exact live trust state. The adversary
// rows then prove the black box is tamper-evident: every single-byte flip
// anywhere in the export, any rollback to a stale export, and any
// regression of the trusted counter must fail verification — and the
// quarantine must have left a flight-recorder dump behind for the
// post-mortem. The paper's trustworthy-apps argument needs exactly this:
// trust decisions that are not merely made but provable after the fact.
func E24Audit() (Table, error) {
	t := Table{
		ID:     "E24",
		Title:  "fleet black box: auditor replay and tamper evidence",
		Anchor: "§III-B remote attestation as evidence; §V trustworthy operation over time",
		Header: []string{"scenario", "entries", "ckpts", "detected", "verdict"},
	}

	signer := cryptoutil.NewSigner("e24-auditor")
	counter := &journal.MemCounter{}
	flight := journal.NewFlightRecorder(journal.FlightConfig{Spans: 32})
	jnl, err := journal.New(journal.Config{
		Name:            "anonymizer",
		Signer:          signer,
		Counter:         counter,
		CheckpointEvery: 16,
		Flight:          flight,
	})
	if err != nil {
		return t, err
	}

	d, err := BuildJournaledFleetDemo(5, 5, nil, jnl)
	if err != nil {
		return t, err
	}
	d.SetTracer(flight)
	const meters, rounds = 60, 2
	total := meters * rounds
	accepted, lost := e19Drive(d, meters, rounds, func(i int) {
		switch i {
		case total / 3:
			d.Part.Isolate("anon-2")
		case 2 * total / 3:
			d.Part.Heal("anon-2")
			d.Pool.CheckNow()
		}
	})
	if accepted != total || lost != 0 {
		return t, fmt.Errorf("e24: chaos run accepted %d/%d, lost %d", accepted, total, lost)
	}
	staleExport := jnl.Export() // pre-final-checkpoint, for the rollback row
	if err := jnl.Checkpoint(); err != nil {
		return t, err
	}
	export := jnl.Export()
	trusted, _ := counter.Value()
	entries, ckpts := len(jnl.Entries()), len(jnl.Checkpoints())

	// Row 1: honest replay reconstructs the live pool's trust state.
	audit, err := journal.Replay(export, signer.Public(), trusted)
	replayOK := err == nil && len(audit.Diff(d.Pool.States())) == 0
	t.AddRow("auditor replay == live fleet", entries, ckpts, "-", passFail(replayOK))

	// Row 2: every single byte flip in the export fails verification.
	flips, caught := 0, 0
	for i := range export {
		mut := append([]byte(nil), export...)
		mut[i] ^= 0x55
		flips++
		if _, err := journal.Replay(mut, signer.Public(), trusted); err != nil {
			caught++
		}
	}
	t.AddRow(fmt.Sprintf("all %d single-byte flips", flips), entries, ckpts,
		fmt.Sprintf("%d/%d", caught, flips), passFail(caught == flips))

	// Row 3: serving a stale export against the current counter is a
	// detected rollback, as is regressing the trusted counter itself.
	_, errStale := journal.Replay(staleExport, signer.Public(), trusted)
	_, errReg := journal.Replay(export, signer.Public(), trusted-1)
	rollbackOK := errStale != nil && errReg != nil
	t.AddRow("rollback: stale export / counter-1", entries, ckpts, "2/2", passFail(rollbackOK))

	// Row 4: the admission-time quarantine tripped the flight recorder.
	dumps := flight.Dumps()
	dumpOK := false
	for _, dump := range dumps {
		if dump.Trigger == "quarantine" {
			dumpOK = true
		}
	}
	t.AddRow("flight dump on quarantine", entries, ckpts, len(dumps), passFail(dumpOK))

	t.Notes = append(t.Notes,
		fmt.Sprintf("chaos run: %d meters × %d readings, anon-2 crashed and re-admitted, tampered anon-5 quarantined at admission", meters, rounds),
		fmt.Sprintf("auditor inputs: exported journal (%d bytes), checkpoint public key, trusted counter=%d — nothing from the live pool", len(export), trusted),
		"detection = typed error from Replay: chain break, bad checkpoint, rollback, or trust-state divergence",
	)
	return t, nil
}
