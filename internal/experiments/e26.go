package experiments

import (
	"fmt"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/journal"
)

// E26Rolling validates the dynamic-membership story (E26): an attested
// anonymizer fleet is replaced member by member — join a fresh machine,
// drain and retire an original, twice over — while meter readings stream
// through it, with a crash thrown in after the last transition. Every
// transition is a config epoch: the whole fleet re-attests and rekeys at
// the new epoch, so a session keyed to an older configuration cannot
// authenticate another record anywhere, and a client whose hello stamps a
// stale epoch is refused outright. The journal anchors each transition
// (epoch-begin) and its resulting membership (epoch-member), so an
// auditor holding only the export replays the fleet's entire membership
// history. Zero accepted readings may be lost across all of it.
func E26Rolling() (Table, error) {
	t := Table{
		ID:     "E26",
		Title:  "rolling replace under config epochs",
		Anchor: "§III-D elastic attested fleets; §V membership as auditable history",
		Header: []string{"scenario", "epoch", "detail", "verdict"},
	}

	signer := cryptoutil.NewSigner("e26-auditor")
	counter := &journal.MemCounter{}
	jnl, err := journal.New(journal.Config{
		Name:            "anonymizer",
		Signer:          signer,
		Counter:         counter,
		CheckpointEvery: 16,
	})
	if err != nil {
		return t, err
	}
	d, err := BuildJournaledFleetDemo(3, 0, nil, jnl)
	if err != nil {
		return t, err
	}

	// A side client keyed at epoch 0, connected before any transition: it
	// works now, and must stop working the moment the fleet rekeys.
	pre, err := d.Dial("anon-3", "side-pre", d.Pool.Epoch)
	if err != nil {
		return t, err
	}
	if err := pre.Connect(); err != nil {
		return t, fmt.Errorf("e26: pre-epoch side client refused while fleet at epoch 0: %w", err)
	}
	if _, err := pre.Handle(core.Envelope{Msg: core.Message{
		Op: "reading", Data: []byte("meter-pre=\x05"),
	}}); err != nil {
		return t, fmt.Errorf("e26: pre-epoch side client call failed at epoch 0: %w", err)
	}

	// The rolling replace: anon-1..3 becomes anon-3..5 across four epoch
	// transitions threaded through the reading stream, then anon-3 crashes
	// and recovers — chaos on the brand-new configuration.
	const meters, rounds = 60, 3
	total := meters * rounds
	var transitionErrs []error
	accepted, lost := e19Drive(d, meters, rounds, func(i int) {
		var err error
		switch i {
		case total / 6:
			err = d.Join("anon-4")
		case total / 3:
			err = d.Pool.Leave("anon-1")
		case total / 2:
			err = d.Join("anon-5")
		case 2 * total / 3:
			err = d.Pool.Leave("anon-2")
		case 5 * total / 6:
			d.Part.Isolate("anon-3")
		case 11 * total / 12:
			d.Part.Heal("anon-3")
			d.Pool.CheckNow()
		}
		if err != nil {
			transitionErrs = append(transitionErrs, fmt.Errorf("at reading %d: %w", i, err))
		}
	})
	epoch := d.Pool.Epoch()
	rollOK := accepted == total && lost == 0 && len(transitionErrs) == 0 &&
		epoch == 4 && d.Pool.Healthy() == 3
	t.AddRow("rolling replace, zero loss", epoch,
		fmt.Sprintf("%d/%d accepted, %d lost, %d healthy", accepted, total, lost, d.Pool.Healthy()),
		passFail(rollOK))
	if len(transitionErrs) > 0 {
		return t, fmt.Errorf("e26: transitions failed: %v", transitionErrs)
	}

	// The pre-epoch session was evicted at the first rekey: its next
	// record authenticates nowhere, the call must fail.
	_, staleErr := pre.Handle(core.Envelope{Msg: core.Message{
		Op: "reading", Data: []byte("meter-pre=\x05"),
	}})
	t.AddRow("stale session refused", epoch,
		"epoch-0 keys against epoch-4 fleet", passFail(staleErr != nil))

	// A replayed pre-epoch hello is refused at the handshake, while a
	// client stamping the live epoch (and passing attestation) connects.
	replay, err := d.Dial("anon-3", "side-replay", func() uint64 { return 0 })
	if err != nil {
		return t, err
	}
	replayErr := replay.Connect()
	fresh, err := d.Dial("anon-3", "side-fresh", d.Pool.Epoch)
	if err != nil {
		return t, err
	}
	freshErr := fresh.Connect()
	t.AddRow("stale hello refused, live hello accepted", epoch,
		"hello epochs 0 and 4", passFail(replayErr != nil && freshErr == nil))

	// The auditor replays the full membership history from the exported
	// journal alone: four transitions, in order, ending at the live state.
	if err := jnl.Checkpoint(); err != nil {
		return t, err
	}
	trusted, err := counter.Value()
	if err != nil {
		return t, err
	}
	audit, err := journal.Replay(jnl.Export(), signer.Public(), trusted)
	auditOK := err == nil && len(audit.Epochs) == 4
	if auditOK {
		wantReasons := []string{"join anon-4", "leave anon-1", "join anon-5", "leave anon-2"}
		for i, rec := range audit.Epochs {
			if rec.Epoch != uint64(i+1) || rec.Reason != wantReasons[i] {
				auditOK = false
			}
		}
		last := audit.Epochs[3].Members
		_, hasDeparted := last["anonymizer/anon-1"]
		auditOK = auditOK && !hasDeparted && len(audit.Diff(d.Pool.States())) == 0
	}
	t.AddRow("auditor replays membership history", epoch,
		fmt.Sprintf("%d epoch records", len(audit.Epochs)), passFail(auditOK))

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d meters × %d readings; transitions at 1/6, 1/3, 1/2, 2/3 of the stream; anon-3 crashed at 5/6 and recovered", meters, rounds),
		"every transition re-attests and rekeys the whole fleet; drained members finish in-flight calls, they are never errored",
		"loss counted per meter across original and replacement members, so failover duplicates cannot mask a lost reading",
	)
	return t, nil
}

// E26Phase is one row of the checked-in BENCH_e26.json baseline: the
// fleet's wall-clock throughput through each phase of a rolling replace —
// the dip while a transition drains and rekeys, and the recovery after.
type E26Phase struct {
	Phase     string  `json:"phase"`
	Readings  int     `json:"readings"`
	Accepted  int     `json:"accepted"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Epoch     uint64  `json:"epoch"`
	Healthy   int     `json:"healthy"`
}

// E26Baseline drives the rolling replace phase by phase and times each
// one: steady state on the original fleet, four transition phases (the
// epoch work — drain, re-attest, rekey — is inside the timed window, so
// the dip is visible), and steady state on the replacement fleet.
// `lateralbench -e26-json` writes the result to BENCH_e26.json; ops/sec
// is wall-clock and machine-dependent (a trajectory, not a gate). Any
// lost reading is an error.
func E26Baseline() ([]E26Phase, error) {
	d, err := BuildFleetDemo(3, 0, nil)
	if err != nil {
		return nil, err
	}
	phases := []struct {
		name       string
		transition func() error
	}{
		{"steady-3", nil},
		{"join anon-4", func() error { return d.Join("anon-4") }},
		{"leave anon-1", func() error { return d.Pool.Leave("anon-1") }},
		{"join anon-5", func() error { return d.Join("anon-5") }},
		{"leave anon-2", func() error { return d.Pool.Leave("anon-2") }},
		{"steady-post", nil},
	}
	const meters, rounds = 40, 2
	perPhase := meters * rounds
	sent := make(map[string]int, meters)
	out := make([]E26Phase, 0, len(phases))
	for _, ph := range phases {
		start := time.Now()
		if ph.transition != nil {
			if err := ph.transition(); err != nil {
				return nil, fmt.Errorf("e26 baseline: %s: %w", ph.name, err)
			}
		}
		accepted := 0
		for r := 0; r < rounds; r++ {
			for m := 0; m < meters; m++ {
				name := fmt.Sprintf("meter-%03d", m)
				if err := d.Send(name, 1+(m+r)%9); err == nil {
					accepted++
					sent[name]++
				}
			}
		}
		out = append(out, E26Phase{
			Phase:     ph.name,
			Readings:  perPhase,
			Accepted:  accepted,
			OpsPerSec: float64(accepted) / time.Since(start).Seconds(),
			Epoch:     d.Pool.Epoch(),
			Healthy:   d.Pool.Healthy(),
		})
	}
	lost := 0
	for name, n := range sent {
		if p := d.ProcessedByMeter(name); p < n {
			lost += n - p
		}
	}
	if lost != 0 {
		return nil, fmt.Errorf("e26 baseline: %d accepted readings lost across the rolling replace", lost)
	}
	return out, nil
}
