package experiments

import (
	"fmt"

	"lateral/internal/attest"
	"lateral/internal/cryptoutil"
	"lateral/internal/ftpm"
	"lateral/internal/tpm"
	"lateral/internal/trustzone"
)

// E15Interchangeability reproduces §II-C: "isolation technologies are
// partially interchangeable: Microsoft Surface tablets implement TPM
// functionality not using dedicated TPM security chips, but as software
// running within TrustZone."
//
// One authenticated-boot + verification flow runs, unmodified, against a
// discrete TPM chip and against the fTPM hosted in the TrustZone secure
// world; a third row shows that a rogue fTPM on an SoC whose vendor the
// verifier does not trust is rejected — interchangeability does not mean
// gullibility.
func E15Interchangeability() (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "the same boot-attestation flow over discrete TPM and fTPM",
		Anchor: "§II-C 'What Is Hardware?' interchangeability",
		Header: []string{"implementation", "anchor root", "boot-log verifies", "verdict"},
	}
	vendor := cryptoutil.NewSigner("platform-vendor")
	chain := []attest.Stage{
		attest.SignStage(vendor, "bootloader", []byte("bl-1.0")),
		attest.SignStage(vendor, "kernel", []byte("krn-5.4")),
	}

	// The flow is written once against the common Service interface.
	flow := func(svc ftpm.Service, trustRoot []byte) (bool, error) {
		svc.Reset()
		var log attest.BootLog
		for _, st := range chain {
			m := st.Measurement()
			if err := svc.Extend(0, m); err != nil {
				return false, err
			}
			log.Entries = append(log.Entries, attest.BootLogEntry{Name: st.Name, Measurement: m})
		}
		nonce := []byte("e15")
		q, err := svc.Quote([]int{0}, nonce)
		if err != nil {
			return false, err
		}
		return attest.VerifyBootLog(q, nonce, trustRoot, log) == nil, nil
	}

	// Row 1: discrete chip, trust rooted in the TPM manufacturer.
	mfr := cryptoutil.NewSigner("tpm-mfr")
	discrete := tpm.New("e15-chip", mfr)
	ok, err := flow(discrete, mfr.Public())
	if err != nil {
		return t, err
	}
	t.AddRow("discrete TPM chip", "TPM manufacturer key", boolCell(ok), passFail(ok))

	// Row 2: fTPM in the TrustZone secure world, trust rooted in the SoC
	// vendor who certified the fused key.
	socVendor := cryptoutil.NewSigner("soc-vendor")
	tz, err := trustzone.New(trustzone.Config{DeviceSeed: "e15-soc", Vendor: socVendor})
	if err != nil {
		return t, err
	}
	fw, err := ftpm.New(tz, socVendor)
	if err != nil {
		return t, err
	}
	ok, err = flow(fw, socVendor.Public())
	if err != nil {
		return t, err
	}
	t.AddRow("fTPM in TrustZone", "SoC vendor key (fused)", boolCell(ok), passFail(ok))

	// Row 3: an fTPM certified by a vendor the verifier does NOT trust.
	rogueVendor := cryptoutil.NewSigner("rogue-vendor")
	tz2, err := trustzone.New(trustzone.Config{DeviceSeed: "e15-rogue", Vendor: rogueVendor})
	if err != nil {
		return t, err
	}
	rogue, err := ftpm.New(tz2, rogueVendor)
	if err != nil {
		return t, err
	}
	ok, err = flow(rogue, socVendor.Public()) // verifier still trusts socVendor only
	if err != nil {
		return t, err
	}
	t.AddRow("fTPM, untrusted vendor", "rogue vendor key", boolCell(ok), passFail(!ok))

	t.Notes = append(t.Notes,
		fmt.Sprintf("one flow, two anchors: quote wire format and verifier code are shared (%d boot stages)", len(chain)))
	return t, nil
}
