package experiments

import (
	"bytes"
	"errors"

	"lateral/internal/core"
	"lateral/internal/hw"
	"lateral/internal/kernel"
)

// e16Setup builds one machine with a driver domain (owning a NIC) and a
// victim domain holding the secret. The victim's frame is the second
// allocated page.
func e16Setup(secret []byte) (*hw.Machine, core.DomainHandle, error) {
	m := hw.NewMachine(hw.MachineConfig{})
	sub := kernel.New(kernel.Config{Machine: m})
	if _, err := sub.CreateDomain(core.DomainSpec{Name: "driver"}); err != nil {
		return nil, nil, err
	}
	victim, err := sub.CreateDomain(core.DomainSpec{Name: "victim"})
	if err != nil {
		return nil, nil, err
	}
	if err := victim.Write(0, secret); err != nil {
		return nil, nil, err
	}
	if err := sub.AssignDevice("driver", hw.NewNIC("nic0")); err != nil {
		return nil, nil, err
	}
	return m, victim, nil
}

// E16IOMMU reproduces §II-D's DMA argument: "peripheral devices are also
// capable of direct DRAM access in the form of DMA transfers. This
// property indirectly allows the driver software controlling those devices
// to manipulate arbitrary DRAM content, including page tables ... To
// defend against malicious devices and malicious device drivers, IOMMUs
// control memory access by the device the same way MMUs control memory
// access by the CPU."
//
// A malicious NIC tries to read and to corrupt a victim domain's memory:
// first as an unfiltered bus master (raw physical access), then behind an
// IOMMU that maps only the driver domain's frames for it.
func E16IOMMU() (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "malicious device DMA vs IOMMU",
		Anchor: "§II-D basic access control (IOMMU)",
		Header: []string{"configuration", "dma-read-victim", "dma-corrupt-victim", "verdict"},
	}
	secret := []byte("E16-VICTIM-SECRET")
	victimPA := hw.PhysAddr(hw.PageSize)

	// Configuration A: no IOMMU in the DMA path — bus mastering reaches
	// raw physical memory.
	m, victim, err := e16Setup(secret)
	if err != nil {
		return t, err
	}
	readOK := bytes.Equal(m.Mem.PeekRaw(victimPA, len(secret)), secret)
	m.Mem.PokeRaw(victimPA, []byte("CORRUPTED-BY-DMA!"))
	after, err := victim.Read(0, len(secret))
	if err != nil {
		return t, err
	}
	corruptOK := !bytes.Equal(after, secret)
	t.AddRow("bus-mastering device, no IOMMU", boolCell(readOK), boolCell(corruptOK),
		map[bool]string{true: "exploitable (as predicted)", false: "FAIL (attack should work)"}[readOK && corruptOK])

	// Configuration B: the same attack through the IOMMU. The device's
	// address space contains only the driver's page; the victim's frame
	// is unaddressable and every access faults.
	m2, victim2, err := e16Setup(secret)
	if err != nil {
		return t, err
	}
	_, rerr := m2.IOMMU.DMARead("nic0", hw.VirtAddr(hw.PageSize), len(secret))
	readBlocked := errors.Is(rerr, hw.ErrFault)
	werr := m2.IOMMU.DMAWrite("nic0", hw.VirtAddr(hw.PageSize), []byte("CORRUPTED-BY-DMA!"))
	writeBlocked := errors.Is(werr, hw.ErrFault)
	after2, err := victim2.Read(0, len(secret))
	if err != nil {
		return t, err
	}
	intact := bytes.Equal(after2, secret)
	t.AddRow("same device behind IOMMU", boolCell(!readBlocked), boolCell(!writeBlocked),
		passFail(readBlocked && writeBlocked && intact))
	t.Notes = append(t.Notes,
		"the IOMMU maps only the driver domain's frames for the device; the victim is unaddressable")
	return t, nil
}
