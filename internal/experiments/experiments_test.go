package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// These tests pin the SHAPE of every experiment's result — who wins, by
// roughly what factor, where the qualitative flips happen — which is the
// reproduction target for a vision paper.

func cell(t *testing.T, tab Table, rowName string, col int) string {
	t.Helper()
	for _, r := range tab.Rows {
		if r[0] == rowName {
			return r[col]
		}
	}
	t.Fatalf("%s: no row %q in %v", tab.ID, rowName, tab.Rows)
	return ""
}

func TestE1ShapeVerticalWorstPOLABest(t *testing.T) {
	v, b, p, err := MeanLeak()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.0 {
		t.Errorf("vertical mean leak = %.2f, want 1.0", v)
	}
	if !(p < b && b < v) {
		t.Errorf("ordering violated: pola %.2f < broad %.2f < vertical %.2f expected", p, b, v)
	}
	// POLA should contain the renderer exploit completely.
	tab, err := E1Containment()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "render", 3); got != "0.00" {
		t.Errorf("pola render leak = %s, want 0.00", got)
	}
	if got := cell(t, tab, "render", 1); got != "1.00" {
		t.Errorf("vertical render leak = %s, want 1.00", got)
	}
	// Broad manifest leaks the exported contacts even from the renderer.
	if got := cell(t, tab, "render", 2); got == "0.00" {
		t.Error("broad manifest should leak something from the renderer")
	}
}

func TestE2EverySubstrateRunsTheSameComponent(t *testing.T) {
	tab, err := E2Portability()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(SubstrateNames()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "PASS" {
			t.Errorf("substrate %s failed to run the portable component", r[0])
		}
	}
	// Property-matrix spot checks straight from §II.
	if cell(t, tab, "monolith", 2) != "no" {
		t.Error("monolith claims spatial isolation")
	}
	if cell(t, tab, "sgx", 4) != "yes" || cell(t, tab, "microkernel", 4) != "no" {
		t.Error("physical memory protection column wrong")
	}
	if cell(t, tab, "tpm-latelaunch", 8) != "no" {
		t.Error("late launch claims concurrency")
	}
	if cell(t, tab, "sgx", 7) != "yes" {
		t.Error("sgx quote failed")
	}
	if cell(t, tab, "monolith", 7) != "n/a" {
		t.Error("monolith should have no quote")
	}
}

func TestE3AllScenariosPass(t *testing.T) {
	tab, err := E3SmartMeter()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E3 scenario %q: %v", r[0], r)
		}
	}
}

func TestE4CostOrdering(t *testing.T) {
	tab, err := E4Invocation()
	if err != nil {
		t.Fatal(err)
	}
	// Modeled cost must preserve the published order of magnitude
	// ordering: function call < IPC < SMC < enclave < mailbox < latelaunch.
	order := []string{"monolith", "microkernel", "trustzone", "sgx", "sep", "tpm-latelaunch"}
	var prev int64 = -1
	for _, name := range order {
		var modeled int64
		for _, r := range tab.Rows {
			if r[0] == name {
				if _, err := parseInt(r[1], &modeled); err != nil {
					t.Fatalf("parse %q: %v", r[1], err)
				}
			}
		}
		if modeled <= prev {
			t.Errorf("modeled cost not increasing at %s: %d after %d", name, modeled, prev)
		}
		prev = modeled
	}
	// Every substrate ran the same 9-invocation fetchmail flow.
	for _, r := range tab.Rows {
		if r[3] != "6" {
			t.Errorf("%s: fetchmail used %s invocations, want 6", r[0], r[3])
		}
	}
}

func parseInt(s string, out *int64) (int, error) {
	n, err := fmtSscan(s, out)
	return n, err
}

func fmtSscan(s string, out *int64) (int, error) {
	var v int64
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
		n++
	}
	if n == 0 {
		return 0, errNoInt
	}
	*out = v
	return n, nil
}

var errNoInt = errorString("no integer")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestE5TwoOrdersOfMagnitude(t *testing.T) {
	tab, err := E5TCB()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	if mean[0] != "MEAN" {
		t.Fatal("no MEAN row")
	}
	if !strings.HasSuffix(mean[3], "x") {
		t.Fatalf("reduction cell = %q", mean[3])
	}
	var ratio int64
	if _, err := parseInt(strings.TrimSuffix(mean[3], "x"), &ratio); err != nil {
		t.Fatal(err)
	}
	if ratio < 10 {
		t.Errorf("mean TCB reduction = %dx, want ≥10x", ratio)
	}
}

func TestE6ChannelOpenThenClosed(t *testing.T) {
	tab, err := E6Covert()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "microkernel/best-effort", 5); got == "0.00" {
		t.Error("best-effort covert channel should be open")
	}
	if got := cell(t, tab, "microkernel/time-partitioned", 5); got != "0.00" {
		t.Errorf("TDMA covert bandwidth = %s, want 0.00", got)
	}
	if got := cell(t, tab, "sgx/cache-trace", 4); got != "1.00" {
		t.Errorf("sgx access-trace accuracy = %s, want 1.00", got)
	}
}

func TestE7DetectionMatrix(t *testing.T) {
	tab, err := E7VPFS()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]string{
		"plaintext disclosure": {"UNDETECTED", "immune", "immune"},
		"data tampering":       {"UNDETECTED", "detected", "detected"},
		"rollback replay":      {"UNDETECTED", "UNDETECTED", "detected"},
	}
	for name, cols := range want {
		for i, w := range cols {
			if got := cell(t, tab, name, i+1); got != w {
				t.Errorf("E7 %s col %d = %s, want %s", name, i+1, got, w)
			}
		}
	}
}

func TestE8AmbientExploitableCapabilitySafe(t *testing.T) {
	tab, err := E8Deputy()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "ambient (A3 off)", 2); got != "yes" {
		t.Errorf("ambient deputy: mallory stole = %s, want yes", got)
	}
	if got := cell(t, tab, "capability badges", 2); got != "no" {
		t.Errorf("capability deputy: mallory stole = %s, want no", got)
	}
	if got := cell(t, tab, "capability badges", 1); got != "yes" {
		t.Error("capability deputy broke the legitimate client")
	}
}

func TestE9HardwareAuthImmune(t *testing.T) {
	tab, err := E9Phishing()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "hardware-key", 3); got != "0" {
		t.Errorf("hardware-key compromised = %s, want 0", got)
	}
	pw := cell(t, tab, "password", 3)
	lured := cell(t, tab, "password", 2)
	if pw != lured || pw == "0" {
		t.Errorf("password compromised = %s, lured = %s; should be equal and nonzero", pw, lured)
	}
}

func TestE10GatewayStopsFlood(t *testing.T) {
	tab, err := E10Gateway()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "no", 2); got != "1000" {
		t.Errorf("ungated victim packets = %s, want 1000", got)
	}
	if got := cell(t, tab, "yes", 2); got != "0" {
		t.Errorf("gated victim packets = %s, want 0", got)
	}
}

func TestE11LaunchPolicies(t *testing.T) {
	tab, err := E11Boot()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "vendor-signed", 1); got != "boots" {
		t.Error("secure boot refused good chain")
	}
	if got := cell(t, tab, "modified kernel", 1); got != "REFUSED" {
		t.Error("secure boot ran modified kernel")
	}
	if got := cell(t, tab, "modified kernel", 3); got != "yes" {
		t.Error("truthful auth-boot log should verify")
	}
	if got := cell(t, tab, "modified kernel + doctored log", 3); got != "no" {
		t.Error("doctored log verified")
	}
}

func TestE12AllSubstratesMatchTheirClaims(t *testing.T) {
	tab, err := E12BusTap()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[4] != "PASS" {
			t.Errorf("E12 %s: claim/observation mismatch: %v", r[0], r)
		}
	}
	if got := cell(t, tab, "microkernel", 2); got != "yes" {
		t.Error("microkernel secrets should be on the bus")
	}
	if got := cell(t, tab, "trustzone-scratchpad", 2); got != "no" {
		t.Error("scratchpad-crypto TrustZone leaked to the bus")
	}
	// Hardware MEEs authenticate; the software scratchpad variant does not.
	if got := cell(t, tab, "sgx", 3); got != "yes" {
		t.Error("SGX MEE should detect active tampering")
	}
	if got := cell(t, tab, "sep", 3); got != "yes" {
		t.Error("SEP inline crypto should detect active tampering")
	}
	if got := cell(t, tab, "trustzone-scratchpad", 3); got != "no" {
		t.Error("software scratchpad crypto should NOT detect tampering (confidentiality only)")
	}
}

func TestE13MuxDefeatsOverlay(t *testing.T) {
	tab, err := E13GUI()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "raw framebuffer", 1); got != "yes" {
		t.Error("raw-path phishing should succeed")
	}
	if got := cell(t, tab, "nitpicker mux + indicator", 3); got != "PASS" {
		t.Error("mux path failed")
	}
}

func TestE14SerializationPenalty(t *testing.T) {
	tab, err := E14Concurrency()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "tpm-latelaunch", 1); got != "no" {
		t.Error("late launch should not be concurrent")
	}
	rel := cell(t, tab, "tpm-latelaunch", 5)
	var factor int64
	if _, err := parseInt(strings.TrimSuffix(rel, "x"), &factor); err != nil {
		t.Fatal(err)
	}
	// 100ms×8×10 vs 8us×10 ≈ 100000x.
	if factor < 1000 {
		t.Errorf("late-launch relative makespan = %dx, want ≥1000x", factor)
	}
}

func TestAllRegistryRunsClean(t *testing.T) {
	for _, e := range All() {
		tab, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		if s := tab.String(); !strings.Contains(s, tab.ID) {
			t.Errorf("%s: String() missing ID", e.ID)
		}
	}
}

func TestNewSubstrateUnknown(t *testing.T) {
	if _, err := NewSubstrate("warp-drive"); err == nil {
		t.Error("unknown substrate accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "T", Title: "x", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", 2.5)
	s := tab.String()
	for _, want := range []string{"a", "bb", "2.500", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestE15Interchangeability(t *testing.T) {
	tab, err := E15Interchangeability()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E15 %s: %v", r[0], r)
		}
	}
	if got := cell(t, tab, "fTPM in TrustZone", 2); got != "yes" {
		t.Error("fTPM boot log did not verify")
	}
	if got := cell(t, tab, "fTPM, untrusted vendor", 2); got != "no" {
		t.Error("rogue-vendor fTPM verified")
	}
}

func TestNoCInSubstrateSweep(t *testing.T) {
	tab, err := E2Portability()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "noc", 1); got != "PASS" {
		t.Error("noc failed the portability probe")
	}
	if got := cell(t, tab, "noc", 3); got != "yes" {
		t.Error("noc should have temporal isolation (core per domain)")
	}
	if got := cell(t, tab, "noc", 4); got != "yes" {
		t.Error("noc scratchpads should count as physical memory protection")
	}
}

func TestE16IOMMU(t *testing.T) {
	tab, err := E16IOMMU()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "bus-mastering device, no IOMMU", 1); got != "yes" {
		t.Error("unfiltered DMA should read the victim")
	}
	if got := cell(t, tab, "same device behind IOMMU", 3); got != "PASS" {
		t.Error("IOMMU did not contain the device")
	}
	if got := cell(t, tab, "same device behind IOMMU", 1); got != "no" {
		t.Error("IOMMU-filtered DMA read the victim")
	}
}

func TestE17Distributed(t *testing.T) {
	tab, err := E17Distributed()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E17 %s: %v", r[0], r)
		}
	}
	if got := cell(t, tab, "remote (cloud SGX enclave)", 2); got != "no" {
		t.Error("document leaked on the wire")
	}
}

func TestE19ClusterScalesAndSurvivesChaos(t *testing.T) {
	tab, err := E19Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[5] != "PASS" {
			t.Errorf("E19 %s: %v", r[0], r)
		}
		if r[2] != "0" {
			t.Errorf("E19 %s lost %s readings", r[0], r[2])
		}
	}
	// Throughput must grow monotonically with replica count.
	var prev float64
	for _, row := range []string{"1 replica", "2 replicas", "4 replicas", "8 replicas"} {
		var thr float64
		if _, err := fmt.Sscanf(cell(t, tab, row, 3), "%f", &thr); err != nil {
			t.Fatalf("parse throughput for %s: %v", row, err)
		}
		if thr <= prev {
			t.Errorf("throughput not monotonic at %s: %.3f after %.3f", row, thr, prev)
		}
		prev = thr
	}
	// The chaos fleet still beats a single replica despite losing one
	// member mid-run and never admitting the tampered one.
	var chaos float64
	fmt.Sscanf(cell(t, tab, "4+1 chaos (crash + tampered)", 3), "%f", &chaos)
	var single float64
	fmt.Sscanf(cell(t, tab, "1 replica", 3), "%f", &single)
	if chaos <= single {
		t.Errorf("chaos fleet throughput %.3f not above single replica %.3f", chaos, single)
	}
}

func TestE18AutoPartition(t *testing.T) {
	tab, err := E18AutoPartition()
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, "monolithic", 3); got != "1.00" {
		t.Errorf("monolithic mean leak = %s, want 1.00", got)
	}
	if got := cell(t, tab, "auto-partitioned", 4); got != "0.00" {
		t.Errorf("partitioned renderer exploit leak = %s, want 0.00", got)
	}
	// The partitioned mean must be well under the monolith's.
	var mono, part float64
	fmt.Sscanf(cell(t, tab, "monolithic", 3), "%f", &mono)
	fmt.Sscanf(cell(t, tab, "auto-partitioned", 3), "%f", &part)
	if part >= mono/2 {
		t.Errorf("partitioning gained too little: %.2f vs %.2f", part, mono)
	}
}

func TestE20StallContainment(t *testing.T) {
	tab, err := E20Stall()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[5] != "PASS" {
			t.Errorf("E20 %s: %v", r[0], r)
		}
	}
	// The wedged round must actually have abandoned calls at the deadline.
	if cell(t, tab, "svc-1 wedged 4x budget", 3) == "0" {
		t.Error("wedged round recorded no timeouts")
	}
}

func TestE21Simulation(t *testing.T) {
	tab, err := E21Simulation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[5] != "PASS" {
			t.Errorf("E21 %s: %v", r[0], r)
		}
	}
	// The mixed-fault round must actually have injected faults.
	if cell(t, tab, "mixed-fault schedule", 3) == "0" {
		t.Error("mixed-fault round injected no faults")
	}
}

func TestE22Pipelining(t *testing.T) {
	tab, err := E22Pipelining()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[5] != "PASS" {
			t.Errorf("E22 %s: %v", r[0], r)
		}
	}
	// Depth 16 must actually have pipelined: high-water mark above 1.
	if cell(t, tab, "16", 4) == "1" {
		t.Error("depth-16 round never had more than one call in flight")
	}
}

func TestE23ShardedFleet(t *testing.T) {
	tab, err := E23Sharding()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E23 %s: %v", r[0], r)
		}
	}
	// The headline numbers must be genuine: a full million accepted
	// through a 17-cell fabric, batched 256:1.
	if cell(t, tab, "1048576 clients, 64 tenants, 17 shards", 1) != "17" {
		t.Errorf("fabric did not reach shard epoch 17: %v", tab.Rows[0])
	}
	if got := cell(t, tab, "batched ingestion amortizes AEAD", 2); !strings.Contains(got, "256x") {
		t.Errorf("amortization factor not 256x: %q", got)
	}
}

func TestE23BaselineCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("full million-client curve skipped in -short")
	}
	points, err := E23Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	last := points[len(points)-1]
	if last.Clients != 1048576 || last.Accepted != last.Clients || last.Lost != 0 {
		t.Fatalf("million-client point = %+v", last)
	}
	for _, p := range points {
		if p.Frames != p.Clients/p.Batch {
			t.Errorf("%d clients: %d frames, want %d", p.Clients, p.Frames, p.Clients/p.Batch)
		}
		if p.Throughput <= 0 || p.P99Millis <= 0 {
			t.Errorf("%d clients: non-positive timing %+v", p.Clients, p)
		}
	}
}

func TestE24AuditorReplayAndTamperEvidence(t *testing.T) {
	tab, err := E24Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[4] != "PASS" {
			t.Errorf("E24 %s: %v", r[0], r)
		}
	}
	// The tamper sweep must actually have exercised a non-trivial export.
	if tab.Rows[1][1] == "0" || tab.Rows[1][3] == "0/0" {
		t.Error("chaos run journaled no entries")
	}
}

func TestE25PolicyMosaicDenial(t *testing.T) {
	tab, err := E25Policy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E25 %s: %v", r[0], r)
		}
	}
	// The untainted workload must be genuinely unaffected, and the mosaic
	// genuinely denied — not both vacuously green.
	if cell(t, tab, "untainted egress ×10", 1) != "10 ok" {
		t.Errorf("untainted workload was affected: %v", tab.Rows[0])
	}
	if cell(t, tab, "mosaic exfil (ids→net)", 1) != "denied" {
		t.Errorf("mosaic exfil not denied: %v", tab.Rows[1])
	}
}

func TestE26RollingReplace(t *testing.T) {
	tab, err := E26Rolling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[3] != "PASS" {
			t.Errorf("E26 %s: %v", r[0], r)
		}
	}
	// The fleet must have genuinely rotated: four epochs, not zero.
	if cell(t, tab, "rolling replace, zero loss", 1) != "4" {
		t.Errorf("rolling replace did not reach epoch 4: %v", tab.Rows[0])
	}
}

func TestE26BaselinePhases(t *testing.T) {
	phases, err := E26Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(phases))
	}
	last := phases[len(phases)-1]
	if last.Epoch != 4 || last.Healthy != 3 {
		t.Fatalf("post-replace fleet at epoch %d with %d healthy, want 4/3", last.Epoch, last.Healthy)
	}
	for _, p := range phases {
		if p.Accepted != p.Readings {
			t.Errorf("phase %s accepted %d of %d readings", p.Phase, p.Accepted, p.Readings)
		}
	}
}

func TestE27Coalescing(t *testing.T) {
	tab, err := E27Coalescing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9: %v", len(tab.Rows), tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[6] != "PASS" {
			t.Errorf("E27 %s: %v", r[0], r)
		}
	}
	// The uncoalesced wire must pay one sealed record per call; the
	// adaptive window must beat it by the headline factor.
	if cell(t, tab, "off", 2) != "256" {
		t.Errorf("uncoalesced wire did not seal one record per call: %v", tab.Rows[0])
	}
}

func TestE27BaselinePoints(t *testing.T) {
	points, err := E27Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5", len(points))
	}
	off, adaptive := points[0], points[len(points)-1]
	if off.Window != "off" || off.SealedRecords != uint64(off.Calls) {
		t.Fatalf("uncoalesced point off: %+v", off)
	}
	if adaptive.Window != "adaptive" || adaptive.SealedRecords*8 > off.SealedRecords {
		t.Fatalf("adaptive window saved < 8x AEAD passes: %+v vs %+v", adaptive, off)
	}
	if adaptive.SubsPerRecord < 2 {
		t.Fatalf("adaptive window packed %.2f subs/record, want >= 2", adaptive.SubsPerRecord)
	}
}
