package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/journal"
	"lateral/internal/shard"
)

// E23 scales the Fig. 3 anonymizer past what one attested fleet can
// carry: a provider backend sharded into many pools behind a
// consistent-hash shard map keyed by tenant/meter ID. Three mechanisms
// make a million meters tractable without weakening the trust story:
// batched ingestion (one sealed datagram carries a whole frame of
// readings through a single AEAD pass), per-tenant admission quotas
// (layered above each pool's replica admission limit, so one tenant
// cannot starve the rest of the fabric), and epoch-versioned rebalancing
// (a shard joining mid-stream moves ~K/N of the keyspace and nothing
// else, journaled so an auditor replays the placement history).

const (
	e23Shards  = 16
	e23Tenants = 64
	e23Batch   = 256
)

// e23Fabric is a sharded fleet: one single-replica anonymizer demo per
// shard cell, all routed through a shard.Router, with the router's
// placement transitions journaled for the auditor.
type e23Fabric struct {
	Router  *shard.Router
	Demos   map[string]*FleetDemo
	Jnl     *journal.Journal
	Signer  *cryptoutil.Signer
	Counter *journal.MemCounter
}

func e23Cell(i int) string { return fmt.Sprintf("cell-%02d", i) }

// buildE23Fabric stands up a fabric of n shard cells. quota bounds one
// tenant's in-flight readings across the whole fabric (0 = unbounded);
// journaled selects whether placement transitions are black-boxed.
func buildE23Fabric(n, quota int, journaled bool) (*e23Fabric, error) {
	f := &e23Fabric{Demos: make(map[string]*FleetDemo, n)}
	cfg := shard.Config{Fleet: "e23", TenantQuota: quota}
	if journaled {
		f.Signer = cryptoutil.NewSigner("e23-auditor")
		f.Counter = &journal.MemCounter{}
		jnl, err := journal.New(journal.Config{
			Name:            "e23",
			Signer:          f.Signer,
			Counter:         f.Counter,
			CheckpointEvery: -1,
		})
		if err != nil {
			return nil, err
		}
		f.Jnl = jnl
		cfg.Journal = jnl
	}
	f.Router = shard.NewRouter(cfg)
	for i := 0; i < n; i++ {
		if err := f.Grow(e23Cell(i)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Grow builds one more single-replica anonymizer pool and joins it to
// the shard map (~K/N of the keyspace moves onto it).
func (f *e23Fabric) Grow(cell string) error {
	d, err := BuildFleetDemo(1, 0, nil)
	if err != nil {
		return err
	}
	if err := f.Router.Join(cell, d.Pool); err != nil {
		return err
	}
	f.Demos[cell] = d
	return nil
}

// e23Meter names one simulated client: tenant t's meter m. The tenant
// index is recoverable from the name, which is what makes per-tenant
// loss accounting on the server side possible.
func e23Meter(t, m int) string { return fmt.Sprintf("t%02d/m%06d", t, m) }

// e23Run is the outcome of one driven load: totals, the wall-clock
// latency of every batch frame, and per-tenant acceptance.
type e23Run struct {
	Accepted int
	Refused  int
	Frames   int
	Elapsed  time.Duration
	lats     []time.Duration
}

// P99 returns the 99th-percentile frame latency.
func (r *e23Run) P99() time.Duration {
	if len(r.lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}

// e23Drive pushes one reading from every one of tenants×metersPerTenant
// simulated clients through the router in batch-sized frames. All
// readings in a frame belong to one tenant and share the frame's routing
// key, so the whole frame crosses the secure channel in a single AEAD
// pass and lands on one shard. chaos, when set, runs before each frame —
// the hook the rebalance-mid-stream scenario uses.
func e23Drive(rt *shard.Router, tenants, metersPerTenant, batch int, chaos func(frame int) error) (*e23Run, error) {
	run := &e23Run{}
	readings := make([]distributed.Reading, batch)
	var results []distributed.BatchResult
	start := time.Now()
	frame := 0
	for t := 0; t < tenants; t++ {
		tenant := fmt.Sprintf("t%02d", t)
		for m := 0; m < metersPerTenant; m += batch {
			if chaos != nil {
				if err := chaos(frame); err != nil {
					return nil, fmt.Errorf("e23 chaos at frame %d: %w", frame, err)
				}
			}
			n := batch
			if m+n > metersPerTenant {
				n = metersPerTenant - m
			}
			for i := 0; i < n; i++ {
				kwh := byte(1 + (m+i)%9)
				readings[i] = distributed.Reading{
					Op:   "reading",
					Data: append([]byte(e23Meter(t, m+i)), '=', kwh),
				}
			}
			key := fmt.Sprintf("%s/b%04d", tenant, m/batch)
			t0 := time.Now()
			res, err := rt.DoBatch(tenant, key, readings[:n], results[:0], time.Time{})
			run.lats = append(run.lats, time.Since(t0))
			if err != nil {
				return nil, fmt.Errorf("e23 frame %d (%s): %w", frame, key, err)
			}
			results = res
			for _, r := range res {
				if r.Err != nil {
					run.Refused++
				} else {
					run.Accepted++
				}
			}
			run.Frames++
			frame++
		}
	}
	run.Elapsed = time.Since(start)
	return run, nil
}

// lostPerTenant audits acceptance server-side: it scans every shard
// cell's anonymizer state, attributes each processed reading back to its
// tenant by meter name, and returns per-tenant shortfalls against the
// expected metersPerTenant. Duplicates across a rebalance would surface
// as negative loss and are reported as corruption.
func (f *e23Fabric) lostPerTenant(tenants, metersPerTenant int) (map[string]int, error) {
	acc := make([]int, tenants)
	for _, d := range f.Demos {
		for _, a := range d.anons {
			for meter, n := range a.perMeter {
				if len(meter) < 3 || meter[0] != 't' {
					return nil, fmt.Errorf("e23: foreign meter %q on a shard cell", meter)
				}
				t, err := strconv.Atoi(meter[1:3])
				if err != nil || t < 0 || t >= tenants {
					return nil, fmt.Errorf("e23: unattributable meter %q", meter)
				}
				acc[t] += n
			}
		}
	}
	lost := make(map[string]int)
	for t := 0; t < tenants; t++ {
		if d := metersPerTenant - acc[t]; d != 0 {
			if d < 0 {
				return nil, fmt.Errorf("e23: tenant t%02d over-counted by %d readings", t, -d)
			}
			lost[fmt.Sprintf("t%02d", t)] = d
		}
	}
	return lost, nil
}

// E23Sharding drives ≥1M simulated clients (64 tenants × 16384 meters)
// through a 16-shard fabric in 256-reading sealed frames, grows the
// fabric to 17 shards mid-stream, and then audits the run three ways:
// per-tenant loss accounting against the shards' own state, the AEAD
// economics of batching, and a journal replay of the placement history.
func E23Sharding() (Table, error) {
	t := Table{
		ID:     "E23",
		Title:  "million-client sharded fleet",
		Anchor: "§III-D anonymizer at population scale; Fig. 3 provider backend",
		Header: []string{"scenario", "epoch", "detail", "verdict"},
	}
	const metersPerTenant = 16384
	total := e23Tenants * metersPerTenant // 1,048,576 simulated clients
	totalFrames := total / e23Batch

	// Quota: well above one frame (sequential dispatch keeps a tenant's
	// in-flight at one frame), far below the abusive burst tried later.
	f, err := buildE23Fabric(e23Shards, 2*e23Batch, true)
	if err != nil {
		return t, err
	}

	// The rebalance lands halfway through the stream: a 17th cell joins
	// a live fabric, ~1/17th of the keyspace moves onto it, and the
	// remaining half-million readings route against the new epoch.
	grown := false
	run, err := e23Drive(f.Router, e23Tenants, metersPerTenant, e23Batch, func(frame int) error {
		if frame == totalFrames/2 && !grown {
			grown = true
			return f.Grow(e23Cell(e23Shards))
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	epoch := f.Router.Epoch()

	// Per-tenant loss accounting: the server-side audit must find every
	// tenant whole — no reading lost, none double-counted.
	lost, err := f.lostPerTenant(e23Tenants, metersPerTenant)
	if err != nil {
		return t, err
	}
	ingestOK := run.Accepted == total && run.Refused == 0 && len(lost) == 0
	t.AddRow(fmt.Sprintf("%d clients, %d tenants, %d shards", total, e23Tenants, len(f.Demos)),
		epoch,
		fmt.Sprintf("%d/%d accepted, %d refused, %d tenants with loss", run.Accepted, total, run.Refused, len(lost)),
		passFail(ingestOK))

	// The mid-stream rebalance: one extra epoch past the 16 seed joins,
	// and the joiner carries real traffic afterwards — its slice of the
	// keyspace, not a token trickle and not everything.
	var joinerRouted, totalRouted int64
	for _, s := range f.Router.Shards() {
		totalRouted += s.Routed
		if s.Name == e23Cell(e23Shards) {
			joinerRouted = s.Routed
		}
	}
	rebalanceOK := grown && epoch == uint64(e23Shards+1) &&
		joinerRouted > 0 && joinerRouted < totalRouted/4 &&
		totalRouted == int64(total)
	t.AddRow("rebalance mid-stream (~K/N keys move)", epoch,
		fmt.Sprintf("%s joined at epoch %d, took %d of %d readings", e23Cell(e23Shards), epoch, joinerRouted, totalRouted),
		passFail(rebalanceOK))

	// Batch economics: one sealed frame per e23Batch readings means one
	// AEAD pass per hop where per-reading dispatch would take e23Batch.
	factor := run.Accepted / run.Frames
	t.AddRow("batched ingestion amortizes AEAD", epoch,
		fmt.Sprintf("%d sealed frames for %d readings (%dx fewer AEAD passes)", run.Frames, run.Accepted, factor),
		passFail(factor >= 8 && run.Frames == totalFrames))

	// Tenant quota: an abusive burst is refused at the router with a
	// typed overload before any shard sees it — no retry burned, no
	// failover provoked, nothing processed.
	before := 0
	for _, d := range f.Demos {
		before += d.ProcessedTotal()
	}
	burst := make([]distributed.Reading, 4*e23Batch)
	for i := range burst {
		burst[i] = distributed.Reading{Op: "reading", Data: append([]byte(e23Meter(0, i)), '=', 1)}
	}
	_, qerr := f.Router.DoBatch("t00", "t00/burst", burst, nil, time.Time{})
	after := 0
	for _, d := range f.Demos {
		after += d.ProcessedTotal()
	}
	denied := int64(0)
	for _, ts := range f.Router.Tenants() {
		denied += ts.Denied
	}
	quotaOK := errors.Is(qerr, core.ErrOverloaded) && after == before && denied == 1
	t.AddRow("tenant quota refuses burst untouched", epoch,
		fmt.Sprintf("%d-reading burst vs quota %d: typed refusal, %d readings reached a shard", len(burst), 2*e23Batch, after-before),
		passFail(quotaOK))

	// Auditor replay: the exported journal rederives the full placement
	// history — 16 seed joins plus the mid-stream join, epochs strictly
	// increasing, final membership exactly the live fabric.
	if err := f.Jnl.Checkpoint(); err != nil {
		return t, err
	}
	trusted, _ := f.Counter.Value()
	audit, err := journal.Replay(f.Jnl.Export(), f.Signer.Public(), trusted)
	if err != nil {
		return t, fmt.Errorf("e23 placement replay: %w", err)
	}
	auditOK := len(audit.Shards) == e23Shards+1
	if auditOK {
		final := audit.Shards[len(audit.Shards)-1]
		auditOK = final.Action == "join" && final.Shard == e23Cell(e23Shards) &&
			final.Epoch == epoch && len(final.Members) == e23Shards+1
	}
	t.AddRow("placement history replays from export", epoch,
		fmt.Sprintf("%d shard-assign records, final membership %d cells", len(audit.Shards), len(f.Router.Members())),
		passFail(auditOK))

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tenants × %d meters = %d simulated clients, one reading each, %d-reading sealed frames keyed by tenant/block", e23Tenants, metersPerTenant, total, e23Batch),
		fmt.Sprintf("wall-clock: %.1fs end to end, p99 frame latency %.2fms (machine-dependent; BENCH_e23.json holds the curve)", run.Elapsed.Seconds(), float64(run.P99().Microseconds())/1e3),
		"loss accounting is server-side: each shard cell's per-meter counts are attributed back to tenants, so a reading dropped or duplicated during the rebalance cannot hide",
	)
	return t, nil
}

// E23Point is one row of the checked-in BENCH_e23.json baseline: the
// clients-vs-latency/throughput curve of the sharded fabric at a fixed
// shard count and batch size. Frame/acceptance counts are deterministic;
// p99 and throughput are wall-clock (a trajectory, not a gate).
type E23Point struct {
	Clients    int     `json:"clients"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	Frames     int     `json:"frames"`
	Accepted   int     `json:"accepted"`
	Lost       int     `json:"lost"`
	P99Millis  float64 `json:"p99_ms"`
	Throughput float64 `json:"readings_per_sec"`
}

// E23Baseline drives the fabric at rising client populations — 64k to
// the full million — and records the curve `lateralbench -e23-json`
// checks in as BENCH_e23.json.
func E23Baseline() ([]E23Point, error) {
	out := make([]E23Point, 0, 3)
	for _, clients := range []int{65536, 262144, 1048576} {
		f, err := buildE23Fabric(e23Shards, 0, false)
		if err != nil {
			return nil, err
		}
		metersPerTenant := clients / e23Tenants
		run, err := e23Drive(f.Router, e23Tenants, metersPerTenant, e23Batch, nil)
		if err != nil {
			return nil, err
		}
		lost, err := f.lostPerTenant(e23Tenants, metersPerTenant)
		if err != nil {
			return nil, err
		}
		totalLost := 0
		for _, n := range lost {
			totalLost += n
		}
		if totalLost != 0 {
			return nil, fmt.Errorf("e23 baseline: %d readings lost at %d clients", totalLost, clients)
		}
		out = append(out, E23Point{
			Clients:    clients,
			Shards:     e23Shards,
			Batch:      e23Batch,
			Frames:     run.Frames,
			Accepted:   run.Accepted,
			Lost:       totalLost,
			P99Millis:  float64(run.P99().Microseconds()) / 1e3,
			Throughput: float64(run.Accepted) / run.Elapsed.Seconds(),
		})
	}
	return out, nil
}
