// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's per-experiment index (E1–E27 plus the
// ablations folded into their tables). Each returns a Table whose rows the
// command-line harness prints and whose numbers the benchmark suite and
// tests assert on.
//
// The paper is a vision paper without quantitative tables; these
// experiments validate every falsifiable claim it makes instead, each
// pinned to the paper passage in its doc comment.
package experiments

import (
	"fmt"
	"strings"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/kernel"
	"lateral/internal/noc"
	"lateral/internal/sep"
	"lateral/internal/sgx"
	"lateral/internal/tpm"
	"lateral/internal/trustzone"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID     string
	Title  string
	Anchor string // paper passage the experiment reproduces
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders an aligned text table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Anchor != "" {
		fmt.Fprintf(&b, "   (reproduces: %s)\n", t.Anchor)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func() (Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "containment (Fig. 1)", Run: E1Containment},
		{ID: "E2", Name: "unified interface portability (Fig. 2)", Run: E2Portability},
		{ID: "E3", Name: "smart meter end-to-end (Fig. 3)", Run: E3SmartMeter},
		{ID: "E4", Name: "invocation cost of decomposition", Run: E4Invocation},
		{ID: "E5", Name: "TCB size", Run: E5TCB},
		{ID: "E6", Name: "scheduling covert channel", Run: E6Covert},
		{ID: "E7", Name: "VPFS trusted wrapper", Run: E7VPFS},
		{ID: "E8", Name: "confused deputy vs capabilities", Run: E8Deputy},
		{ID: "E9", Name: "phishing resistance", Run: E9Phishing},
		{ID: "E10", Name: "gateway DDoS containment", Run: E10Gateway},
		{ID: "E11", Name: "secure vs authenticated boot", Run: E11Boot},
		{ID: "E12", Name: "physical DRAM bus attacker", Run: E12BusTap},
		{ID: "E13", Name: "secure GUI phishing overlay", Run: E13GUI},
		{ID: "E14", Name: "trusted-component concurrency", Run: E14Concurrency},
		{ID: "E15", Name: "substrate interchangeability (fTPM)", Run: E15Interchangeability},
		{ID: "E16", Name: "IOMMU vs malicious device DMA", Run: E16IOMMU},
		{ID: "E17", Name: "distributed confidence domains", Run: E17Distributed},
		{ID: "E18", Name: "automatic partitioning", Run: E18AutoPartition},
		{ID: "E19", Name: "attested replica fleet (cluster)", Run: E19Cluster},
		{ID: "E20", Name: "stall containment under deadlines", Run: E20Stall},
		{ID: "E21", Name: "deterministic fleet simulation", Run: E21Simulation},
		{ID: "E22", Name: "pipelined secure-channel RPC", Run: E22Pipelining},
		{ID: "E23", Name: "million-client sharded fleet", Run: E23Sharding},
		{ID: "E24", Name: "fleet black box (auditor replay)", Run: E24Audit},
		{ID: "E25", Name: "chain-aware policy (mosaic denial)", Run: E25Policy},
		{ID: "E26", Name: "rolling replace under config epochs", Run: E26Rolling},
		{ID: "E27", Name: "wire-level frame coalescing + adaptive window", Run: E27Coalescing},
	}
}

// SubstrateNames lists the substrates the portability and cost experiments
// sweep: the monolith baseline, the five isolation technologies the paper
// analyzes in depth, and the M3-style NoC mesh it mentions for
// heterogeneous manycores.
func SubstrateNames() []string {
	return []string{"monolith", "microkernel", "trustzone", "sgx", "sep", "tpm-latelaunch", "noc"}
}

// NewSubstrate constructs a fresh substrate by name, with deterministic
// vendor/device identities.
func NewSubstrate(name string) (core.Substrate, error) {
	switch name {
	case "monolith":
		return core.NewMonolith(4 << 20), nil
	case "microkernel":
		return kernel.New(kernel.Config{}), nil
	case "microkernel-tdma":
		return kernel.New(kernel.Config{TimePartitioned: true}), nil
	case "trustzone":
		return trustzone.New(trustzone.Config{
			DeviceSeed:  "exp-tz",
			Vendor:      cryptoutil.NewSigner("soc-vendor"),
			Hypervisor:  true,
			SecurePages: 256,
		})
	case "trustzone-scratchpad":
		return trustzone.New(trustzone.Config{
			DeviceSeed:       "exp-tzs",
			Vendor:           cryptoutil.NewSigner("soc-vendor"),
			Hypervisor:       true,
			ScratchpadCrypto: true,
		})
	case "sgx":
		return sgx.New(sgx.Config{DeviceSeed: "exp-sgx", Vendor: cryptoutil.NewSigner("cpu-vendor")})
	case "sep":
		return sep.New(sep.Config{DeviceSeed: "exp-sep", Vendor: cryptoutil.NewSigner("sep-vendor")})
	case "tpm-latelaunch":
		return tpm.NewSubstrate(tpm.New("exp-tpm", cryptoutil.NewSigner("tpm-mfr"))), nil
	case "noc":
		// 64 KiB scratchpads (M3-scale) so colocated variants also fit.
		return noc.New(noc.Config{Tiles: 32, SPMBytes: 64 << 10}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown substrate %q", name)
	}
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
