package experiments

import (
	"fmt"
	"sort"
	"time"

	"lateral/internal/distributed"
)

// E27: wire-level frame coalescing + adaptive pipeline depth.
//
// Wire-v3 pipelining (E22) already amortizes ROUND TRIPS: d concurrent
// callers share each simulated RTT. But every caller still seals its own
// record, so the fleet pays one AEAD pass per call per direction no matter
// how deep the pipeline runs. Coalescing moves the amortization one layer
// down: callers racing into a stub during the same wire round share one
// sealed record (the cleartext header binds the sub-frame count and every
// correlation ID as associated data), so AEAD passes scale with wire
// rounds, not calls. The adaptive AIMD window controller sizes the
// coalescing window from observed backlog instead of a hand-tuned knob.
//
// The experiment sweeps the window ceiling at depth 64 and verifies the
// headline reduction (>= 8x fewer sealed records than the uncoalesced
// wire at the same depth), then sweeps the simulated RTT and verifies the
// adaptive default lands within 2x of the best fixed ceiling everywhere —
// the controller must not need per-deployment tuning.

// e27Sample is one measured configuration of the coalescing sweep.
type e27Sample struct {
	res e22Result
	p99 time.Duration
}

// e27Run measures one (window ceiling, rtt) point at the given depth and
// call count, capturing per-call latencies for the p99 cut.
func e27Run(depth, calls int, rtt time.Duration, window int) (e27Sample, error) {
	lat := make([]time.Duration, calls)
	res, err := e22RunCfg(depth, calls, rtt, window, lat)
	if err != nil {
		return e27Sample{}, err
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return e27Sample{res: res, p99: lat[(99*calls)/100]}, nil
}

// e27WindowLabel names a CoalesceMax value for table rows: 1 is the
// uncoalesced wire, 0 the adaptive default.
func e27WindowLabel(window int) string {
	switch window {
	case 0:
		return "adaptive"
	case 1:
		return "off"
	default:
		return fmt.Sprint(window)
	}
}

// e27Balanced is the per-row exactly-once verdict: every call resolved,
// nothing lost, orphaned, or left in flight, and the record accounting
// consistent with the window — the uncoalesced wire must seal one record
// per call, any real window must seal strictly fewer.
func e27Balanced(window, calls int, st distributed.StubStats) bool {
	balanced := st.Issued == uint64(calls) && st.Completed == uint64(calls) &&
		st.Failed == 0 && st.Inflight == 0 && st.Orphans == 0
	if window == 1 {
		return balanced && st.Records == uint64(calls) && st.CoalescedRecords == 0
	}
	return balanced && st.Records < uint64(calls) && st.CoalescedRecords > 0
}

// E27Coalescing measures what sharing sealed records buys over plain
// wire-v3 pipelining and that the adaptive window needs no tuning.
func E27Coalescing() (Table, error) {
	t := Table{
		ID:     "E27",
		Title:  "wire-level frame coalescing + adaptive window",
		Anchor: "§III-B trustworthy invocation across machines; cost of attested channels at scale",
		Header: []string{"window", "depth", "records", "subs/rec", "rounds", "p99", "verdict"},
	}

	const depth, calls = 64, 256
	const rtt = time.Millisecond

	// Window-ceiling sweep at depth 64: how the sealed-record count, the
	// sub-frames packed per record, and the caller-visible p99 move as the
	// coalescing window opens up.
	records := make(map[int]uint64)
	for _, window := range []int{1, 4, 16, 64, 0} {
		s, err := e27Run(depth, calls, rtt, window)
		if err != nil {
			return t, err
		}
		st := s.res.stats
		records[window] = st.Records
		subsPerRec := "1.00"
		if st.CoalescedRecords > 0 {
			subsPerRec = fmt.Sprintf("%.2f", float64(st.CoalescedSubs)/float64(st.CoalescedRecords))
		}
		t.AddRow(e27WindowLabel(window), depth, st.Records, subsPerRec, s.res.pumps,
			s.p99.Round(10*time.Microsecond), passFail(e27Balanced(window, calls, st)))
	}

	// The headline claim: at 64 concurrent callers the adaptive window
	// seals at least 8x fewer records — 8x fewer AEAD passes on the
	// request path — than the uncoalesced wire for the same workload.
	reduction := float64(records[1]) / float64(records[0])
	t.AddRow("off vs adaptive", depth, "-", "-", "-", "-", passFail(reduction >= 8))

	// The no-tuning claim: across an RTT sweep the adaptive default stays
	// within 2x of the best fixed ceiling for that RTT. A controller that
	// needed per-deployment tuning would lose badly somewhere.
	for _, sweep := range []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		best := uint64(0)
		for _, window := range []int{4, 16, 64} {
			s, err := e27Run(depth, calls, sweep, window)
			if err != nil {
				return t, err
			}
			if best == 0 || s.res.stats.Records < best {
				best = s.res.stats.Records
			}
		}
		adaptive, err := e27Run(depth, calls, sweep, 0)
		if err != nil {
			return t, err
		}
		got := adaptive.res.stats.Records
		t.AddRow(fmt.Sprintf("adaptive@%s", sweep), depth, got,
			fmt.Sprintf("best=%d", best), adaptive.res.pumps, adaptive.p99.Round(10*time.Microsecond),
			passFail(got <= 2*best && e27Balanced(0, calls, adaptive.res.stats)))
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("AEAD passes on the request path: %d uncoalesced vs %d adaptive (%.1fx fewer)",
			records[1], records[0], reduction),
		"records exclude the handshake; the coalesced header binds count + every correlation ID as AD",
	)
	return t, nil
}

// E27Point is one row of the checked-in BENCH_e27.json baseline: the
// coalesce-window curve at depth 64 — sealed records (AEAD passes),
// sub-frames per coalesced record, wire rounds, throughput, p99, and
// allocations. Records, rounds, and allocs/op are machine-independent;
// ops/sec and p99 are wall-clock.
type E27Point struct {
	Window        string  `json:"coalesce_window"`
	Depth         int     `json:"depth"`
	Calls         int     `json:"calls"`
	SealedRecords uint64  `json:"sealed_records"`
	SubsPerRecord float64 `json:"subs_per_record"`
	WireRounds    int64   `json:"wire_rounds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P99Micros     float64 `json:"p99_us"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// E27Baseline runs the coalesce-window sweep and returns one baseline
// point per ceiling. `lateralbench -e27-json` writes BENCH_e27.json.
func E27Baseline() ([]E27Point, error) {
	const depth, calls = 64, 256
	const rtt = time.Millisecond
	out := make([]E27Point, 0, 5)
	for _, window := range []int{1, 4, 16, 64, 0} {
		s, err := e27Run(depth, calls, rtt, window)
		if err != nil {
			return nil, err
		}
		st := s.res.stats
		if !e27Balanced(window, calls, st) {
			return nil, fmt.Errorf("E27: unbalanced books at window %s: %+v", e27WindowLabel(window), st)
		}
		subsPerRec := 1.0
		if st.CoalescedRecords > 0 {
			subsPerRec = float64(st.CoalescedSubs) / float64(st.CoalescedRecords)
		}
		out = append(out, E27Point{
			Window:        e27WindowLabel(window),
			Depth:         depth,
			Calls:         calls,
			SealedRecords: st.Records,
			SubsPerRecord: subsPerRec,
			WireRounds:    s.res.pumps,
			OpsPerSec:     float64(calls) / s.res.elapsed.Seconds(),
			P99Micros:     float64(s.p99.Microseconds()),
			AllocsPerOp:   float64(s.res.mallocs) / float64(calls),
		})
	}
	return out, nil
}
