package experiments

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// e19Anon is the replicated anonymizer of the Fig. 3 smart-meter backend:
// one audited build deployed N times, each instance in its own cloud
// enclave. It aggregates readings and tracks per-meter counts so the
// experiment can prove no accepted reading was lost.
type e19Anon struct {
	readings int
	sum      int64
	perMeter map[string]int
}

func (a *e19Anon) CompName() string     { return "anonymizer" }
func (a *e19Anon) CompVersion() string  { return "2.0" }
func (a *e19Anon) Init(*core.Ctx) error { return nil }

func (a *e19Anon) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "reading":
		// Data is "meterID=k" with k the kWh value in the final byte.
		data := env.Msg.Data
		if len(data) < 3 || data[len(data)-2] != '=' {
			return core.Message{}, core.ErrRefused
		}
		if a.perMeter == nil {
			a.perMeter = make(map[string]int)
		}
		a.perMeter[string(data[:len(data)-2])]++
		a.readings++
		a.sum += int64(data[len(data)-1])
		return core.Message{Op: "ack", Data: []byte(fmt.Sprint(a.readings))}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// e19TamperedAnon is the same anonymizer with a siphon patched in — a
// different measurement, which fleet admission must quarantine.
type e19TamperedAnon struct{ e19Anon }

func (t *e19TamperedAnon) CompVersion() string { return "2.0-siphon" }

// FleetDemo is a running anonymizer fleet, exposed so tooling (lateralctl
// cluster / metrics) can instrument and drive it.
type FleetDemo struct {
	// Pool is the attested replica fleet.
	Pool *cluster.Pool
	// Net is the simulated network between the balancer and the replicas.
	Net *netsim.Network
	// Part is the partition adversary on that network (crash injection).
	Part *netsim.Partitioner
	// TamperedAdmitErr is the admission failure of the tampered replica,
	// when one was deployed (nil otherwise).
	TamperedAdmitErr error

	anons     map[string]*e19Anon
	systems   map[string]*core.System
	exporters map[string]*distributed.Exporter
	vendor    *cryptoutil.Signer
	meas      [32]byte
	rec       cluster.EventRecorder
}

// BuildFleetDemo deploys an anonymizer fleet of n replicas named
// anon-1…anon-n, each in its own SGX-style enclave behind an attested
// exporter. When tamperedIdx is in [1, n], that replica runs the tampered
// build; its admission must fail and is recorded in TamperedAdmitErr.
// mon (may be nil) receives per-replica fleet telemetry.
func BuildFleetDemo(n, tamperedIdx int, mon cluster.Monitor) (*FleetDemo, error) {
	return BuildJournaledFleetDemo(n, tamperedIdx, mon, nil)
}

// BuildJournaledFleetDemo is BuildFleetDemo with a fleet black box wired
// in: rec journals every admission, state transition, failover, and
// secure-channel session event from the pool, plus every deadline,
// overload, and cancel shed inside each replica system (E24, lateralctl
// events/audit). A nil rec is the journal-off fast path.
func BuildJournaledFleetDemo(n, tamperedIdx int, mon cluster.Monitor, rec cluster.EventRecorder) (*FleetDemo, error) {
	net := netsim.New()
	part := netsim.NewPartitioner()
	net.SetAdversary(part)
	vendor := cryptoutil.NewSigner("intel")
	pool, err := cluster.New(cluster.Config{
		Fleet:       "anonymizer",
		RemoteName:  "anonymizer",
		VendorKey:   vendor.Public(),
		Measurement: cryptoutil.Hash(core.DomainImage(&e19Anon{})),
		JitterSeed:  "e19",
		Sleep:       func(time.Duration) {}, // virtual time only
		Monitor:     mon,
		Journal:     rec,
	})
	if err != nil {
		return nil, err
	}
	d := &FleetDemo{
		Pool:      pool,
		Net:       net,
		Part:      part,
		anons:     make(map[string]*e19Anon),
		systems:   make(map[string]*core.System),
		exporters: make(map[string]*distributed.Exporter),
		vendor:    vendor,
		meas:      cryptoutil.Hash(core.DomainImage(&e19Anon{})),
		rec:       rec,
	}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("anon-%d", i)
		spec, err := d.buildReplica(name, i == tamperedIdx)
		if err != nil {
			return nil, err
		}
		err = pool.Admit(spec)
		if i == tamperedIdx {
			if err == nil {
				return nil, fmt.Errorf("e19: tampered replica %s was admitted", name)
			}
			d.TamperedAdmitErr = err
		} else if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// buildReplica stands up one replica machine — enclave, system, exporter —
// and returns the admission spec for it, with the exporter's epoch gate
// wired so the pool can rekey it through config transitions. It does not
// admit; the caller picks Admit (static build) or Join (epoch transition).
func (d *FleetDemo) buildReplica(name string, tampered bool) (cluster.ReplicaSpec, error) {
	cpu, err := sgx.New(sgx.Config{DeviceSeed: "e19-" + name, Vendor: d.vendor})
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	sys := core.NewSystem(cpu)
	anon := &e19Anon{}
	var comp core.Component = anon
	if tampered {
		tam := &e19TamperedAnon{}
		anon = &tam.e19Anon
		comp = tam
	}
	if err := sys.Launch(comp, true, 1); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if err := sys.InitAll(); err != nil {
		return cluster.ReplicaSpec{}, err
	}
	if d.rec != nil {
		sys.SetEventRecorder(d.rec)
	}
	exp, err := distributed.NewExporter(distributed.ExportConfig{
		System:    sys,
		Component: "anonymizer",
		Endpoint:  d.Net.Attach(name),
		Identity:  cryptoutil.NewSigner(name + "-tls"),
		Rand:      cryptoutil.NewPRNG("e19-srv-" + name),
	})
	if err != nil {
		return cluster.ReplicaSpec{}, err
	}
	d.anons[name] = anon
	d.systems[name] = sys
	d.exporters[name] = exp
	return cluster.ReplicaSpec{
		Name:           name,
		RemoteEndpoint: name,
		Endpoint:       d.Net.Attach("lb-" + name),
		Rand:           cryptoutil.NewPRNG("e19-cli-" + name),
		Pump:           exp.Serve,
		SetEpoch:       exp.SetEpoch,
	}, nil
}

// Join stands up a fresh honest replica named name and admits it through a
// full config-epoch transition: the whole fleet re-attests and rekeys at
// the new epoch (E26 rolling replace).
func (d *FleetDemo) Join(name string) error {
	spec, err := d.buildReplica(name, false)
	if err != nil {
		return err
	}
	return d.Pool.Join(spec)
}

// Dial connects a side-channel stub straight to one replica's exporter,
// outside the pool, with the handshake stamping whatever epoch fn reports.
// E26 uses it to prove the epoch gate: a client keyed to a stale config
// must be refused once the fleet has moved on.
func (d *FleetDemo) Dial(replica, client string, epoch func() uint64) (*distributed.Stub, error) {
	exp := d.exporters[replica]
	if exp == nil {
		return nil, fmt.Errorf("e19: no exporter for %q", replica)
	}
	vendor, meas := d.vendor, d.meas
	return distributed.NewStub(distributed.StubConfig{
		RemoteName:     "anonymizer",
		RemoteEndpoint: replica,
		Endpoint:       d.Net.Attach(client),
		Rand:           cryptoutil.NewPRNG("e19-side-" + client),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meas)
		},
		Pump:  exp.Serve,
		Epoch: epoch,
	})
}

// Send routes one meter reading into the fleet, sharded by meter identity.
func (d *FleetDemo) Send(meter string, kwh int) error {
	return d.SendDeadline(meter, kwh, time.Time{})
}

// SendDeadline is Send under a caller budget: transmit, remote execution,
// and any failover must all finish before deadline. Zero is unbounded.
func (d *FleetDemo) SendDeadline(meter string, kwh int, deadline time.Time) error {
	_, err := d.Pool.DoDeadline(meter, core.Message{
		Op:   "reading",
		Data: append([]byte(meter+"="), byte(kwh)),
	}, deadline)
	return err
}

// SetTracer installs tr on every replica system.
func (d *FleetDemo) SetTracer(tr core.Tracer) {
	for _, sys := range d.systems {
		sys.SetTracer(tr)
	}
}

// Processed returns how many readings one replica's anonymizer handled.
func (d *FleetDemo) Processed(name string) int { return d.anons[name].readings }

// ProcessedTotal sums processed readings across the fleet.
func (d *FleetDemo) ProcessedTotal() int {
	n := 0
	for _, a := range d.anons {
		n += a.readings
	}
	return n
}

// ProcessedByMeter sums one meter's readings across the fleet.
func (d *FleetDemo) ProcessedByMeter(meter string) int {
	n := 0
	for _, a := range d.anons {
		n += a.perMeter[meter]
	}
	return n
}

// MakespanNs is the fleet's modeled completion time: replicas work in
// parallel, so it is the maximum per-replica accumulated virtual time.
func (d *FleetDemo) MakespanNs() int64 {
	var max int64
	for _, sys := range d.systems {
		if v := sys.Stats().VirtualNs; v > max {
			max = v
		}
	}
	return max
}

// e19Drive sends rounds×meters readings through the fleet, invoking chaos
// (when non-nil) before each send with the running reading index. It
// returns how many sends the fleet accepted and how many accepted readings
// were never processed by any replica (loss is counted per meter, so
// duplicates from one meter cannot mask losses from another).
func e19Drive(d *FleetDemo, meters, rounds int, chaos func(i int)) (accepted, lost int) {
	sent := make(map[string]int, meters)
	i := 0
	for r := 0; r < rounds; r++ {
		for m := 0; m < meters; m++ {
			if chaos != nil {
				chaos(i)
			}
			name := fmt.Sprintf("meter-%03d", m)
			if err := d.Send(name, 1+(m+r)%9); err == nil {
				accepted++
				sent[name]++
			}
			i++
		}
	}
	for name, n := range sent {
		if p := d.ProcessedByMeter(name); p < n {
			lost += n - p
		}
	}
	return accepted, lost
}

// E19Cluster validates the many-meter scaling story behind Fig. 3: "the
// service provider in charge of operating the metering infrastructure"
// cannot serve millions of meters from one enclave, so the anonymizer
// becomes an attested replica fleet (§III-D aggregates spanning machines).
// Fleets of 1/2/4/8 replicas serve the same meter population — throughput
// must scale with replica count — and a chaos run crashes one replica
// mid-stream (transparent failover, later re-attested and re-admitted)
// while a tampered build sits quarantined from admission to shutdown.
func E19Cluster() (Table, error) {
	t := Table{
		ID:     "E19",
		Title:  "attested replica fleet under load",
		Anchor: "§III-D distributed aggregates; Fig. 3 anonymizer at provider scale",
		Header: []string{"fleet", "accepted", "lost", "rd/ms", "speedup", "verdict"},
	}
	const meters, rounds = 160, 3
	total := meters * rounds
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		d, err := BuildFleetDemo(n, 0, nil)
		if err != nil {
			return t, err
		}
		accepted, lost := e19Drive(d, meters, rounds, nil)
		thr := float64(accepted) / (float64(d.MakespanNs()) / 1e6)
		if n == 1 {
			base = thr
		}
		ok := accepted == total && lost == 0 && d.ProcessedTotal() == accepted
		label := fmt.Sprintf("%d replicas", n)
		if n == 1 {
			label = "1 replica"
		}
		t.AddRow(label, accepted, lost, thr, fmt.Sprintf("%.2fx", thr/base), passFail(ok))
	}

	// Chaos run: 4 honest replicas plus a tampered deploy. anon-2 crashes a
	// third of the way in and restarts (heal + re-attest) at two thirds;
	// anon-5's evidence mismatches at admission and it must stay out.
	d, err := BuildFleetDemo(5, 5, nil)
	if err != nil {
		return t, err
	}
	accepted, lost := e19Drive(d, meters, rounds, func(i int) {
		switch i {
		case total / 3:
			d.Part.Isolate("anon-2")
		case 2 * total / 3:
			d.Part.Heal("anon-2")
			d.Pool.CheckNow()
		}
	})
	thr := float64(accepted) / (float64(d.MakespanNs()) / 1e6)
	ok := accepted == total && lost == 0 &&
		d.Pool.Quarantined() == 1 && d.Processed("anon-5") == 0 &&
		d.Pool.Healthy() == 4 && d.TamperedAdmitErr != nil
	t.AddRow("4+1 chaos (crash + tampered)", accepted, lost, thr,
		fmt.Sprintf("%.2fx", thr/base), passFail(ok))

	var failovers int64
	for _, ri := range d.Pool.Replicas() {
		failovers += ri.Failovers
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d meters × %d readings; rd/ms = accepted / fleet makespan (max per-replica virtual time, SGX transition ≈ 8 µs)", meters, rounds),
		fmt.Sprintf("chaos run: %d failover(s); crashed anon-2 re-attested and re-admitted; tampered anon-5 quarantined at admission (%d readings)", failovers, d.Processed("anon-5")),
		"lost counts accepted readings no replica processed, tallied per meter so duplicates in the failover window cannot mask losses",
	)
	return t, nil
}
