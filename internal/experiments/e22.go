package experiments

import (
	"crypto/ed25519"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// e22Echo is the remote service: a trivial enclave component whose reply
// mirrors its request, so the experiment measures the transport, not the
// handler.
type e22Echo struct{}

func (e22Echo) CompName() string     { return "echo" }
func (e22Echo) CompVersion() string  { return "1.0" }
func (e22Echo) Init(*core.Ctx) error { return nil }
func (e22Echo) Handle(env core.Envelope) (core.Message, error) {
	return core.Message{Op: "ok", Data: env.Msg.Data}, nil
}

// e22Result is one depth's measurement: wire rounds consumed, wall-clock
// time and heap allocations of the call phase (handshake excluded), and
// the stub's accounting snapshot.
type e22Result struct {
	pumps   int64
	elapsed time.Duration
	mallocs uint64
	stats   distributed.StubStats
}

// e22Run drives `calls` echo requests through one stub at the given
// pipeline depth (concurrent callers, each issuing its share
// sequentially) and reports how many pump rounds — wire round trips — the
// workload consumed, plus the stub's accounting snapshot.
func e22Run(depth, calls int, rtt time.Duration) (e22Result, error) {
	return e22RunCfg(depth, calls, rtt, 0, nil)
}

// e22RunCfg is e22Run with the knobs E27 sweeps: coalesceMax is handed to
// the stub verbatim (0 = adaptive default, 1 = coalescing off, else the
// window ceiling), and when lat is non-nil it must hold `calls` slots —
// worker w stores its i-th call's latency at lat[w*(calls/depth)+i], so
// the slice is written race-free and p99 can be cut from it afterwards.
func e22RunCfg(depth, calls int, rtt time.Duration, coalesceMax int, lat []time.Duration) (res e22Result, err error) {
	vendor := cryptoutil.NewSigner("intel")
	net := netsim.New()

	sub, err := sgx.New(sgx.Config{DeviceSeed: "e22-cpu", Vendor: vendor})
	if err != nil {
		return res, err
	}
	sys := core.NewSystem(sub)
	if err := sys.Launch(e22Echo{}, true, 1); err != nil {
		return res, err
	}
	if err := sys.InitAll(); err != nil {
		return res, err
	}
	meas := cryptoutil.Hash(core.DomainImage(e22Echo{}))

	exp, err := distributed.NewExporter(distributed.ExportConfig{
		System:    sys,
		Component: "echo",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("e22-srv"),
	})
	if err != nil {
		return res, err
	}

	// The pump models the wire's round-trip time with a real sleep BEFORE
	// serving: while the token-holding caller waits out the RTT, the other
	// callers' sealed requests land in the exporter's inbox, so one serve
	// round drains the whole accumulated batch. Pipelining shows up as
	// fewer rounds for the same number of calls.
	var rounds atomic.Int64
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     "echo",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("laptop"),
		Rand:           cryptoutil.NewPRNG("e22-cli"),
		CoalesceMax:    coalesceMax,
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meas)
		},
		Pump: func() error {
			time.Sleep(rtt)
			rounds.Add(1)
			return exp.Serve()
		},
	})
	if err != nil {
		return res, err
	}
	if err := stub.Connect(); err != nil {
		return res, err
	}
	handshake := rounds.Load()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var wg sync.WaitGroup
	var failures atomic.Int64
	per := calls / depth
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := core.Message{Op: "echo", Data: []byte(fmt.Sprintf("w%d-%d", w, i))}
				callStart := time.Now()
				if _, err := stub.Handle(core.Envelope{Msg: req}); err != nil {
					failures.Add(1)
				}
				if lat != nil {
					lat[w*per+i] = time.Since(callStart)
				}
			}
		}(w)
	}
	wg.Wait()

	res.elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	res.mallocs = after.Mallocs - before.Mallocs

	if n := failures.Load(); n > 0 {
		return res, fmt.Errorf("E22: %d of %d calls failed at depth %d", n, calls, depth)
	}
	res.pumps = rounds.Load() - handshake
	res.stats = stub.Stats()
	return res, nil
}

// E22Pipelining measures what wire-v3 correlation IDs buy: with every
// request carrying a caller-chosen ID and one receiver demultiplexing
// replies to parked callers, a stub sustains many in-flight calls on one
// secure channel. Under a fixed simulated round-trip time, the cost of a
// workload is the number of wire rounds it needs; depth-d pipelining
// amortizes each round over up to d calls. The experiment sweeps the
// depth and verifies both the speedup and the exactly-once bookkeeping
// (issued = completed, nothing in flight, no orphaned replies) at every
// depth.
func E22Pipelining() (Table, error) {
	t := Table{
		ID:     "E22",
		Title:  "pipelined secure-channel RPC",
		Anchor: "§III-B trustworthy invocation across machines; latency of attested channels",
		Header: []string{"depth", "calls", "rounds", "calls/round", "allocs/op", "verdict"},
	}

	const calls = 64
	const rtt = time.Millisecond
	rounds := make(map[int]int64)
	for _, depth := range []int{1, 4, 16, 64} {
		r, err := e22Run(depth, calls, rtt)
		if err != nil {
			return t, err
		}
		st := r.stats
		rounds[depth] = r.pumps
		allocs := float64(r.mallocs) / float64(calls)
		balanced := st.Issued == st.Completed+st.Failed &&
			st.Failed == 0 && st.Inflight == 0 && st.Orphans == 0 &&
			allocs <= e22AllocCap(depth, calls)
		t.AddRow(depth, calls, r.pumps, float64(calls)/float64(r.pumps),
			fmt.Sprintf("%.2f", allocs), passFail(balanced))
	}

	// The headline claim: depth-16 pipelining needs at least 3x fewer
	// wire rounds than depth-1 for the same workload.
	speedup := float64(rounds[1]) / float64(rounds[16])
	t.AddRow("16 vs 1", calls, "-", "-", "-",
		passFail(speedup >= 3))
	t.Notes = append(t.Notes,
		fmt.Sprintf("round amortization at depth 16: %.1fx fewer wire rounds than depth 1", speedup),
		"rounds exclude the handshake; each round costs one simulated RTT",
	)
	return t, nil
}

// e22AllocCap bounds steady-state heap allocations per call at each
// pipeline depth — the regression gate for the demux hot path, where a
// stray per-ID waiter or job allocation shows up as +1 or more at every
// depth. Allocations are whole-process mallocs over the call phase, so
// per-batch fixed costs (driver goroutines, pump accounting) amortize
// over the call count: the short pipelining sweep (calls=64) gets looser
// caps than the checked-in calls=256 baseline, whose steady state runs
// about 2.3-5.2 allocs/op across the depth sweep.
func e22AllocCap(depth, calls int) float64 {
	caps := map[int]float64{1: 5, 4: 6, 16: 9, 64: 18}
	if calls >= 256 {
		caps = map[int]float64{1: 4.5, 4: 4.5, 16: 5.5, 64: 6}
	}
	if c, ok := caps[depth]; ok {
		return c
	}
	return 18
}

// E22Depth is one row of the checked-in BENCH_e22.json baseline: the wire
// economics and allocation cost of the depth sweep, for tracking the
// pipelining trajectory across changes.
type E22Depth struct {
	Depth         int     `json:"depth"`
	Calls         int     `json:"calls"`
	WireRounds    int64   `json:"wire_rounds"`
	CallsPerRound float64 `json:"calls_per_round"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// E22Baseline runs the E22 depth sweep and returns one baseline row per
// depth. `lateralbench -e22-json` writes the result to BENCH_e22.json;
// wire rounds and allocs/op are deterministic, ops/sec is wall-clock and
// machine-dependent (it is a trajectory, not a gate). Allocations are
// whole-process mallocs over the call phase divided by calls, so goroutine
// spawns and accounting noise show up as fractions — near-zero means the
// sealed-record hot path itself is allocation-free.
func E22Baseline() ([]E22Depth, error) {
	const calls = 256
	const rtt = time.Millisecond
	out := make([]E22Depth, 0, 4)
	for _, depth := range []int{1, 4, 16, 64} {
		r, err := e22Run(depth, calls, rtt)
		if err != nil {
			return nil, err
		}
		if a := float64(r.mallocs) / float64(calls); a > e22AllocCap(depth, calls) {
			return nil, fmt.Errorf("E22: %.2f allocs/op at depth %d exceeds regression cap %.2f",
				a, depth, e22AllocCap(depth, calls))
		}
		out = append(out, E22Depth{
			Depth:         depth,
			Calls:         calls,
			WireRounds:    r.pumps,
			CallsPerRound: float64(calls) / float64(r.pumps),
			OpsPerSec:     float64(calls) / r.elapsed.Seconds(),
			AllocsPerOp:   float64(r.mallocs) / float64(calls),
		})
	}
	return out, nil
}
