package experiments

import (
	"crypto/ed25519"
	"fmt"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/kernel"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
)

// e17Vault is the relocatable storage component of E17.
type e17Vault struct {
	doc []byte
}

func (v *e17Vault) CompName() string     { return "vault" }
func (v *e17Vault) CompVersion() string  { return "1.0" }
func (v *e17Vault) Init(*core.Ctx) error { return nil }

func (v *e17Vault) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "put":
		v.doc = append([]byte(nil), env.Msg.Data...)
		return core.Message{Op: "ok"}, nil
	case "get":
		return core.Message{Op: "doc", Data: v.doc}, nil
	default:
		return core.Message{}, core.ErrRefused
	}
}

// e17Client calls the vault through its granted channel, oblivious to
// whether the vault is local or an enclave across the network.
type e17Client struct {
	ctx *core.Ctx
}

func (c *e17Client) CompName() string         { return "client" }
func (c *e17Client) CompVersion() string      { return "1.0" }
func (c *e17Client) Init(ctx *core.Ctx) error { c.ctx = ctx; return nil }

func (c *e17Client) Handle(env core.Envelope) (core.Message, error) {
	return c.ctx.Call("vault", env.Msg)
}

// DistributedDemo is the laptop+cloud deployment of E17, exposed so
// tooling (lateralctl trace distributed) can instrument both systems and
// drive the client.
type DistributedDemo struct {
	// Laptop hosts the client and the vault stub.
	Laptop *core.System
	// Cloud hosts the real vault behind the attested exporter.
	Cloud *core.System
	// Stub is the laptop-side proxy; Connect before delivering.
	Stub *distributed.Stub
	// Wire records every datagram the adversary saw.
	Wire *netsim.Recorder
	// Net is the simulated network between the machines.
	Net *netsim.Network
}

// BuildDistributedDemo constructs the honest-cloud E17 deployment.
func BuildDistributedDemo() (*DistributedDemo, error) {
	laptop, cloud, stub, rec, net, err := e17Remote(false)
	if err != nil {
		return nil, err
	}
	return &DistributedDemo{Laptop: laptop, Cloud: cloud, Stub: stub, Wire: rec, Net: net}, nil
}

// e17Remote wires a client system to a cloud-hosted vault and returns both
// systems plus the wire recorder.
func e17Remote(tampered bool) (*core.System, *core.System, *distributed.Stub, *netsim.Recorder, *netsim.Network, error) {
	net := netsim.New()
	rec := &netsim.Recorder{}
	net.SetAdversary(rec)
	vendor := cryptoutil.NewSigner("intel")
	cloudCPU, err := sgx.New(sgx.Config{DeviceSeed: "e17-cloud", Vendor: vendor})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	cloud := core.NewSystem(cloudCPU)
	var remote core.Component = &e17Vault{}
	if tampered {
		remote = &e17TamperedVault{}
	}
	if err := cloud.Launch(remote, true, 1); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if err := cloud.InitAll(); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	exporter, err := distributed.NewExporter(distributed.ExportConfig{
		System:    cloud,
		Component: "vault",
		Endpoint:  net.Attach("cloud"),
		Identity:  cryptoutil.NewSigner("cloud-tls"),
		Rand:      cryptoutil.NewPRNG("e17-cloud"),
	})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	audited := cryptoutil.Hash(core.DomainImage(&e17Vault{}))
	stub, err := distributed.NewStub(distributed.StubConfig{
		RemoteName:     "vault",
		RemoteEndpoint: "cloud",
		Endpoint:       net.Attach("laptop"),
		Rand:           cryptoutil.NewPRNG("e17-laptop"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), audited)
		},
		Pump: exporter.Serve,
	})
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	laptop := core.NewSystem(kernel.New(kernel.Config{}))
	if err := laptop.Launch(&e17Client{}, false, 1); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if err := laptop.Launch(stub, false, 1); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if err := laptop.Grant(core.ChannelSpec{Name: "vault", From: "client", To: "vault", Badge: 1}); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if err := laptop.InitAll(); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	return laptop, cloud, stub, rec, net, nil
}

type e17TamperedVault struct{ e17Vault }

func (t *e17TamperedVault) CompVersion() string { return "1.0-evil" }

// E17Distributed validates the §III-D extension: "aggregates of
// individually reusable components that can even form distributed
// confidence domains across machine boundaries." The SAME client and the
// SAME vault run (a) colocated on one microkernel, (b) split across
// machines with the vault in a cloud enclave, and (c) against a tampered
// cloud build, which must be refused.
func E17Distributed() (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "distributed confidence domains",
		Anchor: "§III-D distributed aggregates; §II-B enclave-in-the-cloud",
		Header: []string{"deployment", "round-trip", "wire-leak", "verdict"},
	}
	secret := []byte("E17-ROUNDTRIP-DOC")

	// (a) Local: both components on one microkernel.
	local := core.NewSystem(kernel.New(kernel.Config{}))
	if err := local.Launch(&e17Client{}, false, 1); err != nil {
		return t, err
	}
	if err := local.Launch(&e17Vault{}, false, 1); err != nil {
		return t, err
	}
	if err := local.Grant(core.ChannelSpec{Name: "vault", From: "client", To: "vault", Badge: 1}); err != nil {
		return t, err
	}
	if err := local.InitAll(); err != nil {
		return t, err
	}
	if _, err := local.Deliver("client", core.Message{Op: "put", Data: secret}); err != nil {
		return t, err
	}
	reply, err := local.Deliver("client", core.Message{Op: "get"})
	ok := err == nil && string(reply.Data) == string(secret)
	t.AddRow("local (same microkernel)", boolCell(ok), "n/a", passFail(ok))

	// (b) Remote: vault in a cloud enclave, attested channel.
	laptop, _, stub, rec, _, err := e17Remote(false)
	if err != nil {
		return t, err
	}
	if err := stub.Connect(); err != nil {
		return t, err
	}
	if _, err := laptop.Deliver("client", core.Message{Op: "put", Data: secret}); err != nil {
		return t, err
	}
	reply, err = laptop.Deliver("client", core.Message{Op: "get"})
	ok = err == nil && string(reply.Data) == string(secret)
	leak := rec.Saw(secret)
	t.AddRow("remote (cloud SGX enclave)", boolCell(ok), boolCell(leak), passFail(ok && !leak))

	// (c) Tampered cloud build: connect must fail.
	_, _, stub2, _, _, err := e17Remote(true)
	if err != nil {
		return t, err
	}
	cerr := stub2.Connect()
	t.AddRow("remote, tampered vault build", "refused", "n/a", passFail(cerr != nil))
	t.Notes = append(t.Notes,
		fmt.Sprintf("client and vault code identical in all rows (%d-byte doc)", len(secret)))
	return t, nil
}
