package experiments

import (
	"fmt"
	"time"

	"lateral/internal/simtest"
)

// E21Simulation reproduces the paper's trustworthiness argument as a
// falsification engine: instead of measuring one scripted scenario, it
// explores randomly generated operation sequences against a fleet of
// attested replicas under every fault kind the wire adversary can mount
// (crash, one-way partition, congestion, tampering, clock skew,
// duplication), and checks four invariants after every step — handler
// serialization, deadline-budget monotonicity, quarantine absorption, and
// telemetry conservation. The whole stack runs on a virtual clock, so a
// seed is a complete, replayable universe: the experiment re-runs one seed
// and asserts the event traces are byte-identical.
func E21Simulation() (Table, error) {
	t := Table{
		ID:     "E21",
		Title:  "deterministic fleet simulation",
		Anchor: "§III-B trustworthy invocation; attestation-gated fleet membership",
		Header: []string{"scenario", "seeds", "ops", "faults", "violations", "verdict"},
	}

	// Round 1: random exploration across a batch of seeds, fault-free.
	const seeds, ops = 8, 24
	totalOps, totalViol := 0, 0
	for s := 1; s <= seeds; s++ {
		res, err := simtest.Explore(simtest.ExploreConfig{Seed: uint64(s), Ops: ops, Replicas: 3})
		if err != nil {
			return t, err
		}
		totalOps += res.Ops
		totalViol += len(res.Violations)
	}
	t.AddRow("random ops, no faults", seeds, totalOps, 0, totalViol, passFail(totalViol == 0))

	// Round 2: the mixed-fault schedule — every fault kind composed over
	// the same seeds. All invariants must still hold.
	sched := simtest.DefaultSchedule(3)
	totalOps, totalViol, totalFaults := 0, 0, 0
	for s := 1; s <= seeds; s++ {
		res, err := simtest.Explore(simtest.ExploreConfig{Seed: uint64(s), Ops: ops, Replicas: 3, Schedule: sched})
		if err != nil {
			return t, err
		}
		totalOps += res.Ops
		totalViol += len(res.Violations)
		totalFaults += res.Faults
	}
	t.AddRow("mixed-fault schedule", seeds, totalOps, totalFaults, totalViol, passFail(totalViol == 0))

	// Round 3: seed replay. The same seed and schedule must reproduce a
	// byte-identical event trace — the property that makes every failure
	// in rounds 1 and 2 debuggable.
	cfg := simtest.ExploreConfig{Seed: 42, Ops: ops, Replicas: 3, Schedule: sched}
	a, err := simtest.Explore(cfg)
	if err != nil {
		return t, err
	}
	b, err := simtest.Explore(cfg)
	if err != nil {
		return t, err
	}
	identical := a.TraceBytes() == b.TraceBytes()
	t.AddRow("seed replay byte-identical", 1, a.Ops, a.Faults, len(a.Violations),
		passFail(identical && !a.Failed()))

	// Round 4: quarantine is absorbing. Tamper with one replica's wire
	// traffic, let the pool quarantine it, heal the wire, and verify the
	// replica never re-enters service — attestation failures are
	// unforgivable by design.
	res, err := simtest.Explore(simtest.ExploreConfig{
		Seed: 7, Ops: ops, Replicas: 3,
		Schedule: []simtest.Schedule{
			{At: 0, Fault: simtest.Fault{Kind: simtest.FaultTamper, Target: simtest.ReplicaName(1)}},
			{At: 2 * time.Millisecond, Fault: simtest.Fault{Kind: simtest.FaultHeal, Target: simtest.ReplicaName(1)}},
			{At: 4 * time.Millisecond, Fault: simtest.Fault{Kind: simtest.FaultTamper}},
		},
	})
	if err != nil {
		return t, err
	}
	t.AddRow("tamper -> quarantine absorbing", 1, res.Ops, res.Faults, len(res.Violations),
		passFail(!res.Failed()))

	t.Notes = append(t.Notes,
		fmt.Sprintf("invariants checked after every step: %d per run", 5),
		"replay any failure with: go test ./internal/simtest/ -run TestExploreSeeds -simtest.seed=<seed>",
	)
	return t, nil
}
