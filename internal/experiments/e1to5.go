package experiments

import (
	"fmt"
	"strings"
	"time"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/kernel"
	"lateral/internal/mail"
	"lateral/internal/meter"
	"lateral/internal/metrics"
	"lateral/internal/netsim"
	"lateral/internal/telemetry"
)

// E1Containment reproduces Figure 1 quantitatively: the same mail client
// is deployed vertically (one protection domain), horizontally with a
// POLA manifest, and horizontally with a sloppy full-mesh manifest (the A1
// ablation). For every component, an exploit is injected and the fraction
// of the application's five secret assets that reach the adversary is
// scored. Paper claim: "a subversion of one component can often be
// contained and does not infect other components."
func E1Containment() (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "asset leakage per compromised component",
		Anchor: "Fig. 1; §I containment claim; A1 manifest ablation",
		Header: []string{"compromised", "vertical", "horizontal-broad", "horizontal-pola"},
	}
	builds := map[string]attack.BuildFunc{
		"vertical": func() (*core.System, map[string][]byte, error) {
			return mail.Build(core.NewMonolith(0), mail.VerticalManifest())
		},
		"horizontal-broad": func() (*core.System, map[string][]byte, error) {
			return mail.Build(kernel.New(kernel.Config{}), mail.BroadManifest())
		},
		"horizontal-pola": func() (*core.System, map[string][]byte, error) {
			return mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
		},
	}
	targets := mail.ComponentNames()
	results := make(map[string][]attack.ContainmentResult)
	for arch, build := range builds {
		rs, err := attack.ContainmentSweep(build, targets)
		if err != nil {
			return t, fmt.Errorf("E1 %s: %w", arch, err)
		}
		results[arch] = rs
	}
	for i, target := range targets {
		t.AddRow(target,
			fmt.Sprintf("%.2f", results["vertical"][i].LeakFraction()),
			fmt.Sprintf("%.2f", results["horizontal-broad"][i].LeakFraction()),
			fmt.Sprintf("%.2f", results["horizontal-pola"][i].LeakFraction()))
	}
	t.AddRow("MEAN",
		fmt.Sprintf("%.2f", attack.MeanLeakFraction(results["vertical"])),
		fmt.Sprintf("%.2f", attack.MeanLeakFraction(results["horizontal-broad"])),
		fmt.Sprintf("%.2f", attack.MeanLeakFraction(results["horizontal-pola"])))
	t.Notes = append(t.Notes,
		"leak fraction = assets visible to the adversary / 5 application assets",
		"broad = isolated domains but full-mesh channels: walls without POLA")
	return t, nil
}

// MeanLeak recomputes E1's three mean leak fractions for assertions.
func MeanLeak() (vertical, broad, pola float64, err error) {
	t, err := E1Containment()
	if err != nil {
		return 0, 0, 0, err
	}
	last := t.Rows[len(t.Rows)-1]
	_, err = fmt.Sscanf(last[1]+" "+last[2]+" "+last[3], "%f %f %f", &vertical, &broad, &pola)
	return vertical, broad, pola, err
}

// probeKeeper is the portable trusted component of E2: it stores a secret
// asset and serves badge-identified clients, using only core interfaces.
type probeKeeper struct {
	ctx *core.Ctx
}

func (p *probeKeeper) CompName() string    { return "keeper" }
func (p *probeKeeper) CompVersion() string { return "1.0" }

func (p *probeKeeper) Init(ctx *core.Ctx) error {
	p.ctx = ctx
	return ctx.StoreAsset("secret", []byte("PORTABLE-SECRET"))
}

func (p *probeKeeper) Handle(env core.Envelope) (core.Message, error) {
	if env.Badge == 0 {
		return core.Message{}, core.ErrRefused
	}
	v, err := p.ctx.LoadAsset("secret")
	if err != nil {
		return core.Message{}, err
	}
	return core.Message{Op: "ok", Data: v}, nil
}

// probeCaller is the portable legacy-side client.
type probeCaller struct {
	ctx *core.Ctx
}

func (p *probeCaller) CompName() string         { return "caller" }
func (p *probeCaller) CompVersion() string      { return "1.0" }
func (p *probeCaller) Init(ctx *core.Ctx) error { p.ctx = ctx; return nil }

func (p *probeCaller) Handle(env core.Envelope) (core.Message, error) {
	return p.ctx.Call("keeper", env.Msg)
}

// runProbe loads the probe pair on a substrate and exercises invocation,
// asset storage, and (where available) attestation.
func runProbe(subName string) (invokeOK, assetOK, quoteOK bool, props core.Properties, err error) {
	sub, err := NewSubstrate(subName)
	if err != nil {
		return false, false, false, core.Properties{}, err
	}
	props = sub.Properties()
	sys := core.NewSystem(sub)
	keeper := &probeKeeper{}
	if err := sys.Launch(keeper, true, 1); err != nil {
		return false, false, false, props, err
	}
	if err := sys.Launch(&probeCaller{}, false, 1); err != nil {
		return false, false, false, props, err
	}
	if err := sys.Grant(core.ChannelSpec{Name: "keeper", From: "caller", To: "keeper", Badge: 1}); err != nil {
		return false, false, false, props, err
	}
	if err := sys.InitAll(); err != nil {
		return false, false, false, props, err
	}
	reply, err := sys.Deliver("caller", core.Message{Op: "get"})
	invokeOK = err == nil && string(reply.Data) == "PORTABLE-SECRET"
	assetOK = invokeOK
	if anchor := sub.Anchor(); anchor != nil {
		ctx, cerr := sys.CtxOf("keeper")
		if cerr == nil {
			_, qerr := ctx.Quote([]byte("e2-nonce"))
			quoteOK = qerr == nil
		}
	}
	return invokeOK, assetOK, quoteOK, props, nil
}

// E2Portability reproduces Figure 2 / §III-A: "software components should
// be developed once against the common pattern and then should run on any
// isolation implementation." The SAME component implementations are loaded
// onto all six substrates; the table doubles as the §II property matrix.
func E2Portability() (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "one component, every substrate + property matrix",
		Anchor: "Fig. 2; §III-A unified interface",
		Header: []string{"substrate", "runs", "spatial", "temporal", "phys-mem", "launch", "attest", "quote", "conc-trusted", "invoke-ns", "tcb-units"},
	}
	for _, name := range SubstrateNames() {
		invokeOK, _, quoteOK, props, err := runProbe(name)
		if err != nil {
			return t, fmt.Errorf("E2 %s: %w", name, err)
		}
		quoteCell := boolCell(quoteOK)
		if !props.Attestation {
			quoteCell = "n/a"
		}
		t.AddRow(name, passFail(invokeOK),
			boolCell(props.SpatialIsolation), boolCell(props.TemporalIsolation),
			boolCell(props.PhysicalMemoryProtection), boolCell(props.SecureLaunch),
			boolCell(props.Attestation), quoteCell,
			boolCell(props.ConcurrentTrusted), props.InvokeCostNs, props.TCBUnits)
	}
	t.Notes = append(t.Notes,
		"identical probe components (no substrate imports) ran on every row")
	return t, nil
}

// E3SmartMeter reproduces Figure 3 end to end across five scenarios.
func E3SmartMeter() (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "smart meter appliance ↔ utility server",
		Anchor: "Fig. 3; §III-C smart meter example",
		Header: []string{"scenario", "expected", "observed", "verdict"},
	}
	// Genuine deployment: readings flow, billing adds up, database holds
	// no identity.
	d, err := meter.Deploy(meter.Options{CustomerID: "customer-E3-PRIVATE"})
	if err != nil {
		return t, err
	}
	genuine := d.Connect() == nil &&
		d.SendReading(10) == nil && d.SendReading(5) == nil
	total := 0
	if genuine {
		total, _ = d.BillingTotal()
	}
	t.AddRow("genuine meter + audited anonymizer", "accepted, billed 15",
		fmt.Sprintf("connected=%v billed=%d", genuine, total), passFail(genuine && total == 15))

	dump, _ := d.DatabaseContents()
	anon := genuine && !contains(dump, "customer-E3-PRIVATE") && contains(dump, "aggregate-total:")
	t.AddRow("operator inspects database", "aggregates only, no identity",
		fmt.Sprintf("identity-visible=%v", contains(dump, "customer-E3-PRIVATE")), passFail(anon))

	// Tampered anonymizer refused by the meter.
	d2, err := meter.Deploy(meter.Options{TamperAnonymizer: true})
	if err != nil {
		return t, err
	}
	err2 := d2.Connect()
	t.AddRow("tampered anonymizer build", "meter refuses connection",
		fmt.Sprintf("connect-err=%v", err2 != nil), passFail(err2 != nil))

	// Emulated meter refused by the utility.
	d3, err := meter.Deploy(meter.Options{EmulateMeter: true})
	if err != nil {
		return t, err
	}
	err3 := d3.Connect()
	t.AddRow("software meter emulation", "utility refuses connection",
		fmt.Sprintf("connect-err=%v", err3 != nil), passFail(err3 != nil))

	// Eavesdropper on the wire.
	rec := &netsim.Recorder{}
	d4, err := meter.Deploy(meter.Options{CustomerID: "customer-E3-WIRE", WireAdversary: rec})
	if err != nil {
		return t, err
	}
	wireOK := d4.Connect() == nil && d4.SendReading(777) == nil &&
		!rec.Saw([]byte("customer-E3-WIRE")) && !rec.Saw([]byte("777"))
	t.AddRow("wire eavesdropper", "sees neither identity nor readings",
		fmt.Sprintf("leak=%v", !wireOK), passFail(wireOK))

	// Compromised Android cannot read meter identity.
	d5, err := meter.Deploy(meter.Options{CustomerID: "customer-E3-TZ"})
	if err != nil {
		return t, err
	}
	adv := attack.New()
	d5.Appliance.SetObserver(adv)
	if err := d5.Appliance.Compromise("android"); err != nil {
		return t, err
	}
	_, _ = d5.Appliance.Deliver("android", core.Message{Op: "x"})
	tzOK := !adv.Saw([]byte("customer-E3-TZ"))
	t.AddRow("compromised Android on appliance", "meter identity stays in secure world",
		fmt.Sprintf("leak=%v", !tzOK), passFail(tzOK))
	return t, nil
}

// E4Invocation measures what decomposition costs: per-substrate modeled
// and simulated invocation latency, plus the whole mail-fetch flow's
// budget (6 cross-domain calls) on each substrate. Paper anchor: §III-E
// "the decomposition mentality itself can also complicate software
// development" — the cost side of the trade the paper argues is worth it.
func E4Invocation() (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "cross-domain invocation cost",
		Anchor: "§III-E decomposition cost; §II-B mechanism costs",
		Header: []string{"substrate", "modeled-ns/call", "sim-ns/call", "fetchmail-calls", "fetchmail-modeled-us", "sim-p50-ns", "sim-p99-ns"},
	}
	for _, name := range SubstrateNames() {
		sub, err := NewSubstrate(name)
		if err != nil {
			return t, err
		}
		sys := core.NewSystem(sub)
		if err := sys.Launch(&probeKeeper{}, true, 1); err != nil {
			return t, fmt.Errorf("E4 %s: %w", name, err)
		}
		if err := sys.Launch(&probeCaller{}, false, 1); err != nil {
			return t, err
		}
		if err := sys.Grant(core.ChannelSpec{Name: "keeper", From: "caller", To: "keeper", Badge: 1}); err != nil {
			return t, err
		}
		if err := sys.InitAll(); err != nil {
			return t, err
		}
		const iters = 2000
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sys.Deliver("caller", core.Message{Op: "get"}); err != nil {
				return t, err
			}
		}
		simNs := time.Since(start).Nanoseconds() / (2 * iters) // 2 calls per iter

		// Percentiles: re-run the micro loop with telemetry installed and
		// read the caller→keeper latency distribution off the histogram.
		// Separate from the untraced loop above so tracing overhead never
		// pollutes the sim-ns/call figure.
		met := telemetry.NewMetrics()
		sys.SetTracer(met)
		for i := 0; i < iters; i++ {
			if _, err := sys.Deliver("caller", core.Message{Op: "get"}); err != nil {
				return t, err
			}
		}
		sys.SetTracer(nil)
		var p50, p99 int64
		for _, c := range met.Channels() {
			if c.From == "caller" && c.Channel == "keeper" {
				p50, p99 = c.P50.Nanoseconds(), c.P99.Nanoseconds()
			}
		}

		// Macro: the mail-fetch flow on a fresh substrate of this kind.
		sub2, err := NewSubstrate(name)
		if err != nil {
			return t, err
		}
		msys, _, err := mail.Build(sub2, mail.HorizontalManifest())
		if err != nil {
			return t, fmt.Errorf("E4 mail on %s: %w", name, err)
		}
		msys.ResetStats()
		if _, err := mail.FetchMail(msys); err != nil {
			return t, err
		}
		st := msys.Stats()
		t.AddRow(name, sub.Properties().InvokeCostNs, simNs,
			st.Invocations, fmt.Sprintf("%.1f", float64(st.VirtualNs)/1000), p50, p99)
	}
	t.Notes = append(t.Notes,
		"modeled = published order of magnitude for the mechanism; sim = this simulator's Go overhead",
		"fetchmail = ui→net→tls→parser→render→store end-to-end flow",
		"sim-p50/p99 = caller→keeper channel latency percentiles from the telemetry histogram (traced run)")
	return t, nil
}

// E5TCB reproduces the paper's TCB-size arguments (§II-B microkernel
// verification, §III-D "tens of thousands of lines"): per-component TCB in
// kLoC units, vertical (commodity-OS monolith) vs horizontal (microkernel).
func E5TCB() (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "per-component TCB size (kLoC units)",
		Anchor: "§II-B seL4 verification; §II-C SGX microcode; §III-D complexity",
		Header: []string{"component", "vertical-tcb", "horizontal-tcb", "reduction"},
	}
	units := make(map[string]int, len(metrics.DefaultUnits))
	for k, v := range metrics.DefaultUnits {
		units[k] = v
	}
	units["abook"] = metrics.DefaultUnits["addressbook"]

	vsys, _, err := mail.Build(core.NewMonolith(0), mail.VerticalManifest())
	if err != nil {
		return t, err
	}
	hsys, _, err := mail.Build(kernel.New(kernel.Config{}), mail.HorizontalManifest())
	if err != nil {
		return t, err
	}
	vr, err := metrics.TCBReport(vsys, units)
	if err != nil {
		return t, err
	}
	hr, err := metrics.TCBReport(hsys, units)
	if err != nil {
		return t, err
	}
	hIdx := make(map[string]metrics.Report, len(hr))
	for _, r := range hr {
		hIdx[r.Component] = r
	}
	for _, v := range vr {
		h := hIdx[v.Component]
		t.AddRow(v.Component, v.Total(), h.Total(),
			fmt.Sprintf("%.0fx", float64(v.Total())/float64(h.Total())))
	}
	vs, hs := metrics.Summarize(vr), metrics.Summarize(hr)
	t.AddRow("MEAN", fmt.Sprintf("%.0f", vs.MeanTCB), fmt.Sprintf("%.0f", hs.MeanTCB),
		fmt.Sprintf("%.0fx", vs.MeanTCB/hs.MeanTCB))
	t.Notes = append(t.Notes,
		"vertical = colocated app on a commodity OS (20000 kLoC substrate)",
		"horizontal = per-component domains on a verified microkernel (10 kLoC substrate)")
	return t, nil
}

func contains(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
