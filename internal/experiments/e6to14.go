package experiments

import (
	"errors"
	"fmt"

	"lateral/internal/attack"
	"lateral/internal/attest"
	"lateral/internal/cap"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/gui"
	"lateral/internal/hw"
	"lateral/internal/kernel"
	"lateral/internal/legacy"
	"lateral/internal/meter"
	"lateral/internal/tpm"
	"lateral/internal/vpfs"
)

// E6Covert reproduces §II-C: "Using time partitioning and scheduler
// interference analysis, microkernels provide strong temporal isolation by
// mitigating covert channels." A sender modulates CPU demand; a receiver
// decodes from its own throughput. The A2 ablation (partitioning off) is
// the first row. The SGX row demonstrates the §II-C counterpoint — "even
// high-profile security technologies such as SGX suffer from ... cache
// side-channel attacks" — via the access-trace channel.
func E6Covert() (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "covert/side channel bandwidth",
		Anchor: "§II-C temporal isolation; A2 partitioning ablation",
		Header: []string{"configuration", "channel", "bits-sent", "decoded-correct", "accuracy", "bits/frame"},
	}
	bits := make([]bool, 128)
	for i := range bits {
		bits[i] = (i*i+i/3)%2 == 0
	}
	for _, policy := range []kernel.Policy{kernel.BestEffort, kernel.TimePartitioned} {
		res, err := kernel.MeasureCovertChannel(policy, 100, bits)
		if err != nil {
			return t, err
		}
		t.AddRow("microkernel/"+policy.String(), "scheduler timing",
			len(bits), res.CorrectBits,
			fmt.Sprintf("%.2f", res.Accuracy()), fmt.Sprintf("%.2f", res.BitsPerFrame))
	}
	// SGX cache side channel: secret-dependent access pattern, decoded
	// perfectly from the access trace despite memory encryption.
	sub, err := NewSubstrate("sgx")
	if err != nil {
		return t, err
	}
	d, err := sub.CreateDomain(core.DomainSpec{Name: "leaky", Code: []byte("l"), Trusted: true, MemPages: 2})
	if err != nil {
		return t, err
	}
	type tracer interface {
		AccessTrace() []int
		ClearTrace()
	}
	enc, ok := d.(tracer)
	if !ok {
		return t, fmt.Errorf("E6: sgx handle lacks access trace")
	}
	enc.ClearTrace()
	for _, b := range bits {
		off := 0
		if b {
			off = 16 * 64
		}
		if _, err := d.Read(off, 1); err != nil {
			return t, err
		}
	}
	correct := 0
	for i, line := range enc.AccessTrace() {
		if (line == 16) == bits[i] {
			correct++
		}
	}
	t.AddRow("sgx/cache-trace", "access pattern", len(bits), correct,
		fmt.Sprintf("%.2f", float64(correct)/float64(len(bits))), "1.00")
	t.Notes = append(t.Notes,
		"time partitioning closes the scheduler channel; SGX's MEE does not close access-pattern channels")
	return t, nil
}

// E7VPFS reproduces §III-D's trusted-wrapper claims: the legacy stack
// "never handles plaintext data" and the wrapper "guarantees
// confidentiality and integrity of all file system data and metadata".
// Rows cover each storage attack against raw legacy FS, VPFS mac-only (A4
// ablation), and VPFS full.
func E7VPFS() (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "storage attacks vs trusted wrapper",
		Anchor: "§III-D VPFS; A4 freshness ablation",
		Header: []string{"attack", "legacy-fs", "vpfs-mac-only", "vpfs-full"},
	}
	type outcome string
	const (
		undetected outcome = "UNDETECTED"
		detected   outcome = "detected"
		immune     outcome = "immune"
	)
	newSetup := func(mode vpfs.Mode) (*vpfs.VPFS, *legacy.FS, error) {
		dev := hw.NewBlockDevice("e7", 256)
		fs, err := legacy.Format(dev)
		if err != nil {
			return nil, nil, err
		}
		if mode == 0 {
			return nil, fs, nil
		}
		v, err := vpfs.New(fs, cryptoutil.KeyFromSeed("e7"), mode)
		return v, fs, err
	}

	// Attack 1: plaintext disclosure by reading the raw device.
	disclose := func(mode vpfs.Mode) (outcome, error) {
		v, fs, err := newSetup(mode)
		if err != nil {
			return "", err
		}
		secret := []byte("E7-DISCLOSURE-SECRET")
		if v == nil {
			err = fs.WriteFile("f", secret)
		} else {
			err = v.WriteFile("f", secret)
		}
		if err != nil {
			return "", err
		}
		for i := 0; i < fs.Device().NumSectors(); i++ {
			sec, _ := fs.Device().ReadSector(i)
			if containsBytes(sec, secret) {
				return undetected, nil
			}
		}
		return immune, nil
	}

	// Attack 2: data tampering on the device.
	tamper := func(mode vpfs.Mode) (outcome, error) {
		v, fs, err := newSetup(mode)
		if err != nil {
			return "", err
		}
		if v == nil {
			if err := fs.WriteFile("f", []byte("balance=100")); err != nil {
				return "", err
			}
			if err := fs.TamperFileData("f"); err != nil {
				return "", err
			}
			if _, err := fs.ReadFile("f"); err != nil {
				return detected, nil
			}
			return undetected, nil
		}
		if err := v.WriteFile("f", []byte("balance=100")); err != nil {
			return "", err
		}
		if err := fs.TamperFileData("f"); err != nil {
			return "", err
		}
		if _, err := v.ReadFile("f"); errors.Is(err, vpfs.ErrIntegrity) {
			return detected, nil
		}
		return undetected, nil
	}

	// Attack 3: rollback to a stale snapshot.
	rollback := func(mode vpfs.Mode) (outcome, error) {
		v, fs, err := newSetup(mode)
		if err != nil {
			return "", err
		}
		write := func(data []byte) error {
			if v == nil {
				return fs.WriteFile("f", data)
			}
			return v.WriteFile("f", data)
		}
		if err := write([]byte("v1")); err != nil {
			return "", err
		}
		snap := fs.Device().Snapshot()
		if err := write([]byte("v2")); err != nil {
			return "", err
		}
		if err := fs.Device().RestoreSnapshot(snap); err != nil {
			return "", err
		}
		if v == nil {
			if _, err := fs.ReadFile("f"); err != nil {
				return detected, nil
			}
			return undetected, nil
		}
		if _, err := v.ReadFile("f"); errors.Is(err, vpfs.ErrRollback) {
			return detected, nil
		}
		return undetected, nil
	}

	attacks := []struct {
		name string
		run  func(vpfs.Mode) (outcome, error)
	}{
		{"plaintext disclosure", disclose},
		{"data tampering", tamper},
		{"rollback replay", rollback},
	}
	for _, a := range attacks {
		raw, err := a.run(0)
		if err != nil {
			return t, fmt.Errorf("E7 %s legacy: %w", a.name, err)
		}
		mac, err := a.run(vpfs.ModeMACOnly)
		if err != nil {
			return t, fmt.Errorf("E7 %s mac: %w", a.name, err)
		}
		full, err := a.run(vpfs.ModeFull)
		if err != nil {
			return t, fmt.Errorf("E7 %s full: %w", a.name, err)
		}
		t.AddRow(a.name, string(raw), string(mac), string(full))
	}
	t.Notes = append(t.Notes,
		"UNDETECTED = attack succeeds silently; detected = read fails loudly; immune = nothing to find")
	return t, nil
}

// E8 fixture: a document store serving two clients. The capability deputy
// resolves the session from the kernel-stamped badge; the ambient deputy
// believes the identity claim inside the payload.
type deputyComp struct {
	useBadges bool
	sessions  *cap.SessionTable[string]
	docs      map[string]string
}

func (d *deputyComp) CompName() string    { return "deputy" }
func (d *deputyComp) CompVersion() string { return "1.0" }

func (d *deputyComp) Init(*core.Ctx) error {
	d.sessions = cap.NewSessionTable[string]()
	d.sessions.Register(101, "alice")
	d.sessions.Register(102, "mallory")
	d.docs = map[string]string{
		"alice":   "ALICE-TAX-RETURN",
		"mallory": "MALLORY-NOTES",
	}
	return nil
}

func (d *deputyComp) Handle(env core.Envelope) (core.Message, error) {
	var owner string
	if d.useBadges {
		s, err := d.sessions.ForBadge(env.Badge)
		if err != nil {
			return core.Message{}, err
		}
		owner = s
	} else {
		// Ambient authority: trust whatever the payload claims.
		owner = string(env.Msg.Data)
	}
	doc, ok := d.docs[owner]
	if !ok {
		return core.Message{}, core.ErrRefused
	}
	return core.Message{Op: "doc", Data: []byte(doc)}, nil
}

type deputyClient struct {
	name  string
	claim string // identity to claim in the payload
	ctx   *core.Ctx
}

func (c *deputyClient) CompName() string         { return c.name }
func (c *deputyClient) CompVersion() string      { return "1.0" }
func (c *deputyClient) Init(ctx *core.Ctx) error { c.ctx = ctx; return nil }

func (c *deputyClient) Handle(env core.Envelope) (core.Message, error) {
	return c.ctx.Call("deputy", core.Message{Op: "read", Data: []byte(c.claim)})
}

// E8Deputy reproduces §III-D: "capabilities bundle communication right and
// context identification in one entity and are therefore an important
// programming tool to prevent confused deputy issues." Mallory asks the
// shared document deputy for Alice's file, claiming to be Alice. The A3
// ablation is the ambient row.
func E8Deputy() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "confused deputy: ambient authority vs capabilities",
		Anchor: "§III-D confused deputy; A3 capability ablation",
		Header: []string{"deputy-mode", "alice-reads-own", "mallory-steals-alice", "verdict"},
	}
	run := func(useBadges bool) (aliceOK, malloryStole bool, err error) {
		sys := core.NewSystem(kernel.New(kernel.Config{}))
		dep := &deputyComp{useBadges: useBadges}
		alice := &deputyClient{name: "alice", claim: "alice"}
		mallory := &deputyClient{name: "mallory", claim: "alice"} // forged claim
		for _, c := range []core.Component{dep, alice, mallory} {
			if err := sys.Launch(c, false, 1); err != nil {
				return false, false, err
			}
		}
		var aliceBadge, malloryBadge uint64
		if useBadges {
			aliceBadge, malloryBadge = 101, 102
		}
		if err := sys.Grant(core.ChannelSpec{Name: "deputy", From: "alice", To: "deputy", Badge: aliceBadge}); err != nil {
			return false, false, err
		}
		if err := sys.Grant(core.ChannelSpec{Name: "deputy", From: "mallory", To: "deputy", Badge: malloryBadge}); err != nil {
			return false, false, err
		}
		if err := sys.InitAll(); err != nil {
			return false, false, err
		}
		ar, aerr := sys.Deliver("alice", core.Message{Op: "go"})
		aliceOK = aerr == nil && string(ar.Data) == "ALICE-TAX-RETURN"
		mr, merr := sys.Deliver("mallory", core.Message{Op: "go"})
		malloryStole = merr == nil && string(mr.Data) == "ALICE-TAX-RETURN"
		return aliceOK, malloryStole, nil
	}
	for _, mode := range []struct {
		name      string
		useBadges bool
	}{{"ambient (A3 off)", false}, {"capability badges", true}} {
		aliceOK, stole, err := run(mode.useBadges)
		if err != nil {
			return t, err
		}
		verdict := passFail(aliceOK && !stole)
		if !mode.useBadges {
			// The ambient row is EXPECTED to be exploitable.
			verdict = "exploitable (as predicted)"
			if !stole {
				verdict = "FAIL (attack should work)"
			}
		}
		t.AddRow(mode.name, boolCell(aliceOK), boolCell(stole), verdict)
	}
	return t, nil
}

// E9Phishing reproduces §III-C: "the system is resilient against phishing
// attacks, which are based on tricking the user into divulging credentials
// to the wrong party."
func E9Phishing() (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "phishing campaign: password vs hardware-key auth",
		Anchor: "§III-C password-less authentication",
		Header: []string{"auth-scheme", "users", "lured", "accounts-compromised"},
	}
	for _, hwAuth := range []bool{false, true} {
		res, err := meter.PhishingCampaign(100, 0.35, hwAuth, "e9")
		if err != nil {
			return t, err
		}
		name := "password"
		if hwAuth {
			name = "hardware-key"
		}
		t.AddRow(name, res.Users, res.Lured, res.Compromised)
	}
	return t, nil
}

// E10Gateway reproduces §III-C: the gateway "can reliably enforce domain
// whitelists and bandwidth policies to prevent the smart meter appliance
// from participating in distributed denial-of-service attacks".
func E10Gateway() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "compromised appliance floods an Internet victim",
		Anchor: "§III-C gateway component",
		Header: []string{"gateway", "flood-packets", "reached-victim", "reached-utility"},
	}
	for _, on := range []bool{false, true} {
		res := meter.Flood(1000, 10, on)
		t.AddRow(boolCell(on), res.Attempted, res.DeliveredVictim, res.DeliveredUtility)
	}
	t.Notes = append(t.Notes,
		"whitelist stops victim-bound junk entirely; the token bucket also caps utility-bound egress")
	return t, nil
}

// E11Boot reproduces §II-D's launch policies: secure boot refuses modified
// code; authenticated boot runs it but the TPM log tells the truth, and a
// doctored log fails quote verification.
func E11Boot() (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "launch policies under boot-chain tampering",
		Anchor: "§II-D secure launch",
		Header: []string{"boot chain", "secure-boot", "auth-boot runs", "auth-boot verifiable"},
	}
	vendor := cryptoutil.NewSigner("platform-vendor")
	mfr := cryptoutil.NewSigner("tpm-mfr")
	goodChain := []attest.Stage{
		attest.SignStage(vendor, "bootloader", []byte("bl-1.0")),
		attest.SignStage(vendor, "kernel", []byte("krn-5.4")),
	}
	evilChain := []attest.Stage{
		goodChain[0],
		{Name: "kernel", Code: []byte("krn-5.4-ROOTKIT")},
	}
	for _, tc := range []struct {
		name  string
		chain []attest.Stage
		lie   bool // verifier is shown a doctored log
	}{
		{"vendor-signed", goodChain, false},
		{"modified kernel", evilChain, false},
		{"modified kernel + doctored log", evilChain, true},
	} {
		_, sbErr := attest.SecureBoot(vendor.Public(), tc.chain)
		sbCell := "boots"
		if sbErr != nil {
			sbCell = "REFUSED"
		}
		tp := tpm.New("e11", mfr)
		log, err := attest.AuthenticatedBoot(tp, 0, tc.chain)
		if err != nil {
			return t, err
		}
		if tc.lie {
			log.Entries[1].Measurement = goodChain[1].Measurement()
		}
		nonce := []byte("e11")
		q, err := tp.Quote([]int{0}, nonce)
		if err != nil {
			return t, err
		}
		verifiable := attest.VerifyBootLog(q, nonce, mfr.Public(), log) == nil
		t.AddRow(tc.name, sbCell, "always", boolCell(verifiable))
	}
	t.Notes = append(t.Notes,
		"authenticated boot preserves the freedom to run anything; lying about it is what fails")
	return t, nil
}

// E12BusTap reproduces §II-D "physical exposure of data": a probe on the
// DRAM bus records all traffic; what it learns depends on the substrate's
// memory protection. The trustzone-scratchpad row is the paper's "software
// implementation of such memory encryption is conceivable" design.
func E12BusTap() (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "DRAM bus probe vs trusted-domain secrets",
		Anchor: "§II-D physical exposure of data",
		Header: []string{"substrate", "phys-mem-protection", "secret-on-bus", "tamper-detected", "verdict"},
	}
	secret := []byte("E12-PHYSICAL-ATTACK-TARGET")
	for _, name := range []string{"microkernel", "trustzone", "trustzone-scratchpad", "sgx", "sep"} {
		sub, err := NewSubstrate(name)
		if err != nil {
			return t, err
		}
		adv := attack.New()
		type hasMachine interface{ Machine() *hw.Machine }
		hm, ok := sub.(hasMachine)
		if !ok {
			return t, fmt.Errorf("E12: %s exposes no machine", name)
		}
		mem := hm.Machine().Mem
		mem.AttachTap(adv.BusTap())
		type hasSEPMem interface{ SEPMemory() *hw.Memory }
		if sm, ok := sub.(hasSEPMem); ok {
			mem = sm.SEPMemory() // trusted domains live here on the SEP
			mem.AttachTap(adv.BusTap())
		}
		d, err := sub.CreateDomain(core.DomainSpec{Name: "t", Code: []byte("t"), Trusted: true})
		if err != nil {
			return t, err
		}
		if err := d.Write(0, secret); err != nil {
			return t, err
		}
		if _, err := d.Read(0, len(secret)); err != nil {
			return t, err
		}
		leaked := adv.Saw(secret)
		props := sub.Properties()

		// Active physical tampering: flip a raw byte inside the trusted
		// domain's storage and read it back. Hardware MEEs (SGX, SEP)
		// detect it; confidentiality-only schemes read garbage silently.
		tamperCell := "n/a"
		if props.PhysicalMemoryProtection {
			// The trusted domain's region starts at offset 0 of its memory
			// on sep/scratchpad; on sgx/trustzone it is the first
			// allocated region of DRAM (trustzone reserves the secure
			// region first). Probe by scanning for the byte to flip via a
			// fresh write at offset 0.
			// In every protected configuration here the first trusted
			// domain's memory starts at offset 0 of the probed Memory
			// (the secure region / enclave / SEP slice is allocated
			// first), so the flip lands inside it.
			raw := mem.PeekRaw(0, 1)
			mem.PokeRaw(0, []byte{raw[0] ^ 0x80})
			_, rerr := d.Read(0, len(secret))
			if errors.Is(rerr, hw.ErrIntegrity) {
				tamperCell = "yes"
			} else {
				tamperCell = "no"
			}
		}
		// The verdict: a substrate claiming physical memory protection
		// must not leak; one that does not claim it is expected to.
		ok2 := leaked != props.PhysicalMemoryProtection
		t.AddRow(name, boolCell(props.PhysicalMemoryProtection), boolCell(leaked), tamperCell, passFail(ok2))
	}
	t.Notes = append(t.Notes,
		"tamper-detected: hardware MEEs (sgx, sep) authenticate memory; the software scratchpad variant encrypts only")
	return t, nil
}

// E13GUI reproduces §III-D "Secure Path to the User": the same phishing
// overlay against a raw framebuffer and against the nitpicker-style mux
// with its truthful indicator.
func E13GUI() (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "phishing overlay vs secure GUI",
		Anchor: "§III-D secure path to the user",
		Header: []string{"display path", "user-types-secret-into-fake", "evil-captures-input", "verdict"},
	}
	user := gui.User{TrustPolicy: "bank"}

	// Raw framebuffer: the evil app forges the bank's origin.
	rawDisp := hw.NewDisplay("fb-raw")
	rawDisp.Draw(hw.DisplayRegion{Origin: "bank", Content: "== BANK LOGIN =="})
	rawTyped := user.WouldTypeSecretRaw(rawDisp.Regions())
	t.AddRow("raw framebuffer", boolCell(rawTyped), boolCell(rawTyped),
		map[bool]string{true: "exploitable (as predicted)", false: "FAIL (attack should work)"}[rawTyped])

	// Secure mux: labels are mux-assigned, indicator truthful, input
	// focus-routed.
	disp := hw.NewDisplay("fb-mux")
	in := hw.NewInputDevice("kbd")
	mux := gui.NewMux(disp, in)
	if err := mux.CreateView("bank", true); err != nil {
		return t, err
	}
	if err := mux.CreateView("evil", false); err != nil {
		return t, err
	}
	if err := mux.Draw("evil", "== BANK LOGIN =="); err != nil {
		return t, err
	}
	if err := mux.Focus("evil"); err != nil {
		return t, err
	}
	muxTyped := user.WouldTypeSecretMux(disp.Regions())
	in.Inject("key:secret")
	mux.PumpInput()
	_, evilGot, err := mux.ReadInput("evil")
	if err != nil {
		return t, err
	}
	captured := muxTyped && evilGot
	t.AddRow("nitpicker mux + indicator", boolCell(muxTyped), boolCell(captured), passFail(!captured && !muxTyped))
	return t, nil
}

// E14Concurrency reproduces §II-B's structural difference: Flicker PALs
// "cannot run concurrently" while SGX enclaves "run concurrently in their
// own fully isolated enclaves". N trusted services each handle M requests;
// makespan under the substrate's modeled invocation cost and concurrency.
func E14Concurrency() (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "N trusted services × M requests: makespan",
		Anchor: "§II-B Flicker serialization vs SGX concurrency",
		Header: []string{"substrate", "concurrent", "services", "requests-each", "makespan-ms", "relative"},
	}
	const (
		services = 8
		requests = 10
	)
	var base float64
	for _, name := range []string{"sgx", "sep", "trustzone", "tpm-latelaunch"} {
		sub, err := NewSubstrate(name)
		if err != nil {
			return t, err
		}
		props := sub.Properties()
		perCall := float64(props.InvokeCostNs)
		var makespanNs float64
		if props.ConcurrentTrusted {
			// Services proceed in parallel; makespan is one service's work.
			makespanNs = perCall * requests
		} else {
			// Sessions serialize across ALL services.
			makespanNs = perCall * requests * services
		}
		if base == 0 {
			base = makespanNs
		}
		t.AddRow(name, boolCell(props.ConcurrentTrusted), services, requests,
			fmt.Sprintf("%.3f", makespanNs/1e6), fmt.Sprintf("%.2fx", makespanNs/base))
	}
	t.Notes = append(t.Notes,
		"modeled costs: enclave transition 8us, SEP mailbox 100us, SMC 4us, late launch 100ms")
	return t, nil
}

func containsBytes(haystack, needle []byte) bool {
	if len(needle) == 0 {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}
