package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"lateral/internal/cluster"
	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/distributed"
	"lateral/internal/netsim"
	"lateral/internal/sgx"
	"lateral/internal/telemetry"
)

// e20Svc is a minimal attested service whose handler can be made to hang:
// Stall arms a per-call sleep, modeling a replica that is alive on the
// network but wedged inside its enclave (the failure health checks cannot
// see and deadlines must contain). All state is atomic because abandoned
// handlers keep running after the watchdog returns.
type e20Svc struct {
	stall   atomic.Int64 // ns each call sleeps before answering
	handled atomic.Int64
}

func (s *e20Svc) CompName() string     { return "svc" }
func (s *e20Svc) CompVersion() string  { return "1.0" }
func (s *e20Svc) Init(*core.Ctx) error { return nil }

func (s *e20Svc) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "work" {
		return core.Message{}, core.ErrRefused
	}
	if d := time.Duration(s.stall.Load()); d > 0 {
		time.Sleep(d)
	}
	s.handled.Add(1)
	return core.Message{Op: "ack"}, nil
}

// e20Fleet is a small attested fleet whose replicas can be wedged on
// demand, used by the stall-containment experiment and soak test.
type e20Fleet struct {
	pool *cluster.Pool
	net  *netsim.Network
	svcs map[string]*e20Svc
	sys  map[string]*core.System
}

// e20Build deploys n replicas svc-1…svc-n of the stallable service behind
// an attested pool. The pool uses real time (deadlines are wall-clock
// budgets here, unlike E19's virtual-time throughput runs).
func e20Build(n int) (*e20Fleet, error) {
	net := netsim.New()
	vendor := cryptoutil.NewSigner("intel")
	pool, err := cluster.New(cluster.Config{
		Fleet:          "svc",
		RemoteName:     "svc",
		VendorKey:      vendor.Public(),
		Measurement:    cryptoutil.Hash(core.DomainImage(&e20Svc{})),
		JitterSeed:     "e20",
		HealthInterval: e20Slack,
	})
	if err != nil {
		return nil, err
	}
	f := &e20Fleet{
		pool: pool,
		net:  net,
		svcs: make(map[string]*e20Svc),
		sys:  make(map[string]*core.System),
	}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("svc-%d", i)
		cpu, err := sgx.New(sgx.Config{DeviceSeed: "e20-" + name, Vendor: vendor})
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(cpu)
		svc := &e20Svc{}
		if err := sys.Launch(svc, true, 1); err != nil {
			return nil, err
		}
		if err := sys.InitAll(); err != nil {
			return nil, err
		}
		exp, err := distributed.NewExporter(distributed.ExportConfig{
			System:    sys,
			Component: "svc",
			Endpoint:  net.Attach(name),
			Identity:  cryptoutil.NewSigner(name + "-tls"),
			Rand:      cryptoutil.NewPRNG("e20-srv-" + name),
		})
		if err != nil {
			return nil, err
		}
		if err := pool.Admit(cluster.ReplicaSpec{
			Name:           name,
			RemoteEndpoint: name,
			Endpoint:       net.Attach("lb-" + name),
			Rand:           cryptoutil.NewPRNG("e20-cli-" + name),
			Pump:           exp.Serve,
		}); err != nil {
			return nil, err
		}
		f.svcs[name] = svc
		f.sys[name] = sys
	}
	return f, nil
}

func (f *e20Fleet) setTracer(tr core.Tracer) {
	for _, sys := range f.sys {
		sys.SetTracer(tr)
	}
}

func (f *e20Fleet) handledTotal() int64 {
	var n int64
	for _, s := range f.svcs {
		n += s.handled.Load()
	}
	return n
}

// e20Slack is the containment tolerance: one health interval, per the
// stall-containment acceptance bound (budget + one health interval).
const e20Slack = 100 * time.Millisecond

// e20Round drives calls keys through the fleet with a per-call budget and
// reports how many returned nil, how many returned ErrDeadline, and the
// slowest observed wall-clock latency.
func e20Round(f *e20Fleet, calls int, budget time.Duration) (ok, timedOut int, maxElapsed time.Duration) {
	for i := 0; i < calls; i++ {
		key := fmt.Sprintf("key-%03d", i)
		start := time.Now()
		_, err := f.pool.DoDeadline(key, core.Message{Op: "work"}, start.Add(budget))
		if el := time.Since(start); el > maxElapsed {
			maxElapsed = el
		}
		switch {
		case err == nil:
			ok++
		case errors.Is(err, core.ErrDeadline):
			timedOut++
		}
	}
	return ok, timedOut, maxElapsed
}

// e20Drain waits for abandoned handlers to finish and their goroutines to
// exit, polling until the count is back at (or below) base. It returns the
// number of goroutines still alive beyond base after the grace period —
// the experiment's leak count.
func e20Drain(base int, grace time.Duration) int {
	deadline := time.Now().Add(grace)
	for {
		runtime.Gosched()
		leaked := runtime.NumGoroutine() - base
		if leaked <= 0 || time.Now().After(deadline) {
			if leaked < 0 {
				leaked = 0
			}
			return leaked
		}
		time.Sleep(time.Millisecond)
	}
}

// e20Timeouts sums the per-channel timeout counters a Metrics collector saw
// — the lateral_call_timeouts_total families the replicas exported.
func e20Timeouts(met *telemetry.Metrics) int64 {
	var n int64
	for _, c := range met.Channels() {
		n += c.Timeouts
	}
	return n
}

// E20Stall validates stall containment end to end: a replica that wedges
// inside its enclave (§II-B "the app is at the provider's mercy" — here the
// provider's machine simply stops making progress) must cost its callers at
// most their declared budget, not a hung session. A healthy fleet, a fleet
// with one wedged replica, and a fleet behind a reordering network are each
// driven with per-call deadlines; every call must return within budget plus
// one health interval, the wedged rounds must surface as
// lateral_call_timeouts_total, the stalled replica must NOT be marked down
// (slow is not dead — it recovers by itself), and no abandoned-handler
// goroutine may outlive the run.
func E20Stall() (Table, error) {
	t := Table{
		ID:     "E20",
		Title:  "stall containment under deadlines",
		Anchor: "§III-B trustworthy invocation; deadline/backpressure threading",
		Header: []string{"scenario", "calls", "ok", "timeouts", "max-latency", "verdict"},
	}
	const calls = 24
	base := runtime.NumGoroutine()

	// Round 1: healthy fleet. Everything completes far inside budget.
	f, err := e20Build(3)
	if err != nil {
		return t, err
	}
	budget := 50 * time.Millisecond
	ok, timedOut, maxEl := e20Round(f, calls, budget)
	pass := ok == calls && timedOut == 0 && maxEl <= budget+e20Slack
	t.AddRow("healthy fleet", calls, ok, timedOut, maxEl.Round(time.Millisecond).String(), passFail(pass))

	// Round 2: svc-1 wedges for 4x the budget. Calls sharded to it must be
	// abandoned at the deadline; the replica must stay admitted (slow, not
	// dead) and the other replicas keep serving.
	f2, err := e20Build(3)
	if err != nil {
		return t, err
	}
	met := telemetry.NewMetrics()
	f2.setTracer(met)
	budget = 20 * time.Millisecond
	f2.svcs["svc-1"].stall.Store(int64(4 * budget))
	ok2, timedOut2, maxEl2 := e20Round(f2, calls, budget)
	f2.svcs["svc-1"].stall.Store(0)
	tmoMetric := e20Timeouts(met)
	pass2 := timedOut2 > 0 && ok2 > 0 && ok2+timedOut2 == calls &&
		maxEl2 <= budget+e20Slack && f2.pool.Healthy() == 3 && tmoMetric > 0
	t.AddRow("svc-1 wedged 4x budget", calls, ok2, timedOut2,
		maxEl2.Round(time.Millisecond).String(), passFail(pass2))

	// Round 3: congested network reorders and detains datagrams (Delayer
	// chaos). Calls may fail over or expire, but none may exceed its budget
	// by more than the slack, and the fleet must be whole again once the
	// congestion clears.
	f3, err := e20Build(3)
	if err != nil {
		return t, err
	}
	f3.net.SetAdversary(netsim.NewDelayer(20, 0.25, 3))
	budget = 50 * time.Millisecond
	ok3, timedOut3, maxEl3 := e20Round(f3, calls, budget)
	f3.net.SetAdversary(nil)
	// Reordering breaks secure-channel sessions (records fail to open), so
	// replicas go down and calls fail fast — bounded, never hung. Once the
	// congestion clears, health rounds must reconnect and re-attest the
	// whole fleet (a half-open session costs one extra round).
	healRounds := 0
	for healRounds < 5 && f3.pool.Healthy() < 3 {
		f3.pool.CheckNow()
		healRounds++
	}
	pass3 := maxEl3 <= budget+e20Slack && f3.pool.Healthy() == 3 && f3.pool.Quarantined() == 0
	t.AddRow("delayer chaos (25% detained)", calls, ok3, timedOut3,
		maxEl3.Round(time.Millisecond).String(), passFail(pass3))

	// Abandoned handlers must finish and their goroutines exit.
	leaked := e20Drain(base, 3*time.Second)
	t.AddRow("goroutine leak check", "-", "-", "-",
		fmt.Sprintf("%d leaked", leaked), passFail(leaked == 0))

	t.Notes = append(t.Notes,
		fmt.Sprintf("containment bound: per-call budget + one health interval (%s); wall-clock time", e20Slack),
		fmt.Sprintf("wedged round: %d abandoned at deadline, replica stayed admitted (healthy=%d of 3), lateral_call_timeouts_total=%d",
			timedOut2, f2.pool.Healthy(), tmoMetric),
		fmt.Sprintf("wedged replica finished its backlog after abandonment: %d calls eventually handled fleet-wide", f2.handledTotal()),
		fmt.Sprintf("chaos round: broken sessions fail fast (no hangs); fleet whole again after %d health round(s), none quarantined", healRounds),
	)
	return t, nil
}
