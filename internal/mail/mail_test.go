package mail

import (
	"strings"
	"testing"

	"lateral/internal/attack"
	"lateral/internal/core"
	"lateral/internal/kernel"
)

func buildHorizontal(t *testing.T) (*core.System, map[string][]byte) {
	t.Helper()
	sys, assets, err := Build(kernel.New(kernel.Config{}), HorizontalManifest())
	if err != nil {
		t.Fatal(err)
	}
	return sys, assets
}

func buildVertical(t *testing.T) (*core.System, map[string][]byte) {
	t.Helper()
	sys, assets, err := Build(core.NewMonolith(0), VerticalManifest())
	if err != nil {
		t.Fatal(err)
	}
	return sys, assets
}

func TestManifestsValidate(t *testing.T) {
	if err := HorizontalManifest().Validate(); err != nil {
		t.Errorf("horizontal: %v", err)
	}
	if err := VerticalManifest().Validate(); err != nil {
		t.Errorf("vertical: %v", err)
	}
}

func TestFetchMailFlowBothArchitectures(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(*testing.T) (*core.System, map[string][]byte)
	}{
		{"horizontal", buildHorizontal},
		{"vertical", buildVertical},
	} {
		sys, _ := tc.build(t)
		out, err := FetchMail(sys)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(out, "*Quarterly report attached*") {
			t.Errorf("%s: rendered = %q", tc.name, out)
		}
	}
}

func TestComposeFlow(t *testing.T) {
	sys, _ := buildHorizontal(t)
	out, err := Compose(sys, "dear all")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "delivered") {
		t.Errorf("compose reply = %q", out)
	}
}

func TestDomainPlacementDiffers(t *testing.T) {
	h, _ := buildHorizontal(t)
	v, _ := buildVertical(t)
	hd, _ := h.DomainOf("render")
	vd, _ := v.DomainOf("render")
	if hd != "render" {
		t.Errorf("horizontal render domain = %q", hd)
	}
	if vd != "mailapp" {
		t.Errorf("vertical render domain = %q", vd)
	}
}

func TestRendererCompromiseContainment(t *testing.T) {
	// The paper's headline scenario: the renderer is exploited by a
	// malicious HTML mail.
	vertBuild := func() (*core.System, map[string][]byte, error) {
		return Build(core.NewMonolith(0), VerticalManifest())
	}
	horizBuild := func() (*core.System, map[string][]byte, error) {
		return Build(kernel.New(kernel.Config{}), HorizontalManifest())
	}
	vr, err := attack.MeasureContainment(vertBuild, "render")
	if err != nil {
		t.Fatal(err)
	}
	hr, err := attack.MeasureContainment(horizBuild, "render")
	if err != nil {
		t.Fatal(err)
	}
	if vr.LeakFraction() != 1.0 {
		t.Errorf("vertical renderer exploit leaked %.2f, want 1.0", vr.LeakFraction())
	}
	if hr.LeakFraction() != 0.0 {
		t.Errorf("horizontal renderer exploit leaked %v, want nothing", hr.Leaked)
	}
}

func TestFullContainmentSweep(t *testing.T) {
	horizBuild := func() (*core.System, map[string][]byte, error) {
		return Build(kernel.New(kernel.Config{}), HorizontalManifest())
	}
	results, err := attack.ContainmentSweep(horizBuild, ComponentNames())
	if err != nil {
		t.Fatal(err)
	}
	// Each horizontal compromise leaks at most what POLA grants: asset
	// holders leak their own assets; components without a modeled exploit
	// payload (ui) or without assets and read rights (net, parser,
	// render) leak nothing.
	wantMax := map[string]int{
		"ui": 0, "net": 0, "parser": 0, "render": 0,
		"tls": 2, "input": 1, "abook": 1, "store": 1,
	}
	for _, r := range results {
		if len(r.Leaked) != wantMax[r.Compromised] {
			t.Errorf("compromise of %s leaked %v, want %d assets",
				r.Compromised, r.Leaked, wantMax[r.Compromised])
		}
	}
}

func TestManifestAnalysisFindsExposure(t *testing.T) {
	findings := HorizontalManifest().Analyze()
	var exposure, deputy int
	for _, f := range findings {
		switch f.Kind {
		case "exposure":
			exposure++
		case "confused-deputy":
			deputy++
		}
	}
	// net (exposed) reaches tls and store → at least 2 exposure findings.
	if exposure < 2 {
		t.Errorf("exposure findings = %d, want ≥2", exposure)
	}
	// All channels are badged, so no confused-deputy findings.
	if deputy != 0 {
		t.Errorf("confused-deputy findings = %d, want 0", deputy)
	}
}

func TestUngrantedCrossTalkBlocked(t *testing.T) {
	// POLA check: the renderer has NO channel to tls; even benignly it
	// cannot invoke it.
	sys, _ := buildHorizontal(t)
	ctx, err := sys.CtxOf("render")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.HasChannel("tls") {
		t.Fatal("render was granted a tls channel")
	}
	if _, err := ctx.Call("tls", core.Message{Op: "recv"}); err == nil {
		t.Error("render invoked tls without a grant")
	}
}

func TestBadOpsRefused(t *testing.T) {
	sys, _ := buildHorizontal(t)
	for _, target := range []string{"ui", "net", "parser", "render", "input", "abook", "store"} {
		if _, err := sys.Deliver(target, core.Message{Op: "bogus-op"}); err == nil {
			t.Errorf("%s accepted bogus op", target)
		}
	}
}

func TestVerticalManifestIsSingleDomain(t *testing.T) {
	m := VerticalManifest()
	domains := map[string]bool{}
	for _, c := range m.Components {
		domains[c.EffectiveDomain()] = true
	}
	if len(domains) != 1 {
		t.Errorf("vertical domains = %v", domains)
	}
	// Static analysis agrees: compromising anything reaches all assets.
	if got := len(m.AssetsInDomain("render")); got != 5 {
		t.Errorf("vertical colocated assets = %d, want 5", got)
	}
	if got := len(HorizontalManifest().AssetsInDomain("render")); got != 0 {
		t.Errorf("horizontal render colocated assets = %d, want 0", got)
	}
}

func TestStoreLoadRestrictedToUI(t *testing.T) {
	sys, assets := buildHorizontal(t)
	// The UI legitimately loads the archive through its badged channel.
	ctx, err := sys.CtxOf("ui")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ctx.Call("store", core.Message{Op: "load"})
	if err != nil {
		t.Fatalf("ui load: %v", err)
	}
	if string(reply.Data) != string(assets["mail-archive"]) {
		t.Errorf("archive = %q", reply.Data)
	}
	// net can save but never load.
	nctx, err := sys.CtxOf("net")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nctx.Call("store", core.Message{Op: "save", Data: []byte("m")}); err != nil {
		t.Errorf("net save: %v", err)
	}
	if _, err := nctx.Call("store", core.Message{Op: "load"}); err == nil {
		t.Error("net loaded the archive")
	}
}

func TestAbookLookupAndExport(t *testing.T) {
	sys, assets := buildHorizontal(t)
	ctx, err := sys.CtxOf("ui")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ctx.Call("abook", core.Message{Op: "lookup", Data: []byte("bob")})
	if err != nil || string(reply.Data) != "bob@example.org" {
		t.Errorf("lookup = %q, %v", reply.Data, err)
	}
	reply, err = ctx.Call("abook", core.Message{Op: "export"})
	if err != nil || string(reply.Data) != string(assets["contacts"]) {
		t.Errorf("export = %q, %v", reply.Data, err)
	}
}

func TestBroadManifestValidatesAndWorks(t *testing.T) {
	m := BroadManifest()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, _, err := Build(kernel.New(kernel.Config{}), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FetchMail(sys); err != nil {
		t.Errorf("fetch under broad manifest: %v", err)
	}
	// Full mesh: n*(n-1) channels over 8 components.
	if len(m.Channels) != 8*7 {
		t.Errorf("broad channels = %d, want 56", len(m.Channels))
	}
}

func TestTLSSendPath(t *testing.T) {
	sys, assets := buildHorizontal(t)
	nctx, err := sys.CtxOf("net")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := nctx.Call("tls", core.Message{Op: "send", Data: []byte("outbound mail")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reply.Data), "delivered 13 bytes") {
		t.Errorf("send reply = %q", reply.Data)
	}
	if strings.Contains(string(reply.Data), string(assets["tls-key"])) {
		t.Error("tls reply echoed key material")
	}
}
