// Package mail implements the paper's §III-C email client example in both
// architectures of Figure 1:
//
//   - VERTICAL: all subsystems colocated in one protection domain, the way
//     "applications are currently constructed as monolithic blobs of
//     vertically stacked frameworks".
//   - HORIZONTAL: "applications [as] horizontal aggregates of communicating
//     components, individually isolated from one another and mutually
//     distrusting" — network protocol handling, TLS, parsing, rendering,
//     input methods, the address book, and storage each in their own
//     domain, wired by a manifest.
//
// The same component implementations serve both variants; only the
// manifest placement differs. Components that handle data from the
// Internet (protocol handler, parser, renderer) model exploitable bugs via
// core.Subvertible.
package mail

import (
	"bytes"
	"fmt"
	"time"

	"lateral/internal/core"
	"lateral/internal/manifest"
)

// Asset names and their secret values. The values are what the
// containment experiment greps the adversary transcript for.
func freshAssets() map[string][]byte {
	return map[string][]byte{
		"tls-key":          []byte("ASSET-TLS-PRIVATE-KEY-7f3a91"),
		"account-password": []byte("ASSET-IMAP-PASSWORD-hunter2x"),
		"user-dictionary":  []byte("ASSET-DICTIONARY-medical-terms"),
		"contacts":         []byte("ASSET-ADDRESSBOOK-entries-vip"),
		"mail-archive":     []byte("ASSET-ARCHIVE-old-love-letters"),
	}
}

// exfiltrate is the shared adversarial payload: on every granted channel,
// try the operations that return data (the attacker knows the component
// API) so the observer sees every reply the manifest lets it reach.
func exfiltrate(ctx *core.Ctx, env core.Envelope) (core.Message, error) {
	for _, ch := range ctx.Channels() {
		for _, op := range []string{"probe", "load", "recv", "export", "suggest"} {
			_, _ = ctx.Call(ch, core.Message{Op: op, Data: env.Msg.Data})
		}
	}
	return core.Message{Op: "pwned"}, nil
}

// uiComp is the user-facing composition/display component. It drives the
// mail-fetch flow.
type uiComp struct {
	ctx *core.Ctx
}

func (u *uiComp) CompName() string         { return "ui" }
func (u *uiComp) CompVersion() string      { return "1.0" }
func (u *uiComp) Init(ctx *core.Ctx) error { u.ctx = ctx; return nil }

func (u *uiComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "fetch-mail":
		return u.ctx.Call("net", core.Message{Op: "fetch"})
	case "compose":
		// Ask the input method for a completion, the address book for a
		// recipient, then send.
		sugg, err := u.ctx.Call("input", core.Message{Op: "suggest", Data: env.Msg.Data})
		if err != nil {
			return core.Message{}, err
		}
		rcpt, err := u.ctx.Call("abook", core.Message{Op: "lookup", Data: []byte("boss")})
		if err != nil {
			return core.Message{}, err
		}
		body := fmt.Sprintf("To: %s\n%s", rcpt.Data, sugg.Data)
		return u.ctx.Call("net", core.Message{Op: "send", Data: []byte(body)})
	default:
		return core.Message{}, fmt.Errorf("ui: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// netComp speaks the application-level protocol (IMAP/SMTP framing). It is
// exposed to the network and exploitable.
type netComp struct {
	ctx *core.Ctx
}

func (n *netComp) CompName() string         { return "net" }
func (n *netComp) CompVersion() string      { return "1.0" }
func (n *netComp) Init(ctx *core.Ctx) error { n.ctx = ctx; return nil }

func (n *netComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "fetch":
		raw, err := n.ctx.Call("tls", core.Message{Op: "recv"})
		if err != nil {
			return core.Message{}, err
		}
		parsed, err := n.ctx.Call("parser", core.Message{Op: "parse", Data: raw.Data})
		if err != nil {
			return core.Message{}, err
		}
		rendered, err := n.ctx.Call("render", core.Message{Op: "render", Data: parsed.Data})
		if err != nil {
			return core.Message{}, err
		}
		if _, err := n.ctx.Call("store", core.Message{Op: "save", Data: rendered.Data}); err != nil {
			return core.Message{}, err
		}
		return rendered, nil
	case "send":
		return n.ctx.Call("tls", core.Message{Op: "send", Data: env.Msg.Data})
	default:
		return core.Message{}, fmt.Errorf("net: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

func (n *netComp) HandleCompromised(env core.Envelope) (core.Message, error) {
	return exfiltrate(n.ctx, env)
}

// tlsComp owns the transport security material: the TLS key and the
// account password. "Cryptographic keys and the user's account passwords
// are shielded from all other components."
type tlsComp struct {
	ctx    *core.Ctx
	assets map[string][]byte
}

func (t *tlsComp) CompName() string    { return "tls" }
func (t *tlsComp) CompVersion() string { return "1.0" }

func (t *tlsComp) Init(ctx *core.Ctx) error {
	t.ctx = ctx
	if err := ctx.StoreAsset("tls-key", t.assets["tls-key"]); err != nil {
		return err
	}
	return ctx.StoreAsset("account-password", t.assets["account-password"])
}

func (t *tlsComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "recv":
		// A canned MIME message "received" over the secure transport.
		msg := "From: alice@example.org\nContent-Type: text/html\n\n<b>Quarterly report attached</b>"
		return core.Message{Op: "mail", Data: []byte(msg)}, nil
	case "send":
		// The message leaves encrypted; the reply confirms delivery
		// without echoing secrets.
		return core.Message{Op: "sent", Data: []byte(fmt.Sprintf("delivered %d bytes", len(env.Msg.Data)))}, nil
	default:
		return core.Message{}, fmt.Errorf("tls: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// parserComp does MIME parsing and format detection on untrusted input.
type parserComp struct {
	ctx *core.Ctx
}

func (p *parserComp) CompName() string         { return "parser" }
func (p *parserComp) CompVersion() string      { return "1.0" }
func (p *parserComp) Init(ctx *core.Ctx) error { p.ctx = ctx; return nil }

func (p *parserComp) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "parse" {
		return core.Message{}, fmt.Errorf("parser: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
	// Split headers from body at the first blank line.
	if i := bytes.Index(env.Msg.Data, []byte("\n\n")); i >= 0 {
		return core.Message{Op: "body", Data: env.Msg.Data[i+2:]}, nil
	}
	return core.Message{Op: "body", Data: env.Msg.Data}, nil
}

func (p *parserComp) HandleCompromised(env core.Envelope) (core.Message, error) {
	return exfiltrate(p.ctx, env)
}

// renderComp renders HTML — the paper's canonical exploit entry point.
type renderComp struct {
	ctx *core.Ctx
}

func (r *renderComp) CompName() string         { return "render" }
func (r *renderComp) CompVersion() string      { return "1.0" }
func (r *renderComp) Init(ctx *core.Ctx) error { r.ctx = ctx; return nil }

func (r *renderComp) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "render" {
		return core.Message{}, fmt.Errorf("render: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
	out := bytes.ReplaceAll(env.Msg.Data, []byte("<b>"), []byte("*"))
	out = bytes.ReplaceAll(out, []byte("</b>"), []byte("*"))
	return core.Message{Op: "rendered", Data: out}, nil
}

func (r *renderComp) HandleCompromised(env core.Envelope) (core.Message, error) {
	return exfiltrate(r.ctx, env)
}

// inputComp is the input method holding "highly personal data such as user
// dictionaries".
type inputComp struct {
	ctx    *core.Ctx
	assets map[string][]byte
}

func (i *inputComp) CompName() string    { return "input" }
func (i *inputComp) CompVersion() string { return "1.0" }

func (i *inputComp) Init(ctx *core.Ctx) error {
	i.ctx = ctx
	return ctx.StoreAsset("user-dictionary", i.assets["user-dictionary"])
}

func (i *inputComp) Handle(env core.Envelope) (core.Message, error) {
	if env.Msg.Op != "suggest" {
		return core.Message{}, fmt.Errorf("input: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
	// Auto-completion informed by (but not revealing) the dictionary.
	return core.Message{Op: "suggestion", Data: append(env.Msg.Data, []byte(" [autocompleted]")...)}, nil
}

// abookComp is the address book.
type abookComp struct {
	ctx    *core.Ctx
	assets map[string][]byte
}

func (a *abookComp) CompName() string    { return "abook" }
func (a *abookComp) CompVersion() string { return "1.0" }

func (a *abookComp) Init(ctx *core.Ctx) error {
	a.ctx = ctx
	return ctx.StoreAsset("contacts", a.assets["contacts"])
}

func (a *abookComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "lookup":
		return core.Message{Op: "contact", Data: append(env.Msg.Data, []byte("@example.org")...)}, nil
	case "export":
		// Full export for synchronization. Deliberately gated by the
		// MANIFEST alone (whoever has a channel may export) — the
		// paper's channel-POLA design. A sloppy manifest turns this into
		// a leak; the A1 ablation measures exactly that.
		contacts, err := a.ctx.LoadAsset("contacts")
		if err != nil {
			return core.Message{}, err
		}
		return core.Message{Op: "contacts", Data: contacts}, nil
	default:
		return core.Message{}, fmt.Errorf("abook: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// storeComp archives mail. Only badge-identified clients may save.
type storeComp struct {
	ctx    *core.Ctx
	assets map[string][]byte
}

func (s *storeComp) CompName() string    { return "store" }
func (s *storeComp) CompVersion() string { return "1.0" }

func (s *storeComp) Init(ctx *core.Ctx) error {
	s.ctx = ctx
	return ctx.StoreAsset("mail-archive", s.assets["mail-archive"])
}

func (s *storeComp) Handle(env core.Envelope) (core.Message, error) {
	switch env.Msg.Op {
	case "save":
		return core.Message{Op: "saved"}, nil
	case "load":
		// Only the UI may read the archive back; the network path can
		// save incoming mail but never exfiltrate the mailbox. The check
		// uses the channel-established identity, not payload claims.
		if env.From != "ui" {
			return core.Message{}, fmt.Errorf("store: load by %q: %w", env.From, core.ErrRefused)
		}
		archive, err := s.ctx.LoadAsset("mail-archive")
		if err != nil {
			return core.Message{}, err
		}
		return core.Message{Op: "archive", Data: archive}, nil
	default:
		return core.Message{}, fmt.Errorf("store: op %q: %w", env.Msg.Op, core.ErrRefused)
	}
}

// componentDecls is the single source of truth for the mail app's parts.
func componentDecls() []manifest.ComponentDecl {
	return []manifest.ComponentDecl{
		{Name: "ui", MemPages: 1},
		{Name: "net", MemPages: 1, Exposed: true},
		{Name: "tls", MemPages: 1, Assets: []string{"tls-key", "account-password"}},
		{Name: "parser", MemPages: 1},
		{Name: "render", MemPages: 1},
		{Name: "input", MemPages: 1, Assets: []string{"user-dictionary"}},
		{Name: "abook", MemPages: 1, Assets: []string{"contacts"}},
		{Name: "store", MemPages: 1, Assets: []string{"mail-archive"}},
	}
}

func channelDecls() []manifest.ChannelDecl {
	return []manifest.ChannelDecl{
		{Name: "net", From: "ui", To: "net", Badge: 1},
		{Name: "input", From: "ui", To: "input", Badge: 2},
		{Name: "abook", From: "ui", To: "abook", Badge: 3},
		{Name: "store", From: "ui", To: "store", Badge: 8},
		{Name: "tls", From: "net", To: "tls", Badge: 4},
		{Name: "parser", From: "net", To: "parser", Badge: 5},
		{Name: "render", From: "net", To: "render", Badge: 6},
		{Name: "store", From: "net", To: "store", Badge: 7},
	}
}

// HorizontalManifest places every component in its own domain (Fig. 1
// right).
func HorizontalManifest() *manifest.Manifest {
	return &manifest.Manifest{Components: componentDecls(), Channels: channelDecls()}
}

// VerticalManifest colocates everything in one "mailapp" domain (Fig. 1
// left) with identical channels — the only difference is placement.
func VerticalManifest() *manifest.Manifest {
	comps := componentDecls()
	for i := range comps {
		comps[i].Domain = "mailapp"
		comps[i].MemPages = 8
	}
	return &manifest.Manifest{Components: comps, Channels: channelDecls()}
}

// BroadManifest is the A1 ablation: separate domains (like the horizontal
// design) but a sloppy manifest that grants every component a channel to
// every other. Isolation without least authority — the substrate walls
// stand, yet a compromised component can simply ASK its peers for their
// data.
func BroadManifest() *manifest.Manifest {
	comps := componentDecls()
	var chans []manifest.ChannelDecl
	badge := uint64(1)
	for _, from := range comps {
		for _, to := range comps {
			if from.Name == to.Name {
				continue
			}
			chans = append(chans, manifest.ChannelDecl{
				Name:  to.Name,
				From:  from.Name,
				To:    to.Name,
				Badge: badge,
			})
			badge++
		}
	}
	return &manifest.Manifest{Components: comps, Channels: chans}
}

// ComponentNames lists the mail app's components (sweep targets for E1).
func ComponentNames() []string {
	decls := componentDecls()
	out := make([]string, len(decls))
	for i, d := range decls {
		out[i] = d.Name
	}
	return out
}

// Build loads the mail application described by m onto the substrate and
// returns the running system plus the asset map for leak scoring.
func Build(sub core.Substrate, m *manifest.Manifest) (*core.System, map[string][]byte, error) {
	assets := freshAssets()
	reg := manifest.Registry{
		"ui":     &uiComp{},
		"net":    &netComp{},
		"tls":    &tlsComp{assets: assets},
		"parser": &parserComp{},
		"render": &renderComp{},
		"input":  &inputComp{assets: assets},
		"abook":  &abookComp{assets: assets},
		"store":  &storeComp{assets: assets},
	}
	sys := core.NewSystem(sub)
	if err := m.Apply(sys, reg); err != nil {
		return nil, nil, err
	}
	return sys, assets, nil
}

// FetchMail drives the end-to-end mail-fetch flow (the E4 macro
// benchmark unit of work) and returns the rendered message.
func FetchMail(sys *core.System) (string, error) {
	return FetchMailDeadline(sys, time.Time{})
}

// FetchMailDeadline is FetchMail under a caller budget: the whole fetch
// flow — UI, network, parser, renderer — must finish before deadline or the
// call returns core.ErrDeadline. A zero deadline is unbounded.
func FetchMailDeadline(sys *core.System, deadline time.Time) (string, error) {
	reply, err := sys.DeliverDeadline("ui", core.Message{Op: "fetch-mail"}, core.Span{}, deadline)
	if err != nil {
		return "", err
	}
	return string(reply.Data), nil
}

// Compose drives the compose-and-send flow, exercising the input method
// and address book.
func Compose(sys *core.System, draft string) (string, error) {
	reply, err := sys.Deliver("ui", core.Message{Op: "compose", Data: []byte(draft)})
	if err != nil {
		return "", err
	}
	return string(reply.Data), nil
}
