package cap_test

// TTL decay tests, driven by the simtest virtual clock so expiry is
// deterministic: time moves only when the test advances it. (External
// test package: simtest transitively imports cap via internal/policy.)

import (
	"errors"
	"testing"
	"time"

	"lateral/internal/cap"
	"lateral/internal/simtest"
)

func TestMintTTLDecays(t *testing.T) {
	clk := simtest.NewClock(0)
	root := cap.NewRoot(gate("export"), cap.Invoke|cap.Grant)
	c, err := root.MintTTL(cap.Invoke, 7, time.Minute, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if want := simtest.Epoch.Add(time.Minute); !c.Expiry().Equal(want) {
		t.Errorf("Expiry = %v, want %v", c.Expiry(), want)
	}
	// Live until the instant of expiry; every operation fails closed after.
	clk.Advance(59 * time.Second)
	if err := c.Demand(cap.Invoke); err != nil {
		t.Fatalf("live cap refused: %v", err)
	}
	if _, err := c.Object(); err != nil {
		t.Fatalf("live cap object: %v", err)
	}
	clk.Advance(time.Second)
	if err := c.Demand(cap.Invoke); !errors.Is(err, cap.ErrExpired) {
		t.Errorf("Demand after TTL = %v, want ErrExpired", err)
	}
	if _, err := c.Object(); !errors.Is(err, cap.ErrExpired) {
		t.Errorf("Object after TTL = %v, want ErrExpired", err)
	}
}

func TestExpiredCapCannotMint(t *testing.T) {
	clk := simtest.NewClock(0)
	root := cap.NewRoot(gate("export"), cap.Invoke|cap.Grant)
	c, err := root.MintTTL(cap.Invoke|cap.Grant, 1, time.Minute, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if _, err := c.Mint(cap.Invoke, 2); !errors.Is(err, cap.ErrExpired) {
		t.Errorf("Mint from expired = %v, want ErrExpired", err)
	}
	if _, err := c.MintTTL(cap.Invoke, 2, time.Hour, clk.Now); !errors.Is(err, cap.ErrExpired) {
		t.Errorf("MintTTL from expired = %v, want ErrExpired", err)
	}
}

func TestChildNeverOutlivesDecayingParent(t *testing.T) {
	clk := simtest.NewClock(0)
	root := cap.NewRoot(gate("export"), cap.Invoke|cap.Grant)
	parent, err := root.MintTTL(cap.Invoke|cap.Grant, 1, time.Minute, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	// A plain Mint inherits the parent's expiry outright.
	plain, err := parent.Mint(cap.Invoke, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Expiry().Equal(parent.Expiry()) {
		t.Errorf("plain child expiry %v, parent %v", plain.Expiry(), parent.Expiry())
	}
	// A MintTTL asking for longer than the parent has left is clipped.
	clipped, err := parent.MintTTL(cap.Invoke, 3, time.Hour, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if !clipped.Expiry().Equal(parent.Expiry()) {
		t.Errorf("clipped child expiry %v, parent %v", clipped.Expiry(), parent.Expiry())
	}
	// A shorter TTL stands on its own.
	short, err := parent.MintTTL(cap.Invoke, 4, time.Second, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if err := short.Demand(cap.Invoke); !errors.Is(err, cap.ErrExpired) {
		t.Errorf("short child after its TTL = %v, want ErrExpired", err)
	}
	if err := parent.Demand(cap.Invoke); err != nil {
		t.Errorf("parent still inside TTL refused: %v", err)
	}
	clk.Advance(time.Minute)
	for i, c := range []*cap.Cap{parent, plain, clipped} {
		if err := c.Demand(cap.Invoke); !errors.Is(err, cap.ErrExpired) {
			t.Errorf("cap %d past parent TTL = %v, want ErrExpired", i, err)
		}
	}
}

func TestZeroExpiryNeverDecays(t *testing.T) {
	clk := simtest.NewClock(0)
	root := cap.NewRoot(gate("export"), cap.Invoke|cap.Grant)
	c, err := root.Mint(cap.Invoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(1000 * time.Hour)
	if err := c.Demand(cap.Invoke); err != nil {
		t.Errorf("non-decaying cap refused: %v", err)
	}
	if !c.Expiry().IsZero() {
		t.Errorf("Expiry = %v, want zero", c.Expiry())
	}
}

func TestRevokeBeatsTTL(t *testing.T) {
	// Revocation and decay are independent: a revoked cap reports
	// ErrRevoked even while its TTL is live.
	clk := simtest.NewClock(0)
	root := cap.NewRoot(gate("export"), cap.Invoke|cap.Grant)
	c, err := root.MintTTL(cap.Invoke, 1, time.Hour, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	c.Revoke()
	if err := c.Demand(cap.Invoke); !errors.Is(err, cap.ErrRevoked) {
		t.Errorf("revoked live-TTL cap = %v, want ErrRevoked", err)
	}
}
