package cap

import (
	"errors"
	"fmt"
	"sync"
)

// This file provides the deputy-side toolkit of §III-D: a service that
// "may serve multiple clients and thereby handle multiple trust domains
// within itself" keys every piece of client state by the BADGE the kernel
// stamped on the invocation, never by any identity claim in the payload.
// Experiment E8 contrasts this with an ambient-authority deputy.

// ErrNoSession is returned when an invocation arrives under a badge no
// session was registered for.
var ErrNoSession = errors.New("cap: no session for badge")

// SessionTable maps badges to per-client session state inside a deputy.
type SessionTable[T any] struct {
	mu       sync.Mutex
	sessions map[uint64]T
}

// NewSessionTable creates an empty table.
func NewSessionTable[T any]() *SessionTable[T] {
	return &SessionTable[T]{sessions: make(map[uint64]T)}
}

// Register installs the session state for a badge (at capability mint
// time, i.e. when the client relationship is established).
func (t *SessionTable[T]) Register(badge uint64, state T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions[badge] = state
}

// ForBadge resolves the session for an invocation. Badge 0 (ambient
// invocation) never resolves: a capability deputy refuses anonymous
// callers rather than guessing.
func (t *SessionTable[T]) ForBadge(badge uint64) (T, error) {
	var zero T
	if badge == 0 {
		return zero, fmt.Errorf("ambient invocation: %w", ErrNoSession)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[badge]
	if !ok {
		return zero, fmt.Errorf("badge %d: %w", badge, ErrNoSession)
	}
	return s, nil
}

// Drop removes a badge's session (revocation of the client relationship).
func (t *SessionTable[T]) Drop(badge uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sessions, badge)
}

// Len reports the number of live sessions.
func (t *SessionTable[T]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}
