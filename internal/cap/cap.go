// Package cap implements a capability system in the L4/seL4 tradition:
// unforgeable references that bundle a communication right with a context
// identity. Per §III-D of the paper, "capabilities bundle communication
// right and context identification in one entity and are therefore an
// important programming tool to prevent confused deputy issues."
//
// The package provides capability spaces (per-component tables), rights
// diminution on transfer (a capability can only ever be minted weaker),
// badges for context identification, and recursive revocation along the
// derivation tree — the operations a capability kernel exports.
package cap

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Rights is the access bit mask carried by a capability.
type Rights uint8

// Right bits.
const (
	Read Rights = 1 << iota
	Write
	Invoke
	Grant // may mint derived capabilities for others
)

// Has reports whether all bits in r2 are present in r.
func (r Rights) Has(r2 Rights) bool { return r&r2 == r2 }

func (r Rights) String() string {
	buf := []byte("----")
	if r.Has(Read) {
		buf[0] = 'r'
	}
	if r.Has(Write) {
		buf[1] = 'w'
	}
	if r.Has(Invoke) {
		buf[2] = 'i'
	}
	if r.Has(Grant) {
		buf[3] = 'g'
	}
	return string(buf)
}

// Errors.
var (
	// ErrRevoked is returned when using a revoked capability.
	ErrRevoked = errors.New("cap: capability revoked")

	// ErrRights is returned when an operation exceeds the capability's
	// rights, including attempts to mint a stronger child.
	ErrRights = errors.New("cap: insufficient rights")

	// ErrNoCap is returned when a slot holds no capability.
	ErrNoCap = errors.New("cap: empty slot")

	// ErrExpired is returned when using a capability past its TTL. Decay
	// fails closed: an expired capability behaves like a revoked one for
	// every operation, it is just not (yet) removed from the derivation
	// tree.
	ErrExpired = errors.New("cap: capability expired")
)

// Object is anything a capability can designate (an IPC gate, a file, a
// session). The capability system treats it opaquely.
type Object interface {
	ObjectName() string
}

// Cap is one unforgeable reference. Values of this type are only created
// by NewRoot and Mint, never by composite literal from outside the
// package — Go's unexported fields enforce the unforgeability.
type Cap struct {
	obj    Object
	rights Rights
	badge  uint64

	// expiry, when nonzero, is the instant this capability decays, judged
	// by clock (injected, so a virtual clock drives expiry
	// deterministically in tests and simulations). Both are stamped at
	// mint time and immutable afterwards; a zero expiry never decays.
	// Decay is monotonic like rights diminution: children never outlive
	// their parent.
	expiry time.Time
	clock  func() time.Time

	mu       sync.Mutex
	revoked  bool
	children []*Cap
}

// NewRoot creates the original, full-rights capability to an object. Only
// the substrate (or whoever legitimately creates the object) should call
// this.
func NewRoot(obj Object, rights Rights) *Cap {
	return &Cap{obj: obj, rights: rights}
}

// Object returns the designated object, failing if the capability has been
// revoked or has decayed.
func (c *Cap) Object() (Object, error) {
	if c.isRevoked() {
		return nil, fmt.Errorf("cap to %s: %w", c.obj.ObjectName(), ErrRevoked)
	}
	if c.expired() {
		return nil, fmt.Errorf("cap to %s: %w", c.obj.ObjectName(), ErrExpired)
	}
	return c.obj, nil
}

// Rights returns the capability's rights mask.
func (c *Cap) Rights() Rights { return c.rights }

// Badge returns the context identity stamped onto this capability at mint
// time. The HOLDER cannot change it — that is what makes it trustworthy
// for the receiver.
func (c *Cap) Badge() uint64 { return c.badge }

// Demand verifies the capability is live — not revoked, not decayed — and
// carries the needed rights.
func (c *Cap) Demand(need Rights) error {
	if c.isRevoked() {
		return fmt.Errorf("cap to %s: %w", c.obj.ObjectName(), ErrRevoked)
	}
	if c.expired() {
		return fmt.Errorf("cap to %s: %w", c.obj.ObjectName(), ErrExpired)
	}
	if !c.rights.Has(need) {
		return fmt.Errorf("cap to %s: need %v, have %v: %w", c.obj.ObjectName(), need, c.rights, ErrRights)
	}
	return nil
}

// Mint derives a child capability with a subset of this capability's
// rights and a new badge. Minting requires Grant; rights can only shrink.
// Revoking the parent revokes every mint transitively, and a child minted
// from a decaying capability inherits its expiry — lifetime, like rights,
// only ever diminishes.
func (c *Cap) Mint(rights Rights, badge uint64) (*Cap, error) {
	return c.mint(rights, badge, c.expiry, c.clock)
}

// MintTTL is Mint for a decaying grant: the child fails closed — every
// operation returns ErrExpired — once ttl has elapsed on the supplied
// clock. A nil clock uses the wall clock; tests and simulations inject a
// virtual one so decay is deterministic. If the parent itself decays
// sooner, the child's expiry is clipped to the parent's: a grant cannot
// extend the trust that backs it.
func (c *Cap) MintTTL(rights Rights, badge uint64, ttl time.Duration, clock func() time.Time) (*Cap, error) {
	if clock == nil {
		clock = time.Now
	}
	expiry := clock().Add(ttl)
	if !c.expiry.IsZero() && c.expiry.Before(expiry) {
		expiry = c.expiry
	}
	return c.mint(rights, badge, expiry, clock)
}

func (c *Cap) mint(rights Rights, badge uint64, expiry time.Time, clock func() time.Time) (*Cap, error) {
	if c.isRevoked() {
		return nil, fmt.Errorf("mint from %s: %w", c.obj.ObjectName(), ErrRevoked)
	}
	if c.expired() {
		return nil, fmt.Errorf("mint from %s: %w", c.obj.ObjectName(), ErrExpired)
	}
	if !c.rights.Has(Grant) {
		return nil, fmt.Errorf("mint from %s: %w", c.obj.ObjectName(), ErrRights)
	}
	if !c.rights.Has(rights) {
		return nil, fmt.Errorf("mint from %s: child rights %v exceed parent %v: %w",
			c.obj.ObjectName(), rights, c.rights, ErrRights)
	}
	child := &Cap{obj: c.obj, rights: rights, badge: badge, expiry: expiry, clock: clock}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.revoked {
		return nil, fmt.Errorf("mint from %s: %w", c.obj.ObjectName(), ErrRevoked)
	}
	c.children = append(c.children, child)
	return child, nil
}

// Expiry returns the instant the capability decays (zero = never).
func (c *Cap) Expiry() time.Time { return c.expiry }

// expired reports whether the capability's TTL has elapsed. Expiry and
// clock are immutable after mint, so no lock is needed.
func (c *Cap) expired() bool {
	return !c.expiry.IsZero() && !c.clock().Before(c.expiry)
}

// Revoke invalidates this capability and, recursively, everything minted
// from it.
func (c *Cap) Revoke() {
	c.mu.Lock()
	if c.revoked {
		c.mu.Unlock()
		return
	}
	c.revoked = true
	children := c.children
	c.children = nil
	c.mu.Unlock()
	for _, ch := range children {
		ch.Revoke()
	}
}

func (c *Cap) isRevoked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.revoked
}

// Space is one component's capability table, indexed by slot name. A
// component can only ever use what sits in its space; there is no ambient
// namespace to escalate through.
type Space struct {
	owner string

	mu    sync.Mutex
	slots map[string]*Cap
}

// NewSpace creates an empty capability space for a component.
func NewSpace(owner string) *Space {
	return &Space{owner: owner, slots: make(map[string]*Cap)}
}

// Owner returns the component the space belongs to.
func (s *Space) Owner() string { return s.owner }

// Insert places a capability into a named slot, replacing any previous
// occupant.
func (s *Space) Insert(slot string, c *Cap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots[slot] = c
}

// Lookup fetches the capability in a slot.
func (s *Space) Lookup(slot string) (*Cap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.slots[slot]
	if !ok {
		return nil, fmt.Errorf("space %s slot %q: %w", s.owner, slot, ErrNoCap)
	}
	return c, nil
}

// Delete removes a slot (the capability itself stays valid elsewhere).
func (s *Space) Delete(slot string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.slots, slot)
}

// Slots lists occupied slot names.
func (s *Space) Slots() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.slots))
	for k := range s.slots {
		out = append(out, k)
	}
	return out
}

// Transfer moves a capability from one space to another under a (possibly
// diminished) rights mask, enforcing Grant on the source capability.
// This models capability delegation over IPC.
func Transfer(from *Space, fromSlot string, to *Space, toSlot string, rights Rights, badge uint64) error {
	c, err := from.Lookup(fromSlot)
	if err != nil {
		return err
	}
	child, err := c.Mint(rights, badge)
	if err != nil {
		return fmt.Errorf("transfer %s→%s: %w", from.owner, to.owner, err)
	}
	to.Insert(toSlot, child)
	return nil
}
