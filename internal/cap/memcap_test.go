package cap

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lateral/internal/core"
	"lateral/internal/kernel"
)

// memBuf is an in-package MemTarget for unit tests.
type memBuf struct{ b []byte }

func (m *memBuf) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > len(m.b) {
		return errors.New("oob")
	}
	copy(m.b[off:], p)
	return nil
}

func (m *memBuf) Read(off, n int) ([]byte, error) {
	if off < 0 || off+n > len(m.b) {
		return nil, errors.New("oob")
	}
	out := make([]byte, n)
	copy(out, m.b[off:])
	return out, nil
}

func (m *memBuf) MemSize() int { return len(m.b) }

func TestMemCapBoundsAndRights(t *testing.T) {
	buf := &memBuf{b: make([]byte, 256)}
	c, err := NewMemCap(buf, 64, 64, Read|Write)
	if err != nil {
		t.Fatal(err)
	}
	if base, length := c.Bounds(); base != 64 || length != 64 {
		t.Errorf("bounds = %d,%d", base, length)
	}
	if err := c.Store(0, []byte("guarded")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(0, 7)
	if err != nil || string(got) != "guarded" {
		t.Fatalf("load = %q, %v", got, err)
	}
	// The write landed at target offset 64, not 0.
	if !bytes.Equal(buf.b[64:71], []byte("guarded")) {
		t.Error("store did not translate through the base")
	}
	// Out-of-bounds via the capability is refused even though the target
	// is larger.
	if err := c.Store(60, []byte("overflow!")); !errors.Is(err, ErrRights) {
		t.Errorf("oob store: %v", err)
	}
	if _, err := c.Load(-1, 2); !errors.Is(err, ErrRights) {
		t.Errorf("negative load: %v", err)
	}
	// A read-only view cannot store.
	ro, err := c.Narrow(0, 64, Read)
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Store(0, []byte("x")); !errors.Is(err, ErrRights) {
		t.Errorf("ro store: %v", err)
	}
	if _, err := ro.Load(0, 7); err != nil {
		t.Errorf("ro load: %v", err)
	}
}

func TestMemCapConstructionValidation(t *testing.T) {
	buf := &memBuf{b: make([]byte, 16)}
	if _, err := NewMemCap(buf, 8, 16, Read); !errors.Is(err, ErrRights) {
		t.Errorf("oversized cap: %v", err)
	}
	if _, err := NewMemCap(buf, -1, 4, Read); !errors.Is(err, ErrRights) {
		t.Errorf("negative base: %v", err)
	}
}

func TestMemCapMonotonicNarrowing(t *testing.T) {
	buf := &memBuf{b: make([]byte, 128)}
	root, _ := NewMemCap(buf, 0, 128, Read|Write)
	child, err := root.Narrow(32, 32, Read)
	if err != nil {
		t.Fatal(err)
	}
	if base, length := child.Bounds(); base != 32 || length != 32 {
		t.Errorf("child bounds = %d,%d", base, length)
	}
	// Amplification attempts fail.
	if _, err := child.Narrow(0, 32, Read|Write); !errors.Is(err, ErrRights) {
		t.Errorf("rights amplification: %v", err)
	}
	if _, err := root.Narrow(100, 64, Read); !errors.Is(err, ErrRights) {
		t.Errorf("bounds amplification: %v", err)
	}
	// Grandchild within child works.
	gc, err := child.Narrow(8, 8, Read)
	if err != nil {
		t.Fatal(err)
	}
	if base, _ := gc.Bounds(); base != 40 {
		t.Errorf("grandchild base = %d", base)
	}
}

func TestMemCapRevocationCascades(t *testing.T) {
	buf := &memBuf{b: make([]byte, 64)}
	root, _ := NewMemCap(buf, 0, 64, Read|Write)
	child, _ := root.Narrow(0, 32, Read)
	root.Revoke()
	root.Revoke() // idempotent
	if _, err := child.Load(0, 1); !errors.Is(err, ErrRevoked) {
		t.Errorf("child after revoke: %v", err)
	}
	if _, err := root.Narrow(0, 8, Read); !errors.Is(err, ErrRevoked) {
		t.Errorf("narrow after revoke: %v", err)
	}
	if err := root.Store(0, []byte("x")); !errors.Is(err, ErrRevoked) {
		t.Errorf("store after revoke: %v", err)
	}
}

func TestMemCapOverRealDomain(t *testing.T) {
	// The disaggregation scenario: a component shares ONE buffer of its
	// domain with a collaborator instead of the whole domain.
	sub := kernel.New(kernel.Config{})
	d, err := sub.CreateDomain(core.DomainSpec{Name: "owner", Code: []byte("o"), MemPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []byte("PRIVATE-HEADER")); err != nil {
		t.Fatal(err)
	}
	shared, err := NewMemCap(d, 256, 128, Read|Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.Store(0, []byte("shared buffer content")); err != nil {
		t.Fatal(err)
	}
	got, err := shared.Load(0, 21)
	if err != nil || string(got) != "shared buffer content" {
		t.Fatalf("shared load = %q, %v", got, err)
	}
	// The collaborator's capability cannot reach the private header.
	if _, err := shared.Load(-256, 14); !errors.Is(err, ErrRights) {
		t.Errorf("escape below base: %v", err)
	}
}

// Property: no sequence of valid Narrow calls can widen bounds or rights.
func TestQuickNarrowMonotone(t *testing.T) {
	buf := &memBuf{b: make([]byte, 256)}
	root, _ := NewMemCap(buf, 0, 256, Read|Write|Invoke|Grant)
	f := func(off1, len1, off2, len2 uint8, r1, r2 uint8) bool {
		c1, err := root.Narrow(int(off1), int(len1), Rights(r1)&(Read|Write|Invoke|Grant))
		if err != nil {
			return true // invalid first step: nothing to check
		}
		c2, err := c1.Narrow(int(off2), int(len2), Rights(r2)&(Read|Write|Invoke|Grant))
		if err != nil {
			return true
		}
		b2, l2 := c2.Bounds()
		b1, l1 := c1.Bounds()
		return b2 >= b1 && b2+l2 <= b1+l1 && c1.Rights().Has(c2.Rights())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
