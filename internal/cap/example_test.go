package cap_test

import (
	"errors"
	"fmt"

	"lateral/internal/cap"
)

type gate string

func (g gate) ObjectName() string { return string(g) }

// Example shows the capability lifecycle the paper's §III-D builds on:
// mint diminished, badge-stamped capabilities for clients, resolve
// sessions by badge (never by payload claims), and revoke transitively.
func Example() {
	// The file server owns the root capability to its service gate.
	root := cap.NewRoot(gate("file-service"), cap.Read|cap.Write|cap.Invoke|cap.Grant)

	// Each client receives an invoke-only capability with its own badge.
	aliceCap, _ := root.Mint(cap.Invoke, 101)
	malloryCap, _ := root.Mint(cap.Invoke, 102)

	// The deputy keys sessions by badge — unforgeable context identity.
	sessions := cap.NewSessionTable[string]()
	sessions.Register(101, "alice's files")
	sessions.Register(102, "mallory's files")

	for _, c := range []*cap.Cap{aliceCap, malloryCap} {
		s, _ := sessions.ForBadge(c.Badge())
		fmt.Printf("badge %d → %s\n", c.Badge(), s)
	}

	// Revoking the root cuts off every client at once.
	root.Revoke()
	err := aliceCap.Demand(cap.Invoke)
	fmt.Println("after revoke:", errors.Is(err, cap.ErrRevoked))
	// Output:
	// badge 101 → alice's files
	// badge 102 → mallory's files
	// after revoke: true
}
