package cap

// This file models CHERI-style memory capabilities (§III-D: "The research
// community even discusses architectures with hardware capabilities to
// enable even more fine-grained disaggregation of authority. The CHERI
// capability system is implemented as a modified MIPS CPU, using guarded
// pointers as capabilities.")
//
// A MemCap is a guarded pointer into a domain's memory: base, length, and
// permissions travel with the reference, every access is bounds- and
// rights-checked, and derivation can only narrow. It lets a component hand
// a collaborator access to ONE buffer instead of its whole address space —
// sub-domain disaggregation of authority.

import (
	"fmt"
	"sync"
)

// MemTarget is the memory a MemCap can point into. core.DomainHandle
// satisfies it; the indirection keeps cap free of a core dependency.
type MemTarget interface {
	Write(off int, p []byte) error
	Read(off, n int) ([]byte, error)
	MemSize() int
}

// MemCap is a guarded pointer: an unforgeable, bounds-carrying,
// rights-carrying reference to a memory region.
type MemCap struct {
	target MemTarget
	base   int
	length int
	rights Rights

	mu       sync.Mutex
	revoked  bool
	children []*MemCap
}

// NewMemCap creates the root guarded pointer over [base, base+length) of
// the target. Only whoever owns the memory should call this.
func NewMemCap(target MemTarget, base, length int, rights Rights) (*MemCap, error) {
	if base < 0 || length < 0 || base+length > target.MemSize() {
		return nil, fmt.Errorf("memcap [%d,%d) exceeds target size %d: %w",
			base, base+length, target.MemSize(), ErrRights)
	}
	return &MemCap{target: target, base: base, length: length, rights: rights}, nil
}

// Bounds returns the referenced region.
func (c *MemCap) Bounds() (base, length int) { return c.base, c.length }

// Rights returns the permission mask.
func (c *MemCap) Rights() Rights { return c.rights }

// Load reads n bytes at offset off WITHIN the capability's bounds.
func (c *MemCap) Load(off, n int) ([]byte, error) {
	if err := c.check(Read, off, n); err != nil {
		return nil, err
	}
	return c.target.Read(c.base+off, n)
}

// Store writes p at offset off within bounds.
func (c *MemCap) Store(off int, p []byte) error {
	if err := c.check(Write, off, len(p)); err != nil {
		return err
	}
	return c.target.Write(c.base+off, p)
}

// check validates liveness, rights, and bounds.
func (c *MemCap) check(need Rights, off, n int) error {
	c.mu.Lock()
	revoked := c.revoked
	c.mu.Unlock()
	if revoked {
		return fmt.Errorf("memcap: %w", ErrRevoked)
	}
	if !c.rights.Has(need) {
		return fmt.Errorf("memcap: need %v, have %v: %w", need, c.rights, ErrRights)
	}
	if off < 0 || n < 0 || off+n > c.length {
		return fmt.Errorf("memcap: access [%d,%d) outside [0,%d): %w", off, off+n, c.length, ErrRights)
	}
	return nil
}

// Narrow derives a child capability over a sub-range with a subset of the
// rights — the CHERI monotonicity rule: bounds and permissions only ever
// shrink. Revoking the parent revokes all derivations.
func (c *MemCap) Narrow(off, length int, rights Rights) (*MemCap, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.revoked {
		return nil, fmt.Errorf("memcap narrow: %w", ErrRevoked)
	}
	if !c.rights.Has(rights) {
		return nil, fmt.Errorf("memcap narrow: rights %v exceed %v: %w", rights, c.rights, ErrRights)
	}
	if off < 0 || length < 0 || off+length > c.length {
		return nil, fmt.Errorf("memcap narrow: [%d,%d) outside [0,%d): %w", off, off+length, c.length, ErrRights)
	}
	child := &MemCap{
		target: c.target,
		base:   c.base + off,
		length: length,
		rights: rights,
	}
	c.children = append(c.children, child)
	return child, nil
}

// Revoke invalidates this guarded pointer and every derivation.
func (c *MemCap) Revoke() {
	c.mu.Lock()
	if c.revoked {
		c.mu.Unlock()
		return
	}
	c.revoked = true
	children := c.children
	c.children = nil
	c.mu.Unlock()
	for _, ch := range children {
		ch.Revoke()
	}
}
