package cap

import (
	"errors"
	"testing"
	"testing/quick"
)

type obj string

func (o obj) ObjectName() string { return string(o) }

func TestRightsHasAndString(t *testing.T) {
	r := Read | Invoke
	if !r.Has(Read) || !r.Has(Invoke) || r.Has(Write) || r.Has(Grant) {
		t.Error("Has wrong")
	}
	if !r.Has(Read | Invoke) {
		t.Error("Has of combined mask wrong")
	}
	if got := (Read | Write | Invoke | Grant).String(); got != "rwig" {
		t.Errorf("String = %q", got)
	}
	if got := Rights(0).String(); got != "----" {
		t.Errorf("String = %q", got)
	}
}

func TestRootCapAndDemand(t *testing.T) {
	c := NewRoot(obj("gate"), Read|Invoke)
	if err := c.Demand(Invoke); err != nil {
		t.Errorf("Demand(Invoke): %v", err)
	}
	if err := c.Demand(Write); !errors.Is(err, ErrRights) {
		t.Errorf("Demand(Write): got %v, want ErrRights", err)
	}
	o, err := c.Object()
	if err != nil || o.ObjectName() != "gate" {
		t.Errorf("Object = %v, %v", o, err)
	}
	if c.Badge() != 0 {
		t.Errorf("root badge = %d", c.Badge())
	}
}

func TestMintDiminishesOnly(t *testing.T) {
	root := NewRoot(obj("file"), Read|Write|Grant)
	child, err := root.Mint(Read, 7)
	if err != nil {
		t.Fatal(err)
	}
	if child.Badge() != 7 || child.Rights() != Read {
		t.Errorf("child = %v badge %d", child.Rights(), child.Badge())
	}
	// Amplification must fail.
	if _, err := root.Mint(Read|Write|Grant|Invoke, 1); !errors.Is(err, ErrRights) {
		t.Errorf("amplifying mint: got %v", err)
	}
	// A child without Grant cannot mint at all.
	if _, err := child.Mint(Read, 9); !errors.Is(err, ErrRights) {
		t.Errorf("grant-less mint: got %v", err)
	}
	// A child WITH grant can re-delegate a subset.
	g, err := root.Mint(Read|Grant, 2)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := g.Mint(Read, 3)
	if err != nil {
		t.Fatalf("re-delegation failed: %v", err)
	}
	if gc.Rights() != Read {
		t.Errorf("re-delegated rights = %v", gc.Rights())
	}
}

func TestRevocationIsRecursive(t *testing.T) {
	root := NewRoot(obj("session"), Read|Write|Grant)
	c1, _ := root.Mint(Read|Grant, 1)
	c2, _ := c1.Mint(Read, 2)
	sibling, _ := root.Mint(Read, 3)

	c1.Revoke()
	if err := c2.Demand(Read); !errors.Is(err, ErrRevoked) {
		t.Errorf("grandchild after revoke: got %v", err)
	}
	if _, err := c2.Object(); !errors.Is(err, ErrRevoked) {
		t.Errorf("Object after revoke: got %v", err)
	}
	if _, err := c1.Mint(Read, 9); !errors.Is(err, ErrRevoked) {
		t.Errorf("mint from revoked: got %v", err)
	}
	// Sibling unaffected.
	if err := sibling.Demand(Read); err != nil {
		t.Errorf("sibling after unrelated revoke: %v", err)
	}
	// Root revoke kills everything.
	root.Revoke()
	if err := sibling.Demand(Read); !errors.Is(err, ErrRevoked) {
		t.Errorf("sibling after root revoke: got %v", err)
	}
	root.Revoke() // idempotent
}

func TestSpaceOperations(t *testing.T) {
	s := NewSpace("alice")
	if s.Owner() != "alice" {
		t.Errorf("owner = %q", s.Owner())
	}
	if _, err := s.Lookup("x"); !errors.Is(err, ErrNoCap) {
		t.Errorf("empty slot: got %v", err)
	}
	c := NewRoot(obj("o"), Read)
	s.Insert("x", c)
	got, err := s.Lookup("x")
	if err != nil || got != c {
		t.Errorf("lookup = %v, %v", got, err)
	}
	if slots := s.Slots(); len(slots) != 1 || slots[0] != "x" {
		t.Errorf("slots = %v", slots)
	}
	s.Delete("x")
	if _, err := s.Lookup("x"); !errors.Is(err, ErrNoCap) {
		t.Error("slot survived delete")
	}
}

func TestTransferDelegationChain(t *testing.T) {
	server := NewSpace("server")
	alice := NewSpace("alice")
	mallory := NewSpace("mallory")
	server.Insert("svc", NewRoot(obj("svc"), Read|Write|Invoke|Grant))

	if err := Transfer(server, "svc", alice, "svc", Invoke, 101); err != nil {
		t.Fatal(err)
	}
	ac, _ := alice.Lookup("svc")
	if ac.Badge() != 101 || ac.Rights() != Invoke {
		t.Errorf("alice's cap = %v badge %d", ac.Rights(), ac.Badge())
	}
	// Alice (no Grant) cannot re-delegate to Mallory.
	if err := Transfer(alice, "svc", mallory, "svc", Invoke, 102); !errors.Is(err, ErrRights) {
		t.Errorf("grant-less transfer: got %v", err)
	}
	// Transfer from an empty slot fails cleanly.
	if err := Transfer(alice, "nothing", mallory, "x", Read, 1); !errors.Is(err, ErrNoCap) {
		t.Errorf("empty transfer: got %v", err)
	}
	// Server revokes its root: alice's delegated cap dies with it.
	sc, _ := server.Lookup("svc")
	sc.Revoke()
	if err := ac.Demand(Invoke); !errors.Is(err, ErrRevoked) {
		t.Errorf("delegated cap after server revoke: got %v", err)
	}
}

func TestSessionTable(t *testing.T) {
	tbl := NewSessionTable[string]()
	tbl.Register(101, "alice-mailbox")
	tbl.Register(102, "mallory-mailbox")
	if tbl.Len() != 2 {
		t.Errorf("len = %d", tbl.Len())
	}
	s, err := tbl.ForBadge(101)
	if err != nil || s != "alice-mailbox" {
		t.Errorf("ForBadge(101) = %q, %v", s, err)
	}
	// Ambient (badge 0) is always refused — this is the anti-confused-
	// deputy rule.
	if _, err := tbl.ForBadge(0); !errors.Is(err, ErrNoSession) {
		t.Errorf("badge 0: got %v", err)
	}
	if _, err := tbl.ForBadge(999); !errors.Is(err, ErrNoSession) {
		t.Errorf("unknown badge: got %v", err)
	}
	tbl.Drop(101)
	if _, err := tbl.ForBadge(101); !errors.Is(err, ErrNoSession) {
		t.Error("dropped session still resolves")
	}
}

// Property: a minted child's rights are always a subset of the parent's.
func TestQuickMintSubset(t *testing.T) {
	f := func(parentBits, childBits uint8) bool {
		parent := NewRoot(obj("o"), Rights(parentBits)|Grant)
		child, err := parent.Mint(Rights(childBits), 1)
		if err != nil {
			// Mint failed: acceptable only if child exceeds parent.
			return !(Rights(parentBits) | Grant).Has(Rights(childBits))
		}
		return (Rights(parentBits) | Grant).Has(child.Rights())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
