package cap

import (
	"errors"
	"testing"
)

func TestSessionTableResolvesByBadge(t *testing.T) {
	tbl := NewSessionTable[string]()
	tbl.Register(7, "alice")
	tbl.Register(9, "bob")
	if got, err := tbl.ForBadge(7); err != nil || got != "alice" {
		t.Fatalf("ForBadge(7) = %q, %v", got, err)
	}
	if got, err := tbl.ForBadge(9); err != nil || got != "bob" {
		t.Fatalf("ForBadge(9) = %q, %v", got, err)
	}
	if n := tbl.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
}

func TestSessionTableRefusesAmbientBadge(t *testing.T) {
	tbl := NewSessionTable[string]()
	// Even a (buggy) registration under badge 0 must never resolve: an
	// ambient invocation carries no kernel-stamped identity, and a deputy
	// that guesses is a confused deputy.
	tbl.Register(0, "anonymous")
	if _, err := tbl.ForBadge(0); !errors.Is(err, ErrNoSession) {
		t.Errorf("ForBadge(0) = %v, want ErrNoSession", err)
	}
}

func TestSessionTableUnknownBadge(t *testing.T) {
	tbl := NewSessionTable[int]()
	if _, err := tbl.ForBadge(42); !errors.Is(err, ErrNoSession) {
		t.Errorf("unknown badge = %v, want ErrNoSession", err)
	}
}

func TestSessionTableDropRevokes(t *testing.T) {
	tbl := NewSessionTable[string]()
	tbl.Register(7, "alice")
	tbl.Drop(7)
	if _, err := tbl.ForBadge(7); !errors.Is(err, ErrNoSession) {
		t.Errorf("dropped badge = %v, want ErrNoSession", err)
	}
	if n := tbl.Len(); n != 0 {
		t.Errorf("Len after drop = %d", n)
	}
	// Dropping an absent badge is a no-op, not a panic.
	tbl.Drop(99)
}

func TestSessionTableReRegisterReplaces(t *testing.T) {
	tbl := NewSessionTable[string]()
	tbl.Register(7, "alice")
	tbl.Register(7, "alice-v2")
	if got, _ := tbl.ForBadge(7); got != "alice-v2" {
		t.Errorf("re-registered session = %q", got)
	}
	if n := tbl.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}
