package metrics

import (
	"testing"

	"lateral/internal/core"
	"lateral/internal/kernel"
)

type stub struct{ name string }

func (s *stub) CompName() string     { return s.name }
func (s *stub) CompVersion() string  { return "1" }
func (s *stub) Init(*core.Ctx) error { return nil }
func (s *stub) Handle(core.Envelope) (core.Message, error) {
	return core.Message{}, nil
}

func TestTCBReportHorizontalVsVertical(t *testing.T) {
	units := map[string]int{"tls": 80, "render": 1500, "store": 40}

	// Vertical: everything colocated on the monolith (commodity OS).
	vert := core.NewSystem(core.NewMonolith(0))
	if err := vert.Colocate("app", false, 4, &stub{"tls"}, &stub{"render"}, &stub{"store"}); err != nil {
		t.Fatal(err)
	}
	if err := vert.InitAll(); err != nil {
		t.Fatal(err)
	}
	vr, err := TCBReport(vert, units)
	if err != nil {
		t.Fatal(err)
	}

	// Horizontal: one domain each on the microkernel.
	horiz := core.NewSystem(kernel.New(kernel.Config{}))
	for _, n := range []string{"tls", "render", "store"} {
		if err := horiz.Launch(&stub{n}, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := horiz.InitAll(); err != nil {
		t.Fatal(err)
	}
	hr, err := TCBReport(horiz, units)
	if err != nil {
		t.Fatal(err)
	}

	byName := func(rs []Report, n string) Report {
		for _, r := range rs {
			if r.Component == n {
				return r
			}
		}
		t.Fatalf("no report for %s", n)
		return Report{}
	}
	vTLS := byName(vr, "tls")
	hTLS := byName(hr, "tls")
	// Vertical TLS trusts the OS (20000) + itself + render + store.
	if vTLS.Total() != 20000+80+1500+40 {
		t.Errorf("vertical tls TCB = %d", vTLS.Total())
	}
	// Horizontal TLS trusts the microkernel (10) + itself.
	if hTLS.Total() != 10+80 {
		t.Errorf("horizontal tls TCB = %d", hTLS.Total())
	}
	if hTLS.Total() >= vTLS.Total() {
		t.Error("horizontal TCB not smaller than vertical")
	}
	// The ratio should be two-plus orders of magnitude — the paper's
	// whole argument for decomposition on a small substrate.
	if ratio := float64(vTLS.Total()) / float64(hTLS.Total()); ratio < 100 {
		t.Errorf("TCB reduction ratio = %.0fx, want ≥100x", ratio)
	}
}

func TestTCBReportDefaultsAndSorting(t *testing.T) {
	sys := core.NewSystem(kernel.New(kernel.Config{}))
	for _, n := range []string{"zeta", "alpha"} {
		if err := sys.Launch(&stub{n}, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.InitAll(); err != nil {
		t.Fatal(err)
	}
	rs, err := TCBReport(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Component != "alpha" || rs[1].Component != "zeta" {
		t.Errorf("not sorted: %v", rs)
	}
	if rs[0].OwnUnits != 10 {
		t.Errorf("default units = %d, want 10", rs[0].OwnUnits)
	}
}

func TestSummarize(t *testing.T) {
	rs := []Report{
		{SubstrateUnits: 10, OwnUnits: 5},
		{SubstrateUnits: 10, OwnUnits: 25},
		{SubstrateUnits: 10, OwnUnits: 15},
	}
	s := Summarize(rs)
	if s.Components != 3 || s.MinTCB != 15 || s.MaxTCB != 35 || s.MeanTCB != 25 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Components != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestDefaultUnitsCatalogSanity(t *testing.T) {
	// The catalog encodes the paper's relative complexity claims.
	if DefaultUnits["render"] <= DefaultUnits["tls"] {
		t.Error("a rendering engine should dwarf a TLS stack")
	}
	if DefaultUnits["vpfs"] >= DefaultUnits["store"] {
		t.Error("VPFS's TCB should be smaller than a legacy FS client")
	}
	if DefaultUnits["attestation"] >= DefaultUnits["android"] {
		t.Error("attestation component should be tiny next to Android")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	// Empty non-nil slice behaves exactly like nil: the zero Summary.
	if z := Summarize([]Report{}); z != (Summary{}) {
		t.Errorf("empty-slice summary = %+v", z)
	}
	// A single component: min, max, and mean all collapse to its total.
	one := Summarize([]Report{{SubstrateUnits: 10, OwnUnits: 7, ColocatedUnits: 3}})
	if one.Components != 1 || one.MinTCB != 20 || one.MaxTCB != 20 || one.MeanTCB != 20 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestSummarizeColocatedAccounting(t *testing.T) {
	// Two components colocated in one domain, one isolated: the colocated
	// pair must each carry the other's units, and Summarize must see those
	// inflated totals.
	sys := core.NewSystem(kernel.New(kernel.Config{}))
	if err := sys.Colocate("blob", false, 1, &stub{name: "a"}, &stub{name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Launch(&stub{name: "c"}, false, 1); err != nil {
		t.Fatal(err)
	}
	units := map[string]int{"a": 100, "b": 50, "c": 10}
	reports, err := TCBReport(sys, units)
	if err != nil {
		t.Fatal(err)
	}
	sub := sys.Properties().TCBUnits
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Component] = r
	}
	if got := byName["a"].ColocatedUnits; got != 50 {
		t.Errorf("a colocated units = %d, want 50", got)
	}
	if got := byName["b"].ColocatedUnits; got != 100 {
		t.Errorf("b colocated units = %d, want 100", got)
	}
	if got := byName["c"].ColocatedUnits; got != 0 {
		t.Errorf("c colocated units = %d, want 0", got)
	}
	s := Summarize(reports)
	if s.Components != 3 {
		t.Fatalf("components = %d", s.Components)
	}
	if s.MinTCB != sub+10 {
		t.Errorf("min = %d, want isolated c at %d", s.MinTCB, sub+10)
	}
	if s.MaxTCB != sub+150 {
		t.Errorf("max = %d, want colocated pair at %d", s.MaxTCB, sub+150)
	}
	wantMean := float64(3*sub+150+150+10) / 3
	if s.MeanTCB != wantMean {
		t.Errorf("mean = %g, want %g", s.MeanTCB, wantMean)
	}
}
