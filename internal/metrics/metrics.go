// Package metrics computes trusted-computing-base sizes for loaded
// systems, supporting experiment E5. The paper's yardstick: "we say that
// the isolation substrate constitutes the component's Trusted Computing
// Base", plus everything sharing the component's protection domain — a
// colocated subsystem can stomp your memory, so you trust it whether you
// like it or not.
//
// Units are kLoC-scale integers (1 unit ≈ 1000 lines of code): a verified
// microkernel is ~10, TrustZone's monitor + secure OS ~25, SGX's microcode
// ~40, and a commodity OS ~20000. Component complexities are supplied by
// the caller, typically from the catalog in this package.
package metrics

import (
	"fmt"
	"sort"

	"lateral/internal/core"
)

// DefaultUnits catalogs rough complexity (kLoC) for the component roles
// used across the examples and experiments. The absolute numbers are
// order-of-magnitude estimates from the paper's citations; the experiments
// only depend on their relative size.
var DefaultUnits = map[string]int{
	"net":         30,   // protocol handling (IMAP/SMTP framing)
	"tls":         80,   // TLS library scale
	"render":      1500, // HTML/CSS rendering engine scale
	"parser":      200,  // MIME + format detection
	"input":       50,   // input methods + dictionaries
	"addressbook": 20,
	"store":       40, // file system client
	"vpfs":        5,  // the paper: VPFS has a small TCB
	"ui":          100,
	"meter":       8,
	"attestation": 3,
	"gateway":     10,
	"anonymizer":  12,
	"database":    300,
	"android":     15000, // full legacy stack
}

// Report is one component's TCB breakdown.
type Report struct {
	Component      string
	Domain         string
	SubstrateUnits int // the isolation substrate beneath the component
	OwnUnits       int // the component itself
	ColocatedUnits int // other components sharing the protection domain
}

// Total is the component's full TCB size.
func (r Report) Total() int {
	return r.SubstrateUnits + r.OwnUnits + r.ColocatedUnits
}

// TCBReport computes per-component TCB sizes for a loaded system. unitOf
// maps component names to complexity units; missing components default to
// 10 units.
func TCBReport(sys *core.System, unitOf map[string]int) ([]Report, error) {
	units := func(name string) int {
		if u, ok := unitOf[name]; ok {
			return u
		}
		return 10
	}
	comps := sys.Components()
	byDomain := make(map[string][]string)
	domainOf := make(map[string]string, len(comps))
	for _, c := range comps {
		d, err := sys.DomainOf(c)
		if err != nil {
			return nil, fmt.Errorf("tcb report: %w", err)
		}
		domainOf[c] = d
		byDomain[d] = append(byDomain[d], c)
	}
	substrate := sys.Properties().TCBUnits
	out := make([]Report, 0, len(comps))
	for _, c := range comps {
		r := Report{
			Component:      c,
			Domain:         domainOf[c],
			SubstrateUnits: substrate,
			OwnUnits:       units(c),
		}
		for _, sibling := range byDomain[domainOf[c]] {
			if sibling != c {
				r.ColocatedUnits += units(sibling)
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out, nil
}

// Summary aggregates a report set.
type Summary struct {
	Components int
	MinTCB     int
	MaxTCB     int
	MeanTCB    float64
}

// Summarize computes min/max/mean TCB over a report set.
func Summarize(reports []Report) Summary {
	if len(reports) == 0 {
		return Summary{}
	}
	s := Summary{Components: len(reports), MinTCB: reports[0].Total(), MaxTCB: reports[0].Total()}
	var sum int
	for _, r := range reports {
		t := r.Total()
		sum += t
		if t < s.MinTCB {
			s.MinTCB = t
		}
		if t > s.MaxTCB {
			s.MaxTCB = t
		}
	}
	s.MeanTCB = float64(sum) / float64(len(reports))
	return s
}
