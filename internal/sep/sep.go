// Package sep simulates the Apple Secure Enclave Processor substrate
// (§II-B): "The SEP is separated from the main application CPU, accesses
// DRAM with inline encryption and runs an L4-style microkernel. ... The
// hardware separation and the communication bus between SEP and CPU thus
// form the isolation substrate. ... By using a dedicated processor, this
// construction offers strong isolation with reduced side channel
// opportunities compared to shared-hardware solutions. But similar to
// TrustZone, SEP is inflexible and offers only two separated execution
// environments."
//
// Modeled structure: the application processor's domains live in the main
// machine's DRAM (plaintext, one legacy system). The SEP has its own small
// memory, ALL of it behind an inline encryption engine keyed from a fused
// UID, reachable from the AP only through a mailbox. Trusted domains run
// on the SEP, sub-isolated by its internal L4 kernel.
package sep

import (
	"fmt"
	"sync"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

// Config tunes the substrate.
type Config struct {
	// Machine is the application-processor hardware; defaults to a fresh
	// machine.
	Machine *hw.Machine

	// DeviceSeed keys the SEP's fused UID.
	DeviceSeed string

	// Vendor certifies the SEP device identity ("Apple").
	Vendor *cryptoutil.Signer

	// SEPMemPages is the SEP-private memory size (default 32 pages).
	SEPMemPages int
}

// Substrate is one SoC with application processor + SEP.
type Substrate struct {
	cfg     Config
	machine *hw.Machine // AP-side hardware
	sepMem  *hw.Memory  // SEP-private memory, inline-encrypted end to end
	device  *cryptoutil.Signer
	cert    []byte
	uid     []byte

	mu      sync.Mutex
	domains map[string]*sepDomain
	legacy  []*sepDomain
	sepOff  int
	sepEnd  int
	sealCtr uint64
	// mailboxCalls counts AP↔SEP transitions for cost accounting.
	mailboxCalls int64
}

var _ core.Substrate = (*Substrate)(nil)

// New powers on the SoC: allocates SEP memory, fuses the UID, and covers
// the entire SEP memory with the inline encryption engine.
func New(cfg Config) (*Substrate, error) {
	if cfg.Machine == nil {
		cfg.Machine = hw.NewMachine(hw.MachineConfig{Name: "sep-soc"})
	}
	if cfg.DeviceSeed == "" {
		return nil, fmt.Errorf("sep: DeviceSeed required")
	}
	if cfg.Vendor == nil {
		return nil, fmt.Errorf("sep: Vendor required")
	}
	if cfg.SEPMemPages <= 0 {
		cfg.SEPMemPages = 32
	}
	device := cryptoutil.NewSigner("sep-device:" + cfg.DeviceSeed)
	uid := cryptoutil.KeyFromSeed("sep-uid:" + cfg.DeviceSeed)
	sepMem := hw.NewMemory(cfg.SEPMemPages * hw.PageSize)
	// Inline encryption over the WHOLE SEP memory: nothing leaves the SEP
	// package in plaintext.
	mee := inlineCipher{key: cryptoutil.HKDF(uid, nil, []byte("sep-inline-mee"), cryptoutil.KeySize)}
	if err := sepMem.ProtectAuthenticated(0, cfg.SEPMemPages*hw.PageSize, mee); err != nil {
		return nil, fmt.Errorf("sep: inline mee: %w", err)
	}
	if err := cfg.Machine.Fuses.Program("sep-uid", uid, hw.PrivSecureWorld); err != nil {
		return nil, fmt.Errorf("sep: fuse: %w", err)
	}
	return &Substrate{
		cfg:     cfg,
		machine: cfg.Machine,
		sepMem:  sepMem,
		device:  device,
		cert:    core.IssueVendorCert(cfg.Vendor, device.Public()),
		uid:     uid,
		domains: make(map[string]*sepDomain),
		sepEnd:  cfg.SEPMemPages * hw.PageSize,
	}, nil
}

type inlineCipher struct{ key []byte }

func (c inlineCipher) Encrypt(addr hw.PhysAddr, p []byte) []byte {
	out, err := cryptoutil.CTRKeystream(c.key, uint64(addr), p)
	if err != nil {
		return p
	}
	return out
}
func (c inlineCipher) Decrypt(addr hw.PhysAddr, p []byte) []byte { return c.Encrypt(addr, p) }

// Name returns "sep".
func (s *Substrate) Name() string { return "sep" }

// Machine exposes the AP-side hardware for experiments.
func (s *Substrate) Machine() *hw.Machine { return s.machine }

// SEPMemory exposes the SEP-private memory so experiments can tap ITS bus
// too — and find only ciphertext.
func (s *Substrate) SEPMemory() *hw.Memory { return s.sepMem }

// MailboxCalls reports the number of AP↔SEP transitions.
func (s *Substrate) MailboxCalls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mailboxCalls
}

// Properties per the paper's analysis of the SEP.
func (s *Substrate) Properties() core.Properties {
	return core.Properties{
		Substrate:                "sep",
		SpatialIsolation:         true,
		PhysicalMemoryProtection: true, // inline DRAM encryption
		SecureLaunch:             true, // SEP boot ROM
		Attestation:              true, // fused UID + device cert
		MaxTrustedDomains:        0,    // SEP-internal L4 kernel multiplexes
		ConcurrentTrusted:        true,
		SecondaryIsolation:       true,    // components share the one SEP
		SideChannelLeaky:         false,   // dedicated processor
		InvokeCostNs:             100_000, // mailbox round trip
		TCBUnits:                 20,      // SEP ROM + L4 kernel + firmware
	}
}

// Anchor returns the UID-rooted trust anchor.
func (s *Substrate) Anchor() core.TrustAnchor { return &anchor{sub: s} }

// CreateDomain places trusted domains in SEP memory and untrusted domains
// in AP DRAM.
func (s *Substrate) CreateDomain(spec core.DomainSpec) (core.DomainHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.domains[spec.Name]; ok {
		return nil, fmt.Errorf("sep: %s: %w", spec.Name, core.ErrDomainExists)
	}
	pages := spec.MemPages
	if pages <= 0 {
		pages = 1
	}
	size := pages * hw.PageSize
	d := &sepDomain{
		sub:     s,
		name:    spec.Name,
		trusted: spec.Trusted,
		meas:    cryptoutil.Hash(spec.Code),
		size:    size,
	}
	if spec.Trusted {
		if s.sepOff+size > s.sepEnd {
			return nil, fmt.Errorf("sep: SEP memory exhausted for %s: %w", spec.Name, core.ErrTooManyTrusted)
		}
		d.base = hw.PhysAddr(s.sepOff)
		s.sepOff += size
	} else {
		base, err := s.machine.AllocRegion(pages)
		if err != nil {
			return nil, fmt.Errorf("sep: %s: %w", spec.Name, err)
		}
		d.base = base
		s.legacy = append(s.legacy, d)
	}
	s.domains[spec.Name] = d
	return d, nil
}

// sepDomain is one domain on either processor.
type sepDomain struct {
	sub     *Substrate
	name    string
	trusted bool
	meas    [32]byte
	base    hw.PhysAddr
	size    int

	mu    sync.Mutex
	freed bool
}

var _ core.DomainHandle = (*sepDomain)(nil)

func (d *sepDomain) DomainName() string    { return d.name }
func (d *sepDomain) Measurement() [32]byte { return d.meas }
func (d *sepDomain) Trusted() bool         { return d.trusted }
func (d *sepDomain) MemSize() int          { return d.size }

func (d *sepDomain) mem() *hw.Memory {
	if d.trusted {
		return d.sub.sepMem
	}
	return d.sub.machine.Mem
}

func (d *sepDomain) Write(off int, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.freed || off < 0 || off+len(p) > d.size {
		return fmt.Errorf("sep %s: write %d@%d out of range", d.name, len(p), off)
	}
	if d.trusted {
		d.sub.mu.Lock()
		d.sub.mailboxCalls++
		d.sub.mu.Unlock()
	}
	return d.mem().WritePhys(d.base+hw.PhysAddr(off), p)
}

func (d *sepDomain) Read(off, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.freed || off < 0 || off+n > d.size {
		return nil, fmt.Errorf("sep %s: read %d@%d out of range", d.name, n, off)
	}
	if d.trusted {
		d.sub.mu.Lock()
		d.sub.mailboxCalls++
		d.sub.mu.Unlock()
	}
	return d.mem().ReadPhys(d.base+hw.PhysAddr(off), n)
}

// CompromiseView: a compromised AP domain reads the whole AP system but
// nothing on the SEP (physically separate). A compromised SEP service
// reads its own slice only — the SEP's internal kernel sub-isolates, and
// the SEP never maps AP DRAM wholesale.
func (d *sepDomain) CompromiseView() [][]byte {
	d.mu.Lock()
	if d.freed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	var views [][]byte
	if b, err := d.Read(0, d.size); err == nil {
		views = append(views, b)
	}
	if d.trusted {
		return views
	}
	d.sub.mu.Lock()
	legacy := append([]*sepDomain(nil), d.sub.legacy...)
	d.sub.mu.Unlock()
	for _, l := range legacy {
		if l == d {
			continue
		}
		if b, err := l.Read(0, l.size); err == nil {
			views = append(views, b)
		}
	}
	return views
}

func (d *sepDomain) Destroy() error {
	d.mu.Lock()
	d.freed = true
	d.mu.Unlock()
	d.sub.mu.Lock()
	delete(d.sub.domains, d.name)
	d.sub.mu.Unlock()
	return nil
}

// anchor signs with the SEP device key rooted in the fused UID.
type anchor struct {
	sub *Substrate
}

var _ core.TrustAnchor = (*anchor)(nil)

func (a *anchor) AnchorKind() string { return "sep" }

func (a *anchor) Quote(d core.DomainHandle, nonce []byte) (core.Quote, error) {
	if !d.Trusted() {
		return core.Quote{}, fmt.Errorf("sep anchor: %s runs on the AP: %w", d.DomainName(), core.ErrRefused)
	}
	return core.SignQuote("sep", d.Measurement(), nonce, a.sub.device, a.sub.cert), nil
}

func (a *anchor) Seal(d core.DomainHandle, plaintext []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("sep anchor: seal for AP code: %w", core.ErrRefused)
	}
	meas := d.Measurement()
	key := cryptoutil.HKDF(a.sub.uid, meas[:], []byte("sep-seal"), cryptoutil.KeySize)
	a.sub.mu.Lock()
	a.sub.sealCtr++
	ctr := a.sub.sealCtr
	a.sub.mu.Unlock()
	return cryptoutil.Seal(key, cryptoutil.DeriveNonce("sep-seal", ctr), plaintext, meas[:])
}

func (a *anchor) Unseal(d core.DomainHandle, sealed []byte) ([]byte, error) {
	if !d.Trusted() {
		return nil, fmt.Errorf("sep anchor: unseal for AP code: %w", core.ErrRefused)
	}
	meas := d.Measurement()
	key := cryptoutil.HKDF(a.sub.uid, meas[:], []byte("sep-seal"), cryptoutil.KeySize)
	pt, err := cryptoutil.Open(key, sealed, meas[:])
	if err != nil {
		return nil, fmt.Errorf("sep unseal %s: %w", d.DomainName(), err)
	}
	return pt, nil
}
