package sep

import (
	"bytes"
	"errors"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
)

func newSEP(t *testing.T, m *hw.Machine) (*Substrate, *cryptoutil.Signer) {
	t.Helper()
	vendor := cryptoutil.NewSigner("apple")
	s, err := New(Config{Machine: m, DeviceSeed: "iphone-1", Vendor: vendor})
	if err != nil {
		t.Fatal(err)
	}
	return s, vendor
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Vendor: cryptoutil.NewSigner("v")}); err == nil {
		t.Error("missing DeviceSeed accepted")
	}
	if _, err := New(Config{DeviceSeed: "d"}); err == nil {
		t.Error("missing Vendor accepted")
	}
}

func TestSEPMemoryAlwaysCiphertextOnItsBus(t *testing.T) {
	s, _ := newSEP(t, nil)
	tap := &recordTap{}
	s.SEPMemory().AttachTap(tap)
	d, err := s.CreateDomain(core.DomainSpec{Name: "keystore", Code: []byte("k"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("BIOMETRIC-TEMPLATE-DATA")
	if err := d.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.seen, secret) {
		t.Error("SEP bus carried plaintext; inline encryption must cover everything")
	}
	got, err := d.Read(0, len(secret))
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("SEP-side read = %q, %v", got, err)
	}
	if raw := s.SEPMemory().PeekRaw(0, len(secret)); bytes.Equal(raw, secret) {
		t.Error("raw SEP DRAM holds plaintext")
	}
}

func TestAPCannotReachSEPMemory(t *testing.T) {
	s, _ := newSEP(t, nil)
	sepSvc, _ := s.CreateDomain(core.DomainSpec{Name: "keystore", Code: []byte("k"), Trusted: true})
	ap1, _ := s.CreateDomain(core.DomainSpec{Name: "ios", Code: []byte("i")})
	ap2, _ := s.CreateDomain(core.DomainSpec{Name: "app", Code: []byte("a")})
	sepSecret := []byte("SEP-PRIVATE-KEY")
	apSecret := []byte("AP-APP-DATA")
	if err := sepSvc.Write(0, sepSecret); err != nil {
		t.Fatal(err)
	}
	if err := ap1.Write(0, apSecret); err != nil {
		t.Fatal(err)
	}
	var view []byte
	for _, v := range ap2.CompromiseView() {
		view = append(view, v...)
	}
	if !bytes.Contains(view, apSecret) {
		t.Error("AP compromise view missing sibling AP memory (one legacy system)")
	}
	if bytes.Contains(view, sepSecret) {
		t.Error("AP compromise view contains SEP memory; processors are physically separate")
	}
	// SEP service compromise: own slice only.
	var sview []byte
	for _, v := range sepSvc.CompromiseView() {
		sview = append(sview, v...)
	}
	if !bytes.Contains(sview, sepSecret) {
		t.Error("SEP compromise view missing own memory")
	}
	if bytes.Contains(sview, apSecret) {
		t.Error("SEP compromise view contains AP memory")
	}
}

func TestSEPInternalSecondaryIsolation(t *testing.T) {
	s, _ := newSEP(t, nil)
	a, _ := s.CreateDomain(core.DomainSpec{Name: "touchid", Code: []byte("t"), Trusted: true})
	b, _ := s.CreateDomain(core.DomainSpec{Name: "crypto", Code: []byte("c"), Trusted: true})
	secret := []byte("FINGERPRINT-DB")
	if err := a.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	for _, v := range b.CompromiseView() {
		if bytes.Contains(v, secret) {
			t.Error("SEP L4 kernel should sub-isolate SEP services")
		}
	}
	if !s.Properties().SecondaryIsolation {
		t.Error("SEP should declare secondary isolation")
	}
}

func TestSEPMemoryExhaustion(t *testing.T) {
	vendor := cryptoutil.NewSigner("apple")
	s, err := New(Config{DeviceSeed: "x", Vendor: vendor, SEPMemPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "a", Trusted: true, MemPages: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateDomain(core.DomainSpec{Name: "b", Trusted: true}); !errors.Is(err, core.ErrTooManyTrusted) {
		t.Errorf("exhausted SEP memory: got %v", err)
	}
}

func TestMailboxAccounting(t *testing.T) {
	s, _ := newSEP(t, nil)
	d, _ := s.CreateDomain(core.DomainSpec{Name: "svc", Code: []byte("s"), Trusted: true})
	ap, _ := s.CreateDomain(core.DomainSpec{Name: "ios", Code: []byte("i")})
	before := s.MailboxCalls()
	_ = d.Write(0, []byte("x"))
	_, _ = d.Read(0, 1)
	if got := s.MailboxCalls(); got != before+2 {
		t.Errorf("mailbox calls = %d, want %d", got, before+2)
	}
	// AP-local access does not cross the mailbox.
	_ = ap.Write(0, []byte("y"))
	if got := s.MailboxCalls(); got != before+2 {
		t.Errorf("AP access counted as mailbox call")
	}
}

func TestAnchorQuoteSealUnseal(t *testing.T) {
	s, vendor := newSEP(t, nil)
	svc, _ := s.CreateDomain(core.DomainSpec{Name: "svc", Code: []byte("good"), Trusted: true})
	evil, _ := s.CreateDomain(core.DomainSpec{Name: "evil", Code: []byte("bad"), Trusted: true})
	ap, _ := s.CreateDomain(core.DomainSpec{Name: "ios", Code: []byte("l")})
	an := s.Anchor()
	if an.AnchorKind() != "sep" {
		t.Errorf("kind = %q", an.AnchorKind())
	}
	nonce := []byte("n")
	q, err := an.Quote(svc, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQuote(q, nonce, vendor.Public(), svc.Measurement()); err != nil {
		t.Errorf("valid quote rejected: %v", err)
	}
	if _, err := an.Quote(ap, nonce); !errors.Is(err, core.ErrRefused) {
		t.Errorf("AP quote: got %v", err)
	}
	blob, err := an.Seal(svc, []byte("uid-bound"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := an.Unseal(svc, blob)
	if err != nil || string(got) != "uid-bound" {
		t.Fatalf("unseal = %q, %v", got, err)
	}
	if _, err := an.Unseal(evil, blob); err == nil {
		t.Error("different SEP service unsealed the blob")
	}
	if _, err := an.Seal(ap, nil); !errors.Is(err, core.ErrRefused) {
		t.Errorf("AP seal: got %v", err)
	}
	if _, err := an.Unseal(ap, blob); !errors.Is(err, core.ErrRefused) {
		t.Errorf("AP unseal: got %v", err)
	}
}

func TestPropertiesAndLifecycle(t *testing.T) {
	s, _ := newSEP(t, nil)
	p := s.Properties()
	if !p.PhysicalMemoryProtection || p.SideChannelLeaky {
		t.Error("SEP must have physical memory protection and reduced side channels")
	}
	d, _ := s.CreateDomain(core.DomainSpec{Name: "d", Code: []byte("c")})
	if _, err := s.CreateDomain(core.DomainSpec{Name: "d"}); !errors.Is(err, core.ErrDomainExists) {
		t.Errorf("duplicate: got %v", err)
	}
	if err := d.Write(5000, []byte("x")); err == nil {
		t.Error("out-of-range write succeeded")
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, 1); err == nil {
		t.Error("read after destroy succeeded")
	}
	if d.CompromiseView() != nil {
		t.Error("destroyed domain has compromise view")
	}
}

type recordTap struct{ seen []byte }

func (r *recordTap) OnRead(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}
func (r *recordTap) OnWrite(_ hw.PhysAddr, data []byte) []byte {
	r.seen = append(r.seen, data...)
	return nil
}

func TestSEPMemoryIntegrityAgainstPhysicalWrite(t *testing.T) {
	s, _ := newSEP(t, nil)
	d, err := s.CreateDomain(core.DomainSpec{Name: "keys", Code: []byte("k"), Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []byte("uid-wrapped-key")); err != nil {
		t.Fatal(err)
	}
	raw := s.SEPMemory().PeekRaw(0, 1)
	s.SEPMemory().PokeRaw(0, []byte{raw[0] ^ 1})
	if _, err := d.Read(0, 15); !errors.Is(err, hw.ErrIntegrity) {
		t.Errorf("tampered SEP memory: got %v, want hw.ErrIntegrity", err)
	}
}
