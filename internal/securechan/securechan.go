// Package securechan implements an attested secure channel over the
// untrusted network: an authenticated key exchange (X25519 + Ed25519)
// whose handshake transcript can carry trust-anchor quotes in both
// directions.
//
// This is the glue of the paper's distributed scenarios: the smart meter
// "would verify the code identity of the data anonymizer component before
// sending it any readings" (server attestation bound to the channel), and
// "the appliance is authenticating itself using a secret hardware key"
// (client attestation — password-less, phishing-resistant).
//
// Channel binding: quotes embed the transcript hash as their nonce, so
// evidence cannot be cut-and-pasted from another connection, and a
// man-in-the-middle cannot splice two half-channels together.
package securechan

import (
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"

	"lateral/internal/cryptoutil"
)

// Errors.
var (
	// ErrHandshake is returned for malformed or unauthentic handshake
	// messages.
	ErrHandshake = errors.New("securechan: handshake failed")

	// ErrReplay is returned when a record's sequence number goes
	// backwards or repeats.
	ErrReplay = errors.New("securechan: replay detected")

	// ErrEpoch is returned when a ClientHello carries a fleet config
	// epoch that does not match the responder's current epoch: stale
	// members (and replayed pre-rekey hellos) are refused at the door.
	ErrEpoch = errors.New("securechan: config epoch mismatch")
)

const (
	nonceLen = 16
	protoTag = "lateral-hs-v1"
	epochLen = 8
)

// randReader adapts the deterministic PRNG to io.Reader for key
// generation.
type randReader struct{ p *cryptoutil.PRNG }

func (r randReader) Read(p []byte) (int, error) {
	copy(p, r.p.Bytes(len(p)))
	return len(p), nil
}

// lv encodes a length-prefixed field.
func lv(b []byte) []byte {
	out := make([]byte, 2, 2+len(b))
	out[0] = byte(len(b) >> 8)
	out[1] = byte(len(b))
	return append(out, b...)
}

// splitLV parses consecutive length-prefixed fields.
func splitLV(b []byte, n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("truncated field %d: %w", i, ErrHandshake)
		}
		l := int(b[0])<<8 | int(b[1])
		b = b[2:]
		if len(b) < l {
			return nil, fmt.Errorf("short field %d: %w", i, ErrHandshake)
		}
		out = append(out, b[:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("trailing bytes: %w", ErrHandshake)
	}
	return out, nil
}

// splitHello parses a ClientHello: two mandatory fields (X25519 public
// key, nonce) plus an optional third — the 8-byte big-endian fleet
// config epoch the client was keyed at. Epoch-less hellos (the wire
// format before dynamic membership) decode as epoch 0.
func splitHello(hello []byte) (fields [][]byte, epoch uint64, err error) {
	b := hello
	for len(b) > 0 {
		if len(fields) == 3 {
			return nil, 0, fmt.Errorf("trailing bytes: %w", ErrHandshake)
		}
		if len(b) < 2 {
			return nil, 0, fmt.Errorf("truncated field %d: %w", len(fields), ErrHandshake)
		}
		l := int(b[0])<<8 | int(b[1])
		b = b[2:]
		if len(b) < l {
			return nil, 0, fmt.Errorf("short field %d: %w", len(fields), ErrHandshake)
		}
		fields = append(fields, b[:l])
		b = b[l:]
	}
	if len(fields) < 2 {
		return nil, 0, fmt.Errorf("hello needs 2 fields, got %d: %w", len(fields), ErrHandshake)
	}
	if len(fields) == 3 {
		if len(fields[2]) != epochLen {
			return nil, 0, fmt.Errorf("epoch field size %d: %w", len(fields[2]), ErrHandshake)
		}
		epoch = binary.BigEndian.Uint64(fields[2])
	}
	return fields, epoch, nil
}

// ClientConfig configures the initiating side.
type ClientConfig struct {
	// Rand provides handshake randomness (deterministic in experiments).
	Rand *cryptoutil.PRNG

	// VerifyServer authenticates the responder. It receives the server's
	// long-term identity key, the transcript hash, and the server's
	// attestation evidence (empty if the server attached none). Returning
	// an error aborts the handshake. Required.
	VerifyServer func(idPub ed25519.PublicKey, transcript [32]byte, evidence []byte) error

	// Evidence, when non-nil, produces the client's own attestation
	// evidence bound to the transcript (password-less client auth).
	Evidence func(transcript [32]byte) ([]byte, error)

	// Events, when non-nil, observes the handshake outcome: fired once
	// from Finish with kind "handshake-ok" or "handshake-fail" (detail
	// carries the failure text). Journaling layers hang off this without
	// the channel knowing about them.
	Events func(kind, detail string)

	// ConfigEpoch, when non-zero, is the fleet configuration epoch this
	// client was keyed at. It is stamped into the hello (inside the
	// transcript, so quotes bind it), checked by epoch-gated servers, and
	// folded into the HKDF salt so session keys from one epoch cannot
	// authenticate traffic in another. Zero keeps the pre-epoch wire
	// format and key schedule byte-identical.
	ConfigEpoch uint64
}

// ServerConfig configures the responding side.
type ServerConfig struct {
	// Rand provides handshake randomness.
	Rand *cryptoutil.PRNG

	// Identity signs the handshake; its public half is what clients pin
	// or check against attestation evidence. Required.
	Identity *cryptoutil.Signer

	// Evidence, when non-nil, produces attestation evidence bound to the
	// transcript (e.g. an SGX quote of the anonymizer enclave).
	Evidence func(transcript [32]byte) ([]byte, error)

	// VerifyClient, when non-nil, demands and checks client evidence —
	// connections without acceptable evidence fail.
	VerifyClient func(evidence []byte, transcript [32]byte) error

	// Events, when non-nil, observes handshake outcomes: fired once per
	// Pending.Complete with kind "handshake-ok" or "handshake-fail".
	Events func(kind, detail string)

	// ConfigEpoch, when non-zero, gates admission: a hello whose stamped
	// epoch differs (including epoch-less legacy hellos) is refused with
	// ErrEpoch. Zero accepts any hello and derives keys at whatever epoch
	// the client stamped, preserving pre-epoch interop.
	ConfigEpoch uint64
}

// Client is an in-flight initiator handshake.
type Client struct {
	cfg   ClientConfig
	priv  *ecdh.PrivateKey
	nonce []byte
	hello []byte
}

// NewClient starts a handshake and returns the initiator state.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Rand == nil || cfg.VerifyServer == nil {
		return nil, fmt.Errorf("securechan: client needs Rand and VerifyServer: %w", ErrHandshake)
	}
	priv, err := ecdh.X25519().GenerateKey(randReader{cfg.Rand})
	if err != nil {
		return nil, fmt.Errorf("securechan: keygen: %w", err)
	}
	c := &Client{cfg: cfg, priv: priv, nonce: cfg.Rand.Bytes(nonceLen)}
	c.hello = append(lv(priv.PublicKey().Bytes()), lv(c.nonce)...)
	if cfg.ConfigEpoch > 0 {
		var e [epochLen]byte
		binary.BigEndian.PutUint64(e[:], cfg.ConfigEpoch)
		c.hello = append(c.hello, lv(e[:])...)
	}
	return c, nil
}

// Hello returns the first handshake message (client → server).
func (c *Client) Hello() []byte {
	return append([]byte(nil), c.hello...)
}

// HelloShaped cheaply reports whether b is structurally a ClientHello:
// two length-prefixed fields of X25519-key and nonce size, optionally
// followed by an 8-byte config-epoch field. Servers use it to decide
// whether an undecryptable datagram on an established session deserves a
// handshake attempt at all — record frames (8-byte big-endian sequence
// header + ciphertext) never match, so garbage cannot buy a server
// handshake or reset a live session.
func HelloShaped(b []byte) bool {
	fields, _, err := splitHello(b)
	return err == nil && len(fields[0]) == 32 && len(fields[1]) == nonceLen
}

// HelloEpoch returns the fleet config epoch stamped into a ClientHello
// (0 for epoch-less hellos) and whether b parses as a hello at all.
func HelloEpoch(b []byte) (uint64, bool) {
	_, epoch, err := splitHello(b)
	return epoch, err == nil
}

// Server accepts handshakes.
type Server struct {
	cfg ServerConfig
}

// NewServer creates a responder.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Rand == nil || cfg.Identity == nil {
		return nil, fmt.Errorf("securechan: server needs Rand and Identity: %w", ErrHandshake)
	}
	return &Server{cfg: cfg}, nil
}

// Pending is a server-side handshake awaiting the client's Finish.
type Pending struct {
	srv        *Server
	transcript [32]byte
	sess       *Session
	epoch      uint64
}

// Epoch returns the fleet config epoch the pending session's keys were
// derived at — the hello's stamp, which an epoch-0 (ungated) server
// accepts verbatim. Epoch-aware servers track sessions by this value, not
// by their own gate: a gate still at 0 says nothing about what epoch the
// client keyed itself to.
func (p *Pending) Epoch() uint64 { return p.epoch }

// Respond consumes a ClientHello and produces the second message
// (server → client) plus the pending state.
func (s *Server) Respond(hello []byte) ([]byte, *Pending, error) {
	fields, helloEpoch, err := splitHello(hello)
	if err != nil {
		return nil, nil, err
	}
	if s.cfg.ConfigEpoch > 0 && helloEpoch != s.cfg.ConfigEpoch {
		return nil, nil, fmt.Errorf("hello at epoch %d, fleet at %d: %w",
			helloEpoch, s.cfg.ConfigEpoch, ErrEpoch)
	}
	clientPub, err := ecdh.X25519().NewPublicKey(fields[0])
	if err != nil {
		return nil, nil, fmt.Errorf("client key: %w", ErrHandshake)
	}
	clientNonce := fields[1]
	priv, err := ecdh.X25519().GenerateKey(randReader{s.cfg.Rand})
	if err != nil {
		return nil, nil, fmt.Errorf("securechan: keygen: %w", err)
	}
	serverNonce := s.cfg.Rand.Bytes(nonceLen)
	idPub := s.cfg.Identity.Public()

	transcript := cryptoutil.Hash([]byte(protoTag), hello,
		priv.PublicKey().Bytes(), serverNonce, idPub)
	sig := s.cfg.Identity.Sign(transcript[:])
	var evidence []byte
	if s.cfg.Evidence != nil {
		evidence, err = s.cfg.Evidence(transcript)
		if err != nil {
			return nil, nil, fmt.Errorf("server evidence: %w", err)
		}
	}
	resp := append(lv(priv.PublicKey().Bytes()), lv(serverNonce)...)
	resp = append(resp, lv(idPub)...)
	resp = append(resp, lv(sig)...)
	resp = append(resp, lv(evidence)...)

	shared, err := priv.ECDH(clientPub)
	if err != nil {
		return nil, nil, fmt.Errorf("ecdh: %w", ErrHandshake)
	}
	sess := deriveSession(shared, clientNonce, serverNonce, helloEpoch, false)
	return resp, &Pending{srv: s, transcript: transcript, sess: sess, epoch: helloEpoch}, nil
}

// notify reports a handshake outcome to the configured Events hook.
func notify(events func(kind, detail string), err error) {
	if events == nil {
		return
	}
	if err != nil {
		events("handshake-fail", err.Error())
		return
	}
	events("handshake-ok", "")
}

// Finish consumes the server's response, authenticates it, and returns the
// client session plus the third message (client → server).
func (c *Client) Finish(resp []byte) (*Session, []byte, error) {
	sess, finish, err := c.finish(resp)
	notify(c.cfg.Events, err)
	return sess, finish, err
}

func (c *Client) finish(resp []byte) (*Session, []byte, error) {
	fields, err := splitLV(resp, 5)
	if err != nil {
		return nil, nil, err
	}
	serverPub, err := ecdh.X25519().NewPublicKey(fields[0])
	if err != nil {
		return nil, nil, fmt.Errorf("server key: %w", ErrHandshake)
	}
	serverNonce, idPubRaw, sig, evidence := fields[1], fields[2], fields[3], fields[4]
	if len(idPubRaw) != ed25519.PublicKeySize {
		return nil, nil, fmt.Errorf("identity key size: %w", ErrHandshake)
	}
	idPub := ed25519.PublicKey(idPubRaw)
	transcript := cryptoutil.Hash([]byte(protoTag), c.hello,
		fields[0], serverNonce, idPubRaw)
	if !cryptoutil.Verify(idPub, transcript[:], sig) {
		return nil, nil, fmt.Errorf("server signature: %w", ErrHandshake)
	}
	if err := c.cfg.VerifyServer(idPub, transcript, evidence); err != nil {
		return nil, nil, fmt.Errorf("server rejected by policy: %w", err)
	}
	shared, err := c.priv.ECDH(serverPub)
	if err != nil {
		return nil, nil, fmt.Errorf("ecdh: %w", ErrHandshake)
	}
	sess := deriveSession(shared, c.nonce, serverNonce, c.cfg.ConfigEpoch, true)

	var clientEvidence []byte
	if c.cfg.Evidence != nil {
		clientEvidence, err = c.cfg.Evidence(transcript)
		if err != nil {
			return nil, nil, fmt.Errorf("client evidence: %w", err)
		}
	}
	// The finish message doubles as key confirmation: it is sealed under
	// the fresh session key.
	finish, err := sess.Seal(clientEvidence)
	if err != nil {
		return nil, nil, err
	}
	return sess, finish, nil
}

// Complete consumes the client's finish message, enforcing client
// attestation when the server demands it, and returns the server session.
func (p *Pending) Complete(finish []byte) (*Session, error) {
	sess, err := p.complete(finish)
	notify(p.srv.cfg.Events, err)
	return sess, err
}

func (p *Pending) complete(finish []byte) (*Session, error) {
	evidence, err := p.sess.Open(finish)
	if err != nil {
		return nil, fmt.Errorf("finish: %w", err)
	}
	if p.srv.cfg.VerifyClient != nil {
		if err := p.srv.cfg.VerifyClient(evidence, p.transcript); err != nil {
			return nil, fmt.Errorf("client rejected by policy: %w", err)
		}
	}
	return p.sess, nil
}

// Transcript returns the handshake transcript hash (for binding
// application data to the channel).
func (p *Pending) Transcript() [32]byte { return p.transcript }

// RatchetInterval is the number of records after which each direction's
// key is ratcheted forward automatically. Ratcheting is one-way (HKDF), so
// a key compromised later cannot decrypt earlier traffic — forward secrecy
// within the session, not just across sessions.
const RatchetInterval = 64

// Session is one direction-aware record channel endpoint.
//
// Sessions are not safe for unsynchronized concurrent use: callers that
// pipeline (internal/distributed) serialize Seal under a send lock and Open
// under a receive lock. The cached AEADs and scratch buffers below exist for
// that hot path — record sealing must not pay an AES key schedule, a
// fmt.Sprintf, or a SHA-256 per record.
type Session struct {
	initiator bool
	sendKey   []byte
	recvKey   []byte
	sendSeq   uint64
	recvSeq   uint64
	sendEpoch uint64
	recvEpoch uint64

	// Cached AEADs for the current epoch keys, rebuilt lazily after a
	// ratchet. recvAEAD always corresponds to recvKey — trial-ratchets that
	// fail to authenticate commit neither.
	sendAEAD cipher.AEAD
	recvAEAD cipher.AEAD

	// Cached 4-byte nonce prefixes (SHA-256 of the direction label); the
	// full nonce is prefix || big-endian seq, byte-identical to
	// cryptoutil.DeriveNonce.
	sendPrefix [4]byte
	recvPrefix [4]byte

	// Reusable scratch for the per-record associated data and nonce, one
	// per direction: pipelined stubs serialize sealing and opening under
	// different locks (the send mutex vs. the receive token), so the two
	// halves of a session run concurrently and must not share scratch.
	// The AD scratch is a slice, not a fixed array, because coalesced
	// records (SealToAD/OpenToAD) extend the AD with a caller header of up
	// to a few hundred bytes; the slice keeps its grown capacity so the
	// deep-pipeline path still allocates nothing after warmup.
	sendAD []byte
	recvAD []byte
	nonce  [cryptoutil.NonceSize]byte
}

// deriveSession derives the record keys. When cfgEpoch is non-zero the
// fleet config epoch is folded into the HKDF salt, so the same ECDH
// shared secret yields unrelated keys in different epochs — a session
// keyed before a rekey cannot produce records that authenticate after
// it. Epoch 0 keeps the derivation byte-identical to the pre-epoch wire.
func deriveSession(shared, clientNonce, serverNonce []byte, cfgEpoch uint64, initiator bool) *Session {
	salt := append(append([]byte(nil), clientNonce...), serverNonce...)
	if cfgEpoch > 0 {
		var e [epochLen]byte
		binary.BigEndian.PutUint64(e[:], cfgEpoch)
		salt = append(salt, e[:]...)
	}
	keys := cryptoutil.HKDF(shared, salt, []byte("lateral-record-keys"), 2*cryptoutil.KeySize)
	c2s, s2c := keys[:cryptoutil.KeySize], keys[cryptoutil.KeySize:]
	s := &Session{initiator: initiator}
	if initiator {
		s.sendKey, s.recvKey = c2s, s2c
	} else {
		s.sendKey, s.recvKey = s2c, c2s
	}
	s.sendPrefix = noncePrefix(s.dir(true))
	s.recvPrefix = noncePrefix(s.dir(false))
	return s
}

// noncePrefix caches the context half of cryptoutil.DeriveNonce: the first
// four bytes of SHA-256(dir).
func noncePrefix(dir string) (p [4]byte) {
	d := cryptoutil.Hash([]byte(dir))
	copy(p[:], d[:4])
	return p
}

// appendAD encodes the per-record associated data "dir:seq" — byte-identical
// to the fmt.Sprintf("%s:%d", dir, seq) encoding earlier wire versions used
// (TestADEncodingMatchesLegacy pins the equivalence), without the
// formatting machinery or its allocations.
func appendAD(dst []byte, dir string, seq uint64) []byte {
	dst = append(dst, dir...)
	dst = append(dst, ':')
	return strconv.AppendUint(dst, seq, 10)
}

func (s *Session) dir(sending bool) string {
	if s.initiator == sending {
		return "c2s"
	}
	return "s2c"
}

// ratchet advances a key one epoch: k' = HKDF(k). The old key is
// overwritten; there is no way back.
func ratchet(key []byte, epoch uint64) []byte {
	var e [8]byte
	for i := 0; i < 8; i++ {
		e[7-i] = byte(epoch >> (8 * i))
	}
	return cryptoutil.HKDF(key, e[:], []byte("lateral-ratchet"), cryptoutil.KeySize)
}

// epochFor returns the ratchet epoch a sequence number belongs to.
func epochFor(seq uint64) uint64 {
	return (seq - 1) / RatchetInterval
}

// Seal encrypts one record with the next sequence number, ratcheting the
// send key at epoch boundaries.
func (s *Session) Seal(plaintext []byte) ([]byte, error) {
	return s.SealTo(nil, plaintext)
}

// SealTo is Seal with a caller-supplied destination: the record (8-byte
// big-endian sequence header, nonce, ciphertext) is appended to dst and the
// extended slice returned. With enough spare capacity in dst the record
// layer allocates nothing.
func (s *Session) SealTo(dst, plaintext []byte) ([]byte, error) {
	return s.SealToAD(dst, plaintext, nil)
}

// SealToAD is SealTo with extra associated data: the record authenticates
// extraAD in addition to the usual "dir:seq" binding without transmitting
// it, so the peer must present the identical bytes to OpenToAD or the open
// fails. Coalesced wire records bind their cleartext header (sub-frame
// count and every correlation ID) this way — a tampered header cannot
// survive the AEAD pass. An empty extraAD is byte-identical to SealTo.
func (s *Session) SealToAD(dst, plaintext, extraAD []byte) ([]byte, error) {
	s.sendSeq++
	seq := s.sendSeq
	for s.sendEpoch < epochFor(seq) {
		s.sendEpoch++
		s.sendKey = ratchet(s.sendKey, s.sendEpoch)
		s.sendAEAD = nil
	}
	if s.sendAEAD == nil {
		aead, err := cryptoutil.NewAEAD(s.sendKey)
		if err != nil {
			return nil, err
		}
		s.sendAEAD = aead
	}
	ad := appendAD(s.sendAD[:0], s.dir(true), seq)
	ad = append(ad, extraAD...)
	s.sendAD = ad[:0] // keep grown capacity for the next record
	copy(s.nonce[:4], s.sendPrefix[:])
	binary.BigEndian.PutUint64(s.nonce[4:], seq)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	dst = append(dst, hdr[:]...)
	return cryptoutil.SealTo(dst, s.sendAEAD, s.nonce[:], plaintext, ad), nil
}

// Open decrypts one record, enforcing strictly increasing sequence
// numbers: replays and reordering are rejected.
func (s *Session) Open(record []byte) ([]byte, error) {
	return s.OpenTo(nil, record)
}

// OpenTo is Open with a caller-supplied destination: the plaintext is
// appended to dst and the extended slice returned.
func (s *Session) OpenTo(dst, record []byte) ([]byte, error) {
	return s.OpenToAD(dst, record, nil)
}

// OpenToAD is OpenTo with extra associated data, the receiving half of
// SealToAD: the open succeeds only if extraAD matches the bytes the sender
// bound. An empty extraAD is byte-identical to OpenTo.
func (s *Session) OpenToAD(dst, record, extraAD []byte) ([]byte, error) {
	if len(record) < 8 {
		return nil, fmt.Errorf("short record: %w", ErrHandshake)
	}
	seq := binary.BigEndian.Uint64(record[:8])
	if seq <= s.recvSeq {
		return nil, fmt.Errorf("sequence %d after %d: %w", seq, s.recvSeq, ErrReplay)
	}
	// Trial-ratchet to the record's epoch WITHOUT committing: a forged
	// record claiming a far-future sequence must not advance (and thereby
	// destroy) the receive key. maxEpochSkip caps the attacker-driven work.
	const maxEpochSkip = 1 << 14
	key, epoch, aead := s.recvKey, s.recvEpoch, s.recvAEAD
	target := epochFor(seq)
	if target > epoch+maxEpochSkip {
		return nil, fmt.Errorf("sequence %d skips %d epochs: %w", seq, target-epoch, ErrReplay)
	}
	for epoch < target {
		epoch++
		key = ratchet(key, epoch)
		aead = nil
	}
	if aead == nil {
		a, err := cryptoutil.NewAEAD(key)
		if err != nil {
			return nil, err
		}
		aead = a
	}
	ad := appendAD(s.recvAD[:0], s.dir(false), seq)
	ad = append(ad, extraAD...)
	s.recvAD = ad[:0] // keep grown capacity for the next record
	pt, err := cryptoutil.OpenTo(dst, aead, record[8:], ad)
	if err != nil {
		return nil, err
	}
	s.recvKey, s.recvEpoch, s.recvSeq, s.recvAEAD = key, epoch, seq, aead
	return pt, nil
}
