package securechan_test

import (
	"crypto/ed25519"
	"fmt"

	"lateral/internal/cryptoutil"
	"lateral/internal/securechan"
)

// Example runs the three-flight attested handshake and exchanges one
// record in each direction. In a deployment the three messages travel over
// netsim (or a real network); here they are passed by hand.
func Example() {
	serverIdentity := cryptoutil.NewSigner("example-server")

	client, err := securechan.NewClient(securechan.ClientConfig{
		Rand: cryptoutil.NewPRNG("client"),
		VerifyServer: func(pub ed25519.PublicKey, _ [32]byte, _ []byte) error {
			if string(pub) != string(serverIdentity.Public()) {
				return securechan.ErrHandshake
			}
			return nil
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	server, err := securechan.NewServer(securechan.ServerConfig{
		Rand:     cryptoutil.NewPRNG("server"),
		Identity: serverIdentity,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// Flight 1: client → server. Flight 2: server → client.
	resp, pending, err := server.Respond(client.Hello())
	if err != nil {
		fmt.Println(err)
		return
	}
	clientSess, finish, err := client.Finish(resp)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Flight 3: client → server (key confirmation + optional evidence).
	serverSess, err := pending.Complete(finish)
	if err != nil {
		fmt.Println(err)
		return
	}

	rec, _ := clientSess.Seal([]byte("meter reading: 42 kWh"))
	pt, _ := serverSess.Open(rec)
	fmt.Println(string(pt))

	ack, _ := serverSess.Seal([]byte("billed"))
	pt, _ = clientSess.Open(ack)
	fmt.Println(string(pt))
	// Output:
	// meter reading: 42 kWh
	// billed
}
