package securechan

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"testing"

	"lateral/internal/core"
	"lateral/internal/cryptoutil"
	"lateral/internal/netsim"
)

// pinVerify pins the server's identity key.
func pinVerify(want ed25519.PublicKey) func(ed25519.PublicKey, [32]byte, []byte) error {
	return func(got ed25519.PublicKey, _ [32]byte, _ []byte) error {
		if !bytes.Equal(got, want) {
			return fmt.Errorf("unexpected server key: %w", ErrHandshake)
		}
		return nil
	}
}

// handshake runs a full 3-message handshake in memory.
func handshake(t *testing.T, ccfg ClientConfig, scfg ServerConfig) (*Session, *Session, error) {
	t.Helper()
	client, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, pending, err := server.Respond(client.Hello())
	if err != nil {
		return nil, nil, err
	}
	cs, finish, err := client.Finish(resp)
	if err != nil {
		return nil, nil, err
	}
	ss, err := pending.Complete(finish)
	if err != nil {
		return nil, nil, err
	}
	return cs, ss, nil
}

func TestHandshakeAndRecords(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	cs, ss, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	// Client → server.
	rec, err := cs.Seal([]byte("reading: 42kWh"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ss.Open(rec)
	if err != nil || string(got) != "reading: 42kWh" {
		t.Fatalf("open = %q, %v", got, err)
	}
	// Server → client.
	rec2, err := ss.Seal([]byte("price: 0.31"))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := cs.Open(rec2)
	if err != nil || string(got2) != "price: 0.31" {
		t.Fatalf("open = %q, %v", got2, err)
	}
}

func TestHelloShaped(t *testing.T) {
	client, err := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !HelloShaped(client.Hello()) {
		t.Error("genuine hello not recognized")
	}
	id := cryptoutil.NewSigner("server-id")
	cs, _, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("c2"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cs.Seal([]byte("reading: 42kWh"))
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"sealed record":   rec,
		"empty":           nil,
		"garbage":         []byte("neither record nor hello"),
		"truncated hello": client.Hello()[:10],
		"padded hello":    append(client.Hello(), 0),
	} {
		if HelloShaped(b) {
			t.Errorf("%s passes the hello shape check", name)
		}
	}
}

func TestWrongServerKeyRejected(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	other := cryptoutil.NewSigner("other-id")
	_, _, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(other.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	if !errors.Is(err, ErrHandshake) {
		t.Errorf("wrong pinned key: got %v", err)
	}
}

func TestMITMCannotSpliceChannels(t *testing.T) {
	// Mallory intercepts the ClientHello and answers with her own
	// identity; the client's pin check catches it. Then she tries to
	// forward the REAL server's response unchanged — which still works
	// only if she does not modify anything, in which case she learns
	// nothing (she lacks both ephemeral private keys).
	id := cryptoutil.NewSigner("server-id")
	mallory := cryptoutil.NewSigner("mallory")
	client, err := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())})
	if err != nil {
		t.Fatal(err)
	}
	// Mallory's forged response.
	mserver, _ := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("m"), Identity: mallory})
	forged, _, err := mserver.Respond(client.Hello())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Finish(forged); !errors.Is(err, ErrHandshake) {
		t.Errorf("MITM identity accepted: got %v", err)
	}
}

func TestTamperedResponseRejected(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	client, _ := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())})
	server, _ := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	resp, _, err := server.Respond(client.Hello())
	if err != nil {
		t.Fatal(err)
	}
	resp[len(resp)-1] ^= 1
	if _, _, err := client.Finish(resp); err == nil {
		t.Error("tampered response accepted")
	}
}

func TestRecordReplayAndReorderRejected(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	cs, ss, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := cs.Seal([]byte("one"))
	r2, _ := cs.Seal([]byte("two"))
	if _, err := ss.Open(r2); err != nil {
		t.Fatal(err)
	}
	// Replay of r2 and late delivery of r1 must both fail.
	if _, err := ss.Open(r2); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: got %v", err)
	}
	if _, err := ss.Open(r1); !errors.Is(err, ErrReplay) {
		t.Errorf("reorder: got %v", err)
	}
	// Tampered record fails AEAD.
	r3, _ := cs.Seal([]byte("three"))
	r3[len(r3)-1] ^= 1
	if _, err := ss.Open(r3); !errors.Is(err, cryptoutil.ErrAuth) {
		t.Errorf("tampered record: got %v", err)
	}
	if _, err := ss.Open([]byte("short")); !errors.Is(err, ErrHandshake) {
		t.Errorf("short record: got %v", err)
	}
}

func TestServerAttestationEvidence(t *testing.T) {
	// The server attaches a quote bound to the transcript; the client
	// verifies it instead of pinning a key (the smart meter checking the
	// anonymizer's code identity).
	vendor := cryptoutil.NewSigner("intel")
	device := cryptoutil.NewSigner("server-cpu")
	cert := core.IssueVendorCert(vendor, device.Public())
	goodMeas := cryptoutil.Hash([]byte("anonymizer-v1"))
	id := cryptoutil.NewSigner("server-id")

	scfg := ServerConfig{
		Rand:     cryptoutil.NewPRNG("s"),
		Identity: id,
		Evidence: func(tr [32]byte) ([]byte, error) {
			return core.SignQuote("sgx-qe", goodMeas, tr[:], device, cert).Encode(), nil
		},
	}
	ccfg := ClientConfig{
		Rand: cryptoutil.NewPRNG("c"),
		VerifyServer: func(_ ed25519.PublicKey, tr [32]byte, evidence []byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), goodMeas)
		},
	}
	if _, _, err := handshake(t, ccfg, scfg); err != nil {
		t.Fatalf("attested handshake failed: %v", err)
	}
	// A tampered server binary (different measurement) is refused.
	evilMeas := cryptoutil.Hash([]byte("anonymizer-EVIL"))
	scfg.Evidence = func(tr [32]byte) ([]byte, error) {
		return core.SignQuote("sgx-qe", evilMeas, tr[:], device, cert).Encode(), nil
	}
	scfg.Rand = cryptoutil.NewPRNG("s2")
	ccfg.Rand = cryptoutil.NewPRNG("c2")
	if _, _, err := handshake(t, ccfg, scfg); err == nil {
		t.Error("tampered server evidence accepted")
	}
}

func TestClientAttestationRequired(t *testing.T) {
	// Password-less client auth: the server demands meter evidence.
	id := cryptoutil.NewSigner("server-id")
	vendor := cryptoutil.NewSigner("soc-vendor")
	meterDev := cryptoutil.NewSigner("meter-001")
	cert := core.IssueVendorCert(vendor, meterDev.Public())
	meterMeas := cryptoutil.Hash([]byte("meter-fw-v1"))

	scfg := ServerConfig{
		Rand:     cryptoutil.NewPRNG("s"),
		Identity: id,
		VerifyClient: func(evidence []byte, tr [32]byte) error {
			q, err := core.DecodeQuote(evidence)
			if err != nil {
				return err
			}
			return core.VerifyQuote(q, tr[:], vendor.Public(), meterMeas)
		},
	}
	good := ClientConfig{
		Rand:         cryptoutil.NewPRNG("c"),
		VerifyServer: pinVerify(id.Public()),
		Evidence: func(tr [32]byte) ([]byte, error) {
			return core.SignQuote("tz-rom", meterMeas, tr[:], meterDev, cert).Encode(), nil
		},
	}
	if _, _, err := handshake(t, good, scfg); err != nil {
		t.Fatalf("attested client rejected: %v", err)
	}
	// An emulator without the fused key cannot connect.
	imposter := cryptoutil.NewSigner("software-emulation")
	bad := ClientConfig{
		Rand:         cryptoutil.NewPRNG("c2"),
		VerifyServer: pinVerify(id.Public()),
		Evidence: func(tr [32]byte) ([]byte, error) {
			return core.SignQuote("tz-rom", meterMeas, tr[:], imposter,
				core.IssueVendorCert(imposter, imposter.Public())).Encode(), nil
		},
	}
	scfg.Rand = cryptoutil.NewPRNG("s2")
	if _, _, err := handshake(t, bad, scfg); err == nil {
		t.Error("emulated meter accepted")
	}
	// A client with NO evidence fails when the server demands it.
	none := ClientConfig{Rand: cryptoutil.NewPRNG("c3"), VerifyServer: pinVerify(id.Public())}
	scfg.Rand = cryptoutil.NewPRNG("s3")
	if _, _, err := handshake(t, none, scfg); err == nil {
		t.Error("evidence-less client accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); !errors.Is(err, ErrHandshake) {
		t.Errorf("empty client config: got %v", err)
	}
	if _, err := NewServer(ServerConfig{}); !errors.Is(err, ErrHandshake) {
		t.Errorf("empty server config: got %v", err)
	}
}

func TestMalformedHandshakeMessages(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	server, _ := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})
	if _, _, err := server.Respond([]byte{1, 2, 3}); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage hello: got %v", err)
	}
	client, _ := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())})
	if _, _, err := client.Finish([]byte{0}); !errors.Is(err, ErrHandshake) {
		t.Errorf("garbage response: got %v", err)
	}
	// Bad key length inside a well-formed LV structure.
	bad := append(lv([]byte("shortkey")), lv(make([]byte, nonceLen))...)
	if _, _, err := server.Respond(bad); !errors.Is(err, ErrHandshake) {
		t.Errorf("bad key: got %v", err)
	}
}

func TestEavesdropperLearnsNothingOverNetsim(t *testing.T) {
	// Full integration: handshake + records over the simulated network
	// with a passive recorder in path. The secret payload never appears
	// in the adversary's transcript.
	id := cryptoutil.NewSigner("server-id")
	net := netsim.New()
	rec := &netsim.Recorder{}
	net.SetAdversary(rec)
	cEP := net.Attach("meter")
	sEP := net.Attach("utility")

	client, _ := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public())})
	server, _ := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id})

	if err := cEP.Send("utility", client.Hello()); err != nil {
		t.Fatal(err)
	}
	d, _ := sEP.Recv()
	resp, pending, err := server.Respond(d.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := sEP.Send("meter", resp); err != nil {
		t.Fatal(err)
	}
	d, _ = cEP.Recv()
	cs, finish, err := client.Finish(d.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := cEP.Send("utility", finish); err != nil {
		t.Fatal(err)
	}
	d, _ = sEP.Recv()
	ss, err := pending.Complete(d.Payload)
	if err != nil {
		t.Fatal(err)
	}

	secret := []byte("READING-PRIVATE-9981")
	rec1, _ := cs.Seal(secret)
	if err := cEP.Send("utility", rec1); err != nil {
		t.Fatal(err)
	}
	d, _ = sEP.Recv()
	got, err := ss.Open(d.Payload)
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("open = %q, %v", got, err)
	}
	if rec.Saw(secret) {
		t.Error("eavesdropper saw plaintext reading")
	}
}

func TestRatchetAcrossEpochs(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	cs, ss, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("rc"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("rs"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	// Cross several ratchet boundaries; every record must round-trip.
	for i := 0; i < 3*RatchetInterval+5; i++ {
		msg := []byte(fmt.Sprintf("record-%d", i))
		rec, err := cs.Seal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ss.Open(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRatchetProvidesForwardSecrecyAcrossDrops(t *testing.T) {
	// Records can be lost; the receiver catches up across epochs when the
	// next one arrives.
	id := cryptoutil.NewSigner("server-id")
	cs, ss, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("fc"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("fs"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	var last []byte
	for i := 0; i < 2*RatchetInterval+3; i++ {
		last, err = cs.Seal([]byte("burst"))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Only the final record of the burst arrives.
	if _, err := ss.Open(last); err != nil {
		t.Fatalf("catch-up across epochs failed: %v", err)
	}
}

func TestForgedFutureSequenceDoesNotBrickSession(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	cs, ss, err := handshake(t,
		ClientConfig{Rand: cryptoutil.NewPRNG("bc"), VerifyServer: pinVerify(id.Public())},
		ServerConfig{Rand: cryptoutil.NewPRNG("bs"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	// Attacker forges a record claiming an absurd sequence number.
	forged := make([]byte, 8+40)
	forged[0] = 0xff // seq ≈ 2^63
	if _, err := ss.Open(forged); err == nil {
		t.Fatal("forged record accepted")
	}
	// A moderate forged skip (within the allowed window) also fails AEAD
	// and must not commit the trial ratchet.
	forged2 := make([]byte, 8+40)
	forged2[6] = 0x01 // seq = 256: a few epochs ahead
	if _, err := ss.Open(forged2); err == nil {
		t.Fatal("forged record accepted")
	}
	// The genuine stream still works afterwards.
	rec, err := cs.Seal([]byte("still alive"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ss.Open(rec)
	if err != nil || string(got) != "still alive" {
		t.Fatalf("session bricked by forged record: %q, %v", got, err)
	}
}

// TestADEncodingMatchesLegacy pins the append-based associated-data
// encoding to the fmt.Sprintf("%s:%d") form the record layer used before
// the zero-allocation rewrite. The AD is authenticated by every record's
// AEAD tag, so any divergence would break interop between old and new
// peers silently — sequence numbers near every base-10 digit-length
// boundary are the risk spots.
func TestADEncodingMatchesLegacy(t *testing.T) {
	seqs := []uint64{0, 1, 9, 10, 99, 100, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for _, dir := range []string{"c2s", "s2c"} {
		for _, seq := range seqs {
			got := appendAD(nil, dir, seq)
			want := fmt.Sprintf("%s:%d", dir, seq)
			if string(got) != want {
				t.Errorf("appendAD(%q, %d) = %q, want %q", dir, seq, got, want)
			}
		}
	}
}

// TestHelloEpochStamp pins the config-epoch wire extension: an epoch-0
// client emits the legacy 2-field hello (byte-identical pre-epoch wire),
// a non-zero epoch adds the 8-byte stamp, and HelloEpoch reads it back.
func TestHelloEpochStamp(t *testing.T) {
	legacy, err := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c0"), VerifyServer: pinVerify(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := HelloEpoch(legacy.Hello()); !ok || e != 0 {
		t.Fatalf("legacy hello epoch = %d, %v; want 0, true", e, ok)
	}
	stamped, err := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c7"), VerifyServer: pinVerify(nil), ConfigEpoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := HelloEpoch(stamped.Hello()); !ok || e != 7 {
		t.Fatalf("stamped hello epoch = %d, %v; want 7, true", e, ok)
	}
	if _, ok := HelloEpoch([]byte("not a hello")); ok {
		t.Fatal("garbage parsed as a hello")
	}
}

// TestEpochGateRefusesStaleHello: a server pinned to an epoch refuses
// hellos stamped with any other epoch — including legacy epoch-less ones
// — with the typed ErrEpoch, and the pending it does accept remembers
// the epoch the keys were derived at.
func TestEpochGateRefusesStaleHello(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	for _, stale := range []uint64{0, 2, 4} {
		_, _, err := handshake(t,
			ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public()), ConfigEpoch: stale},
			ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id, ConfigEpoch: 3})
		if !errors.Is(err, ErrEpoch) {
			t.Errorf("hello at epoch %d against gate 3 = %v, want ErrEpoch", stale, err)
		}
	}
	server, err := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("s"), Identity: id, ConfigEpoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{Rand: cryptoutil.NewPRNG("c"), VerifyServer: pinVerify(id.Public()), ConfigEpoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, pending, err := server.Respond(client.Hello())
	if err != nil {
		t.Fatalf("matching epoch refused: %v", err)
	}
	if got := pending.Epoch(); got != 3 {
		t.Fatalf("pending epoch = %d, want 3", got)
	}
	// An ungated server accepts a stamped hello and records the client's
	// epoch — the value session eviction keys on.
	open, err := NewServer(ServerConfig{Rand: cryptoutil.NewPRNG("s2"), Identity: id})
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := open.Respond(client.Hello())
	if err != nil {
		t.Fatalf("ungated server refused stamped hello: %v", err)
	}
	if got := p2.Epoch(); got != 3 {
		t.Fatalf("ungated pending epoch = %d, want 3 (the hello's stamp)", got)
	}
}

// TestEpochBoundKeysCannotCrossEpochs: sessions handshaken at different
// epochs from identical randomness derive unrelated record keys — the
// HKDF salt binds the epoch — so records sealed under one epoch's keys
// never authenticate under another's.
func TestEpochBoundKeysCannotCrossEpochs(t *testing.T) {
	id := cryptoutil.NewSigner("server-id")
	session := func(epoch uint64) (*Session, *Session) {
		// Identical PRNG seeds per epoch: same ECDH keys, same nonces —
		// the only difference between runs is the epoch in the salt.
		cs, ss, err := handshake(t,
			ClientConfig{Rand: cryptoutil.NewPRNG("c-fixed"), VerifyServer: pinVerify(id.Public()), ConfigEpoch: epoch},
			ServerConfig{Rand: cryptoutil.NewPRNG("s-fixed"), Identity: id, ConfigEpoch: epoch})
		if err != nil {
			t.Fatalf("handshake at epoch %d: %v", epoch, err)
		}
		return cs, ss
	}
	cs1, _ := session(1)
	_, ss2 := session(2)
	rec, err := cs1.Seal([]byte("reading"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss2.Open(rec); err == nil {
		t.Fatal("record sealed at epoch 1 opened by epoch-2 session")
	}
	// Same-epoch rerun still works, so the refusal above is the epoch.
	cs1b, ss1b := session(1)
	rec2, err := cs1b.Seal([]byte("reading"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss1b.Open(rec2); err != nil {
		t.Fatalf("same-epoch record refused: %v", err)
	}
}
