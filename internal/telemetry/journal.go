package telemetry

import (
	"sort"
	"sync"
)

// Journal metrics: per-journal counters for the fleet black box. The
// collector implements journal.Monitor structurally — journal declares
// the interface, telemetry never imports it — the same pattern as
// cluster.Monitor and distributed.Monitor.
//
// Events are counted per kind, so a dashboard distinguishes a deadline
// storm from a quarantine wave without parsing the journal itself;
// CheckpointSeq/CheckpointCounter expose the latest anchor, which an
// external prober can compare against the trusted counter; Dropped
// counts events refused by the journal's bound — any non-zero value
// means the black box is no longer complete and an audit will only cover
// the recorded prefix.

// JournalStats is one journal's live cell.
type JournalStats struct {
	Journal string

	Events            map[string]int64 // by kind
	Checkpoints       int64
	CheckpointSeq     uint64 // chain position of the latest checkpoint
	CheckpointCounter uint64 // trusted counter value it anchors to
	Dropped           int64
	FlightDumps       map[string]int64 // by trigger
}

type journalState struct {
	mu    sync.Mutex
	cells map[string]*JournalStats
}

// cell returns (creating if needed) the named journal's cell. Caller
// holds s.mu.
func (s *journalState) cell(name string) *JournalStats {
	if s.cells == nil {
		s.cells = make(map[string]*JournalStats)
	}
	js := s.cells[name]
	if js == nil {
		js = &JournalStats{
			Journal:     name,
			Events:      make(map[string]int64),
			FlightDumps: make(map[string]int64),
		}
		s.cells[name] = js
	}
	return js
}

// JournalEvent implements journal.Monitor: one appended entry, by kind.
func (m *Metrics) JournalEvent(journal, kind string) {
	m.journal.mu.Lock()
	defer m.journal.mu.Unlock()
	m.journal.cell(journal).Events[kind]++
}

// JournalCheckpoint implements journal.Monitor: one signed checkpoint.
func (m *Metrics) JournalCheckpoint(journal string, seq, counter uint64) {
	m.journal.mu.Lock()
	defer m.journal.mu.Unlock()
	js := m.journal.cell(journal)
	js.Checkpoints++
	js.CheckpointSeq = seq
	js.CheckpointCounter = counter
}

// JournalDropped implements journal.Monitor: one event refused by the
// journal's bound.
func (m *Metrics) JournalDropped(journal string) {
	m.journal.mu.Lock()
	defer m.journal.mu.Unlock()
	m.journal.cell(journal).Dropped++
}

// JournalFlightDump implements journal.Monitor: one anomaly-triggered
// flight dump, by trigger.
func (m *Metrics) JournalFlightDump(journal, trigger string) {
	m.journal.mu.Lock()
	defer m.journal.mu.Unlock()
	m.journal.cell(journal).FlightDumps[trigger]++
}

// JournalSummary is one journal's aggregate view.
type JournalSummary struct {
	Journal           string
	Events            int64            // total entries across kinds
	ByKind            map[string]int64 // copy, keyed by kind
	Checkpoints       int64
	CheckpointSeq     uint64
	CheckpointCounter uint64
	Dropped           int64
	FlightDumps       map[string]int64 // copy, keyed by trigger
}

// Journals returns per-journal summaries, sorted by journal name.
func (m *Metrics) Journals() []JournalSummary {
	m.journal.mu.Lock()
	defer m.journal.mu.Unlock()
	out := make([]JournalSummary, 0, len(m.journal.cells))
	for _, js := range m.journal.cells {
		s := JournalSummary{
			Journal:           js.Journal,
			ByKind:            make(map[string]int64, len(js.Events)),
			Checkpoints:       js.Checkpoints,
			CheckpointSeq:     js.CheckpointSeq,
			CheckpointCounter: js.CheckpointCounter,
			Dropped:           js.Dropped,
			FlightDumps:       make(map[string]int64, len(js.FlightDumps)),
		}
		for k, v := range js.Events {
			s.ByKind[k] = v
			s.Events += v
		}
		for k, v := range js.FlightDumps {
			s.FlightDumps[k] = v
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Journal < out[j].Journal })
	return out
}

// sortedKeys returns a map's keys in sorted order (deterministic
// exposition).
func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
