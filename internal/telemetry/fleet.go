package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Fleet metrics: per-replica gauges and counters for attested replica
// fleets (internal/cluster). The collector implements cluster.Monitor
// structurally — cluster declares the interface, telemetry never imports
// it — mirroring how Metrics implements netsim.Monitor.
//
// Gauges (healthy, quarantined, inflight) snapshot the pool's view of each
// replica; counters (calls, errors, retries, failovers) accumulate over
// the run. Together they let an operator watch a fleet degrade — healthy
// drops, failovers climb — and recover.

// FleetStats is one replica's live cell.
type FleetStats struct {
	Fleet   string
	Replica string

	Healthy     atomic.Int64 // gauge: 1 when admitted and passing health checks
	Quarantined atomic.Int64 // gauge: 1 when permanently expelled (attestation)
	Inflight    atomic.Int64 // gauge: calls currently outstanding
	Calls       atomic.Int64 // counter: calls dispatched to this replica
	Errors      atomic.Int64 // counter: calls that failed on this replica
	Retries     atomic.Int64 // counter: backoff retries charged to this replica
	Failovers   atomic.Int64 // counter: calls re-routed away from this replica
}

// fleetMu/fleet live beside Metrics' other maps but in their own file; the
// zero value of the embedded struct needs no initialization beyond the map.
type fleetState struct {
	mu    sync.RWMutex
	cells map[string]map[string]*FleetStats // fleet → replica
}

func (f *fleetState) cell(fleet, replica string) *FleetStats {
	f.mu.RLock()
	fs := f.cells[fleet][replica]
	f.mu.RUnlock()
	if fs != nil {
		return fs
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cells == nil {
		f.cells = make(map[string]map[string]*FleetStats)
	}
	byReplica := f.cells[fleet]
	if byReplica == nil {
		byReplica = make(map[string]*FleetStats)
		f.cells[fleet] = byReplica
	}
	if fs = byReplica[replica]; fs != nil {
		return fs
	}
	fs = &FleetStats{Fleet: fleet, Replica: replica}
	byReplica[replica] = fs
	return fs
}

// ReplicaState records a replica's admission state transition.
func (m *Metrics) ReplicaState(fleet, replica string, healthy, quarantined bool) {
	fs := m.fleet.cell(fleet, replica)
	fs.Healthy.Store(b2i(healthy))
	fs.Quarantined.Store(b2i(quarantined))
}

// ReplicaInflight adjusts a replica's outstanding-call gauge.
func (m *Metrics) ReplicaInflight(fleet, replica string, delta int) {
	m.fleet.cell(fleet, replica).Inflight.Add(int64(delta))
}

// ReplicaCall records one dispatched call and whether it failed.
func (m *Metrics) ReplicaCall(fleet, replica string, failed bool) {
	fs := m.fleet.cell(fleet, replica)
	fs.Calls.Add(1)
	if failed {
		fs.Errors.Add(1)
	}
}

// ReplicaRetry records one backoff retry charged to the replica whose
// failure caused it.
func (m *Metrics) ReplicaRetry(fleet, replica string) {
	m.fleet.cell(fleet, replica).Retries.Add(1)
}

// ReplicaFailover records one call re-routed away from the replica.
func (m *Metrics) ReplicaFailover(fleet, replica string) {
	m.fleet.cell(fleet, replica).Failovers.Add(1)
}

// ReplicaSummary is one replica's aggregate view.
type ReplicaSummary struct {
	Fleet, Replica string
	Healthy        bool
	Quarantined    bool
	Inflight       int64
	Calls          int64
	Errors         int64
	Retries        int64
	Failovers      int64
}

// Fleets returns per-replica summaries, sorted by (Fleet, Replica).
func (m *Metrics) Fleets() []ReplicaSummary {
	m.fleet.mu.RLock()
	var cells []*FleetStats
	for _, byReplica := range m.fleet.cells {
		for _, fs := range byReplica {
			cells = append(cells, fs)
		}
	}
	m.fleet.mu.RUnlock()
	out := make([]ReplicaSummary, 0, len(cells))
	for _, fs := range cells {
		out = append(out, ReplicaSummary{
			Fleet:       fs.Fleet,
			Replica:     fs.Replica,
			Healthy:     fs.Healthy.Load() != 0,
			Quarantined: fs.Quarantined.Load() != 0,
			Inflight:    fs.Inflight.Load(),
			Calls:       fs.Calls.Load(),
			Errors:      fs.Errors.Load(),
			Retries:     fs.Retries.Load(),
			Failovers:   fs.Failovers.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fleet != out[j].Fleet {
			return out[i].Fleet < out[j].Fleet
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
