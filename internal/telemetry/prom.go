package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double-quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// edgeLabel renders a channel edge as a single label value:
// "ui->net/net" for calls, "->ui/(deliver)" for external stimuli.
func edgeLabel(c ChannelSummary) string {
	return c.From + "->" + c.To + "/" + c.Channel
}

// WritePrometheus emits the collector's state in the Prometheus text
// exposition format (version 0.0.4): per-domain invocation/fault/asset
// counters, per-channel latency histograms (cumulative le buckets), and
// per-link wire traffic. Output ordering is deterministic.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	// Domain counters.
	domains := m.Domains()
	if _, err := fmt.Fprint(w,
		"# HELP lateral_domain_invocations_total Handler executions per protection domain.\n",
		"# TYPE lateral_domain_invocations_total counter\n"); err != nil {
		return err
	}
	for _, d := range domains {
		fmt.Fprintf(w, "lateral_domain_invocations_total{domain=%q,trusted=%q} %d\n",
			escapeLabel(d.Name), boolLabel(d.Trusted), d.Invocations)
	}
	fmt.Fprint(w,
		"# HELP lateral_domain_faults_total Handler executions that returned an error.\n",
		"# TYPE lateral_domain_faults_total counter\n")
	for _, d := range domains {
		fmt.Fprintf(w, "lateral_domain_faults_total{domain=%q} %d\n", escapeLabel(d.Name), d.Faults)
	}
	fmt.Fprint(w,
		"# HELP lateral_asset_ops_total Asset accesses in domain memory.\n",
		"# TYPE lateral_asset_ops_total counter\n")
	for _, d := range domains {
		fmt.Fprintf(w, "lateral_asset_ops_total{domain=%q,op=\"store\"} %d\n", escapeLabel(d.Name), d.AssetStores)
		fmt.Fprintf(w, "lateral_asset_ops_total{domain=%q,op=\"load\"} %d\n", escapeLabel(d.Name), d.AssetLoads)
	}
	fmt.Fprint(w,
		"# HELP lateral_asset_bytes_total Bytes moved to or from domain memory by asset accesses.\n",
		"# TYPE lateral_asset_bytes_total counter\n")
	for _, d := range domains {
		fmt.Fprintf(w, "lateral_asset_bytes_total{domain=%q} %d\n", escapeLabel(d.Name), d.AssetBytes)
	}

	// Per-channel latency histograms.
	fmt.Fprint(w,
		"# HELP lateral_channel_latency_seconds Cross-domain invocation latency per channel.\n",
		"# TYPE lateral_channel_latency_seconds histogram\n")
	chans := m.Channels()
	cells := m.channelCells()
	for _, c := range chans {
		cs := cells[edgeLabel(c)]
		if cs == nil {
			continue
		}
		snap := cs.Hist.Snapshot()
		label := escapeLabel(edgeLabel(c))
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "lateral_channel_latency_seconds_bucket{channel=%q,le=\"%g\"} %d\n",
				label, float64(b.BoundNs)/1e9, cum)
		}
		fmt.Fprintf(w, "lateral_channel_latency_seconds_bucket{channel=%q,le=\"+Inf\"} %d\n", label, snap.Count)
		fmt.Fprintf(w, "lateral_channel_latency_seconds_sum{channel=%q} %g\n", label, float64(snap.SumNs)/1e9)
		fmt.Fprintf(w, "lateral_channel_latency_seconds_count{channel=%q} %d\n", label, snap.Count)
	}
	fmt.Fprint(w,
		"# HELP lateral_channel_errors_total Invocations that returned an error, per channel.\n",
		"# TYPE lateral_channel_errors_total counter\n")
	for _, c := range chans {
		fmt.Fprintf(w, "lateral_channel_errors_total{channel=%q} %d\n", escapeLabel(edgeLabel(c)), c.Errors)
	}

	// Budget failures. Subsets of errors_total, broken out so operators
	// can alert on stalls and shedding before the generic error rate moves.
	fmt.Fprint(w,
		"# HELP lateral_call_timeouts_total Invocations abandoned at their deadline, per channel.\n",
		"# TYPE lateral_call_timeouts_total counter\n")
	for _, c := range chans {
		fmt.Fprintf(w, "lateral_call_timeouts_total{channel=%q} %d\n", escapeLabel(edgeLabel(c)), c.Timeouts)
	}
	fmt.Fprint(w,
		"# HELP lateral_call_cancellations_total Invocations abandoned because the caller went away, per channel.\n",
		"# TYPE lateral_call_cancellations_total counter\n")
	for _, c := range chans {
		fmt.Fprintf(w, "lateral_call_cancellations_total{channel=%q} %d\n", escapeLabel(edgeLabel(c)), c.Cancels)
	}
	fmt.Fprint(w,
		"# HELP lateral_call_overloads_total Invocations shed by the target's admission queue, per channel.\n",
		"# TYPE lateral_call_overloads_total counter\n")
	for _, c := range chans {
		fmt.Fprintf(w, "lateral_call_overloads_total{channel=%q} %d\n", escapeLabel(edgeLabel(c)), c.Overloads)
	}

	// Wire traffic.
	links := m.Links()
	fmt.Fprint(w,
		"# HELP lateral_net_datagrams_total Datagrams offered on the simulated network, per directed link.\n",
		"# TYPE lateral_net_datagrams_total counter\n")
	for _, l := range links {
		fmt.Fprintf(w, "lateral_net_datagrams_total{link=%q} %d\n",
			escapeLabel(l.From+"->"+l.To), l.Datagrams)
	}
	fmt.Fprint(w,
		"# HELP lateral_net_bytes_total Payload bytes offered on the simulated network, per directed link.\n",
		"# TYPE lateral_net_bytes_total counter\n")
	for _, l := range links {
		_, err := fmt.Fprintf(w, "lateral_net_bytes_total{link=%q} %d\n",
			escapeLabel(l.From+"->"+l.To), l.Bytes)
		if err != nil {
			return err
		}
	}

	// Stub pipelining. Emitted only when a stub actually reported — most
	// scenarios have no distributed edge and their exposition stays
	// unchanged.
	if stubs := m.Stubs(); len(stubs) > 0 {
		type stubCol struct {
			name, help, typ string
			val             func(StubSummary) int64
		}
		scols := []stubCol{
			{"lateral_stub_inflight", "Pipelined calls currently awaiting replies on the stub's session.", "gauge",
				func(s StubSummary) int64 { return s.Inflight }},
			{"lateral_stub_pipeline_depth_max", "High-water mark of concurrent in-flight calls on the stub.", "gauge",
				func(s StubSummary) int64 { return s.DepthMax }},
			{"lateral_stub_calls_total", "Calls issued over the stub's attested session.", "counter",
				func(s StubSummary) int64 { return s.Calls }},
			{"lateral_stub_pipeline_depth_sum", "Sum of pipeline depth observed at each call's issue (divide by calls for the mean).", "counter",
				func(s StubSummary) int64 { return s.DepthSum }},
			{"lateral_stub_orphan_replies_total", "Replies dropped because no caller was parked on their correlation ID.", "counter",
				func(s StubSummary) int64 { return s.Orphans }},
		}
		for _, c := range scols {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
			for _, s := range stubs {
				_, err := fmt.Fprintf(w, "%s{stub=%q} %d\n", c.name, escapeLabel(s.Stub), c.val(s))
				if err != nil {
					return err
				}
			}
		}

		// Coalescing. Emitted only when some stub coalesced (or its window
		// controller adapted): purely sequential workloads keep their
		// exposition byte-identical.
		coalesced := false
		for _, s := range stubs {
			if s.CoalRecords > 0 || s.CoalWindow > 0 {
				coalesced = true
				break
			}
		}
		if coalesced {
			ccols := []stubCol{
				{"lateral_stub_coalesce_records_total", "Coalesced records sealed (two or more sub-frames sharing one AEAD pass).", "counter",
					func(s StubSummary) int64 { return s.CoalRecords }},
				{"lateral_stub_coalesce_subframes_total", "Sub-frames carried by coalesced records.", "counter",
					func(s StubSummary) int64 { return s.CoalSubs }},
				{"lateral_stub_coalesce_saved_total", "AEAD passes saved by coalescing (sub-frames minus records).", "counter",
					func(s StubSummary) int64 { return s.CoalSubs - s.CoalRecords }},
				{"lateral_stub_coalesce_window", "Adaptive coalescing window chosen by the AIMD controller.", "gauge",
					func(s StubSummary) int64 { return s.CoalWindow }},
			}
			for _, c := range ccols {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
				for _, s := range stubs {
					_, err := fmt.Fprintf(w, "%s{stub=%q} %d\n", c.name, escapeLabel(s.Stub), c.val(s))
					if err != nil {
						return err
					}
				}
			}
		}
	}

	// Journal (fleet black box). Emitted only when a journal reported —
	// unjournaled runs keep their exposition byte-identical.
	if journals := m.Journals(); len(journals) > 0 {
		fmt.Fprint(w,
			"# HELP lateral_journal_events_total Entries appended to the hash-chained event journal, per kind.\n",
			"# TYPE lateral_journal_events_total counter\n")
		for _, j := range journals {
			for _, kind := range sortedKeys(j.ByKind) {
				fmt.Fprintf(w, "lateral_journal_events_total{journal=%q,kind=%q} %d\n",
					escapeLabel(j.Journal), escapeLabel(kind), j.ByKind[kind])
			}
		}
		fmt.Fprint(w,
			"# HELP lateral_journal_checkpoints_total Signed checkpoints anchoring the chain head to the trusted counter.\n",
			"# TYPE lateral_journal_checkpoints_total counter\n")
		for _, j := range journals {
			fmt.Fprintf(w, "lateral_journal_checkpoints_total{journal=%q} %d\n", escapeLabel(j.Journal), j.Checkpoints)
		}
		fmt.Fprint(w,
			"# HELP lateral_journal_checkpoint_seq Chain position covered by the latest signed checkpoint.\n",
			"# TYPE lateral_journal_checkpoint_seq gauge\n")
		for _, j := range journals {
			fmt.Fprintf(w, "lateral_journal_checkpoint_seq{journal=%q} %d\n", escapeLabel(j.Journal), j.CheckpointSeq)
		}
		fmt.Fprint(w,
			"# HELP lateral_journal_checkpoint_counter Trusted monotonic counter value the latest checkpoint anchors to.\n",
			"# TYPE lateral_journal_checkpoint_counter gauge\n")
		for _, j := range journals {
			fmt.Fprintf(w, "lateral_journal_checkpoint_counter{journal=%q} %d\n", escapeLabel(j.Journal), j.CheckpointCounter)
		}
		fmt.Fprint(w,
			"# HELP lateral_journal_dropped_total Events refused because the journal bound was reached (non-zero = incomplete black box).\n",
			"# TYPE lateral_journal_dropped_total counter\n")
		for _, j := range journals {
			fmt.Fprintf(w, "lateral_journal_dropped_total{journal=%q} %d\n", escapeLabel(j.Journal), j.Dropped)
		}
		fmt.Fprint(w,
			"# HELP lateral_journal_flight_dumps_total Anomaly-triggered flight-recorder dumps, per trigger.\n",
			"# TYPE lateral_journal_flight_dumps_total counter\n")
		for _, j := range journals {
			for _, trig := range sortedKeys(j.FlightDumps) {
				_, err := fmt.Fprintf(w, "lateral_journal_flight_dumps_total{journal=%q,trigger=%q} %d\n",
					escapeLabel(j.Journal), escapeLabel(trig), j.FlightDumps[trig])
				if err != nil {
					return err
				}
			}
		}
	}

	// Policy engines. Emitted only when an engine reported a decision —
	// unpoliced runs keep their exposition byte-identical.
	if policies := m.Policies(); len(policies) > 0 {
		fmt.Fprint(w,
			"# HELP lateral_policy_decisions_total Chain-aware policy verdicts, per effect.\n",
			"# TYPE lateral_policy_decisions_total counter\n")
		for _, p := range policies {
			for _, effect := range sortedKeys(p.Decisions) {
				fmt.Fprintf(w, "lateral_policy_decisions_total{engine=%q,effect=%q} %d\n",
					escapeLabel(p.Engine), escapeLabel(effect), p.Decisions[effect])
			}
		}
		fmt.Fprint(w,
			"# HELP lateral_policy_rule_hits_total Policy verdicts per matched rule; \"(default)\" is the implicit allow.\n",
			"# TYPE lateral_policy_rule_hits_total counter\n")
		for _, p := range policies {
			for _, rule := range sortedKeys(p.RuleHits) {
				fmt.Fprintf(w, "lateral_policy_rule_hits_total{engine=%q,rule=%q} %d\n",
					escapeLabel(p.Engine), escapeLabel(rule), p.RuleHits[rule])
			}
		}
		fmt.Fprint(w,
			"# HELP lateral_policy_grants_total Approval-grant lifecycle events (mint, reuse, expire).\n",
			"# TYPE lateral_policy_grants_total counter\n")
		for _, p := range policies {
			for _, event := range sortedKeys(p.Grants) {
				_, err := fmt.Fprintf(w, "lateral_policy_grants_total{engine=%q,event=%q} %d\n",
					escapeLabel(p.Engine), escapeLabel(event), p.Grants[event])
				if err != nil {
					return err
				}
			}
		}
	}

	// Config epochs. Emitted only once a fleet has completed a membership
	// transition — static fleets keep their exposition byte-identical.
	if epochs := m.Epochs(); len(epochs) > 0 {
		fmt.Fprint(w,
			"# HELP lateral_epoch_number Active fleet config epoch.\n",
			"# TYPE lateral_epoch_number gauge\n")
		for _, e := range epochs {
			fmt.Fprintf(w, "lateral_epoch_number{fleet=%q} %d\n", escapeLabel(e.Fleet), e.Epoch)
		}
		fmt.Fprint(w,
			"# HELP lateral_epoch_transitions_total Config-epoch transitions completed (join/leave).\n",
			"# TYPE lateral_epoch_transitions_total counter\n")
		for _, e := range epochs {
			fmt.Fprintf(w, "lateral_epoch_transitions_total{fleet=%q} %d\n", escapeLabel(e.Fleet), e.Transitions)
		}
		fmt.Fprint(w,
			"# HELP lateral_epoch_rekeys_total Member session rekeys across epoch transitions, by outcome.\n",
			"# TYPE lateral_epoch_rekeys_total counter\n")
		for _, e := range epochs {
			_, err := fmt.Fprintf(w, "lateral_epoch_rekeys_total{fleet=%q,outcome=\"ok\"} %d\nlateral_epoch_rekeys_total{fleet=%q,outcome=\"fail\"} %d\n",
				escapeLabel(e.Fleet), e.Rekeys, escapeLabel(e.Fleet), e.RekeyFails)
			if err != nil {
				return err
			}
		}
	}

	// Shard fabrics. Emitted only once a shard router reports.
	if fabrics := m.ShardFabrics(); len(fabrics) > 0 {
		fmt.Fprint(w,
			"# HELP lateral_shard_epoch Active shard-map epoch.\n",
			"# TYPE lateral_shard_epoch gauge\n")
		for _, f := range fabrics {
			fmt.Fprintf(w, "lateral_shard_epoch{fleet=%q} %d\n", escapeLabel(f.Fleet), f.Epoch)
		}
		fmt.Fprint(w,
			"# HELP lateral_shard_count Shards currently mapped in the fabric.\n",
			"# TYPE lateral_shard_count gauge\n")
		for _, f := range fabrics {
			fmt.Fprintf(w, "lateral_shard_count{fleet=%q} %d\n", escapeLabel(f.Fleet), f.Shards)
		}
		fmt.Fprint(w,
			"# HELP lateral_shard_rebalances_total Shard-map transitions (join/leave) completed.\n",
			"# TYPE lateral_shard_rebalances_total counter\n")
		for _, f := range fabrics {
			fmt.Fprintf(w, "lateral_shard_rebalances_total{fleet=%q} %d\n", escapeLabel(f.Fleet), f.Rebalances)
		}
		fmt.Fprint(w,
			"# HELP lateral_shard_readings_routed_total Readings routed through the shard map.\n",
			"# TYPE lateral_shard_readings_routed_total counter\n")
		for _, f := range fabrics {
			fmt.Fprintf(w, "lateral_shard_readings_routed_total{fleet=%q} %d\n", escapeLabel(f.Fleet), f.Routed)
		}
		fmt.Fprint(w,
			"# HELP lateral_shard_batches_total Batched dispatches and the readings they carried.\n",
			"# TYPE lateral_shard_batches_total counter\n")
		for _, f := range fabrics {
			fmt.Fprintf(w, "lateral_shard_batches_total{fleet=%q,unit=\"frames\"} %d\nlateral_shard_batches_total{fleet=%q,unit=\"readings\"} %d\n",
				escapeLabel(f.Fleet), f.Batches, escapeLabel(f.Fleet), f.BatchedIn)
		}
		fmt.Fprint(w,
			"# HELP lateral_shard_quota_denies_total Tenant admissions refused at the per-tenant quota.\n",
			"# TYPE lateral_shard_quota_denies_total counter\n")
		for _, f := range fabrics {
			_, err := fmt.Fprintf(w, "lateral_shard_quota_denies_total{fleet=%q} %d\n", escapeLabel(f.Fleet), f.QuotaDenies)
			if err != nil {
				return err
			}
		}
	}

	// Replica fleets.
	fleets := m.Fleets()
	if len(fleets) == 0 {
		return nil
	}
	type fleetCol struct {
		name, help, typ string
		val             func(ReplicaSummary) int64
	}
	cols := []fleetCol{
		{"lateral_cluster_replica_healthy", "Replica admitted and passing health checks (1) or not (0).", "gauge",
			func(r ReplicaSummary) int64 { return b2i(r.Healthy) }},
		{"lateral_cluster_replica_quarantined", "Replica permanently expelled after failed attestation (1) or not (0).", "gauge",
			func(r ReplicaSummary) int64 { return b2i(r.Quarantined) }},
		{"lateral_cluster_replica_inflight", "Calls currently outstanding against the replica.", "gauge",
			func(r ReplicaSummary) int64 { return r.Inflight }},
		{"lateral_cluster_replica_calls_total", "Calls dispatched to the replica.", "counter",
			func(r ReplicaSummary) int64 { return r.Calls }},
		{"lateral_cluster_replica_errors_total", "Calls that failed on the replica.", "counter",
			func(r ReplicaSummary) int64 { return r.Errors }},
		{"lateral_cluster_replica_retries_total", "Backoff retries charged to the replica.", "counter",
			func(r ReplicaSummary) int64 { return r.Retries }},
		{"lateral_cluster_replica_failovers_total", "Calls re-routed away from the replica.", "counter",
			func(r ReplicaSummary) int64 { return r.Failovers }},
	}
	for _, c := range cols {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
		for _, r := range fleets {
			_, err := fmt.Fprintf(w, "%s{fleet=%q,replica=%q} %d\n",
				c.name, escapeLabel(r.Fleet), escapeLabel(r.Replica), c.val(r))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// channelCells returns the live stats cells keyed by edge label, so the
// exposition writer can reach raw histograms for the summaries it prints.
func (m *Metrics) channelCells() map[string]*ChannelStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]*ChannelStats)
	for _, bySender := range m.channels {
		for _, cs := range bySender {
			out[cs.From+"->"+cs.To+"/"+cs.Channel] = cs
		}
	}
	return out
}

// WriteSummary prints a human-readable per-channel latency table, sorted
// like Channels().
func (m *Metrics) WriteSummary(w io.Writer) {
	chans := m.Channels()
	fmt.Fprintf(w, "%-28s %8s %6s %6s %6s %6s %10s %10s %10s %10s\n",
		"channel", "count", "errs", "tmout", "cancel", "shed", "mean", "p50", "p99", "max")
	for _, c := range chans {
		fmt.Fprintf(w, "%-28s %8d %6d %6d %6d %6d %10s %10s %10s %10s\n",
			edgeLabel(c), c.Count, c.Errors, c.Timeouts, c.Cancels, c.Overloads,
			c.Mean, c.P50, c.P99, c.Max)
	}
	doms := m.Domains()
	if len(doms) > 0 {
		fmt.Fprintf(w, "\n%-16s %8s %7s %7s %7s %11s %8s\n",
			"domain", "invocs", "faults", "stores", "loads", "asset-bytes", "trusted")
		for _, d := range doms {
			fmt.Fprintf(w, "%-16s %8d %7d %7d %7d %11d %8s\n",
				d.Name, d.Invocations, d.Faults, d.AssetStores, d.AssetLoads, d.AssetBytes, boolLabel(d.Trusted))
		}
	}
	if stubs := m.Stubs(); len(stubs) > 0 {
		fmt.Fprintf(w, "\n%-16s %9s %10s %7s %11s %8s\n",
			"stub", "inflight", "depth-max", "calls", "mean-depth", "orphans")
		for _, s := range stubs {
			mean := float64(0)
			if s.Calls > 0 {
				mean = float64(s.DepthSum) / float64(s.Calls)
			}
			fmt.Fprintf(w, "%-16s %9d %10d %7d %11.2f %8d\n",
				s.Stub, s.Inflight, s.DepthMax, s.Calls, mean, s.Orphans)
		}
		coalesced := false
		for _, s := range stubs {
			if s.CoalRecords > 0 || s.CoalWindow > 0 {
				coalesced = true
				break
			}
		}
		if coalesced {
			fmt.Fprintf(w, "\n%-16s %9s %10s %11s %11s %7s\n",
				"stub", "coalesced", "subframes", "avg-window", "aead-saved", "window")
			for _, s := range stubs {
				avg := float64(0)
				if s.CoalRecords > 0 {
					avg = float64(s.CoalSubs) / float64(s.CoalRecords)
				}
				fmt.Fprintf(w, "%-16s %9d %10d %11.2f %11d %7d\n",
					s.Stub, s.CoalRecords, s.CoalSubs, avg, s.CoalSubs-s.CoalRecords, s.CoalWindow)
			}
		}
	}
	if journals := m.Journals(); len(journals) > 0 {
		fmt.Fprintf(w, "\n%-16s %7s %12s %9s %9s %8s %6s\n",
			"journal", "events", "checkpoints", "ckpt-seq", "ckpt-ctr", "dropped", "dumps")
		for _, j := range journals {
			var dumps int64
			for _, v := range j.FlightDumps {
				dumps += v
			}
			fmt.Fprintf(w, "%-16s %7d %12d %9d %9d %8d %6d\n",
				j.Journal, j.Events, j.Checkpoints, j.CheckpointSeq, j.CheckpointCounter, j.Dropped, dumps)
		}
	}
	if policies := m.Policies(); len(policies) > 0 {
		fmt.Fprintf(w, "\n%-16s %7s %7s %8s %6s %7s %8s\n",
			"policy", "allows", "denies", "approves", "mints", "reuses", "expires")
		for _, p := range policies {
			fmt.Fprintf(w, "%-16s %7d %7d %8d %6d %7d %8d\n",
				p.Engine, p.Decisions["allow"], p.Decisions["deny"], p.Decisions["approve"],
				p.Grants["mint"], p.Grants["reuse"], p.Grants["expire"])
		}
	}
	if epochs := m.Epochs(); len(epochs) > 0 {
		fmt.Fprintf(w, "\n%-16s %6s %12s %7s %11s %-24s\n",
			"fleet", "epoch", "transitions", "rekeys", "rekey-fails", "last-reason")
		for _, e := range epochs {
			fmt.Fprintf(w, "%-16s %6d %12d %7d %11d %-24s\n",
				e.Fleet, e.Epoch, e.Transitions, e.Rekeys, e.RekeyFails, e.LastReason)
		}
	}
	if fabrics := m.ShardFabrics(); len(fabrics) > 0 {
		fmt.Fprintf(w, "\n%-16s %6s %7s %11s %8s %8s %10s %7s\n",
			"fabric", "epoch", "shards", "rebalances", "routed", "batches", "batched-in", "denies")
		for _, f := range fabrics {
			fmt.Fprintf(w, "%-16s %6d %7d %11d %8d %8d %10d %7d\n",
				f.Fleet, f.Epoch, f.Shards, f.Rebalances, f.Routed, f.Batches, f.BatchedIn, f.QuotaDenies)
		}
	}
	fleets := m.Fleets()
	if len(fleets) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-24s %8s %12s %9s %7s %6s %8s %10s\n",
		"fleet/replica", "healthy", "quarantined", "inflight", "calls", "errs", "retries", "failovers")
	for _, r := range fleets {
		fmt.Fprintf(w, "%-24s %8s %12s %9d %7d %6d %8d %10d\n",
			r.Fleet+"/"+r.Replica, boolLabel(r.Healthy), boolLabel(r.Quarantined),
			r.Inflight, r.Calls, r.Errors, r.Retries, r.Failovers)
	}
}

func boolLabel(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
