package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram geometry: HDR-style fixed buckets. Values below subCount ns
// are recorded exactly; above that, each power-of-two octave is split into
// subCount linear sub-buckets, bounding the relative quantization error at
// 1/subCount (12.5%). The layout covers the full int64 nanosecond range
// with no allocation and no configuration.
const (
	histShards = 8 // independent counter banks to spread write contention
	subBits    = 3 // log2 sub-buckets per octave
	subCount   = 1 << subBits
	// Largest index bucketOf can produce: e=63 → (63-subBits+1)*subCount
	// + (subCount-1); size the array one past it.
	numBuckets = (63-subBits+1)*subCount + subCount
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
// Indices are monotone in the value.
func bucketOf(ns uint64) int {
	if ns < subCount {
		return int(ns)
	}
	e := bits.Len64(ns) - 1 // position of the leading bit, >= subBits
	sub := int((ns >> (uint(e) - subBits)) & (subCount - 1))
	return (e-subBits+1)*subCount + sub
}

// bucketBound returns the inclusive upper bound (in ns) of a bucket.
func bucketBound(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	e := idx/subCount + subBits - 1
	sub := uint64(idx % subCount)
	return 1<<uint(e) + (sub+1)<<(uint(e)-subBits) - 1
}

// histShard is one independent bank of counters. Writers pick a shard from
// a per-event hint, so concurrent recorders rarely contend on the same
// cache lines; readers merge all shards.
type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero value
// is ready to use.
type Histogram struct {
	shards [histShards]histShard
}

// Record adds one duration. hint selects the counter shard — pass anything
// that varies per event (a span ID works well); correctness does not
// depend on it, only write contention does.
func (h *Histogram) Record(d time.Duration, hint uint64) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	s := &h.shards[hint&(histShards-1)]
	s.buckets[bucketOf(ns)].Add(1)
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	BoundNs uint64 // inclusive upper bound
	Count   uint64
}

// Snapshot is a merged, immutable view of a histogram.
type Snapshot struct {
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets []Bucket // ascending by bound, non-empty buckets only
}

// Snapshot merges all shards. Concurrent recording may be torn across
// buckets by at most the number of in-flight events; totals are monotone.
func (h *Histogram) Snapshot() Snapshot {
	var merged [numBuckets]uint64
	var out Snapshot
	for i := range h.shards {
		s := &h.shards[i]
		out.Count += s.count.Load()
		out.SumNs += s.sum.Load()
		if m := s.max.Load(); m > out.MaxNs {
			out.MaxNs = m
		}
		for b := range s.buckets {
			merged[b] += s.buckets[b].Load()
		}
	}
	for b, c := range merged {
		if c != 0 {
			out.Buckets = append(out.Buckets, Bucket{BoundNs: bucketBound(b), Count: c})
		}
	}
	return out
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 <= q <= 1), in nanoseconds. Zero for an empty histogram.
func (s Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > rank {
			return b.BoundNs
		}
	}
	return s.MaxNs
}

// Mean returns the arithmetic mean in nanoseconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
