package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lateral/internal/core"
)

// record appends one finished span with explicit causality and timing.
func record(r *Recorder, trace, id, parent uint64, kind core.SpanKind, to string, startNs int64, d time.Duration) {
	r.SpanEnd(
		core.Span{Trace: trace, ID: id, Parent: parent},
		core.SpanInfo{Kind: kind, To: to, From: "src", Channel: "ch", Op: "op"},
		time.Unix(0, startNs), d, nil,
	)
}

func TestRecorderTrees(t *testing.T) {
	r := NewRecorder(0)
	// Out-of-order completion: children finish before parents.
	record(r, 7, 3, 2, core.SpanHandle, "b", 30, 5)
	record(r, 7, 2, 1, core.SpanCall, "b", 20, 10)
	record(r, 7, 1, 0, core.SpanDeliver, "a", 10, 30)
	// An orphan (parent never recorded) becomes its own root.
	record(r, 7, 9, 1000, core.SpanHandle, "lost", 40, 1)

	roots := r.Trees()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	if roots[0].ID != 1 || roots[1].ID != 9 {
		t.Fatalf("root order = %d, %d (want 1, 9 by start time)", roots[0].ID, roots[1].ID)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].ID != 2 {
		t.Fatalf("deliver child = %+v", roots[0].Children)
	}
	if len(roots[0].Children[0].Children) != 1 || roots[0].Children[0].Children[0].ID != 3 {
		t.Fatalf("call child = %+v", roots[0].Children[0].Children)
	}
}

func TestRecorderLimitAndReset(t *testing.T) {
	r := NewRecorder(2)
	for i := uint64(1); i <= 5; i++ {
		record(r, 1, i, 0, core.SpanHandle, "x", int64(i), 1)
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("kept %d spans, want 2", got)
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
	r.Reset()
	if len(r.Spans()) != 0 || r.Dropped() != 0 {
		t.Error("reset did not clear")
	}
}

func TestRecorderErrCaptured(t *testing.T) {
	r := NewRecorder(0)
	r.SpanEnd(core.Span{Trace: 1, ID: 1}, core.SpanInfo{Kind: core.SpanCall, To: "x"},
		time.Unix(0, 0), time.Microsecond, errors.New("refused"))
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Err != "refused" {
		t.Errorf("spans = %+v", spans)
	}
}

func TestWriteTreeRendersNesting(t *testing.T) {
	r := NewRecorder(0)
	record(r, 0xbeef, 1, 0, core.SpanDeliver, "ui", 10, 100)
	record(r, 0xbeef, 2, 1, core.SpanHandle, "ui", 20, 80)
	record(r, 0xbeef, 3, 2, core.SpanCall, "net", 30, 50)
	var buf bytes.Buffer
	WriteTree(&buf, r.Trees())
	out := buf.String()
	if !strings.Contains(out, "trace 0xbeef") {
		t.Errorf("missing trace header:\n%s", out)
	}
	// Three nesting levels: root at column 0, children indented with
	// box-drawing connectors.
	if !strings.Contains(out, "deliver →ui") ||
		!strings.Contains(out, "└─ handle ui") ||
		!strings.Contains(out, "   └─ call src→net") {
		t.Errorf("tree structure wrong:\n%s", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRecorder(0)
	record(r, 1, 1, 0, core.SpanDeliver, "ui", 10, 100)
	record(r, 1, 2, 1, core.SpanHandle, "ui", 20, 80)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Trees()); err != nil {
		t.Fatal(err)
	}
	var back []TraceNode
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0].ID != 1 || len(back[0].Children) != 1 {
		t.Errorf("round-trip = %+v", back)
	}
}

func TestWriteFlameSelfTime(t *testing.T) {
	r := NewRecorder(0)
	record(r, 1, 1, 0, core.SpanDeliver, "ui", 10, 100)
	record(r, 1, 2, 1, core.SpanHandle, "ui", 20, 80)
	var buf bytes.Buffer
	WriteFlame(&buf, r.Trees())
	out := buf.String()
	// Root self time = 100 - 80 = 20; leaf keeps its full 80.
	if !strings.Contains(out, "deliver:ui 20\n") {
		t.Errorf("root self time wrong:\n%s", out)
	}
	if !strings.Contains(out, "deliver:ui;handle:ui 80\n") {
		t.Errorf("leaf stack wrong:\n%s", out)
	}
}

func TestSpanRecordTimedOutFlag(t *testing.T) {
	r := NewRecorder(0)
	info := core.SpanInfo{Kind: core.SpanCall, Channel: "store", From: "gw", To: "store", Domain: "store"}
	r.SpanEnd(core.Span{Trace: 1, ID: 1}, info, time.Time{}, time.Millisecond,
		fmt.Errorf("abandoned: %w", core.ErrDeadline))
	r.SpanEnd(core.Span{Trace: 1, ID: 2}, info, time.Time{}, time.Millisecond,
		errors.New("ordinary failure"))
	r.SpanEnd(core.Span{Trace: 1, ID: 3}, info, time.Time{}, time.Millisecond, nil)
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	if !spans[0].TimedOut || spans[1].TimedOut || spans[2].TimedOut {
		t.Errorf("timed_out flags = %v %v %v, want true false false",
			spans[0].TimedOut, spans[1].TimedOut, spans[2].TimedOut)
	}
	b, _ := json.Marshal(spans[1])
	if strings.Contains(string(b), "timed_out") {
		t.Errorf("timed_out should be omitted when false: %s", b)
	}
}
