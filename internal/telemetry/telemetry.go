// Package telemetry is the observability layer over the core component
// runtime: it instruments the substrate-crossing hot path (invocation and
// reuse — the two communication edges of the paper's Fig. 2 cost model)
// and turns the firehose into per-channel latency histograms, per-domain
// counters, Prometheus text exposition, and causal trace trees.
//
// Two core.Tracer implementations cover the two consumption styles:
//
//   - Metrics — always-on aggregation. Lock-cheap sharded histogram
//     counters keep the traced hot path within a few percent of the
//     untraced one (see BenchmarkTracedInvocation).
//   - Recorder — bounded full-fidelity span capture for `lateralctl
//     trace`, reassembled into causal trees that follow a request through
//     every domain it crosses, machines included.
//
// Fanout composes them when both are wanted at once. The package never
// sees payload bytes: telemetry is the operator's view, which is exactly
// the distinction between core.Tracer and the adversary-facing
// core.Observer.
package telemetry

import (
	"time"

	"lateral/internal/core"
)

// multiTracer fans one event stream out to several tracers.
type multiTracer []core.Tracer

func (m multiTracer) SpanStart(sp core.Span, info core.SpanInfo, start time.Time) {
	for _, t := range m {
		t.SpanStart(sp, info, start)
	}
}

func (m multiTracer) SpanEnd(sp core.Span, info core.SpanInfo, start time.Time, elapsed time.Duration, err error) {
	for _, t := range m {
		t.SpanEnd(sp, info, start, elapsed, err)
	}
}

// Fanout composes tracers: every span event goes to each of them. Nil
// entries are skipped; Fanout() of nothing returns nil (tracing off), and
// a single survivor is returned undecorated.
func Fanout(tracers ...core.Tracer) core.Tracer {
	var live multiTracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}
