package telemetry

import (
	"errors"
	"sync"
	"time"

	"lateral/internal/core"
)

// SpanRecord is one completed span as the Recorder keeps it.
type SpanRecord struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`

	Kind    string `json:"kind"`
	Channel string `json:"channel,omitempty"`
	From    string `json:"from,omitempty"`
	To      string `json:"to"`
	Domain  string `json:"domain,omitempty"`
	Trusted bool   `json:"trusted,omitempty"`
	Op      string `json:"op,omitempty"`
	Bytes   int    `json:"bytes"`

	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
	TimedOut bool          `json:"timed_out,omitempty"` // err chains to core.ErrDeadline
}

// Recorder is a core.Tracer that keeps every completed span for offline
// inspection: causal trees, JSON dumps, and flame views. It is bounded;
// once full, further spans are counted but dropped.
//
// One Recorder may serve several systems at once (SetTracer the same
// instance everywhere): span IDs are globally unique, so traces that hop
// machines — through the distributed stub/exporter pair — reassemble into
// a single tree.
type Recorder struct {
	mu      sync.Mutex
	limit   int
	spans   []SpanRecord
	dropped int
}

// DefaultRecorderLimit bounds an unconfigured Recorder.
const DefaultRecorderLimit = 1 << 16

// NewRecorder returns a Recorder keeping at most limit spans (0 means
// DefaultRecorderLimit).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultRecorderLimit
	}
	return &Recorder{limit: limit}
}

var _ core.Tracer = (*Recorder)(nil)

// SpanStart is a no-op; the Recorder stores completed spans only.
func (r *Recorder) SpanStart(core.Span, core.SpanInfo, time.Time) {}

// SpanEnd records one completed span.
func (r *Recorder) SpanEnd(sp core.Span, info core.SpanInfo, start time.Time, elapsed time.Duration, err error) {
	rec := SpanRecord{
		Trace:    sp.Trace,
		ID:       sp.ID,
		Parent:   sp.Parent,
		Kind:     info.Kind.String(),
		Channel:  info.Channel,
		From:     info.From,
		To:       info.To,
		Domain:   info.Domain,
		Trusted:  info.Trusted,
		Op:       info.Op,
		Bytes:    info.Bytes,
		Start:    start,
		Duration: elapsed,
	}
	if err != nil {
		rec.Err = err.Error()
		rec.TimedOut = errors.Is(err, core.ErrDeadline)
	}
	r.mu.Lock()
	if len(r.spans) < r.limit {
		r.spans = append(r.spans, rec)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns a copy of all recorded spans, in completion order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped reports how many spans the bound discarded.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all recorded spans.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = nil
	r.dropped = 0
	r.mu.Unlock()
}
