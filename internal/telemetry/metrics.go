package telemetry

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lateral/internal/core"
)

// Metrics is the per-channel / per-domain metrics collector: a core.Tracer
// that aggregates every substrate crossing into latency histograms and
// counters, plus a netsim.Monitor aggregating wire traffic per link.
//
// The write path is lock-cheap: a read-locked two-level map lookup
// (allocation-free — no key strings are built per event) followed by
// sharded atomic counter updates. Only the first event on a new channel,
// domain, or link takes the write lock.
type Metrics struct {
	mu       sync.RWMutex
	channels map[string]map[string]*ChannelStats // sender → channel key
	domains  map[string]*DomainStats
	links    map[string]map[string]*LinkStats // from endpoint → to endpoint
	fleet    fleetState                       // replica-fleet gauges (fleet.go)
	epoch    epochState                       // config-epoch gauges (epoch.go)
	stub     stubState                        // stub pipelining gauges (stub.go)
	journal  journalState                     // fleet black-box counters (journal.go)
	policy   policyState                      // policy-engine counters (policy.go)
	shard    shardState                       // shard-fabric gauges (shard.go)
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		channels: make(map[string]map[string]*ChannelStats),
		domains:  make(map[string]*DomainStats),
		links:    make(map[string]map[string]*LinkStats),
	}
}

// ChannelStats aggregates one invocation edge. External Deliver stimuli
// are kept as their own edges with From "" and Channel "(deliver)".
type ChannelStats struct {
	From    string // sender component; "" for external stimuli
	Channel string // granted channel name; "(deliver)" for external
	To      string // target component
	Domain  string // target domain
	Trusted bool

	Hist   Histogram
	Errors atomic.Int64

	// Budget failures, counted separately from (and in addition to)
	// Errors: a timeout, cancellation, or shed call is an error too, but
	// operators alert on these three long before the generic error rate
	// moves.
	Timeouts  atomic.Int64 // core.ErrDeadline
	Cancels   atomic.Int64 // core.ErrCanceled
	Overloads atomic.Int64 // core.ErrOverloaded
}

// DomainStats aggregates per-domain handler executions and asset traffic.
type DomainStats struct {
	Name    string
	Trusted bool

	Invocations atomic.Int64 // handler executions inside the domain
	Faults      atomic.Int64 // handler executions that returned an error
	AssetStores atomic.Int64
	AssetLoads  atomic.Int64
	AssetBytes  atomic.Int64 // bytes moved to/from domain memory
}

// LinkStats aggregates netsim traffic on one directed endpoint pair.
type LinkStats struct {
	From, To  string
	Datagrams atomic.Int64
	Bytes     atomic.Int64
}

// DeliverChannel is the channel label used for external stimuli edges.
const DeliverChannel = "(deliver)"

var _ core.Tracer = (*Metrics)(nil)

// SpanStart is a no-op: all aggregation happens at span end, where the
// duration is known.
func (m *Metrics) SpanStart(core.Span, core.SpanInfo, time.Time) {}

// SpanEnd aggregates one completed span.
func (m *Metrics) SpanEnd(sp core.Span, info core.SpanInfo, _ time.Time, elapsed time.Duration, err error) {
	switch info.Kind {
	case core.SpanCall:
		cs := m.channel(info.From, info.Channel, info)
		cs.Hist.Record(elapsed, sp.ID)
		if err != nil {
			cs.Errors.Add(1)
			cs.noteBudgetErr(err)
		}
	case core.SpanDeliver:
		cs := m.channel(info.From, info.To, info)
		cs.Hist.Record(elapsed, sp.ID)
		if err != nil {
			cs.Errors.Add(1)
			cs.noteBudgetErr(err)
		}
	case core.SpanHandle:
		ds := m.domain(info)
		ds.Invocations.Add(1)
		if err != nil {
			ds.Faults.Add(1)
		}
	case core.SpanAssetStore:
		ds := m.domain(info)
		ds.AssetStores.Add(1)
		ds.AssetBytes.Add(int64(info.Bytes))
	case core.SpanAssetLoad:
		ds := m.domain(info)
		ds.AssetLoads.Add(1)
		ds.AssetBytes.Add(int64(info.Bytes))
	}
}

// noteBudgetErr classifies a span error into the budget-failure counters.
// Off the no-error fast path; errors.Is walks a short wrap chain.
func (cs *ChannelStats) noteBudgetErr(err error) {
	switch {
	case errors.Is(err, core.ErrDeadline):
		cs.Timeouts.Add(1)
	case errors.Is(err, core.ErrCanceled):
		cs.Cancels.Add(1)
	case errors.Is(err, core.ErrOverloaded):
		cs.Overloads.Add(1)
	}
}

// channel finds or creates the stats cell for an edge. The lookup keys are
// strings the caller already holds, so the hot path allocates nothing.
func (m *Metrics) channel(from, key string, info core.SpanInfo) *ChannelStats {
	m.mu.RLock()
	cs := m.channels[from][key]
	m.mu.RUnlock()
	if cs != nil {
		return cs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bySender := m.channels[from]
	if bySender == nil {
		bySender = make(map[string]*ChannelStats)
		m.channels[from] = bySender
	}
	if cs = bySender[key]; cs != nil {
		return cs
	}
	cs = &ChannelStats{
		From:    info.From,
		Channel: info.Channel,
		To:      info.To,
		Domain:  info.Domain,
		Trusted: info.Trusted,
	}
	if info.Kind == core.SpanDeliver {
		cs.Channel = DeliverChannel
	}
	bySender[key] = cs
	return cs
}

func (m *Metrics) domain(info core.SpanInfo) *DomainStats {
	m.mu.RLock()
	ds := m.domains[info.Domain]
	m.mu.RUnlock()
	if ds != nil {
		return ds
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ds = m.domains[info.Domain]; ds != nil {
		return ds
	}
	ds = &DomainStats{Name: info.Domain, Trusted: info.Trusted}
	m.domains[info.Domain] = ds
	return ds
}

// Datagram implements netsim.Monitor: it aggregates offered wire traffic
// per directed link.
func (m *Metrics) Datagram(from, to string, bytes int) {
	m.mu.RLock()
	ls := m.links[from][to]
	m.mu.RUnlock()
	if ls == nil {
		m.mu.Lock()
		byFrom := m.links[from]
		if byFrom == nil {
			byFrom = make(map[string]*LinkStats)
			m.links[from] = byFrom
		}
		if ls = byFrom[to]; ls == nil {
			ls = &LinkStats{From: from, To: to}
			byFrom[to] = ls
		}
		m.mu.Unlock()
	}
	ls.Datagrams.Add(1)
	ls.Bytes.Add(int64(bytes))
}

// ChannelSummary is one edge's aggregate view.
type ChannelSummary struct {
	From, Channel, To string
	Trusted           bool
	Count             uint64
	Errors            int64
	Timeouts          int64
	Cancels           int64
	Overloads         int64
	Mean              time.Duration
	P50, P90, P99     time.Duration
	Max               time.Duration
}

// Channels returns per-edge summaries, sorted by (From, Channel, To).
func (m *Metrics) Channels() []ChannelSummary {
	m.mu.RLock()
	var cells []*ChannelStats
	for _, bySender := range m.channels {
		for _, cs := range bySender {
			cells = append(cells, cs)
		}
	}
	m.mu.RUnlock()
	out := make([]ChannelSummary, 0, len(cells))
	for _, cs := range cells {
		snap := cs.Hist.Snapshot()
		out = append(out, ChannelSummary{
			From:      cs.From,
			Channel:   cs.Channel,
			To:        cs.To,
			Trusted:   cs.Trusted,
			Count:     snap.Count,
			Errors:    cs.Errors.Load(),
			Timeouts:  cs.Timeouts.Load(),
			Cancels:   cs.Cancels.Load(),
			Overloads: cs.Overloads.Load(),
			Mean:      time.Duration(snap.Mean()),
			P50:       time.Duration(snap.Quantile(0.50)),
			P90:       time.Duration(snap.Quantile(0.90)),
			P99:       time.Duration(snap.Quantile(0.99)),
			Max:       time.Duration(snap.MaxNs),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Channel != out[j].Channel {
			return out[i].Channel < out[j].Channel
		}
		return out[i].To < out[j].To
	})
	return out
}

// DomainSummary is one domain's aggregate view.
type DomainSummary struct {
	Name        string
	Trusted     bool
	Invocations int64
	Faults      int64
	AssetStores int64
	AssetLoads  int64
	AssetBytes  int64
}

// Domains returns per-domain summaries, sorted by name.
func (m *Metrics) Domains() []DomainSummary {
	m.mu.RLock()
	var cells []*DomainStats
	for _, ds := range m.domains {
		cells = append(cells, ds)
	}
	m.mu.RUnlock()
	out := make([]DomainSummary, 0, len(cells))
	for _, ds := range cells {
		out = append(out, DomainSummary{
			Name:        ds.Name,
			Trusted:     ds.Trusted,
			Invocations: ds.Invocations.Load(),
			Faults:      ds.Faults.Load(),
			AssetStores: ds.AssetStores.Load(),
			AssetLoads:  ds.AssetLoads.Load(),
			AssetBytes:  ds.AssetBytes.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LinkSummary is one wire link's aggregate view.
type LinkSummary struct {
	From, To  string
	Datagrams int64
	Bytes     int64
}

// Links returns per-link wire traffic, sorted by (From, To).
func (m *Metrics) Links() []LinkSummary {
	m.mu.RLock()
	var cells []*LinkStats
	for _, byFrom := range m.links {
		for _, ls := range byFrom {
			cells = append(cells, ls)
		}
	}
	m.mu.RUnlock()
	out := make([]LinkSummary, 0, len(cells))
	for _, ls := range cells {
		out = append(out, LinkSummary{From: ls.From, To: ls.To, Datagrams: ls.Datagrams.Load(), Bytes: ls.Bytes.Load()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
