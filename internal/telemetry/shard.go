package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Shard-fabric metrics: the million-client view of a sharded fleet. The
// collector implements shard.Monitor structurally, so processes without a
// shard router never touch this file and the lateral_shard_* families are
// emitted only once a fabric reports.

// ShardFabricStats is one shard fabric's live cell.
type ShardFabricStats struct {
	Fleet string

	Epoch       atomic.Uint64 // gauge: active shard-map epoch
	Shards      atomic.Int64  // gauge: shards currently mapped
	Rebalances  atomic.Int64  // counter: shard-map transitions (join/leave)
	Routed      atomic.Int64  // counter: readings routed through the map
	Batches     atomic.Int64  // counter: batched dispatches
	BatchedIn   atomic.Int64  // counter: readings carried inside batches
	QuotaDenies atomic.Int64  // counter: tenant admissions refused at quota
}

type shardState struct {
	mu    sync.RWMutex
	cells map[string]*ShardFabricStats // fleet
}

func (s *shardState) cell(fleet string) *ShardFabricStats {
	s.mu.RLock()
	ss := s.cells[fleet]
	s.mu.RUnlock()
	if ss != nil {
		return ss
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cells == nil {
		s.cells = make(map[string]*ShardFabricStats)
	}
	if ss = s.cells[fleet]; ss != nil {
		return ss
	}
	ss = &ShardFabricStats{Fleet: fleet}
	s.cells[fleet] = ss
	return ss
}

// ShardMembership records a shard-map transition (join or leave).
func (m *Metrics) ShardMembership(fleet string, epoch uint64, shards int) {
	ss := m.shard.cell(fleet)
	ss.Epoch.Store(epoch)
	ss.Shards.Store(int64(shards))
	ss.Rebalances.Add(1)
}

// ShardRoute records readings routed to a shard.
func (m *Metrics) ShardRoute(fleet, _ string, readings int) {
	m.shard.cell(fleet).Routed.Add(int64(readings))
}

// ShardBatch records one batched dispatch carrying readings.
func (m *Metrics) ShardBatch(fleet, _ string, readings int) {
	ss := m.shard.cell(fleet)
	ss.Batches.Add(1)
	ss.BatchedIn.Add(int64(readings))
}

// ShardQuotaDeny records a tenant refused at its admission quota.
func (m *Metrics) ShardQuotaDeny(fleet, _ string) {
	m.shard.cell(fleet).QuotaDenies.Add(1)
}

// ShardSummary is one shard fabric's aggregate view.
type ShardSummary struct {
	Fleet       string
	Epoch       uint64
	Shards      int64
	Rebalances  int64
	Routed      int64
	Batches     int64
	BatchedIn   int64
	QuotaDenies int64
}

// ShardFabrics returns per-fabric summaries, sorted by fleet. Empty until
// some router reports a membership transition or routes a reading.
func (m *Metrics) ShardFabrics() []ShardSummary {
	m.shard.mu.RLock()
	var cells []*ShardFabricStats
	for _, ss := range m.shard.cells {
		cells = append(cells, ss)
	}
	m.shard.mu.RUnlock()
	out := make([]ShardSummary, 0, len(cells))
	for _, ss := range cells {
		out = append(out, ShardSummary{
			Fleet:       ss.Fleet,
			Epoch:       ss.Epoch.Load(),
			Shards:      ss.Shards.Load(),
			Rebalances:  ss.Rebalances.Load(),
			Routed:      ss.Routed.Load(),
			Batches:     ss.Batches.Load(),
			BatchedIn:   ss.BatchedIn.Load(),
			QuotaDenies: ss.QuotaDenies.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fleet < out[j].Fleet })
	return out
}
