package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceNode is one span with its causal children, as assembled by Trees.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// Trees assembles the recorded spans into causal trees: one root per
// Deliver (or per span whose parent was never recorded — e.g. the remote
// half of a distributed trace when only one machine was recorded). Roots
// and children are ordered by start time, ties broken by span ID.
func (r *Recorder) Trees() []*TraceNode {
	spans := r.Spans()
	nodes := make(map[uint64]*TraceNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &TraceNode{SpanRecord: spans[i]}
	}
	var roots []*TraceNode
	for _, n := range nodes {
		if p := nodes[n.Parent]; n.Parent != 0 && p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func([]*TraceNode)
	sortNodes = func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].ID < ns[j].ID
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// label renders one span for the text tree.
func (n *TraceNode) label() string {
	var b strings.Builder
	switch n.Kind {
	case "call":
		fmt.Fprintf(&b, "call %s→%s via %q", n.From, n.To, n.Channel)
	case "deliver":
		fmt.Fprintf(&b, "deliver →%s", n.To)
	case "handle":
		fmt.Fprintf(&b, "handle %s [%s]", n.To, n.Domain)
	case "asset-store", "asset-load":
		fmt.Fprintf(&b, "%s %s/%s (%d B)", n.Kind, n.To, n.Op, n.Bytes)
	default:
		fmt.Fprintf(&b, "%s %s", n.Kind, n.To)
	}
	if n.Kind == "call" || n.Kind == "deliver" {
		fmt.Fprintf(&b, " op=%s (%d B)", n.Op, n.Bytes)
	}
	fmt.Fprintf(&b, "  %s", n.Duration)
	if n.Err != "" {
		fmt.Fprintf(&b, "  ERR=%s", n.Err)
	}
	return b.String()
}

// WriteTree renders the trees as an indented causal view with per-span
// durations — the human-readable trace dump.
func WriteTree(w io.Writer, roots []*TraceNode) {
	byTrace := map[uint64]bool{}
	for _, root := range roots {
		if !byTrace[root.Trace] {
			byTrace[root.Trace] = true
			fmt.Fprintf(w, "trace %#x\n", root.Trace)
		}
		writeNode(w, root, "", "")
	}
}

func writeNode(w io.Writer, n *TraceNode, prefix, childPrefix string) {
	fmt.Fprintf(w, "%s%s\n", prefix, n.label())
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			writeNode(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			writeNode(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// WriteJSON dumps the trees as a JSON document.
func WriteJSON(w io.Writer, roots []*TraceNode) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(roots)
}

// WriteFlame renders the trees in collapsed-stack format — one
// "frame;frame;frame duration_ns" line per span path, the input format of
// standard flamegraph tooling, readable standalone as a weighted call
// index.
func WriteFlame(w io.Writer, roots []*TraceNode) {
	var walk func(n *TraceNode, path string)
	walk = func(n *TraceNode, path string) {
		frame := n.Kind + ":" + n.To
		if n.Kind == "call" {
			frame = "call:" + n.From + "→" + n.To
		}
		if path != "" {
			path = path + ";" + frame
		} else {
			path = frame
		}
		// Emit self time: total minus traced children, so stacked frames
		// sum to the root duration like a real flamegraph.
		self := n.Duration
		for _, c := range n.Children {
			self -= c.Duration
		}
		if self < 0 {
			self = 0
		}
		fmt.Fprintf(w, "%s %d\n", path, self.Nanoseconds())
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	for _, root := range roots {
		walk(root, "")
	}
}
