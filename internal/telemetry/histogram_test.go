package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestBucketOfBoundRoundTrip(t *testing.T) {
	// Every bucket's bound must map back into that bucket, and bounds must
	// be strictly increasing.
	prev := uint64(0)
	for idx := 0; idx < numBuckets; idx++ {
		bound := bucketBound(idx)
		if idx > 0 && bound <= prev {
			t.Fatalf("bucket %d bound %d not increasing over %d", idx, bound, prev)
		}
		prev = bound
		if bound == math.MaxUint64 {
			continue // saturated top bucket
		}
		if got := bucketOf(bound); got != idx {
			t.Errorf("bucketOf(bucketBound(%d)=%d) = %d", idx, bound, got)
		}
	}
}

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{7, 7}, // exact region
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if got := bucketOf(math.MaxUint64); got != numBuckets-1 {
		t.Errorf("bucketOf(max) = %d, want %d", got, numBuckets-1)
	}
	// Monotone: larger values never land in smaller buckets.
	prev := 0
	for _, ns := range []uint64{1, 5, 8, 9, 100, 1000, 1 << 20, 1 << 40, 1 << 62} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", ns, b, prev)
		}
		prev = b
	}
}

func TestHistogramRecordAndQuantiles(t *testing.T) {
	var h Histogram
	// 1000 samples of 1µs, 10 of 1ms: p50 ≈ 1µs, p99.9 region reaches 1ms.
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond, uint64(i)) // spread over all shards
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond, uint64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 1010 {
		t.Fatalf("count = %d", snap.Count)
	}
	wantSum := uint64(1000*time.Microsecond + 10*time.Millisecond)
	if snap.SumNs != wantSum {
		t.Errorf("sum = %d, want %d", snap.SumNs, wantSum)
	}
	if snap.MaxNs < uint64(time.Millisecond) {
		t.Errorf("max = %d, want >= 1ms", snap.MaxNs)
	}
	p50 := snap.Quantile(0.5)
	if p50 < 500 || p50 > 2000 {
		t.Errorf("p50 = %dns, want ~1µs", p50)
	}
	p999 := snap.Quantile(0.999)
	if p999 < 500_000 {
		t.Errorf("p99.9 = %dns, want ~1ms", p999)
	}
	if m := snap.Mean(); m <= 0 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.SumNs != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
	if q := snap.Quantile(0.99); q != 0 {
		t.Errorf("quantile of empty = %v", q)
	}
	if m := snap.Mean(); m != 0 {
		t.Errorf("mean of empty = %v", m)
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second, 0)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.SumNs != 0 {
		t.Errorf("negative duration contributed %d to sum", snap.SumNs)
	}
}
