package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Stub pipelining metrics: per-stub gauges and counters for the
// distributed layer's concurrent in-flight calls. The collector implements
// distributed.Monitor structurally — distributed declares the interface,
// telemetry never imports it — the same pattern as cluster.Monitor and
// netsim.Monitor.
//
// Inflight tracks live pipeline depth; DepthMax its high-water mark over
// the run; Calls and DepthSum together yield the mean depth a call was
// issued at (how much pipelining the workload actually achieved); Orphans
// counts replies whose correlation ID matched no parked caller —
// duplicates, unknown IDs, or replies landing after their caller unwound
// on a deadline. A non-zero orphan rate with no deadline pressure means
// the wire is replaying or misbehaving.

// StubStats is one stub's live cell.
type StubStats struct {
	Stub string

	Inflight atomic.Int64 // gauge: calls currently awaiting replies
	DepthMax atomic.Int64 // gauge: high-water mark of Inflight
	Calls    atomic.Int64 // counter: calls issued over the session
	DepthSum atomic.Int64 // counter: sum of pipeline depth at issue time
	Orphans  atomic.Int64 // counter: replies dropped for want of a waiter

	// Coalescing (distributed.CoalesceMonitor, also structural): records
	// sealed carrying ≥2 sub-frames, the sub-frames they carried, and the
	// adaptive controller's current window. AEAD passes saved is
	// CoalSubs - CoalRecords.
	CoalRecords atomic.Int64 // counter: coalesced records sealed
	CoalSubs    atomic.Int64 // counter: sub-frames those records carried
	CoalWindow  atomic.Int64 // gauge: adaptive coalescing window
}

type stubState struct {
	mu    sync.RWMutex
	cells map[string]*StubStats
}

func (s *stubState) cell(stub string) *StubStats {
	s.mu.RLock()
	ss := s.cells[stub]
	s.mu.RUnlock()
	if ss != nil {
		return ss
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cells == nil {
		s.cells = make(map[string]*StubStats)
	}
	if ss = s.cells[stub]; ss != nil {
		return ss
	}
	ss = &StubStats{Stub: stub}
	s.cells[stub] = ss
	return ss
}

// StubCall records one pipelined call at issue time with the pipeline
// depth observed then.
func (m *Metrics) StubCall(stub string, depth int) {
	ss := m.stub.cell(stub)
	ss.Calls.Add(1)
	ss.DepthSum.Add(int64(depth))
	for {
		max := ss.DepthMax.Load()
		if int64(depth) <= max || ss.DepthMax.CompareAndSwap(max, int64(depth)) {
			return
		}
	}
}

// StubInflight adjusts a stub's awaiting-reply gauge.
func (m *Metrics) StubInflight(stub string, delta int) {
	m.stub.cell(stub).Inflight.Add(int64(delta))
}

// StubOrphan records one reply dropped because no caller was parked on its
// correlation ID.
func (m *Metrics) StubOrphan(stub string) {
	m.stub.cell(stub).Orphans.Add(1)
}

// StubCoalesce records one coalesced record sealed carrying subframes
// sub-frames (distributed.CoalesceMonitor).
func (m *Metrics) StubCoalesce(stub string, subframes int) {
	ss := m.stub.cell(stub)
	ss.CoalRecords.Add(1)
	ss.CoalSubs.Add(int64(subframes))
}

// StubCoalesceWindow reports the adaptive coalescing window after a
// controller adaptation.
func (m *Metrics) StubCoalesceWindow(stub string, window int) {
	m.stub.cell(stub).CoalWindow.Store(int64(window))
}

// StubSummary is one stub's aggregate view.
type StubSummary struct {
	Stub     string
	Inflight int64
	DepthMax int64
	Calls    int64
	DepthSum int64
	Orphans  int64

	CoalRecords int64
	CoalSubs    int64
	CoalWindow  int64
}

// Stubs returns per-stub summaries, sorted by stub name.
func (m *Metrics) Stubs() []StubSummary {
	m.stub.mu.RLock()
	var cells []*StubStats
	for _, ss := range m.stub.cells {
		cells = append(cells, ss)
	}
	m.stub.mu.RUnlock()
	out := make([]StubSummary, 0, len(cells))
	for _, ss := range cells {
		out = append(out, StubSummary{
			Stub:        ss.Stub,
			Inflight:    ss.Inflight.Load(),
			DepthMax:    ss.DepthMax.Load(),
			Calls:       ss.Calls.Load(),
			DepthSum:    ss.DepthSum.Load(),
			Orphans:     ss.Orphans.Load(),
			CoalRecords: ss.CoalRecords.Load(),
			CoalSubs:    ss.CoalSubs.Load(),
			CoalWindow:  ss.CoalWindow.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stub < out[j].Stub })
	return out
}
