package telemetry

import (
	"sort"
	"sync"
)

// Policy metrics: per-engine counters for chain-aware policy enforcement.
// The collector implements policy.Monitor structurally — policy declares
// the interface, telemetry never imports it — the same pattern as
// journal.Monitor and cluster.Monitor.
//
// Decisions are counted per effect (allow/deny/approve) and per matched
// rule, so a dashboard shows which rule is firing when denies spike; a
// request matching no rule counts under the "(default)" rule. Grants
// track the approval-capability cache: mint (approver consulted), reuse
// (live grant, no approver round-trip), expire (TTL decayed, grant
// dropped).

// PolicyStats is one engine's live cell.
type PolicyStats struct {
	Engine string

	Decisions map[string]int64 // by effect
	RuleHits  map[string]int64 // by matched rule name
	Grants    map[string]int64 // by grant event: mint, reuse, expire
}

type policyState struct {
	mu    sync.Mutex
	cells map[string]*PolicyStats
}

// cell returns (creating if needed) the named engine's cell. Caller
// holds s.mu.
func (s *policyState) cell(name string) *PolicyStats {
	if s.cells == nil {
		s.cells = make(map[string]*PolicyStats)
	}
	ps := s.cells[name]
	if ps == nil {
		ps = &PolicyStats{
			Engine:    name,
			Decisions: make(map[string]int64),
			RuleHits:  make(map[string]int64),
			Grants:    make(map[string]int64),
		}
		s.cells[name] = ps
	}
	return ps
}

// PolicyDecision implements policy.Monitor: one verdict, by effect and
// matched rule.
func (m *Metrics) PolicyDecision(engine, effect, rule string) {
	m.policy.mu.Lock()
	defer m.policy.mu.Unlock()
	ps := m.policy.cell(engine)
	ps.Decisions[effect]++
	ps.RuleHits[rule]++
}

// PolicyGrant implements policy.Monitor: one approval-grant lifecycle
// event, by rule.
func (m *Metrics) PolicyGrant(engine, rule, event string) {
	m.policy.mu.Lock()
	defer m.policy.mu.Unlock()
	m.policy.cell(engine).Grants[event]++
}

// PolicySummary is one engine's aggregate view.
type PolicySummary struct {
	Engine    string
	Decisions map[string]int64 // copy, keyed by effect
	RuleHits  map[string]int64 // copy, keyed by rule name
	Grants    map[string]int64 // copy, keyed by grant event
}

// Policies returns per-engine summaries, sorted by engine name.
func (m *Metrics) Policies() []PolicySummary {
	m.policy.mu.Lock()
	defer m.policy.mu.Unlock()
	out := make([]PolicySummary, 0, len(m.policy.cells))
	for _, ps := range m.policy.cells {
		s := PolicySummary{
			Engine:    ps.Engine,
			Decisions: make(map[string]int64, len(ps.Decisions)),
			RuleHits:  make(map[string]int64, len(ps.RuleHits)),
			Grants:    make(map[string]int64, len(ps.Grants)),
		}
		for k, v := range ps.Decisions {
			s.Decisions[k] = v
		}
		for k, v := range ps.RuleHits {
			s.RuleHits[k] = v
		}
		for k, v := range ps.Grants {
			s.Grants[k] = v
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Engine < out[j].Engine })
	return out
}
