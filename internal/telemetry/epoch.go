package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Config-epoch metrics: the dynamic-membership view of a fleet. The
// collector implements cluster.EpochMonitor structurally (cluster
// type-asserts it off the regular Monitor), so fleets with static
// membership never touch this file and the lateral_epoch_* families are
// emitted only once a fleet has transitioned.

// EpochStats is one fleet's live epoch cell.
type EpochStats struct {
	Fleet string

	Epoch       atomic.Uint64 // gauge: active config epoch
	Transitions atomic.Int64  // counter: epoch transitions completed
	Rekeys      atomic.Int64  // counter: member rekeys that succeeded
	RekeyFails  atomic.Int64  // counter: member rekeys that failed
	LastReason  atomic.Value  // string: most recent transition's cause
}

type epochState struct {
	mu    sync.RWMutex
	cells map[string]*EpochStats // fleet
}

func (e *epochState) cell(fleet string) *EpochStats {
	e.mu.RLock()
	es := e.cells[fleet]
	e.mu.RUnlock()
	if es != nil {
		return es
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cells == nil {
		e.cells = make(map[string]*EpochStats)
	}
	if es = e.cells[fleet]; es != nil {
		return es
	}
	es = &EpochStats{Fleet: fleet}
	e.cells[fleet] = es
	return es
}

// EpochTransition records a completed config-epoch transition.
func (m *Metrics) EpochTransition(fleet string, epoch uint64, reason string) {
	es := m.epoch.cell(fleet)
	es.Epoch.Store(epoch)
	es.Transitions.Add(1)
	es.LastReason.Store(reason)
}

// ReplicaRekey records one member's epoch rekey outcome.
func (m *Metrics) ReplicaRekey(fleet, _ string, ok bool) {
	es := m.epoch.cell(fleet)
	if ok {
		es.Rekeys.Add(1)
	} else {
		es.RekeyFails.Add(1)
	}
}

// EpochSummary is one fleet's aggregate epoch view.
type EpochSummary struct {
	Fleet       string
	Epoch       uint64
	Transitions int64
	Rekeys      int64
	RekeyFails  int64
	LastReason  string
}

// Epochs returns per-fleet epoch summaries, sorted by fleet. Empty until
// some fleet completes a transition.
func (m *Metrics) Epochs() []EpochSummary {
	m.epoch.mu.RLock()
	var cells []*EpochStats
	for _, es := range m.epoch.cells {
		cells = append(cells, es)
	}
	m.epoch.mu.RUnlock()
	out := make([]EpochSummary, 0, len(cells))
	for _, es := range cells {
		reason, _ := es.LastReason.Load().(string)
		out = append(out, EpochSummary{
			Fleet:       es.Fleet,
			Epoch:       es.Epoch.Load(),
			Transitions: es.Transitions.Load(),
			Rekeys:      es.Rekeys.Load(),
			RekeyFails:  es.RekeyFails.Load(),
			LastReason:  reason,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fleet < out[j].Fleet })
	return out
}
