package telemetry

import (
	"strings"
	"testing"
)

func TestFleetGaugesAggregate(t *testing.T) {
	m := NewMetrics()
	m.ReplicaState("anon", "anon-1", true, false)
	m.ReplicaState("anon", "anon-2", true, false)
	m.ReplicaState("anon", "anon-3", false, true)
	m.ReplicaInflight("anon", "anon-1", 1)
	m.ReplicaCall("anon", "anon-1", false)
	m.ReplicaInflight("anon", "anon-1", -1)
	m.ReplicaCall("anon", "anon-2", true)
	m.ReplicaFailover("anon", "anon-2")
	m.ReplicaRetry("anon", "anon-2")
	m.ReplicaState("anon", "anon-2", false, false)

	got := m.Fleets()
	if len(got) != 3 {
		t.Fatalf("replicas = %d, want 3", len(got))
	}
	r1, r2, r3 := got[0], got[1], got[2]
	if r1.Replica != "anon-1" || !r1.Healthy || r1.Calls != 1 || r1.Errors != 0 || r1.Inflight != 0 {
		t.Errorf("anon-1 = %+v", r1)
	}
	if r2.Healthy || r2.Quarantined || r2.Errors != 1 || r2.Failovers != 1 || r2.Retries != 1 {
		t.Errorf("anon-2 = %+v", r2)
	}
	if !r3.Quarantined || r3.Healthy {
		t.Errorf("anon-3 = %+v", r3)
	}
}

func TestFleetPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	var b strings.Builder
	// With no fleet activity the cluster families are absent.
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "lateral_cluster_") {
		t.Error("cluster metrics emitted without any fleet")
	}
	m.ReplicaState("anon", "anon-1", true, false)
	m.ReplicaState("anon", "anon-2", false, true)
	m.ReplicaCall("anon", "anon-1", false)
	m.ReplicaFailover("anon", "anon-2")
	b.Reset()
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lateral_cluster_replica_healthy{fleet="anon",replica="anon-1"} 1`,
		`lateral_cluster_replica_healthy{fleet="anon",replica="anon-2"} 0`,
		`lateral_cluster_replica_quarantined{fleet="anon",replica="anon-2"} 1`,
		`lateral_cluster_replica_calls_total{fleet="anon",replica="anon-1"} 1`,
		`lateral_cluster_replica_failovers_total{fleet="anon",replica="anon-2"} 1`,
		"# TYPE lateral_cluster_replica_inflight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The human summary includes the fleet table.
	b.Reset()
	m.WriteSummary(&b)
	if !strings.Contains(b.String(), "anon/anon-1") {
		t.Errorf("summary missing fleet rows:\n%s", b.String())
	}
}
