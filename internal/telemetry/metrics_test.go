package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"lateral/internal/core"
)

func endSpan(m *Metrics, id uint64, info core.SpanInfo, d time.Duration, err error) {
	m.SpanEnd(core.Span{Trace: 1, ID: id}, info, time.Time{}, d, err)
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	callInfo := core.SpanInfo{
		Kind: core.SpanCall, Channel: "net", From: "ui", To: "net",
		Domain: "net", Op: "fetch",
	}
	for i := 0; i < 5; i++ {
		endSpan(m, uint64(i), callInfo, time.Microsecond, nil)
	}
	endSpan(m, 9, callInfo, 10*time.Microsecond, errors.New("boom"))
	endSpan(m, 10, core.SpanInfo{Kind: core.SpanDeliver, To: "ui", Domain: "ui", Op: "fetch-mail"},
		2*time.Microsecond, nil)
	endSpan(m, 11, core.SpanInfo{Kind: core.SpanHandle, To: "net", Domain: "net"}, time.Microsecond, nil)
	endSpan(m, 12, core.SpanInfo{Kind: core.SpanHandle, To: "net", Domain: "net"}, time.Microsecond, errors.New("fault"))
	endSpan(m, 13, core.SpanInfo{Kind: core.SpanAssetStore, To: "tls", Domain: "tls", Op: "key", Bytes: 32}, 0, nil)
	endSpan(m, 14, core.SpanInfo{Kind: core.SpanAssetLoad, To: "tls", Domain: "tls", Op: "key", Bytes: 32}, 0, nil)

	chans := m.Channels()
	if len(chans) != 2 {
		t.Fatalf("channels = %d, want 2 (call edge + deliver edge): %+v", len(chans), chans)
	}
	// Sorted by From: "" (deliver) before "ui".
	if chans[0].Channel != DeliverChannel || chans[0].To != "ui" || chans[0].Count != 1 {
		t.Errorf("deliver edge = %+v", chans[0])
	}
	call := chans[1]
	if call.From != "ui" || call.Channel != "net" || call.Count != 6 || call.Errors != 1 {
		t.Errorf("call edge = %+v", call)
	}
	if call.Max < 10*time.Microsecond {
		t.Errorf("call max = %v", call.Max)
	}

	doms := m.Domains()
	if len(doms) != 2 {
		t.Fatalf("domains = %+v", doms)
	}
	net := doms[0]
	if net.Name != "net" || net.Invocations != 2 || net.Faults != 1 {
		t.Errorf("net domain = %+v", net)
	}
	tls := doms[1]
	if tls.AssetStores != 1 || tls.AssetLoads != 1 || tls.AssetBytes != 64 {
		t.Errorf("tls domain = %+v", tls)
	}
}

func TestMetricsDatagramLinks(t *testing.T) {
	m := NewMetrics()
	m.Datagram("laptop", "cloud", 100)
	m.Datagram("laptop", "cloud", 50)
	m.Datagram("cloud", "laptop", 20)
	links := m.Links()
	if len(links) != 2 {
		t.Fatalf("links = %+v", links)
	}
	if links[0].From != "cloud" || links[0].Datagrams != 1 || links[0].Bytes != 20 {
		t.Errorf("link 0 = %+v", links[0])
	}
	if links[1].From != "laptop" || links[1].Datagrams != 2 || links[1].Bytes != 150 {
		t.Errorf("link 1 = %+v", links[1])
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := NewMetrics()
	endSpan(m, 1, core.SpanInfo{
		Kind: core.SpanCall, Channel: "net", From: "ui", To: "net", Domain: "net", Op: "fetch",
	}, time.Microsecond, nil)
	endSpan(m, 2, core.SpanInfo{Kind: core.SpanHandle, To: "net", Domain: "net"}, time.Microsecond, nil)
	m.Datagram("laptop", "cloud", 64)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Structural validity of the text exposition format: every non-comment
	// line is `name{labels} value`, every TYPEd family appears.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "lateral_") {
			t.Errorf("metric line without lateral_ prefix: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed metric line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE lateral_domain_invocations_total counter",
		"# TYPE lateral_channel_latency_seconds histogram",
		`lateral_domain_invocations_total{domain="net",trusted="false"} 1`,
		`lateral_channel_latency_seconds_count{channel="ui->net/net"} 1`,
		`lateral_channel_latency_seconds_bucket{channel="ui->net/net",le="+Inf"} 1`,
		`lateral_channel_errors_total{channel="ui->net/net"} 0`,
		`lateral_net_datagrams_total{link="laptop->cloud"} 1`,
		`lateral_net_bytes_total{link="laptop->cloud"} 64`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and end at the total count.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lateral_channel_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}

	// Determinism: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := m.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("prometheus output is not deterministic")
	}
}

func TestWriteSummaryRenders(t *testing.T) {
	m := NewMetrics()
	endSpan(m, 1, core.SpanInfo{
		Kind: core.SpanCall, Channel: "net", From: "ui", To: "net", Domain: "net", Op: "fetch",
	}, time.Microsecond, nil)
	endSpan(m, 2, core.SpanInfo{Kind: core.SpanHandle, To: "net", Domain: "net"}, time.Microsecond, nil)
	var buf bytes.Buffer
	m.WriteSummary(&buf)
	for _, want := range []string{"ui->net/net", "channel", "domain"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Error("empty fanout should be nil")
	}
	r := NewRecorder(0)
	if Fanout(nil, r) != core.Tracer(r) {
		t.Error("single survivor should be returned undecorated")
	}
	m := NewMetrics()
	both := Fanout(r, m)
	both.SpanStart(core.Span{}, core.SpanInfo{}, time.Time{})
	both.SpanEnd(core.Span{Trace: 1, ID: 2}, core.SpanInfo{Kind: core.SpanHandle, To: "x", Domain: "x"},
		time.Time{}, time.Microsecond, nil)
	if len(r.Spans()) != 1 {
		t.Error("fanout did not reach recorder")
	}
	if len(m.Domains()) != 1 {
		t.Error("fanout did not reach metrics")
	}
}

func TestBudgetFailureCounters(t *testing.T) {
	m := NewMetrics()
	info := core.SpanInfo{
		Kind: core.SpanCall, Channel: "store", From: "gw", To: "store",
		Domain: "store", Op: "put",
	}
	endSpan(m, 1, info, time.Millisecond, fmt.Errorf("slow replica: %w", core.ErrDeadline))
	endSpan(m, 2, info, time.Millisecond, fmt.Errorf("caller gone: %w", core.ErrCanceled))
	endSpan(m, 3, info, 0, fmt.Errorf("queue full: %w", core.ErrOverloaded))
	endSpan(m, 4, info, 0, errors.New("ordinary failure"))
	endSpan(m, 5, info, time.Microsecond, nil)

	chans := m.Channels()
	if len(chans) != 1 {
		t.Fatalf("channels = %+v", chans)
	}
	c := chans[0]
	if c.Errors != 4 || c.Timeouts != 1 || c.Cancels != 1 || c.Overloads != 1 {
		t.Errorf("counters = errs %d tmout %d cancel %d shed %d, want 4/1/1/1",
			c.Errors, c.Timeouts, c.Cancels, c.Overloads)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lateral_call_timeouts_total{channel="gw->store/store"} 1`,
		`lateral_call_cancellations_total{channel="gw->store/store"} 1`,
		`lateral_call_overloads_total{channel="gw->store/store"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	var sum bytes.Buffer
	m.WriteSummary(&sum)
	if !strings.Contains(sum.String(), "tmout") {
		t.Errorf("summary header lacks budget columns:\n%s", sum.String())
	}
}
