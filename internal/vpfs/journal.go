package vpfs

// This file adds jVPFS-style robustness (the paper's reference [44],
// "jVPFS: Adding robustness to a secure stacked file system with untrusted
// local storage components"): the trusted freshness state survives crashes
// WITHOUT trusting the storage, by journaling sealed state snapshots to
// the untrusted backing store while anchoring freshness in a tiny trusted
// monotonic counter (in real systems: TPM NV counters or sealed SEP
// storage; here: the Counter interface).
//
// The attacker controls the journal file completely. What the design
// guarantees:
//
//   - Crash at any point: Recover rebuilds the exact committed state.
//   - Journal tampering: detected (sealed + MACed records).
//   - Journal rollback/truncation: detected, because the record sequence
//     must reach the trusted counter's current value.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"lateral/internal/cryptoutil"
	"lateral/internal/legacy"
)

// ErrJournal is returned for corrupted, rolled-back, or truncated journals.
var ErrJournal = errors.New("vpfs: journal integrity violation")

// Counter is the tiny piece of trusted, persistent, monotonic state the
// journal anchors to. Implementations: TPM NV counters, SEP sealed
// storage, or (in tests) an in-memory counter standing in for them.
type Counter interface {
	// Increment advances and returns the new value. Monotonic, durable.
	Increment() (uint64, error)
	// Value returns the current value.
	Value() (uint64, error)
}

// MemCounter is an in-memory Counter for tests and simulations.
type MemCounter struct {
	mu sync.Mutex
	v  uint64
}

// Increment implements Counter.
func (c *MemCounter) Increment() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v++
	return c.v, nil
}

// Value implements Counter.
func (c *MemCounter) Value() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v, nil
}

// journalName is the backing-store file holding the latest sealed state.
const journalName = "vpfs.journal"

// Journal binds a VPFS to a trusted counter and persists sealed state
// snapshots on the untrusted store after every mutation.
type Journal struct {
	v       *VPFS
	counter Counter
	key     []byte
}

// NewJournal wraps an existing VPFS (ModeFull is required — journaling
// exists to persist the freshness table).
func NewJournal(v *VPFS, counter Counter) (*Journal, error) {
	if v.Mode() != ModeFull {
		return nil, fmt.Errorf("vpfs: journaling requires ModeFull, have %v", v.Mode())
	}
	return &Journal{
		v:       v,
		counter: counter,
		key:     cryptoutil.HKDF(v.master, nil, []byte("vpfs-journal"), cryptoutil.KeySize),
	}, nil
}

// Commit seals the current trusted state under the NEXT counter value,
// writes it to the untrusted store, then bumps the counter. A crash
// between the write and the bump re-commits on recovery (the stale record
// with seq == counter+1 is simply overwritten); a crash before the write
// leaves the previous committed state intact.
func (j *Journal) Commit() error {
	cur, err := j.counter.Value()
	if err != nil {
		return err
	}
	seq := cur + 1
	state := j.v.SaveState()
	var seqB [8]byte
	binary.BigEndian.PutUint64(seqB[:], seq)
	// The nonce is bound to the state contents as well as the sequence:
	// a crash between write and counter bump re-commits the SAME seq with
	// possibly different state, which must not reuse a nonce.
	stateDigest := cryptoutil.Hash(state)
	nonce := cryptoutil.DeriveNonce("vpfs-journal:"+string(stateDigest[:8]), seq)
	sealed, err := cryptoutil.Seal(j.key, nonce, state, seqB[:])
	if err != nil {
		return err
	}
	record := append(seqB[:], sealed...)
	if err := j.v.backing.WriteFile(journalName, record); err != nil {
		return fmt.Errorf("vpfs journal: %w", err)
	}
	if _, err := j.counter.Increment(); err != nil {
		return err
	}
	return nil
}

// WriteFile mutates and commits atomically (from the caller's view).
func (j *Journal) WriteFile(name string, data []byte) error {
	if err := j.v.WriteFile(name, data); err != nil {
		return err
	}
	return j.Commit()
}

// DeleteFile mutates and commits.
func (j *Journal) DeleteFile(name string) error {
	if err := j.v.DeleteFile(name); err != nil {
		return err
	}
	return j.Commit()
}

// ReadFile delegates to the underlying VPFS.
func (j *Journal) ReadFile(name string) ([]byte, error) {
	return j.v.ReadFile(name)
}

// List delegates to the underlying VPFS.
func (j *Journal) List() ([]string, error) {
	return j.v.List()
}

// Recover mounts a journaled VPFS after a crash or reboot: it loads the
// sealed state record from the untrusted store and accepts it only if its
// sequence number matches the trusted counter. A rolled-back or truncated
// journal (attacker restored an old record, or deleted it while the
// counter says state exists) is detected, not silently accepted.
func Recover(backing *legacy.FS, masterKey []byte, counter Counter) (*Journal, error) {
	v, err := New(backing, masterKey, ModeFull)
	if err != nil {
		return nil, err
	}
	j, err := NewJournal(v, counter)
	if err != nil {
		return nil, err
	}
	want, err := counter.Value()
	if err != nil {
		return nil, err
	}
	if want == 0 {
		// Nothing ever committed: fresh file system.
		return j, nil
	}
	record, err := backing.ReadFile(journalName)
	if err != nil {
		return nil, fmt.Errorf("journal missing with counter=%d: %w", want, ErrJournal)
	}
	if len(record) < 8 {
		return nil, fmt.Errorf("journal truncated: %w", ErrJournal)
	}
	seq := binary.BigEndian.Uint64(record[:8])
	if seq != want {
		return nil, fmt.Errorf("journal seq %d, trusted counter %d (rollback?): %w", seq, want, ErrJournal)
	}
	var seqB [8]byte
	binary.BigEndian.PutUint64(seqB[:], seq)
	state, err := cryptoutil.Open(j.key, record[8:], seqB[:])
	if err != nil {
		return nil, fmt.Errorf("journal unseal: %w", ErrJournal)
	}
	if err := v.LoadState(state); err != nil {
		return nil, fmt.Errorf("journal state: %w", err)
	}
	return j, nil
}
