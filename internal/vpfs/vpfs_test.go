package vpfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
	"lateral/internal/legacy"
)

func newVPFS(t *testing.T, mode Mode) (*VPFS, *legacy.FS) {
	t.Helper()
	dev := hw.NewBlockDevice("disk0", 256)
	fs, err := legacy.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(fs, cryptoutil.KeyFromSeed("vpfs-master"), mode)
	if err != nil {
		t.Fatal(err)
	}
	return v, fs
}

func TestNewValidation(t *testing.T) {
	dev := hw.NewBlockDevice("d", 64)
	fs, _ := legacy.Format(dev)
	if _, err := New(fs, []byte("short"), ModeFull); err == nil {
		t.Error("short master key accepted")
	}
	if _, err := New(fs, cryptoutil.KeyFromSeed("k"), Mode(9)); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestWriteReadDeleteRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeMACOnly, ModeFull} {
		v, _ := newVPFS(t, mode)
		if err := v.WriteFile("inbox", []byte("private mail")); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got, err := v.ReadFile("inbox")
		if err != nil || string(got) != "private mail" {
			t.Fatalf("%v: read = %q, %v", mode, got, err)
		}
		if err := v.DeleteFile("inbox"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.ReadFile("inbox"); !errors.Is(err, ErrNotFound) {
			t.Errorf("%v: read deleted: got %v", mode, err)
		}
	}
}

func TestConfidentialityOnDevice(t *testing.T) {
	v, fs := newVPFS(t, ModeFull)
	secret := []byte("VPFS-CONFIDENTIAL-PAYLOAD")
	if err := v.WriteFile("mail", secret); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fs.Device().NumSectors(); i++ {
		sec, _ := fs.Device().ReadSector(i)
		if bytes.Contains(sec, secret) {
			t.Fatal("plaintext found on untrusted device")
		}
	}
}

func TestTamperDetectedBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeMACOnly, ModeFull} {
		v, fs := newVPFS(t, mode)
		if err := v.WriteFile("ledger", []byte("balance=100")); err != nil {
			t.Fatal(err)
		}
		if err := fs.TamperFileData("ledger"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.ReadFile("ledger"); !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: tampered read: got %v, want ErrIntegrity", mode, err)
		}
	}
}

func TestRollbackDetectedOnlyInFullMode(t *testing.T) {
	// The A4 ablation: replay an old (authentic) file version.
	run := func(mode Mode) error {
		v, fs := newVPFS(t, mode)
		if err := v.WriteFile("state", []byte("v1")); err != nil {
			t.Fatal(err)
		}
		snap := fs.Device().Snapshot()
		if err := v.WriteFile("state", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Device().RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		_, err := v.ReadFile("state")
		return err
	}
	if err := run(ModeFull); !errors.Is(err, ErrRollback) {
		t.Errorf("full mode: got %v, want ErrRollback", err)
	}
	// MAC-only: the stale version is authentic per-file, so it is
	// silently accepted — the documented weakness.
	if err := run(ModeMACOnly); err != nil {
		t.Errorf("mac-only mode should MISS the rollback, got %v", err)
	}
}

func TestCrossFileSwapDetected(t *testing.T) {
	// Swap two files' blobs at the backing layer; the name in the AD
	// catches it even in MAC-only mode.
	v, fs := newVPFS(t, ModeMACOnly)
	if err := v.WriteFile("a", []byte("content-a")); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("b", []byte("content-b")); err != nil {
		t.Fatal(err)
	}
	blobA, _ := fs.ReadFile("a")
	blobB, _ := fs.ReadFile("b")
	if err := fs.WriteFile("a", blobB); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", blobA); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("a"); !errors.Is(err, ErrIntegrity) {
		t.Errorf("swapped file accepted: %v", err)
	}
}

func TestResurrectionDetectedInFullMode(t *testing.T) {
	v, fs := newVPFS(t, ModeFull)
	if err := v.WriteFile("token", []byte("revoked-credential")); err != nil {
		t.Fatal(err)
	}
	blob, _ := fs.ReadFile("token")
	if err := v.DeleteFile("token"); err != nil {
		t.Fatal(err)
	}
	// Attacker restores the deleted file on the backing store.
	if err := fs.WriteFile("token", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("token"); !errors.Is(err, ErrNotFound) {
		t.Errorf("resurrected file accepted: %v", err)
	}
	// MAC-only mode is fooled.
	v2, fs2 := newVPFS(t, ModeMACOnly)
	if err := v2.WriteFile("token", []byte("revoked-credential")); err != nil {
		t.Fatal(err)
	}
	blob2, _ := fs2.ReadFile("token")
	if err := v2.DeleteFile("token"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteFile("token", blob2); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.ReadFile("token"); err != nil {
		t.Errorf("mac-only should miss resurrection, got %v", err)
	}
}

func TestListModes(t *testing.T) {
	v, fs := newVPFS(t, ModeFull)
	if err := v.WriteFile("b", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Storage forges an extra directory entry; ModeFull ignores it.
	if err := fs.WriteFile("forged", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	names, err := v.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("full list = %v", names)
	}
}

func TestTruncatedBlobRejected(t *testing.T) {
	v, fs := newVPFS(t, ModeMACOnly)
	if err := fs.WriteFile("stub", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("stub"); !errors.Is(err, ErrIntegrity) {
		t.Errorf("truncated blob: got %v", err)
	}
}

func TestTooLarge(t *testing.T) {
	v, _ := newVPFS(t, ModeFull)
	if err := v.WriteFile("big", make([]byte, MaxFileSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: got %v", err)
	}
	if err := v.WriteFile("max", make([]byte, MaxFileSize)); err != nil {
		t.Errorf("max size rejected: %v", err)
	}
}

func TestSaveLoadStateAcrossRemount(t *testing.T) {
	dev := hw.NewBlockDevice("disk0", 256)
	fs, _ := legacy.Format(dev)
	key := cryptoutil.KeyFromSeed("vpfs-master")
	v1, _ := New(fs, key, ModeFull)
	if err := v1.WriteFile("persist", []byte("across reboot")); err != nil {
		t.Fatal(err)
	}
	state := v1.SaveState()

	// "Reboot": fresh VPFS instance over the same device.
	v2, _ := New(fs, key, ModeFull)
	if _, err := v2.ReadFile("persist"); !errors.Is(err, ErrNotFound) {
		t.Errorf("fresh instance should not trust old files yet: %v", err)
	}
	if err := v2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	got, err := v2.ReadFile("persist")
	if err != nil || string(got) != "across reboot" {
		t.Fatalf("after state load = %q, %v", got, err)
	}
	// Sequence continues: a new write after reload must not reuse an old
	// version number (rollback window).
	if err := v2.WriteFile("persist", []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, err = v2.ReadFile("persist")
	if err != nil || string(got) != "new content" {
		t.Fatalf("after rewrite = %q, %v", got, err)
	}
	if err := v2.LoadState([]byte("short")); !errors.Is(err, ErrIntegrity) {
		t.Errorf("truncated state: got %v", err)
	}
	if err := v2.LoadState(state[:20]); !errors.Is(err, ErrIntegrity) {
		t.Errorf("cut state: got %v", err)
	}
}

func TestWrongMasterKeyCannotRead(t *testing.T) {
	dev := hw.NewBlockDevice("disk0", 256)
	fs, _ := legacy.Format(dev)
	v1, _ := New(fs, cryptoutil.KeyFromSeed("right"), ModeMACOnly)
	if err := v1.WriteFile("f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	v2, _ := New(fs, cryptoutil.KeyFromSeed("wrong"), ModeMACOnly)
	if _, err := v2.ReadFile("f"); !errors.Is(err, ErrIntegrity) {
		t.Errorf("wrong key read: got %v", err)
	}
}

// Property: round trip for arbitrary data under both modes.
func TestQuickRoundTrip(t *testing.T) {
	vFull, _ := newVPFS(t, ModeFull)
	vMac, _ := newVPFS(t, ModeMACOnly)
	f := func(data []byte) bool {
		if len(data) > MaxFileSize {
			data = data[:MaxFileSize]
		}
		for _, v := range []*VPFS{vFull, vMac} {
			if err := v.WriteFile("q", data); err != nil {
				return false
			}
			got, err := v.ReadFile("q")
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
