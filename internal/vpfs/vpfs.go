// Package vpfs implements the Virtual Private File System trusted wrapper
// of §III-D: "a trusted wrapper allowing secure reuse of a legacy file
// system stack. The legacy stack takes care of actually storing file
// contents and managing the storage medium, but it never handles plaintext
// data. Instead, the VPFS wrapper guarantees confidentiality and integrity
// of all file system data and metadata by means of encryption and message
// authentication codes."
//
// Two modes exist for the A4 ablation:
//
//   - ModeMACOnly authenticates each file individually (AEAD with the file
//     name and version bound as additional data). It detects corruption
//     and cross-file swaps, but NOT rollback: an attacker replaying an old,
//     validly-MACed version goes unnoticed.
//   - ModeFull additionally keeps a freshness table (name → version +
//     whole-blob hash) in trusted memory, detecting rollback, deletion
//     resurrections, and any divergence of untrusted storage from the last
//     acknowledged state. The table can be sealed and persisted via the
//     substrate's trust anchor (SaveState/LoadState).
package vpfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lateral/internal/cryptoutil"
	"lateral/internal/legacy"
)

// Mode selects the protection level.
type Mode int

// Modes.
const (
	// ModeMACOnly protects confidentiality + per-file integrity.
	ModeMACOnly Mode = iota + 1

	// ModeFull adds freshness (anti-rollback) via a trusted-memory table.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeMACOnly:
		return "mac-only"
	case ModeFull:
		return "full"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Overhead is the per-file storage overhead in bytes (version prefix +
// AEAD nonce + tag).
const Overhead = 8 + cryptoutil.NonceSize + 16

// MaxFileSize is the largest plaintext a VPFS file can hold.
const MaxFileSize = legacy.MaxFileSize - Overhead

// Errors.
var (
	// ErrIntegrity is returned when stored data fails authentication.
	ErrIntegrity = errors.New("vpfs: integrity violation")

	// ErrRollback is returned (ModeFull) when storage presents an older,
	// validly-authenticated version — a replay of stale state.
	ErrRollback = errors.New("vpfs: rollback detected")

	// ErrNotFound mirrors the backing store's not-found for files VPFS
	// has never seen (or has deleted).
	ErrNotFound = errors.New("vpfs: file not found")

	// ErrTooLarge is returned for plaintexts over MaxFileSize.
	ErrTooLarge = errors.New("vpfs: file too large")
)

type entry struct {
	Version uint64
	Mac     [32]byte
}

// VPFS is one mounted private file system over an untrusted backing store.
type VPFS struct {
	mu      sync.Mutex
	backing *legacy.FS
	master  []byte
	mode    Mode
	seq     uint64
	table   map[string]entry // trusted state (ModeFull)
}

// New mounts a VPFS with the given master key (typically unsealed from the
// substrate's trust anchor) over a legacy file system.
func New(backing *legacy.FS, masterKey []byte, mode Mode) (*VPFS, error) {
	if len(masterKey) != cryptoutil.KeySize {
		return nil, fmt.Errorf("vpfs: master key must be %d bytes, got %d", cryptoutil.KeySize, len(masterKey))
	}
	if mode != ModeMACOnly && mode != ModeFull {
		return nil, fmt.Errorf("vpfs: invalid mode %d", mode)
	}
	return &VPFS{
		backing: backing,
		master:  append([]byte(nil), masterKey...),
		mode:    mode,
		table:   make(map[string]entry),
	}, nil
}

// Mode returns the protection mode.
func (v *VPFS) Mode() Mode { return v.mode }

// fileKey derives the per-file AEAD key.
func (v *VPFS) fileKey(name string) []byte {
	return cryptoutil.HKDF(v.master, []byte(name), []byte("vpfs-file"), cryptoutil.KeySize)
}

func ad(name string, version uint64) []byte {
	out := make([]byte, 8+len(name))
	binary.BigEndian.PutUint64(out, version)
	copy(out[8:], name)
	return out
}

// WriteFile encrypts-then-stores a file on the untrusted backing store.
func (v *VPFS) WriteFile(name string, data []byte) error {
	if len(data) > MaxFileSize {
		return fmt.Errorf("%q is %d bytes (max %d): %w", name, len(data), MaxFileSize, ErrTooLarge)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	version := v.seq
	sealed, err := cryptoutil.Seal(v.fileKey(name),
		cryptoutil.DeriveNonce("vpfs:"+name, version), data, ad(name, version))
	if err != nil {
		return fmt.Errorf("vpfs seal %q: %w", name, err)
	}
	blob := make([]byte, 8, 8+len(sealed))
	binary.BigEndian.PutUint64(blob, version)
	blob = append(blob, sealed...)
	if err := v.backing.WriteFile(name, blob); err != nil {
		return fmt.Errorf("vpfs store %q: %w", name, err)
	}
	if v.mode == ModeFull {
		v.table[name] = entry{Version: version, Mac: cryptoutil.Hash(blob)}
	}
	return nil
}

// ReadFile loads, authenticates, and decrypts a file. In ModeFull any
// divergence from the freshness table is reported as ErrRollback (stale
// but authentic data) or ErrIntegrity (corrupted data).
func (v *VPFS) ReadFile(name string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.mode == ModeFull {
		if _, ok := v.table[name]; !ok {
			return nil, fmt.Errorf("%q: %w", name, ErrNotFound)
		}
	}
	blob, err := v.backing.ReadFile(name)
	if err != nil {
		if errors.Is(err, legacy.ErrNotFound) {
			return nil, fmt.Errorf("%q: %w", name, ErrNotFound)
		}
		return nil, err
	}
	if len(blob) < 8 {
		return nil, fmt.Errorf("%q: truncated blob: %w", name, ErrIntegrity)
	}
	version := binary.BigEndian.Uint64(blob[:8])
	pt, aeadErr := cryptoutil.Open(v.fileKey(name), blob[8:], ad(name, version))
	if v.mode == ModeFull {
		want := v.table[name]
		if cryptoutil.Hash(blob) != want.Mac {
			if aeadErr == nil && version < want.Version {
				return nil, fmt.Errorf("%q: version %d < %d: %w", name, version, want.Version, ErrRollback)
			}
			return nil, fmt.Errorf("%q: %w", name, ErrIntegrity)
		}
	}
	if aeadErr != nil {
		return nil, fmt.Errorf("%q: %w", name, ErrIntegrity)
	}
	return pt, nil
}

// DeleteFile removes a file from backing storage and, in ModeFull, from
// the freshness table — a resurrected copy will NOT be accepted back.
func (v *VPFS) DeleteFile(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.mode == ModeFull {
		if _, ok := v.table[name]; !ok {
			return fmt.Errorf("%q: %w", name, ErrNotFound)
		}
		delete(v.table, name)
	}
	if err := v.backing.DeleteFile(name); err != nil && !errors.Is(err, legacy.ErrNotFound) {
		return err
	}
	return nil
}

// List returns the file names VPFS vouches for. In ModeFull this is the
// freshness table (storage cannot forge directory entries); in ModeMACOnly
// it falls back to the backing store's listing.
func (v *VPFS) List() ([]string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.mode == ModeFull {
		out := make([]string, 0, len(v.table))
		for name := range v.table {
			out = append(out, name)
		}
		sort.Strings(out)
		return out, nil
	}
	return v.backing.List()
}

// SaveState serializes the trusted state (sequence counter + freshness
// table) for sealing to the platform's trust anchor across reboots.
func (v *VPFS) SaveState() []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := make([]string, 0, len(v.table))
	for n := range v.table {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []byte
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], v.seq)
	out = append(out, b8[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(len(names)))
	out = append(out, b8[:]...)
	for _, n := range names {
		e := v.table[n]
		out = append(out, byte(len(n)))
		out = append(out, n...)
		binary.BigEndian.PutUint64(b8[:], e.Version)
		out = append(out, b8[:]...)
		out = append(out, e.Mac[:]...)
	}
	return out
}

// LoadState restores trusted state saved by SaveState.
func (v *VPFS) LoadState(state []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(state) < 16 {
		return fmt.Errorf("vpfs: truncated state: %w", ErrIntegrity)
	}
	seq := binary.BigEndian.Uint64(state[:8])
	n := binary.BigEndian.Uint64(state[8:16])
	state = state[16:]
	table := make(map[string]entry, n)
	for i := uint64(0); i < n; i++ {
		if len(state) < 1 {
			return fmt.Errorf("vpfs: truncated state entry: %w", ErrIntegrity)
		}
		l := int(state[0])
		state = state[1:]
		if len(state) < l+8+32 {
			return fmt.Errorf("vpfs: truncated state entry: %w", ErrIntegrity)
		}
		name := string(state[:l])
		state = state[l:]
		var e entry
		e.Version = binary.BigEndian.Uint64(state[:8])
		state = state[8:]
		copy(e.Mac[:], state[:32])
		state = state[32:]
		table[name] = e
	}
	v.seq = seq
	v.table = table
	return nil
}
