package vpfs_test

import (
	"errors"
	"fmt"

	"lateral/internal/cryptoutil"
	"lateral/internal/hw"
	"lateral/internal/legacy"
	"lateral/internal/vpfs"
)

// Example shows the trusted-wrapper pattern: the legacy stack stores the
// bytes, VPFS guarantees confidentiality and integrity, and tampering on
// the untrusted device is detected instead of silently accepted.
func Example() {
	dev := hw.NewBlockDevice("disk0", 128)
	fs, err := legacy.Format(dev)
	if err != nil {
		fmt.Println(err)
		return
	}
	v, err := vpfs.New(fs, cryptoutil.KeyFromSeed("example-master"), vpfs.ModeFull)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := v.WriteFile("ledger", []byte("balance=100")); err != nil {
		fmt.Println(err)
		return
	}
	got, err := v.ReadFile("ledger")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("read back: %s\n", got)

	// The storage attacker flips bits on the raw device.
	if err := fs.TamperFileData("ledger"); err != nil {
		fmt.Println(err)
		return
	}
	_, err = v.ReadFile("ledger")
	fmt.Printf("after tampering: detected=%v\n", errors.Is(err, vpfs.ErrIntegrity))
	// Output:
	// read back: balance=100
	// after tampering: detected=true
}
